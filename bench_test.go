package assasin

// One testing.B benchmark per table and figure of the paper's evaluation.
// Each iteration regenerates the artifact at a reduced but steady-state
// scale and reports the headline ratio as a custom metric, so
// `go test -bench=. -benchmem` reproduces the whole evaluation:
//
//	BenchmarkTable2Workloads        Table II   executable workload survey
//	BenchmarkTable4Configs          Table IV   configuration inventory
//	BenchmarkFig5CycleDecomposition Fig 5      Baseline Filter memory wall
//	BenchmarkFig13StandaloneFunctions Fig 13   Stat/RAID4/RAID6/AES sweep
//	BenchmarkFig14PSFPipeline       Fig 14     TPC-H Parse/Select/Filter
//	BenchmarkFig15EndToEnd          Fig 15     end-to-end TPC-H latency
//	BenchmarkFig16Scalability       Fig 16-18  core scaling/utilization/balance
//	BenchmarkFig19Skew              Fig 19     layout-skew sensitivity
//	BenchmarkFig20Timing            Fig 20     memory-structure timing
//	BenchmarkFig21Adjusted          Fig 21     timing-adjusted throughput
//	BenchmarkTable5PowerArea        Table V    silicon cost inventory
//	BenchmarkFig22Efficiency        Fig 22     power/area efficiency

import (
	"testing"

	"assasin/internal/experiments"
	"assasin/internal/ssd"
)

// benchConfig scales experiments for benchmarking: bigger than unit tests,
// smaller than the full assasin-bench run.
func benchConfig() experiments.Config {
	cfg := experiments.Default()
	cfg.KernelMB = 1
	cfg.AESKB = 64
	cfg.ScanMB = 2
	cfg.TPCHScale = 0.002
	cfg.Verify = false
	return cfg
}

func BenchmarkTable2Workloads(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var ratios float64
		n := 0
		for _, r := range rows {
			if r.Baseline > 0 {
				ratios += r.AssasinSb / r.Baseline
				n++
			}
		}
		b.ReportMetric(ratios/float64(n), "mean-speedup-x")
	}
}

func BenchmarkTable4Configs(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if experiments.Table4(cfg) == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig5CycleDecomposition(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Throughput/1e9, "filter-GB/s")
		b.ReportMetric(100*r.MemStallFrac, "mem-stall-%")
	}
}

func BenchmarkFig13StandaloneFunctions(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig13(cfg)
		if err != nil {
			b.Fatal(err)
		}
		sp := experiments.SpeedupSummary(rows)
		b.ReportMetric(sp[ssd.AssasinSb], "Sb-speedup-x")
		b.ReportMetric(sp[ssd.AssasinSp], "Sp-speedup-x")
	}
}

func BenchmarkFig14PSFPipeline(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig14(cfg)
		if err != nil {
			b.Fatal(err)
		}
		sp := experiments.SpeedupSummaryFig14(rows)
		b.ReportMetric(sp[ssd.AssasinSb], "Sb-speedup-x")
		b.ReportMetric(sp[ssd.UDP], "UDP-speedup-x")
	}
}

func BenchmarkFig15EndToEnd(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig15(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var sb, pure float64
		for _, r := range rows {
			pure += r.PureCPU.Total().Seconds()
			sb += r.Assasin.Total().Seconds()
		}
		b.ReportMetric(pure/sb, "e2e-speedup-x")
	}
}

func BenchmarkFig16Scalability(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig16(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			if p.Cores == 8 {
				b.ReportMetric(p.Throughput/1e9, "8core-GB/s")
				b.ReportMetric(100*p.Utilization, "8core-util-%")
			}
		}
	}
}

func BenchmarkFig19Skew(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig19(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last := points[len(points)-1]
		b.ReportMetric(last.Crossbar/last.ChannelLocal, "skew1-advantage-x")
	}
}

func BenchmarkFig20Timing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig20()
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFig21Adjusted(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig21(cfg)
		if err != nil {
			b.Fatal(err)
		}
		sp := experiments.SpeedupSummary(rows)
		b.ReportMetric(sp[ssd.AssasinSb], "Sb-adj-speedup-x")
	}
}

func BenchmarkTable5PowerArea(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.Table5Costs(8)) != 6 {
			b.Fatal("want 6 configs")
		}
	}
}

func BenchmarkFig22Efficiency(b *testing.B) {
	speedups := map[ssd.Arch]float64{
		ssd.Baseline: 1.0, ssd.UDP: 1.3, ssd.Prefetch: 1.15,
		ssd.AssasinSp: 1.3, ssd.AssasinSb: 1.9, ssd.AssasinSbCache: 1.9,
	}
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig22(speedups, 8)
		for _, r := range rows {
			if r.Arch == ssd.AssasinSb {
				b.ReportMetric(r.PowerEff, "power-eff-x")
				b.ReportMetric(r.AreaEff, "area-eff-x")
			}
		}
	}
}
