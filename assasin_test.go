package assasin

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
)

// TestPublicAPIStatOffload exercises the documented quickstart flow.
func TestPublicAPIStatOffload(t *testing.T) {
	const n = 1 << 14
	data := make([]byte, 4*n)
	rng := rand.New(rand.NewSource(1))
	var want uint32
	for i := 0; i < n; i++ {
		v := uint32(rng.Intn(1000))
		binary.LittleEndian.PutUint32(data[4*i:], v)
		want += v
	}
	drive := NewSSD(Options{Arch: AssasinSb, Cores: 4})
	lpas, err := drive.InstallBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	res, err := drive.RunKernel(KernelRun{
		Kernel:     StatKernel(),
		Inputs:     [][]int{lpas},
		InputBytes: []int64{int64(len(data))},
		RecordSize: 4,
		Cores:      4,
		OutKind:    OutDiscard,
	})
	if err != nil {
		t.Fatal(err)
	}
	var got uint32
	for _, regs := range res.FinalRegs {
		got += regs[8]
	}
	if got != want {
		t.Fatalf("sum %#x, want %#x", got, want)
	}
	if res.Throughput() <= 0 {
		t.Fatal("no throughput")
	}
}

func TestPublicAPIFilterOffload(t *testing.T) {
	const ts = 16
	data := make([]byte, 256*ts)
	rng := rand.New(rand.NewSource(2))
	rng.Read(data)
	k := FilterKernel(ts, []FieldPred{{Offset: 0, Lo: 0, Hi: 1 << 30}})
	drive := NewSSD(Options{Arch: Baseline, Cores: 2})
	lpas, err := drive.InstallBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	res, err := drive.RunKernel(KernelRun{
		Kernel:     k,
		Inputs:     [][]int{lpas},
		InputBytes: []int64{int64(len(data))},
		RecordSize: ts,
		Cores:      2,
		OutKind:    OutToHost,
		Collect:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	for _, outs := range res.Outputs {
		got = append(got, outs[0]...)
	}
	ref, err := k.Reference([][]byte{data})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref[0]) {
		t.Fatal("public filter output mismatch")
	}
}

func TestAllArchsExported(t *testing.T) {
	archs := AllArchs()
	if len(archs) != 6 {
		t.Fatalf("AllArchs = %d", len(archs))
	}
	if archs[0] != Baseline || archs[4] != AssasinSb {
		t.Fatal("arch order wrong")
	}
}

func TestKernelConstructors(t *testing.T) {
	key := make([]byte, 16)
	ks := []Kernel{
		StatKernel(), ScanKernel(), RAID4Kernel(4), RAID6Kernel(4), AESKernel(key),
		FilterKernel(16, []FieldPred{{Offset: 0, Hi: 1}}),
		SelectKernel(16, []int{0}),
		PSFKernel(4, []int{0}, nil),
	}
	for _, k := range ks {
		if k.Name() == "" {
			t.Errorf("%T has no name", k)
		}
	}
}

func TestExperimentConfigs(t *testing.T) {
	if DefaultExperimentConfig().Cores != 8 {
		t.Error("default experiment config should use the paper's 8 cores")
	}
	if !QuickExperimentConfig().Verify {
		t.Error("quick config should verify")
	}
}
