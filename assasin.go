// Package assasin is a simulation library reproducing "ASSASIN:
// Architecture Support for Stream Computing to Accelerate Computational
// Storage" (MICRO 2022). It provides:
//
//   - Complete computational-SSD models: flash array + FTL + shared DRAM +
//     crossbar + firmware control plane + compute engines, in all six of
//     the paper's Table IV configurations (Baseline, UDP, Prefetch,
//     AssasinSp, AssasinSb, AssasinSb$).
//   - An ISA-level core simulator (RV32IM-like plus the ASSASIN stream
//     extension) with a programmatic assembler, so offloaded kernels are
//     real programs computing real results.
//   - The paper's offload kernels (Stat, RAID4/6 erasure coding, AES,
//     Filter/Select, the Parse-Select-Filter database pipeline) in both
//     stream-ISA and software-managed lowerings.
//   - A TPC-H substrate (generator, mini relational engine, all 22
//     queries) and a host model for end-to-end evaluation.
//   - Experiment harnesses regenerating every table and figure of the
//     paper's evaluation.
//
// Quickstart:
//
//	drive := assasin.NewSSD(assasin.Options{Arch: assasin.AssasinSb})
//	lpas, _ := drive.InstallBytes(data)
//	res, _ := drive.RunKernel(assasin.KernelRun{
//		Kernel:     assasin.StatKernel(),
//		Inputs:     [][]int{lpas},
//		InputBytes: []int64{int64(len(data))},
//		RecordSize: 4,
//	})
//	fmt.Printf("throughput: %.2f GB/s\n", res.Throughput()/1e9)
package assasin

import (
	"assasin/internal/experiments"
	"assasin/internal/firmware"
	"assasin/internal/kernels"
	"assasin/internal/ssd"
)

// Arch identifies a computational-SSD architecture (Table IV).
type Arch = ssd.Arch

// The six evaluated configurations.
const (
	Baseline       = ssd.Baseline
	UDP            = ssd.UDP
	Prefetch       = ssd.Prefetch
	AssasinSp      = ssd.AssasinSp
	AssasinSb      = ssd.AssasinSb
	AssasinSbCache = ssd.AssasinSbCache
)

// AllArchs lists the configurations in Table IV order.
func AllArchs() []Arch { return ssd.AllArchs() }

// Options configures an SSD instance. The zero value of every field picks
// the paper's evaluation defaults (8 cores, 8×1 GB/s flash, 8 GB/s DRAM).
type Options = ssd.Options

// SSD is an assembled computational SSD. Build one per offload run.
type SSD = ssd.SSD

// NewSSD assembles a computational SSD.
func NewSSD(opt Options) *SSD { return ssd.New(opt) }

// KernelRun describes one offload: a kernel plus the datasets it streams.
type KernelRun = ssd.KernelRun

// Result is an offload's outcome: duration, throughput, collected outputs,
// and per-core execution statistics.
type Result = ssd.Result

// TaskSpec is one core's share of a custom offload (advanced API; most
// callers use KernelRun).
type TaskSpec = ssd.TaskSpec

// Kernel is an offloadable computational-storage function with stream-ISA
// and software lowerings plus a reference implementation.
type Kernel = kernels.Kernel

// Output stream destinations.
const (
	// OutToHost stages results in SSD DRAM for the host (read-path).
	OutToHost = firmware.OutToHost
	// OutToFlash writes results back to the flash array (write-path).
	OutToFlash = firmware.OutToFlash
	// OutDiscard drops results (measurement-only workloads).
	OutDiscard = firmware.OutDiscard
)

// StatKernel sums a 32-bit column (the Statistics offload).
func StatKernel() Kernel { return kernels.Stat{} }

// ScanKernel reads every input byte (the scalability study workload).
func ScanKernel() Kernel { return kernels.Scan{} }

// RAID4Kernel computes XOR parity over k data streams.
func RAID4Kernel(k int) Kernel { return kernels.RAID4{K: k} }

// RAID6Kernel computes P+Q Reed-Solomon parity over k data streams.
func RAID6Kernel(k int) Kernel { return kernels.RAID6{K: k} }

// AESKernel encrypts the input with AES-128-ECB using the given 16-byte key.
func AESKernel(key []byte) Kernel { return kernels.AES{Key: key} }

// FilterKernel filters fixed-size binary tuples by conjunctive range
// predicates, copying passing tuples to the output stream.
func FilterKernel(tupleSize int, preds []FieldPred) Kernel {
	return kernels.Filter{TupleSize: tupleSize, Preds: preds}
}

// FieldPred is an inclusive unsigned range predicate on a tuple field.
type FieldPred = kernels.FieldPred

// SelectKernel projects fields out of fixed-size binary tuples.
func SelectKernel(tupleSize int, fieldOffsets []int) Kernel {
	return kernels.Select{TupleSize: tupleSize, FieldOffsets: fieldOffsets}
}

// PSFKernel is the Parse→Select→Filter pipeline over integer CSV rows.
func PSFKernel(numFields int, project []int, preds []PSFPred) Kernel {
	return kernels.PSF{NumFields: numFields, Project: project, Preds: preds}
}

// PSFPred is an inclusive range predicate on a parsed CSV column.
type PSFPred = kernels.PSFPred

// DedupKernel flags duplicate fixed-size chunks using a scratchpad-resident
// signature table.
func DedupKernel(chunkSize int) Kernel { return kernels.Dedup{ChunkSize: chunkSize} }

// MLPKernel runs two-layer integer MLP inference with scratchpad-resident
// weights over streaming feature records.
func MLPKernel(in, hidden int) Kernel { return kernels.MLP{In: in, Hidden: hidden} }

// LZKernel decompresses an LZ77-style token stream with a scratchpad
// history window. Compressed streams are produced by
// kernels.LZDecompress.Compress.
func LZKernel() Kernel { return kernels.LZDecompress{} }

// DegreeKernel streams an edge list while accumulating per-vertex degree
// statistics in the scratchpad (the Table II graph-analysis pattern).
func DegreeKernel(numVertices int) Kernel { return kernels.Degree{NumVertices: numVertices} }

// ReplicateKernel fans one input stream out to two output streams inside
// the SSD.
func ReplicateKernel() Kernel { return kernels.Replicate{} }

// TrainKernel runs streaming integer SGD on a linear model with
// scratchpad-resident weights (the Table II NN-training pattern).
func TrainKernel(features int) Kernel { return kernels.LinearTrain{In: features} }

// ExperimentConfig scales the paper-reproduction experiments.
type ExperimentConfig = experiments.Config

// DefaultExperimentConfig is benchmark scale; QuickExperimentConfig is
// test scale with functional verification enabled.
func DefaultExperimentConfig() ExperimentConfig { return experiments.Default() }

// QuickExperimentConfig returns a fast, verifying configuration.
func QuickExperimentConfig() ExperimentConfig { return experiments.Quick() }
