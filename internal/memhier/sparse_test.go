package memhier

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSparseMemReadWrite(t *testing.T) {
	m := NewSparseMem()
	if m.Read(0x8000_0000, 4) != 0 {
		t.Error("unwritten memory not zero")
	}
	m.Write(0x8000_0000, 4, 0xdeadbeef)
	if got := m.Read(0x8000_0000, 4); got != 0xdeadbeef {
		t.Errorf("Read = %#x", got)
	}
	// Little-endian byte order.
	if got := m.ByteAt(0x8000_0000); got != 0xef {
		t.Errorf("low byte = %#x, want 0xef", got)
	}
	if got := m.Read(0x8000_0002, 2); got != 0xdead {
		t.Errorf("high half = %#x, want 0xdead", got)
	}
}

func TestSparseMemCrossPageBoundary(t *testing.T) {
	m := NewSparseMem()
	addr := uint32(1<<sparsePageBits - 2) // straddles two 4K pages
	m.Write(addr, 4, 0x11223344)
	if got := m.Read(addr, 4); got != 0x11223344 {
		t.Errorf("cross-page read = %#x", got)
	}
}

func TestSparseMemRanges(t *testing.T) {
	m := NewSparseMem()
	data := []byte("the quick brown fox jumps over the lazy dog")
	m.WriteRange(0x9000_0100, data)
	if got := m.ReadRange(0x9000_0100, len(data)); !bytes.Equal(got, data) {
		t.Errorf("ReadRange = %q", got)
	}
}

func TestSparseMemQuick(t *testing.T) {
	m := NewSparseMem()
	prop := func(addr uint32, v uint32) bool {
		m.Write(addr, 4, v)
		return m.Read(addr, 4) == v
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSparseMemFootprint(t *testing.T) {
	m := NewSparseMem()
	if m.Footprint() != 0 {
		t.Error("fresh memory has footprint")
	}
	m.SetByte(0, 1)
	m.SetByte(1<<sparsePageBits, 1)
	if m.Footprint() != 2<<sparsePageBits {
		t.Errorf("footprint = %d", m.Footprint())
	}
}

func TestSparseMemRandomizedAgainstMap(t *testing.T) {
	m := NewSparseMem()
	ref := make(map[uint32]byte)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		addr := uint32(rng.Intn(1 << 20))
		if rng.Intn(2) == 0 {
			b := byte(rng.Intn(256))
			m.SetByte(addr, b)
			ref[addr] = b
		} else if m.ByteAt(addr) != ref[addr] {
			t.Fatalf("mismatch at %#x", addr)
		}
	}
}
