package memhier

import (
	"fmt"

	"assasin/internal/sim"
)

// Scratchpad is a software-managed SRAM tightly coupled to the core
// pipeline, holding function state (GF tables, AES round keys, accumulators,
// parse state machines — Table II). It carries functional data and a fixed
// access latency in cycles.
//
// The paper's circuit evaluation (Fig. 20) shows a 64 KiB scratchpad cannot
// be read in a single 1 GHz cycle; the timing-adjusted configurations raise
// AccessCycles to 2. Both are expressed here.
type Scratchpad struct {
	data []byte
	// AccessCycles is the pipeline cost of one access; the core model
	// charges (AccessCycles-1) stall cycles beyond the base cycle.
	AccessCycles int

	reads, writes int64
}

// NewScratchpad returns a scratchpad of size bytes with single-cycle access.
func NewScratchpad(size int) *Scratchpad {
	return &Scratchpad{data: make([]byte, size), AccessCycles: 1}
}

// Size returns the capacity in bytes.
func (s *Scratchpad) Size() int { return len(s.data) }

// Reads returns the read access count.
func (s *Scratchpad) Reads() int64 { return s.reads }

// Writes returns the write access count.
func (s *Scratchpad) Writes() int64 { return s.writes }

func (s *Scratchpad) check(off uint32, size int) error {
	if int(off)+size > len(s.data) {
		return fmt.Errorf("memhier: scratchpad access [%d,%d) out of range (size %d)", off, int(off)+size, len(s.data))
	}
	return nil
}

// Read returns size (1, 2 or 4) bytes at offset off, little-endian.
func (s *Scratchpad) Read(off uint32, size int) (uint32, error) {
	if err := s.check(off, size); err != nil {
		return 0, err
	}
	s.reads++
	var v uint32
	for i := 0; i < size; i++ {
		v |= uint32(s.data[off+uint32(i)]) << (8 * i)
	}
	return v, nil
}

// Write stores the low size bytes of v at offset off.
func (s *Scratchpad) Write(off uint32, size int, v uint32) error {
	if err := s.check(off, size); err != nil {
		return err
	}
	s.writes++
	for i := 0; i < size; i++ {
		s.data[off+uint32(i)] = byte(v >> (8 * i))
	}
	return nil
}

// LoadBytes copies data into the scratchpad at off (used by the firmware to
// preload function state before a kernel starts; not charged to the kernel).
func (s *Scratchpad) LoadBytes(off uint32, data []byte) error {
	if err := s.check(off, len(data)); err != nil {
		return err
	}
	copy(s.data[off:], data)
	return nil
}

// Bytes returns the scratchpad contents from off for length bytes.
func (s *Scratchpad) Bytes(off uint32, length int) ([]byte, error) {
	if err := s.check(off, length); err != nil {
		return nil, err
	}
	out := make([]byte, length)
	copy(out, s.data[off:])
	return out, nil
}

// ExtraLatency returns the stall time beyond the base pipeline cycle for one
// access under the given clock.
func (s *Scratchpad) ExtraLatency(clock sim.Clock) sim.Time {
	if s.AccessCycles <= 1 {
		return 0
	}
	return clock.Cycles(int64(s.AccessCycles - 1))
}
