package memhier

import (
	"testing"

	"assasin/internal/sim"
)

func BenchmarkCacheHit(b *testing.B) {
	c := NewCache(CacheConfig{Name: "l1", Size: 32 << 10, Ways: 8, LineSize: 64}, DRAMLevel{testDRAM()})
	c.Access(0, 0x8000_0000, 4, false, 1, "b")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(sim.Time(i), 0x8000_0000+uint32(i%16)*4, 4, false, 1, "b")
	}
}

func BenchmarkCacheMissStream(b *testing.B) {
	c := NewCache(CacheConfig{Name: "l1", Size: 32 << 10, Ways: 8, LineSize: 64}, DRAMLevel{testDRAM()})
	b.ResetTimer()
	addr := uint32(0x8000_0000)
	at := sim.Time(0)
	for i := 0; i < b.N; i++ {
		at = c.Access(at, addr, 4, false, 1, "b")
		addr += 64
	}
}

func BenchmarkStreamLoad(b *testing.B) {
	s := NewInStream(64, 4096)
	page := make([]byte, 4096)
	b.SetBytes(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Buffered() < 4 {
			b.StopTimer()
			for s.CanPush(4096) {
				s.Push(page, 0)
			}
			b.StartTimer()
		}
		s.Load(0, 4)
	}
}

// BenchmarkStreamBulkCopy measures the page-granular bulk stream paths the
// fused interpreter and firmware ride: Push into an InStream, CopyOut of the
// delivered window, and BulkAppend+Drain through an OutStream.
func BenchmarkStreamBulkCopy(b *testing.B) {
	const page = 4096
	in := NewInStream(8, page)
	out := NewOutStream(8, page)
	data := make([]byte, page)
	for i := range data {
		data[i] = byte(i)
	}
	dst := make([]byte, page)
	b.SetBytes(page)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := in.Push(data, 0); err != nil {
			b.Fatal(err)
		}
		if n := in.CopyOut(dst, in.Head()); n != page {
			b.Fatalf("CopyOut = %d", n)
		}
		if err := in.Adv(page); err != nil {
			b.Fatal(err)
		}
		if !out.BulkAppend(dst) {
			b.Fatal("BulkAppend refused")
		}
		if got := out.Drain(page, 0); len(got) != page {
			b.Fatalf("Drain = %d", len(got))
		}
	}
}

func BenchmarkDRAMAccess(b *testing.B) {
	d := NewDRAM(DefaultDRAMConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Access(sim.Time(i)*100, 64, i&1 == 0, "b")
	}
}
