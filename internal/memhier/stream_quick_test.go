package memhier

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"assasin/internal/sim"
)

// TestInStreamModelBased drives an InStream with random interleavings of
// Push / Load / Peek / Adv / ReadAt against a simple FIFO model and checks
// every observable agrees.
func TestInStreamModelBased(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		pageSize := 8 << rng.Intn(3) // 8, 16, 32
		pages := 2 + rng.Intn(4)
		s := NewInStream(pages, pageSize)

		var model []byte    // bytes pushed, in order
		var consumed int64  // model head
		var delivered int64 // model tail
		produced := byte(0)

		for step := 0; step < 400; step++ {
			switch rng.Intn(5) {
			case 0: // push a page-or-smaller chunk
				n := 1 + rng.Intn(pageSize)
				if !s.CanPush(n) {
					if err := s.Push(make([]byte, n), 0); err == nil {
						t.Fatal("overfull push accepted")
					}
					continue
				}
				chunk := make([]byte, n)
				for i := range chunk {
					chunk[i] = produced
					produced++
				}
				if err := s.Push(chunk, sim.Time(step)); err != nil {
					t.Fatal(err)
				}
				model = append(model, chunk...)
				delivered += int64(n)
			case 1: // load
				w := []int{1, 2, 4}[rng.Intn(3)]
				v, _, st := s.Load(0, w)
				if delivered-consumed < int64(w) {
					if st == LoadOK {
						t.Fatal("load succeeded with insufficient data")
					}
					continue
				}
				if st != LoadOK {
					t.Fatalf("load failed with %d buffered", delivered-consumed)
				}
				var want uint32
				for i := 0; i < w; i++ {
					want |= uint32(model[consumed+int64(i)]) << (8 * i)
				}
				if v != want {
					t.Fatalf("trial %d step %d: load = %#x, want %#x", trial, step, v, want)
				}
				consumed += int64(w)
			case 2: // peek
				if delivered-consumed < 2 {
					continue
				}
				off := int64(rng.Intn(int(delivered - consumed - 1)))
				v, _, st := s.Peek(0, off, 1)
				if st != LoadOK {
					t.Fatal("peek failed within buffered range")
				}
				if byte(v) != model[consumed+off] {
					t.Fatal("peek value wrong")
				}
			case 3: // adv
				if delivered == consumed {
					continue
				}
				n := int64(1 + rng.Intn(int(delivered-consumed)))
				if err := s.Adv(n); err != nil {
					t.Fatal(err)
				}
				consumed += n
			case 4: // readAt
				if delivered == consumed {
					continue
				}
				off := consumed + int64(rng.Intn(int(delivered-consumed)))
				v, _, st := s.ReadAt(0, off, 1)
				if st != LoadOK {
					t.Fatalf("ReadAt(%d) failed with head=%d tail=%d", off, consumed, delivered)
				}
				if byte(v) != model[off] {
					t.Fatal("ReadAt value wrong")
				}
			}
			if s.Head() != consumed || s.Tail() != delivered {
				t.Fatalf("pointer drift: got (%d,%d) want (%d,%d)", s.Head(), s.Tail(), consumed, delivered)
			}
		}
	}
}

// TestOutStreamModelBased checks Append/Drain against a byte queue.
func TestOutStreamModelBased(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		s := NewOutStream(2+rng.Intn(3), 8<<rng.Intn(3))
		var model []byte
		var drained []byte
		var want []byte
		produced := byte(0)
		for step := 0; step < 400; step++ {
			if rng.Intn(2) == 0 {
				w := []int{1, 2, 4}[rng.Intn(3)]
				var v uint32
				tmp := make([]byte, w)
				for i := range tmp {
					tmp[i] = produced
					produced++
					v |= uint32(tmp[i]) << (8 * i)
				}
				if s.CanAppend(w) {
					if !s.Append(v, w) {
						t.Fatal("append failed with space")
					}
					model = append(model, tmp...)
					want = append(want, tmp...)
				} else {
					if s.Append(v, w) {
						t.Fatal("append to full window succeeded")
					}
					produced -= byte(w) // roll back
				}
			} else if len(model) > 0 {
				n := 1 + rng.Intn(len(model))
				got := s.Drain(n, 0)
				drained = append(drained, got...)
				model = model[len(got):]
			}
		}
		drained = append(drained, s.Drain(1<<30, 0)...)
		if !bytes.Equal(drained, want) {
			t.Fatalf("trial %d: drained bytes diverge from appended", trial)
		}
	}
}

// TestInStreamAvailabilityMonotoneQuick: availability times never decrease
// along the stream regardless of push times.
func TestInStreamAvailabilityMonotoneQuick(t *testing.T) {
	prop := func(times []uint16) bool {
		if len(times) == 0 || len(times) > 64 {
			return true
		}
		s := NewInStream(len(times)+1, 4)
		var prev sim.Time
		for _, raw := range times {
			if err := s.Push([]byte{1, 2, 3, 4}, sim.Time(raw)*sim.Microsecond); err != nil {
				return false
			}
			_, ready, st := s.Load(0, 4)
			if st != LoadOK || ready < prev {
				return false
			}
			prev = ready
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
