// Package memhier models the memory hierarchies of the evaluated in-SSD
// compute engines (Table IV): set-associative write-back caches backed by
// the shared SSD DRAM, a DCPT-style delta prefetcher, single-cycle
// scratchpads, and the ASSASIN input/output stream buffers with their
// prefetched head FIFO. Caches are timing models; scratchpads, stream
// buffers and the sparse backing store also carry functional data so that
// kernels compute real results.
package memhier

import "fmt"

const sparsePageBits = 12 // 4 KiB functional pages

// SparseMem is a functional byte-addressable memory backed by a page map.
// It stores data for the DRAM address space (staging buffers, kernel spill).
// Values are little-endian. Unwritten bytes read as zero.
type SparseMem struct {
	pages map[uint32][]byte
}

// NewSparseMem returns an empty memory.
func NewSparseMem() *SparseMem {
	return &SparseMem{pages: make(map[uint32][]byte)}
}

func (m *SparseMem) page(addr uint32, create bool) []byte {
	pn := addr >> sparsePageBits
	p := m.pages[pn]
	if p == nil && create {
		p = make([]byte, 1<<sparsePageBits)
		m.pages[pn] = p
	}
	return p
}

// ByteAt returns the byte at addr.
func (m *SparseMem) ByteAt(addr uint32) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&(1<<sparsePageBits-1)]
}

// SetByte stores b at addr.
func (m *SparseMem) SetByte(addr uint32, b byte) {
	m.page(addr, true)[addr&(1<<sparsePageBits-1)] = b
}

// Read returns size (1, 2 or 4) bytes at addr, little-endian.
func (m *SparseMem) Read(addr uint32, size int) uint32 {
	var v uint32
	for i := 0; i < size; i++ {
		v |= uint32(m.ByteAt(addr+uint32(i))) << (8 * i)
	}
	return v
}

// Write stores the low size bytes of v at addr, little-endian.
func (m *SparseMem) Write(addr uint32, size int, v uint32) {
	for i := 0; i < size; i++ {
		m.SetByte(addr+uint32(i), byte(v>>(8*i)))
	}
}

// ReadRange copies length bytes starting at addr into a new slice.
func (m *SparseMem) ReadRange(addr uint32, length int) []byte {
	out := make([]byte, length)
	for i := range out {
		out[i] = m.ByteAt(addr + uint32(i))
	}
	return out
}

// WriteRange copies data into memory starting at addr.
func (m *SparseMem) WriteRange(addr uint32, data []byte) {
	for i, b := range data {
		m.SetByte(addr+uint32(i), b)
	}
}

// Footprint returns the number of bytes of allocated backing pages.
func (m *SparseMem) Footprint() int { return len(m.pages) << sparsePageBits }

// String summarizes the memory for diagnostics.
func (m *SparseMem) String() string {
	return fmt.Sprintf("SparseMem{%d pages}", len(m.pages))
}
