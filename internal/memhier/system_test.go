package memhier

import (
	"testing"

	"assasin/internal/sim"
)

func testSystem(path ViewPath, withCache bool) *System {
	dram := testDRAM()
	sys := &System{
		Clock:    sim.NewClock(1e9),
		DRAM:     dram,
		Backing:  NewSparseMem(),
		Streams:  NewStreamBuffer(2, 2, 64),
		ViewPath: path,
		Client:   "core0",
	}
	if withCache {
		l2 := NewCache(CacheConfig{Name: "l2", Size: 4096, Ways: 4, LineSize: 64, HitLatency: 10 * sim.Nanosecond}, DRAMLevel{dram})
		sys.L1 = NewCache(CacheConfig{Name: "l1", Size: 512, Ways: 2, LineSize: 64}, l2)
	} else {
		sys.Scratchpad = NewScratchpad(4096)
	}
	return sys
}

func TestSystemScratchpadLoadStore(t *testing.T) {
	sys := testSystem(ViewScratchpad, false)
	addr := uint32(ScratchpadBase + 16)
	if _, err := sys.Store(0, addr, 4, 0xcafebabe, 0); err != nil {
		t.Fatal(err)
	}
	r, err := sys.Load(0, addr, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != 0xcafebabe {
		t.Fatalf("value = %#x", r.Value)
	}
	if r.Done != 0 { // single-cycle scratchpad: no extra latency
		t.Fatalf("done = %v", r.Done)
	}
	// 2-cycle scratchpad (timing-adjusted): one extra cycle.
	sys.Scratchpad.AccessCycles = 2
	r, _ = sys.Load(0, addr, 4, 0)
	if r.Done != sim.Nanosecond {
		t.Fatalf("2-cycle scratchpad done = %v, want 1ns", r.Done)
	}
}

func TestSystemScratchpadBoundsError(t *testing.T) {
	sys := testSystem(ViewScratchpad, false)
	if _, err := sys.Load(0, ScratchpadBase+100000, 4, 0); err == nil {
		t.Fatal("out-of-range scratchpad load accepted")
	}
}

func TestSystemDRAMPathThroughCache(t *testing.T) {
	sys := testSystem(ViewCached, true)
	addr := uint32(DRAMBase + 0x100)
	sys.Backing.Write(addr, 4, 42)
	r, err := sys.Load(0, addr, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != 42 {
		t.Fatalf("value = %d", r.Value)
	}
	if r.Done < 60*sim.Nanosecond {
		t.Fatalf("first touch should pay DRAM latency, done=%v", r.Done)
	}
	// Second load: L1 hit, free.
	r, _ = sys.Load(sim.Microsecond, addr, 4, 5)
	if r.Done != sim.Microsecond {
		t.Fatalf("hit done = %v", r.Done)
	}
}

func TestSystemStreamViewLoad(t *testing.T) {
	sys := testSystem(ViewScratchpad, false)
	in := sys.Streams.In[1]
	page := make([]byte, 64)
	for i := range page {
		page[i] = byte(i)
	}
	in.Push(page, 500*sim.Nanosecond)

	addr := uint32(StreamInViewBase + 1*StreamViewStride + 8)
	r, err := sys.Load(0, addr, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != 0x0b0a0908 {
		t.Fatalf("view value = %#x", r.Value)
	}
	if r.Done != 500*sim.Nanosecond {
		t.Fatalf("view availability gating: done = %v", r.Done)
	}

	// Not yet delivered: blocked.
	r, err = sys.Load(0, addr+64, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != LoadBlocked {
		t.Fatalf("beyond tail: %v", r.Status)
	}
}

func TestSystemStreamViewCachedPath(t *testing.T) {
	sys := testSystem(ViewCached, true)
	in := sys.Streams.In[0]
	in.Push(make([]byte, 128), 0)
	addr := uint32(StreamInViewBase)
	r, err := sys.Load(0, addr, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Cached path: compulsory miss to DRAM.
	if r.Done < 60*sim.Nanosecond {
		t.Fatalf("cached view first touch done = %v", r.Done)
	}
	if sys.L1.Stats().Misses == 0 {
		t.Error("view access did not touch cache")
	}
	// Same line again: hit.
	r, _ = sys.Load(sim.Microsecond, addr+4, 4, 9)
	if r.Done != sim.Microsecond {
		t.Fatalf("cached view hit done = %v", r.Done)
	}
}

func TestSystemStreamViewWrapReconstruction(t *testing.T) {
	sys := testSystem(ViewScratchpad, false)
	in := sys.Streams.In[0]
	// Advance the stream far, then verify view addressing still resolves.
	total := 0
	for total < 300 {
		in.Push(make([]byte, 64), 0)
		for i := 0; i < 64; i++ {
			in.Load(0, 1)
		}
		total += 64
	}
	marker := make([]byte, 64)
	marker[3] = 0x7f
	in.Push(marker, 0)
	abs := in.Head() + 3
	addr := uint32(StreamInViewBase + (abs % StreamViewStride))
	r, err := sys.Load(0, addr, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != 0x7f {
		t.Fatalf("wrapped view load = %#x", r.Value)
	}
}

func TestSystemOutViewSequentialStore(t *testing.T) {
	sys := testSystem(ViewScratchpad, false)
	base := uint32(StreamOutViewBase)
	for i := uint32(0); i < 8; i += 4 {
		r, err := sys.Store(0, base+i, 4, 0x11111111*uint32(i/4+1), 0)
		if err != nil {
			t.Fatal(err)
		}
		if r.Status != LoadOK {
			t.Fatalf("store %d blocked", i)
		}
	}
	out := sys.Streams.Out[0]
	got := out.Drain(8, 0)
	if got[0] != 0x11 || got[4] != 0x22 {
		t.Fatalf("out data = %v", got)
	}
	// Non-sequential store is a kernel bug.
	if _, err := sys.Store(0, base+100, 4, 0, 0); err == nil {
		t.Fatal("non-sequential store accepted")
	}
}

func TestSystemOutViewFullBlocks(t *testing.T) {
	sys := testSystem(ViewScratchpad, false)
	out := sys.Streams.Out[0]
	cap := out.WindowBytes()
	base := uint32(StreamOutViewBase)
	for i := 0; i < cap; i += 4 {
		r, err := sys.Store(0, base+uint32(i), 4, 0, 0)
		if err != nil || r.Status != LoadOK {
			t.Fatalf("fill store %d: %v %v", i, err, r.Status)
		}
	}
	r, err := sys.Store(0, base+uint32(cap%StreamViewStride), 4, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != LoadBlocked {
		t.Fatal("store to full window not blocked")
	}
}

func TestSystemStreamOps(t *testing.T) {
	sys := testSystem(ViewScratchpad, false)
	in := sys.Streams.In[0]
	in.Push([]byte{1, 2, 3, 4, 5, 6, 7, 8}, 0)
	in.Close()

	r, err := sys.StreamLoad(0, 0, 4)
	if err != nil || r.Status != LoadOK || r.Value != 0x04030201 {
		t.Fatalf("StreamLoad: %+v %v", r, err)
	}
	r, _ = sys.StreamPeek(0, 0, 2, 1)
	if r.Value != 0x0706 {
		t.Fatalf("StreamPeek = %#x", r.Value)
	}
	if eos, _ := sys.StreamEnd(0); eos != 0 {
		t.Fatal("premature EOS")
	}
	sys.StreamAdv(0, 0, 4)
	if eos, _ := sys.StreamEnd(0); eos != 1 {
		t.Fatal("EOS not reported")
	}
	head, _ := sys.StreamCsr(0, 0)
	tail, _ := sys.StreamCsr(0, 1)
	if head != 8 || tail != 8 {
		t.Fatalf("CSRs: head=%d tail=%d", head, tail)
	}
}

func TestSystemStreamExtraCycles(t *testing.T) {
	sys := testSystem(ViewScratchpad, false)
	sys.StreamExtraCycles = 1
	sys.Streams.In[0].Push(make([]byte, 8), 0)
	r, _ := sys.StreamLoad(0, 0, 4)
	if r.Done != sim.Nanosecond {
		t.Fatalf("extra cycle not applied: %v", r.Done)
	}
}

func TestSystemStreamStore(t *testing.T) {
	sys := testSystem(ViewScratchpad, false)
	r, err := sys.StreamStore(0, 1, 2, 0xbeef)
	if err != nil || r.Status != LoadOK {
		t.Fatalf("StreamStore: %+v %v", r, err)
	}
	got := sys.Streams.Out[1].Drain(2, 0)
	if got[0] != 0xef || got[1] != 0xbe {
		t.Fatalf("stored = %v", got)
	}
}
