package memhier

import (
	"bytes"
	"math/rand"
	"testing"

	"assasin/internal/sim"
)

func TestInStreamBasicFlow(t *testing.T) {
	s := NewInStream(2, 16) // 32-byte window
	if !s.CanPush(16) {
		t.Fatal("fresh stream cannot accept a page")
	}
	page := make([]byte, 16)
	for i := range page {
		page[i] = byte(i + 1)
	}
	if err := s.Push(page, 100); err != nil {
		t.Fatal(err)
	}
	if s.Tail() != 16 || s.Head() != 0 || s.Buffered() != 16 {
		t.Fatalf("pointers: head=%d tail=%d", s.Head(), s.Tail())
	}

	// Load before availability: value ready at the page arrival time.
	v, ready, st := s.Load(50, 4)
	if st != LoadOK {
		t.Fatalf("status = %v", st)
	}
	if v != 0x04030201 {
		t.Fatalf("value = %#x", v)
	}
	if ready != 100 {
		t.Fatalf("ready = %v, want 100", ready)
	}
	// Load after availability: ready immediately.
	_, ready, _ = s.Load(200, 4)
	if ready != 200 {
		t.Fatalf("ready = %v, want 200", ready)
	}
	if s.Head() != 8 {
		t.Fatalf("head = %d", s.Head())
	}
}

func TestInStreamBlockedAndEOS(t *testing.T) {
	s := NewInStream(2, 16)
	if _, _, st := s.Load(0, 4); st != LoadBlocked {
		t.Fatalf("empty open stream: %v, want blocked", st)
	}
	s.Push(make([]byte, 4), 0)
	s.Close()
	if _, _, st := s.Load(0, 4); st != LoadOK {
		t.Fatal("data before EOS not readable")
	}
	if _, _, st := s.Load(0, 4); st != LoadEOS {
		t.Fatal("exhausted closed stream not EOS")
	}
	if !s.Exhausted() {
		t.Error("Exhausted() false")
	}
}

func TestInStreamWindowCapacity(t *testing.T) {
	s := NewInStream(2, 16)
	s.Push(make([]byte, 16), 0)
	s.Push(make([]byte, 16), 0)
	if s.CanPush(16) {
		t.Fatal("full window accepts more")
	}
	if err := s.Push(make([]byte, 16), 0); err == nil {
		t.Fatal("overflow push succeeded")
	}
	// Consuming frees space.
	s.Load(0, 4)
	if !s.CanPush(4) || s.CanPush(16) {
		t.Fatalf("window accounting wrong: buffered=%d", s.Buffered())
	}
}

func TestInStreamRingWrap(t *testing.T) {
	s := NewInStream(2, 8) // 16-byte ring
	var want []byte
	var got []byte
	for round := 0; round < 5; round++ {
		page := make([]byte, 8)
		for i := range page {
			page[i] = byte(round*8 + i)
		}
		if err := s.Push(page, 0); err != nil {
			t.Fatal(err)
		}
		want = append(want, page...)
		for i := 0; i < 8; i++ {
			v, _, st := s.Load(0, 1)
			if st != LoadOK {
				t.Fatalf("round %d load %d: %v", round, i, st)
			}
			got = append(got, byte(v))
		}
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("ring data corrupted:\n got %v\nwant %v", got, want)
	}
}

func TestInStreamPeekAdv(t *testing.T) {
	s := NewInStream(2, 16)
	page := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	s.Push(page, 0)
	v, _, st := s.Peek(0, 2, 2)
	if st != LoadOK || v != 0x0403 {
		t.Fatalf("peek = %#x (%v)", v, st)
	}
	if s.Head() != 0 {
		t.Fatal("peek moved head")
	}
	if err := s.Adv(4); err != nil {
		t.Fatal(err)
	}
	v, _, _ = s.Load(0, 1)
	if v != 5 {
		t.Fatalf("after adv, load = %d, want 5", v)
	}
	if err := s.Adv(100); err == nil {
		t.Fatal("Adv beyond tail allowed")
	}
}

func TestInStreamReadAt(t *testing.T) {
	s := NewInStream(4, 8)
	for p := 0; p < 3; p++ {
		page := make([]byte, 8)
		for i := range page {
			page[i] = byte(p*8 + i)
		}
		s.Push(page, sim.Time(p)*100)
	}
	// Absolute reads anywhere in the window.
	v, ready, st := s.ReadAt(0, 10, 1)
	if st != LoadOK || v != 10 {
		t.Fatalf("ReadAt(10) = %d (%v)", v, st)
	}
	if ready != 100 { // byte 10 is in page 1, available at 100
		t.Fatalf("ReadAt ready = %v", ready)
	}
	// Beyond delivered: blocked.
	if _, _, st := s.ReadAt(0, 24, 1); st != LoadBlocked {
		t.Fatalf("ReadAt beyond tail: %v", st)
	}
	// Before head after release: EOS (kernel bug signal).
	s.Adv(8)
	if _, _, st := s.ReadAt(0, 4, 1); st != LoadEOS {
		t.Fatalf("ReadAt before head: %v", st)
	}
}

func TestInStreamAvailabilityMonotone(t *testing.T) {
	s := NewInStream(4, 8)
	s.Push(make([]byte, 8), 500)
	s.Push(make([]byte, 8), 100) // earlier than predecessor: clamped to 500
	_, ready, _ := s.ReadAt(0, 12, 1)
	if ready != 500 {
		t.Fatalf("availability not monotone: %v", ready)
	}
}

func TestInStreamCallbacks(t *testing.T) {
	s := NewInStream(2, 8)
	pushes, frees := 0, 0
	s.OnPush = func(sim.Time) { pushes++ }
	s.OnFree = func() { frees++ }
	s.Push(make([]byte, 8), 0)
	s.Load(0, 4)
	s.Adv(4)
	if pushes != 1 || frees != 2 {
		t.Fatalf("callbacks: pushes=%d frees=%d", pushes, frees)
	}
}

func TestOutStreamAppendDrain(t *testing.T) {
	s := NewOutStream(2, 8) // 16 bytes
	if !s.Append(0x04030201, 4) {
		t.Fatal("append failed")
	}
	if !s.AppendBytes([]byte{9, 9}) {
		t.Fatal("append bytes failed")
	}
	if s.Buffered() != 6 {
		t.Fatalf("buffered = %d", s.Buffered())
	}
	got := s.Drain(100, 0)
	if !bytes.Equal(got, []byte{1, 2, 3, 4, 9, 9}) {
		t.Fatalf("drained = %v", got)
	}
	if s.Buffered() != 0 {
		t.Fatal("drain did not consume")
	}
}

func TestOutStreamFullBlocks(t *testing.T) {
	s := NewOutStream(1, 8)
	for i := 0; i < 2; i++ {
		if !s.Append(0, 4) {
			t.Fatal("append within capacity failed")
		}
	}
	if s.Append(0, 4) {
		t.Fatal("append beyond capacity succeeded")
	}
	freed := sim.Time(-1)
	s.OnSpace = func(at sim.Time) { freed = at }
	s.Drain(4, 777)
	if freed != 777 {
		t.Fatalf("OnSpace at %v", freed)
	}
	if !s.Append(0, 4) {
		t.Fatal("append after drain failed")
	}
}

func TestOutStreamRingWrapLong(t *testing.T) {
	s := NewOutStream(2, 8)
	rng := rand.New(rand.NewSource(5))
	var want, got []byte
	for i := 0; i < 200; i++ {
		b := byte(rng.Intn(256))
		if !s.Append(uint32(b), 1) {
			t.Fatal("unexpected full")
		}
		want = append(want, b)
		if s.Buffered() > 12 {
			got = append(got, s.Drain(8, 0)...)
		}
	}
	got = append(got, s.Drain(1<<20, 0)...)
	if !bytes.Equal(got, want) {
		t.Fatal("out ring corrupted")
	}
}

func TestStreamBufferConstruction(t *testing.T) {
	sb := NewStreamBuffer(8, 2, 16<<10) // the paper's S=8, P=2, 16 KiB pages
	if len(sb.In) != 8 || len(sb.Out) != 8 {
		t.Fatal("slot count wrong")
	}
	if sb.In[0].WindowBytes() != 32<<10 {
		t.Fatalf("window = %d, want 32 KiB", sb.In[0].WindowBytes())
	}
	// Total input capacity = 8 slots × 2 pages × 16 KiB = 256 KiB... the
	// paper's 64 KiB I is reached with smaller windows; geometry is up to
	// the ssd package. Here just verify independence of slots.
	sb.In[0].Push(make([]byte, 16), 0)
	if sb.In[1].Buffered() != 0 {
		t.Error("slots share state")
	}
}
