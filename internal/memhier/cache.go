package memhier

import (
	"fmt"

	"assasin/internal/sim"
)

// NextLevel is the memory level a cache misses to: another cache or DRAM.
type NextLevel interface {
	// FetchLine reads size bytes at addr and returns the completion time.
	FetchLine(at sim.Time, addr uint32, size int, client string) sim.Time
	// WritebackLine writes size bytes at addr. Writebacks are posted (the
	// issuing cache does not wait), so no completion time is returned; the
	// traffic still occupies the level.
	WritebackLine(at sim.Time, addr uint32, size int, client string)
}

// DRAMLevel adapts DRAM to the NextLevel interface.
type DRAMLevel struct{ DRAM *DRAM }

// FetchLine implements NextLevel.
func (d DRAMLevel) FetchLine(at sim.Time, addr uint32, size int, client string) sim.Time {
	return d.DRAM.Access(at, size, false, client)
}

// WritebackLine implements NextLevel.
func (d DRAMLevel) WritebackLine(at sim.Time, addr uint32, size int, client string) {
	d.DRAM.Access(at, size, true, client)
}

// CacheConfig sizes one cache level.
type CacheConfig struct {
	Name     string
	Size     int // total bytes
	Ways     int
	LineSize int // bytes
	// HitLatency is added to hit completions. L1 hits overlap the pipeline
	// (0); L2 hits cost a fixed access time.
	HitLatency sim.Time
}

// CacheStats counts cache events.
type CacheStats struct {
	Hits            int64
	Misses          int64
	Evictions       int64
	Writebacks      int64
	PrefetchIssued  int64
	PrefetchUseful  int64 // demand hits on lines still in flight or brought by prefetch
	DelayedHitTime  sim.Time
	MissServiceTime sim.Time
}

type cacheLine struct {
	tag        uint32
	valid      bool
	dirty      bool
	prefetched bool
	readyAt    sim.Time // when an in-flight fill completes
	lastUse    uint64
}

// Cache is a set-associative, write-back, write-allocate cache timing model.
// It tracks tags only; functional data lives in the backing SparseMem or
// stream windows.
type Cache struct {
	cfg      CacheConfig
	next     NextLevel
	sets     [][]cacheLine
	setMask  uint32
	lineBits uint
	useTick  uint64
	stats    CacheStats
	// prefetcher, if set, observes demand accesses and issues fills.
	prefetcher *Prefetcher
}

// NewCache returns a cache with the given geometry, missing to next.
func NewCache(cfg CacheConfig, next NextLevel) *Cache {
	if cfg.LineSize <= 0 || cfg.Size <= 0 || cfg.Ways <= 0 {
		panic(fmt.Sprintf("memhier: bad cache config %+v", cfg))
	}
	nLines := cfg.Size / cfg.LineSize
	nSets := nLines / cfg.Ways
	if nSets == 0 || nSets&(nSets-1) != 0 {
		panic(fmt.Sprintf("memhier: cache %q: set count %d not a power of two", cfg.Name, nSets))
	}
	lineBits := uint(0)
	for 1<<lineBits < cfg.LineSize {
		lineBits++
	}
	if 1<<lineBits != cfg.LineSize {
		panic(fmt.Sprintf("memhier: cache %q: line size %d not a power of two", cfg.Name, cfg.LineSize))
	}
	sets := make([][]cacheLine, nSets)
	lines := make([]cacheLine, nLines)
	for i := range sets {
		sets[i] = lines[i*cfg.Ways : (i+1)*cfg.Ways]
	}
	return &Cache{cfg: cfg, next: next, sets: sets, setMask: uint32(nSets - 1), lineBits: lineBits}
}

// AttachPrefetcher installs a prefetcher that observes this cache's demand
// stream and fills this cache.
func (c *Cache) AttachPrefetcher(p *Prefetcher) {
	c.prefetcher = p
	p.target = c
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

// Stats returns a copy of the counters.
func (c *Cache) Stats() CacheStats { return c.stats }

func (c *Cache) lineAddr(addr uint32) uint32 { return addr &^ uint32(c.cfg.LineSize-1) }

func (c *Cache) lookup(addr uint32) (*cacheLine, []cacheLine) {
	set := c.sets[(addr>>c.lineBits)&c.setMask]
	tag := addr >> c.lineBits
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return &set[i], set
		}
	}
	return nil, set
}

func (c *Cache) victim(set []cacheLine) *cacheLine {
	v := &set[0]
	for i := 1; i < len(set); i++ {
		if !set[i].valid {
			return &set[i]
		}
		if set[i].lastUse < v.lastUse {
			v = &set[i]
		}
	}
	return v
}

// Access services a demand access of size bytes at addr issued at time at by
// client, with the program counter pc driving the prefetcher. It returns
// the completion time. Accesses that straddle a line boundary touch both
// lines.
func (c *Cache) Access(at sim.Time, addr uint32, size int, write bool, pc uint32, client string) sim.Time {
	done := at
	first := c.lineAddr(addr)
	last := c.lineAddr(addr + uint32(size) - 1)
	for la := first; ; la += uint32(c.cfg.LineSize) {
		d := c.accessLine(at, la, write, client)
		done = sim.MaxT(done, d)
		if la == last {
			break
		}
	}
	if c.prefetcher != nil {
		c.prefetcher.Observe(at, pc, addr, client)
	}
	return done
}

func (c *Cache) accessLine(at sim.Time, lineAddr uint32, write bool, client string) sim.Time {
	c.useTick++
	line, set := c.lookup(lineAddr)
	if line != nil {
		c.stats.Hits++
		line.lastUse = c.useTick
		if write {
			line.dirty = true
		}
		done := at + c.cfg.HitLatency
		if line.readyAt > at { // hit under an in-flight (often prefetched) fill
			if line.prefetched {
				c.stats.PrefetchUseful++
			}
			c.stats.DelayedHitTime += line.readyAt - at
			done = line.readyAt + c.cfg.HitLatency
		} else if line.prefetched {
			c.stats.PrefetchUseful++
			line.prefetched = false
		}
		return done
	}

	// Miss: allocate (write-allocate for stores too).
	c.stats.Misses++
	v := c.victim(set)
	if v.valid {
		c.stats.Evictions++
		if v.dirty {
			c.stats.Writebacks++
			victimAddr := v.tag << c.lineBits
			c.next.WritebackLine(at, victimAddr, c.cfg.LineSize, client)
		}
	}
	fillDone := c.next.FetchLine(at+c.cfg.HitLatency, lineAddr, c.cfg.LineSize, client)
	c.stats.MissServiceTime += fillDone - at
	*v = cacheLine{tag: lineAddr >> c.lineBits, valid: true, dirty: write, readyAt: fillDone, lastUse: c.useTick}
	return fillDone
}

// Prefetch installs lineAddr if absent, fetching it from the next level,
// and reports whether a fill was actually issued. The demand path is not
// blocked; a later demand access waits only for the remaining fill time.
func (c *Cache) Prefetch(at sim.Time, lineAddr uint32, client string) bool {
	lineAddr = c.lineAddr(lineAddr)
	if line, _ := c.lookup(lineAddr); line != nil {
		return false // already present or in flight
	}
	c.useTick++
	set := c.sets[(lineAddr>>c.lineBits)&c.setMask]
	v := c.victim(set)
	if v.valid {
		c.stats.Evictions++
		if v.dirty {
			c.stats.Writebacks++
			c.next.WritebackLine(at, v.tag<<c.lineBits, c.cfg.LineSize, client)
		}
	}
	fillDone := c.next.FetchLine(at, lineAddr, c.cfg.LineSize, client)
	c.stats.PrefetchIssued++
	*v = cacheLine{tag: lineAddr >> c.lineBits, valid: true, readyAt: fillDone, lastUse: c.useTick, prefetched: true}
	return true
}

// Contains reports whether lineAddr's line is resident (for tests).
func (c *Cache) Contains(addr uint32) bool {
	line, _ := c.lookup(c.lineAddr(addr))
	return line != nil
}

// FetchLine implements NextLevel so caches can stack (L1 misses to L2).
func (c *Cache) FetchLine(at sim.Time, addr uint32, size int, client string) sim.Time {
	done := at
	first := c.lineAddr(addr)
	last := c.lineAddr(addr + uint32(size) - 1)
	for la := first; ; la += uint32(c.cfg.LineSize) {
		d := c.accessLine(at, la, false, client)
		done = sim.MaxT(done, d)
		if la == last {
			break
		}
	}
	return done
}

// WritebackLine implements NextLevel.
func (c *Cache) WritebackLine(at sim.Time, addr uint32, size int, client string) {
	first := c.lineAddr(addr)
	last := c.lineAddr(addr + uint32(size) - 1)
	for la := first; ; la += uint32(c.cfg.LineSize) {
		c.accessLine(at, la, true, client)
		if la == last {
			break
		}
	}
}
