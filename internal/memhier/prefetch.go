package memhier

import "assasin/internal/sim"

// Prefetcher is a delta-correlating prediction table (DCPT) style
// prefetcher, standing in for the best-performing Gem5 prefetcher in the
// paper's Prefetch configuration. Each load PC gets a table entry tracking
// its last address and delta; when the same delta repeats the prefetcher
// issues fills for the next Degree cache lines along that direction.
//
// For the streaming access patterns of computational-storage kernels this
// captures DCPT's essential behaviour: near-perfect latency hiding of
// sequential flash-page walks, with no reduction in DRAM bandwidth demand —
// which is exactly why the paper finds Prefetch helps latency but cannot
// break the memory wall.
type Prefetcher struct {
	// Degree is how many lines ahead to prefetch once a pattern locks.
	Degree int
	// TableSize bounds the number of tracked PCs (FIFO replacement).
	TableSize int

	target  *Cache
	entries map[uint32]*dcptEntry
	order   []uint32
	stats   PrefetchStats
}

// PrefetchStats counts predictor behaviour.
type PrefetchStats struct {
	Observations int64
	PatternHits  int64
	Issued       int64
}

type dcptEntry struct {
	lastAddr  uint32
	lastDelta int32
}

// NewPrefetcher returns a DCPT-style prefetcher with the given degree.
func NewPrefetcher(degree int) *Prefetcher {
	if degree <= 0 {
		degree = 4
	}
	return &Prefetcher{Degree: degree, TableSize: 64, entries: make(map[uint32]*dcptEntry)}
}

// Stats returns a copy of the counters.
func (p *Prefetcher) Stats() PrefetchStats { return p.stats }

// Observe records a demand access by pc at addr and issues prefetches when a
// delta pattern repeats.
func (p *Prefetcher) Observe(at sim.Time, pc, addr uint32, client string) {
	if p.target == nil {
		return
	}
	p.stats.Observations++
	e := p.entries[pc]
	if e == nil {
		if len(p.order) >= p.TableSize {
			oldest := p.order[0]
			p.order = p.order[1:]
			delete(p.entries, oldest)
		}
		p.entries[pc] = &dcptEntry{lastAddr: addr}
		p.order = append(p.order, pc)
		return
	}
	delta := int32(addr - e.lastAddr)
	if delta != 0 && delta == e.lastDelta {
		p.stats.PatternHits++
		lineSize := int32(p.target.cfg.LineSize)
		dir := int32(1)
		if delta < 0 {
			dir = -1
		}
		base := p.target.lineAddr(addr)
		for i := int32(1); i <= int32(p.Degree); i++ {
			la := base + uint32(dir*lineSize*i)
			if p.target.Prefetch(at, la, client) {
				p.stats.Issued++
			}
		}
	}
	if delta != 0 {
		e.lastDelta = delta
		e.lastAddr = addr
	}
}
