package memhier

import (
	"bytes"
	"testing"

	"assasin/internal/sim"
)

// TestInStreamPeekPastDelivered pins the boundary behavior of Peek when the
// requested extent reaches past Tail: blocked while the producer is live,
// EOS once it closes, and OK again for extents that fit.
func TestInStreamPeekPastDelivered(t *testing.T) {
	s := NewInStream(2, 16)
	if err := s.Push([]byte{1, 2, 3, 4, 5, 6}, 10); err != nil {
		t.Fatal(err)
	}
	// Extent off+width == 6 is exactly Tail: readable.
	if v, _, st := s.Peek(100, 2, 4); st != LoadOK || v != 0x06050403 {
		t.Fatalf("Peek(2,4) = %#x, %v; want 0x06050403, OK", v, st)
	}
	// One byte past Tail: blocked while open…
	if _, _, st := s.Peek(100, 3, 4); st != LoadBlocked {
		t.Fatalf("Peek past Tail on open stream = %v, want blocked", st)
	}
	// …and EOS once the producer closes, even with bytes still buffered.
	s.Close()
	if _, _, st := s.Peek(100, 3, 4); st != LoadEOS {
		t.Fatalf("Peek past Tail on closed stream = %v, want EOS", st)
	}
	if v, _, st := s.Peek(100, 0, 4); st != LoadOK || v != 0x04030201 {
		t.Fatalf("in-window Peek after close = %#x, %v; want OK", v, st)
	}
}

// TestInStreamAdvBeyondBuffered pins that Adv past Tail fails without moving
// Head or corrupting later accesses.
func TestInStreamAdvBeyondBuffered(t *testing.T) {
	s := NewInStream(2, 16)
	if err := s.Push([]byte{1, 2, 3, 4}, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Adv(5); err == nil {
		t.Fatal("Adv(5) with 4 buffered bytes succeeded")
	}
	if err := s.Adv(-1); err == nil {
		t.Fatal("Adv(-1) succeeded")
	}
	if s.Head() != 0 {
		t.Fatalf("failed Adv moved Head to %d", s.Head())
	}
	if err := s.Adv(4); err != nil {
		t.Fatal(err)
	}
	if s.Head() != 4 || s.Buffered() != 0 {
		t.Fatalf("head=%d buffered=%d after full Adv", s.Head(), s.Buffered())
	}
}

// TestInStreamTrimAvailInterleaved interleaves Push and Load with
// non-monotonic availableAt arguments. Push clamps availability to be
// monotone (a page cannot be usable before its predecessors), and trimAvail
// must keep availableAtOffset/BulkAvail consistent as consumed segments are
// dropped.
func TestInStreamTrimAvailInterleaved(t *testing.T) {
	s := NewInStream(4, 8) // 32-byte window
	if err := s.Push([]byte{1, 2, 3, 4, 5, 6, 7, 8}, 100); err != nil {
		t.Fatal(err)
	}
	// Earlier availableAt than the predecessor: clamped up to 100.
	if err := s.Push([]byte{9, 10, 11, 12}, 40); err != nil {
		t.Fatal(err)
	}
	if got := s.BulkAvail(99); got != 0 {
		t.Fatalf("BulkAvail(99) = %d, want 0", got)
	}
	if got := s.BulkAvail(100); got != 12 {
		t.Fatalf("BulkAvail(100) = %d, want 12 (second page clamped to 100)", got)
	}

	// Consume the first page across both segments; trimAvail drops only
	// fully-consumed segments.
	for i := 0; i < 2; i++ {
		if _, ready, st := s.Load(100, 4); st != LoadOK || ready != 100 {
			t.Fatalf("load %d: ready=%v st=%v", i, ready, st)
		}
	}
	if got := s.BulkAvail(100); got != 4 {
		t.Fatalf("BulkAvail after consuming 8 = %d, want 4", got)
	}

	// A later push with yet another backdated time still lands after 100.
	if err := s.Push([]byte{13, 14, 15, 16}, 10); err != nil {
		t.Fatal(err)
	}
	if _, ready, st := s.Load(50, 4); st != LoadOK || ready != 100 {
		t.Fatalf("backdated segment ready=%v st=%v, want 100, OK", ready, st)
	}
	// The final page's bytes were delivered at (clamped) time 100 as well.
	v, ready, st := s.Load(60, 4)
	if st != LoadOK || v != 0x100f0e0d || ready != 100 {
		t.Fatalf("final load = %#x ready=%v st=%v", v, ready, st)
	}
	if s.Buffered() != 0 {
		t.Fatalf("buffered = %d after draining everything", s.Buffered())
	}
}

// TestInStreamBulkAvail covers the fused-interpreter budget query: only
// segments usable at the query time count, capped at Tail, zero once
// everything is consumed.
func TestInStreamBulkAvail(t *testing.T) {
	s := NewInStream(4, 8)
	if got := s.BulkAvail(1000); got != 0 {
		t.Fatalf("empty stream BulkAvail = %d", got)
	}
	s.Push(make([]byte, 8), 10)
	s.Push(make([]byte, 8), 20)
	s.Push(make([]byte, 4), 30)
	for _, c := range []struct {
		at   sim.Time
		want int64
	}{{5, 0}, {10, 8}, {19, 8}, {20, 16}, {30, 20}, {1000, 20}} {
		if got := s.BulkAvail(c.at); got != c.want {
			t.Fatalf("BulkAvail(%v) = %d, want %d", c.at, got, c.want)
		}
	}
	if err := s.Adv(10); err != nil {
		t.Fatal(err)
	}
	if got := s.BulkAvail(1000); got != 10 {
		t.Fatalf("BulkAvail after Adv(10) = %d, want 10", got)
	}
}

// TestInStreamLoadDirectMatchesLoad drives LoadDirect/PeekDirect (the fused
// fast path) against Load/Peek on a second identical stream: same values,
// same Head movement, same OnFree callbacks — including across a ring wrap.
func TestInStreamLoadDirectMatchesLoad(t *testing.T) {
	mk := func() *InStream {
		s := NewInStream(2, 8) // 16-byte window to force wrapping
		return s
	}
	fast, slow := mk(), mk()
	fastFrees, slowFrees := 0, 0
	fast.OnFree = func() { fastFrees++ }
	slow.OnFree = func() { slowFrees++ }

	feed := func(s *InStream, seed byte) {
		page := make([]byte, 8)
		for i := range page {
			page[i] = seed + byte(i)
		}
		if err := s.Push(page, 0); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 4; round++ {
		feed(fast, byte(round*8))
		feed(slow, byte(round*8))
		if pf, ps := fast.PeekDirect(2, 4), func() uint32 {
			v, _, _ := slow.Peek(0, 2, 4)
			return v
		}(); pf != ps {
			t.Fatalf("round %d: PeekDirect=%#x Peek=%#x", round, pf, ps)
		}
		for i := 0; i < 2; i++ {
			vf := fast.LoadDirect(4)
			vs, _, st := slow.Load(0, 4)
			if st != LoadOK || vf != vs {
				t.Fatalf("round %d load %d: direct=%#x load=%#x st=%v", round, i, vf, vs, st)
			}
		}
		if fast.Head() != slow.Head() || fast.Tail() != slow.Tail() {
			t.Fatalf("round %d: pointers diverge (%d/%d vs %d/%d)",
				round, fast.Head(), fast.Tail(), slow.Head(), slow.Tail())
		}
	}
	if fastFrees != slowFrees || fastFrees == 0 {
		t.Fatalf("OnFree counts diverge: direct=%d load=%d", fastFrees, slowFrees)
	}
}

// TestInStreamCopyOut exercises the bulk read: offsets below Head clamp,
// reads cap at Tail, and wrapped windows reassemble correctly.
func TestInStreamCopyOut(t *testing.T) {
	s := NewInStream(2, 8) // 16-byte window
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	s.Push(data[:8], 0)
	if err := s.Adv(6); err != nil { // free space, Head=6
		t.Fatal(err)
	}
	s.Push(data[8:], 0) // delivered=12, wraps at 16... not yet
	dst := make([]byte, 16)
	if n := s.CopyOut(dst, 6); n != 6 || !bytes.Equal(dst[:n], data[6:12]) {
		t.Fatalf("CopyOut from Head = %d %v", n, dst[:n])
	}
	// Offset below Head clamps to Head.
	if n := s.CopyOut(dst, 0); n != 6 || !bytes.Equal(dst[:n], data[6:12]) {
		t.Fatalf("CopyOut below Head = %d %v", n, dst[:n])
	}
	// Force a ring wrap: consume to 12, push 8 more (12..20 wraps at 16).
	if err := s.Adv(6); err != nil {
		t.Fatal(err)
	}
	more := []byte{20, 21, 22, 23, 24, 25, 26, 27}
	s.Push(more, 0)
	if n := s.CopyOut(dst, 12); n != 8 || !bytes.Equal(dst[:n], more) {
		t.Fatalf("CopyOut across wrap = %d %v", n, dst[:n])
	}
	// Short destination reads a prefix.
	short := make([]byte, 3)
	if n := s.CopyOut(short, 12); n != 3 || !bytes.Equal(short, more[:3]) {
		t.Fatalf("short CopyOut = %d %v", n, short)
	}
}

// TestOutStreamBulkAppend checks the bulk producer path against per-word
// Append: wrap handling, capacity refusal, and OnData notification.
func TestOutStreamBulkAppend(t *testing.T) {
	s := NewOutStream(2, 8) // 16-byte window
	datas := 0
	s.OnData = func() { datas++ }
	if !s.BulkAppend([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}) {
		t.Fatal("BulkAppend within capacity refused")
	}
	if s.BulkAppend(make([]byte, 7)) {
		t.Fatal("BulkAppend beyond capacity accepted")
	}
	if datas != 1 {
		t.Fatalf("OnData fired %d times, want 1", datas)
	}
	got := s.Drain(10, 0)
	if !bytes.Equal(got, []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}) {
		t.Fatalf("drained %v", got)
	}
	// Next append wraps (appended=10, window 16).
	wrap := []byte{20, 21, 22, 23, 24, 25, 26, 27}
	if !s.BulkAppend(wrap) {
		t.Fatal("wrapping BulkAppend refused")
	}
	if got := s.Drain(8, 0); !bytes.Equal(got, wrap) {
		t.Fatalf("wrapped drain = %v", got)
	}
}

// TestOutStreamScratchReuse pins the PeekBytes/Drain aliasing contract: the
// two calls share one scratch buffer (no per-call allocation), so a second
// call invalidates the first call's slice.
func TestOutStreamScratchReuse(t *testing.T) {
	s := NewOutStream(2, 8)
	s.AppendBytes([]byte{1, 2, 3, 4})
	p1 := s.PeekBytes(4)
	if !bytes.Equal(p1, []byte{1, 2, 3, 4}) {
		t.Fatalf("PeekBytes = %v", p1)
	}
	d1 := s.Drain(4, 0)
	if &p1[0] != &d1[0] {
		t.Fatal("PeekBytes and Drain returned distinct buffers; scratch not reused")
	}
	s.AppendBytes([]byte{9, 8, 7, 6})
	_ = s.Drain(4, 0)
	if !bytes.Equal(p1, []byte{9, 8, 7, 6}) {
		t.Fatalf("earlier slice not overwritten by later Drain: %v", p1)
	}

	// Steady page-size traffic must not allocate after the first call.
	s2 := NewOutStream(2, 8)
	page := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	s2.AppendBytes(page)
	s2.Drain(8, 0)
	allocs := testing.AllocsPerRun(100, func() {
		s2.AppendBytes(page)
		s2.PeekBytes(8)
		s2.Drain(8, 0)
	})
	if allocs != 0 {
		t.Fatalf("steady-state PeekBytes/Drain allocates %.1f per round", allocs)
	}
}
