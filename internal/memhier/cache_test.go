package memhier

import (
	"testing"

	"assasin/internal/sim"
)

func testDRAM() *DRAM {
	return NewDRAM(DRAMConfig{BandwidthBytesPerSec: 8e9, Latency: 60 * sim.Nanosecond})
}

func TestCacheHitMiss(t *testing.T) {
	dram := testDRAM()
	c := NewCache(CacheConfig{Name: "l1", Size: 1024, Ways: 2, LineSize: 64}, DRAMLevel{dram})

	// First access: compulsory miss, waits for DRAM (60ns latency + 8ns xfer).
	done := c.Access(0, 0x8000_0000, 4, false, 100, "t")
	if done < 60*sim.Nanosecond {
		t.Fatalf("miss done = %v, want >= 60ns", done)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("stats after miss: %+v", st)
	}

	// Same line later: hit, no extra latency (L1 HitLatency=0).
	at := 200 * sim.Nanosecond
	done = c.Access(at, 0x8000_0010, 4, false, 100, "t")
	if done != at {
		t.Fatalf("hit done = %v, want %v", done, at)
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Fatalf("stats after hit: %+v", st)
	}
}

func TestCacheHitUnderFill(t *testing.T) {
	dram := testDRAM()
	c := NewCache(CacheConfig{Name: "l1", Size: 1024, Ways: 2, LineSize: 64}, DRAMLevel{dram})
	first := c.Access(0, 0x8000_0000, 4, false, 1, "t")
	// Access the same line before the fill completes: must wait for it.
	done := c.Access(first/2, 0x8000_0020, 4, false, 1, "t")
	if done != first {
		t.Fatalf("hit-under-fill done = %v, want %v", done, first)
	}
	if st := c.Stats(); st.DelayedHitTime == 0 {
		t.Error("delayed hit not accounted")
	}
}

func TestCacheEvictionLRU(t *testing.T) {
	dram := testDRAM()
	// 2 ways, 2 sets of 64B lines => 256B cache.
	c := NewCache(CacheConfig{Name: "l1", Size: 256, Ways: 2, LineSize: 64}, DRAMLevel{dram})
	// Three lines mapping to set 0 (stride 128).
	a, b, d := uint32(0x8000_0000), uint32(0x8000_0080), uint32(0x8000_0100)
	c.Access(0, a, 4, false, 1, "t")
	c.Access(0, b, 4, false, 1, "t")
	c.Access(0, a, 4, false, 1, "t") // touch a: b becomes LRU
	c.Access(0, d, 4, false, 1, "t") // evicts b
	if !c.Contains(a) || !c.Contains(d) || c.Contains(b) {
		t.Fatalf("LRU eviction wrong: a=%v b=%v d=%v", c.Contains(a), c.Contains(b), c.Contains(d))
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d", st.Evictions)
	}
}

func TestCacheWritebackOnDirtyEviction(t *testing.T) {
	dram := testDRAM()
	c := NewCache(CacheConfig{Name: "l1", Size: 128, Ways: 1, LineSize: 64}, DRAMLevel{dram})
	c.Access(0, 0x8000_0000, 4, true, 1, "t") // dirty line in set 0
	before := dram.Client("t").WriteBytes
	c.Access(0, 0x8000_0080, 4, false, 1, "t") // evicts dirty line
	after := dram.Client("t").WriteBytes
	if after-before != 64 {
		t.Fatalf("writeback bytes = %d, want 64", after-before)
	}
	if st := c.Stats(); st.Writebacks != 1 {
		t.Fatalf("writebacks = %d", st.Writebacks)
	}
}

func TestCacheStraddlingAccess(t *testing.T) {
	dram := testDRAM()
	c := NewCache(CacheConfig{Name: "l1", Size: 1024, Ways: 2, LineSize: 64}, DRAMLevel{dram})
	c.Access(0, 0x8000_003e, 4, false, 1, "t") // straddles lines 0 and 1
	if st := c.Stats(); st.Misses != 2 {
		t.Fatalf("straddling access misses = %d, want 2", st.Misses)
	}
}

func TestCacheL2Stacking(t *testing.T) {
	dram := testDRAM()
	l2 := NewCache(CacheConfig{Name: "l2", Size: 4096, Ways: 4, LineSize: 64, HitLatency: 10 * sim.Nanosecond}, DRAMLevel{dram})
	l1 := NewCache(CacheConfig{Name: "l1", Size: 256, Ways: 2, LineSize: 64}, l2)

	l1.Access(0, 0x8000_0000, 4, false, 1, "t") // misses both, fills both
	if l2.Stats().Misses != 1 {
		t.Fatalf("l2 misses = %d", l2.Stats().Misses)
	}
	// Evict from L1 by touching conflicting lines; then re-access: should
	// hit L2 (fast) not DRAM.
	l1.Access(0, 0x8000_0100, 4, false, 1, "t")
	l1.Access(0, 0x8000_0200, 4, false, 1, "t")
	at := 10 * sim.Microsecond
	done := l1.Access(at, 0x8000_0000, 4, false, 1, "t")
	if done != at+10*sim.Nanosecond {
		t.Fatalf("L2 hit done = %v, want %v", done, at+10*sim.Nanosecond)
	}
}

func TestCachePrefetchHidesLatency(t *testing.T) {
	dram := testDRAM()
	c := NewCache(CacheConfig{Name: "l1", Size: 32 << 10, Ways: 8, LineSize: 64}, DRAMLevel{dram})
	p := NewPrefetcher(4)
	c.AttachPrefetcher(p)

	// Streaming walk; after the pattern locks, lines should be prefetched
	// ahead and demand accesses become (possibly delayed) hits.
	addr := uint32(0x8000_0000)
	at := sim.Time(0)
	var missesLate int64
	for i := 0; i < 256; i++ {
		done := c.Access(at, addr, 4, false, 42, "t")
		at = done + sim.Nanosecond
		addr += 4
		if i == 128 {
			missesLate = c.Stats().Misses
		}
	}
	missesAll := c.Stats().Misses
	// Without prefetching, 256 4B accesses over 64B lines = 16 misses; with
	// it, the second half should add at most a couple.
	if missesAll-missesLate > 3 {
		t.Fatalf("prefetcher ineffective: %d misses in second half", missesAll-missesLate)
	}
	if p.Stats().Issued == 0 {
		t.Fatal("no prefetches issued")
	}
	if c.Stats().PrefetchUseful == 0 {
		t.Fatal("no useful prefetches recorded")
	}
}

func TestPrefetcherIgnoresIrregular(t *testing.T) {
	dram := testDRAM()
	c := NewCache(CacheConfig{Name: "l1", Size: 1024, Ways: 2, LineSize: 64}, DRAMLevel{dram})
	p := NewPrefetcher(4)
	c.AttachPrefetcher(p)
	addrs := []uint32{0x8000_0000, 0x8000_1000, 0x8000_0100, 0x8000_5000, 0x8000_0200}
	for _, a := range addrs {
		c.Access(0, a, 4, false, 7, "t")
	}
	if p.Stats().Issued != 0 {
		t.Fatalf("prefetched on irregular pattern: %d", p.Stats().Issued)
	}
}

func TestCacheBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for non-power-of-two sets")
		}
	}()
	NewCache(CacheConfig{Name: "bad", Size: 192, Ways: 1, LineSize: 64}, DRAMLevel{testDRAM()})
}

func TestDRAMClientAccounting(t *testing.T) {
	d := testDRAM()
	d.Access(0, 4096, true, "fill")
	d.Access(0, 64, false, "core0")
	d.Access(0, 64, false, "core0")
	if got := d.Client("fill").WriteBytes; got != 4096 {
		t.Errorf("fill writes = %d", got)
	}
	if got := d.Client("core0").ReadBytes; got != 128 {
		t.Errorf("core0 reads = %d", got)
	}
	if d.TotalBytes() != 4096+128 {
		t.Errorf("total = %d", d.TotalBytes())
	}
	names := d.Clients()
	if len(names) != 2 || names[0] != "core0" || names[1] != "fill" {
		t.Errorf("clients = %v", names)
	}
}

func TestDRAMBandwidthContention(t *testing.T) {
	d := NewDRAM(DRAMConfig{BandwidthBytesPerSec: 1e9, Latency: 0})
	// Logically concurrent transfers may overlap within the co-simulation
	// slack window, but sustained bandwidth is enforced: 100 reads of 1 KB
	// at 1 GB/s take at least 100 µs minus the slack allowance.
	var last sim.Time
	for i := 0; i < 100; i++ {
		last = d.Access(0, 1000, false, "a")
	}
	if last < 97*sim.Microsecond {
		t.Fatalf("100µs of reads completed by %v; bandwidth not enforced", last)
	}
	// Writes queue behind the read backlog (read priority).
	w := d.Access(0, 1000, true, "b")
	if w <= last-5*sim.Microsecond {
		t.Fatalf("write at %v jumped the read backlog ending %v", w, last)
	}
}
