package memhier

import (
	"fmt"

	"assasin/internal/sim"
)

// Core-visible address map. The scratchpad occupies a fixed window; stream
// windows are exposed as per-slot "view" regions so that software-managed
// configurations (Baseline, Prefetch, UDP, AssasinSp) can walk pointers over
// staged stream data with ordinary loads/stores; everything at DRAMBase and
// above is the SSD DRAM address space.
const (
	ScratchpadBase = 0x1000_0000

	// StreamInViewBase exposes input stream slot s at
	// StreamInViewBase + s*StreamViewStride + (absoluteOffset % StreamViewStride).
	StreamInViewBase = 0x4000_0000
	// StreamOutViewBase likewise exposes output stream slots for stores.
	StreamOutViewBase = 0x6000_0000
	// StreamViewStride is the per-slot view size (16 MiB); stream windows
	// are far smaller, so view offsets are unambiguous.
	StreamViewStride = 1 << 24

	DRAMBase = 0x8000_0000
)

// ViewPath selects how stream-view accesses are timed — i.e. where staged
// stream data physically lives for this configuration.
type ViewPath int

// View paths.
const (
	// ViewScratchpad: pages are DMAed into core-local (ping-pong)
	// scratchpads; accesses cost scratchpad latency. Used by AssasinSp and
	// UDP.
	ViewScratchpad ViewPath = iota
	// ViewCached: pages are staged in SSD DRAM; accesses go through the
	// cache hierarchy. Used by Baseline and Prefetch.
	ViewCached
)

// AccessResult describes the outcome of a core memory or stream access.
type AccessResult struct {
	Value  uint32
	Done   sim.Time
	Status LoadStatus // LoadBlocked means retry after an external wake
}

// System is the per-core memory system: the address decoder plus the
// configuration's particular mix of scratchpad, caches, DRAM and stream
// buffers. The CPU model issues all data-side accesses through it.
type System struct {
	Clock      sim.Clock
	Scratchpad *Scratchpad // nil when the config has none
	L1         *Cache      // nil when the config has no data cache
	DRAM       *DRAM       // shared SSD DRAM (required)
	Backing    *SparseMem  // functional data for the DRAM space
	Streams    *StreamBuffer
	ViewPath   ViewPath
	// StreamExtraCycles is the added pipeline cost of ISA stream-buffer
	// accesses beyond the base cycle (0 = the single-cycle prefetched head
	// FIFO of Section V-B).
	StreamExtraCycles int
	// Client tags this core's DRAM traffic.
	Client string
}

// viewTiming applies the configuration's data-path timing to a stream-view
// access that functionally resolved at `ready`.
func (m *System) viewTiming(at, ready sim.Time, addr uint32, size int, write bool, pc uint32) sim.Time {
	switch m.ViewPath {
	case ViewScratchpad:
		if m.Scratchpad != nil {
			ready = sim.MaxT(ready, at+m.Scratchpad.ExtraLatency(m.Clock))
		}
	case ViewCached:
		if m.L1 != nil {
			ready = sim.MaxT(ready, m.L1.Access(at, addr, size, write, pc, m.Client))
		} else if m.DRAM != nil {
			ready = sim.MaxT(ready, m.DRAM.Access(at, size, write, m.Client))
		}
	}
	return ready
}

func (m *System) inStream(slot int) (*InStream, error) {
	if m.Streams == nil || slot >= len(m.Streams.In) {
		return nil, fmt.Errorf("memhier: no input stream slot %d", slot)
	}
	return m.Streams.In[slot], nil
}

func (m *System) outStream(slot int) (*OutStream, error) {
	if m.Streams == nil || slot >= len(m.Streams.Out) {
		return nil, fmt.Errorf("memhier: no output stream slot %d", slot)
	}
	return m.Streams.Out[slot], nil
}

// Load performs a data load of size bytes at addr at time at (pc drives the
// prefetcher). LoadBlocked results mean the access touched stream data that
// has not arrived; the core should stall and retry.
func (m *System) Load(at sim.Time, addr uint32, size int, pc uint32) (AccessResult, error) {
	switch {
	case addr >= DRAMBase || addr < ScratchpadBase:
		// Wrap-around of small negative offsets lands below ScratchpadBase;
		// treat everything outside the defined windows as DRAM space.
		var done sim.Time
		if m.L1 != nil {
			done = m.L1.Access(at, addr, size, false, pc, m.Client)
		} else if m.DRAM != nil {
			done = m.DRAM.Access(at, size, false, m.Client)
		} else {
			done = at
		}
		return AccessResult{Value: m.Backing.Read(addr, size), Done: done}, nil

	case addr >= StreamOutViewBase:
		return AccessResult{}, fmt.Errorf("memhier: load from output stream view %#x", addr)

	case addr >= StreamInViewBase:
		slot := int((addr - StreamInViewBase) / StreamViewStride)
		st, err := m.inStream(slot)
		if err != nil {
			return AccessResult{}, err
		}
		off24 := int64((addr - StreamInViewBase) % StreamViewStride)
		// Reconstruct the absolute stream offset from the 24-bit view
		// offset and the window position.
		head := st.Head()
		abs := head + ((off24-head)%StreamViewStride+StreamViewStride)%StreamViewStride
		v, ready, status := st.ReadAt(at, abs, size)
		if status == LoadEOS {
			return AccessResult{}, fmt.Errorf("memhier: stream view load beyond stream (slot %d abs %d)", slot, abs)
		}
		if status == LoadBlocked {
			return AccessResult{Status: LoadBlocked, Done: at}, nil
		}
		ready = m.viewTiming(at, ready, addr, size, false, pc)
		return AccessResult{Value: v, Done: ready}, nil

	default: // scratchpad window
		if m.Scratchpad == nil {
			return AccessResult{}, fmt.Errorf("memhier: scratchpad load at %#x but no scratchpad", addr)
		}
		v, err := m.Scratchpad.Read(addr-ScratchpadBase, size)
		if err != nil {
			return AccessResult{}, err
		}
		return AccessResult{Value: v, Done: at + m.Scratchpad.ExtraLatency(m.Clock)}, nil
	}
}

// Store performs a data store. Stores to output stream views must be
// sequential appends (the kernels' access pattern); a full output window
// reports LoadBlocked.
func (m *System) Store(at sim.Time, addr uint32, size int, v uint32, pc uint32) (AccessResult, error) {
	switch {
	case addr >= DRAMBase || addr < ScratchpadBase:
		var done sim.Time
		if m.L1 != nil {
			done = m.L1.Access(at, addr, size, true, pc, m.Client)
		} else if m.DRAM != nil {
			done = m.DRAM.Access(at, size, true, m.Client)
		} else {
			done = at
		}
		m.Backing.Write(addr, size, v)
		return AccessResult{Done: done}, nil

	case addr >= StreamOutViewBase:
		slot := int((addr - StreamOutViewBase) / StreamViewStride)
		st, err := m.outStream(slot)
		if err != nil {
			return AccessResult{}, err
		}
		off24 := int64((addr - StreamOutViewBase) % StreamViewStride)
		if want := st.Tail() % StreamViewStride; off24 != want {
			return AccessResult{}, fmt.Errorf("memhier: non-sequential output view store (slot %d off %d, want %d)", slot, off24, want)
		}
		if !st.Append(v, size) {
			return AccessResult{Status: LoadBlocked, Done: at}, nil
		}
		done := m.viewTiming(at, at, addr, size, true, pc)
		return AccessResult{Done: done}, nil

	case addr >= StreamInViewBase:
		return AccessResult{}, fmt.Errorf("memhier: store to input stream view %#x", addr)

	default:
		if m.Scratchpad == nil {
			return AccessResult{}, fmt.Errorf("memhier: scratchpad store at %#x but no scratchpad", addr)
		}
		if err := m.Scratchpad.Write(addr-ScratchpadBase, size, v); err != nil {
			return AccessResult{}, err
		}
		return AccessResult{Done: at + m.Scratchpad.ExtraLatency(m.Clock)}, nil
	}
}

// StreamLoad implements the StreamLoad instruction against input slot s.
func (m *System) StreamLoad(at sim.Time, slot, width int) (AccessResult, error) {
	st, err := m.inStream(slot)
	if err != nil {
		return AccessResult{}, err
	}
	v, ready, status := st.Load(at, width)
	if status == LoadOK && m.StreamExtraCycles > 0 {
		ready = sim.MaxT(ready, at+m.Clock.Cycles(int64(m.StreamExtraCycles)))
	}
	return AccessResult{Value: v, Done: ready, Status: status}, nil
}

// StreamPeek implements the StreamPeek instruction.
func (m *System) StreamPeek(at sim.Time, slot, width int, off int64) (AccessResult, error) {
	st, err := m.inStream(slot)
	if err != nil {
		return AccessResult{}, err
	}
	v, ready, status := st.Peek(at, off, width)
	if status == LoadOK && m.StreamExtraCycles > 0 {
		ready = sim.MaxT(ready, at+m.Clock.Cycles(int64(m.StreamExtraCycles)))
	}
	return AccessResult{Value: v, Done: ready, Status: status}, nil
}

// StreamAdv implements the StreamAdvance instruction: it releases n bytes of
// input window space. Advancing beyond delivered data blocks.
func (m *System) StreamAdv(at sim.Time, slot int, n int64) (AccessResult, error) {
	st, err := m.inStream(slot)
	if err != nil {
		return AccessResult{}, err
	}
	if n > int64(st.Buffered()) {
		if st.Closed() {
			// Releasing the final partial page at end of stream.
			n = int64(st.Buffered())
		} else {
			return AccessResult{Status: LoadBlocked, Done: at}, nil
		}
	}
	if err := st.Adv(n); err != nil {
		return AccessResult{}, err
	}
	return AccessResult{Done: at}, nil
}

// StreamStore implements the StreamStore instruction against output slot s.
func (m *System) StreamStore(at sim.Time, slot, width int, v uint32) (AccessResult, error) {
	st, err := m.outStream(slot)
	if err != nil {
		return AccessResult{}, err
	}
	if !st.Append(v, width) {
		return AccessResult{Status: LoadBlocked, Done: at}, nil
	}
	done := at
	if m.StreamExtraCycles > 0 {
		done = at + m.Clock.Cycles(int64(m.StreamExtraCycles))
	}
	return AccessResult{Done: done}, nil
}

// StreamEnd implements the StreamEnd instruction: 1 when slot is exhausted.
func (m *System) StreamEnd(slot int) (uint32, error) {
	st, err := m.inStream(slot)
	if err != nil {
		return 0, err
	}
	if st.Exhausted() {
		return 1, nil
	}
	return 0, nil
}

// StreamCsr reads a stream CSR (Head/Tail of input slot s).
func (m *System) StreamCsr(slot int, csr int32) (uint32, error) {
	st, err := m.inStream(slot)
	if err != nil {
		return 0, err
	}
	switch csr {
	case 0:
		return uint32(st.Head()), nil
	case 1:
		return uint32(st.Tail()), nil
	default:
		return 0, fmt.Errorf("memhier: unknown stream CSR %d", csr)
	}
}
