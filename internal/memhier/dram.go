package memhier

import (
	"sort"

	"assasin/internal/sim"
)

// DRAM models the shared SSD DRAM: a fixed access latency plus bandwidth
// contention with read priority. Like a real memory controller, writes
// (flash fills, writebacks) are posted into a buffer and drained in the
// background, while reads only queue behind other reads — until the total
// backlog exceeds the write-buffer depth, at which point everything is
// throughput-bound. All flash-fill traffic, cache refills/writebacks,
// prefetches and firmware copies contend here — the in-SSD memory wall of
// Section III.
type DRAM struct {
	bw      float64
	latency sim.Time
	// workFinish is when all scheduled traffic (reads+writes) drains at
	// full bandwidth; readFinish serializes the read channel.
	workFinish sim.Time
	readFinish sim.Time
	busy       sim.Time
	bytes      int64
	accesses   int64
	clients    map[string]*DRAMClientStats
}

// DRAMClientStats accumulates one client's traffic.
type DRAMClientStats struct {
	ReadBytes  int64
	WriteBytes int64
	Accesses   int64
}

// DRAMConfig sizes the DRAM model.
type DRAMConfig struct {
	// BandwidthBytesPerSec is the effective sustained bandwidth (the paper
	// evaluates a 2 GB LPDDR5 part at 8 GB/s effective).
	BandwidthBytesPerSec float64
	// Latency is the idle access latency (row activation + CAS + transfer
	// start), applied per access on top of bandwidth occupancy.
	Latency sim.Time
}

// DefaultDRAMConfig matches the paper's evaluation configuration.
func DefaultDRAMConfig() DRAMConfig {
	return DRAMConfig{BandwidthBytesPerSec: 8e9, Latency: 60 * sim.Nanosecond}
}

// NewDRAM returns a DRAM model.
func NewDRAM(cfg DRAMConfig) *DRAM {
	d := &DRAM{
		bw:      cfg.BandwidthBytesPerSec,
		latency: cfg.Latency,
		clients: make(map[string]*DRAMClientStats),
	}
	return d
}

func (d *DRAM) transferTime(size int) sim.Time {
	if size <= 0 || d.bw <= 0 {
		return 0
	}
	return sim.Time(float64(size) / d.bw * float64(sim.Second))
}

// Access services a transfer of size bytes for the named client arriving at
// time at and returns its completion time. Writes are posted (completion is
// when the write buffer drains); reads queue only behind earlier reads
// unless the total backlog exceeds the write buffer.
func (d *DRAM) Access(at sim.Time, size int, write bool, client string) sim.Time {
	st := d.clients[client]
	if st == nil {
		st = &DRAMClientStats{}
		d.clients[client] = st
	}
	st.Accesses++
	d.accesses++
	d.bytes += int64(size)

	t := d.transferTime(size)
	d.busy += t

	// The SSD co-simulation advances cores in small time quanta, so
	// logically concurrent accesses arrive in call order with overlapping
	// timestamps. Allowing the service chains to overlap by one quantum's
	// worth of slack prevents spurious serialization of concurrent cores
	// while still enforcing bandwidth over longer horizons.
	const slack = 2 * sim.Microsecond

	if write {
		// Writes are lowest priority: they queue behind all scheduled
		// traffic. Their completion gates downstream use (a staged page is
		// usable only once written), so saturation backpressures the flash
		// fill path — the closed loop that makes total traffic converge to
		// the DRAM bandwidth.
		st.WriteBytes += int64(size)
		start := sim.MaxT(at, d.workFinish-slack)
		d.workFinish = sim.MaxT(d.workFinish, start) + t
		return start + t + d.latency
	}
	// Reads bypass buffered writes (memory controllers prioritize reads);
	// they queue only behind earlier reads. Read traffic still occupies
	// total bandwidth, delaying writes.
	st.ReadBytes += int64(size)
	start := sim.MaxT(at, d.readFinish-slack)
	d.readFinish = sim.MaxT(d.readFinish, start) + t
	d.workFinish = sim.MaxT(d.workFinish, at) + t
	return start + t + d.latency
}

// TotalBytes returns all bytes transferred.
func (d *DRAM) TotalBytes() int64 { return d.bytes }

// Utilization returns busy fraction over [0, now].
func (d *DRAM) Utilization(now sim.Time) float64 {
	if now <= 0 {
		return 0
	}
	u := float64(d.busy) / float64(now)
	if u > 1 {
		u = 1
	}
	return u
}

// Bandwidth returns the configured bandwidth in bytes/second.
func (d *DRAM) Bandwidth() float64 { return d.bw }

// Client returns a copy of the named client's stats.
func (d *DRAM) Client(name string) DRAMClientStats {
	if st := d.clients[name]; st != nil {
		return *st
	}
	return DRAMClientStats{}
}

// Clients returns the client names with recorded traffic, sorted.
func (d *DRAM) Clients() []string {
	names := make([]string, 0, len(d.clients))
	for n := range d.clients {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
