package memhier

import (
	"fmt"

	"assasin/internal/sim"
	"assasin/internal/telemetry"
)

// StreamTel is the stream-buffer telemetry bundle, shared across every
// stream slot it is attached to (counts aggregate over slots and cores).
// Instrumented points sit on page-granularity or stall paths only — never
// in the per-word gather/append fast paths — so enabled-mode overhead is
// bounded by page traffic and disabled mode is a nil-pointer branch.
type StreamTel struct {
	PushPages     *telemetry.Counter   // firmware pushes into input windows
	PushBytes     *telemetry.Counter   // bytes pushed into input windows
	RefillStalls  *telemetry.Counter   // input reads that found too few bytes buffered
	OutFullStalls *telemetry.Counter   // output appends that found the window full
	DrainBytes    *telemetry.Counter   // bytes drained from output windows
	Occupancy     *telemetry.Histogram // input head/tail distance after each push
	OutOccupancy  *telemetry.Histogram // output head/tail distance after each drain
}

// NewStreamTel registers the stream-buffer metrics on sink (nil sink ->
// nil StreamTel).
func NewStreamTel(sink *telemetry.Sink) *StreamTel {
	if sink == nil {
		return nil
	}
	return &StreamTel{
		PushPages:     sink.Counter("stream", "push_pages"),
		PushBytes:     sink.Counter("stream", "push_bytes"),
		RefillStalls:  sink.Counter("stream", "refill_stalls"),
		OutFullStalls: sink.Counter("stream", "out_full_stalls"),
		DrainBytes:    sink.Counter("stream", "drain_bytes"),
		Occupancy:     sink.Histogram("stream", "in_occupancy_bytes"),
		OutOccupancy:  sink.Histogram("stream", "out_occupancy_bytes"),
	}
}

// LoadStatus describes the outcome of a stream read attempt.
type LoadStatus int

// Stream access outcomes.
const (
	// LoadOK: data returned; the ready time says when the value is usable.
	LoadOK LoadStatus = iota
	// LoadBlocked: not enough bytes buffered yet and the producer has not
	// finished; the core must stall until woken by a push.
	LoadBlocked
	// LoadEOS: the stream is exhausted (producer closed and buffer empty).
	LoadEOS
)

// availSeg records that stream bytes below End become usable at At.
type availSeg struct {
	End int64 // exclusive absolute byte offset
	At  sim.Time
}

// InStream is one input stream slot of an ASSASIN stream buffer: a circular
// window of P flash pages with Head (consume) and Tail (deliver) pointers
// exposed as CSRs. The firmware pushes pages (with their flash arrival
// times); the core consumes bytes through StreamLoad/Peek/Adv, or — for the
// software-managed scratchpad and DRAM-staged configurations — through
// window-absolute reads.
type InStream struct {
	capBytes int
	// capMask is capBytes-1 when the capacity is a power of two (the usual
	// pages×pageSize geometry), letting the per-word gather path replace the
	// int64 modulo with a mask; 0 selects the modulo fallback.
	capMask  int
	pageSize int
	ring     []byte

	consumed  int64 // Head: absolute bytes consumed/released
	delivered int64 // Tail: absolute bytes delivered
	closed    bool  // producer finished

	avail     []availSeg
	availHead int
	lastAvail sim.Time

	// OnFree, if set, is called when window space is released (the
	// firmware uses it to schedule more flash reads).
	OnFree func()
	// OnPush, if set, is called when data arrives (used to wake a stalled
	// core process at the page's availability time).
	OnPush func(at sim.Time)

	// Tel, when non-nil, counts pushes, occupancy and refill stalls.
	Tel *StreamTel
}

// NewInStream returns an input stream with a window of pages×pageSize bytes.
// The ring backing is allocated on first Push: stream slots are recreated
// per offload request and most requests use a fraction of them, so eager
// window allocation used to dominate the construction profile.
func NewInStream(pages, pageSize int) *InStream {
	if pages <= 0 || pageSize <= 0 {
		panic("memhier: bad stream window geometry")
	}
	cap := pages * pageSize
	return &InStream{capBytes: cap, capMask: ringMask(cap), pageSize: pageSize}
}

// ringMask returns cap-1 for power-of-two capacities, else 0 (modulo path).
func ringMask(cap int) int {
	if cap&(cap-1) == 0 {
		return cap - 1
	}
	return 0
}

// pos maps an absolute stream offset to a ring index.
func (s *InStream) pos(off int64) int {
	if s.capMask != 0 {
		return int(off) & s.capMask
	}
	return int(off % int64(s.capBytes))
}

// WindowBytes returns the window capacity in bytes.
func (s *InStream) WindowBytes() int { return s.capBytes }

// PageSize returns the page granularity.
func (s *InStream) PageSize() int { return s.pageSize }

// Head returns the absolute consumed-byte count (the Head CSR).
func (s *InStream) Head() int64 { return s.consumed }

// Tail returns the absolute delivered-byte count (the Tail CSR).
func (s *InStream) Tail() int64 { return s.delivered }

// Buffered returns the bytes currently in the window.
func (s *InStream) Buffered() int { return int(s.delivered - s.consumed) }

// CanPush reports whether another n bytes fit in the window.
func (s *InStream) CanPush(n int) bool { return s.Buffered()+n <= s.capBytes }

// Closed reports whether the producer has signalled end of stream.
func (s *InStream) Closed() bool { return s.closed }

// Exhausted reports end-of-stream: closed and fully consumed.
func (s *InStream) Exhausted() bool { return s.closed && s.Buffered() == 0 }

// Push delivers data (typically one flash page) that becomes usable at
// availableAt. It fails if the window lacks space or the stream is closed.
func (s *InStream) Push(data []byte, availableAt sim.Time) error {
	if s.closed {
		return fmt.Errorf("memhier: push on closed stream")
	}
	if !s.CanPush(len(data)) {
		return fmt.Errorf("memhier: stream window overflow (%d buffered + %d > %d)", s.Buffered(), len(data), s.capBytes)
	}
	if s.ring == nil {
		s.ring = make([]byte, s.capBytes)
	}
	pos := s.pos(s.delivered)
	n := copy(s.ring[pos:], data)
	copy(s.ring, data[n:])
	s.delivered += int64(len(data))
	// Availability is monotone per stream: a page can't be usable before
	// its predecessors (the firmware delivers in order).
	if availableAt < s.lastAvail {
		availableAt = s.lastAvail
	}
	s.lastAvail = availableAt
	s.avail = append(s.avail, availSeg{End: s.delivered, At: availableAt})
	if t := s.Tel; t != nil {
		t.PushPages.Inc()
		t.PushBytes.Add(int64(len(data)))
		t.Occupancy.Observe(int64(s.Buffered()))
	}
	if s.OnPush != nil {
		s.OnPush(availableAt)
	}
	return nil
}

// Close marks the producer finished.
func (s *InStream) Close() { s.closed = true }

// availableAtOffset returns when the byte at absolute offset off becomes
// usable. Caller must ensure off < delivered.
func (s *InStream) availableAtOffset(off int64) sim.Time {
	for i := s.availHead; i < len(s.avail); i++ {
		if off < s.avail[i].End {
			return s.avail[i].At
		}
	}
	return 0
}

func (s *InStream) byteAt(off int64) byte {
	return s.ring[s.pos(off)]
}

func (s *InStream) gather(off int64, width int) uint32 {
	pos := s.pos(off)
	if pos+width <= s.capBytes {
		// Width-specialized little-endian loads over an exact-width
		// subslice: one bounds check, and the compiler fuses each run of
		// byte ORs into a single load. StreamLoad traffic is almost
		// entirely 1/2/4-byte words.
		r := s.ring[pos : pos+width]
		switch width {
		case 4:
			return uint32(r[0]) | uint32(r[1])<<8 | uint32(r[2])<<16 | uint32(r[3])<<24
		case 1:
			return uint32(r[0])
		case 2:
			return uint32(r[0]) | uint32(r[1])<<8
		}
		var v uint32
		for i, b := range r {
			v |= uint32(b) << (8 * i)
		}
		return v
	}
	var v uint32
	for i := 0; i < width; i++ {
		v |= uint32(s.byteAt(off+int64(i))) << (8 * i)
	}
	return v
}

// BulkAvail returns how many buffered bytes past Head are usable at time at:
// the window the fused interpreter may consume without ever stalling on an
// in-flight page. Availability segments are per-page (not per-byte), and
// their At times are monotone, so one forward walk from the trim point
// suffices.
func (s *InStream) BulkAvail(at sim.Time) int64 {
	end := s.consumed
	for i := s.availHead; i < len(s.avail); i++ {
		if s.avail[i].At > at {
			break
		}
		end = s.avail[i].End
	}
	if end > s.delivered {
		end = s.delivered
	}
	return end - s.consumed
}

// CopyOut copies up to len(dst) delivered bytes starting at absolute stream
// offset off into dst without consuming them, returning the count copied.
// It is the bulk (memcpy) counterpart of per-word Peek for firmware-side and
// test consumers; availability times are the caller's concern.
func (s *InStream) CopyOut(dst []byte, off int64) int {
	if off < s.consumed {
		off = s.consumed
	}
	n := int(s.delivered - off)
	if n > len(dst) {
		n = len(dst)
	}
	if n <= 0 {
		return 0
	}
	pos := s.pos(off)
	c := copy(dst[:n], s.ring[pos:])
	copy(dst[c:n], s.ring)
	return n
}

// LoadDirect consumes width bytes at Head and returns the little-endian
// value, bypassing the availability scan. The caller (the fused-execution
// loop path in internal/cpu) must have already established via BulkAvail
// that the bytes are buffered and usable at the access time; the consume
// side effects (trim, OnFree) match Load exactly.
func (s *InStream) LoadDirect(width int) uint32 {
	v := s.gather(s.consumed, width)
	s.consumed += int64(width)
	s.trimAvail()
	if s.OnFree != nil {
		s.OnFree()
	}
	return v
}

// PeekDirect reads width bytes at Head+off without consuming, bypassing the
// availability scan; the same BulkAvail precondition as LoadDirect applies.
func (s *InStream) PeekDirect(off int64, width int) uint32 {
	return s.gather(s.consumed+off, width)
}

func (s *InStream) trimAvail() {
	for s.availHead < len(s.avail) && s.avail[s.availHead].End <= s.consumed {
		s.availHead++
	}
	if s.availHead > 64 && s.availHead*2 > len(s.avail) {
		// Compact in place: the live tail never overlaps destructively
		// (copy moves left), so steady-state consumption allocates nothing.
		n := copy(s.avail, s.avail[s.availHead:])
		s.avail = s.avail[:n]
		s.availHead = 0
	}
}

// Load consumes width bytes from the Head at time at. On LoadOK it returns
// the little-endian value and the time the value is ready (at, or the
// arrival time of a still-in-flight page).
func (s *InStream) Load(at sim.Time, width int) (uint32, sim.Time, LoadStatus) {
	if s.Buffered() < width {
		if s.closed {
			return 0, at, LoadEOS
		}
		if s.Tel != nil {
			s.Tel.RefillStalls.Inc()
		}
		return 0, at, LoadBlocked
	}
	ready := sim.MaxT(at, s.availableAtOffset(s.consumed+int64(width)-1))
	v := s.gather(s.consumed, width)
	s.consumed += int64(width)
	s.trimAvail()
	if s.OnFree != nil {
		s.OnFree()
	}
	return v, ready, LoadOK
}

// Peek reads width bytes at Head+off without consuming.
func (s *InStream) Peek(at sim.Time, off int64, width int) (uint32, sim.Time, LoadStatus) {
	need := off + int64(width)
	if int64(s.Buffered()) < need {
		if s.closed {
			return 0, at, LoadEOS
		}
		if s.Tel != nil {
			s.Tel.RefillStalls.Inc()
		}
		return 0, at, LoadBlocked
	}
	ready := sim.MaxT(at, s.availableAtOffset(s.consumed+need-1))
	return s.gather(s.consumed+off, width), ready, LoadOK
}

// Adv advances Head by n bytes, releasing window space. Advancing past Tail
// is an error.
func (s *InStream) Adv(n int64) error {
	if n < 0 || n > int64(s.Buffered()) {
		return fmt.Errorf("memhier: stream Adv(%d) beyond %d buffered bytes", n, s.Buffered())
	}
	s.consumed += n
	s.trimAvail()
	if s.OnFree != nil && n > 0 {
		s.OnFree()
	}
	return nil
}

// ReadAt reads width bytes at the absolute stream offset off without moving
// Head — the access mode of software-managed windows (ping-pong scratchpads
// and DRAM staging buffers), where the kernel walks a pointer and releases
// space page-wise via Adv. off must be within [Head, Tail).
func (s *InStream) ReadAt(at sim.Time, off int64, width int) (uint32, sim.Time, LoadStatus) {
	if off < s.consumed {
		return 0, at, LoadEOS // window space already released: kernel bug
	}
	if off+int64(width) > s.delivered {
		if s.closed {
			return 0, at, LoadEOS
		}
		if s.Tel != nil {
			s.Tel.RefillStalls.Inc()
		}
		return 0, at, LoadBlocked
	}
	ready := sim.MaxT(at, s.availableAtOffset(off+int64(width)-1))
	return s.gather(off, width), ready, LoadOK
}

// OutStream is one output stream slot: the core appends bytes, the firmware
// drains them page-wise toward the flash array or SSD DRAM.
type OutStream struct {
	capBytes int
	capMask  int // capBytes-1 for power-of-two windows (see InStream.capMask)
	pageSize int
	ring     []byte

	appended int64
	drained  int64
	scratch  []byte // reused by PeekBytes/Drain; see the aliasing contract there

	// OnData, if set, is called when bytes are appended (the firmware uses
	// it to schedule drains).
	OnData func()
	// OnSpace, if set, is called with the time at which window space was
	// freed (used to wake a core stalled on a full output window).
	OnSpace func(at sim.Time)

	// Tel, when non-nil, counts full-window stalls and drain traffic.
	Tel *StreamTel
}

// NewOutStream returns an output stream with a window of pages×pageSize.
// Like NewInStream, the ring backing is allocated on the first append.
func NewOutStream(pages, pageSize int) *OutStream {
	if pages <= 0 || pageSize <= 0 {
		panic("memhier: bad stream window geometry")
	}
	cap := pages * pageSize
	return &OutStream{capBytes: cap, capMask: ringMask(cap), pageSize: pageSize}
}

// pos maps an absolute stream offset to a ring index.
func (s *OutStream) pos(off int64) int {
	if s.capMask != 0 {
		return int(off) & s.capMask
	}
	return int(off % int64(s.capBytes))
}

// WindowBytes returns the window capacity.
func (s *OutStream) WindowBytes() int { return s.capBytes }

// PageSize returns the drain granularity.
func (s *OutStream) PageSize() int { return s.pageSize }

// Tail returns the absolute appended-byte count (the Tail CSR).
func (s *OutStream) Tail() int64 { return s.appended }

// Head returns the absolute drained-byte count (the Head CSR).
func (s *OutStream) Head() int64 { return s.drained }

// Buffered returns bytes appended but not yet drained.
func (s *OutStream) Buffered() int { return int(s.appended - s.drained) }

// CanAppend reports whether width more bytes fit.
func (s *OutStream) CanAppend(width int) bool { return s.Buffered()+width <= s.capBytes }

// Append stores the low width bytes of v at the Tail. It returns false when
// the window is full (the core must stall until the firmware drains).
func (s *OutStream) Append(v uint32, width int) bool {
	if !s.CanAppend(width) {
		if s.Tel != nil {
			s.Tel.OutFullStalls.Inc()
		}
		return false
	}
	if s.ring == nil {
		s.ring = make([]byte, s.capBytes)
	}
	pos := s.pos(s.appended)
	if pos+width <= s.capBytes {
		r := s.ring[pos : pos+width]
		for i := range r {
			r[i] = byte(v >> (8 * i))
		}
	} else {
		for i := 0; i < width; i++ {
			s.ring[s.pos(s.appended+int64(i))] = byte(v >> (8 * i))
		}
	}
	s.appended += int64(width)
	if s.OnData != nil {
		s.OnData()
	}
	return true
}

// BulkAppend appends a byte slice with at most two copies (ring wrap),
// replacing the per-byte modulo walk for page-sized producers.
func (s *OutStream) BulkAppend(data []byte) bool {
	if !s.CanAppend(len(data)) {
		if s.Tel != nil {
			s.Tel.OutFullStalls.Inc()
		}
		return false
	}
	if s.ring == nil {
		s.ring = make([]byte, s.capBytes)
	}
	pos := s.pos(s.appended)
	n := copy(s.ring[pos:], data)
	copy(s.ring, data[n:])
	s.appended += int64(len(data))
	if s.OnData != nil {
		s.OnData()
	}
	return true
}

// AppendBytes appends a byte slice (used by non-ISA producers in tests).
func (s *OutStream) AppendBytes(data []byte) bool {
	return s.BulkAppend(data)
}

// peekInto copies n buffered bytes from the Head into the shared scratch
// buffer (growing it as needed) and returns the filled prefix.
func (s *OutStream) peekInto(n int) []byte {
	if n > len(s.scratch) {
		s.scratch = make([]byte, n)
	}
	out := s.scratch[:n]
	pos := s.pos(s.drained)
	c := copy(out, s.ring[pos:])
	copy(out[c:], s.ring)
	return out
}

// PeekBytes returns up to n buffered bytes without draining them — the
// firmware uses it to issue the flash/DRAM write before freeing the window.
//
// Aliasing contract: the returned slice is a view of a scratch buffer owned
// by the stream; it is valid only until the next PeekBytes or Drain call on
// this stream. Callers that need the bytes beyond that must copy them.
func (s *OutStream) PeekBytes(n int) []byte {
	if n > s.Buffered() {
		n = s.Buffered()
	}
	if n <= 0 {
		return nil
	}
	return s.peekInto(n)
}

// Drain removes up to n buffered bytes and returns them; at is when the
// space is freed (propagated to a stalled producer via OnSpace). The same
// aliasing contract as PeekBytes applies: the result shares the stream's
// scratch buffer and is invalidated by the next PeekBytes/Drain call.
func (s *OutStream) Drain(n int, at sim.Time) []byte {
	if n > s.Buffered() {
		n = s.Buffered()
	}
	if n <= 0 {
		return nil
	}
	out := s.peekInto(n)
	s.drained += int64(n)
	if t := s.Tel; t != nil {
		t.DrainBytes.Add(int64(n))
		t.OutOccupancy.Observe(int64(s.Buffered()))
	}
	if s.OnSpace != nil {
		s.OnSpace(at)
	}
	return out
}

// StreamBuffer bundles a core's input and output stream slots (S of each,
// the paper's S=8, P=2 default giving 64 KiB I + 64 KiB O at 16 KiB pages
// is constructed by the ssd package with its parameters).
type StreamBuffer struct {
	In  []*InStream
	Out []*OutStream
}

// NewStreamBuffer returns a stream buffer with slots input and output
// streams, each a window of pages×pageSize bytes.
func NewStreamBuffer(slots, pages, pageSize int) *StreamBuffer {
	sb := &StreamBuffer{
		In:  make([]*InStream, slots),
		Out: make([]*OutStream, slots),
	}
	for i := range sb.In {
		sb.In[i] = NewInStream(pages, pageSize)
		sb.Out[i] = NewOutStream(pages, pageSize)
	}
	return sb
}

// AttachTel points every stream slot at the shared telemetry bundle. The
// ssd layer calls it on construction and again whenever streams are
// recreated for a new offload request.
func (sb *StreamBuffer) AttachTel(t *StreamTel) {
	for _, in := range sb.In {
		in.Tel = t
	}
	for _, out := range sb.Out {
		out.Tel = t
	}
}
