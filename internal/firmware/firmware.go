// Package firmware implements the SSD control plane for computational
// storage requests (Section V-D): it constructs streams from the logical
// pages named in an `scomp` request, schedules flash reads into input
// stream buffers ahead of the consuming cores, drains output stream buffers
// toward SSD DRAM (read-path results) or the flash array (write-path
// results), and tracks request completion. Following the paper's
// control/data-plane separation, the firmware never touches stream
// contents — it only moves pages — and the ASSASIN cores never see flash
// addresses.
package firmware

import (
	"fmt"

	"assasin/internal/cpu"
	"assasin/internal/crossbar"
	"assasin/internal/ftl"
	"assasin/internal/memhier"
	"assasin/internal/sim"
	"assasin/internal/telemetry"
	"assasin/internal/telemetry/reqtrace"
)

var debugFeeder = false

// DebugFeeder toggles feeder tracing (tests only).
func DebugFeeder(on bool) { debugFeeder = on }

// DataPath selects how pages travel between the flash controllers and a
// compute engine — the architectural difference between the Table IV
// configurations.
type DataPath int

// Data paths.
const (
	// PathCrossbar: flash controller → crossbar → stream buffer /
	// ping-pong scratchpad, bypassing SSD DRAM (AssasinSp, AssasinSb,
	// AssasinSb$).
	PathCrossbar DataPath = iota
	// PathDRAMStage: flash controller → SSD DRAM; the core then reads the
	// staged pages through its cache hierarchy (Baseline, Prefetch).
	PathDRAMStage
	// PathDRAMCopy: flash controller → SSD DRAM → firmware copy into the
	// accelerator's private scratchpad (UDP), costing DRAM bandwidth twice.
	PathDRAMCopy
)

// StreamSpec names the flash-resident byte range forming one input stream:
// an ordered page list plus a byte window [Offset, Offset+Length) over the
// concatenated pages. The firmware trims partial head/tail pages when
// constructing the stream, which is how the storage engine's task
// decomposition can split a dataset at object boundaries.
type StreamSpec struct {
	LPAs   []int
	Offset int64
	Length int64
}

// TotalBytes returns the stream's length in bytes.
func (s StreamSpec) TotalBytes() int64 { return s.Length }

// OutKind says where an output stream's data goes.
type OutKind int

// Output targets.
const (
	// OutToHost: results are staged in SSD DRAM for the host to fetch
	// (read-path offloads: Filter, Select, Stat...).
	OutToHost OutKind = iota
	// OutToFlash: results are written back to the flash array (write-path
	// offloads: erasure coding parity, encrypted data).
	OutToFlash
	// OutDiscard: results are consumed nowhere (dummy scan workloads).
	OutDiscard
)

// OutTarget configures one output stream slot.
type OutTarget struct {
	Kind OutKind
	// StartLPA is the first logical page for OutToFlash targets.
	StartLPA int
	// Collect retains drained bytes for functional verification.
	Collect bool
}

// Task is the work assigned to one compute engine.
type Task struct {
	Core    *cpu.Core
	CoreID  int
	Inputs  []StreamSpec
	Outputs []OutTarget
}

// PlaneMode selects how the firmware turns transferred pages into stream
// pushes: one queue event per page (the reference structure), or a
// coalesced delivery train that absorbs consecutive unconstrained
// deliveries into a single dispatch. Both produce byte-identical timing,
// results, and telemetry — the per-page mode exists as the equivalence
// oracle for the coalesced default.
type PlaneMode int

// Data-plane modes. The zero value is the coalesced fast path so that
// default-constructed options get the production configuration, mirroring
// cpu.ExecCompiled.
const (
	// PlaneCoalesced batches consecutive page deliveries of one feeder
	// into a single event dispatch whenever nothing else in the event
	// queue would have fired between them (see feeder.train).
	PlaneCoalesced PlaneMode = iota
	// PlanePerPage schedules one delivery event per page, exactly the
	// structure the per-page reference implementation used.
	PlanePerPage
)

// String implements fmt.Stringer.
func (m PlaneMode) String() string {
	switch m {
	case PlaneCoalesced:
		return "coalesced"
	case PlanePerPage:
		return "perpage"
	default:
		return fmt.Sprintf("PlaneMode(%d)", int(m))
	}
}

// ParsePlaneMode converts a -dataplane flag value.
func ParsePlaneMode(s string) (PlaneMode, error) {
	switch s {
	case "", "coalesced":
		return PlaneCoalesced, nil
	case "perpage", "per-page":
		return PlanePerPage, nil
	default:
		return 0, fmt.Errorf("firmware: unknown data-plane mode %q (want coalesced or perpage)", s)
	}
}

// Config sets the engine's data-path behaviour.
type Config struct {
	PageSize int
	Path     DataPath
	// MaxSenses bounds outstanding array reads per stream feeder.
	MaxSenses int
	// Plane selects the delivery event structure (default PlaneCoalesced).
	Plane PlaneMode
}

// Tel is the firmware telemetry bundle: data-plane volume counters, task
// lifecycle instants on the "fw" track, and per-feeder/drainer page and
// drain spans (tracks "fw/core<i>/in<slot>" and "fw/core<i>/out<slot>").
type Tel struct {
	sink  *telemetry.Sink
	track *telemetry.Track // task lifecycle instants

	PagesFed       *telemetry.Counter
	BytesFed       *telemetry.Counter
	PagesDrained   *telemetry.Counter
	BytesDrained   *telemetry.Counter
	TasksSubmitted *telemetry.Counter
	TasksCompleted *telemetry.Counter
}

// NewTel registers the firmware metrics on sink (nil sink -> nil Tel).
func NewTel(sink *telemetry.Sink) *Tel {
	if sink == nil {
		return nil
	}
	return &Tel{
		sink:           sink,
		track:          sink.Track("fw"),
		PagesFed:       sink.Counter("fw", "pages_fed"),
		BytesFed:       sink.Counter("fw", "bytes_fed"),
		PagesDrained:   sink.Counter("fw", "pages_drained"),
		BytesDrained:   sink.Counter("fw", "bytes_drained"),
		TasksSubmitted: sink.Counter("fw", "tasks_submitted"),
		TasksCompleted: sink.Counter("fw", "tasks_completed"),
	}
}

// Engine drives one offload request's data plane.
type Engine struct {
	cfg   Config
	sched *sim.Scheduler
	ftl   *ftl.FTL
	dram  *memhier.DRAM
	xbar  *crossbar.Crossbar // nil for channel-local configurations

	// Tel, when non-nil, records data-plane counters, per-page/drain spans
	// and task lifecycle instants. Set it before Submit.
	Tel *Tel

	// Req, when non-nil, is the open request-trace record this engine's
	// data plane accounts into: per-page sense/transfer/deliver waits,
	// end-of-stream and halt instants, and drain pages. Nil (the default)
	// disables request tracing at nil-pointer-branch cost. Set it before
	// Submit.
	Req *reqtrace.Request

	feeders  []*feeder
	drainers []*drainer
	tasks    []Task

	liveFeeders int
	liveCores   int
	liveDrains  int
	finishedAt  sim.Time
	err         error
}

// New returns an engine bound to the SSD's shared components.
func New(cfg Config, sched *sim.Scheduler, f *ftl.FTL, dram *memhier.DRAM, xbar *crossbar.Crossbar) *Engine {
	if cfg.MaxSenses <= 0 {
		cfg.MaxSenses = 24
	}
	return &Engine{cfg: cfg, sched: sched, ftl: f, dram: dram, xbar: xbar}
}

// Err returns the first data-plane error.
func (e *Engine) Err() error { return e.err }

func (e *Engine) fail(err error) {
	if e.err == nil {
		e.err = err
	}
}

// Submit wires a request's tasks into the scheduler: feeders for every
// input stream, drainers for every output stream, and wake plumbing between
// streams and cores. The caller runs the scheduler afterwards.
func (e *Engine) Submit(tasks []Task) error {
	e.tasks = tasks
	for ti := range tasks {
		t := &tasks[ti]
		sys := t.Core.Sys()
		if len(t.Inputs) > len(sys.Streams.In) {
			return fmt.Errorf("firmware: task %d has %d inputs, core has %d slots", ti, len(t.Inputs), len(sys.Streams.In))
		}
		if len(t.Outputs) > len(sys.Streams.Out) {
			return fmt.Errorf("firmware: task %d has %d outputs, core has %d slots", ti, len(t.Outputs), len(sys.Streams.Out))
		}
		core := t.Core
		e.Req.TaskSetup(ti, t.CoreID)
		if e.Tel != nil {
			e.Tel.TasksSubmitted.Inc()
			e.Tel.track.Instant("task-submit", int64(e.sched.Events.Now()),
				telemetry.Arg{Key: "core", Val: int64(t.CoreID)})
			if e.Req != nil && ti == 0 {
				// Flow arrows link this request's spans across tracks: the
				// arrow opens once on the firmware track at submission (not
				// per task), steps through feeder end-of-stream and core
				// halt, and ends at completion (emitted by the ssd layer).
				e.Tel.track.FlowStart("req", int64(e.sched.Events.Now()), int64(e.Req.ID))
			}
		}
		for si := range t.Inputs {
			fd := &feeder{
				e:      e,
				task:   ti,
				core:   core,
				coreID: t.CoreID,
				stream: sys.Streams.In[si],
				spec:   t.Inputs[si],
			}
			if e.Tel != nil {
				fd.track = e.Tel.sink.Track(fmt.Sprintf("fw/core%d/in%d", t.CoreID, si))
			}
			// Bind the event callbacks once: the steady-state page flow
			// reschedules these same funcs instead of allocating closures.
			fd.pumpFn = func(now sim.Time) {
				fd.pumping = false
				fd.pump(now)
			}
			fd.deliverFn = fd.deliverNext
			fd.trainFn = fd.train
			e.feeders = append(e.feeders, fd)
			e.liveFeeders++
			stream := fd.stream
			stream.OnPush = func(at sim.Time) {
				core.Wake(at)
				e.sched.Wake(core, at)
			}
			stream.OnFree = func() { fd.schedulePump() }
		}
		for si := range t.Outputs {
			dr := &drainer{
				e:      e,
				task:   ti,
				core:   core,
				coreID: t.CoreID,
				stream: sys.Streams.Out[si],
				target: t.Outputs[si],
				lpa:    t.Outputs[si].StartLPA,
			}
			if e.Tel != nil {
				dr.track = e.Tel.sink.Track(fmt.Sprintf("fw/core%d/out%d", t.CoreID, si))
			}
			dr.pumpFn = func(now sim.Time) {
				dr.pumping = false
				dr.pump(now)
			}
			e.drainers = append(e.drainers, dr)
			e.liveDrains++
			dr.stream.OnData = func() { dr.schedulePump() }
			dr.stream.OnSpace = func(at sim.Time) {
				core.Wake(at)
				e.sched.Wake(core, at)
			}
		}
		e.liveCores++
		coreID := t.CoreID
		taskIdx := ti
		core.OnHalt(func(at sim.Time) {
			e.liveCores--
			e.noteProgress(at)
			e.Req.NoteHalt(taskIdx, int64(at))
			if e.Tel != nil {
				e.Tel.TasksCompleted.Inc()
				e.Tel.track.Instant("task-halt", int64(at),
					telemetry.Arg{Key: "core", Val: int64(coreID)})
				if e.Req != nil {
					e.Tel.sink.Track("cpu/"+core.Name()).FlowStep("req", int64(at), int64(e.Req.ID))
				}
			}
			// Push drainers to flush remaining partial pages.
			for _, dr := range e.drainers {
				if dr.core == core {
					dr.coreHalted = true
					dr.schedulePump()
				}
			}
		})
	}
	// Kick all feeders at time zero.
	for _, fd := range e.feeders {
		fd.schedulePump()
	}
	return nil
}

// LiveCounts reports outstanding work (cores, feeders, drainers) for
// diagnostics.
func (e *Engine) LiveCounts() (cores, feeders, drains int) {
	return e.liveCores, e.liveFeeders, e.liveDrains
}

// Done reports whether all cores halted, inputs were fully delivered, and
// outputs fully drained.
func (e *Engine) Done() bool {
	return e.liveCores == 0 && e.liveFeeders == 0 && e.liveDrains == 0
}

// CompletionTime returns the time the request finished (valid once Done).
func (e *Engine) CompletionTime() sim.Time { return e.finishedAt }

func (e *Engine) noteProgress(at sim.Time) {
	if at > e.finishedAt {
		e.finishedAt = at
	}
}

// Collected returns the drained output bytes for (coreID, outSlot) drainers
// with Collect set, in task order.
func (e *Engine) Collected(coreID, slot int) []byte {
	idx := 0
	for _, dr := range e.drainers {
		if dr.coreID == coreID {
			if idx == slot {
				return dr.collected
			}
			idx++
		}
	}
	return nil
}

// sensedPage is a page whose tR sense completed, waiting for bus transfer.
type sensedPage struct {
	data       []byte // aliases the flash array's stored page, trimmed to the window
	channel    int
	senseStart sim.Time // when the sense was issued (trace span start)
	senseDone  sim.Time
	last       bool
	rawSize    int // bus occupancy (full page)
}

// delivery is a transferred page waiting for its availability instant, when
// it is pushed into the input stream. In per-page mode each delivery has its
// own queue event; in coalesced mode the feeder keeps one armed "train"
// event carrying the whole FIFO, with every entry retaining the (avail, seq)
// sort key the per-page event would have had.
type delivery struct {
	data  []byte
	avail sim.Time
	seq   int64 // reserved event-queue rank (coalesced mode)
	last  bool
}

// feeder streams one StreamSpec into one input stream buffer. Its sensed
// and pending queues are ring-style FIFOs over reused backing arrays, and
// its event callbacks are bound once at Submit, so the steady-state page
// flow allocates nothing.
type feeder struct {
	e      *Engine
	task   int // request-trace task index
	core   *cpu.Core
	coreID int
	stream *memhier.InStream
	spec   StreamSpec

	nextPage   int
	sensed     []sensedPage
	sensedHead int
	pending    []delivery
	pendHead   int
	claimed    int
	pumping    bool
	armed      bool // coalesced: a train event is queued
	closed     bool
	lastAvail  sim.Time         // enforces in-order delivery across channels
	track      *telemetry.Track // per-feeder page spans; nil when disabled

	pumpFn    func(now sim.Time) // clears pumping, runs pump
	deliverFn func(now sim.Time) // per-page: deliver the pending head
	trainFn   func(now sim.Time) // coalesced: run the delivery train
}

func (f *feeder) sensedLen() int { return len(f.sensed) - f.sensedHead }

func (f *feeder) sensedPop() sensedPage {
	pg := f.sensed[f.sensedHead]
	f.sensed[f.sensedHead] = sensedPage{}
	f.sensedHead++
	if f.sensedHead == len(f.sensed) {
		f.sensed = f.sensed[:0]
		f.sensedHead = 0
	}
	return pg
}

func (f *feeder) pendingLen() int { return len(f.pending) - f.pendHead }

func (f *feeder) pendingPop() delivery {
	d := f.pending[f.pendHead]
	f.pending[f.pendHead] = delivery{}
	f.pendHead++
	if f.pendHead == len(f.pending) {
		f.pending = f.pending[:0]
		f.pendHead = 0
	}
	return d
}

// schedulePump queues a pump event if none is pending and a pump could
// still do work. Once every page has been sensed and transferred the feeder
// is permanently out of pump work — only pending deliveries remain — so the
// per-consumed-word OnFree pings during the drain tail schedule nothing.
// (A pump in that state is a pure no-op at any time, so suppressing it
// cannot change timing; the empty-LPA degenerate still pumps once to close.)
func (f *feeder) schedulePump() {
	if f.pumping || f.closed {
		return
	}
	if f.nextPage >= len(f.spec.LPAs) && f.sensedLen() == 0 && len(f.spec.LPAs) > 0 {
		return
	}
	f.pumping = true
	f.e.sched.Events.Schedule(f.e.sched.Events.Now(), f.pumpFn)
}

// trimForPage returns the slice of page data inside the stream window and
// whether the page contributes any bytes.
func (f *feeder) trimForPage(idx int, data []byte) []byte {
	ps := int64(f.e.cfg.PageSize)
	pageStart := int64(idx) * ps
	pageEnd := pageStart + ps
	winStart := f.spec.Offset
	winEnd := f.spec.Offset + f.spec.Length
	lo := pageStart
	if winStart > lo {
		lo = winStart
	}
	hi := pageEnd
	if winEnd < hi {
		hi = winEnd
	}
	if hi <= lo {
		return nil
	}
	return data[lo-pageStart : hi-pageStart]
}

// pump advances the feeder: issue senses, then gate transfers on window
// space, then deliver.
func (f *feeder) pump(now sim.Time) {
	if f.closed || f.e.err != nil {
		return
	}
	if debugFeeder {
		fmt.Printf("pump t=%v next=%d sensed=%d claimed=%d buffered=%d head=%d tail=%d\n",
			now, f.nextPage, f.sensedLen(), f.claimed, f.stream.Buffered(), f.stream.Head(), f.stream.Tail())
	}
	arr := f.e.ftl.Array()
	// Phase 1: issue array senses ahead.
	for f.nextPage < len(f.spec.LPAs) && f.sensedLen() < f.e.cfg.MaxSenses {
		lpa := f.spec.LPAs[f.nextPage]
		ppa, ok := f.e.ftl.Lookup(lpa)
		if !ok {
			f.e.fail(fmt.Errorf("firmware: unmapped lpa %d", lpa))
			return
		}
		data, senseDone, err := arr.Sense(now, ppa)
		if err != nil {
			f.e.fail(err)
			return
		}
		trimmed := f.trimForPage(f.nextPage, data)
		f.nextPage++
		f.sensed = append(f.sensed, sensedPage{
			data:       trimmed,
			channel:    ppa.Channel,
			senseStart: now,
			senseDone:  senseDone,
			last:       f.nextPage == len(f.spec.LPAs),
			rawSize:    f.e.cfg.PageSize,
		})
	}
	// Phase 2: transfer sensed pages while window space allows.
	for f.sensedLen() > 0 {
		pg := f.sensed[f.sensedHead]
		if !f.stream.CanPush(f.claimed + len(pg.data)) {
			f.armTrain()
			return // wait for OnFree
		}
		f.sensedPop()
		start := sim.MaxT(now, pg.senseDone)
		txDone, err := arr.Transfer(start, pg.channel, pg.rawSize)
		if err != nil {
			f.e.fail(err)
			return
		}
		avail, err := f.deliver(txDone, pg)
		if err != nil {
			f.e.fail(err)
			return
		}
		// Pages from lightly loaded channels must not overtake earlier
		// pages of the same stream: delivery is in stream order.
		avail = sim.MaxT(avail, f.lastAvail)
		f.lastAvail = avail
		if req := f.e.Req; req != nil {
			// Per-page causal components: array sense, channel-bus transfer,
			// and delivery (crossbar grant / DRAM stage plus in-order gating).
			// Coalesced trains reuse these accumulators — attribution happens
			// here at transfer time, so a train delivering N pages in one
			// dispatch attributes all N in bulk with no extra work.
			req.AddPage(f.task, int64(len(pg.data)),
				int64(pg.senseDone-pg.senseStart), int64(txDone-start),
				int64(avail-txDone), int64(avail))
		}
		if f.track != nil {
			f.track.Span("page", int64(pg.senseStart), int64(avail),
				telemetry.Arg{Key: "bytes", Val: int64(len(pg.data))},
				telemetry.Arg{Key: "channel", Val: int64(pg.channel)})
			f.e.Tel.PagesFed.Inc()
			f.e.Tel.BytesFed.Add(int64(len(pg.data)))
		}
		if debugFeeder {
			fmt.Printf("FTRACE page sense=%v waitTx=%v tx=%v deliver=%v\n",
				pg.senseDone, sim.MaxT(now, pg.senseDone), txDone, avail)
		}
		f.claimed += len(pg.data)
		if f.e.cfg.Plane == PlanePerPage {
			f.pending = append(f.pending, delivery{data: pg.data, avail: avail, last: pg.last})
			f.e.sched.Events.Schedule(avail, f.deliverFn)
		} else {
			// Reserve the event-queue rank the per-page schedule would
			// have claimed here, so the train's deliveries keep the exact
			// global (At, seq) dispatch order.
			seq := f.e.sched.Events.ReserveSeq()
			f.pending = append(f.pending, delivery{data: pg.data, avail: avail, seq: seq, last: pg.last})
		}
	}
	f.armTrain()
	// Degenerate empty stream: close immediately.
	if len(f.spec.LPAs) == 0 && !f.closed {
		f.stream.Close()
		f.closed = true
		f.e.liveFeeders--
		f.e.Req.NoteEOS(f.task, int64(now))
		if f.track != nil {
			f.track.Instant("eos", int64(now))
		}
		f.core.Wake(now)
		f.e.sched.Wake(f.core, now)
	}
}

// armTrain makes sure a coalesced-mode train event is queued at the pending
// head's reserved (avail, seq) slot. No-op in per-page mode or when the
// train is already armed or there is nothing pending.
func (f *feeder) armTrain() {
	if f.e.cfg.Plane == PlanePerPage || f.armed || f.pendingLen() == 0 {
		return
	}
	d := f.pending[f.pendHead]
	f.armed = true
	f.e.sched.Events.ScheduleSeq(d.avail, d.seq, f.trainFn)
}

// train is the coalesced delivery loop: it fires as the pending head's own
// event (same time, same FIFO rank as the per-page event would have had) and
// then keeps delivering subsequent pending pages inline as long as each one
// is exactly what the event queue would dispatch next — no other event
// sorts before it and it lies within the current dispatch horizon. At the
// first contention boundary (an interleaved pump or another feeder's event,
// or an availability past the horizon) it re-arms at the blocked page's
// reserved slot and yields.
func (f *feeder) train(now sim.Time) {
	f.armed = false
	if f.e.err != nil {
		return
	}
	q := &f.e.sched.Events
	first := true
	for f.pendingLen() > 0 {
		d := f.pending[f.pendHead]
		if !first {
			nt, ns := q.PeekNext()
			if d.avail > q.Horizon() || nt < d.avail || (nt == d.avail && ns < d.seq) {
				f.armed = true
				q.ScheduleSeq(d.avail, d.seq, f.trainFn)
				return
			}
			// This delivery is the queue's next dispatch: absorb it here,
			// advancing the clock exactly as its own event would have.
			q.AdvanceTo(d.avail)
			now = d.avail
		}
		first = false
		f.pendingPop()
		f.doDeliver(now, d)
		if f.e.err != nil || f.closed {
			return
		}
	}
}

// deliverNext is the per-page delivery event body: pages deliver strictly
// in FIFO order (availability is monotone and ties break by schedule
// order), so the fired event always corresponds to the pending head.
func (f *feeder) deliverNext(at sim.Time) {
	f.doDeliver(at, f.pendingPop())
}

// doDeliver pushes one transferred page into the stream at its availability
// instant and handles end-of-stream.
func (f *feeder) doDeliver(at sim.Time, d delivery) {
	f.claimed -= len(d.data)
	if len(d.data) > 0 {
		if err := f.stream.Push(d.data, at); err != nil {
			f.e.fail(err)
			return
		}
	}
	if d.last {
		f.stream.Close()
		f.closed = true
		f.e.liveFeeders--
		f.e.noteProgress(at)
		f.e.Req.NoteEOS(f.task, int64(at))
		if f.track != nil {
			f.track.Instant("eos", int64(at))
			if f.e.Req != nil {
				f.track.FlowStep("req", int64(at), int64(f.e.Req.ID))
			}
		}
		f.core.Wake(at)
		f.e.sched.Wake(f.core, at)
	} else {
		f.schedulePump()
	}
}

// deliver routes a transferred page along the configured data path and
// returns when it becomes usable by the core.
func (f *feeder) deliver(txDone sim.Time, pg sensedPage) (sim.Time, error) {
	switch f.e.cfg.Path {
	case PathCrossbar:
		if f.e.xbar == nil {
			return txDone, nil // channel-local: controller feeds its core directly
		}
		return f.e.xbar.Transfer(txDone, f.coreID, pg.rawSize)
	case PathDRAMStage:
		return f.e.dram.Access(txDone, pg.rawSize, true, "fill"), nil
	case PathDRAMCopy:
		staged := f.e.dram.Access(txDone, pg.rawSize, true, "fill")
		return f.e.dram.Access(staged, pg.rawSize, false, "fw-copy"), nil
	default:
		return 0, fmt.Errorf("firmware: unknown data path %d", f.e.cfg.Path)
	}
}

// drainer empties one output stream buffer.
type drainer struct {
	e      *Engine
	task   int // request-trace task index
	core   *cpu.Core
	coreID int
	stream *memhier.OutStream
	target OutTarget

	lpa        int
	collected  []byte
	pumping    bool
	coreHalted bool
	finished   bool
	track      *telemetry.Track // per-drainer spans; nil when disabled

	pumpFn func(now sim.Time) // bound once at Submit
}

func (d *drainer) schedulePump() {
	if d.pumping || d.finished {
		return
	}
	d.pumping = true
	d.e.sched.Events.Schedule(d.e.sched.Events.Now(), d.pumpFn)
}

func (d *drainer) pump(now sim.Time) {
	if d.finished || d.e.err != nil {
		return
	}
	ps := d.stream.PageSize()
	for {
		buffered := d.stream.Buffered()
		if buffered >= ps || (d.coreHalted && buffered > 0) {
			n := ps
			if buffered < n {
				n = buffered
			}
			// The space is freed once the page leaves the OSB; for flash
			// targets that is the bus-transfer completion, for DRAM targets
			// the DRAM write completion.
			var freedAt sim.Time
			// data aliases the stream's scratch buffer and is only valid
			// until the Drain call below; flash.Array.Write copies the page
			// into its own store and the DRAM path never retains it.
			data := d.stream.PeekBytes(n)
			switch d.target.Kind {
			case OutToFlash:
				busDone, _, err := d.e.ftl.Write(now, d.lpa, data)
				if err != nil {
					d.e.fail(err)
					return
				}
				d.lpa++
				freedAt = busDone
			case OutToHost:
				freedAt = d.e.dram.Access(now, n, true, "result")
			default:
				freedAt = now
			}
			// drained also aliases the scratch buffer (and overwrote data
			// above); append copies it out before the next Peek/Drain.
			drained := d.stream.Drain(n, freedAt)
			if d.target.Collect {
				d.collected = append(d.collected, drained...)
			}
			d.e.Req.AddDrain(d.task, int64(n), int64(now), int64(freedAt))
			if d.track != nil {
				d.track.Span("drain", int64(now), int64(freedAt),
					telemetry.Arg{Key: "bytes", Val: int64(n)})
				d.e.Tel.PagesDrained.Inc()
				d.e.Tel.BytesDrained.Add(int64(n))
			}
			d.e.noteProgress(freedAt)
			continue
		}
		break
	}
	if d.coreHalted && d.stream.Buffered() == 0 {
		d.finished = true
		d.e.liveDrains--
		d.e.noteProgress(now)
	}
}
