package firmware

import (
	"runtime"
	"testing"

	"assasin/internal/sim"
	"assasin/internal/telemetry/reqtrace"
)

// streamRun builds a fresh rig, submits a copy task over pages flash pages,
// and returns the number of heap allocations performed while the scheduler
// ran the offload (setup and teardown excluded).
func streamRun(t testing.TB, pages int) uint64 {
	ps := 1024
	data := make([]byte, pages*ps)
	for i := range data {
		data[i] = byte(i * 7)
	}
	r := newRig(t)
	lpas := r.install(t, data)
	r.core.LoadProgram(copyProgram())
	e := New(Config{PageSize: ps, Path: PathCrossbar}, r.sched, r.f, r.dram, nil)
	if err := e.Submit([]Task{{
		Core:    r.core,
		Inputs:  []StreamSpec{{LPAs: lpas, Offset: 0, Length: int64(len(data))}},
		Outputs: []OutTarget{{Kind: OutDiscard}},
	}}); err != nil {
		t.Fatal(err)
	}
	r.sched.Add(r.core)

	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	if _, err := r.sched.Run(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&m1)
	if !e.Done() {
		t.Fatal("engine incomplete")
	}
	return m1.Mallocs - m0.Mallocs
}

// streamRunTraced is streamRun with a request record attached to the
// engine, so the measured window also covers the per-page AddPage/NoteEOS
// accounting and the OnHalt NoteHalt in the data-plane hot path.
func streamRunTraced(t testing.TB, pages int) uint64 {
	ps := 1024
	data := make([]byte, pages*ps)
	for i := range data {
		data[i] = byte(i * 7)
	}
	r := newRig(t)
	lpas := r.install(t, data)
	r.core.LoadProgram(copyProgram())
	e := New(Config{PageSize: ps, Path: PathCrossbar}, r.sched, r.f, r.dram, nil)
	tr := reqtrace.New(nil, reqtrace.Config{TopK: 2})
	e.Req = tr.Begin("offload", "copy", 0)
	if err := e.Submit([]Task{{
		Core:    r.core,
		Inputs:  []StreamSpec{{LPAs: lpas, Offset: 0, Length: int64(len(data))}},
		Outputs: []OutTarget{{Kind: OutDiscard}},
	}}); err != nil {
		t.Fatal(err)
	}
	r.sched.Add(r.core)

	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	if _, err := r.sched.Run(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&m1)
	if !e.Done() {
		t.Fatal("engine incomplete")
	}
	tr.Complete(e.Req, int64(e.CompletionTime()))
	return m1.Mallocs - m0.Mallocs
}

// TestReqtraceSteadyStateZeroAlloc pins the enabled-tracer cost on the same
// pipeline: with a request record attached, pushing 8x more pages through
// the data plane must not add per-page allocations — the record is
// fixed-shape and the per-page accounting is plain integer accumulation.
func TestReqtraceSteadyStateZeroAlloc(t *testing.T) {
	small := streamRunTraced(t, 8)
	large := streamRunTraced(t, 64)
	if slack := uint64(8); large > small+slack {
		t.Fatalf("per-page allocations with tracing enabled: 8 pages -> %d allocs, 64 pages -> %d allocs (want <= %d)",
			small, large, small+slack)
	}
}

// TestDataPlaneSteadyStateZeroAlloc pins the zero-copy guarantee of the
// feeder -> crossbar -> stream-buffer path: past the fixed lazy start-up
// allocations (stream rings, event-pool fill, program compilation), pushing
// more pages through the pipeline must allocate nothing. An 8x increase in
// page count is allowed at most a whisker of extra allocations, so any
// per-page allocation sneaking back into the pump/deliver/drain hot path
// fails the test by hundreds.
func TestDataPlaneSteadyStateZeroAlloc(t *testing.T) {
	small := streamRun(t, 8)
	large := streamRun(t, 64)
	if slack := uint64(8); large > small+slack {
		t.Fatalf("per-page allocations in steady state: 8 pages -> %d allocs, 64 pages -> %d allocs (want <= %d)",
			small, large, small+slack)
	}
}

// BenchmarkFeederPump measures the feeder-dominated page pipeline end to
// end: a 32-page copy offload through flash sense, crossbar transfer, and
// stream-buffer delivery. Allocations reported per op cover rig construction
// plus the whole run; the steady-state pump itself is alloc-free (see
// TestDataPlaneSteadyStateZeroAlloc).
func BenchmarkFeederPump(b *testing.B) {
	const pages = 32
	ps := 1024
	data := make([]byte, pages*ps)
	for i := range data {
		data[i] = byte(i * 7)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := newRig(b)
		lpas := r.install(b, data)
		r.core.LoadProgram(copyProgram())
		e := New(Config{PageSize: ps, Path: PathCrossbar}, r.sched, r.f, r.dram, nil)
		if err := e.Submit([]Task{{
			Core:    r.core,
			Inputs:  []StreamSpec{{LPAs: lpas, Offset: 0, Length: int64(len(data))}},
			Outputs: []OutTarget{{Kind: OutDiscard}},
		}}); err != nil {
			b.Fatal(err)
		}
		r.sched.Add(r.core)
		if _, err := r.sched.Run(10 * sim.Second); err != nil {
			b.Fatal(err)
		}
		if !e.Done() {
			b.Fatal("engine incomplete")
		}
	}
}
