package firmware

import (
	"bytes"
	"testing"

	"assasin/internal/asm"
	"assasin/internal/cpu"
	"assasin/internal/flash"
	"assasin/internal/ftl"
	"assasin/internal/memhier"
	"assasin/internal/sim"
)

// rig bundles a minimal SSD data plane for firmware tests: 2-channel flash,
// FTL, DRAM, scheduler and one core.
type rig struct {
	sched *sim.Scheduler
	f     *ftl.FTL
	dram  *memhier.DRAM
	core  *cpu.Core
	sys   *memhier.System
}

func newRig(t testing.TB) *rig {
	t.Helper()
	cfg := flash.DefaultConfig()
	cfg.Channels = 2
	cfg.ChipsPerChannel = 4
	cfg.PageSize = 1024
	cfg.BlocksPerChip = 32
	cfg.PagesPerBlock = 16
	arr := flash.New(cfg)
	f := ftl.New(arr, nil)
	dram := memhier.NewDRAM(memhier.DefaultDRAMConfig())
	sys := &memhier.System{
		Clock:      sim.NewClock(1e9),
		Scratchpad: memhier.NewScratchpad(16 << 10),
		DRAM:       dram,
		Backing:    memhier.NewSparseMem(),
		Streams:    memhier.NewStreamBuffer(2, 4, cfg.PageSize),
		ViewPath:   memhier.ViewScratchpad,
		Client:     "core0",
	}
	core := cpu.New(cpu.DefaultConfig("core0"), sys)
	return &rig{sched: sim.NewScheduler(), f: f, dram: dram, core: core, sys: sys}
}

func (r *rig) install(t testing.TB, data []byte) []int {
	t.Helper()
	ps := r.f.Array().Config().PageSize
	var lpas []int
	for off, lpa := 0, 0; off < len(data); off, lpa = off+ps, lpa+1 {
		end := off + ps
		if end > len(data) {
			end = len(data)
		}
		if err := r.f.Install(lpa, data[off:end]); err != nil {
			t.Fatal(err)
		}
		lpas = append(lpas, lpa)
	}
	return lpas
}

// copyProgram streams input slot 0 to output slot 0 until EOS.
func copyProgram() *asm.Program {
	b := asm.New()
	loop := b.Here()
	b.StreamLoad(asm.A0, 0, 1)
	b.StreamStore(0, 1, asm.A0)
	b.J(loop)
	return b.MustBuild()
}

func runEngine(t *testing.T, r *rig, e *Engine, tasks []Task) {
	t.Helper()
	if err := e.Submit(tasks); err != nil {
		t.Fatal(err)
	}
	r.sched.Add(r.core)
	if _, err := r.sched.Run(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	if err := r.core.Err(); err != nil {
		t.Fatal(err)
	}
	if !e.Done() {
		c, f, d := e.LiveCounts()
		t.Fatalf("engine incomplete: cores=%d feeders=%d drains=%d", c, f, d)
	}
}

func TestEngineStreamsPagesToCore(t *testing.T) {
	r := newRig(t)
	data := make([]byte, 3000)
	for i := range data {
		data[i] = byte(i * 7)
	}
	lpas := r.install(t, data)
	r.core.LoadProgram(copyProgram())
	e := New(Config{PageSize: 1024, Path: PathCrossbar}, r.sched, r.f, r.dram, nil)
	runEngine(t, r, e, []Task{{
		Core:   r.core,
		Inputs: []StreamSpec{{LPAs: lpas, Offset: 0, Length: int64(len(data))}},
		Outputs: []OutTarget{
			{Kind: OutToHost, Collect: true},
		},
	}})
	if got := e.Collected(0, 0); !bytes.Equal(got, data) {
		t.Fatalf("copied %d bytes, want %d", len(got), len(data))
	}
	if e.CompletionTime() <= 0 {
		t.Fatal("no completion time")
	}
}

func TestEngineTrimsPartialPages(t *testing.T) {
	r := newRig(t)
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i)
	}
	lpas := r.install(t, data)
	r.core.LoadProgram(copyProgram())
	e := New(Config{PageSize: 1024, Path: PathCrossbar}, r.sched, r.f, r.dram, nil)
	// A window that starts and ends mid-page.
	spec := StreamSpec{LPAs: lpas[0:3], Offset: 100, Length: 2000}
	runEngine(t, r, e, []Task{{
		Core:    r.core,
		Inputs:  []StreamSpec{spec},
		Outputs: []OutTarget{{Kind: OutToHost, Collect: true}},
	}})
	want := data[100:2100]
	if got := e.Collected(0, 0); !bytes.Equal(got, want) {
		t.Fatalf("trimmed stream wrong: %d bytes, want %d", len(got), len(want))
	}
}

func TestEngineWritesResultsToFlash(t *testing.T) {
	r := newRig(t)
	data := make([]byte, 2048)
	for i := range data {
		data[i] = byte(i * 3)
	}
	lpas := r.install(t, data)
	r.core.LoadProgram(copyProgram())
	e := New(Config{PageSize: 1024, Path: PathCrossbar}, r.sched, r.f, r.dram, nil)
	outStart := 100
	runEngine(t, r, e, []Task{{
		Core:    r.core,
		Inputs:  []StreamSpec{{LPAs: lpas, Length: int64(len(data))}},
		Outputs: []OutTarget{{Kind: OutToFlash, StartLPA: outStart, Collect: true}},
	}})
	// The copied data must be durably in flash at the output LPAs.
	page0, _, err := r.f.Read(0, outStart)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(page0, data[:1024]) {
		t.Fatal("flash output page 0 wrong")
	}
	if st := r.f.Stats(); st.HostWrites < 2 {
		t.Fatalf("flash writes = %d", st.HostWrites)
	}
}

func TestEngineDRAMStagePathChargesDRAM(t *testing.T) {
	r := newRig(t)
	r.sys.ViewPath = memhier.ViewScratchpad // copy program uses stream ops anyway
	data := make([]byte, 2048)
	lpas := r.install(t, data)
	r.core.LoadProgram(copyProgram())
	e := New(Config{PageSize: 1024, Path: PathDRAMStage}, r.sched, r.f, r.dram, nil)
	runEngine(t, r, e, []Task{{
		Core:    r.core,
		Inputs:  []StreamSpec{{LPAs: lpas, Length: int64(len(data))}},
		Outputs: []OutTarget{{Kind: OutDiscard}},
	}})
	if got := r.dram.Client("fill").WriteBytes; got != 2048 {
		t.Fatalf("fill traffic = %d, want 2048", got)
	}
}

func TestEngineDRAMCopyPathChargesTwice(t *testing.T) {
	r := newRig(t)
	data := make([]byte, 2048)
	lpas := r.install(t, data)
	r.core.LoadProgram(copyProgram())
	e := New(Config{PageSize: 1024, Path: PathDRAMCopy}, r.sched, r.f, r.dram, nil)
	runEngine(t, r, e, []Task{{
		Core:    r.core,
		Inputs:  []StreamSpec{{LPAs: lpas, Length: int64(len(data))}},
		Outputs: []OutTarget{{Kind: OutDiscard}},
	}})
	if w := r.dram.Client("fill").WriteBytes; w != 2048 {
		t.Fatalf("fill = %d", w)
	}
	if rd := r.dram.Client("fw-copy").ReadBytes; rd != 2048 {
		t.Fatalf("firmware copy reads = %d", rd)
	}
}

func TestEngineEmptyStreamCompletes(t *testing.T) {
	r := newRig(t)
	r.core.LoadProgram(copyProgram())
	e := New(Config{PageSize: 1024, Path: PathCrossbar}, r.sched, r.f, r.dram, nil)
	runEngine(t, r, e, []Task{{
		Core:    r.core,
		Inputs:  []StreamSpec{{LPAs: nil, Length: 0}},
		Outputs: []OutTarget{{Kind: OutToHost, Collect: true}},
	}})
	if got := e.Collected(0, 0); len(got) != 0 {
		t.Fatalf("empty stream produced %d bytes", len(got))
	}
}

func TestEngineUnmappedLPAFails(t *testing.T) {
	r := newRig(t)
	r.core.LoadProgram(copyProgram())
	e := New(Config{PageSize: 1024, Path: PathCrossbar}, r.sched, r.f, r.dram, nil)
	if err := e.Submit([]Task{{
		Core:    r.core,
		Inputs:  []StreamSpec{{LPAs: []int{999}, Length: 1024}},
		Outputs: []OutTarget{{Kind: OutDiscard}},
	}}); err != nil {
		t.Fatal(err)
	}
	r.sched.Add(r.core)
	r.sched.Run(sim.Second)
	if e.Err() == nil {
		t.Fatal("unmapped LPA not reported")
	}
}

func TestEngineTooManyStreamsRejected(t *testing.T) {
	r := newRig(t)
	r.core.LoadProgram(copyProgram())
	e := New(Config{PageSize: 1024, Path: PathCrossbar}, r.sched, r.f, r.dram, nil)
	var ins []StreamSpec
	for i := 0; i < 20; i++ {
		ins = append(ins, StreamSpec{})
	}
	if err := e.Submit([]Task{{Core: r.core, Inputs: ins}}); err == nil {
		t.Fatal("20 inputs accepted with 2 slots")
	}
}
