package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeUnits(t *testing.T) {
	if Second != 1e12*Picosecond {
		t.Fatalf("Second = %d ps, want 1e12", int64(Second))
	}
	if Microsecond != 1000*Nanosecond {
		t.Fatalf("Microsecond = %d, want 1000ns", int64(Microsecond))
	}
}

func TestTimeConversions(t *testing.T) {
	cases := []struct {
		t    Time
		secs float64
	}{
		{0, 0},
		{Second, 1},
		{500 * Millisecond, 0.5},
		{Nanosecond, 1e-9},
	}
	for _, c := range cases {
		if got := c.t.Seconds(); got != c.secs {
			t.Errorf("(%d).Seconds() = %g, want %g", int64(c.t), got, c.secs)
		}
	}
	if got := (1500 * Picosecond).Nanoseconds(); got != 1.5 {
		t.Errorf("Nanoseconds() = %g, want 1.5", got)
	}
	if got := (2500 * Nanosecond).Microseconds(); got != 2.5 {
		t.Errorf("Microseconds() = %g, want 2.5", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500 * Picosecond, "500ps"},
		{1500 * Picosecond, "1.500ns"},
		{3 * Microsecond, "3.000us"},
		{42 * Millisecond, "42.000ms"},
		{2 * Second, "2.000s"},
		{MaxTime, "never"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestMinMax(t *testing.T) {
	if MaxT(1, 2) != 2 || MaxT(2, 1) != 2 {
		t.Error("MaxT broken")
	}
	if MinT(1, 2) != 1 || MinT(2, 1) != 1 {
		t.Error("MinT broken")
	}
	prop := func(a, b int64) bool {
		x, y := Time(a), Time(b)
		return MaxT(x, y) >= x && MaxT(x, y) >= y && MinT(x, y) <= x && MinT(x, y) <= y
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestClock(t *testing.T) {
	c := NewClock(1e9) // 1 GHz
	if c.Period != Nanosecond {
		t.Fatalf("1GHz period = %v, want 1ns", c.Period)
	}
	if c.Cycles(5) != 5*Nanosecond {
		t.Errorf("Cycles(5) = %v", c.Cycles(5))
	}
	if c.CyclesAt(10*Nanosecond) != 10 {
		t.Errorf("CyclesAt = %d", c.CyclesAt(10*Nanosecond))
	}
	if hz := c.Hz(); hz < 0.99e9 || hz > 1.01e9 {
		t.Errorf("Hz = %g", hz)
	}
	// Non-integer-ns clock (the adjusted ASSASIN core at ~1.124 GHz).
	adj := Clock{Period: 890 * Picosecond}
	if adj.Cycles(1000) != 890*Nanosecond {
		t.Errorf("adjusted Cycles(1000) = %v", adj.Cycles(1000))
	}
}
