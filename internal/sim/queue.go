package sim

import (
	"container/heap"
	"math"
)

// Event is a callback scheduled at a point in simulated time.
//
// Event objects are pooled by their queue: the handle returned by Schedule is
// valid only until the event fires or is cancelled, after which the queue may
// recycle the object for a later Schedule. Hold the handle to Cancel a
// pending event; drop it once the event has been dispatched.
type Event struct {
	At Time
	Fn func(now Time)

	seq   int64 // tie-breaker: FIFO among simultaneous events
	index int   // heap index; -2-lanePos when in the now-lane; -1 when not queued
}

// laneIndex encodes an absolute position in EventQueue.lane into Event.index
// so a handle can be validated in O(1) without colliding with heap indices.
func laneIndex(pos int) int { return -2 - pos }

// lanePos inverts laneIndex; valid only when index <= -2.
func lanePos(index int) int { return -2 - index }

// eventHeap implements container/heap ordered by (At, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// EventQueue is a time-ordered queue of events with FIFO tie-breaking. The
// zero value is ready to use.
//
// Internally it is two-level: events scheduled at the current time — the
// dominant pattern in the firmware page pipeline, where every pump/deliver
// hop schedules its successor "now" — go to an O(1) FIFO lane, while future
// events go to the binary heap. The two are merged at the head by (At, seq),
// so dispatch order is exactly what a single heap would produce.
type EventQueue struct {
	heap eventHeap
	now  Time
	seq  int64
	// lane holds events scheduled at (or clamped to) the current time, in
	// (At, seq) order. laneHead indexes the next live entry; popped and
	// cancelled slots before it are nil. The lane invariant — every lane
	// entry sorts at-or-before every heap entry that was pending when it was
	// appended — holds because Schedule clamps At to >= now and the heap
	// never contains an event with At < now.
	lane     []*Event
	laneHead int
	// horizon, when nonzero, is the deadline of the RunUntil/FlushUntil loop
	// currently dispatching; Horizon() exposes it so bulk callbacks (the
	// firmware delivery train) can tell how far this dispatch round extends.
	horizon Time
	// free recycles dispatched/cancelled Event objects so the steady-state
	// schedule→dispatch cycle of the firmware page pipeline allocates
	// nothing. Cancelled lane entries are recycled only when their slot is
	// popped, never at Cancel time, so a pending pop can never observe a
	// reused payload.
	free []*Event
}

// Now returns the time of the most recently dispatched event.
func (q *EventQueue) Now() Time { return q.now }

// Horizon returns the furthest time the current dispatch round is committed
// to reach: the active RunUntil/FlushUntil deadline, or Now for a bare Step.
// Events at times <= Horizon() are guaranteed to fire within this round.
func (q *EventQueue) Horizon() Time {
	if q.horizon > q.now {
		return q.horizon
	}
	return q.now
}

// AdvanceTo moves the clock forward to t without dispatching anything. Bulk
// callbacks that absorb what would have been several later events (the
// firmware delivery train) use it so code running under them observes the
// same Now as the per-event world. Moving backwards is a no-op.
func (q *EventQueue) AdvanceTo(t Time) {
	if t > q.now {
		q.now = t
	}
}

// ReserveSeq claims and returns the next FIFO tie-break sequence number
// without scheduling anything. Pair with ScheduleSeq: a caller that batches
// several logical events into one can reserve each one's sequence number at
// the point the per-event code would have scheduled it, keeping the (At, seq)
// sort key — and therefore global dispatch order — identical.
func (q *EventQueue) ReserveSeq() int64 {
	q.seq++
	return q.seq
}

// Schedule queues fn to run at time at. Scheduling in the past (before the
// last dispatched event) snaps to the current time rather than violating
// causality; callers that care should not do it.
func (q *EventQueue) Schedule(at Time, fn func(now Time)) *Event {
	q.seq++
	return q.insert(at, q.seq, fn)
}

// ScheduleSeq queues fn at time at with a previously reserved sequence
// number. The reservation fixes the event's FIFO rank among simultaneous
// events at the moment ReserveSeq was called, regardless of how many events
// were scheduled since.
func (q *EventQueue) ScheduleSeq(at Time, seq int64, fn func(now Time)) *Event {
	return q.insert(at, seq, fn)
}

func (q *EventQueue) insert(at Time, seq int64, fn func(now Time)) *Event {
	if at < q.now {
		at = q.now
	}
	var e *Event
	if n := len(q.free); n > 0 {
		e = q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
		e.At, e.Fn, e.seq = at, fn, seq
	} else {
		if cap(q.heap) == 0 {
			// First use: pre-size the heap so the early fill of the page
			// pipeline does not grow it step by step.
			q.heap = make(eventHeap, 0, 64)
		}
		e = &Event{At: at, Fn: fn, seq: seq}
	}
	if at == q.now {
		q.lanePush(e)
	} else {
		heap.Push(&q.heap, e)
	}
	return e
}

// lanePush appends e to the now-lane, inserting in (At, seq) order. The
// common case — a fresh sequence number, larger than every pending one — is
// a plain append; only ScheduleSeq with an older reservation walks backwards.
func (q *EventQueue) lanePush(e *Event) {
	pos := len(q.lane)
	q.lane = append(q.lane, e)
	for pos > q.laneHead {
		prev := q.lane[pos-1]
		if prev.At < e.At || (prev.At == e.At && prev.seq < e.seq) {
			break
		}
		q.lane[pos] = prev
		prev.index = laneIndex(pos)
		pos--
	}
	q.lane[pos] = e
	e.index = laneIndex(pos)
}

// laneSkipCancelled pops cancelled tombstones off the lane head, recycling
// them now that nothing can dereference their slot, and resets the lane
// backing once drained so it never grows without bound.
func (q *EventQueue) laneSkipCancelled() {
	for q.laneHead < len(q.lane) {
		e := q.lane[q.laneHead]
		if e.Fn != nil {
			return
		}
		q.lane[q.laneHead] = nil
		q.laneHead++
		e.index = -1
		q.free = append(q.free, e)
	}
	q.lane = q.lane[:0]
	q.laneHead = 0
}

// recycle returns a no-longer-queued event to the pool, dropping its closure
// reference.
func (q *EventQueue) recycle(e *Event) {
	e.Fn = nil
	e.index = -1
	q.free = append(q.free, e)
}

// ScheduleAfter queues fn to run delta after the current time.
func (q *EventQueue) ScheduleAfter(delta Time, fn func(now Time)) *Event {
	return q.Schedule(q.now+delta, fn)
}

// Cancel removes a queued event. Cancelling an already-fired or
// already-cancelled event is a no-op (but see Event: a stale handle may by
// then refer to a recycled object, so cancel only handles you know are still
// pending). Heap events are unlinked immediately; lane events are
// tombstoned in place and recycled when their slot is popped, so a
// same-instant pop that already resolved the slot cannot fire a recycled
// payload.
func (q *EventQueue) Cancel(e *Event) {
	if e == nil {
		return
	}
	if e.index <= -2 {
		pos := lanePos(e.index)
		if pos < q.laneHead || pos >= len(q.lane) || q.lane[pos] != e {
			return
		}
		e.Fn = nil // tombstone; laneSkipCancelled/Step recycle it at pop time
		return
	}
	if e.index < 0 || e.index >= len(q.heap) || q.heap[e.index] != e {
		return
	}
	heap.Remove(&q.heap, e.index)
	q.recycle(e)
}

// Empty reports whether no events remain.
func (q *EventQueue) Empty() bool {
	q.laneSkipCancelled()
	return q.laneHead >= len(q.lane) && len(q.heap) == 0
}

// PeekTime returns the time of the next event, or MaxTime if none.
func (q *EventQueue) PeekTime() Time {
	t, _ := q.PeekNext()
	return t
}

// PeekNext returns the (At, seq) sort key of the next event to dispatch, or
// (MaxTime, MaxInt64) if none. Bulk callbacks compare their pending work
// against it to decide whether anything else must run first.
func (q *EventQueue) PeekNext() (Time, int64) {
	q.laneSkipCancelled()
	le := q.laneHead < len(q.lane)
	he := len(q.heap) > 0
	switch {
	case !le && !he:
		return MaxTime, math.MaxInt64
	case le && !he:
		e := q.lane[q.laneHead]
		return e.At, e.seq
	case he && !le:
		return q.heap[0].At, q.heap[0].seq
	}
	l, h := q.lane[q.laneHead], q.heap[0]
	if l.At < h.At || (l.At == h.At && l.seq < h.seq) {
		return l.At, l.seq
	}
	return h.At, h.seq
}

// Step dispatches the next event. It reports false when the queue is empty.
func (q *EventQueue) Step() bool {
	q.laneSkipCancelled()
	var e *Event
	le := q.laneHead < len(q.lane)
	he := len(q.heap) > 0
	switch {
	case !le && !he:
		return false
	case le && (!he || func() bool {
		l, h := q.lane[q.laneHead], q.heap[0]
		return l.At < h.At || (l.At == h.At && l.seq < h.seq)
	}()):
		e = q.lane[q.laneHead]
		q.lane[q.laneHead] = nil
		q.laneHead++
		if q.laneHead >= len(q.lane) {
			q.lane = q.lane[:0]
			q.laneHead = 0
		}
	default:
		e = heap.Pop(&q.heap).(*Event)
	}
	q.now = e.At
	fn, at := e.Fn, e.At
	// Recycle before dispatch: the callback may Schedule, and should be able
	// to reuse this object immediately.
	q.recycle(e)
	fn(at)
	return true
}

// RunUntil dispatches events with At <= deadline and advances Now to
// deadline (or to the last event time if that is later than the deadline
// due to an exactly-at-deadline event). It returns the number of events run.
func (q *EventQueue) RunUntil(deadline Time) int {
	prev := q.horizon
	q.horizon = deadline
	n := 0
	// PeekTime returns MaxTime for an empty queue, so when deadline is
	// MaxTime the Step return is what terminates the loop.
	for q.PeekTime() <= deadline && q.Step() {
		n++
	}
	q.horizon = prev
	if q.now < deadline {
		q.now = deadline
	}
	return n
}

// FlushUntil dispatches events with At <= deadline like RunUntil, but never
// advances Now past the last dispatched event — callers that may keep
// using the queue afterwards (e.g. between back-to-back requests) must not
// have the clock dragged to an arbitrary deadline.
func (q *EventQueue) FlushUntil(deadline Time) int {
	prev := q.horizon
	q.horizon = deadline
	n := 0
	for q.PeekTime() <= deadline && q.Step() {
		n++
	}
	q.horizon = prev
	return n
}

// Drain dispatches all remaining events, with a safety bound to surface
// accidental event storms in tests. It returns the number of events run.
func (q *EventQueue) Drain(maxEvents int) int {
	n := 0
	for q.Step() {
		n++
		if maxEvents > 0 && n >= maxEvents {
			break
		}
	}
	return n
}
