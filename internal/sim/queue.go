package sim

import "container/heap"

// Event is a callback scheduled at a point in simulated time.
type Event struct {
	At Time
	Fn func(now Time)

	seq   int64 // tie-breaker: FIFO among simultaneous events
	index int   // heap index; -1 when not queued
}

// eventHeap implements container/heap ordered by (At, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// EventQueue is a time-ordered queue of events with FIFO tie-breaking. The
// zero value is ready to use.
type EventQueue struct {
	heap eventHeap
	now  Time
	seq  int64
}

// Now returns the time of the most recently dispatched event.
func (q *EventQueue) Now() Time { return q.now }

// Schedule queues fn to run at time at. Scheduling in the past (before the
// last dispatched event) snaps to the current time rather than violating
// causality; callers that care should not do it.
func (q *EventQueue) Schedule(at Time, fn func(now Time)) *Event {
	if at < q.now {
		at = q.now
	}
	q.seq++
	e := &Event{At: at, Fn: fn, seq: q.seq}
	heap.Push(&q.heap, e)
	return e
}

// ScheduleAfter queues fn to run delta after the current time.
func (q *EventQueue) ScheduleAfter(delta Time, fn func(now Time)) *Event {
	return q.Schedule(q.now+delta, fn)
}

// Cancel removes a queued event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (q *EventQueue) Cancel(e *Event) {
	if e == nil || e.index < 0 || e.index >= len(q.heap) || q.heap[e.index] != e {
		return
	}
	heap.Remove(&q.heap, e.index)
}

// Empty reports whether no events remain.
func (q *EventQueue) Empty() bool { return len(q.heap) == 0 }

// PeekTime returns the time of the next event, or MaxTime if none.
func (q *EventQueue) PeekTime() Time {
	if len(q.heap) == 0 {
		return MaxTime
	}
	return q.heap[0].At
}

// Step dispatches the next event. It reports false when the queue is empty.
func (q *EventQueue) Step() bool {
	if len(q.heap) == 0 {
		return false
	}
	e := heap.Pop(&q.heap).(*Event)
	q.now = e.At
	e.Fn(e.At)
	return true
}

// RunUntil dispatches events with At <= deadline and advances Now to
// deadline (or to the last event time if that is later than the deadline
// due to an exactly-at-deadline event). It returns the number of events run.
func (q *EventQueue) RunUntil(deadline Time) int {
	n := 0
	for len(q.heap) > 0 && q.heap[0].At <= deadline {
		q.Step()
		n++
	}
	if q.now < deadline {
		q.now = deadline
	}
	return n
}

// FlushUntil dispatches events with At <= deadline like RunUntil, but never
// advances Now past the last dispatched event — callers that may keep
// using the queue afterwards (e.g. between back-to-back requests) must not
// have the clock dragged to an arbitrary deadline.
func (q *EventQueue) FlushUntil(deadline Time) int {
	n := 0
	for len(q.heap) > 0 && q.heap[0].At <= deadline {
		q.Step()
		n++
	}
	return n
}

// Drain dispatches all remaining events, with a safety bound to surface
// accidental event storms in tests. It returns the number of events run.
func (q *EventQueue) Drain(maxEvents int) int {
	n := 0
	for q.Step() {
		n++
		if maxEvents > 0 && n >= maxEvents {
			break
		}
	}
	return n
}
