package sim

import "container/heap"

// Event is a callback scheduled at a point in simulated time.
//
// Event objects are pooled by their queue: the handle returned by Schedule is
// valid only until the event fires or is cancelled, after which the queue may
// recycle the object for a later Schedule. Hold the handle to Cancel a
// pending event; drop it once the event has been dispatched.
type Event struct {
	At Time
	Fn func(now Time)

	seq   int64 // tie-breaker: FIFO among simultaneous events
	index int   // heap index; -1 when not queued
}

// eventHeap implements container/heap ordered by (At, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// EventQueue is a time-ordered queue of events with FIFO tie-breaking. The
// zero value is ready to use.
type EventQueue struct {
	heap eventHeap
	now  Time
	seq  int64
	// free recycles dispatched/cancelled Event objects so the steady-state
	// schedule→dispatch cycle of the firmware page pipeline allocates
	// nothing.
	free []*Event
}

// Now returns the time of the most recently dispatched event.
func (q *EventQueue) Now() Time { return q.now }

// Schedule queues fn to run at time at. Scheduling in the past (before the
// last dispatched event) snaps to the current time rather than violating
// causality; callers that care should not do it.
func (q *EventQueue) Schedule(at Time, fn func(now Time)) *Event {
	if at < q.now {
		at = q.now
	}
	q.seq++
	var e *Event
	if n := len(q.free); n > 0 {
		e = q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
		e.At, e.Fn, e.seq = at, fn, q.seq
	} else {
		if cap(q.heap) == 0 {
			// First use: pre-size the heap so the early fill of the page
			// pipeline does not grow it step by step.
			q.heap = make(eventHeap, 0, 64)
		}
		e = &Event{At: at, Fn: fn, seq: q.seq}
	}
	heap.Push(&q.heap, e)
	return e
}

// recycle returns a no-longer-queued event to the pool, dropping its closure
// reference.
func (q *EventQueue) recycle(e *Event) {
	e.Fn = nil
	q.free = append(q.free, e)
}

// ScheduleAfter queues fn to run delta after the current time.
func (q *EventQueue) ScheduleAfter(delta Time, fn func(now Time)) *Event {
	return q.Schedule(q.now+delta, fn)
}

// Cancel removes a queued event. Cancelling an already-fired or
// already-cancelled event is a no-op (but see Event: a stale handle may by
// then refer to a recycled object, so cancel only handles you know are still
// pending).
func (q *EventQueue) Cancel(e *Event) {
	if e == nil || e.index < 0 || e.index >= len(q.heap) || q.heap[e.index] != e {
		return
	}
	heap.Remove(&q.heap, e.index)
	q.recycle(e)
}

// Empty reports whether no events remain.
func (q *EventQueue) Empty() bool { return len(q.heap) == 0 }

// PeekTime returns the time of the next event, or MaxTime if none.
func (q *EventQueue) PeekTime() Time {
	if len(q.heap) == 0 {
		return MaxTime
	}
	return q.heap[0].At
}

// Step dispatches the next event. It reports false when the queue is empty.
func (q *EventQueue) Step() bool {
	if len(q.heap) == 0 {
		return false
	}
	e := heap.Pop(&q.heap).(*Event)
	q.now = e.At
	fn, at := e.Fn, e.At
	// Recycle before dispatch: the callback may Schedule, and should be able
	// to reuse this object immediately.
	q.recycle(e)
	fn(at)
	return true
}

// RunUntil dispatches events with At <= deadline and advances Now to
// deadline (or to the last event time if that is later than the deadline
// due to an exactly-at-deadline event). It returns the number of events run.
func (q *EventQueue) RunUntil(deadline Time) int {
	n := 0
	for len(q.heap) > 0 && q.heap[0].At <= deadline {
		q.Step()
		n++
	}
	if q.now < deadline {
		q.now = deadline
	}
	return n
}

// FlushUntil dispatches events with At <= deadline like RunUntil, but never
// advances Now past the last dispatched event — callers that may keep
// using the queue afterwards (e.g. between back-to-back requests) must not
// have the clock dragged to an arbitrary deadline.
func (q *EventQueue) FlushUntil(deadline Time) int {
	n := 0
	for len(q.heap) > 0 && q.heap[0].At <= deadline {
		q.Step()
		n++
	}
	return n
}

// Drain dispatches all remaining events, with a safety bound to surface
// accidental event storms in tests. It returns the number of events run.
func (q *EventQueue) Drain(maxEvents int) int {
	n := 0
	for q.Step() {
		n++
		if maxEvents > 0 && n >= maxEvents {
			break
		}
	}
	return n
}
