package sim

// BandwidthServer models a shared, serially-occupied resource such as a DRAM
// channel, a flash channel bus, or a crossbar port. Transfers are serviced
// first-come-first-served: a transfer arriving at time t begins at
// max(t, nextFree), occupies the server for size/bandwidth, and completes
// when the occupation ends (plus any fixed per-access latency).
//
// Because the ASSASIN co-simulation advances multiple cores with a small
// time quantum, arrivals can be slightly out of global time order; the
// server tolerates that by construction (start time is clamped to arrival),
// which keeps utilization accounting exact even if individual orderings are
// approximate.
type BandwidthServer struct {
	name string
	// bytesPerSecond is the sustained service bandwidth.
	bytesPerSecond float64
	// latency is a fixed pipeline latency added to each access completion
	// (it does not occupy the server).
	latency Time

	nextFree Time
	busy     Time  // total occupied time
	bytes    int64 // total bytes served
	accesses int64
}

// NewBandwidthServer returns a server with the given sustained bandwidth in
// bytes per second and fixed per-access latency.
func NewBandwidthServer(name string, bytesPerSecond float64, latency Time) *BandwidthServer {
	return &BandwidthServer{name: name, bytesPerSecond: bytesPerSecond, latency: latency}
}

// Name returns the label given at construction.
func (s *BandwidthServer) Name() string { return s.name }

// Bandwidth returns the configured bandwidth in bytes per second.
func (s *BandwidthServer) Bandwidth() float64 { return s.bytesPerSecond }

// TransferTime returns how long size bytes occupy the server.
func (s *BandwidthServer) TransferTime(size int) Time {
	if size <= 0 || s.bytesPerSecond <= 0 {
		return 0
	}
	return Time(float64(size) / s.bytesPerSecond * float64(Second))
}

// Access services a transfer of size bytes arriving at time at and returns
// the completion time (including fixed latency).
func (s *BandwidthServer) Access(at Time, size int) Time {
	start := MaxT(at, s.nextFree)
	dur := s.TransferTime(size)
	s.nextFree = start + dur
	s.busy += dur
	s.bytes += int64(size)
	s.accesses++
	return s.nextFree + s.latency
}

// NextFree returns the earliest time a new transfer could begin service.
func (s *BandwidthServer) NextFree() Time { return s.nextFree }

// BusyTime returns the total time the server has been occupied.
func (s *BandwidthServer) BusyTime() Time { return s.busy }

// Bytes returns the total bytes served.
func (s *BandwidthServer) Bytes() int64 { return s.bytes }

// Accesses returns the number of transfers served.
func (s *BandwidthServer) Accesses() int64 { return s.accesses }

// Utilization returns busy/elapsed in [0,1] over the window ending at now.
func (s *BandwidthServer) Utilization(now Time) float64 {
	if now <= 0 {
		return 0
	}
	u := float64(s.busy) / float64(now)
	if u > 1 {
		u = 1
	}
	return u
}

// Reset clears occupancy and statistics.
func (s *BandwidthServer) Reset() {
	s.nextFree = 0
	s.busy = 0
	s.bytes = 0
	s.accesses = 0
}
