package sim

import "testing"

// BenchmarkEventQueue measures the schedule→dispatch cycle with a steady
// working set of pending events — the firmware page pipeline's pattern.
func BenchmarkEventQueue(b *testing.B) {
	var q EventQueue
	fn := func(Time) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Schedule(q.Now()+Time(i%7+1), fn)
		if i >= 32 {
			q.Step()
		}
	}
	for q.Step() {
	}
}

// BenchmarkEventQueueMixed measures the queue under the firmware's real mix:
// mostly schedule-at-now pump events (the O(1) lane), a minority of future
// transfer completions (the heap), with interleaved dispatch.
func BenchmarkEventQueueMixed(b *testing.B) {
	var q EventQueue
	fn := func(Time) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%4 == 0 {
			q.Schedule(q.Now()+Time(i%13+1), fn) // future: heap path
		} else {
			q.Schedule(q.Now(), fn) // at-now: lane path
		}
		if i >= 32 {
			q.Step()
		}
	}
	for q.Step() {
	}
}

// BenchmarkEventQueueScheduleCancel measures the schedule→cancel path used
// by timeout-style events that usually do not fire.
func BenchmarkEventQueueScheduleCancel(b *testing.B) {
	var q EventQueue
	fn := func(Time) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := q.Schedule(q.Now()+Time(i%7+1), fn)
		q.Cancel(e)
	}
}
