package sim

import "testing"

// BenchmarkEventQueue measures the schedule→dispatch cycle with a steady
// working set of pending events — the firmware page pipeline's pattern.
func BenchmarkEventQueue(b *testing.B) {
	var q EventQueue
	fn := func(Time) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Schedule(q.Now()+Time(i%7+1), fn)
		if i >= 32 {
			q.Step()
		}
	}
	for q.Step() {
	}
}

// BenchmarkEventQueueScheduleCancel measures the schedule→cancel path used
// by timeout-style events that usually do not fire.
func BenchmarkEventQueueScheduleCancel(b *testing.B) {
	var q EventQueue
	fn := func(Time) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := q.Schedule(q.Now()+Time(i%7+1), fn)
		q.Cancel(e)
	}
}
