package sim

import (
	"errors"
	"testing"
)

// tickerProc advances in fixed steps, recording each step time into a shared
// trace, until it has made n steps.
type tickerProc struct {
	name  string
	step  Time
	n     int
	local Time
	trace *[]traceEntry
}

type traceEntry struct {
	who string
	at  Time
}

func (p *tickerProc) Name() string { return p.name }

func (p *tickerProc) Run(limit Time) (Time, RunState, Time) {
	for p.n > 0 && p.local+p.step <= limit {
		p.local += p.step
		p.n--
		if p.trace != nil {
			*p.trace = append(*p.trace, traceEntry{p.name, p.local})
		}
	}
	if p.n == 0 {
		return p.local, StateDone, 0
	}
	return p.local, StateReady, 0
}

func TestSchedulerInterleavesByLocalTime(t *testing.T) {
	var trace []traceEntry
	s := NewScheduler()
	s.Quantum = 10
	fast := &tickerProc{name: "fast", step: 3, n: 10, trace: &trace}
	slow := &tickerProc{name: "slow", step: 7, n: 4, trace: &trace}
	s.Add(fast)
	s.Add(slow)
	end, err := s.Run(MaxTime)
	if err != nil {
		t.Fatal(err)
	}
	if end != 30 { // fast finishes at 30, slow at 28
		t.Errorf("end = %v, want 30", end)
	}
	// The trace must be near-ordered: no entry precedes an earlier entry by
	// more than one quantum.
	for i := 1; i < len(trace); i++ {
		if trace[i].at+Time(s.Quantum) < trace[i-1].at {
			t.Fatalf("trace out of order beyond quantum at %d: %v", i, trace)
		}
	}
}

// waiterProc waits for an external wake, then finishes.
type waiterProc struct {
	name  string
	woken bool
	ranAt Time
}

func (p *waiterProc) Name() string { return p.name }
func (p *waiterProc) Run(limit Time) (Time, RunState, Time) {
	if !p.woken {
		return 0, StateWaiting, MaxTime
	}
	return p.ranAt, StateDone, 0
}

func TestSchedulerWakeFromEvent(t *testing.T) {
	s := NewScheduler()
	w := &waiterProc{name: "w"}
	s.Add(w)
	s.Events.Schedule(100, func(now Time) {
		w.woken = true
		w.ranAt = now
		s.Wake(w, now)
	})
	end, err := s.Run(MaxTime)
	if err != nil {
		t.Fatal(err)
	}
	if end < 100 {
		t.Errorf("end = %v, want >= 100", end)
	}
}

func TestSchedulerDeadlockDetection(t *testing.T) {
	s := NewScheduler()
	s.Add(&waiterProc{name: "stuck"})
	_, err := s.Run(MaxTime)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

func TestSchedulerDeadline(t *testing.T) {
	s := NewScheduler()
	s.Add(&tickerProc{name: "t", step: 10, n: 1 << 30})
	end, err := s.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if end != 1000 {
		t.Errorf("end = %v, want deadline 1000", end)
	}
}

// producerConsumer exercises the wake path that the firmware/core pair uses:
// a producer event fills a queue, the consumer process drains it.
func TestSchedulerProducerConsumer(t *testing.T) {
	s := NewScheduler()
	queue := 0
	consumed := 0
	var cons *consumerProc
	cons = &consumerProc{
		name: "consumer",
		take: func(now Time) (bool, bool) {
			if queue > 0 {
				queue--
				consumed++
				return true, consumed == 5
			}
			return false, false
		},
	}
	s.Add(cons)
	for i := 1; i <= 5; i++ {
		at := Time(i) * 100
		s.Events.Schedule(at, func(now Time) {
			queue++
			s.Wake(cons, now)
		})
	}
	end, err := s.Run(MaxTime)
	if err != nil {
		t.Fatal(err)
	}
	if consumed != 5 {
		t.Errorf("consumed = %d, want 5", consumed)
	}
	if end < 500 {
		t.Errorf("end = %v, want >= 500", end)
	}
}

type consumerProc struct {
	name  string
	local Time
	take  func(now Time) (ok, done bool)
}

func (p *consumerProc) Name() string { return p.name }
func (p *consumerProc) Run(limit Time) (Time, RunState, Time) {
	for p.local <= limit {
		ok, done := p.take(p.local)
		if done {
			return p.local, StateDone, 0
		}
		if !ok {
			return p.local, StateWaiting, MaxTime
		}
		p.local += 10
	}
	return p.local, StateReady, 0
}

func TestSchedulerNowAcrossProcesses(t *testing.T) {
	s := NewScheduler()
	a := &tickerProc{name: "a", step: 5, n: 2}
	b := &tickerProc{name: "b", step: 50, n: 2}
	s.Add(a)
	s.Add(b)
	if _, err := s.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if s.Now() != 100 {
		t.Errorf("Now = %v, want 100 (max done time)", s.Now())
	}
}

// limitProc records the limit passed to each Run call, advancing by step
// until done — the observable effect of per-process quanta.
type limitProc struct {
	name   string
	step   Time
	n      int
	local  Time
	limits []Time
}

func (p *limitProc) Name() string { return p.name }

func (p *limitProc) Run(limit Time) (Time, RunState, Time) {
	p.limits = append(p.limits, limit)
	for p.n > 0 && p.local+p.step <= limit {
		p.local += p.step
		p.n--
	}
	if p.n == 0 {
		return p.local, StateDone, 0
	}
	return p.local, StateReady, 0
}

func TestSchedulerPerProcessQuantum(t *testing.T) {
	s := NewScheduler()
	s.Quantum = 10
	wide := &limitProc{name: "wide", step: 1, n: 100}
	dflt := &limitProc{name: "dflt", step: 1, n: 100}
	s.Add(wide)
	s.Add(dflt)
	s.SetQuantum(wide, 50)
	if _, err := s.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	// wide gets 50-unit slices (2 full runs + a spill); dflt 10-unit slices.
	if len(wide.limits) >= len(dflt.limits) {
		t.Fatalf("wide ran %d times, dflt %d times; larger quantum should need fewer runs",
			len(wide.limits), len(dflt.limits))
	}
	if got := wide.limits[0]; got != 50 {
		t.Errorf("wide first limit = %v, want 50", got)
	}
	if got := dflt.limits[0]; got != 10 {
		t.Errorf("dflt first limit = %v, want 10", got)
	}
}

func TestSchedulerQuantumSurvivesReAdd(t *testing.T) {
	s := NewScheduler()
	s.Quantum = 10
	p := &limitProc{name: "p", step: 1, n: 5}
	s.SetQuantum(p, 25) // set before the process was ever added
	s.Add(p)
	if _, err := s.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if got := p.limits[0]; got != 25 {
		t.Fatalf("first limit = %v, want 25", got)
	}
	// Re-Add (a second offload on the same core process): the entry resumes
	// from its prior local time (5) and keeps the private quantum.
	p.n = 5
	p.limits = nil
	s.Add(p)
	if _, err := s.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if got := p.limits[0]; got != 5+25 {
		t.Fatalf("limit after re-Add = %v, want 30 (local 5 + quantum 25)", got)
	}
	// Negative restores the scheduler default (local is now 10).
	s.SetQuantum(p, -1)
	p.n = 5
	p.limits = nil
	s.Add(p)
	if _, err := s.Run(MaxTime); err != nil {
		t.Fatal(err)
	}
	if got := p.limits[0]; got != 10+10 {
		t.Fatalf("limit after reset = %v, want 20 (local 10 + default quantum 10)", got)
	}
}
