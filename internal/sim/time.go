// Package sim provides the discrete-event simulation kernel underlying the
// ASSASIN SSD and core models: simulated time, an event queue, bandwidth
// servers for shared links and memories, and a conservative process
// scheduler that co-simulates instruction-interpreting cores with the
// event-driven SSD world.
package sim

import (
	"fmt"
	"math"
)

// Time is simulated time in integer picoseconds. Picosecond resolution lets
// clock periods that are not whole nanoseconds (e.g. the 890 ps
// timing-adjusted ASSASIN core clock from Fig. 20) be represented exactly.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// MaxTime is the largest representable simulation time. It doubles as the
// "never" sentinel for components that currently have nothing scheduled.
const MaxTime Time = math.MaxInt64

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Nanoseconds converts t to floating-point nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds converts t to floating-point microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// String renders the time with an adaptive unit, for logs and test failures.
func (t Time) String() string {
	switch {
	case t == MaxTime:
		return "never"
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", t.Microseconds())
	case t >= Nanosecond:
		return fmt.Sprintf("%.3fns", t.Nanoseconds())
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// MaxT returns the later of two times.
func MaxT(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// MinT returns the earlier of two times.
func MinT(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// Clock describes a fixed-frequency clock domain.
type Clock struct {
	// Period is the duration of one cycle.
	Period Time
}

// NewClock returns a clock with the given frequency in Hz.
func NewClock(hz float64) Clock {
	return Clock{Period: Time(float64(Second) / hz)}
}

// Cycles converts a cycle count to a duration in this clock domain.
func (c Clock) Cycles(n int64) Time { return Time(n) * c.Period }

// CyclesAt returns how many full cycles of this clock fit in d.
func (c Clock) CyclesAt(d Time) int64 {
	if c.Period <= 0 {
		return 0
	}
	return int64(d / c.Period)
}

// Hz returns the clock frequency in Hertz.
func (c Clock) Hz() float64 { return float64(Second) / float64(c.Period) }
