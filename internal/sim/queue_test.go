package sim

import (
	"math/rand"
	"sort"
	"testing"
)

func TestEventQueueOrdering(t *testing.T) {
	var q EventQueue
	var got []int
	q.Schedule(30, func(Time) { got = append(got, 3) })
	q.Schedule(10, func(Time) { got = append(got, 1) })
	q.Schedule(20, func(Time) { got = append(got, 2) })
	q.Drain(0)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("dispatch order = %v, want [1 2 3]", got)
	}
	if q.Now() != 30 {
		t.Errorf("Now = %v, want 30", q.Now())
	}
}

func TestEventQueueFIFOAtSameTime(t *testing.T) {
	var q EventQueue
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		q.Schedule(5, func(Time) { got = append(got, i) })
	}
	q.Drain(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestEventQueueCancel(t *testing.T) {
	var q EventQueue
	fired := false
	e := q.Schedule(10, func(Time) { fired = true })
	q.Cancel(e)
	q.Cancel(e) // double-cancel is a no-op
	q.Drain(0)
	if fired {
		t.Error("cancelled event fired")
	}
}

// TestEventQueueCancelRecycleNotReusedWhileQueued pins the pooled-event
// reuse-after-cancel contract: a cancelled event whose queue slot has not
// been popped yet must not be handed back out by the pool. If Cancel
// recycled a now-lane entry immediately, the next Schedule would load a new
// payload into an object the lane still references, firing it twice.
func TestEventQueueCancelRecycleNotReusedWhileQueued(t *testing.T) {
	var q EventQueue
	q.Schedule(10, func(Time) {})
	q.Step() // now = 10: subsequent Schedule(10, ...) lands in the now-lane
	var got []string
	a := q.Schedule(10, func(Time) { got = append(got, "a") })
	q.Schedule(10, func(Time) { got = append(got, "b") })
	q.Cancel(a)
	q.Cancel(a) // double-cancel of a tombstoned lane entry is a no-op
	// Would reuse a's pooled object if Cancel recycled it while still in
	// the lane — the lane slot would then fire c's payload a second time.
	q.Schedule(10, func(Time) { got = append(got, "c") })
	q.Drain(0)
	if len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Fatalf("dispatch after lane cancel = %v, want [b c]", got)
	}
}

// TestEventQueueTwoLevelMerge checks that now-lane entries and heap entries
// at the same timestamp dispatch in global (At, seq) order.
func TestEventQueueTwoLevelMerge(t *testing.T) {
	var q EventQueue
	var got []int
	q.Schedule(20, func(now Time) {
		got = append(got, 1)
		// Lands in the now-lane with a seq after the heap-resident peer
		// below: must fire last despite the lane being "nearer".
		q.Schedule(now, func(Time) { got = append(got, 3) })
	})
	q.Schedule(20, func(Time) { got = append(got, 2) })
	q.Drain(0)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("merge order = %v, want [1 2 3]", got)
	}
}

// TestEventQueueReservedSeq checks that ScheduleSeq restores the FIFO rank
// claimed at ReserveSeq time, even for insertions after later-seq peers.
func TestEventQueueReservedSeq(t *testing.T) {
	var q EventQueue
	var got []int
	s1 := q.ReserveSeq()
	q.Schedule(0, func(Time) { got = append(got, 2) })
	q.ScheduleSeq(0, s1, func(Time) { got = append(got, 1) })
	s2 := q.ReserveSeq()
	q.Schedule(5, func(Time) { got = append(got, 4) })
	q.ScheduleSeq(5, s2, func(Time) { got = append(got, 3) })
	q.Drain(0)
	if len(got) != 4 || got[0] != 1 || got[1] != 2 || got[2] != 3 || got[3] != 4 {
		t.Fatalf("reserved-seq order = %v, want [1 2 3 4]", got)
	}
}

func TestEventQueueHorizon(t *testing.T) {
	var q EventQueue
	var inRun, inFlush, inStep Time
	q.Schedule(10, func(Time) { inRun = q.Horizon() })
	q.RunUntil(100)
	q.Schedule(200, func(Time) { inFlush = q.Horizon() })
	q.FlushUntil(300)
	q.Schedule(400, func(Time) { inStep = q.Horizon() })
	q.Step()
	if inRun != 100 || inFlush != 300 || inStep != 400 {
		t.Fatalf("Horizon inside RunUntil/FlushUntil/Step = %v/%v/%v, want 100/300/400",
			inRun, inFlush, inStep)
	}
	if q.Horizon() != q.Now() {
		t.Fatalf("idle Horizon = %v, want Now (%v)", q.Horizon(), q.Now())
	}
}

func TestEventQueueRunUntil(t *testing.T) {
	var q EventQueue
	var got []Time
	for _, at := range []Time{5, 15, 25} {
		at := at
		q.Schedule(at, func(now Time) { got = append(got, now) })
	}
	n := q.RunUntil(20)
	if n != 2 || len(got) != 2 {
		t.Fatalf("RunUntil(20) ran %d events (%v), want 2", n, got)
	}
	if q.Now() != 20 {
		t.Errorf("Now = %v after RunUntil(20)", q.Now())
	}
	if q.PeekTime() != 25 {
		t.Errorf("PeekTime = %v, want 25", q.PeekTime())
	}
}

func TestEventQueueScheduleInPastSnaps(t *testing.T) {
	var q EventQueue
	q.Schedule(100, func(Time) {})
	q.Step()
	var at Time
	q.Schedule(50, func(now Time) { at = now })
	q.Step()
	if at != 100 {
		t.Errorf("past-scheduled event ran at %v, want snap to 100", at)
	}
}

func TestEventQueueScheduleDuringDispatch(t *testing.T) {
	var q EventQueue
	var got []Time
	q.Schedule(10, func(now Time) {
		q.ScheduleAfter(5, func(n2 Time) { got = append(got, n2) })
	})
	q.Drain(0)
	if len(got) != 1 || got[0] != 15 {
		t.Fatalf("nested schedule: got %v, want [15]", got)
	}
}

func TestEventQueueRandomizedOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var q EventQueue
	var want []Time
	var got []Time
	for i := 0; i < 500; i++ {
		at := Time(rng.Intn(10000))
		want = append(want, at)
		q.Schedule(at, func(now Time) { got = append(got, now) })
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	q.Drain(0)
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("event %d at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestBandwidthServerSerialization(t *testing.T) {
	s := NewBandwidthServer("dram", 8e9, 0) // 8 GB/s
	// 64 B at 8 GB/s = 8 ns.
	d1 := s.Access(0, 64)
	if d1 != 8*Nanosecond {
		t.Fatalf("first access done at %v, want 8ns", d1)
	}
	// Arrives while busy: serialized.
	d2 := s.Access(4*Nanosecond, 64)
	if d2 != 16*Nanosecond {
		t.Fatalf("second access done at %v, want 16ns", d2)
	}
	// Arrives after idle gap: starts immediately.
	d3 := s.Access(100*Nanosecond, 64)
	if d3 != 108*Nanosecond {
		t.Fatalf("third access done at %v, want 108ns", d3)
	}
	if s.Bytes() != 192 || s.Accesses() != 3 {
		t.Errorf("stats: bytes=%d accesses=%d", s.Bytes(), s.Accesses())
	}
	if s.BusyTime() != 24*Nanosecond {
		t.Errorf("busy = %v, want 24ns", s.BusyTime())
	}
	u := s.Utilization(108 * Nanosecond)
	if u < 0.22 || u > 0.23 {
		t.Errorf("utilization = %g, want ~24/108", u)
	}
}

func TestBandwidthServerLatency(t *testing.T) {
	s := NewBandwidthServer("link", 1e9, 50*Nanosecond)
	done := s.Access(0, 1000) // 1 µs transfer + 50 ns latency
	if done != Microsecond+50*Nanosecond {
		t.Fatalf("done = %v", done)
	}
	// Latency does not occupy the server.
	if s.NextFree() != Microsecond {
		t.Fatalf("NextFree = %v, want 1us", s.NextFree())
	}
}

func TestBandwidthServerUtilizationNeverExceedsOne(t *testing.T) {
	s := NewBandwidthServer("x", 1e9, 0)
	for i := 0; i < 100; i++ {
		s.Access(0, 1000)
	}
	if u := s.Utilization(Microsecond); u > 1 {
		t.Errorf("utilization %g > 1", u)
	}
}

func TestBandwidthServerReset(t *testing.T) {
	s := NewBandwidthServer("x", 1e9, 0)
	s.Access(0, 4096)
	s.Reset()
	if s.Bytes() != 0 || s.BusyTime() != 0 || s.NextFree() != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestEventQueueFlushUntilDoesNotAdvanceClock(t *testing.T) {
	var q EventQueue
	fired := 0
	q.Schedule(10, func(Time) { fired++ })
	q.Schedule(500, func(Time) { fired++ })
	n := q.FlushUntil(1000)
	if n != 2 || fired != 2 {
		t.Fatalf("flush ran %d events", n)
	}
	if q.Now() != 500 {
		t.Fatalf("Now = %v after flush, want 500 (not the 1000 deadline)", q.Now())
	}
	// Scheduling after the flush lands at sane times.
	at := Time(-1)
	q.Schedule(600, func(now Time) { at = now })
	q.Drain(0)
	if at != 600 {
		t.Fatalf("post-flush event at %v", at)
	}
}
