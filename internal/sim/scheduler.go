package sim

import (
	"errors"
	"fmt"

	"assasin/internal/telemetry"
)

// RunState describes what a Process did when asked to run.
type RunState int

const (
	// StateReady means the process ran up to its limit and can keep going.
	StateReady RunState = iota
	// StateWaiting means the process is blocked until the returned wake
	// time (which may be MaxTime if another process must Wake it).
	StateWaiting
	// StateDone means the process has finished and should not run again.
	StateDone
)

// String implements fmt.Stringer for diagnostics.
func (s RunState) String() string {
	switch s {
	case StateReady:
		return "ready"
	case StateWaiting:
		return "waiting"
	case StateDone:
		return "done"
	default:
		return fmt.Sprintf("RunState(%d)", int(s))
	}
}

// Process is a simulated active entity (a compute core, the firmware
// processor) with its own local clock. The scheduler interleaves processes
// conservatively: the process with the earliest local time runs first, for
// at most one quantum, so accesses to shared resources arrive in
// near-global-time order.
type Process interface {
	// Name identifies the process in stats and error messages.
	Name() string
	// Run advances the process from its current local time until it blocks,
	// finishes, or its local time reaches limit. It returns the new local
	// time, the resulting state, and — for StateWaiting — the earliest time
	// the process should be retried (MaxTime when only an external Wake can
	// unblock it).
	Run(limit Time) (local Time, state RunState, wake Time)
}

// ErrDeadlock is returned by Scheduler.Run when every live process is
// waiting for an external wake that can never arrive.
var ErrDeadlock = errors.New("sim: deadlock: all processes waiting with no pending events")

// procEntry tracks scheduler-side state for one process.
type procEntry struct {
	p       Process
	local   Time
	readyAt Time
	quantum Time // per-process run quantum; 0 = scheduler default
	done    bool
	track   *telemetry.Track // per-process dispatch lane; lazily created
}

// SchedTel is the scheduler's telemetry bundle: dispatch/wake counters,
// quantum-usage and run-queue-depth histograms, and per-process dispatch
// spans on "sched/<name>" tracks. A nil *SchedTel disables everything (the
// scheduler hot loop guards on the single pointer).
type SchedTel struct {
	Sink        *telemetry.Sink
	Dispatches  *telemetry.Counter   // Process.Run invocations
	Wakes       *telemetry.Counter   // external Wake calls that advanced readiness
	QuantumUsed *telemetry.Histogram // simulated ps consumed per dispatch
	RunQueue    *telemetry.Histogram // live (not done) processes at each dispatch
}

// NewSchedTel registers the scheduler metrics on sink; returns nil for a
// nil sink so the disabled path stays a nil-pointer branch.
func NewSchedTel(sink *telemetry.Sink) *SchedTel {
	if sink == nil {
		return nil
	}
	return &SchedTel{
		Sink:        sink,
		Dispatches:  sink.Counter("sched", "dispatches"),
		Wakes:       sink.Counter("sched", "wakes"),
		QuantumUsed: sink.Histogram("sched", "quantum_used_ps"),
		RunQueue:    sink.Histogram("sched", "run_queue_live"),
	}
}

// Scheduler co-simulates a set of processes together with an event queue
// (used by passive components such as the firmware's page pipeline).
type Scheduler struct {
	// Quantum bounds how far a process may run past the minimum local time
	// of its peers, trading simulation fidelity for speed. The default
	// (1 µs) is well under the 16 µs flash page transfer time that paces
	// the modelled SSDs.
	Quantum Time

	Events EventQueue

	// Tel, when non-nil, collects dispatch/wake/run-queue telemetry and
	// emits one span per dispatch on a per-process track.
	Tel *SchedTel

	// OnAdvance, when non-nil, is called before every dispatch with the
	// dispatched process's start time in picoseconds — the committed
	// simulation horizon at that moment (conservative interleaving keeps
	// other processes within one quantum of it). Timeline samplers hook
	// here; the disabled path is a single nil check.
	OnAdvance func(nowPs int64)

	procs  []*procEntry
	index  map[Process]*procEntry
	quanta map[Process]Time // per-process quanta, also for not-yet-added procs

	// wakeGen increments whenever a Wake improves some process's readiness;
	// Run's all-blocked fast-forward batches event dispatch until it changes
	// instead of rescanning every process after each event.
	wakeGen uint64
}

// NewScheduler returns a scheduler with the default quantum.
func NewScheduler() *Scheduler {
	return &Scheduler{Quantum: Microsecond, index: make(map[Process]*procEntry)}
}

// Add registers a process starting at local time 0. Re-adding a process
// that already ran (e.g. a compute engine receiving its next request)
// revives its entry: the local clock is preserved, done/ready state resets.
func (s *Scheduler) Add(p Process) {
	if e, ok := s.index[p]; ok {
		e.done = false
		e.readyAt = e.local
		return
	}
	e := &procEntry{p: p, quantum: s.quanta[p]}
	s.procs = append(s.procs, e)
	s.index[p] = e
}

// SetQuantum gives process p a private run quantum in place of the
// scheduler-wide Quantum (0 restores the default). A larger quantum lets a
// core that just received a large stream window burn through it in fewer
// scheduler round-trips; it is only safe to raise for processes whose
// shared-resource access order is insensitive to coarser interleaving (e.g.
// stream-ISA cores that never touch the shared DRAM). The setting survives
// re-Adds of the same process across offload requests.
func (s *Scheduler) SetQuantum(p Process, q Time) {
	if q < 0 {
		q = 0
	}
	if s.quanta == nil {
		s.quanta = make(map[Process]Time)
	}
	s.quanta[p] = q
	if e, ok := s.index[p]; ok {
		e.quantum = q
	}
}

// Wake makes a waiting process runnable no later than t. Waking an unknown
// or finished process is a no-op.
func (s *Scheduler) Wake(p Process, t Time) {
	e, ok := s.index[p]
	if !ok || e.done {
		return
	}
	if t < e.local {
		t = e.local
	}
	if t < e.readyAt {
		e.readyAt = t
		s.wakeGen++
		if s.Tel != nil {
			s.Tel.Wakes.Inc()
		}
	}
}

// Now returns the minimum local time across live processes, i.e. the
// committed simulation horizon. When all processes are done it returns the
// maximum local time instead.
func (s *Scheduler) Now() Time {
	minLive := MaxTime
	maxDone := Time(0)
	for _, e := range s.procs {
		if e.done {
			maxDone = MaxT(maxDone, e.local)
			continue
		}
		minLive = MinT(minLive, e.local)
	}
	if minLive == MaxTime {
		return maxDone
	}
	return minLive
}

// Run drives all processes to completion or to the deadline. It returns the
// final simulation time, or ErrDeadlock if progress becomes impossible.
func (s *Scheduler) Run(deadline Time) (Time, error) {
	if s.Quantum <= 0 {
		s.Quantum = Microsecond
	}
	tel := s.Tel
	for {
		// Pick the live process with the earliest readiness.
		var next *procEntry
		live := 0
		for _, e := range s.procs {
			if e.done {
				continue
			}
			if tel != nil {
				live++
			}
			if next == nil || e.readyAt < next.readyAt {
				next = e
			}
		}
		if next == nil {
			// All processes finished; flush remaining passive events
			// (output drains, posted writes) before reporting completion.
			// The event clock must not jump to the deadline: the next
			// request reuses this scheduler.
			s.Events.FlushUntil(deadline)
			return s.Now(), nil
		}

		// Every live process waits for an unknown wake: fast-forward by
		// dispatching events back to back (they fire in time order either
		// way) until one of them lands a Wake, without rescanning the
		// process table per event. The event clock still never jumps past
		// the last dispatched event.
		if next.readyAt == MaxTime {
			gen := s.wakeGen
			stepped := false
			for gen == s.wakeGen && s.Events.Step() {
				stepped = true
			}
			if stepped {
				continue
			}
			return s.Now(), fmt.Errorf("%w (e.g. %s)", ErrDeadlock, next.p.Name())
		}
		if next.readyAt >= deadline {
			s.Events.FlushUntil(deadline)
			return deadline, nil
		}

		// Let the event world catch up to the chosen process, then give
		// queued events a chance to wake earlier sleepers.
		s.Events.RunUntil(next.readyAt)
		for _, e := range s.procs {
			if !e.done && e.readyAt < next.readyAt {
				next = e
			}
		}

		if next.readyAt > next.local {
			next.local = next.readyAt // the process was stalled; jump forward
		}
		if s.OnAdvance != nil {
			s.OnAdvance(int64(next.local))
		}
		q := next.quantum
		if q <= 0 {
			q = s.Quantum
		}
		limit := MinT(next.local+q, deadline)
		start := next.local
		local, state, wake := next.p.Run(limit)
		if local < next.local {
			local = next.local
		}
		next.local = local
		if tel != nil {
			tel.Dispatches.Inc()
			tel.RunQueue.Observe(int64(live))
			tel.QuantumUsed.Observe(int64(local - start))
			if next.track == nil {
				next.track = tel.Sink.Track("sched/" + next.p.Name())
			}
			next.track.Span("run", int64(start), int64(local))
		}
		switch state {
		case StateDone:
			next.done = true
		case StateWaiting:
			if wake < local {
				wake = local
			}
			next.readyAt = wake
		default:
			next.readyAt = local
		}
	}
}
