package nvme

import (
	"bytes"
	"testing"

	"assasin/internal/firmware"
	"assasin/internal/kernels"
	"assasin/internal/sim"
	"assasin/internal/ssd"
)

func installData(t *testing.T, s *ssd.SSD, n int, seed byte) ([]int, []byte) {
	t.Helper()
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i)*seed + seed
	}
	lpas, err := s.InstallBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	return lpas, data
}

func TestPureReads(t *testing.T) {
	s := ssd.New(ssd.Options{Arch: ssd.AssasinSb, Cores: 2})
	lpas, data := installData(t, s, 4*s.Opt.Flash.PageSize, 3)
	c := New(s, DefaultConfig())
	reqs := []IORequest{
		{Op: OpRead, LPA: lpas[0], Pages: 2, SubmitAt: 0},
		{Op: OpRead, LPA: lpas[2], Pages: 1, SubmitAt: 10 * sim.Microsecond},
	}
	_, comps, err := c.RunMixed(nil, reqs, sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	ps := s.Opt.Flash.PageSize
	if !bytes.Equal(comps[0].Data, data[:2*ps]) {
		t.Fatal("read 0 data wrong")
	}
	if !bytes.Equal(comps[1].Data, data[2*ps:3*ps]) {
		t.Fatal("read 1 data wrong")
	}
	for _, cm := range comps {
		if cm.Latency <= 0 {
			t.Fatal("no latency recorded")
		}
		// Read latency ≈ tR + transfers: tens of microseconds.
		if cm.Latency > sim.Millisecond {
			t.Fatalf("read latency %v implausible", cm.Latency)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	s := ssd.New(ssd.Options{Arch: ssd.AssasinSb, Cores: 2})
	c := New(s, DefaultConfig())
	ps := s.Opt.Flash.PageSize
	payload := make([]byte, 2*ps)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	start := s.ReserveLPAs(2)
	reqs := []IORequest{
		{Op: OpWrite, LPA: start, Pages: 2, SubmitAt: 0, Data: payload},
		{Op: OpRead, LPA: start, Pages: 2, SubmitAt: 10 * sim.Millisecond},
	}
	_, comps, err := c.RunMixed(nil, reqs, sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(comps[1].Data, payload) {
		t.Fatal("write-then-read returned wrong data")
	}
}

// TestMixedOffloadAndIO is the Section V-A generality check: conventional
// reads are serviced while an offload streams through the ASSASIN cores,
// and both produce correct results.
func TestMixedOffloadAndIO(t *testing.T) {
	s := ssd.New(ssd.Options{Arch: ssd.AssasinSb, Cores: 4})
	lpas, data := installData(t, s, 512<<10, 7)
	// Reserve separate pages for concurrent host reads.
	rdLpas, rdData := installData(t, s, 4*s.Opt.Flash.PageSize, 11)

	tasks, err := s.BuildTasks(ssd.KernelRun{
		Kernel:     kernels.Stat{},
		Inputs:     [][]int{lpas},
		InputBytes: []int64{int64(len(data))},
		RecordSize: 4,
		Cores:      4,
		OutKind:    firmware.OutDiscard,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := New(s, DefaultConfig())
	var reqs []IORequest
	for i := 0; i < 8; i++ {
		reqs = append(reqs, IORequest{
			Op: OpRead, LPA: rdLpas[i%4], Pages: 1,
			SubmitAt: sim.Time(i) * 20 * sim.Microsecond,
		})
	}
	res, comps, err := c.RunMixed(tasks, reqs, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The offload completed and computed the right sums.
	ranges := ssd.PartitionBytes(int64(len(data)), 4, 4)
	for i, r := range ranges {
		if got, want := res.FinalRegs[i][8], (kernels.Stat{}).RefSum(data[r.Start:r.End]); got != want {
			t.Fatalf("core %d sum wrong under mixed IO", i)
		}
	}
	// The reads returned correct data with sane latencies.
	ps := s.Opt.Flash.PageSize
	for i, cm := range comps {
		want := rdData[(i%4)*ps : (i%4+1)*ps]
		if !bytes.Equal(cm.Data, want) {
			t.Fatalf("read %d data wrong under offload", i)
		}
	}
	st := Latencies(comps)
	if st.N != 8 || st.Mean <= 0 || st.Max < st.Mean || st.P99 < st.Mean/2 {
		t.Fatalf("latency stats malformed: %+v", st)
	}
}

// TestOffloadSlowsReadsButBoth complete: contention is visible but bounded.
func TestReadLatencyUnderOffloadGrows(t *testing.T) {
	readLat := func(withOffload bool) sim.Time {
		s := ssd.New(ssd.Options{Arch: ssd.AssasinSb, Cores: 8})
		lpas, data := installData(t, s, 1<<20, 5)
		rdLpas, _ := installData(t, s, 8*s.Opt.Flash.PageSize, 9)
		var tasks []ssd.TaskSpec
		if withOffload {
			var err error
			tasks, err = s.BuildTasks(ssd.KernelRun{
				Kernel:     kernels.Scan{},
				Inputs:     [][]int{lpas},
				InputBytes: []int64{int64(len(data))},
				RecordSize: 16,
				Cores:      8,
				OutKind:    firmware.OutDiscard,
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		c := New(s, DefaultConfig())
		var reqs []IORequest
		for i := 0; i < 16; i++ {
			reqs = append(reqs, IORequest{
				Op: OpRead, LPA: rdLpas[i%8], Pages: 1,
				SubmitAt: 20*sim.Microsecond + sim.Time(i)*10*sim.Microsecond,
			})
		}
		_, comps, err := c.RunMixed(tasks, reqs, 0)
		if err != nil {
			t.Fatal(err)
		}
		return Latencies(comps).Mean
	}
	idle := readLat(false)
	busy := readLat(true)
	if busy < idle {
		t.Fatalf("reads faster under offload: %v vs %v", busy, idle)
	}
	if busy > 100*idle {
		t.Fatalf("reads starved under offload: %v vs %v", busy, idle)
	}
}

func TestInvalidOpcodeRejected(t *testing.T) {
	s := ssd.New(ssd.Options{Arch: ssd.AssasinSb, Cores: 1})
	c := New(s, DefaultConfig())
	_, _, err := c.RunMixed(nil, []IORequest{{Op: OpSComp, Pages: 1}}, sim.Second)
	if err == nil {
		t.Fatal("scomp as conventional IO accepted")
	}
}

func TestLatenciesEmpty(t *testing.T) {
	if st := Latencies(nil); st.N != 0 {
		t.Fatal("empty stats wrong")
	}
}

func TestOpcodeStrings(t *testing.T) {
	if OpRead.String() != "read" || OpSComp.String() != "scomp" {
		t.Fatal("opcode names")
	}
}
