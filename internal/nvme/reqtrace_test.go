package nvme

import (
	"testing"

	"assasin/internal/firmware"
	"assasin/internal/kernels"
	"assasin/internal/sim"
	"assasin/internal/ssd"
	"assasin/internal/telemetry/reqtrace"
)

// TestIORequestTracing checks conventional-command tracing under a mixed
// workload: every read, write, and the scomp offload gets a RequestID at
// submission, and each IO request's critical path decomposes the command
// latency exactly into flash, DRAM, and host-link legs.
func TestIORequestTracing(t *testing.T) {
	tracer := reqtrace.New(nil, reqtrace.Config{TopK: 64})
	s := ssd.New(ssd.Options{Arch: ssd.AssasinSb, Cores: 2, Requests: tracer})
	lpas, data := installData(t, s, 256<<10, 7)
	rdLpas, _ := installData(t, s, 2*s.Opt.Flash.PageSize, 11)
	wrStart := s.ReserveLPAs(1)

	tasks, err := s.BuildTasks(ssd.KernelRun{
		Kernel:     kernels.Stat{},
		Inputs:     [][]int{lpas},
		InputBytes: []int64{int64(len(data))},
		RecordSize: 4,
		Cores:      2,
		OutKind:    firmware.OutDiscard,
	})
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, s.Opt.Flash.PageSize)
	reqs := []IORequest{
		{Op: OpRead, LPA: rdLpas[0], Pages: 2, SubmitAt: 0},
		{Op: OpWrite, LPA: wrStart, Pages: 1, SubmitAt: 5 * sim.Microsecond, Data: payload},
		{Op: OpRead, LPA: rdLpas[1], Pages: 1, SubmitAt: 30 * sim.Microsecond},
	}
	_, comps, err := c2(s).RunMixed(tasks, reqs, 0)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := tracer.Count(), int64(len(reqs)+1); got != want {
		t.Fatalf("traced %d requests, want %d (3 IO + 1 offload)", got, want)
	}
	sum := tracer.Summary("mixed")
	byLat := make(map[int64]*reqtrace.Request)
	var offload *reqtrace.Request
	for i := range sum.Slowest {
		r := &sum.Slowest[i]
		if r.Kind == "offload" {
			offload = r
			continue
		}
		byLat[r.SubmitPs] = r
	}
	if offload == nil || offload.Label != OpSComp.String() {
		t.Fatalf("offload request missing or unlabeled: %+v", offload)
	}
	for i, cm := range comps {
		r := byLat[int64(cm.Req.SubmitAt)]
		if r == nil {
			t.Fatalf("IO %d (submit %v) not retained", i, cm.Req.SubmitAt)
		}
		if want := "io-" + cm.Req.Op.String(); r.Kind != want {
			t.Fatalf("IO %d kind = %q, want %q", i, r.Kind, want)
		}
		if r.LatencyPs != int64(cm.Latency) {
			t.Fatalf("IO %d traced latency %dps, completion says %dps", i, r.LatencyPs, int64(cm.Latency))
		}
		var total int64
		seen := map[string]bool{}
		for _, sg := range r.Critical {
			total += sg.DurPs
			seen[sg.Class] = true
			if sg.Class == reqtrace.ClassUnattributed {
				t.Fatalf("IO %d: unattributed segment %+v", i, r.Critical)
			}
		}
		if total != r.LatencyPs {
			t.Fatalf("IO %d: segments sum to %dps, latency is %dps (%+v)", i, total, r.LatencyPs, r.Critical)
		}
		if !seen[reqtrace.ClassFlashWait] || !seen[reqtrace.ClassHostLink] {
			t.Fatalf("IO %d: critical path missing flash/host legs: %+v", i, r.Critical)
		}
	}
}

// c2 wraps a drive with the default controller config.
func c2(s *ssd.SSD) *Controller { return New(s, DefaultConfig()) }

// TestIOTracingDisabled checks the nil-tracer path still services IO.
func TestIOTracingDisabled(t *testing.T) {
	s := ssd.New(ssd.Options{Arch: ssd.AssasinSb, Cores: 2})
	lpas, _ := installData(t, s, 2*s.Opt.Flash.PageSize, 3)
	_, comps, err := c2(s).RunMixed(nil, []IORequest{{Op: OpRead, LPA: lpas[0], Pages: 1}}, sim.Second)
	if err != nil || len(comps) != 1 || comps[0].Latency <= 0 {
		t.Fatalf("untraced IO broken: %v %+v", err, comps)
	}
}
