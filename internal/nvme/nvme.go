// Package nvme models the SSD's host interface: submission/completion of
// conventional read and write commands plus the paper's new `scomp` command
// (Fig. 9) that carries a computational-storage request — a compute
// function and the List[List[LPA]] naming its input or output streams.
//
// Its role in the reproduction is the generality claim of Section V-A:
// because ASSASIN pools compute engines behind a crossbar and leaves the
// FTL alone, conventional I/O can interleave freely with computational
// storage operations. Controller.RunMixed demonstrates exactly that —
// normal reads and writes are serviced by the same flash array while an
// offload runs on the ASSASIN cores.
package nvme

import (
	"fmt"
	"sort"

	"assasin/internal/sim"
	"assasin/internal/ssd"
	"assasin/internal/telemetry/reqtrace"
)

// Opcode is an NVMe command opcode in this model.
type Opcode int

// Supported commands.
const (
	OpRead Opcode = iota
	OpWrite
	OpSComp // the computational-storage command of Section V-D
)

// String implements fmt.Stringer.
func (o Opcode) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpSComp:
		return "scomp"
	default:
		return fmt.Sprintf("op%d", int(o))
	}
}

// IORequest is one conventional read or write submitted at a point in time.
type IORequest struct {
	Op       Opcode
	LPA      int
	Pages    int
	SubmitAt sim.Time
	// Data is the payload for writes (page-sized chunks; short final page
	// allowed). For reads it is ignored.
	Data []byte
	// Tenant tags the request's trace record for per-tenant SLO accounting.
	Tenant string
	// Discard drops the read payload instead of retaining it in the
	// completion — open-loop load runs issue hundreds of thousands of reads
	// whose bytes nobody inspects.
	Discard bool
}

// IOCompletion reports a finished conventional command.
type IOCompletion struct {
	Req     IORequest
	Done    sim.Time
	Latency sim.Time
	Data    []byte // read payload
	Err     error
}

// Config sets host-link parameters.
type Config struct {
	// LinkBandwidth is the host interface bandwidth (PCIe Gen4 x4 ≈ 8 GB/s).
	LinkBandwidth float64
	// LinkLatency is the per-transfer interface latency.
	LinkLatency sim.Time
}

// DefaultConfig matches the paper's PCIe Gen4 x4 host interface.
func DefaultConfig() Config {
	return Config{LinkBandwidth: 8e9, LinkLatency: 5 * sim.Microsecond}
}

// Controller fronts one SSD with the NVMe command model.
type Controller struct {
	drive *ssd.SSD
	link  *sim.BandwidthServer
	cfg   Config
}

// New wraps an SSD (which must not have run an offload yet).
func New(drive *ssd.SSD, cfg Config) *Controller {
	if cfg.LinkBandwidth <= 0 {
		cfg = DefaultConfig()
	}
	return &Controller{
		drive: drive,
		link:  sim.NewBandwidthServer("pcie", cfg.LinkBandwidth, cfg.LinkLatency),
		cfg:   cfg,
	}
}

// execute services one conventional command whose submission event fired at
// now, filling slot with the completion. It traces the command end to end
// (Begin at submission, per-leg path stages, Complete or Abort).
func (c *Controller) execute(req IORequest, slot *IOCompletion, now sim.Time) {
	ps := c.drive.Opt.Flash.PageSize
	tracer := c.drive.Opt.Requests
	// RequestIDs are assigned at submission; the event fires exactly
	// at SubmitAt, and event order is deterministic, so IDs are too.
	tr := tracer.Begin("io-"+req.Op.String(), "", int64(now))
	tr.SetTenant(req.Tenant)
	switch req.Op {
	case OpRead:
		var done sim.Time
		var payload []byte
		// Chain legs of the slowest page: flash read, DRAM stage,
		// host-link transfer. The chain is contiguous from submission
		// (now -> d -> staged -> out), so the legs sum exactly to the
		// command latency.
		var critFlash, critDRAM, critLink sim.Time
		for p := 0; p < req.Pages; p++ {
			data, d, err := c.drive.FTL.Read(now, req.LPA+p)
			if err != nil {
				slot.Err = err
				tracer.Abort(tr)
				return
			}
			if !req.Discard {
				payload = append(payload, data...)
			}
			// Staged in DRAM, then out over the host link.
			staged := c.drive.DRAM.Access(d, ps, true, "host-read")
			out := c.link.Access(staged, ps)
			if out > done {
				done = out
				critFlash, critDRAM, critLink = d-now, staged-d, out-staged
			}
		}
		if tr != nil {
			tr.AddPathStage(reqtrace.ClassFlashWait, int64(critFlash))
			tr.AddPathStage(reqtrace.ClassDRAMWait, int64(critDRAM))
			tr.AddPathStage(reqtrace.ClassHostLink, int64(critLink))
		}
		slot.Data = payload
		slot.Done = done
		slot.Latency = done - req.SubmitAt
		tracer.Complete(tr, int64(done))
	case OpWrite:
		var done sim.Time
		var critLink, critDRAM, critFlash sim.Time
		for p := 0; p < req.Pages; p++ {
			lo := p * ps
			hi := lo + ps
			var chunk []byte
			if lo < len(req.Data) {
				if hi > len(req.Data) {
					hi = len(req.Data)
				}
				chunk = req.Data[lo:hi]
			}
			in := c.link.Access(now, ps)
			staged := c.drive.DRAM.Access(in, ps, true, "host-write")
			busDone, _, err := c.drive.FTL.Write(staged, req.LPA+p, chunk)
			if err != nil {
				slot.Err = err
				tracer.Abort(tr)
				return
			}
			if busDone > done {
				done = busDone
				critLink, critDRAM, critFlash = in-now, staged-in, busDone-staged
			}
		}
		if tr != nil {
			tr.AddPathStage(reqtrace.ClassHostLink, int64(critLink))
			tr.AddPathStage(reqtrace.ClassDRAMWait, int64(critDRAM))
			tr.AddPathStage(reqtrace.ClassFlashWait, int64(critFlash))
		}
		slot.Done = done
		slot.Latency = done - req.SubmitAt
		tracer.Complete(tr, int64(done))
	default:
		slot.Err = fmt.Errorf("nvme: opcode %v not valid as conventional IO", req.Op)
		tracer.Abort(tr)
	}
}

// Submit schedules one conventional command as a firmware event at
// req.SubmitAt. onDone (if non-nil) is invoked from that event with the
// finished completion — arrival generators use it to account results without
// retaining a completion slice. The drive's event queue must be driven (via
// RunOffload or RunUntil) for the event to fire.
func (c *Controller) Submit(req IORequest, onDone func(IOCompletion)) {
	c.drive.Sched.Events.Schedule(req.SubmitAt, func(now sim.Time) {
		var slot IOCompletion
		slot.Req = req
		c.execute(req, &slot, now)
		if onDone != nil {
			onDone(slot)
		}
	})
}

// scheduleIO queues the conventional commands as firmware events on the
// SSD's scheduler and returns the slice completions will be written to.
func (c *Controller) scheduleIO(reqs []IORequest) []IOCompletion {
	completions := make([]IOCompletion, len(reqs))
	for i := range reqs {
		req := reqs[i]
		completions[i].Req = req
		slot := &completions[i]
		c.drive.Sched.Events.Schedule(req.SubmitAt, func(now sim.Time) {
			c.execute(req, slot, now)
		})
	}
	return completions
}

// RunMixed executes an scomp offload while servicing conventional I/O on
// the same drive. It returns the offload result and the I/O completions.
// Either side may be empty: no tasks degenerates to pure I/O, no reqs to a
// plain offload.
func (c *Controller) RunMixed(tasks []ssd.TaskSpec, reqs []IORequest, deadline sim.Time) (*ssd.Result, []IOCompletion, error) {
	completions := c.scheduleIO(reqs)
	var res *ssd.Result
	var err error
	if len(tasks) > 0 {
		c.drive.SetRequestLabel(OpSComp.String())
		res, err = c.drive.RunOffload(tasks, deadline)
	} else {
		// Pure I/O: drive the event queue directly.
		if deadline <= 0 {
			deadline = 100 * sim.Second
		}
		c.drive.Sched.Events.RunUntil(deadline)
	}
	if err != nil {
		return nil, nil, err
	}
	for i := range completions {
		if completions[i].Err != nil {
			return nil, nil, fmt.Errorf("nvme: %v lpa %d: %w", completions[i].Req.Op, completions[i].Req.LPA, completions[i].Err)
		}
		if completions[i].Done == 0 && completions[i].Req.Pages > 0 {
			return nil, nil, fmt.Errorf("nvme: %v lpa %d never completed", completions[i].Req.Op, completions[i].Req.LPA)
		}
	}
	return res, completions, nil
}

// LatencyStats summarizes completion latencies.
type LatencyStats struct {
	N    int
	Mean sim.Time
	P99  sim.Time
	Max  sim.Time
}

// Latencies computes summary statistics over completions.
func Latencies(cs []IOCompletion) LatencyStats {
	if len(cs) == 0 {
		return LatencyStats{}
	}
	lats := make([]sim.Time, 0, len(cs))
	var sum sim.Time
	for _, c := range cs {
		lats = append(lats, c.Latency)
		sum += c.Latency
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	p99 := lats[(len(lats)*99)/100]
	return LatencyStats{
		N:    len(lats),
		Mean: sum / sim.Time(len(lats)),
		P99:  p99,
		Max:  lats[len(lats)-1],
	}
}
