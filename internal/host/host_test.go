package host

import (
	"testing"

	"assasin/internal/sim"
	"assasin/internal/tpch"
)

func TestTransferTime(t *testing.T) {
	m := New(DefaultConfig())
	if got := m.TransferTime(8e9); got != sim.Second {
		t.Fatalf("8GB at 8GB/s = %v, want 1s", got)
	}
	if m.TransferTime(0) != 0 || m.TransferTime(-5) != 0 {
		t.Error("degenerate transfers not zero")
	}
}

func TestComputeTimeSplitsParse(t *testing.T) {
	m := New(Config{PCIeBandwidth: 8e9, WorkRate: 1e9, ParseRate: 0.5e9})
	w := tpch.WorkMeter{ParseUnits: 1e9, JoinUnits: 1e9}
	// 1e9 parse units at 0.5e9/s = 2s; 1e9 join units at 1e9/s = 1s.
	if got := m.ComputeTime(w); got != 3*sim.Second {
		t.Fatalf("compute time = %v, want 3s", got)
	}
}

func TestOffloadedDropsParseWork(t *testing.T) {
	m := New(DefaultConfig())
	w := tpch.WorkMeter{ParseUnits: 1e12, AggUnits: 1e6}
	off := m.Offloaded(sim.Millisecond, 1000, w)
	// The huge parse term must be gone.
	if off.Host > sim.Second {
		t.Fatalf("offloaded host time %v still includes parse", off.Host)
	}
	if off.SSD != sim.Millisecond {
		t.Error("ssd time not carried")
	}
}

func TestQueryLatencyStacks(t *testing.T) {
	l := QueryLatency{SSD: 1 * sim.Millisecond, Transfer: 2 * sim.Millisecond, Host: 3 * sim.Millisecond}
	if l.Total() != 6*sim.Millisecond {
		t.Fatal("Total is not the stacked sum")
	}
}

func TestOffloadBeatsPureCPUOnScanHeavyQuery(t *testing.T) {
	m := New(DefaultConfig())
	tableBytes := int64(100 << 20)
	work := tpch.WorkMeter{ParseUnits: float64(tableBytes), AggUnits: 1e6}
	pure := m.PureCPU(tableBytes, work)
	// The SSD parses at a few GB/s aggregate; say 50 ms for 100 MB.
	off := m.Offloaded(50*sim.Millisecond, 1<<20, work)
	if off.Total() >= pure.Total() {
		t.Fatalf("offload %v not faster than pure %v on a scan-heavy query", off.Total(), pure.Total())
	}
}

func TestZeroConfigFallsBack(t *testing.T) {
	m := New(Config{})
	if m.TransferTime(8e9) != sim.Second {
		t.Error("zero config did not adopt defaults")
	}
}
