// Package host models the machine driving the computational SSD: a
// four-core eight-thread CPU with 32 GB of memory behind a PCIe Gen4 x4
// link (the paper's evaluation host). It converts the relational engine's
// abstract work units into time and stacks query stages into end-to-end
// latencies, as Fig. 15 does.
package host

import (
	"assasin/internal/sim"
	"assasin/internal/tpch"
)

// Config sets the host model.
type Config struct {
	// PCIeBandwidth is the storage-interface bandwidth in bytes/second
	// (PCIe Gen4 x4 ≈ 8 GB/s).
	PCIeBandwidth float64
	// WorkRate converts engine work units into time: aggregate units/second
	// across the 4C8T host. One unit ≈ one simple per-row operation on one
	// core; 8 threads at ~2 GHz effective gives a few billion units/s.
	WorkRate float64
	// ParseRate is the host's CSV parsing throughput in work units/second.
	// Parsing is byte-at-a-time and branch-heavy, so its per-unit cost is
	// the same scale but the units (1/byte) make it the dominant term for
	// scans — the work the PSF offload removes.
	ParseRate float64
}

// DefaultConfig matches the evaluation host running a SparkSQL-class
// analytics stack: per-byte scan costs far above a raw C parser (JVM row
// materialization, codegen'd but object-heavy operators). The rates are
// calibrated so the Baseline computational SSD yields the paper's ≈1.9×
// end-to-end advantage over the pure-host (disaggregated storage) path.
func DefaultConfig() Config {
	return Config{
		PCIeBandwidth: 8e9,
		WorkRate:      2e9,
		ParseRate:     0.3e9,
	}
}

// Model is a host instance.
type Model struct {
	cfg Config
}

// New returns a host model.
func New(cfg Config) *Model {
	if cfg.PCIeBandwidth <= 0 {
		cfg = DefaultConfig()
	}
	return &Model{cfg: cfg}
}

// TransferTime returns the PCIe time for n bytes.
func (m *Model) TransferTime(n int64) sim.Time {
	if n <= 0 {
		return 0
	}
	return sim.Time(float64(n) / m.cfg.PCIeBandwidth * float64(sim.Second))
}

// ComputeTime converts a work meter into host CPU time. Parse units use the
// parse rate; everything else the general rate.
func (m *Model) ComputeTime(w tpch.WorkMeter) sim.Time {
	parse := w.ParseUnits / m.cfg.ParseRate
	rest := (w.Total() - w.ParseUnits) / m.cfg.WorkRate
	return sim.Time((parse + rest) * float64(sim.Second))
}

// QueryLatency is one query's end-to-end decomposition.
type QueryLatency struct {
	// SSD is in-storage time (offloaded scan), zero for PureCPU.
	SSD sim.Time
	// Transfer is the storage-interface time for the data crossing it.
	Transfer sim.Time
	// Host is host CPU time (parse if not offloaded, plus the plan body).
	Host sim.Time
}

// Total stacks the stages, as the paper does ("stacks the host compute
// latency and computational SSD latency together").
func (l QueryLatency) Total() sim.Time { return l.SSD + l.Transfer + l.Host }

// PureCPU composes the no-offload path: the whole table crosses PCIe and
// the host parses it before running the plan body.
func (m *Model) PureCPU(tableBytes int64, work tpch.WorkMeter) QueryLatency {
	return QueryLatency{
		Transfer: m.TransferTime(tableBytes),
		Host:     m.ComputeTime(work),
	}
}

// Offloaded composes the computational-SSD path: the SSD runs PSF in
// ssdTime, only resultBytes cross PCIe, and the host runs the plan body
// with no parse work.
func (m *Model) Offloaded(ssdTime sim.Time, resultBytes int64, bodyWork tpch.WorkMeter) QueryLatency {
	bodyWork.ParseUnits = 0
	return QueryLatency{
		SSD:      ssdTime,
		Transfer: m.TransferTime(resultBytes),
		Host:     m.ComputeTime(bodyWork),
	}
}
