package asm

import (
	"fmt"
	"strconv"
	"strings"

	"assasin/internal/isa"
)

// Parse assembles textual assembly into a Program. The accepted syntax is
// the disassembler's output plus labels and comments, so
// Parse(Disassemble(p)) round-trips:
//
//	start:                  ; labels end with ':'
//	  li   a0, 100          ; pseudo-instructions: li, mv, nop, j, ret
//	  lw   a1, 8(sp)
//	  add  s0, s0, a1
//	  bne  a0, zero, start  ; branch targets may be labels or ±offsets
//	  streamload a2, s0q, w4  — stream slots are written s<N>q to avoid
//	                            clashing with register names; plain s<N>
//	                            is also accepted where a slot is expected
//	  halt                  ; '#' and ';' start comments
func Parse(src string) (*Program, error) {
	b := New()
	labels := map[string]Label{}
	label := func(name string) Label {
		l, ok := labels[name]
		if !ok {
			l = b.NewLabel()
			labels[name] = l
		}
		return l
	}
	lineNo := 0
	var firstErr error
	fail := func(format string, args ...any) {
		if firstErr == nil {
			firstErr = fmt.Errorf("asm: line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}
	}

	for _, raw := range strings.Split(src, "\n") {
		lineNo++
		line := raw
		if i := strings.IndexAny(line, "#;"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Leading "NN:" from disassembler listings is ignored; trailing
		// "name:" defines a label.
		for {
			i := strings.Index(line, ":")
			if i < 0 {
				break
			}
			head := strings.TrimSpace(line[:i])
			if head == "" {
				fail("empty label")
				break
			}
			if _, err := strconv.Atoi(head); err == nil {
				// instruction index prefix from a listing; drop it
			} else {
				b.Bind(label(head))
			}
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(strings.ReplaceAll(line, ",", " "))
		op := fields[0]
		args := fields[1:]
		if err := emitOne(b, label, op, args); err != nil {
			fail("%v", err)
		}
		if firstErr != nil {
			return nil, firstErr
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return b.Build()
}

// regNum resolves an ABI or xN register name.
func regNum(s string) (Reg, error) {
	for i := 0; i < isa.NumRegs; i++ {
		if isa.RegName(uint8(i)) == s {
			return Reg(i), nil
		}
	}
	if strings.HasPrefix(s, "x") {
		if n, err := strconv.Atoi(s[1:]); err == nil && n >= 0 && n < isa.NumRegs {
			return Reg(n), nil
		}
	}
	return 0, fmt.Errorf("unknown register %q", s)
}

// slotNum resolves a stream slot written s<N> or s<N>q.
func slotNum(s string) (uint8, error) {
	s = strings.TrimSuffix(s, "q")
	if !strings.HasPrefix(s, "s") {
		return 0, fmt.Errorf("bad stream slot %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n > 15 {
		return 0, fmt.Errorf("bad stream slot %q", s)
	}
	return uint8(n), nil
}

func immVal(s string) (int32, error) {
	v, err := strconv.ParseInt(strings.TrimPrefix(s, "+"), 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	return int32(v), nil
}

// widthVal resolves w1/w2/w4.
func widthVal(s string) (uint8, error) {
	switch s {
	case "w1":
		return 1, nil
	case "w2":
		return 2, nil
	case "w4":
		return 4, nil
	}
	return 0, fmt.Errorf("bad width %q", s)
}

// memOperand splits "imm(reg)".
func memOperand(s string) (int32, Reg, error) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	imm := int32(0)
	if open > 0 {
		v, err := immVal(s[:open])
		if err != nil {
			return 0, 0, err
		}
		imm = v
	}
	r, err := regNum(s[open+1 : len(s)-1])
	return imm, r, err
}

func emitOne(b *Builder, label func(string) Label, op string, args []string) error {
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s wants %d operands, got %d", op, n, len(args))
		}
		return nil
	}
	rrr := func(f func(rd, rs1, rs2 Reg)) error {
		if err := need(3); err != nil {
			return err
		}
		rd, e1 := regNum(args[0])
		r1, e2 := regNum(args[1])
		r2, e3 := regNum(args[2])
		if e1 != nil || e2 != nil || e3 != nil {
			return firstOf(e1, e2, e3)
		}
		f(rd, r1, r2)
		return nil
	}
	rri := func(f func(rd, rs1 Reg, imm int32)) error {
		if err := need(3); err != nil {
			return err
		}
		rd, e1 := regNum(args[0])
		r1, e2 := regNum(args[1])
		imm, e3 := immVal(args[2])
		if e1 != nil || e2 != nil || e3 != nil {
			return firstOf(e1, e2, e3)
		}
		f(rd, r1, imm)
		return nil
	}
	load := func(f func(rd, rs1 Reg, imm int32)) error {
		if err := need(2); err != nil {
			return err
		}
		rd, e1 := regNum(args[0])
		imm, r1, e2 := memOperand(args[1])
		if e1 != nil || e2 != nil {
			return firstOf(e1, e2)
		}
		f(rd, r1, imm)
		return nil
	}
	branch := func(f func(rs1, rs2 Reg, l Label)) error {
		if err := need(3); err != nil {
			return err
		}
		r1, e1 := regNum(args[0])
		r2, e2 := regNum(args[1])
		if e1 != nil || e2 != nil {
			return firstOf(e1, e2)
		}
		f(r1, r2, label(args[2]))
		return nil
	}

	switch op {
	case "add":
		return rrr(b.Add)
	case "sub":
		return rrr(b.Sub)
	case "and":
		return rrr(b.And)
	case "or":
		return rrr(b.Or)
	case "xor":
		return rrr(b.Xor)
	case "sll":
		return rrr(b.Sll)
	case "srl":
		return rrr(b.Srl)
	case "sra":
		return rrr(b.Sra)
	case "slt":
		return rrr(b.Slt)
	case "sltu":
		return rrr(b.Sltu)
	case "mul":
		return rrr(b.Mul)
	case "mulh":
		return rrr(b.Mulh)
	case "mulhu":
		return rrr(b.Mulhu)
	case "div":
		return rrr(b.Div)
	case "divu":
		return rrr(b.Divu)
	case "rem":
		return rrr(b.Rem)
	case "remu":
		return rrr(b.Remu)
	case "addi":
		return rri(b.Addi)
	case "andi":
		return rri(b.Andi)
	case "ori":
		return rri(b.Ori)
	case "xori":
		return rri(b.Xori)
	case "slli":
		return rri(b.Slli)
	case "srli":
		return rri(b.Srli)
	case "srai":
		return rri(b.Srai)
	case "slti":
		return rri(b.Slti)
	case "sltiu":
		return rri(b.Sltiu)
	case "lui":
		if err := need(2); err != nil {
			return err
		}
		rd, e1 := regNum(args[0])
		imm, e2 := immVal(args[1])
		if e1 != nil || e2 != nil {
			return firstOf(e1, e2)
		}
		b.Lui(rd, imm)
		return nil
	case "li":
		if err := need(2); err != nil {
			return err
		}
		rd, e1 := regNum(args[0])
		imm, e2 := immVal(args[1])
		if e1 != nil || e2 != nil {
			return firstOf(e1, e2)
		}
		b.Li(rd, imm)
		return nil
	case "mv":
		if err := need(2); err != nil {
			return err
		}
		rd, e1 := regNum(args[0])
		rs, e2 := regNum(args[1])
		if e1 != nil || e2 != nil {
			return firstOf(e1, e2)
		}
		b.Mv(rd, rs)
		return nil
	case "nop":
		b.Nop()
		return need(0)
	case "lb":
		return load(b.Lb)
	case "lbu":
		return load(b.Lbu)
	case "lh":
		return load(b.Lh)
	case "lhu":
		return load(b.Lhu)
	case "lw":
		return load(b.Lw)
	case "sb":
		return load(b.Sb)
	case "sh":
		return load(b.Sh)
	case "sw":
		return load(b.Sw)
	case "beq":
		return branch(b.Beq)
	case "bne":
		return branch(b.Bne)
	case "blt":
		return branch(b.Blt)
	case "bge":
		return branch(b.Bge)
	case "bltu":
		return branch(b.Bltu)
	case "bgeu":
		return branch(b.Bgeu)
	case "j":
		if err := need(1); err != nil {
			return err
		}
		b.J(label(args[0]))
		return nil
	case "jal":
		if err := need(2); err != nil {
			return err
		}
		rd, err := regNum(args[0])
		if err != nil {
			return err
		}
		b.Jal(rd, label(args[1]))
		return nil
	case "jalr":
		return load(b.Jalr)
	case "ret":
		b.Ret()
		return need(0)
	case "halt":
		b.Halt()
		return need(0)
	case "streamload":
		if err := need(3); err != nil {
			return err
		}
		rd, e1 := regNum(args[0])
		slot, e2 := slotNum(args[1])
		w, e3 := widthVal(args[2])
		if err := firstOf(e1, e2, e3); err != nil {
			return err
		}
		b.StreamLoad(rd, slot, w)
		return nil
	case "streampeek":
		if err := need(4); err != nil {
			return err
		}
		rd, e1 := regNum(args[0])
		slot, e2 := slotNum(args[1])
		w, e3 := widthVal(args[2])
		off, e4 := immVal(args[3])
		if err := firstOf(e1, e2, e3, e4); err != nil {
			return err
		}
		b.StreamPeek(rd, slot, w, off)
		return nil
	case "streamadv":
		if err := need(2); err != nil {
			return err
		}
		slot, e1 := slotNum(args[0])
		n, e2 := immVal(args[1])
		if err := firstOf(e1, e2); err != nil {
			return err
		}
		b.StreamAdv(slot, n)
		return nil
	case "streamstore":
		if err := need(3); err != nil {
			return err
		}
		slot, e1 := slotNum(args[0])
		w, e2 := widthVal(args[1])
		rs, e3 := regNum(args[2])
		if err := firstOf(e1, e2, e3); err != nil {
			return err
		}
		b.StreamStore(slot, w, rs)
		return nil
	case "streamend":
		if err := need(2); err != nil {
			return err
		}
		rd, e1 := regNum(args[0])
		slot, e2 := slotNum(args[1])
		if err := firstOf(e1, e2); err != nil {
			return err
		}
		b.StreamEnd(rd, slot)
		return nil
	default:
		return fmt.Errorf("unknown mnemonic %q", op)
	}
}

func firstOf(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
