package asm

import (
	"strings"
	"testing"

	"assasin/internal/isa"
)

func TestParseBasicProgram(t *testing.T) {
	p, err := Parse(`
		# sum the numbers 1..10
		li   a0, 0
		li   t0, 1
		li   t1, 11
	loop:
		add  a0, a0, t0
		addi t0, t0, 1
		blt  t0, t1, loop
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[len(p.Insts)-1].Op != isa.OpHalt {
		t.Fatal("missing halt")
	}
	// The backward branch resolves to the add.
	var blt isa.Inst
	for _, in := range p.Insts {
		if in.Op == isa.OpBlt {
			blt = in
		}
	}
	if blt.Imm != -2 {
		t.Fatalf("blt offset = %d, want -2", blt.Imm)
	}
}

func TestParseMemoryAndStreamOps(t *testing.T) {
	p, err := Parse(`
		lw a0, 8(sp)
		sw a0, -4(s0)
		streamload a1, s0q, w4
		streampeek a2, s1q, w2, 16
		streamadv  s0q, 4096
		streamstore s2q, w1, a1
		streamend  t0, s0q
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[0].Op != isa.OpLw || p.Insts[0].Imm != 8 {
		t.Fatalf("lw parsed as %+v", p.Insts[0])
	}
	if p.Insts[2].Op != isa.OpStreamLoad || p.Insts[2].Width != 4 {
		t.Fatalf("streamload parsed as %+v", p.Insts[2])
	}
	if p.Insts[4].Op != isa.OpStreamAdv || int(p.Insts[4].Imm)*int(p.Insts[4].Width) != 4096 {
		t.Fatalf("streamadv parsed as %+v", p.Insts[4])
	}
	if p.Insts[5].Stream != 2 {
		t.Fatalf("streamstore slot = %d", p.Insts[5].Stream)
	}
}

func TestParseForwardLabel(t *testing.T) {
	p, err := Parse(`
		beq a0, zero, done
		addi a1, a1, 1
	done:
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[0].Imm != 2 {
		t.Fatalf("forward branch = %d, want 2", p.Insts[0].Imm)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"frobnicate a0, a1",
		"add a0, a1",
		"lw a0, nope",
		"streamload a0, s99q, w4",
		"streamload a0, s0q, w3",
		"li a0, zork",
		"beq a0, zero, missing", // unbound label
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

// TestDisassembleParseRoundTrip: the disassembler's output re-assembles to
// the same instruction sequence, for programs without branches (branch
// disassembly prints numeric offsets, covered separately below).
func TestDisassembleParseRoundTrip(t *testing.T) {
	b := New()
	b.Li(A0, 12345)
	b.Add(S0, S0, A0)
	b.Lw(A1, SP, 16)
	b.Sw(A1, S0, -8)
	b.Mul(T0, A1, A0)
	b.StreamLoad(A2, 3, 4)
	b.StreamStore(1, 2, A2)
	b.StreamEnd(T1, 3)
	b.Halt()
	p1 := b.MustBuild()

	// Streams print as sN; rewrite to the parser's sNq form, since s0/s1
	// clash with register names in text.
	text := p1.Disassemble()
	text = fixStreamSlots(text)
	p2, err := Parse(text)
	if err != nil {
		t.Fatalf("%v in:\n%s", err, text)
	}
	if len(p1.Insts) != len(p2.Insts) {
		t.Fatalf("lengths differ: %d vs %d", len(p1.Insts), len(p2.Insts))
	}
	for i := range p1.Insts {
		if p1.Insts[i] != p2.Insts[i] {
			t.Fatalf("inst %d: %v vs %v", i, p1.Insts[i], p2.Insts[i])
		}
	}
}

// fixStreamSlots rewrites ", s<N>," stream-slot operands of stream ops to
// the parser's unambiguous s<N>q form.
func fixStreamSlots(text string) string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, "stream") {
			line = strings.ReplaceAll(line, " s0,", " s0q,")
			line = strings.ReplaceAll(line, " s1,", " s1q,")
			line = strings.ReplaceAll(line, " s2,", " s2q,")
			line = strings.ReplaceAll(line, " s3,", " s3q,")
			if strings.HasSuffix(line, " s3") {
				line += "q"
			}
		}
		out = append(out, line)
	}
	return strings.Join(out, "\n")
}

func TestParsedProgramExecutes(t *testing.T) {
	// End-to-end: text → program → (exercised via Encode, execution is
	// covered by the cpu package).
	p, err := Parse(`
	loop:
		streamload a0, s0q, w1
		streamstore s0q, w1, a0
		j loop
	`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Encode(); err != nil {
		t.Fatal(err)
	}
	if len(p.Insts) != 3 {
		t.Fatalf("program = %d insts", len(p.Insts))
	}
}
