package asm

import (
	"testing"

	"assasin/internal/isa"
)

func TestBuildSimpleLoop(t *testing.T) {
	b := New()
	b.Li(A0, 0)
	b.Li(A1, 10)
	loop := b.Here()
	b.Addi(A0, A0, 1)
	b.Blt(A0, A1, loop)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Insts) != 5 {
		t.Fatalf("program length %d, want 5", len(p.Insts))
	}
	// The blt at index 3 targets index 2: offset relative to next pc = -1.
	if p.Insts[3].Op != isa.OpBlt || p.Insts[3].Imm != -1 {
		t.Errorf("branch fixup wrong: %+v", p.Insts[3])
	}
}

func TestForwardBranch(t *testing.T) {
	b := New()
	done := b.NewLabel()
	b.Beq(A0, Zero, done)
	b.Addi(A1, A1, 1)
	b.Addi(A1, A1, 2)
	b.Bind(done)
	b.Halt()
	p := b.MustBuild()
	if p.Insts[0].Imm != 3 {
		t.Errorf("forward branch offset = %d, want 3", p.Insts[0].Imm)
	}
}

func TestUnboundLabelFails(t *testing.T) {
	b := New()
	l := b.NewLabel()
	b.J(l)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build with unbound label succeeded")
	}
}

func TestDoubleBindFails(t *testing.T) {
	b := New()
	l := b.NewLabel()
	b.Bind(l)
	b.Bind(l)
	if _, err := b.Build(); err == nil {
		t.Fatal("double bind not reported")
	}
}

func TestLiSmallAndLarge(t *testing.T) {
	cases := []int32{0, 1, -1, 42, -2048, 2047, 16383, -16384, 65536, -65536, 0x12345678, -0x12345678, 1 << 30, -(1 << 31)}
	for _, v := range cases {
		b := New()
		b.Li(A0, v)
		b.Halt()
		p := b.MustBuild()
		if got := evalLi(t, p); got != uint32(v) {
			t.Errorf("Li(%d) materialized %#x, want %#x", v, got, uint32(v))
		}
		// Everything must encode.
		if _, err := p.Encode(); err != nil {
			t.Errorf("Li(%d) does not encode: %v", v, err)
		}
	}
}

// evalLi interprets the tiny lui/addi sequences Li emits.
func evalLi(t *testing.T, p *Program) uint32 {
	t.Helper()
	var regs [32]uint32
	for _, in := range p.Insts {
		switch in.Op {
		case isa.OpLui:
			regs[in.Rd] = uint32(in.Imm) << 12
		case isa.OpAddi:
			regs[in.Rd] = regs[in.Rs1] + uint32(in.Imm)
		case isa.OpHalt:
			return regs[A0]
		default:
			t.Fatalf("unexpected op %v in Li expansion", in.Op)
		}
	}
	return regs[A0]
}

func TestStreamOps(t *testing.T) {
	b := New()
	b.StreamLoad(A0, 0, 4)
	b.StreamPeek(A1, 1, 2, 8)
	b.StreamAdv(1, 16)
	b.StreamStore(0, 1, A0)
	b.StreamEnd(T0, 0)
	b.StreamCsrR(T1, 2, isa.CsrHead)
	b.Halt()
	p := b.MustBuild()
	if p.Insts[0].Width != 4 || p.Insts[0].Stream != 0 {
		t.Errorf("StreamLoad fields: %+v", p.Insts[0])
	}
	if p.Insts[3].Rs2 != A0 {
		t.Errorf("StreamStore source: %+v", p.Insts[3])
	}
	if _, err := p.Encode(); err != nil {
		t.Errorf("stream program does not encode: %v", err)
	}
}

func TestInvalidStreamWidthFails(t *testing.T) {
	b := New()
	b.StreamLoad(A0, 0, 3)
	if _, err := b.Build(); err == nil {
		t.Fatal("width 3 accepted")
	}
}

func TestDisassembleListsAll(t *testing.T) {
	b := New()
	b.Add(A0, A1, A2)
	b.Halt()
	p := b.MustBuild()
	// Golden: the pc column is part of the listing contract (the kprof
	// symbolizer shares it via Line).
	want := "   0: add a0, a1, a2\n   1: halt\n"
	if d := p.Disassemble(); d != want {
		t.Errorf("disassembly = %q, want %q", d, want)
	}
	if got := p.Line(1); got != "   1: halt" {
		t.Errorf("Line(1) = %q", got)
	}
}

func TestPseudoOps(t *testing.T) {
	b := New()
	b.Mv(A0, A1)
	b.Nop()
	b.Ret()
	p := b.MustBuild()
	if p.Insts[0].Op != isa.OpAddi || p.Insts[0].Rs1 != A1 {
		t.Errorf("Mv lowering: %+v", p.Insts[0])
	}
	if p.Insts[1].Rd != Zero {
		t.Errorf("Nop lowering: %+v", p.Insts[1])
	}
	if p.Insts[2].Op != isa.OpJalr || p.Insts[2].Rs1 != RA {
		t.Errorf("Ret lowering: %+v", p.Insts[2])
	}
}

func TestProgramEncodeError(t *testing.T) {
	p := &Program{Insts: []isa.Inst{{Op: isa.OpAddi, Imm: 1 << 20}}}
	if _, err := p.Encode(); err == nil {
		t.Fatal("oversized immediate encoded")
	}
}
