// Package obs makes a running simulation observable from outside its
// goroutine: a goroutine-safe Collector accumulates per-run attribution
// reports and metrics snapshots published at run boundaries, and an HTTP
// handler serves them live — Prometheus text-format /metrics, pprof,
// health/readiness probes, and the attribution reports — while an
// experiment fan-out is still executing.
//
// The telemetry.Sink itself stays single-goroutine (the simulator's
// zero-cost contract); the bridge to concurrent scrapers is publication:
// the simulation goroutine hands the Collector immutable snapshots at run
// boundaries, and scrapers only ever read the latest published snapshot.
// Scraping therefore cannot perturb simulation results, and nothing is
// rendered (no Prometheus text, no JSON) unless an endpoint is actually
// hit.
package obs

import (
	"sync"

	"assasin/internal/telemetry"
	"assasin/internal/telemetry/analyze"
	"assasin/internal/telemetry/kprof"
	"assasin/internal/telemetry/reqtrace"
	"assasin/internal/telemetry/slo"
	"assasin/internal/telemetry/timeline"
	"assasin/internal/telemetry/window"
)

// Collector accumulates completed-run reports and the latest metrics
// snapshot. All methods are goroutine-safe, and a nil *Collector is a
// valid disabled collector: every method is a cheap no-op, so call sites
// can wire it unconditionally.
type Collector struct {
	mu        sync.Mutex
	ready     bool
	snap      telemetry.MetricsSnapshot
	reports   []*analyze.RunReport
	byID      map[string]*analyze.RunReport
	timelines map[string]*timeline.Timeline
	requests  map[string]*reqtrace.Summary
	profiles  map[string]*kprof.Profile
	buildInfo []promLabel
	sloStatus *slo.Status
	liveSnap  *window.Snapshot
}

// NewCollector returns an empty enabled collector.
func NewCollector() *Collector {
	return &Collector{
		byID:      make(map[string]*analyze.RunReport),
		timelines: make(map[string]*timeline.Timeline),
		requests:  make(map[string]*reqtrace.Summary),
		profiles:  make(map[string]*kprof.Profile),
	}
}

// ObserveRun attributes one completed run and stores the report under a
// sequential id ("run-0001", ...). When the run carries a metrics
// snapshot, counter deltas are computed against the previously published
// snapshot and the new snapshot becomes the latest for /metrics. Returns
// the stored report (nil on a nil collector).
func (c *Collector) ObserveRun(run analyze.Run) *analyze.RunReport {
	return c.ObserveRunTimeline(run, nil)
}

// ObserveRunTimeline is ObserveRun for runs that also sampled a timeline:
// the timeline is stored under the run's id (served at
// /runs/{id}/timeline, compared at /runs/{id}/compare/{other}) and its
// phase segmentation is attached to the report before publication, keeping
// stored reports immutable.
func (c *Collector) ObserveRunTimeline(run analyze.Run, tl *timeline.Timeline) *analyze.RunReport {
	return c.ObserveRunData(run, tl, nil)
}

// ObserveRunData is ObserveRunTimeline for runs that also traced requests:
// the request summary is stored under the run's id and served at
// /runs/{id}/requests and /runs/{id}/requests/{rid}.
func (c *Collector) ObserveRunData(run analyze.Run, tl *timeline.Timeline, reqs *reqtrace.Summary) *analyze.RunReport {
	return c.ObserveRunProfile(run, tl, reqs, nil)
}

// ObserveRunProfile is ObserveRunData for runs that also profiled the guest
// kernels: the kprof profile is stored under the run's id and served at
// /runs/{id}/profile (JSON) and /runs/{id}/profile.pb.gz (pprof).
func (c *Collector) ObserveRunProfile(run analyze.Run, tl *timeline.Timeline, reqs *reqtrace.Summary, prof *kprof.Profile) *analyze.RunReport {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if run.Metrics != nil && run.Prev == nil {
		prev := c.snap
		run.Prev = &prev
	}
	rep := analyze.Attribute(run)
	rep.ID = runID(len(c.reports) + 1)
	analyze.AttachPhases(rep, tl)
	c.reports = append(c.reports, rep)
	c.byID[rep.ID] = rep
	if tl != nil {
		c.timelines[rep.ID] = tl
	}
	if reqs != nil {
		c.requests[rep.ID] = reqs
	}
	if prof != nil {
		c.profiles[rep.ID] = prof
	}
	if run.Metrics != nil {
		c.snap = *run.Metrics
	}
	return rep
}

// Requests returns the request-trace summary stored under a run id, or nil.
func (c *Collector) Requests(id string) *reqtrace.Summary {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.requests[id]
}

// Profile returns the guest-kernel profile stored under a run id, or nil.
func (c *Collector) Profile(id string) *kprof.Profile {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.profiles[id]
}

// Timeline returns the timeline stored under a run id, or nil.
func (c *Collector) Timeline(id string) *timeline.Timeline {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.timelines[id]
}

// runID formats the sequential run id.
func runID(n int) string {
	const digits = "0123456789"
	buf := []byte("run-0000")
	for i := len(buf) - 1; n > 0 && i >= len("run-"); i-- {
		buf[i] = digits[n%10]
		n /= 10
	}
	return string(buf)
}

// PublishMetrics replaces the latest metrics snapshot. The snapshot's maps
// must not be mutated after publishing (telemetry.Sink.Metrics builds
// fresh maps per call, satisfying this by construction).
func (c *Collector) PublishMetrics(snap telemetry.MetricsSnapshot) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.snap = snap
	c.mu.Unlock()
}

// Snapshot returns the latest published metrics snapshot. The returned
// maps are shared with the publisher but immutable once published.
func (c *Collector) Snapshot() telemetry.MetricsSnapshot {
	if c == nil {
		return telemetry.MetricsSnapshot{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.snap
}

// PublishSLO replaces the latest SLO status (served at /slo and exported
// as assasin_slo_* series). The status must be immutable once published;
// slo.Engine.Status builds a fresh value per call, satisfying this by
// construction. The simulation goroutine publishes at burn-evaluation
// boundaries, so scrapers watch objectives and alerts move in sim time.
func (c *Collector) PublishSLO(st *slo.Status) {
	if c == nil || st == nil {
		return
	}
	c.mu.Lock()
	c.sloStatus = st
	c.mu.Unlock()
}

// SLOStatus returns the latest published SLO status, or nil when no load
// run has published one yet.
func (c *Collector) SLOStatus() *slo.Status {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sloStatus
}

// PublishLive replaces the latest live window snapshot (served at /live):
// rolling per-tenant request rates and latency percentiles over the
// sliding window. Same immutability contract as PublishSLO.
func (c *Collector) PublishLive(snap *window.Snapshot) {
	if c == nil || snap == nil {
		return
	}
	c.mu.Lock()
	c.liveSnap = snap
	c.mu.Unlock()
}

// LiveSnapshot returns the latest published live window snapshot, or nil.
func (c *Collector) LiveSnapshot() *window.Snapshot {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.liveSnap
}

// Reports returns the completed-run reports in completion order. The slice
// is a copy; the reports themselves are immutable once stored.
func (c *Collector) Reports() []*analyze.RunReport {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*analyze.RunReport, len(c.reports))
	copy(out, c.reports)
	return out
}

// Report returns the report stored under id, or nil.
func (c *Collector) Report(id string) *analyze.RunReport {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.byID[id]
}

// RunsCompleted returns how many runs have been observed.
func (c *Collector) RunsCompleted() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.reports)
}

// MarkReady flips the /readyz probe to ready (call once the experiment
// loop is about to start).
func (c *Collector) MarkReady() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.ready = true
	c.mu.Unlock()
}

// Ready reports whether MarkReady was called.
func (c *Collector) Ready() bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ready
}
