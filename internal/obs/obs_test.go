package obs_test

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"assasin/internal/experiments"
	"assasin/internal/firmware"
	"assasin/internal/kernels"
	"assasin/internal/obs"
	"assasin/internal/ssd"
	"assasin/internal/telemetry"
	"assasin/internal/telemetry/kprof"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden Prometheus exposition under testdata/")

// statWords builds the tiny Table II Stat workload input: n bytes of
// deterministic 32-bit words.
func statWords(n int, seed uint32) []byte {
	b := make([]byte, n)
	x := seed
	for i := 0; i+4 <= n; i += 4 {
		x = x*1664525 + 1013904223
		binary.LittleEndian.PutUint32(b[i:], x)
	}
	return b
}

// runStat offloads the tiny Stat workload on a fresh AssasinSb drive with
// the sink attached (the same workload the ssd package's golden trace pins).
func runStat(t *testing.T, tel *telemetry.Sink) {
	t.Helper()
	data := statWords(16<<10, 7)
	tel.StartRun("Stat/AssasinSb")
	s := ssd.New(ssd.Options{Arch: ssd.AssasinSb, Cores: 2, Telemetry: tel})
	lpas, err := s.InstallBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunKernel(ssd.KernelRun{
		Kernel:     kernels.Stat{},
		Inputs:     [][]int{lpas},
		InputBytes: []int64{int64(len(data))},
		RecordSize: 4,
		Cores:      2,
		OutKind:    firmware.OutDiscard,
	}); err != nil {
		t.Fatal(err)
	}
	s.PublishStats()
}

// TestGoldenPrometheus pins the full /metrics exposition for the tiny Stat
// workload. The simulation is deterministic, so the text is byte-stable;
// regenerate with go test ./internal/obs -run GoldenPrometheus -update
// after an intentional timing or instrumentation change.
func TestGoldenPrometheus(t *testing.T) {
	tel := telemetry.NewSink()
	runStat(t, tel)

	c := obs.NewCollector()
	c.PublishMetrics(tel.Metrics())
	c.SetBuildInfo("version", "test", "go_version", "go", "vcs_revision", "deadbeef")
	c.MarkReady()

	var buf bytes.Buffer
	if err := c.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"assasin_fw_pages_fed_total ",
		"assasin_flash_senses_total ",
		"# TYPE assasin_flash_ch0_busy_ps gauge",
		"# TYPE assasin_sched_quantum_used_ps histogram",
		"assasin_sched_quantum_used_ps_bucket{le=\"+Inf\"} ",
		"assasin_sched_quantum_used_ps_count ",
		"assasin_build_info{version=\"test\",go_version=\"go\",vcs_revision=\"deadbeef\"} 1",
		"assasin_serve_ready 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	for _, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		if line == "" {
			t.Error("exposition contains a blank line")
		}
	}

	golden := filepath.Join("testdata", "golden_metrics.prom")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition deviates from %s (%d vs %d bytes); run with -update if the change is intentional",
			golden, buf.Len(), len(want))
	}
}

// miniFig13 runs a small Fig 13 fan-out with the collector bridged in,
// returning the marshaled rows.
func miniFig13(t *testing.T, c *obs.Collector) []byte {
	t.Helper()
	tel := telemetry.NewSink()
	cfg := experiments.Config{
		KernelMB: 0.125, AESKB: 16, ScanMB: 1, TPCHScale: 0.001,
		Cores: 2, Workers: 1, Telemetry: tel,
		OnRunDone: func(rec experiments.RunRecord) {
			c.ObserveRun(rec.AttributionRun())
		},
	}
	rows, err := experiments.Fig13(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(rows)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestScrapeDoesNotPerturb runs the same experiment fan-out twice — once
// quiet, once with a scraper goroutine hammering every endpoint for the
// whole run — and demands byte-identical results. Publication at run
// boundaries is what makes this hold: scrapers only read immutable
// snapshots, never the live sink.
func TestScrapeDoesNotPerturb(t *testing.T) {
	quiet := miniFig13(t, obs.NewCollector())

	c := obs.NewCollector()
	c.MarkReady()
	h := obs.NewHandler(c)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		paths := []string{"/metrics", "/runs", "/runs/run-0001/report", "/readyz", "/healthz"}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			req := httptest.NewRequest("GET", paths[i%len(paths)], nil)
			h.ServeHTTP(httptest.NewRecorder(), req)
		}
	}()
	scraped := miniFig13(t, c)
	close(stop)
	wg.Wait()

	if !bytes.Equal(quiet, scraped) {
		t.Fatalf("results diverge under concurrent scraping:\nquiet:   %s\nscraped: %s", quiet, scraped)
	}

	// The fan-out completed 24 runs; its reports are all queryable.
	if got := c.RunsCompleted(); got != 24 {
		t.Fatalf("runs completed = %d, want 24", got)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/runs/run-0001/report", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/runs/run-0001/report = %d, want 200", rec.Code)
	}
	var rep struct {
		ID           string `json:"id"`
		LargestClass string `json:"largest_class"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.ID != "run-0001" || rep.LargestClass == "" {
		t.Fatalf("report = %+v", rep)
	}
}

// TestEndpoints exercises the handler over a real HTTP server.
func TestEndpoints(t *testing.T) {
	c := obs.NewCollector()
	srv := httptest.NewServer(obs.NewHandler(c))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(b)
	}

	if code, body := get("/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, _ := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before MarkReady = %d, want 503", code)
	}
	c.MarkReady()
	if code, _ := get("/readyz"); code != 200 {
		t.Fatalf("/readyz after MarkReady = %d, want 200", code)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "assasin_serve_ready 1") {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	if code, body := get("/runs"); code != 200 || strings.TrimSpace(body) != "[]" {
		t.Fatalf("/runs with no runs = %d %q", code, body)
	}
	if code, _ := get("/runs/run-0042/report"); code != http.StatusNotFound {
		t.Fatalf("unknown run report = %d, want 404", code)
	}
	if code, body := get("/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Fatalf("index = %d %q", code, body)
	}
	if code, body := get("/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
}

// TestRequestsEndpoints drives a real traced run through the collector and
// reads it back over HTTP: the summary endpoint, one retained request by id
// (its critical path must sum exactly to its latency), and the 404/400
// paths.
func TestRequestsEndpoints(t *testing.T) {
	c := obs.NewCollector()
	cfg := experiments.Config{
		KernelMB: 0.125, AESKB: 16, ScanMB: 1, TPCHScale: 0.001,
		Cores: 2, Workers: 1, Telemetry: telemetry.NewSink(),
		PerRunTelemetry: true, Requests: 4,
		OnRunDone: func(rec experiments.RunRecord) {
			c.ObserveRunData(rec.AttributionRun(), rec.Timeline, rec.Requests)
		},
	}
	if _, err := experiments.Fig13(cfg); err != nil {
		t.Fatal(err)
	}
	c.MarkReady()
	srv := httptest.NewServer(obs.NewHandler(c))
	defer srv.Close()

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, b
	}

	code, body := get("/runs/run-0001/requests")
	if code != http.StatusOK {
		t.Fatalf("/runs/run-0001/requests = %d: %s", code, body)
	}
	var sum struct {
		Count   int64 `json:"count"`
		Slowest []struct {
			ID        uint64 `json:"id"`
			LatencyPs int64  `json:"latency_ps"`
			Critical  []struct {
				Class string `json:"class"`
				DurPs int64  `json:"dur_ps"`
			} `json:"critical"`
		} `json:"slowest"`
	}
	if err := json.Unmarshal(body, &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Count == 0 || len(sum.Slowest) == 0 {
		t.Fatalf("empty request summary: %s", body)
	}
	r0 := sum.Slowest[0]
	var total int64
	for _, sg := range r0.Critical {
		total += sg.DurPs
	}
	if total != r0.LatencyPs {
		t.Fatalf("critical path sums to %d, latency is %d", total, r0.LatencyPs)
	}

	code, body = get(fmt.Sprintf("/runs/run-0001/requests/%d", r0.ID))
	if code != http.StatusOK {
		t.Fatalf("request detail = %d: %s", code, body)
	}
	var one struct {
		ID uint64 `json:"id"`
	}
	if err := json.Unmarshal(body, &one); err != nil {
		t.Fatal(err)
	}
	if one.ID != r0.ID {
		t.Fatalf("detail id = %d, want %d", one.ID, r0.ID)
	}

	if code, _ := get("/runs/run-9999/requests"); code != http.StatusNotFound {
		t.Fatalf("unknown run requests = %d, want 404", code)
	}
	if code, _ := get("/runs/run-0001/requests/999999"); code != http.StatusNotFound {
		t.Fatalf("unretained request = %d, want 404", code)
	}
	if code, _ := get("/runs/run-0001/requests/notanumber"); code != http.StatusBadRequest {
		t.Fatalf("malformed request id = %d, want 400", code)
	}
}

// TestProfileEndpoints drives a kprof-instrumented run through the
// collector and reads the guest profile back over HTTP, in both JSON and
// pprof form, plus the 404/405 negative paths.
func TestProfileEndpoints(t *testing.T) {
	c := obs.NewCollector()
	cfg := experiments.Config{
		KernelMB: 0.125, AESKB: 16, ScanMB: 1, TPCHScale: 0.001,
		Cores: 2, Workers: 1, KProf: true,
		OnRunDone: func(rec experiments.RunRecord) {
			c.ObserveRunProfile(rec.AttributionRun(), rec.Timeline, rec.Requests, rec.Profile)
		},
	}
	if _, err := experiments.Fig13(cfg); err != nil {
		t.Fatal(err)
	}
	// An un-profiled run: its id must 404 on the profile endpoints.
	bare := c.ObserveRun(experiments.RunRecord{Label: "bare"}.AttributionRun())
	c.MarkReady()
	srv := httptest.NewServer(obs.NewHandler(c))
	defer srv.Close()

	get := func(path string) (int, http.Header, []byte) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, resp.Header, b
	}

	code, _, body := get("/runs/run-0001/profile")
	if code != http.StatusOK {
		t.Fatalf("/runs/run-0001/profile = %d: %s", code, body)
	}
	var prof kprof.Profile
	if err := json.Unmarshal(body, &prof); err != nil {
		t.Fatal(err)
	}
	if len(prof.Kernels) == 0 {
		t.Fatalf("profile has no kernels: %s", body)
	}
	insts, busy, _, _, _, _ := prof.Totals()
	if insts == 0 || busy == 0 {
		t.Fatalf("profile totals empty: insts %d busy %d", insts, busy)
	}

	code, hdr, raw := get("/runs/run-0001/profile.pb.gz")
	if code != http.StatusOK {
		t.Fatalf("/runs/run-0001/profile.pb.gz = %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/octet-stream" {
		t.Errorf("pb.gz content type = %q", ct)
	}
	if len(raw) < 2 || raw[0] != 0x1f || raw[1] != 0x8b {
		t.Errorf("pb.gz payload is not gzip (starts %x)", raw[:min(4, len(raw))])
	}

	if code, _, _ := get("/runs/run-9999/profile"); code != http.StatusNotFound {
		t.Fatalf("unknown run profile = %d, want 404", code)
	}
	if code, _, _ := get("/runs/" + bare.ID + "/profile"); code != http.StatusNotFound {
		t.Fatalf("un-profiled run = %d, want 404", code)
	}
	if code, _, _ := get("/runs/" + bare.ID + "/profile.pb.gz"); code != http.StatusNotFound {
		t.Fatalf("un-profiled run pb.gz = %d, want 404", code)
	}
	resp, err := http.Post(srv.URL+"/runs/run-0001/profile", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST profile = %d, want 405", resp.StatusCode)
	}
}

// TestNilCollector checks the disabled collector contract: every method is
// a safe no-op, and the Prometheus exposition still renders the serving
// metrics.
func TestNilCollector(t *testing.T) {
	var c *obs.Collector
	if rep := c.ObserveRun(experiments.RunRecord{}.AttributionRun()); rep != nil {
		t.Fatalf("nil collector stored a report: %+v", rep)
	}
	c.PublishMetrics(telemetry.MetricsSnapshot{})
	c.MarkReady()
	if c.Ready() || c.RunsCompleted() != 0 || c.Reports() != nil || c.Report("run-0001") != nil {
		t.Fatal("nil collector is not inert")
	}
	var buf bytes.Buffer
	if err := c.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "assasin_serve_ready 0") {
		t.Fatalf("nil exposition = %q", buf.String())
	}
}

// TestNilCollectorZeroAllocs pins the disabled-path cost: observing runs
// and publishing snapshots through a nil collector allocates nothing.
func TestNilCollectorZeroAllocs(t *testing.T) {
	var c *obs.Collector
	snap := telemetry.MetricsSnapshot{}
	allocs := testing.AllocsPerRun(100, func() {
		c.PublishMetrics(snap)
		c.MarkReady()
		_ = c.Ready()
		_ = c.RunsCompleted()
	})
	if allocs != 0 {
		t.Fatalf("nil collector allocates %.1f per op, want 0", allocs)
	}
}
