package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"

	"assasin/internal/telemetry/diff"
)

// runSummary is one row of the /runs listing.
type runSummary struct {
	ID            string  `json:"id"`
	Label         string  `json:"label"`
	Kernel        string  `json:"kernel"`
	Arch          string  `json:"arch"`
	DurationPs    int64   `json:"duration_ps"`
	ThroughputBps float64 `json:"throughput_bps"`
	LargestClass  string  `json:"largest_class"`
	LargestStall  string  `json:"largest_stall"`
}

// NewHandler builds the observability endpoint set over a collector:
//
//	/healthz            liveness (always 200 once serving)
//	/readyz             readiness (503 until MarkReady)
//	/metrics            Prometheus text format, latest published snapshot
//	/slo                latest published SLO status (404 until a load run publishes)
//	/live               latest published live window snapshot (404 until published)
//	/runs                     JSON list of completed runs
//	/runs/{id}/report         one run's full attribution report
//	/runs/{id}/timeline       the run's sampled timeline (404 when not sampled)
//	/runs/{id}/requests       the run's request-trace summary (404 when not traced)
//	/runs/{id}/requests/{rid} one retained slow request's full causal record
//	/runs/{id}/profile        the run's guest-kernel profile (404 when not profiled)
//	/runs/{id}/profile.pb.gz  the same profile as gzipped pprof profile.proto
//	/runs/{id}/compare/{other} differential report between two runs
//	/debug/pprof/*            the standard Go profiling endpoints
//
// Every endpoint reads only published, immutable data, so scraping while a
// simulation runs on another goroutine cannot perturb its results.
func NewHandler(c *Collector) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !c.Ready() {
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		io.WriteString(w, "ready\n")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		c.WritePrometheus(w)
	})
	mux.HandleFunc("GET /slo", func(w http.ResponseWriter, r *http.Request) {
		st := c.SLOStatus()
		if st == nil {
			http.Error(w, "no SLO status published (run the load experiment)", http.StatusNotFound)
			return
		}
		writeJSON(w, st)
	})
	mux.HandleFunc("GET /live", func(w http.ResponseWriter, r *http.Request) {
		snap := c.LiveSnapshot()
		if snap == nil {
			http.Error(w, "no live snapshot published (run the load experiment)", http.StatusNotFound)
			return
		}
		writeJSON(w, snap)
	})
	mux.HandleFunc("GET /runs", func(w http.ResponseWriter, r *http.Request) {
		reports := c.Reports()
		out := make([]runSummary, 0, len(reports))
		for _, rep := range reports {
			out = append(out, runSummary{
				ID: rep.ID, Label: rep.Label, Kernel: rep.Kernel, Arch: rep.Arch,
				DurationPs: rep.DurationPs, ThroughputBps: rep.ThroughputBps,
				LargestClass: rep.LargestClass, LargestStall: rep.LargestStall,
			})
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("GET /runs/{id}/report", func(w http.ResponseWriter, r *http.Request) {
		rep := c.Report(r.PathValue("id"))
		if rep == nil {
			http.Error(w, "unknown run", http.StatusNotFound)
			return
		}
		writeJSON(w, rep)
	})
	mux.HandleFunc("GET /runs/{id}/timeline", func(w http.ResponseWriter, r *http.Request) {
		tl := c.Timeline(r.PathValue("id"))
		if tl == nil {
			http.Error(w, "unknown run or no timeline", http.StatusNotFound)
			return
		}
		writeJSON(w, tl)
	})
	mux.HandleFunc("GET /runs/{id}/requests", func(w http.ResponseWriter, r *http.Request) {
		sum := c.Requests(r.PathValue("id"))
		if sum == nil {
			http.Error(w, "unknown run or no request trace", http.StatusNotFound)
			return
		}
		writeJSON(w, sum)
	})
	mux.HandleFunc("GET /runs/{id}/requests/{rid}", func(w http.ResponseWriter, r *http.Request) {
		sum := c.Requests(r.PathValue("id"))
		if sum == nil {
			http.Error(w, "unknown run or no request trace", http.StatusNotFound)
			return
		}
		rid, err := strconv.ParseUint(r.PathValue("rid"), 10, 64)
		if err != nil {
			http.Error(w, "bad request id", http.StatusBadRequest)
			return
		}
		req := sum.Find(rid)
		if req == nil {
			http.Error(w, "request not retained (only the K slowest are kept)", http.StatusNotFound)
			return
		}
		writeJSON(w, req)
	})
	mux.HandleFunc("GET /runs/{id}/profile", func(w http.ResponseWriter, r *http.Request) {
		prof := c.Profile(r.PathValue("id"))
		if prof == nil {
			http.Error(w, "unknown run or no profile", http.StatusNotFound)
			return
		}
		writeJSON(w, prof)
	})
	mux.HandleFunc("GET /runs/{id}/profile.pb.gz", func(w http.ResponseWriter, r *http.Request) {
		prof := c.Profile(r.PathValue("id"))
		if prof == nil {
			http.Error(w, "unknown run or no profile", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		prof.WritePprof(w)
	})
	mux.HandleFunc("GET /runs/{id}/compare/{other}", func(w http.ResponseWriter, r *http.Request) {
		a, b := r.PathValue("id"), r.PathValue("other")
		repA, repB := c.Report(a), c.Report(b)
		if repA == nil || repB == nil {
			http.Error(w, "unknown run", http.StatusNotFound)
			return
		}
		writeJSON(w, diff.Compare(
			diff.RunData{Label: repA.Label, Report: repA, Timeline: c.Timeline(a), Profile: c.Profile(a)},
			diff.RunData{Label: repB.Label, Report: repB, Timeline: c.Timeline(b), Profile: c.Profile(b)},
		))
	})
	mux.HandleFunc("GET /{$}", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "assasin-serve endpoints:\n"+
			"  /healthz\n  /readyz\n  /metrics\n  /slo\n  /live\n  /runs\n  /runs/{id}/report\n"+
			"  /runs/{id}/timeline\n  /runs/{id}/requests\n  /runs/{id}/requests/{rid}\n"+
			"  /runs/{id}/profile\n  /runs/{id}/profile.pb.gz\n"+
			"  /runs/{id}/compare/{other}\n  /debug/pprof/\n")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// writeJSON writes v as indented JSON.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
