package obs_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"assasin/internal/experiments"
	"assasin/internal/obs"
	"assasin/internal/telemetry/slo"
	"assasin/internal/telemetry/window"
)

// TestSLOEndpoints drives a real open-loop load run publishing through
// the collector at every burn-evaluation boundary, then reads the final
// published state back over HTTP: /slo and /live JSON shapes, the
// assasin_slo_* Prometheus series, and the 404s before anything is
// published.
func TestSLOEndpoints(t *testing.T) {
	c := obs.NewCollector()
	srv := httptest.NewServer(obs.NewHandler(c))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(b)
	}

	// Nothing published yet: both endpoints 404 and /metrics carries no
	// SLO series.
	if code, _ := get("/slo"); code != http.StatusNotFound {
		t.Fatalf("/slo before publish = %d, want 404", code)
	}
	if code, _ := get("/live"); code != http.StatusNotFound {
		t.Fatalf("/live before publish = %d, want 404", code)
	}
	if _, body := get("/metrics"); strings.Contains(body, "assasin_slo_") {
		t.Fatal("/metrics carries SLO series before any publish")
	}

	cfg := experiments.Quick()
	cfg.Cores = 4
	lc := experiments.QuickLoad()
	lc.Drives = 1
	lc.Requests = 1200
	published := 0
	lc.OnEval = func(drive int, st *slo.Status, live *window.Snapshot) {
		c.PublishSLO(st)
		c.PublishLive(live)
		published++
	}
	if _, err := experiments.RunLoad(cfg, lc); err != nil {
		t.Fatal(err)
	}
	if published == 0 {
		t.Fatal("load run published nothing")
	}

	code, body := get("/slo")
	if code != http.StatusOK {
		t.Fatalf("/slo = %d %q", code, body)
	}
	var st slo.Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.NowPs == 0 || len(st.Objectives) == 0 {
		t.Fatalf("published status = %+v", st)
	}
	for _, o := range st.Objectives {
		if o.Good == 0 || len(o.Alerts) == 0 {
			t.Fatalf("objective %q saw no traffic or has no alert rules: %+v", o.Name, o)
		}
	}

	code, body = get("/live")
	if code != http.StatusOK {
		t.Fatalf("/live = %d %q", code, body)
	}
	var snap window.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.NowPs != st.NowPs {
		t.Fatalf("live snapshot at %d, status at %d (published together, must agree)", snap.NowPs, st.NowPs)
	}
	if len(snap.Rates) == 0 || len(snap.Hists) == 0 {
		t.Fatalf("live snapshot empty: %+v", snap)
	}

	_, body = get("/metrics")
	for _, want := range []string{
		"# TYPE assasin_slo_good_total counter",
		"# TYPE assasin_slo_bad_total counter",
		"# TYPE assasin_slo_error_budget_remaining gauge",
		"# TYPE assasin_slo_burn_rate gauge",
		"# TYPE assasin_slo_alert_firing gauge",
		`assasin_slo_alert_firing{objective="all",rule="fast-burn",severity="page"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	// The index advertises the new endpoints.
	if _, body := get("/"); !strings.Contains(body, "/slo") || !strings.Contains(body, "/live") {
		t.Fatalf("index missing /slo or /live:\n%s", body)
	}
}

// TestSLOPublishNil pins the nil-safety contract: publishing nil values
// or publishing on a nil collector must be a no-op, not a panic.
func TestSLOPublishNil(t *testing.T) {
	var nilC *obs.Collector
	nilC.PublishSLO(&slo.Status{})
	nilC.PublishLive(&window.Snapshot{})
	if nilC.SLOStatus() != nil || nilC.LiveSnapshot() != nil {
		t.Fatal("nil collector returned state")
	}
	c := obs.NewCollector()
	c.PublishSLO(nil)
	c.PublishLive(nil)
	if c.SLOStatus() != nil || c.LiveSnapshot() != nil {
		t.Fatal("nil publish stored state")
	}
}
