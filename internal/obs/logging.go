package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds a text slog.Logger writing to w at the named level:
// "debug", "info", "warn"/"warning", or "error". The cmds share it to
// implement -log-level uniformly.
func NewLogger(w io.Writer, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, or error)", level)
	}
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: lvl})), nil
}
