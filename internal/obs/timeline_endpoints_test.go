package obs_test

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"assasin/internal/obs"
	"assasin/internal/telemetry/analyze"
	"assasin/internal/telemetry/timeline"
)

// syntheticTimeline builds a tiny timeline dominated by one class.
func syntheticTimeline(run, class string) *timeline.Timeline {
	s := timeline.New(nil, timeline.Config{IntervalPs: 10})
	var cum int64
	s.AddProbe(func(emit func(string, int64)) {
		emit(timeline.ClassPrefix+class, cum)
	})
	for i := 1; i <= 4; i++ {
		cum += 8
		s.Tick(int64(10 * i))
	}
	return s.Finish(run, 40)
}

// observe stores one synthetic run (with or without a timeline) and returns
// its report.
func observe(c *obs.Collector, label string, tl *timeline.Timeline) *analyze.RunReport {
	return c.ObserveRunTimeline(analyze.Run{
		Label: label, Kernel: "stat", Arch: "Baseline",
		DurationPs: 100, InputBytes: 1000,
		BusyPs: 60, CacheDRAMWaitPs: 40,
	}, tl)
}

func timelineTestServer(t *testing.T) (*obs.Collector, *httptest.Server) {
	t.Helper()
	c := obs.NewCollector()
	c.MarkReady()
	srv := httptest.NewServer(obs.NewHandler(c))
	t.Cleanup(srv.Close)
	return c, srv
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	return resp.StatusCode, string(buf[:n])
}

func TestTimelineEndpoint(t *testing.T) {
	c, srv := timelineTestServer(t)
	observe(c, "stat/Baseline", syntheticTimeline("stat/Baseline", "cache-dram-wait"))
	observe(c, "stat/AssasinSb", nil)

	code, body := get(t, srv.URL+"/runs/run-0001/timeline")
	if code != http.StatusOK {
		t.Fatalf("GET timeline = %d, want 200", code)
	}
	for _, want := range []string{`"times_ps"`, `"series"`, `"phases"`, "cache-dram-wait"} {
		if !contains(body, want) {
			t.Errorf("timeline body missing %s:\n%s", want, body)
		}
	}

	// Observed run without a sampled timeline: 404, not an empty document.
	if code, _ := get(t, srv.URL+"/runs/run-0002/timeline"); code != http.StatusNotFound {
		t.Errorf("GET timeline for unsampled run = %d, want 404", code)
	}
	// Unknown run id: 404.
	if code, _ := get(t, srv.URL+"/runs/run-9999/timeline"); code != http.StatusNotFound {
		t.Errorf("GET timeline for unknown run = %d, want 404", code)
	}
}

func TestCompareEndpoint(t *testing.T) {
	c, srv := timelineTestServer(t)
	observe(c, "stat/Baseline", syntheticTimeline("stat/Baseline", "cache-dram-wait"))
	c.ObserveRunTimeline(analyze.Run{
		Label: "stat/AssasinSb", Kernel: "stat", Arch: "AssasinSb",
		DurationPs: 60, InputBytes: 1000,
		BusyPs: 55, StreamRefillWaitPs: 5,
	}, syntheticTimeline("stat/AssasinSb", "core-busy"))

	code, body := get(t, srv.URL+"/runs/run-0001/compare/run-0002")
	if code != http.StatusOK {
		t.Fatalf("GET compare = %d, want 200\n%s", code, body)
	}
	for _, want := range []string{`"headline"`, `"top_class"`, `"classes"`, `"phases"`, "cache-dram-wait"} {
		if !contains(body, want) {
			t.Errorf("compare body missing %s:\n%s", want, body)
		}
	}

	// Either side unknown: 404.
	if code, _ := get(t, srv.URL+"/runs/run-0001/compare/run-0404"); code != http.StatusNotFound {
		t.Errorf("compare with unknown other = %d, want 404", code)
	}
	if code, _ := get(t, srv.URL+"/runs/run-0404/compare/run-0001"); code != http.StatusNotFound {
		t.Errorf("compare with unknown id = %d, want 404", code)
	}
}

func TestReportCarriesPhases(t *testing.T) {
	c, srv := timelineTestServer(t)
	observe(c, "stat/Baseline", syntheticTimeline("stat/Baseline", "cache-dram-wait"))

	code, body := get(t, srv.URL+"/runs/run-0001/report")
	if code != http.StatusOK {
		t.Fatalf("GET report = %d, want 200", code)
	}
	if !contains(body, `"phases"`) {
		t.Errorf("report of a sampled run carries no phases:\n%s", body)
	}
}

func TestEndpointsRejectNonGET(t *testing.T) {
	c, srv := timelineTestServer(t)
	observe(c, "stat/Baseline", syntheticTimeline("stat/Baseline", "cache-dram-wait"))

	for _, path := range []string{
		"/runs",
		"/runs/run-0001/report",
		"/runs/run-0001/timeline",
		"/runs/run-0001/compare/run-0001",
		"/metrics",
	} {
		resp, err := http.Post(srv.URL+path, "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s = %d, want 405", path, resp.StatusCode)
		}
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
