package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"

	"assasin/internal/telemetry"
)

// Prometheus text-format exposition of a telemetry snapshot. Metric names
// are "assasin_<component>_<name>" with non-alphanumeric bytes mapped to
// '_': counters gain the conventional "_total" suffix, gauges export their
// value, histograms export summary quantiles (the bucket-interpolated
// P50/P95/P99 estimates) plus _sum and _count. Output is deterministically
// ordered (sorted keys) so the exposition can be golden-tested; rendering
// happens only when a scrape actually asks for it.

// promName mangles a "component/name" metric key into a valid Prometheus
// metric name.
func promName(key string) string {
	out := []byte("assasin_")
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// promFloat formats a sample value the way Prometheus expects.
func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// sortedKeys returns m's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WritePrometheus writes the snapshot in Prometheus text exposition
// format.
func WritePrometheus(w io.Writer, snap telemetry.MetricsSnapshot) error {
	bw := bufio.NewWriter(w)
	for _, key := range sortedKeys(snap.Counters) {
		name := promName(key) + "_total"
		fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", name, name, snap.Counters[key])
	}
	for _, key := range sortedKeys(snap.Gauges) {
		name := promName(key)
		fmt.Fprintf(bw, "# TYPE %s gauge\n%s %d\n", name, name, snap.Gauges[key].Value)
	}
	for _, key := range sortedKeys(snap.Histograms) {
		name := promName(key)
		h := snap.Histograms[key]
		fmt.Fprintf(bw, "# TYPE %s summary\n", name)
		fmt.Fprintf(bw, "%s{quantile=\"0.5\"} %s\n", name, promFloat(h.P50))
		fmt.Fprintf(bw, "%s{quantile=\"0.95\"} %s\n", name, promFloat(h.P95))
		fmt.Fprintf(bw, "%s{quantile=\"0.99\"} %s\n", name, promFloat(h.P99))
		fmt.Fprintf(bw, "%s_sum %d\n", name, h.Sum)
		fmt.Fprintf(bw, "%s_count %d\n", name, h.Count)
	}
	fmt.Fprintf(bw, "# TYPE assasin_trace_events gauge\nassasin_trace_events %d\n", snap.TraceEvents)
	fmt.Fprintf(bw, "# TYPE assasin_trace_dropped_total counter\nassasin_trace_dropped_total %d\n", snap.TraceDropped)
	return bw.Flush()
}

// WritePrometheus writes the collector's latest published snapshot plus
// the collector's own serving metrics. Safe on a nil collector (serving
// metrics only, all zero).
func (c *Collector) WritePrometheus(w io.Writer) error {
	if err := WritePrometheus(w, c.Snapshot()); err != nil {
		return err
	}
	ready := 0
	if c.Ready() {
		ready = 1
	}
	_, err := fmt.Fprintf(w,
		"# TYPE assasin_runs_completed_total counter\nassasin_runs_completed_total %d\n"+
			"# TYPE assasin_serve_ready gauge\nassasin_serve_ready %d\n",
		c.RunsCompleted(), ready)
	return err
}
