package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"

	"assasin/internal/telemetry"
	"assasin/internal/telemetry/slo"
)

// Prometheus text-format exposition of a telemetry snapshot. Metric names
// are "assasin_<component>_<name>" with non-alphanumeric bytes mapped to
// '_': counters gain the conventional "_total" suffix, gauges export their
// value, histograms export natively as cumulative _bucket{le=...} series
// (the in-memory power-of-two buckets) with the conventional +Inf bucket,
// _sum and _count. Output is deterministically ordered (sorted keys) so the
// exposition can be golden-tested; rendering happens only when a scrape
// actually asks for it.

// promName mangles a "component/name" metric key into a valid Prometheus
// metric name.
func promName(key string) string {
	out := []byte("assasin_")
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// promFloat formats a sample value the way Prometheus expects.
func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// sortedKeys returns m's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WritePrometheus writes the snapshot in Prometheus text exposition
// format.
func WritePrometheus(w io.Writer, snap telemetry.MetricsSnapshot) error {
	bw := bufio.NewWriter(w)
	for _, key := range sortedKeys(snap.Counters) {
		name := promName(key) + "_total"
		fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", name, name, snap.Counters[key])
	}
	for _, key := range sortedKeys(snap.Gauges) {
		name := promName(key)
		fmt.Fprintf(bw, "# TYPE %s gauge\n%s %d\n", name, name, snap.Gauges[key].Value)
	}
	for _, key := range sortedKeys(snap.Histograms) {
		name := promName(key)
		h := snap.Histograms[key]
		fmt.Fprintf(bw, "# TYPE %s histogram\n", name)
		for _, b := range h.Buckets {
			fmt.Fprintf(bw, "%s_bucket{le=\"%s\"} %d\n", name, promFloat(b.LE), b.Count)
		}
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
		fmt.Fprintf(bw, "%s_sum %d\n", name, h.Sum)
		fmt.Fprintf(bw, "%s_count %d\n", name, h.Count)
	}
	fmt.Fprintf(bw, "# TYPE assasin_trace_events gauge\nassasin_trace_events %d\n", snap.TraceEvents)
	fmt.Fprintf(bw, "# TYPE assasin_trace_dropped_total counter\nassasin_trace_dropped_total %d\n", snap.TraceDropped)
	return bw.Flush()
}

// writeSLOProm renders the latest published SLO status as labeled
// assasin_slo_* series. Objectives appear in configuration order and
// alerts in rule order, so the exposition is deterministic for a given
// published status.
func writeSLOProm(w io.Writer, st *slo.Status) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# TYPE assasin_slo_now_picoseconds gauge\nassasin_slo_now_picoseconds %d\n", st.NowPs)
	fmt.Fprintf(bw, "# TYPE assasin_slo_good_total counter\n")
	for _, o := range st.Objectives {
		fmt.Fprintf(bw, "assasin_slo_good_total{objective=%q,tenant=%q} %d\n", o.Name, o.Tenant, o.Good)
	}
	fmt.Fprintf(bw, "# TYPE assasin_slo_bad_total counter\n")
	for _, o := range st.Objectives {
		fmt.Fprintf(bw, "assasin_slo_bad_total{objective=%q,tenant=%q} %d\n", o.Name, o.Tenant, o.Bad)
	}
	fmt.Fprintf(bw, "# TYPE assasin_slo_error_budget_remaining gauge\n")
	for _, o := range st.Objectives {
		fmt.Fprintf(bw, "assasin_slo_error_budget_remaining{objective=%q,tenant=%q} %s\n",
			o.Name, o.Tenant, promFloat(o.BudgetRemaining))
	}
	fmt.Fprintf(bw, "# TYPE assasin_slo_window_p99_picoseconds gauge\n")
	for _, o := range st.Objectives {
		fmt.Fprintf(bw, "assasin_slo_window_p99_picoseconds{objective=%q,tenant=%q} %s\n",
			o.Name, o.Tenant, promFloat(o.P99Ps))
	}
	fmt.Fprintf(bw, "# TYPE assasin_slo_burn_rate gauge\n")
	for _, o := range st.Objectives {
		for _, a := range o.Alerts {
			fmt.Fprintf(bw, "assasin_slo_burn_rate{objective=%q,rule=%q,window=\"long\"} %s\n",
				o.Name, a.Rule, promFloat(a.BurnLong))
			fmt.Fprintf(bw, "assasin_slo_burn_rate{objective=%q,rule=%q,window=\"short\"} %s\n",
				o.Name, a.Rule, promFloat(a.BurnShort))
		}
	}
	fmt.Fprintf(bw, "# TYPE assasin_slo_alert_firing gauge\n")
	for _, o := range st.Objectives {
		for _, a := range o.Alerts {
			firing := 0
			if a.Firing {
				firing = 1
			}
			fmt.Fprintf(bw, "assasin_slo_alert_firing{objective=%q,rule=%q,severity=%q} %d\n",
				o.Name, a.Rule, a.Severity, firing)
		}
	}
	return bw.Flush()
}

// promLabel is one label pair on the build-info gauge.
type promLabel struct{ key, val string }

// SetBuildInfo attaches version labels emitted as the conventional
// "assasin_build_info{...} 1" gauge on every scrape. Pairs are alternating
// key, value strings; call once at startup (cmds pass
// internal/buildinfo values).
func (c *Collector) SetBuildInfo(pairs ...string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.buildInfo = c.buildInfo[:0]
	for i := 0; i+1 < len(pairs); i += 2 {
		c.buildInfo = append(c.buildInfo, promLabel{pairs[i], pairs[i+1]})
	}
}

// WritePrometheus writes the collector's latest published snapshot plus
// the collector's own serving metrics. Safe on a nil collector (serving
// metrics only, all zero).
func (c *Collector) WritePrometheus(w io.Writer) error {
	if err := WritePrometheus(w, c.Snapshot()); err != nil {
		return err
	}
	if c != nil {
		c.mu.Lock()
		labels := c.buildInfo
		c.mu.Unlock()
		if len(labels) > 0 {
			if _, err := fmt.Fprintf(w, "# TYPE assasin_build_info gauge\nassasin_build_info{"); err != nil {
				return err
			}
			for i, l := range labels {
				sep := ","
				if i == 0 {
					sep = ""
				}
				if _, err := fmt.Fprintf(w, "%s%s=%q", sep, l.key, l.val); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "} 1\n"); err != nil {
				return err
			}
		}
	}
	if st := c.SLOStatus(); st != nil {
		if err := writeSLOProm(w, st); err != nil {
			return err
		}
	}
	ready := 0
	if c.Ready() {
		ready = 1
	}
	_, err := fmt.Fprintf(w,
		"# TYPE assasin_runs_completed_total counter\nassasin_runs_completed_total %d\n"+
			"# TYPE assasin_serve_ready gauge\nassasin_serve_ready %d\n",
		c.RunsCompleted(), ready)
	return err
}
