// Package profiling backs the -cpuprofile/-memprofile flags of the
// commands. It exists so both binaries share the exit-path discipline:
// the commands terminate through os.Exit (which skips defers), so every
// exit site must call the returned stop function explicitly before
// exiting for the profiles to be complete and parseable.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling when cpuPath is non-empty and returns a stop
// function that finalizes the CPU profile and, when memPath is non-empty,
// writes an allocs heap profile (after a GC, so live-heap numbers are
// accurate). The stop function is idempotent: commands call it both from
// their normal return path and from error exits.
func Start(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
		cpuFile = f
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath == "" {
			return
		}
		f, err := os.Create(memPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
			return
		}
		runtime.GC()
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
		}
		f.Close()
	}, nil
}
