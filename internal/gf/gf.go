// Package gf implements arithmetic over GF(2^8) with the Rijndael-friendly
// primitive polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11d), as used by RAID-6
// P+Q erasure coding. Multiplication is served from log/exp tables — the
// same "Galois Field table" function state that the paper's erasure-coding
// kernels keep resident in the ASSASIN scratchpad (Table II).
package gf

// Poly is the primitive polynomial (without the x^8 term) used for
// reduction: x^8 + x^4 + x^3 + x^2 + 1.
const Poly = 0x1d

// Generator is the field generator used to build the log/exp tables.
const Generator = 0x02

var (
	expTable [512]byte // doubled to avoid a modulo in Mul
	logTable [256]byte
)

func init() {
	x := byte(1)
	for i := 0; i < 255; i++ {
		expTable[i] = x
		logTable[x] = byte(i)
		x = mulSlow(x, Generator)
	}
	for i := 255; i < 512; i++ {
		expTable[i] = expTable[i-255]
	}
}

// mulSlow is carry-less multiplication with reduction, used to build tables
// and as a cross-check in tests.
func mulSlow(a, b byte) byte {
	var p byte
	for b != 0 {
		if b&1 != 0 {
			p ^= a
		}
		hi := a & 0x80
		a <<= 1
		if hi != 0 {
			a ^= Poly
		}
		b >>= 1
	}
	return p
}

// Add returns a + b in GF(2^8) (XOR).
func Add(a, b byte) byte { return a ^ b }

// Mul returns a * b in GF(2^8) via the log/exp tables.
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[int(logTable[a])+int(logTable[b])]
}

// Div returns a / b. Division by zero panics, as in integer division.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf: division by zero")
	}
	if a == 0 {
		return 0
	}
	d := int(logTable[a]) - int(logTable[b])
	if d < 0 {
		d += 255
	}
	return expTable[d]
}

// Inv returns the multiplicative inverse of a. Inv(0) panics.
func Inv(a byte) byte { return Div(1, a) }

// Exp returns Generator^n.
func Exp(n int) byte {
	n %= 255
	if n < 0 {
		n += 255
	}
	return expTable[n]
}

// Log returns log_Generator(a). Log(0) panics (log of zero is undefined).
func Log(a byte) int {
	if a == 0 {
		panic("gf: log of zero")
	}
	return int(logTable[a])
}

// MulSlice computes dst[i] ^= c * src[i] for all i, the inner loop of RAID-6
// Q-parity generation. dst and src must be the same length.
func MulSlice(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panic("gf: MulSlice length mismatch")
	}
	if c == 0 {
		return
	}
	if c == 1 {
		for i := range src {
			dst[i] ^= src[i]
		}
		return
	}
	logC := int(logTable[c])
	for i, s := range src {
		if s != 0 {
			dst[i] ^= expTable[logC+int(logTable[s])]
		}
	}
}

// Tables returns copies of the exp and log tables in the layout the AES/RAID
// kernels place into the simulated scratchpad: 256 bytes of exp (one period)
// followed by 256 bytes of log.
func Tables() (exp, log [256]byte) {
	copy(exp[:], expTable[:256])
	log = logTable
	return
}
