package gf

import (
	"testing"
	"testing/quick"
)

func TestMulMatchesSlow(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			if got, want := Mul(byte(a), byte(b)), mulSlow(byte(a), byte(b)); got != want {
				t.Fatalf("Mul(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestFieldAxioms(t *testing.T) {
	// Commutativity, associativity, distributivity (quick-checked).
	comm := func(a, b byte) bool { return Mul(a, b) == Mul(b, a) }
	assoc := func(a, b, c byte) bool { return Mul(a, Mul(b, c)) == Mul(Mul(a, b), c) }
	dist := func(a, b, c byte) bool { return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c)) }
	for name, prop := range map[string]any{"comm": comm, "assoc": assoc, "dist": dist} {
		if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestIdentityAndZero(t *testing.T) {
	for a := 0; a < 256; a++ {
		if Mul(byte(a), 1) != byte(a) {
			t.Fatalf("a*1 != a for %d", a)
		}
		if Mul(byte(a), 0) != 0 {
			t.Fatalf("a*0 != 0 for %d", a)
		}
		if Add(byte(a), byte(a)) != 0 {
			t.Fatalf("a+a != 0 for %d", a)
		}
	}
}

func TestInverse(t *testing.T) {
	for a := 1; a < 256; a++ {
		inv := Inv(byte(a))
		if Mul(byte(a), inv) != 1 {
			t.Fatalf("a * Inv(a) != 1 for %d (inv=%d)", a, inv)
		}
	}
}

func TestDiv(t *testing.T) {
	prop := func(a, b byte) bool {
		if b == 0 {
			return true
		}
		return Mul(Div(a, b), b) == a
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Div by zero did not panic")
		}
	}()
	Div(1, 0)
}

func TestLogOfZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Log(0) did not panic")
		}
	}()
	Log(0)
}

func TestExpLogRoundTrip(t *testing.T) {
	for a := 1; a < 256; a++ {
		if Exp(Log(byte(a))) != byte(a) {
			t.Fatalf("Exp(Log(%d)) != %d", a, a)
		}
	}
	if Exp(255) != Exp(0) {
		t.Error("Exp period is not 255")
	}
	if Exp(-1) != Exp(254) {
		t.Error("negative Exp broken")
	}
}

func TestGeneratorPowersCoverField(t *testing.T) {
	seen := make(map[byte]bool)
	for i := 0; i < 255; i++ {
		seen[Exp(i)] = true
	}
	if len(seen) != 255 {
		t.Fatalf("generator covers %d elements, want 255", len(seen))
	}
	if seen[0] {
		t.Error("generator power hit zero")
	}
}

func TestMulSlice(t *testing.T) {
	src := []byte{0, 1, 2, 0x80, 0xff}
	dst := []byte{5, 5, 5, 5, 5}
	want := make([]byte, 5)
	for i := range src {
		want[i] = dst[i] ^ Mul(3, src[i])
	}
	MulSlice(3, src, dst)
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("MulSlice[%d] = %d, want %d", i, dst[i], want[i])
		}
	}
}

func TestMulSliceSpecialCoefficients(t *testing.T) {
	src := []byte{1, 2, 3}
	dst := []byte{9, 9, 9}
	MulSlice(0, src, dst) // no-op
	if dst[0] != 9 || dst[1] != 9 || dst[2] != 9 {
		t.Error("MulSlice(0) changed dst")
	}
	MulSlice(1, src, dst) // pure XOR
	if dst[0] != 8 || dst[1] != 11 || dst[2] != 10 {
		t.Errorf("MulSlice(1) = %v", dst)
	}
}

func TestMulSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	MulSlice(2, []byte{1}, []byte{1, 2})
}

func TestTablesLayout(t *testing.T) {
	exp, log := Tables()
	if exp[0] != 1 {
		t.Error("exp[0] != 1")
	}
	for a := 1; a < 256; a++ {
		if exp[log[a]] != byte(a) {
			t.Fatalf("table round trip failed at %d", a)
		}
	}
}
