// Package tpch provides the data-analytics substrate for the end-to-end
// evaluation (Figs. 14-15): a deterministic, scaled-down TPC-H dataset
// generator, a small relational engine (scan/filter/project/hash-join/
// group-by/sort) that executes all 22 TPC-H queries, and per-query offload
// descriptors mapping each query's scan to a Parse/Select/Filter pipeline
// pushed into the computational SSD.
//
// Substitution note (recorded in DESIGN.md): the paper uses dbgen SF-10
// with SparkSQL. This generator produces the same eight tables with the
// same key relationships at laptop scale, and encodes every column as a
// non-negative integer — dates as yyyymmdd, monetary values in cents,
// percentages in basis points, and low-cardinality strings as dictionary
// codes — so the in-SSD PSF kernel stays a numeric parser. Relative query
// behaviour (selectivities, join fan-outs, aggregate shapes) is preserved;
// absolute row counts scale with SF.
package tpch

import "fmt"

// Column indices of the lineitem table (16 columns, as in TPC-H).
const (
	LOrderKey = iota
	LPartKey
	LSuppKey
	LLineNumber
	LQuantity      // units
	LExtendedPrice // cents
	LDiscount      // basis points (0-1000 = 0-10%)
	LTax           // basis points
	LReturnFlag    // code: 0=A 1=N 2=R
	LLineStatus    // code: 0=F 1=O
	LShipDate      // yyyymmdd
	LCommitDate    // yyyymmdd
	LReceiptDate   // yyyymmdd
	LShipInstruct  // code 0-3
	LShipMode      // code 0-6
	LComment       // hash bucket 0-9999
	LineitemCols
)

// Column indices of the orders table.
const (
	OOrderKey = iota
	OCustKey
	OOrderStatus // code 0=F 1=O 2=P
	OTotalPrice  // cents
	OOrderDate   // yyyymmdd
	OOrderPriority
	OClerk
	OShipPriority
	OComment
	OrdersCols
)

// Column indices of the customer table.
const (
	CCustKey = iota
	CName
	CAddress
	CNationKey
	CPhone
	CAcctBal // cents (may encode negatives as offset; see genCustomer)
	CMktSegment
	CComment
	CustomerCols
)

// Column indices of the part table.
const (
	PPartKey = iota
	PName // hash bucket standing in for p_name
	PMfgr
	PBrand
	PType // code 0-149 (the 150 TPC-H type strings)
	PSize
	PContainer
	PRetailPrice // cents
	PComment
	PartCols
)

// Column indices of the supplier table.
const (
	SSuppKey = iota
	SName
	SAddress
	SNationKey
	SPhone
	SAcctBal
	SComment
	SupplierCols
)

// Column indices of the partsupp table.
const (
	PSPartKey = iota
	PSSuppKey
	PSAvailQty
	PSSupplyCost // cents
	PSComment
	PartsuppCols
)

// Column indices of nation / region.
const (
	NNationKey = iota
	NName
	NRegionKey
	NComment
	NationCols
)

const (
	RRegionKey = iota
	RName
	RComment
	RegionCols
)

// Mktsegment codes (5 segments).
const (
	SegAutomobile = iota
	SegBuilding
	SegFurniture
	SegHousehold
	SegMachinery
	numSegments
)

// Shipmode codes (7 modes).
const (
	ModeAir = iota
	ModeAirReg
	ModeFob
	ModeMail
	ModeRail
	ModeShip
	ModeTruck
	numShipModes
)

// Return flags / line status.
const (
	FlagA = 0
	FlagN = 1
	FlagR = 2

	StatusF = 0
	StatusO = 1
)

// Relation is a simple row-major table.
type Relation struct {
	Name string
	// ColNames are for debugging/printing.
	ColNames []string
	Rows     [][]int64
}

// NumRows returns the row count.
func (r *Relation) NumRows() int { return len(r.Rows) }

// NumCols returns the column count.
func (r *Relation) NumCols() int {
	if len(r.Rows) > 0 {
		return len(r.Rows[0])
	}
	return len(r.ColNames)
}

// String summarizes the relation.
func (r *Relation) String() string {
	return fmt.Sprintf("%s[%d rows × %d cols]", r.Name, r.NumRows(), r.NumCols())
}

// Dataset is a complete TPC-H database instance.
type Dataset struct {
	SF float64

	Region   *Relation
	Nation   *Relation
	Supplier *Relation
	Customer *Relation
	Part     *Relation
	Partsupp *Relation
	Orders   *Relation
	Lineitem *Relation
}

// Tables returns all tables keyed by name.
func (d *Dataset) Tables() map[string]*Relation {
	return map[string]*Relation{
		"region":   d.Region,
		"nation":   d.Nation,
		"supplier": d.Supplier,
		"customer": d.Customer,
		"part":     d.Part,
		"partsupp": d.Partsupp,
		"orders":   d.Orders,
		"lineitem": d.Lineitem,
	}
}

// dateToInt converts (y, m, d) to yyyymmdd.
func dateToInt(y, m, d int) int64 { return int64(y*10000 + m*100 + d) }

// addDays adds n days to a yyyymmdd date using a simplified 28-day-February
// calendar (leap days don't matter for query shape; ranges stay ordered).
func addDays(date int64, n int) int64 {
	y := int(date / 10000)
	m := int(date / 100 % 100)
	d := int(date % 100)
	d += n
	for {
		dm := daysIn(m)
		if d > dm {
			d -= dm
			m++
			if m > 12 {
				m = 1
				y++
			}
			continue
		}
		if d < 1 {
			m--
			if m < 1 {
				m = 12
				y--
			}
			d += daysIn(m)
			continue
		}
		break
	}
	return dateToInt(y, m, d)
}

func daysIn(m int) int {
	switch m {
	case 1, 3, 5, 7, 8, 10, 12:
		return 31
	case 2:
		return 28
	default:
		return 30
	}
}
