package tpch

import (
	"fmt"

	"assasin/internal/kernels"
)

// QuerySpec describes one TPC-H query: the scan pushed down to the
// computational SSD (the Parse/Select/Filter pipeline over the query's
// primary — largest — table) and the host-side remainder of the plan.
//
// Approximations relative to reference TPC-H, all recorded in DESIGN.md:
// string predicates operate on dictionary codes or hash buckets; Q12's
// two-value ship-mode IN-list becomes the adjacent code range; only the
// primary table's scan is charged for parsing (dimension tables are assumed
// host-cached, as a warm SparkSQL run would have them).
type QuerySpec struct {
	ID    int
	Name  string
	Table string // primary table scanned from storage
	// PSF is the pushed-down Parse/Select/Filter pipeline; PSF.Project
	// defines the column order of the rows handed to Body.
	PSF kernels.PSF
	// Body finishes the query on the host given the scan output.
	Body func(e *Exec, scan *Relation) *Relation
}

// pred builds a PSF range predicate.
func pred(col int, lo, hi int64) kernels.PSFPred {
	return kernels.PSFPred{Col: col, Lo: uint32(lo), Hi: uint32(hi)}
}

// ScanRelation runs the query's Parse/Select/Filter on the host side
// (reference semantics for the SSD offload, and the PureCPU/no-offload
// path). The returned relation has PSF.Project column order.
func (q *QuerySpec) ScanRelation(ds *Dataset) *Relation {
	src := ds.Tables()[q.Table]
	out := &Relation{Name: q.Table + "_scan"}
	for _, row := range src.Rows {
		ok := true
		for _, p := range q.PSF.Preds {
			v := row[p.Col]
			if v < int64(p.Lo) || v > int64(p.Hi) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		nr := make([]int64, len(q.PSF.Project))
		for i, c := range q.PSF.Project {
			nr[i] = row[c]
		}
		out.Rows = append(out.Rows, nr)
	}
	return out
}

// revenue computes extendedprice*(10000-discount)/10000 given cents and
// basis points.
func revenue(price, discBp int64) int64 { return price * (10000 - discBp) / 10000 }

// Queries returns all 22 query specs.
func Queries() []*QuerySpec {
	return []*QuerySpec{
		q1(), q2(), q3(), q4(), q5(), q6(), q7(), q8(), q9(), q10(), q11(),
		q12(), q13(), q14(), q15(), q16(), q17(), q18(), q19(), q20(), q21(), q22(),
	}
}

// QueryByID returns query n (1-22).
func QueryByID(n int) (*QuerySpec, error) {
	qs := Queries()
	if n < 1 || n > len(qs) {
		return nil, fmt.Errorf("tpch: no query %d", n)
	}
	return qs[n-1], nil
}

// --- Q1: pricing summary report ---
func q1() *QuerySpec {
	// scan cols: 0 qty, 1 price, 2 disc, 3 tax, 4 flag, 5 status, 6 shipdate
	return &QuerySpec{
		ID: 1, Name: "pricing-summary", Table: "lineitem",
		PSF: kernels.PSF{
			NumFields: LineitemCols,
			Project:   []int{LQuantity, LExtendedPrice, LDiscount, LTax, LReturnFlag, LLineStatus, LShipDate},
			Preds:     []kernels.PSFPred{pred(LShipDate, 0, 19980802)},
		},
		Body: func(e *Exec, scan *Relation) *Relation {
			g := e.GroupBy(scan,
				func(r []int64) []int64 { return []int64{r[4], r[5]} },
				[]AggSpec{
					{Kind: AggSum, Value: func(r []int64) int64 { return r[0] }},
					{Kind: AggSum, Value: func(r []int64) int64 { return r[1] }},
					{Kind: AggSum, Value: func(r []int64) int64 { return revenue(r[1], r[2]) }},
					{Kind: AggSum, Value: func(r []int64) int64 { return revenue(r[1], r[2]) * (10000 + r[3]) / 10000 }},
					{Kind: AggAvg, Value: func(r []int64) int64 { return r[0] }},
					{Kind: AggCount},
				})
			return e.OrderBy(g, func(a, b []int64) bool {
				if a[0] != b[0] {
					return a[0] < b[0]
				}
				return a[1] < b[1]
			})
		},
	}
}

// --- Q2: minimum cost supplier ---
func q2() *QuerySpec {
	// scan cols: 0 partkey, 1 suppkey, 2 supplycost
	return &QuerySpec{
		ID: 2, Name: "min-cost-supplier", Table: "partsupp",
		PSF: kernels.PSF{
			NumFields: PartsuppCols,
			Project:   []int{PSPartKey, PSSuppKey, PSSupplyCost},
		},
		Body: func(e *Exec, scan *Relation) *Relation {
			// Parts of size 15 and type ≡ brass (code band 30-44).
			parts := e.Filter(e.DS.Part, func(r []int64) bool {
				return r[PSize] == 15 && r[PType] >= 30 && r[PType] < 45
			})
			ps := e.HashJoin(e.Project(parts, PPartKey), scan, 0, 0)
			// cols: 0 p_partkey | 1 partkey, 2 suppkey, 3 cost
			// Suppliers in region 3 (EUROPE): nation%5 == 3.
			sups := e.Filter(e.DS.Supplier, func(r []int64) bool { return r[SNationKey]%5 == 3 })
			supKeys := map[int64]bool{}
			for _, r := range sups.Rows {
				supKeys[r[SSuppKey]] = true
			}
			ps = e.Filter(ps, func(r []int64) bool { return supKeys[r[2]] })
			minCost := e.GroupBy(ps,
				func(r []int64) []int64 { return []int64{r[0]} },
				[]AggSpec{{Kind: AggMin, Value: func(r []int64) int64 { return r[3] }}})
			// Keep (part, supp) pairs achieving the min.
			min := map[int64]int64{}
			for _, r := range minCost.Rows {
				min[r[0]] = r[1]
			}
			out := e.Filter(ps, func(r []int64) bool { return r[3] == min[r[0]] })
			return e.Limit(e.OrderBy(out, func(a, b []int64) bool { return a[0] < b[0] }), 100)
		},
	}
}

// --- Q3: shipping priority ---
func q3() *QuerySpec {
	// scan cols: 0 orderkey, 1 price, 2 disc, 3 shipdate
	return &QuerySpec{
		ID: 3, Name: "shipping-priority", Table: "lineitem",
		PSF: kernels.PSF{
			NumFields: LineitemCols,
			Project:   []int{LOrderKey, LExtendedPrice, LDiscount, LShipDate},
			Preds:     []kernels.PSFPred{pred(LShipDate, 19950316, 99999999)},
		},
		Body: func(e *Exec, scan *Relation) *Relation {
			cust := e.Filter(e.DS.Customer, func(r []int64) bool { return r[CMktSegment] == SegBuilding })
			ords := e.Filter(e.DS.Orders, func(r []int64) bool { return r[OOrderDate] < 19950315 })
			co := e.HashJoin(e.Project(cust, CCustKey), ords, 0, OCustKey)
			// co: 0 custkey | 1.. orders cols (orderkey at 1)
			col := e.HashJoin(e.Project(co, 1, 1+OOrderDate, 1+OShipPriority), scan, 0, 0)
			// col: 0 orderkey, 1 odate, 2 shippri | 3 okey, 4 price, 5 disc, 6 sdate
			g := e.GroupBy(col,
				func(r []int64) []int64 { return []int64{r[0], r[1], r[2]} },
				[]AggSpec{{Kind: AggSum, Value: func(r []int64) int64 { return revenue(r[4], r[5]) }}})
			return e.Limit(e.OrderBy(g, func(a, b []int64) bool { return a[3] > b[3] }), 10)
		},
	}
}

// --- Q4: order priority checking ---
func q4() *QuerySpec {
	// scan cols: 0 orderkey, 1 commitdate, 2 receiptdate
	return &QuerySpec{
		ID: 4, Name: "order-priority", Table: "lineitem",
		PSF: kernels.PSF{
			NumFields: LineitemCols,
			Project:   []int{LOrderKey, LCommitDate, LReceiptDate},
		},
		Body: func(e *Exec, scan *Relation) *Relation {
			late := e.Filter(scan, func(r []int64) bool { return r[1] < r[2] })
			ords := e.Filter(e.DS.Orders, func(r []int64) bool {
				return r[OOrderDate] >= 19930701 && r[OOrderDate] < 19931001
			})
			matched := e.SemiJoin(late, 0, ords, OOrderKey)
			g := e.GroupBy(matched,
				func(r []int64) []int64 { return []int64{r[OOrderPriority]} },
				[]AggSpec{{Kind: AggCount}})
			return e.OrderBy(g, func(a, b []int64) bool { return a[0] < b[0] })
		},
	}
}

// --- Q5: local supplier volume ---
func q5() *QuerySpec {
	// scan cols: 0 orderkey, 1 suppkey, 2 price, 3 disc
	return &QuerySpec{
		ID: 5, Name: "local-supplier-volume", Table: "lineitem",
		PSF: kernels.PSF{
			NumFields: LineitemCols,
			Project:   []int{LOrderKey, LSuppKey, LExtendedPrice, LDiscount},
		},
		Body: func(e *Exec, scan *Relation) *Relation {
			// Region 2 (ASIA): nations n with n%5 == 2; orders in 1994.
			ords := e.Filter(e.DS.Orders, func(r []int64) bool {
				return r[OOrderDate] >= 19940101 && r[OOrderDate] < 19950101
			})
			cust := e.Filter(e.DS.Customer, func(r []int64) bool { return r[CNationKey]%5 == 2 })
			co := e.HashJoin(e.Project(cust, CCustKey, CNationKey), ords, 0, OCustKey)
			// co: 0 custkey, 1 cnation | 2.. orders (orderkey at 2)
			col := e.HashJoin(e.Project(co, 1, 2), scan, 1, 0)
			// col: 0 cnation, 1 orderkey | 2 okey, 3 suppkey, 4 price, 5 disc
			supNation := map[int64]int64{}
			for _, r := range e.DS.Supplier.Rows {
				supNation[r[SSuppKey]] = r[SNationKey]
			}
			local := e.Filter(col, func(r []int64) bool { return supNation[r[3]] == r[0] })
			g := e.GroupBy(local,
				func(r []int64) []int64 { return []int64{r[0]} },
				[]AggSpec{{Kind: AggSum, Value: func(r []int64) int64 { return revenue(r[4], r[5]) }}})
			return e.OrderBy(g, func(a, b []int64) bool { return a[1] > b[1] })
		},
	}
}

// --- Q6: forecasting revenue change ---
func q6() *QuerySpec {
	// scan cols: 0 qty, 1 price, 2 disc, 3 shipdate
	return &QuerySpec{
		ID: 6, Name: "revenue-forecast", Table: "lineitem",
		PSF: kernels.PSF{
			NumFields: LineitemCols,
			Project:   []int{LQuantity, LExtendedPrice, LDiscount, LShipDate},
			Preds: []kernels.PSFPred{
				pred(LShipDate, 19940101, 19941231),
				pred(LDiscount, 500, 700),
			},
		},
		Body: func(e *Exec, scan *Relation) *Relation {
			small := e.Filter(scan, func(r []int64) bool { return r[0] < 24 })
			g := e.GroupBy(small,
				func(r []int64) []int64 { return []int64{0} },
				[]AggSpec{{Kind: AggSum, Value: func(r []int64) int64 { return r[1] * r[2] / 10000 }}})
			return g
		},
	}
}

// --- Q7: volume shipping between two nations ---
func q7() *QuerySpec {
	// scan cols: 0 orderkey, 1 suppkey, 2 price, 3 disc, 4 shipdate
	return &QuerySpec{
		ID: 7, Name: "volume-shipping", Table: "lineitem",
		PSF: kernels.PSF{
			NumFields: LineitemCols,
			Project:   []int{LOrderKey, LSuppKey, LExtendedPrice, LDiscount, LShipDate},
			Preds:     []kernels.PSFPred{pred(LShipDate, 19950101, 19961231)},
		},
		Body: func(e *Exec, scan *Relation) *Relation {
			const n1, n2 = 6, 7 // FRANCE, GERMANY stand-ins
			supNation := map[int64]int64{}
			for _, r := range e.DS.Supplier.Rows {
				supNation[r[SSuppKey]] = r[SNationKey]
			}
			custNation := map[int64]int64{}
			for _, r := range e.DS.Customer.Rows {
				custNation[r[CCustKey]] = r[CNationKey]
			}
			ordCust := map[int64]int64{}
			for _, r := range e.DS.Orders.Rows {
				ordCust[r[OOrderKey]] = r[OCustKey]
			}
			e.Work.JoinUnits += costJoinProbe * float64(len(scan.Rows)+len(e.DS.Orders.Rows)+len(e.DS.Customer.Rows))
			pairs := e.Filter(scan, func(r []int64) bool {
				sn := supNation[r[1]]
				cn := custNation[ordCust[r[0]]]
				return (sn == n1 && cn == n2) || (sn == n2 && cn == n1)
			})
			g := e.GroupBy(pairs,
				func(r []int64) []int64 { return []int64{supNation[r[1]], r[4] / 10000} },
				[]AggSpec{{Kind: AggSum, Value: func(r []int64) int64 { return revenue(r[2], r[3]) }}})
			return e.OrderBy(g, func(a, b []int64) bool {
				if a[0] != b[0] {
					return a[0] < b[0]
				}
				return a[1] < b[1]
			})
		},
	}
}

// --- Q8: national market share ---
func q8() *QuerySpec {
	// scan cols: 0 partkey, 1 suppkey, 2 orderkey, 3 price, 4 disc
	return &QuerySpec{
		ID: 8, Name: "market-share", Table: "lineitem",
		PSF: kernels.PSF{
			NumFields: LineitemCols,
			Project:   []int{LPartKey, LSuppKey, LOrderKey, LExtendedPrice, LDiscount},
		},
		Body: func(e *Exec, scan *Relation) *Relation {
			parts := map[int64]bool{}
			for _, r := range e.DS.Part.Rows {
				if r[PType] == 100 { // one specific type
					parts[r[PPartKey]] = true
				}
			}
			ordDate := map[int64]int64{}
			ordCust := map[int64]int64{}
			for _, r := range e.DS.Orders.Rows {
				ordDate[r[OOrderKey]] = r[OOrderDate]
				ordCust[r[OOrderKey]] = r[OCustKey]
			}
			custNation := map[int64]int64{}
			for _, r := range e.DS.Customer.Rows {
				custNation[r[CCustKey]] = r[CNationKey]
			}
			supNation := map[int64]int64{}
			for _, r := range e.DS.Supplier.Rows {
				supNation[r[SSuppKey]] = r[SNationKey]
			}
			e.Work.JoinUnits += costJoinProbe * float64(len(scan.Rows))
			sel := e.Filter(scan, func(r []int64) bool {
				if !parts[r[0]] {
					return false
				}
				d := ordDate[r[2]]
				if d < 19950101 || d > 19961231 {
					return false
				}
				return custNation[ordCust[r[2]]]%5 == 1 // region AMERICA stand-in
			})
			g := e.GroupBy(sel,
				func(r []int64) []int64 {
					year := ordDate[r[2]] / 10000
					isNation := int64(0)
					if supNation[r[1]] == 11 {
						isNation = 1
					}
					return []int64{year, isNation}
				},
				[]AggSpec{{Kind: AggSum, Value: func(r []int64) int64 { return revenue(r[3], r[4]) }}})
			return e.OrderBy(g, func(a, b []int64) bool {
				if a[0] != b[0] {
					return a[0] < b[0]
				}
				return a[1] < b[1]
			})
		},
	}
}

// --- Q9: product type profit measure ---
func q9() *QuerySpec {
	// scan cols: 0 partkey, 1 suppkey, 2 orderkey, 3 qty, 4 price, 5 disc
	return &QuerySpec{
		ID: 9, Name: "product-profit", Table: "lineitem",
		PSF: kernels.PSF{
			NumFields: LineitemCols,
			Project:   []int{LPartKey, LSuppKey, LOrderKey, LQuantity, LExtendedPrice, LDiscount},
		},
		Body: func(e *Exec, scan *Relation) *Relation {
			greenParts := map[int64]bool{}
			for _, r := range e.DS.Part.Rows {
				if r[PName] < 1000 { // "%green%" bucket band
					greenParts[r[PPartKey]] = true
				}
			}
			cost := map[[2]int64]int64{}
			for _, r := range e.DS.Partsupp.Rows {
				cost[[2]int64{r[PSPartKey], r[PSSuppKey]}] = r[PSSupplyCost]
			}
			ordYear := map[int64]int64{}
			for _, r := range e.DS.Orders.Rows {
				ordYear[r[OOrderKey]] = r[OOrderDate] / 10000
			}
			supNation := map[int64]int64{}
			for _, r := range e.DS.Supplier.Rows {
				supNation[r[SSuppKey]] = r[SNationKey]
			}
			e.Work.JoinUnits += costJoinProbe * float64(len(scan.Rows)*2)
			sel := e.Filter(scan, func(r []int64) bool { return greenParts[r[0]] })
			g := e.GroupBy(sel,
				func(r []int64) []int64 { return []int64{supNation[r[1]], ordYear[r[2]]} },
				[]AggSpec{{Kind: AggSum, Value: func(r []int64) int64 {
					return revenue(r[4], r[5]) - cost[[2]int64{r[0], r[1]}]*r[3]
				}}})
			return e.OrderBy(g, func(a, b []int64) bool {
				if a[0] != b[0] {
					return a[0] < b[0]
				}
				return a[1] > b[1]
			})
		},
	}
}

// --- Q10: returned item reporting ---
func q10() *QuerySpec {
	// scan cols: 0 orderkey, 1 price, 2 disc, 3 returnflag
	return &QuerySpec{
		ID: 10, Name: "returned-items", Table: "lineitem",
		PSF: kernels.PSF{
			NumFields: LineitemCols,
			Project:   []int{LOrderKey, LExtendedPrice, LDiscount, LReturnFlag},
			Preds:     []kernels.PSFPred{pred(LReturnFlag, FlagR, FlagR)},
		},
		Body: func(e *Exec, scan *Relation) *Relation {
			ords := e.Filter(e.DS.Orders, func(r []int64) bool {
				return r[OOrderDate] >= 19931001 && r[OOrderDate] < 19940101
			})
			ol := e.HashJoin(e.Project(ords, OOrderKey, OCustKey), scan, 0, 0)
			// 0 okey, 1 custkey | 2 okey, 3 price, 4 disc, 5 flag
			g := e.GroupBy(ol,
				func(r []int64) []int64 { return []int64{r[1]} },
				[]AggSpec{{Kind: AggSum, Value: func(r []int64) int64 { return revenue(r[3], r[4]) }}})
			return e.Limit(e.OrderBy(g, func(a, b []int64) bool { return a[1] > b[1] }), 20)
		},
	}
}

// --- Q11: important stock identification ---
func q11() *QuerySpec {
	// scan cols: 0 partkey, 1 suppkey, 2 availqty, 3 supplycost
	return &QuerySpec{
		ID: 11, Name: "important-stock", Table: "partsupp",
		PSF: kernels.PSF{
			NumFields: PartsuppCols,
			Project:   []int{PSPartKey, PSSuppKey, PSAvailQty, PSSupplyCost},
		},
		Body: func(e *Exec, scan *Relation) *Relation {
			const nation = 7 // GERMANY stand-in
			sup := map[int64]bool{}
			for _, r := range e.DS.Supplier.Rows {
				if r[SNationKey] == nation {
					sup[r[SSuppKey]] = true
				}
			}
			nat := e.Filter(scan, func(r []int64) bool { return sup[r[1]] })
			var total int64
			for _, r := range nat.Rows {
				total += r[3] * r[2]
			}
			g := e.GroupBy(nat,
				func(r []int64) []int64 { return []int64{r[0]} },
				[]AggSpec{{Kind: AggSum, Value: func(r []int64) int64 { return r[3] * r[2] }}})
			threshold := total / 10000 // fraction 0.0001
			out := e.Filter(g, func(r []int64) bool { return r[1] > threshold })
			return e.OrderBy(out, func(a, b []int64) bool { return a[1] > b[1] })
		},
	}
}

// --- Q12: shipping modes and order priority ---
func q12() *QuerySpec {
	// scan cols: 0 orderkey, 1 shipmode, 2 commitdate, 3 receiptdate, 4 shipdate
	return &QuerySpec{
		ID: 12, Name: "shipping-modes", Table: "lineitem",
		PSF: kernels.PSF{
			NumFields: LineitemCols,
			Project:   []int{LOrderKey, LShipMode, LCommitDate, LReceiptDate, LShipDate},
			Preds: []kernels.PSFPred{
				pred(LShipMode, ModeRail, ModeShip), // adjacent-code stand-in for IN ('MAIL','SHIP')
				pred(LReceiptDate, 19940101, 19941231),
			},
		},
		Body: func(e *Exec, scan *Relation) *Relation {
			ok := e.Filter(scan, func(r []int64) bool { return r[2] < r[3] && r[4] < r[2] })
			pri := map[int64]int64{}
			for _, r := range e.DS.Orders.Rows {
				pri[r[OOrderKey]] = r[OOrderPriority]
			}
			e.Work.JoinUnits += costJoinProbe * float64(len(ok.Rows))
			g := e.GroupBy(ok,
				func(r []int64) []int64 { return []int64{r[1]} },
				[]AggSpec{
					{Kind: AggSum, Value: func(r []int64) int64 {
						if p := pri[r[0]]; p <= 1 {
							return 1
						}
						return 0
					}},
					{Kind: AggSum, Value: func(r []int64) int64 {
						if p := pri[r[0]]; p > 1 {
							return 1
						}
						return 0
					}},
				})
			return e.OrderBy(g, func(a, b []int64) bool { return a[0] < b[0] })
		},
	}
}

// --- Q13: customer distribution ---
func q13() *QuerySpec {
	// scan cols: 0 orderkey, 1 custkey, 2 comment
	return &QuerySpec{
		ID: 13, Name: "customer-distribution", Table: "orders",
		PSF: kernels.PSF{
			NumFields: OrdersCols,
			Project:   []int{OOrderKey, OCustKey, OComment},
			Preds:     []kernels.PSFPred{pred(OComment, 0, 9499)}, // NOT LIKE '%special%requests%' bucket band
		},
		Body: func(e *Exec, scan *Relation) *Relation {
			counts := e.GroupBy(scan,
				func(r []int64) []int64 { return []int64{r[1]} },
				[]AggSpec{{Kind: AggCount}})
			perCust := map[int64]int64{}
			for _, r := range counts.Rows {
				perCust[r[0]] = r[1]
			}
			e.Work.JoinUnits += costJoinProbe * float64(len(e.DS.Customer.Rows))
			dist := e.GroupBy(e.DS.Customer,
				func(r []int64) []int64 { return []int64{perCust[r[CCustKey]]} },
				[]AggSpec{{Kind: AggCount}})
			return e.OrderBy(dist, func(a, b []int64) bool { return a[1] > b[1] })
		},
	}
}

// --- Q14: promotion effect ---
func q14() *QuerySpec {
	// scan cols: 0 partkey, 1 price, 2 disc, 3 shipdate
	return &QuerySpec{
		ID: 14, Name: "promotion-effect", Table: "lineitem",
		PSF: kernels.PSF{
			NumFields: LineitemCols,
			Project:   []int{LPartKey, LExtendedPrice, LDiscount, LShipDate},
			Preds:     []kernels.PSFPred{pred(LShipDate, 19950901, 19950930)},
		},
		Body: func(e *Exec, scan *Relation) *Relation {
			promo := map[int64]bool{}
			for _, r := range e.DS.Part.Rows {
				if r[PType] < 30 { // PROMO% band
					promo[r[PPartKey]] = true
				}
			}
			e.Work.JoinUnits += costJoinProbe * float64(len(scan.Rows))
			var promoRev, totalRev int64
			for _, r := range scan.Rows {
				rev := revenue(r[1], r[2])
				totalRev += rev
				if promo[r[0]] {
					promoRev += rev
				}
			}
			e.Work.AggUnits += costAggRow * float64(len(scan.Rows))
			share := int64(0)
			if totalRev > 0 {
				share = promoRev * 10000 / totalRev
			}
			return FromRows("q14", [][]int64{{share, promoRev, totalRev}})
		},
	}
}

// --- Q15: top supplier ---
func q15() *QuerySpec {
	// scan cols: 0 suppkey, 1 price, 2 disc, 3 shipdate
	return &QuerySpec{
		ID: 15, Name: "top-supplier", Table: "lineitem",
		PSF: kernels.PSF{
			NumFields: LineitemCols,
			Project:   []int{LSuppKey, LExtendedPrice, LDiscount, LShipDate},
			Preds:     []kernels.PSFPred{pred(LShipDate, 19960101, 19960331)},
		},
		Body: func(e *Exec, scan *Relation) *Relation {
			g := e.GroupBy(scan,
				func(r []int64) []int64 { return []int64{r[0]} },
				[]AggSpec{{Kind: AggSum, Value: func(r []int64) int64 { return revenue(r[1], r[2]) }}})
			var max int64
			for _, r := range g.Rows {
				if r[1] > max {
					max = r[1]
				}
			}
			top := e.Filter(g, func(r []int64) bool { return r[1] == max })
			return e.OrderBy(top, func(a, b []int64) bool { return a[0] < b[0] })
		},
	}
}

// --- Q16: parts/supplier relationship ---
func q16() *QuerySpec {
	// scan cols: 0 partkey, 1 suppkey
	return &QuerySpec{
		ID: 16, Name: "parts-supplier", Table: "partsupp",
		PSF: kernels.PSF{
			NumFields: PartsuppCols,
			Project:   []int{PSPartKey, PSSuppKey},
		},
		Body: func(e *Exec, scan *Relation) *Relation {
			attrs := map[int64][3]int64{}
			for _, r := range e.DS.Part.Rows {
				if r[PBrand] != 22 && !(r[PType] >= 60 && r[PType] < 75) {
					switch r[PSize] {
					case 49, 14, 23, 45, 19, 3, 36, 9:
						attrs[r[PPartKey]] = [3]int64{r[PBrand], r[PType], r[PSize]}
					}
				}
			}
			e.Work.JoinUnits += costJoinProbe * float64(len(scan.Rows))
			sel := e.Filter(scan, func(r []int64) bool { _, ok := attrs[r[0]]; return ok })
			// Distinct suppliers per (brand, type, size).
			g := e.GroupBy(sel,
				func(r []int64) []int64 {
					a := attrs[r[0]]
					return []int64{a[0], a[1], a[2], r[1]}
				},
				[]AggSpec{{Kind: AggCount}})
			cnt := e.GroupBy(g,
				func(r []int64) []int64 { return []int64{r[0], r[1], r[2]} },
				[]AggSpec{{Kind: AggCount}})
			return e.OrderBy(cnt, func(a, b []int64) bool { return a[3] > b[3] })
		},
	}
}

// --- Q17: small-quantity-order revenue ---
func q17() *QuerySpec {
	// scan cols: 0 partkey, 1 qty, 2 price
	return &QuerySpec{
		ID: 17, Name: "small-quantity", Table: "lineitem",
		PSF: kernels.PSF{
			NumFields: LineitemCols,
			Project:   []int{LPartKey, LQuantity, LExtendedPrice},
		},
		Body: func(e *Exec, scan *Relation) *Relation {
			target := map[int64]bool{}
			for _, r := range e.DS.Part.Rows {
				if r[PBrand] == 13 && r[PContainer] == 7 {
					target[r[PPartKey]] = true
				}
			}
			e.Work.JoinUnits += costJoinProbe * float64(len(scan.Rows))
			sel := e.Filter(scan, func(r []int64) bool { return target[r[0]] })
			avg := e.GroupBy(sel,
				func(r []int64) []int64 { return []int64{r[0]} },
				[]AggSpec{{Kind: AggAvg, Value: func(r []int64) int64 { return r[1] }}})
			avgQty := map[int64]int64{}
			for _, r := range avg.Rows {
				avgQty[r[0]] = r[1]
			}
			small := e.Filter(sel, func(r []int64) bool { return r[1]*5 < avgQty[r[0]] })
			var sum int64
			for _, r := range small.Rows {
				sum += r[2]
			}
			return FromRows("q17", [][]int64{{sum / 7}})
		},
	}
}

// --- Q18: large volume customer ---
func q18() *QuerySpec {
	// scan cols: 0 orderkey, 1 qty
	return &QuerySpec{
		ID: 18, Name: "large-volume-customer", Table: "lineitem",
		PSF: kernels.PSF{
			NumFields: LineitemCols,
			Project:   []int{LOrderKey, LQuantity},
		},
		Body: func(e *Exec, scan *Relation) *Relation {
			g := e.GroupBy(scan,
				func(r []int64) []int64 { return []int64{r[0]} },
				[]AggSpec{{Kind: AggSum, Value: func(r []int64) int64 { return r[1] }}})
			big := e.Filter(g, func(r []int64) bool { return r[1] > 250 })
			bo := e.HashJoin(big, e.DS.Orders, 0, OOrderKey)
			// 0 okey, 1 sumqty | 2.. orders cols
			out := e.Project(bo, 2+OCustKey, 0, 2+OOrderDate, 2+OTotalPrice, 1)
			return e.Limit(e.OrderBy(out, func(a, b []int64) bool {
				if a[3] != b[3] {
					return a[3] > b[3]
				}
				return a[2] < b[2]
			}), 100)
		},
	}
}

// --- Q19: discounted revenue (disjunctive predicates) ---
func q19() *QuerySpec {
	// scan cols: 0 partkey, 1 qty, 2 price, 3 disc, 4 shipmode
	return &QuerySpec{
		ID: 19, Name: "discounted-revenue", Table: "lineitem",
		PSF: kernels.PSF{
			NumFields: LineitemCols,
			Project:   []int{LPartKey, LQuantity, LExtendedPrice, LDiscount, LShipMode},
			Preds:     []kernels.PSFPred{pred(LShipMode, ModeAir, ModeAirReg)},
		},
		Body: func(e *Exec, scan *Relation) *Relation {
			brandOf := map[int64]int64{}
			sizeOf := map[int64]int64{}
			for _, r := range e.DS.Part.Rows {
				brandOf[r[PPartKey]] = r[PBrand]
				sizeOf[r[PPartKey]] = r[PSize]
			}
			e.Work.JoinUnits += costJoinProbe * float64(len(scan.Rows))
			sel := e.Filter(scan, func(r []int64) bool {
				b := brandOf[r[0]]
				s := sizeOf[r[0]]
				q := r[1]
				switch {
				case b == 12 && q >= 1 && q <= 11 && s <= 5:
					return true
				case b == 23 && q >= 10 && q <= 20 && s <= 10:
					return true
				case b == 34 && q >= 20 && q <= 30 && s <= 15:
					return true
				}
				return false
			})
			var rev int64
			for _, r := range sel.Rows {
				rev += revenue(r[2], r[3])
			}
			return FromRows("q19", [][]int64{{rev}})
		},
	}
}

// --- Q20: potential part promotion ---
func q20() *QuerySpec {
	// scan cols: 0 partkey, 1 suppkey, 2 availqty
	return &QuerySpec{
		ID: 20, Name: "potential-promotion", Table: "partsupp",
		PSF: kernels.PSF{
			NumFields: PartsuppCols,
			Project:   []int{PSPartKey, PSSuppKey, PSAvailQty},
		},
		Body: func(e *Exec, scan *Relation) *Relation {
			forest := map[int64]bool{}
			for _, r := range e.DS.Part.Rows {
				if r[PName] >= 2000 && r[PName] < 3000 { // 'forest%' bucket band
					forest[r[PPartKey]] = true
				}
			}
			// Half of 1994 shipments per (part, supplier).
			shipped := map[[2]int64]int64{}
			li := e.Filter(e.DS.Lineitem, func(r []int64) bool {
				return r[LShipDate] >= 19940101 && r[LShipDate] < 19950101 && forest[r[LPartKey]]
			})
			for _, r := range li.Rows {
				shipped[[2]int64{r[LPartKey], r[LSuppKey]}] += r[LQuantity]
			}
			sel := e.Filter(scan, func(r []int64) bool {
				if !forest[r[0]] {
					return false
				}
				return r[2]*2 > shipped[[2]int64{r[0], r[1]}]
			})
			supOK := map[int64]bool{}
			for _, r := range sel.Rows {
				supOK[r[1]] = true
			}
			out := e.Filter(e.DS.Supplier, func(r []int64) bool {
				return supOK[r[SSuppKey]] && r[SNationKey] == 3 // CANADA stand-in
			})
			return e.OrderBy(e.Project(out, SSuppKey, SName), func(a, b []int64) bool { return a[0] < b[0] })
		},
	}
}

// --- Q21: suppliers who kept orders waiting ---
func q21() *QuerySpec {
	// scan cols: 0 orderkey, 1 suppkey, 2 commitdate, 3 receiptdate
	return &QuerySpec{
		ID: 21, Name: "suppliers-kept-waiting", Table: "lineitem",
		PSF: kernels.PSF{
			NumFields: LineitemCols,
			Project:   []int{LOrderKey, LSuppKey, LCommitDate, LReceiptDate},
		},
		Body: func(e *Exec, scan *Relation) *Relation {
			const nation = 20 // SAUDI ARABIA stand-in
			supNation := map[int64]int64{}
			for _, r := range e.DS.Supplier.Rows {
				supNation[r[SSuppKey]] = r[SNationKey]
			}
			statusF := map[int64]bool{}
			for _, r := range e.DS.Orders.Rows {
				if r[OOrderStatus] == 0 {
					statusF[r[OOrderKey]] = true
				}
			}
			// Orders with >1 distinct supplier, where exactly the target
			// supplier was late.
			type ostat struct {
				sups     map[int64]bool
				lateSups map[int64]bool
			}
			orders := map[int64]*ostat{}
			for _, r := range scan.Rows {
				o := orders[r[0]]
				if o == nil {
					o = &ostat{sups: map[int64]bool{}, lateSups: map[int64]bool{}}
					orders[r[0]] = o
				}
				o.sups[r[1]] = true
				if r[3] > r[2] {
					o.lateSups[r[1]] = true
				}
			}
			e.Work.AggUnits += costAggRow * float64(len(scan.Rows))
			counts := map[int64]int64{}
			for okey, o := range orders {
				if !statusF[okey] || len(o.sups) < 2 || len(o.lateSups) != 1 {
					continue
				}
				for s := range o.lateSups {
					if supNation[s] == nation {
						counts[s]++
					}
				}
			}
			var rows [][]int64
			for s, c := range counts {
				rows = append(rows, []int64{s, c})
			}
			rel := FromRows("q21", rows)
			return e.Limit(e.OrderBy(rel, func(a, b []int64) bool {
				if a[1] != b[1] {
					return a[1] > b[1]
				}
				return a[0] < b[0]
			}), 100)
		},
	}
}

// --- Q22: global sales opportunity ---
func q22() *QuerySpec {
	// scan cols: 0 custkey, 1 phone, 2 acctbal
	return &QuerySpec{
		ID: 22, Name: "sales-opportunity", Table: "customer",
		PSF: kernels.PSF{
			NumFields: CustomerCols,
			Project:   []int{CCustKey, CPhone, CAcctBal},
			Preds:     []kernels.PSFPred{pred(CAcctBal, 600000, 1<<31 - 1)},
		},
		Body: func(e *Exec, scan *Relation) *Relation {
			// Average positive balance of the rich subset.
			var sum, n int64
			for _, r := range scan.Rows {
				sum += r[2]
				n++
			}
			avg := int64(0)
			if n > 0 {
				avg = sum / n
			}
			rich := e.Filter(scan, func(r []int64) bool { return r[2] > avg })
			noOrders := e.AntiJoin(e.DS.Orders, OCustKey, rich, 0)
			g := e.GroupBy(noOrders,
				func(r []int64) []int64 { return []int64{r[1] % 7} }, // country-code bucket
				[]AggSpec{
					{Kind: AggCount},
					{Kind: AggSum, Value: func(r []int64) int64 { return r[2] }},
				})
			return e.OrderBy(g, func(a, b []int64) bool { return a[0] < b[0] })
		},
	}
}
