package tpch

import (
	"fmt"
	"sort"
)

// WorkMeter accumulates abstract host-CPU work units while a query plan
// executes. Costs are per row touched, weighted by operator kind; the host
// model converts work units into time. Parse cost is tracked separately
// because offloading Parse/Select/Filter into the SSD removes exactly that
// component (plus shrinking every downstream operator's input).
type WorkMeter struct {
	ParseUnits float64
	ScanUnits  float64
	JoinUnits  float64
	AggUnits   float64
	SortUnits  float64
}

// Operator row costs in work units. Ratios are what matter: parsing a CSV
// row is far more expensive than probing a hash table with it.
const (
	costParseByte = 1.0  // per input byte (byte-at-a-time tokenizing)
	costScanRow   = 4.0  // predicate evaluation on a materialized row
	costJoinBuild = 8.0  // hash insert
	costJoinProbe = 6.0  // hash probe
	costAggRow    = 6.0  // group lookup + accumulate
	costSortRow   = 12.0 // comparison-sort share per row
)

// Total returns all work units.
func (w *WorkMeter) Total() float64 {
	return w.ParseUnits + w.ScanUnits + w.JoinUnits + w.AggUnits + w.SortUnits
}

// Add accumulates another meter.
func (w *WorkMeter) Add(o WorkMeter) {
	w.ParseUnits += o.ParseUnits
	w.ScanUnits += o.ScanUnits
	w.JoinUnits += o.JoinUnits
	w.AggUnits += o.AggUnits
	w.SortUnits += o.SortUnits
}

// Exec is an execution context binding a dataset and a work meter.
type Exec struct {
	DS   *Dataset
	Work WorkMeter
}

// NewExec returns an execution context over ds.
func NewExec(ds *Dataset) *Exec { return &Exec{DS: ds} }

// ChargeParse records host-side parsing of n input bytes (the work the PSF
// offload eliminates).
func (e *Exec) ChargeParse(bytes int64) {
	e.Work.ParseUnits += costParseByte * float64(bytes)
}

// Filter returns the rows of r satisfying pred.
func (e *Exec) Filter(r *Relation, pred func(row []int64) bool) *Relation {
	out := &Relation{Name: r.Name + "_f", ColNames: r.ColNames}
	e.Work.ScanUnits += costScanRow * float64(len(r.Rows))
	for _, row := range r.Rows {
		if pred(row) {
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// Project returns the chosen columns of r.
func (e *Exec) Project(r *Relation, cols ...int) *Relation {
	out := &Relation{Name: r.Name + "_p"}
	for _, c := range cols {
		name := fmt.Sprintf("c%d", c)
		if c < len(r.ColNames) {
			name = r.ColNames[c]
		}
		out.ColNames = append(out.ColNames, name)
	}
	e.Work.ScanUnits += costScanRow * float64(len(r.Rows)) / 4 // cheap copy
	for _, row := range r.Rows {
		nr := make([]int64, len(cols))
		for i, c := range cols {
			nr[i] = row[c]
		}
		out.Rows = append(out.Rows, nr)
	}
	return out
}

// HashJoin joins left and right on left[lk] == right[rk], concatenating
// rows. The smaller relation should be on the left (build side).
func (e *Exec) HashJoin(left, right *Relation, lk, rk int) *Relation {
	out := &Relation{
		Name:     left.Name + "⋈" + right.Name,
		ColNames: append(append([]string{}, left.ColNames...), right.ColNames...),
	}
	e.Work.JoinUnits += costJoinBuild * float64(len(left.Rows))
	e.Work.JoinUnits += costJoinProbe * float64(len(right.Rows))
	ht := make(map[int64][][]int64, len(left.Rows))
	for _, row := range left.Rows {
		ht[row[lk]] = append(ht[row[lk]], row)
	}
	for _, rrow := range right.Rows {
		for _, lrow := range ht[rrow[rk]] {
			nr := make([]int64, 0, len(lrow)+len(rrow))
			nr = append(nr, lrow...)
			nr = append(nr, rrow...)
			out.Rows = append(out.Rows, nr)
		}
	}
	return out
}

// SemiJoin keeps right rows whose key appears in left (for EXISTS/IN).
func (e *Exec) SemiJoin(left *Relation, lk int, right *Relation, rk int) *Relation {
	out := &Relation{Name: right.Name + "_semi", ColNames: right.ColNames}
	e.Work.JoinUnits += costJoinBuild * float64(len(left.Rows))
	e.Work.JoinUnits += costJoinProbe * float64(len(right.Rows))
	set := make(map[int64]bool, len(left.Rows))
	for _, row := range left.Rows {
		set[row[lk]] = true
	}
	for _, row := range right.Rows {
		if set[row[rk]] {
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// AntiJoin keeps right rows whose key does NOT appear in left.
func (e *Exec) AntiJoin(left *Relation, lk int, right *Relation, rk int) *Relation {
	out := &Relation{Name: right.Name + "_anti", ColNames: right.ColNames}
	e.Work.JoinUnits += costJoinBuild * float64(len(left.Rows))
	e.Work.JoinUnits += costJoinProbe * float64(len(right.Rows))
	set := make(map[int64]bool, len(left.Rows))
	for _, row := range left.Rows {
		set[row[lk]] = true
	}
	for _, row := range right.Rows {
		if !set[row[rk]] {
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// AggSpec is one aggregate over a grouped relation.
type AggSpec struct {
	Kind AggKind
	// Value extracts the aggregated value from a row (ignored for Count).
	Value func(row []int64) int64
}

// AggKind enumerates aggregates.
type AggKind int

// Aggregate kinds.
const (
	AggSum AggKind = iota
	AggCount
	AggMin
	AggMax
	AggAvg
)

// GroupBy groups r by the key function and computes aggregates. The result
// rows are [groupKeyCols..., agg0, agg1, ...].
func (e *Exec) GroupBy(r *Relation, key func(row []int64) []int64, aggs []AggSpec) *Relation {
	e.Work.AggUnits += costAggRow * float64(len(r.Rows))
	type group struct {
		key    []int64
		sums   []int64
		counts []int64
		mins   []int64
		maxs   []int64
		n      int64
	}
	groups := map[string]*group{}
	var order []string
	for _, row := range r.Rows {
		k := key(row)
		ks := keyString(k)
		g := groups[ks]
		if g == nil {
			g = &group{
				key:    k,
				sums:   make([]int64, len(aggs)),
				counts: make([]int64, len(aggs)),
				mins:   make([]int64, len(aggs)),
				maxs:   make([]int64, len(aggs)),
			}
			for i := range g.mins {
				g.mins[i] = 1<<63 - 1
				g.maxs[i] = -(1 << 63)
			}
			groups[ks] = g
			order = append(order, ks)
		}
		g.n++
		for i, a := range aggs {
			if a.Kind == AggCount {
				g.counts[i]++
				continue
			}
			v := a.Value(row)
			g.sums[i] += v
			g.counts[i]++
			if v < g.mins[i] {
				g.mins[i] = v
			}
			if v > g.maxs[i] {
				g.maxs[i] = v
			}
		}
	}
	out := &Relation{Name: r.Name + "_g"}
	for _, ks := range order {
		g := groups[ks]
		row := append([]int64{}, g.key...)
		for i, a := range aggs {
			switch a.Kind {
			case AggSum:
				row = append(row, g.sums[i])
			case AggCount:
				row = append(row, g.counts[i])
			case AggMin:
				row = append(row, g.mins[i])
			case AggMax:
				row = append(row, g.maxs[i])
			case AggAvg:
				if g.counts[i] > 0 {
					row = append(row, g.sums[i]/g.counts[i])
				} else {
					row = append(row, 0)
				}
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

func keyString(k []int64) string {
	b := make([]byte, 0, len(k)*9)
	for _, v := range k {
		for i := 0; i < 8; i++ {
			b = append(b, byte(v>>(8*i)))
		}
		b = append(b, ':')
	}
	return string(b)
}

// OrderBy sorts r by the comparison function (stable).
func (e *Exec) OrderBy(r *Relation, less func(a, b []int64) bool) *Relation {
	e.Work.SortUnits += costSortRow * float64(len(r.Rows))
	out := &Relation{Name: r.Name + "_s", ColNames: r.ColNames, Rows: append([][]int64{}, r.Rows...)}
	sort.SliceStable(out.Rows, func(i, j int) bool { return less(out.Rows[i], out.Rows[j]) })
	return out
}

// Limit truncates r to n rows.
func (e *Exec) Limit(r *Relation, n int) *Relation {
	if len(r.Rows) <= n {
		return r
	}
	return &Relation{Name: r.Name, ColNames: r.ColNames, Rows: r.Rows[:n]}
}

// FromRows wraps pre-filtered rows (e.g. tuples returned by the SSD's PSF
// offload) as a relation without charging scan work — the SSD already did
// it.
func FromRows(name string, rows [][]int64) *Relation {
	return &Relation{Name: name, Rows: rows}
}
