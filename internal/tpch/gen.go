package tpch

import (
	"bytes"
	"math/rand"
	"strconv"
)

// Row counts at SF=1, scaled linearly (dimension tables stay fixed as in
// TPC-H).
const (
	sfSupplier = 10000
	sfCustomer = 150000
	sfPart     = 200000
	sfOrders   = 1500000
)

// Generate builds a deterministic dataset at scale factor sf (e.g. 0.001
// for quick tests, 0.01 for benchmarks). Seed variation is deliberate and
// fixed so experiment results are reproducible.
func Generate(sf float64) *Dataset {
	if sf <= 0 {
		sf = 0.001
	}
	d := &Dataset{SF: sf}
	rng := rand.New(rand.NewSource(20220622)) // the MICRO'22 submission date

	d.Region = genRegion()
	d.Nation = genNation()
	d.Supplier = genSupplier(rng, scale(sfSupplier, sf, 10))
	d.Customer = genCustomer(rng, scale(sfCustomer, sf, 30))
	d.Part = genPart(rng, scale(sfPart, sf, 40))
	d.Partsupp = genPartsupp(rng, d.Part.NumRows())
	nOrders := scale(sfOrders, sf, 50)
	d.Orders, d.Lineitem = genOrdersLineitem(rng, nOrders, d.Customer.NumRows(), d.Part.NumRows(), d.Supplier.NumRows())
	return d
}

func scale(base int, sf float64, min int) int {
	n := int(float64(base) * sf)
	if n < min {
		n = min
	}
	return n
}

func genRegion() *Relation {
	r := &Relation{Name: "region", ColNames: []string{"r_regionkey", "r_name", "r_comment"}}
	for i := 0; i < 5; i++ {
		r.Rows = append(r.Rows, []int64{int64(i), int64(i), int64(i * 7)})
	}
	return r
}

func genNation() *Relation {
	r := &Relation{Name: "nation", ColNames: []string{"n_nationkey", "n_name", "n_regionkey", "n_comment"}}
	for i := 0; i < 25; i++ {
		r.Rows = append(r.Rows, []int64{int64(i), int64(i), int64(i % 5), int64(i * 3)})
	}
	return r
}

func genSupplier(rng *rand.Rand, n int) *Relation {
	r := &Relation{Name: "supplier", ColNames: []string{"s_suppkey", "s_name", "s_address", "s_nationkey", "s_phone", "s_acctbal", "s_comment"}}
	for i := 0; i < n; i++ {
		r.Rows = append(r.Rows, []int64{
			int64(i + 1),
			int64(rng.Intn(1 << 20)),
			int64(rng.Intn(1 << 20)),
			int64(rng.Intn(25)),
			int64(rng.Intn(1 << 30)),
			int64(rng.Intn(1100000)), // 0 .. $11,000.00 in cents
			int64(rng.Intn(10000)),   // comment hash bucket
		})
	}
	return r
}

func genCustomer(rng *rand.Rand, n int) *Relation {
	r := &Relation{Name: "customer", ColNames: []string{"c_custkey", "c_name", "c_address", "c_nationkey", "c_phone", "c_acctbal", "c_mktsegment", "c_comment"}}
	for i := 0; i < n; i++ {
		r.Rows = append(r.Rows, []int64{
			int64(i + 1),
			int64(rng.Intn(1 << 20)),
			int64(rng.Intn(1 << 20)),
			int64(rng.Intn(25)),
			int64(rng.Intn(1 << 30)),
			int64(rng.Intn(1100000)),
			int64(rng.Intn(numSegments)),
			int64(rng.Intn(10000)),
		})
	}
	return r
}

func genPart(rng *rand.Rand, n int) *Relation {
	r := &Relation{Name: "part", ColNames: []string{"p_partkey", "p_name", "p_mfgr", "p_brand", "p_type", "p_size", "p_container", "p_retailprice", "p_comment"}}
	for i := 0; i < n; i++ {
		mfgr := rng.Intn(5)
		brand := mfgr*5 + rng.Intn(5) // 25 brands, correlated with mfgr
		r.Rows = append(r.Rows, []int64{
			int64(i + 1),
			int64(rng.Intn(10000)),
			int64(mfgr),
			int64(brand),
			int64(rng.Intn(150)), // 150 type strings in TPC-H
			int64(1 + rng.Intn(50)),
			int64(rng.Intn(40)),
			int64(90000 + rng.Intn(100000)), // ~$900-$1900 in cents
			int64(rng.Intn(10000)),
		})
	}
	return r
}

func genPartsupp(rng *rand.Rand, nParts int) *Relation {
	r := &Relation{Name: "partsupp", ColNames: []string{"ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost", "ps_comment"}}
	for p := 1; p <= nParts; p++ {
		for s := 0; s < 4; s++ { // 4 suppliers per part, as in TPC-H
			r.Rows = append(r.Rows, []int64{
				int64(p),
				int64(rng.Intn(1<<20))%int64(maxInt(1, nPartsuppSuppliers(nParts))) + 1,
				int64(1 + rng.Intn(9999)),
				int64(100 + rng.Intn(100000)),
				int64(rng.Intn(10000)),
			})
		}
	}
	return r
}

func nPartsuppSuppliers(nParts int) int {
	// Suppliers scale at 1/20th of parts in TPC-H.
	n := nParts / 20
	if n < 10 {
		n = 10
	}
	return n
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// genOrdersLineitem builds correlated orders and lineitem tables. Dates span
// 1992-01-01 .. 1998-08-02 as in TPC-H; each order has 1-7 line items.
func genOrdersLineitem(rng *rand.Rand, nOrders, nCust, nParts, nSupp int) (*Relation, *Relation) {
	orders := &Relation{Name: "orders", ColNames: []string{"o_orderkey", "o_custkey", "o_orderstatus", "o_totalprice", "o_orderdate", "o_orderpriority", "o_clerk", "o_shippriority", "o_comment"}}
	items := &Relation{Name: "lineitem", ColNames: []string{
		"l_orderkey", "l_partkey", "l_suppkey", "l_linenumber", "l_quantity",
		"l_extendedprice", "l_discount", "l_tax", "l_returnflag", "l_linestatus",
		"l_shipdate", "l_commitdate", "l_receiptdate", "l_shipinstruct", "l_shipmode", "l_comment"}}

	startDate := dateToInt(1992, 1, 1)
	cutoff := dateToInt(1995, 6, 17) // orders after this are still "open"
	for o := 1; o <= nOrders; o++ {
		odate := addDays(startDate, rng.Intn(2370)) // ~6.5 years
		nLines := 1 + rng.Intn(7)
		var total int64
		status := int64(2) // P
		allF, allO := true, true
		for l := 1; l <= nLines; l++ {
			ship := addDays(odate, 1+rng.Intn(121))
			commit := addDays(odate, 30+rng.Intn(60))
			receipt := addDays(ship, 1+rng.Intn(30))
			qty := int64(1 + rng.Intn(50))
			price := int64(90000+rng.Intn(100000)) * qty / 10 // cents
			disc := int64(rng.Intn(11)) * 100                 // 0-10% in bp
			tax := int64(rng.Intn(9)) * 100
			var flag, lstatus int64
			if ship > cutoff {
				flag = FlagN
				lstatus = StatusO
				allF = false
			} else {
				lstatus = StatusF
				allO = false
				if rng.Intn(2) == 0 {
					flag = FlagR
				} else {
					flag = FlagA
				}
			}
			items.Rows = append(items.Rows, []int64{
				int64(o),
				int64(1 + rng.Intn(nParts)),
				int64(1 + rng.Intn(nSupp)),
				int64(l),
				qty,
				price,
				disc,
				tax,
				flag,
				lstatus,
				ship,
				commit,
				receipt,
				int64(rng.Intn(4)),
				int64(rng.Intn(numShipModes)),
				int64(rng.Intn(10000)),
			})
			total += price
		}
		if allF {
			status = 0
		} else if allO {
			status = 1
		}
		orders.Rows = append(orders.Rows, []int64{
			int64(o),
			int64(1 + rng.Intn(nCust)),
			status,
			total,
			odate,
			int64(rng.Intn(5)),
			int64(rng.Intn(1000)),
			0,
			int64(rng.Intn(10000)),
		})
	}
	return orders, items
}

// CSVBytes serializes a relation as the '|'-delimited, newline-terminated
// all-integer CSV the PSF offload kernel parses — the flat on-flash format
// of the evaluation datasets.
func CSVBytes(r *Relation) []byte {
	var buf bytes.Buffer
	var scratch []byte
	for _, row := range r.Rows {
		for i, v := range row {
			if i > 0 {
				buf.WriteByte('|')
			}
			scratch = strconv.AppendInt(scratch[:0], v, 10)
			buf.Write(scratch)
		}
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// RowOffsets returns the byte offset of each row start in the CSV encoding
// (plus the final end offset), used for record-aligned task decomposition.
func RowOffsets(csv []byte) []int64 {
	offs := []int64{0}
	for i, c := range csv {
		if c == '\n' {
			offs = append(offs, int64(i+1))
		}
	}
	return offs
}
