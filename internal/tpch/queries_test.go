package tpch

import "testing"

// Cross-validation properties: query results checked against direct
// computations over the base tables (not against pinned goldens, so the
// checks survive generator changes).

func TestQ1SumsMatchDirect(t *testing.T) {
	ds := testDS(t)
	q, _ := QueryByID(1)
	res := q.Body(NewExec(ds), q.ScanRelation(ds))
	// Direct per-(flag,status) quantity sums.
	direct := map[[2]int64]int64{}
	for _, r := range ds.Lineitem.Rows {
		if r[LShipDate] <= 19980802 {
			direct[[2]int64{r[LReturnFlag], r[LLineStatus]}] += r[LQuantity]
		}
	}
	if len(res.Rows) != len(direct) {
		t.Fatalf("groups %d, want %d", len(res.Rows), len(direct))
	}
	for _, row := range res.Rows {
		if got, want := row[2], direct[[2]int64{row[0], row[1]}]; got != want {
			t.Fatalf("group (%d,%d) qty sum %d, want %d", row[0], row[1], got, want)
		}
	}
}

func TestQ3TopOrdersAreDescending(t *testing.T) {
	ds := testDS(t)
	q, _ := QueryByID(3)
	res := q.Body(NewExec(ds), q.ScanRelation(ds))
	if res.NumRows() > 10 {
		t.Fatalf("limit 10 violated: %d", res.NumRows())
	}
	for i := 1; i < res.NumRows(); i++ {
		if res.Rows[i][3] > res.Rows[i-1][3] {
			t.Fatal("revenue not descending")
		}
	}
}

func TestQ4CountsBoundedByOrders(t *testing.T) {
	ds := testDS(t)
	q, _ := QueryByID(4)
	res := q.Body(NewExec(ds), q.ScanRelation(ds))
	var total int64
	for _, r := range res.Rows {
		if r[1] < 0 {
			t.Fatal("negative count")
		}
		total += r[1]
	}
	if total > int64(ds.Orders.NumRows()) {
		t.Fatalf("counted %d late orders of %d total", total, ds.Orders.NumRows())
	}
}

func TestQ15TopSupplierIsMaximal(t *testing.T) {
	ds := testDS(t)
	q, _ := QueryByID(15)
	scan := q.ScanRelation(ds)
	res := q.Body(NewExec(ds), scan)
	if res.NumRows() == 0 {
		t.Skip("no revenue in window at this scale")
	}
	top := res.Rows[0][1]
	// No supplier in the scan window may exceed the reported maximum.
	bySupp := map[int64]int64{}
	for _, r := range scan.Rows {
		bySupp[r[0]] += revenue(r[1], r[2])
	}
	for s, rev := range bySupp {
		if rev > top {
			t.Fatalf("supplier %d revenue %d exceeds reported max %d", s, rev, top)
		}
	}
}

func TestQ18ThresholdRespected(t *testing.T) {
	ds := testDS(t)
	q, _ := QueryByID(18)
	res := q.Body(NewExec(ds), q.ScanRelation(ds))
	for _, r := range res.Rows {
		if r[4] <= 250 {
			t.Fatalf("order %d with qty %d below threshold in results", r[1], r[4])
		}
	}
	// Every reported order really has that total quantity.
	sums := map[int64]int64{}
	for _, li := range ds.Lineitem.Rows {
		sums[li[LOrderKey]] += li[LQuantity]
	}
	for _, r := range res.Rows {
		if sums[r[1]] != r[4] {
			t.Fatalf("order %d qty %d, direct %d", r[1], r[4], sums[r[1]])
		}
	}
}

func TestQ22RichCustomersHaveNoOrders(t *testing.T) {
	ds := testDS(t)
	q, _ := QueryByID(22)
	res := q.Body(NewExec(ds), q.ScanRelation(ds))
	var n int64
	for _, r := range res.Rows {
		n += r[1]
	}
	// The counted customers are a subset of all customers.
	if n > int64(ds.Customer.NumRows()) {
		t.Fatalf("%d customers counted of %d", n, ds.Customer.NumRows())
	}
}

func TestQ14ShareWithinBounds(t *testing.T) {
	ds := testDS(t)
	q, _ := QueryByID(14)
	res := q.Body(NewExec(ds), q.ScanRelation(ds))
	share := res.Rows[0][0]
	if share < 0 || share > 10000 {
		t.Fatalf("promo share %d outside [0,10000] basis points", share)
	}
	if res.Rows[0][1] > res.Rows[0][2] {
		t.Fatal("promo revenue exceeds total revenue")
	}
}

func TestOffloadSpecsAreConsistent(t *testing.T) {
	// Every query's PSF spec must build for both lowerings and its
	// predicates must reference projected columns of the right table arity.
	ds := testDS(t)
	for _, q := range Queries() {
		cols := ds.Tables()[q.Table].NumCols()
		if q.PSF.NumFields != cols {
			t.Errorf("Q%d: PSF fields %d, table %s has %d", q.ID, q.PSF.NumFields, q.Table, cols)
		}
	}
}
