package tpch

import (
	"bytes"
	"testing"
)

func testDS(t *testing.T) *Dataset {
	t.Helper()
	return Generate(0.002)
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(0.002)
	b := Generate(0.002)
	if a.Lineitem.NumRows() != b.Lineitem.NumRows() {
		t.Fatal("non-deterministic row counts")
	}
	for i := range a.Lineitem.Rows {
		for j := range a.Lineitem.Rows[i] {
			if a.Lineitem.Rows[i][j] != b.Lineitem.Rows[i][j] {
				t.Fatalf("non-deterministic cell [%d][%d]", i, j)
			}
		}
	}
}

func TestGenerateShapes(t *testing.T) {
	ds := testDS(t)
	if ds.Region.NumRows() != 5 || ds.Nation.NumRows() != 25 {
		t.Error("dimension tables wrong size")
	}
	if ds.Lineitem.NumRows() < ds.Orders.NumRows() {
		t.Error("lineitem smaller than orders")
	}
	if got := ds.Lineitem.NumCols(); got != LineitemCols {
		t.Errorf("lineitem cols = %d, want %d", got, LineitemCols)
	}
	// Scaling monotone.
	big := Generate(0.004)
	if big.Lineitem.NumRows() <= ds.Lineitem.NumRows() {
		t.Error("scale factor has no effect")
	}
}

func TestGenerateIntegrity(t *testing.T) {
	ds := testDS(t)
	nOrders := int64(ds.Orders.NumRows())
	nCust := int64(ds.Customer.NumRows())
	for _, r := range ds.Orders.Rows {
		if r[OCustKey] < 1 || r[OCustKey] > nCust {
			t.Fatal("order with dangling custkey")
		}
	}
	for _, r := range ds.Lineitem.Rows {
		if r[LOrderKey] < 1 || r[LOrderKey] > nOrders {
			t.Fatal("lineitem with dangling orderkey")
		}
		if r[LShipDate] < 19920101 || r[LShipDate] > 19990101 {
			t.Fatalf("shipdate %d out of range", r[LShipDate])
		}
		if r[LDiscount] < 0 || r[LDiscount] > 1000 {
			t.Fatalf("discount %d out of range", r[LDiscount])
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds := testDS(t)
	csv := CSVBytes(ds.Lineitem)
	if len(csv) == 0 || csv[len(csv)-1] != '\n' {
		t.Fatal("CSV not newline terminated")
	}
	// Row offsets cover the file exactly.
	offs := RowOffsets(csv)
	if len(offs) != ds.Lineitem.NumRows()+1 {
		t.Fatalf("offsets = %d, want rows+1 = %d", len(offs), ds.Lineitem.NumRows()+1)
	}
	if offs[len(offs)-1] != int64(len(csv)) {
		t.Fatal("final offset != file size")
	}
	// All integer bytes.
	for _, c := range csv {
		if !(c >= '0' && c <= '9' || c == '|' || c == '\n') {
			t.Fatalf("non-numeric CSV byte %q", c)
		}
	}
}

func TestEngineFilterProject(t *testing.T) {
	e := NewExec(testDS(t))
	r := &Relation{Rows: [][]int64{{1, 10}, {2, 20}, {3, 30}}}
	f := e.Filter(r, func(row []int64) bool { return row[1] >= 20 })
	if f.NumRows() != 2 {
		t.Fatalf("filter rows = %d", f.NumRows())
	}
	p := e.Project(f, 1)
	if p.Rows[0][0] != 20 || p.Rows[1][0] != 30 {
		t.Fatal("project wrong")
	}
	if e.Work.ScanUnits == 0 {
		t.Error("no scan work recorded")
	}
}

func TestEngineHashJoin(t *testing.T) {
	e := NewExec(testDS(t))
	l := &Relation{Rows: [][]int64{{1, 100}, {2, 200}}}
	r := &Relation{Rows: [][]int64{{10, 1}, {11, 1}, {12, 3}}}
	j := e.HashJoin(l, r, 0, 1)
	if j.NumRows() != 2 {
		t.Fatalf("join rows = %d", j.NumRows())
	}
	if j.Rows[0][1] != 100 || j.Rows[0][2] != 10 {
		t.Fatalf("join row = %v", j.Rows[0])
	}
}

func TestEngineSemiAntiJoin(t *testing.T) {
	e := NewExec(testDS(t))
	l := &Relation{Rows: [][]int64{{1}, {3}}}
	r := &Relation{Rows: [][]int64{{1, 0}, {2, 0}, {3, 0}, {4, 0}}}
	if got := e.SemiJoin(l, 0, r, 0).NumRows(); got != 2 {
		t.Fatalf("semi = %d", got)
	}
	if got := e.AntiJoin(l, 0, r, 0).NumRows(); got != 2 {
		t.Fatalf("anti = %d", got)
	}
}

func TestEngineGroupBy(t *testing.T) {
	e := NewExec(testDS(t))
	r := &Relation{Rows: [][]int64{{1, 10}, {1, 20}, {2, 5}}}
	g := e.GroupBy(r,
		func(row []int64) []int64 { return []int64{row[0]} },
		[]AggSpec{
			{Kind: AggSum, Value: func(row []int64) int64 { return row[1] }},
			{Kind: AggCount},
			{Kind: AggMin, Value: func(row []int64) int64 { return row[1] }},
			{Kind: AggMax, Value: func(row []int64) int64 { return row[1] }},
			{Kind: AggAvg, Value: func(row []int64) int64 { return row[1] }},
		})
	if g.NumRows() != 2 {
		t.Fatalf("groups = %d", g.NumRows())
	}
	row := g.Rows[0] // group key 1 (insertion order)
	want := []int64{1, 30, 2, 10, 20, 15}
	for i, v := range want {
		if row[i] != v {
			t.Fatalf("group row = %v, want %v", row, want)
		}
	}
}

func TestEngineOrderByLimit(t *testing.T) {
	e := NewExec(testDS(t))
	r := &Relation{Rows: [][]int64{{3}, {1}, {2}}}
	s := e.OrderBy(r, func(a, b []int64) bool { return a[0] < b[0] })
	if s.Rows[0][0] != 1 || s.Rows[2][0] != 3 {
		t.Fatal("sort wrong")
	}
	if e.Limit(s, 2).NumRows() != 2 {
		t.Fatal("limit wrong")
	}
	// Original unchanged (OrderBy copies).
	if r.Rows[0][0] != 3 {
		t.Fatal("OrderBy mutated input")
	}
}

func TestAllQueriesRun(t *testing.T) {
	ds := testDS(t)
	for _, q := range Queries() {
		e := NewExec(ds)
		scan := q.ScanRelation(ds)
		res := q.Body(e, scan)
		if res == nil {
			t.Fatalf("Q%d returned nil", q.ID)
		}
		if e.Work.Total() <= 0 {
			t.Errorf("Q%d recorded no work", q.ID)
		}
		t.Logf("Q%d %-24s scan=%6d rows -> %5d result rows, work=%.0f",
			q.ID, q.Name, scan.NumRows(), res.NumRows(), e.Work.Total())
	}
}

func TestQueriesSelectivityVaries(t *testing.T) {
	ds := testDS(t)
	li := ds.Lineitem.NumRows()
	fullScan := 0
	selective := 0
	for _, q := range Queries() {
		if q.Table != "lineitem" {
			continue
		}
		n := q.ScanRelation(ds).NumRows()
		if n == li {
			fullScan++
		} else if n < li*9/10 {
			selective++
		}
	}
	if selective < 4 {
		t.Errorf("only %d selective lineitem scans; predicates not effective", selective)
	}
	if fullScan == 0 {
		t.Error("expected some project-only scans")
	}
}

func TestQ1Deterministic(t *testing.T) {
	ds := testDS(t)
	q, _ := QueryByID(1)
	e1 := NewExec(ds)
	r1 := q.Body(e1, q.ScanRelation(ds))
	e2 := NewExec(ds)
	r2 := q.Body(e2, q.ScanRelation(ds))
	if r1.NumRows() != r2.NumRows() {
		t.Fatal("q1 nondeterministic")
	}
	// Q1 groups by (flag, status): at most 3×2 groups, at least 3 (A/F,
	// N/O, R/F all occur).
	if r1.NumRows() < 3 || r1.NumRows() > 6 {
		t.Fatalf("q1 groups = %d", r1.NumRows())
	}
}

func TestQ6MatchesManual(t *testing.T) {
	ds := testDS(t)
	q, _ := QueryByID(6)
	e := NewExec(ds)
	res := q.Body(e, q.ScanRelation(ds))
	var want int64
	for _, r := range ds.Lineitem.Rows {
		if r[LShipDate] >= 19940101 && r[LShipDate] <= 19941231 &&
			r[LDiscount] >= 500 && r[LDiscount] <= 700 && r[LQuantity] < 24 {
			want += r[LExtendedPrice] * r[LDiscount] / 10000
		}
	}
	if len(res.Rows) != 1 || res.Rows[0][1] != want {
		t.Fatalf("q6 = %v, want %d", res.Rows, want)
	}
}

func TestQueryByID(t *testing.T) {
	if _, err := QueryByID(0); err == nil {
		t.Error("q0 accepted")
	}
	if _, err := QueryByID(23); err == nil {
		t.Error("q23 accepted")
	}
	q, err := QueryByID(22)
	if err != nil || q.ID != 22 {
		t.Error("q22 lookup failed")
	}
}

func TestScanRelationMatchesPSFReference(t *testing.T) {
	// The host-side ScanRelation and the PSF kernel reference must agree:
	// same rows, same order, same projection.
	ds := testDS(t)
	for _, q := range Queries() {
		if q.Table != "lineitem" {
			continue
		}
		csv := CSVBytes(ds.Lineitem)
		out, err := q.PSF.Reference([][]byte{csv})
		if err != nil {
			t.Fatalf("Q%d: %v", q.ID, err)
		}
		rel := q.ScanRelation(ds)
		nCols := len(q.PSF.Project)
		if len(out[0]) != rel.NumRows()*4*nCols {
			t.Fatalf("Q%d: PSF bytes %d != scan %d rows × %d cols", q.ID, len(out[0]), rel.NumRows(), nCols)
		}
		// Spot-check first and last rows.
		if rel.NumRows() > 0 {
			for _, ri := range []int{0, rel.NumRows() - 1} {
				for c := 0; c < nCols; c++ {
					off := (ri*nCols + c) * 4
					got := uint32(out[0][off]) | uint32(out[0][off+1])<<8 | uint32(out[0][off+2])<<16 | uint32(out[0][off+3])<<24
					if int64(got) != rel.Rows[ri][c] {
						t.Fatalf("Q%d row %d col %d: PSF %d != scan %d", q.ID, ri, c, got, rel.Rows[ri][c])
					}
				}
			}
		}
		break // one lineitem query suffices for the byte-level check
	}
	_ = bytes.MinRead
}
