package cpu

// Differential fuzzing of the three execution engines: random valid
// programs (RV32IM + stream ops, constrained so control flow stays
// in-bounds) run under ExecPrecise, ExecFused and ExecCompiled against
// identical stream inputs and dispatch schedules must leave byte-identical
// architectural state, Stats, local time and output bytes. This catches
// translator and fused-path edge cases the Table II workloads never
// exercise — odd loop shapes, branches into the middle of ALU runs,
// blocking at every body position, error paths.

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"

	"assasin/internal/asm"
	"assasin/internal/isa"
	"assasin/internal/sim"
)

var updateSeeds = flag.Bool("update-seeds", false, "rewrite the checked-in fuzz seed corpus under testdata/fuzz/")

// fuzzOps is the generator's op domain (every defined op).
var fuzzOps = isa.Ops()

// fuzzWidths are the legal stream access widths.
var fuzzWidths = [3]uint8{1, 2, 4}

// genProgram decodes raw into a program, 6 bytes per instruction:
//
//	b0 op selector · b1 rd · b2 rs1 · b3 rs2 · b4 immediate · b5 width/slot
//
// Register fields are reduced mod 32, stream slots mod 4 (the test system's
// slot count), widths to {1,2,4}, and branch/jal targets are clamped into
// the program so control flow stays in-bounds; a Halt is appended so every
// path can terminate. Returns nil when raw holds less than one instruction.
func genProgram(raw []byte) *asm.Program {
	const maxInsts = 48
	chunks := len(raw) / 6
	if chunks == 0 {
		return nil
	}
	if chunks > maxInsts {
		chunks = maxInsts
	}
	n := chunks + 1 // + appended Halt
	insts := make([]isa.Inst, 0, n)
	for i := 0; i < chunks; i++ {
		b := raw[i*6 : i*6+6]
		op := fuzzOps[int(b[0])%len(fuzzOps)]
		in := isa.Inst{
			Op:     op,
			Rd:     b[1] % 32,
			Rs1:    b[2] % 32,
			Rs2:    b[3] % 32,
			Stream: (b[5] / 3) % 4,
			Width:  fuzzWidths[b[5]%3],
		}
		switch op.Class() {
		case isa.ClassALU:
			in.Imm = int32(int8(b[4]))
		case isa.ClassLoad, isa.ClassStore:
			in.Imm = int32(b[4]) * 4 // scratchpad-range offsets
		case isa.ClassBranch:
			in.Imm = int32(int(b[4])%n - i)
		case isa.ClassJump:
			if op == isa.OpJal {
				in.Imm = int32(int(b[4])%n - i)
			} else { // jalr: absolute target from rs1 + small offset
				in.Imm = int32(b[4] % 8)
			}
		case isa.ClassStreamLoad:
			if op == isa.OpStreamPeek {
				in.Imm = int32(b[4] % 32)
			}
		case isa.ClassStreamCtl:
			switch op {
			case isa.OpStreamAdv:
				in.Imm = int32(b[4] % 8)
			case isa.OpStreamCsrR:
				in.Imm = int32(b[4] % 2)
			}
		}
		insts = append(insts, in)
	}
	insts = append(insts, isa.Inst{Op: isa.OpHalt})
	return &asm.Program{Name: "fuzz", Insts: insts}
}

// fuzzOutcome is everything observable about a finished (or stuck) run.
type fuzzOutcome struct {
	Regs   [isa.NumRegs]uint32
	PC     int
	At     sim.Time
	Halted bool
	Err    string
	Stats  Stats
	Out    [4][]byte
}

// runFuzzProgram executes prog under mode on a fresh test system with a
// fixed input/drain schedule: two staggered pushes per input stream (then
// closed), 500 ns dispatch quanta, and output windows drained at every
// quantum boundary. The schedule is a pure function of the program and
// inputs, so any outcome divergence between modes is an engine bug.
func runFuzzProgram(prog *asm.Program, mode ExecMode, inData [4][]byte) fuzzOutcome {
	// One name for every mode: simulation errors embed it, and error
	// strings are part of the compared outcome.
	cfg := DefaultConfig("fuzz")
	cfg.Exec = mode
	cfg.MaxInstructions = 150_000
	sys := newTestSystem()
	c := New(cfg, sys)
	c.LoadProgram(prog)
	for s, d := range inData {
		half := len(d) / 2
		in := sys.Streams.In[s]
		if err := in.Push(append([]byte(nil), d[:half]...), 0); err != nil {
			panic(err)
		}
		if err := in.Push(append([]byte(nil), d[half:]...), 2*sim.Microsecond); err != nil {
			panic(err)
		}
		in.Close()
	}
	var out fuzzOutcome
	const quantum = 500 * sim.Nanosecond
	for k := 1; k <= 400; k++ {
		limit := sim.Time(k) * quantum
		_, state, _ := c.Run(limit)
		for s := range sys.Streams.Out {
			st := sys.Streams.Out[s]
			if b := st.Buffered(); b > 0 {
				out.Out[s] = append(out.Out[s], st.Drain(b, limit)...)
				c.Wake(limit)
			}
		}
		if state == sim.StateDone {
			break
		}
	}
	out.Regs = c.regs
	out.PC = c.pc
	out.At = c.at
	out.Halted = c.halted
	if c.err != nil {
		out.Err = c.err.Error()
	}
	out.Stats = c.stats
	return out
}

// fuzzInputs derives the per-slot stream bytes from the raw corpus entry so
// data patterns vary with the program.
func fuzzInputs(raw []byte) [4][]byte {
	var data [4][]byte
	for s := range data {
		n := 64 + int(byte(len(raw))*13+byte(s)*29)%128
		d := make([]byte, n)
		seed := byte(s*31 + 7)
		if len(raw) > s {
			seed ^= raw[s]
		}
		for i := range d {
			d[i] = seed + byte(i*17)
		}
		data[s] = d
	}
	return data
}

// seedChunk encodes one instruction in genProgram's 6-byte format (op
// selectors are the Ops() index of the op).
func seedChunk(op isa.Op, rd, rs1, rs2, immb, wsel uint8) []byte {
	return []byte{uint8(op - 1), rd, rs1, rs2, immb, wsel}
}

// fuzzSeeds returns the checked-in corpus: programs shaped like real
// kernels (stream loops, branch-heavy bodies, mul/div chains, error paths)
// so fuzzing starts from the structures the engines optimize.
func fuzzSeeds() [][]byte {
	cat := func(chunks ...[]byte) []byte {
		var b []byte
		for _, c := range chunks {
			b = append(b, c...)
		}
		return b
	}
	return [][]byte{
		// Stream-sum loop: load s0, accumulate, store to out slot 1, jal back.
		cat(
			seedChunk(isa.OpStreamLoad, 10, 0, 0, 0, 2), // slot 0, width 4
			seedChunk(isa.OpAdd, 8, 8, 10, 0, 0),
			seedChunk(isa.OpStreamStore, 0, 0, 8, 0, 5), // slot 1, width 4
			seedChunk(isa.OpJal, 0, 0, 0, 0, 0),         // back to pc 0
		),
		// Branch-closed ALU loop with a mid-body forward branch.
		cat(
			seedChunk(isa.OpAddi, 5, 5, 0, 1, 0),
			seedChunk(isa.OpXor, 7, 7, 5, 0, 0),
			seedChunk(isa.OpBeq, 0, 7, 7, 4, 0), // forward to pc 4
			seedChunk(isa.OpSlli, 28, 5, 0, 3, 0),
			seedChunk(isa.OpBltu, 0, 5, 6, 0, 0), // back to pc 0 (never: t1=0)
		),
		// Mul/div chain with a peek+adv stream walk.
		cat(
			seedChunk(isa.OpStreamPeek, 10, 0, 0, 4, 2),
			seedChunk(isa.OpMul, 11, 10, 10, 0, 0),
			seedChunk(isa.OpDivu, 12, 11, 10, 0, 0),
			seedChunk(isa.OpStreamAdv, 0, 0, 0, 2, 2),
			seedChunk(isa.OpStreamEnd, 13, 0, 0, 0, 2),
			seedChunk(isa.OpBeq, 0, 13, 0, 0, 0), // loop while not exhausted
		),
		// Scratchpad load/store round trip plus CSR reads.
		cat(
			seedChunk(isa.OpAddi, 6, 0, 0, 16, 0),
			seedChunk(isa.OpSw, 0, 6, 6, 8, 0),
			seedChunk(isa.OpLw, 9, 6, 0, 8, 0),
			seedChunk(isa.OpStreamCsrR, 14, 0, 0, 1, 2),
			seedChunk(isa.OpStreamCsrR, 15, 0, 0, 0, 2),
		),
	}
}

// TestFuzzSeedCorpus keeps the checked-in seed corpus in sync with the
// generator encoding: every seed must decode to a program that runs
// identically under all three engines, and -update-seeds rewrites the
// corpus files from fuzzSeeds().
func TestFuzzSeedCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzExecEquivalence")
	if *updateSeeds {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, s := range fuzzSeeds() {
			body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(s)) + ")\n"
			if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("seed-%02d", i)), []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	files, err := os.ReadDir(dir)
	if err != nil || len(files) == 0 {
		t.Fatalf("seed corpus missing under %s (run with -update-seeds): %v", dir, err)
	}
	for _, s := range fuzzSeeds() {
		checkExecEquivalence(t, s)
	}
}

// checkExecEquivalence is the shared oracle for the fuzz target and the
// seed test.
func checkExecEquivalence(t *testing.T, raw []byte) {
	t.Helper()
	prog := genProgram(raw)
	if prog == nil {
		t.Skip("input shorter than one instruction")
	}
	inputs := fuzzInputs(raw)
	ref := runFuzzProgram(prog, ExecPrecise, inputs)
	for _, mode := range []ExecMode{ExecFused, ExecCompiled} {
		got := runFuzzProgram(prog, mode, inputs)
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("%v diverges from precise for program:\n%v\nprecise: %+v\n%v: %+v",
				mode, prog.Insts, ref, mode, got)
		}
	}
}

// FuzzExecEquivalence is the differential fuzz target; see the package
// comment at the top of this file. Run a bounded pass with
// go test ./internal/cpu -run '^$' -fuzz FuzzExecEquivalence -fuzztime 10s
func FuzzExecEquivalence(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		checkExecEquivalence(t, raw)
	})
}
