package cpu

// Fused (macro) execution: the default interpreter strategy. At program-load
// time the decoded instruction stream is partitioned into basic blocks and
// recognized stream-loop bodies; Core.Run then executes straight ALU runs as
// one fused step (a single time/stat accumulation) and loop iterations
// against pre-validated stream windows without re-crossing the
// memhier.System wrappers per byte. Timing is byte-identical to ExecPrecise:
// every fast path reproduces exactly the c.at advance, Stats deltas, and
// blocking/halting behavior of the equivalent sequence of step() calls, and
// every Run call returns at the same local-time boundary — so the scheduler
// interleaving, and with it every shared-resource (DRAM, flash) access
// order, is unchanged. See DESIGN.md, "Fused execution engine".

import (
	"fmt"

	"assasin/internal/isa"
	"assasin/internal/memhier"
	"assasin/internal/sim"
)

// ExecMode selects the interpreter strategy.
type ExecMode int

const (
	// ExecCompiled (default) translates the decoded program to threaded
	// code at load time: basic-block ALU runs and recognized stream-loop
	// bodies become chains of specialized closures with registers and
	// immediates pre-resolved, executed with timing identical to precise
	// stepping (see compiled.go).
	ExecCompiled ExecMode = iota
	// ExecPrecise interprets one instruction per step — the reference
	// semantics, kept as a debugging fallback and equivalence oracle.
	ExecPrecise
	// ExecFused runs basic blocks and recognized stream loops as
	// macro-steps through the decoded-instruction switch — the previous
	// default, kept as the mid-point between Precise and Compiled.
	ExecFused
)

// String implements fmt.Stringer.
func (m ExecMode) String() string {
	switch m {
	case ExecPrecise:
		return "precise"
	case ExecFused:
		return "fused"
	default:
		return "compiled"
	}
}

// ParseExecMode maps a CLI string to an ExecMode; unknown values get an
// error naming the valid modes (shared by assasin-sim, assasin-bench and
// assasin-serve so their -exec flags reject garbage identically).
func ParseExecMode(s string) (ExecMode, error) {
	switch s {
	case "compiled":
		return ExecCompiled, nil
	case "fused":
		return ExecFused, nil
	case "precise":
		return ExecPrecise, nil
	default:
		return ExecCompiled, fmt.Errorf("unknown exec mode %q (valid: compiled, fused, precise)", s)
	}
}

// streamNeed is the worst-case byte requirement of one loop iteration
// against one stream slot.
type streamNeed struct {
	slot int
	need int64
}

// loopInfo describes a recognized loop: a backward branch/jal at end
// targeting head, whose body consists only of operations the fused executor
// can run without leaving the core (ALU/mul/div, loads/stores, stream ops
// with compile-time extents, forward branches, halt). ins/outs give the
// per-iteration worst-case stream consumption/production used to pre-check
// that a whole iteration cannot block.
type loopInfo struct {
	head, end int
	bodyLen   int64 // instruction-budget bound per iteration
	ins       []streamNeed
	outs      []streamNeed
	// pureALU marks a body that is one straight ALU run closed by an
	// unconditional x0-linked jal: iterations are identical in time and
	// effect, so runLoop batches as many as fit the quantum in one pass.
	pureALU bool
}

// analyzeProgram builds the fused-execution metadata for a decoded program:
// per-pc straight ALU run lengths and recognized loop bodies.
func analyzeProgram(dec []decoded) ([]int32, []*loopInfo) {
	n := len(dec)
	aluRun := make([]int32, n+1)
	for i := n - 1; i >= 0; i-- {
		if dec[i].class == isa.ClassALU {
			aluRun[i] = aluRun[i+1] + 1
		}
	}
	loops := make([]*loopInfo, n)
	for e := 0; e < n; e++ {
		in := &dec[e]
		back := false
		switch in.class {
		case isa.ClassBranch:
			back = in.imm < 0
		case isa.ClassJump:
			back = in.op == isa.OpJal && in.imm < 0
		}
		if !back {
			continue
		}
		head := e + int(in.imm)
		if head < 0 || loops[head] != nil {
			continue
		}
		li := buildLoop(dec, head, e)
		if li != nil && e > head && int(aluRun[head]) == e-head &&
			in.class == isa.ClassJump && in.rd == 0 {
			li.pureALU = true
		}
		loops[head] = li
	}
	return aluRun[:n], loops
}

// buildLoop validates the body [head, end] and computes its per-slot stream
// needs; it returns nil when any instruction is outside the fusable subset.
func buildLoop(dec []decoded, head, end int) *loopInfo {
	consume := map[int]int64{} // StreamLoad widths + Adv amounts per in slot
	peek := map[int]int64{}    // max Peek extent (off+width) per in slot
	produce := map[int]int64{} // StreamStore widths per out slot
	for i := head; i <= end; i++ {
		in := &dec[i]
		switch in.class {
		case isa.ClassALU, isa.ClassMul, isa.ClassDiv, isa.ClassLoad, isa.ClassStore, isa.ClassHalt:
			// Always fusable: loads/stores go through the same
			// memhier.System calls as precise stepping.
		case isa.ClassBranch:
			if !(in.imm > 0 || (i == end && i+int(in.imm) == head)) {
				return nil // inner backward branch: let the outer loop win
			}
		case isa.ClassJump:
			if in.op != isa.OpJal {
				return nil // jalr targets are data-dependent
			}
			if !(in.imm > 0 || (i == end && i+int(in.imm) == head)) {
				return nil
			}
		case isa.ClassStreamLoad:
			s := int(in.stream)
			if in.op == isa.OpStreamLoad {
				consume[s] += int64(in.width)
			} else { // StreamPeek
				if in.imm < 0 {
					return nil
				}
				if ext := int64(in.imm) + int64(in.width); ext > peek[s] {
					peek[s] = ext
				}
			}
		case isa.ClassStreamStore:
			produce[int(in.stream)] += int64(in.width)
		case isa.ClassStreamCtl:
			switch in.op {
			case isa.OpStreamAdv:
				if in.imm < 0 {
					return nil
				}
				consume[int(in.stream)] += int64(in.imm) * int64(in.width)
			case isa.OpStreamEnd:
				// Computed exactly from Head/Tail/closed state.
			case isa.OpStreamCsrR:
				if in.imm != 0 && in.imm != 1 {
					return nil
				}
			default:
				return nil
			}
		default:
			return nil
		}
	}
	li := &loopInfo{head: head, end: end, bodyLen: int64(end - head + 1)}
	for s := range peek {
		if _, ok := consume[s]; !ok {
			consume[s] = 0 // peek-only slot still needs an entry
		}
	}
	for s, n := range consume {
		// At any point in an iteration, bytes needed past the entry Head are
		// bounded by the total consumption plus the largest peek extent.
		li.ins = append(li.ins, streamNeed{slot: s, need: n + peek[s]})
	}
	for s, n := range produce {
		li.outs = append(li.outs, streamNeed{slot: s, need: n})
	}
	return li
}

// runALUBlock executes up to n consecutive ALU instructions starting at pc
// as one fused step: register updates in sequence, then a single c.at
// advance and one BusyTime/Instructions accumulation. The executed count is
// clamped so that, exactly like precise stepping, an instruction issues iff
// its start time is <= limit and the instruction budget is never exceeded.
// It returns the next pc.
func (c *Core) runALUBlock(pc, n int, limit sim.Time) int {
	period := c.cfg.Clock.Period
	whole := n
	if rem := c.maxInsts - c.stats.Instructions; int64(n) > rem {
		n = int(rem)
	}
	// Instruction i of the block issues at c.at + i*period and, like precise
	// stepping, executes iff that start time is <= limit. The division only
	// runs when the block straddles the quantum boundary.
	if c.at+sim.Time(n-1)*period > limit {
		n = int(int64((limit-c.at)/period)) + 1
	}
	if cp := c.comp; cp != nil {
		// Compiled mode: the whole run is one pre-composed closure; a run
		// clamped by the quantum or instruction budget sweeps the
		// per-instruction closures instead.
		if n == whole && cp.blocks[pc] != nil {
			cp.blocks[pc](&c.regs)
		} else {
			for _, f := range cp.alu[pc : pc+n] {
				f(&c.regs)
			}
		}
	} else {
		execALUBlock(&c.regs, c.dec[pc:pc+n])
	}
	nt := sim.Time(n) * period
	c.at += nt
	c.stats.BusyTime += nt
	c.stats.Instructions += int64(n)
	c.stats.ByClass[isa.ClassALU] += int64(n)
	if c.prof != nil {
		// One O(1) range update for the whole run; the snapshot's prefix
		// sum spreads it back over [pc, pc+n) at one issue cycle each,
		// exactly what precise stepping records.
		c.prof.BulkALU(pc, n)
	}
	return pc + n
}

// execALUBlock executes a straight run of ALU instructions against the
// register file, with no timing or stats side effects (callers accumulate
// those in bulk). The op switch mirrors Core.alu (kept in sync); avoiding a
// call per instruction is the interpreter's single hottest saving.
func execALUBlock(regs *[32]uint32, block []decoded) {
	for i := range block {
		in := &block[i]
		if in.rd == 0 {
			continue // ALU ops have no side effects beyond rd
		}
		a := regs[in.rs1]
		b := regs[in.rs2]
		var v uint32
		switch in.op {
		case isa.OpAdd:
			v = a + b
		case isa.OpSub:
			v = a - b
		case isa.OpAnd:
			v = a & b
		case isa.OpOr:
			v = a | b
		case isa.OpXor:
			v = a ^ b
		case isa.OpSll:
			v = a << (b & 31)
		case isa.OpSrl:
			v = a >> (b & 31)
		case isa.OpSra:
			v = uint32(int32(a) >> (b & 31))
		case isa.OpSlt:
			if int32(a) < int32(b) {
				v = 1
			}
		case isa.OpSltu:
			if a < b {
				v = 1
			}
		case isa.OpAddi:
			v = a + in.uimm
		case isa.OpAndi:
			v = a & in.uimm
		case isa.OpOri:
			v = a | in.uimm
		case isa.OpXori:
			v = a ^ in.uimm
		case isa.OpSlli:
			v = a << (in.uimm & 31)
		case isa.OpSrli:
			v = a >> (in.uimm & 31)
		case isa.OpSrai:
			v = uint32(int32(a) >> (in.uimm & 31))
		case isa.OpSlti:
			if int32(a) < in.imm {
				v = 1
			}
		case isa.OpSltiu:
			if a < in.uimm {
				v = 1
			}
		case isa.OpLui:
			v = in.uimm << 12
		}
		regs[in.rd] = v
	}
}

// loopExit reports how a fused loop execution ended.
type loopExit int

const (
	// loopNoProgress: no instruction ran (stream budget or instruction
	// budget short at iteration entry); the caller must fall back to
	// per-instruction stepping to guarantee forward progress.
	loopNoProgress loopExit = iota
	// loopProgress: >= 1 instruction ran; c.pc/c.at/stats are committed.
	loopProgress
	// loopBlockedExit: a load/store blocked mid-iteration (c.blockKind set,
	// c.pc at the blocked instruction), after possibly running instructions.
	loopBlockedExit
	// loopHaltedExit: the program halted (cleanly or by error).
	loopHaltedExit
)

// runLoop executes iterations of a recognized loop body while (a) the local
// clock has not passed limit, (b) the instruction budget admits a full
// iteration, and (c) BulkAvail/window-room pre-checks prove the iteration's
// stream operations cannot block. Under (c), every StreamLoad/Peek resolves
// at its issue time (the needed bytes were usable at iteration entry, and
// availability is monotone), so stream ops bypass the memhier wrappers while
// accruing the identical timing: busy one cycle plus StreamExtraCycles of
// stream-wait (in) or out-full (out) stall. Loads and stores still go
// through memhier.System — their timing is stateful (caches, DRAM) — and the
// per-instruction limit check inside the body reproduces precise stepping's
// stop-at-quantum behavior exactly.
func (c *Core) runLoop(li *loopInfo, limit sim.Time) loopExit {
	sys := c.sys
	if sys.Streams == nil && (len(li.ins) > 0 || len(li.outs) > 0) {
		return loopNoProgress
	}
	for _, sn := range li.ins {
		if sn.slot >= len(sys.Streams.In) {
			return loopNoProgress // slow path raises the precise error
		}
	}
	for _, sn := range li.outs {
		if sn.slot >= len(sys.Streams.Out) {
			return loopNoProgress
		}
	}
	period := c.cfg.Clock.Period
	var extra sim.Time
	if sys.StreamExtraCycles > 0 {
		extra = sys.Clock.Cycles(int64(sys.StreamExtraCycles))
	}
	// Hoisted slice headers: the compiler cannot cache them across the
	// opaque calls below, and both index on every instruction.
	dec := c.dec
	aluRun := c.aluRun
	progress := false
	// Compiled mode replaces the per-instruction switch below with the
	// loop body's threaded code (one pre-specialized closure per
	// instruction; see compiled.go). Exit conditions and accounting are
	// identical by construction.
	var body []bodyFn
	if cp := c.comp; cp != nil {
		body = cp.bodies[li.head]
	}

	// Pure-ALU loops with a free back-edge have identical iterations: batch
	// every full iteration that fits the quantum and instruction budget in
	// one pass, then let the generic loop below run the partial tail with
	// per-instruction limit checks. Iteration m's jal issues at
	// c.at + n*m*period, so m full iterations fit iff n*m*period stays
	// within the quantum.
	if li.pureALU && c.jumpCycles == 0 {
		n := int64(li.end - li.head)
		m := int64(limit-c.at) / int64(period) / n
		if rem := (c.maxInsts - c.stats.Instructions) / (n + 1); m > rem {
			m = rem
		}
		if m > 0 {
			if cp := c.comp; cp != nil {
				cp.kernels[li.head](&c.regs, m)
			} else {
				block := dec[li.head:li.end]
				regs := &c.regs
				for it := int64(0); it < m; it++ {
					execALUBlock(regs, block)
				}
			}
			nt := sim.Time(n*m) * period
			c.at += nt
			c.stats.BusyTime += nt
			c.stats.Instructions += (n + 1) * m
			c.stats.ByClass[isa.ClassALU] += n * m
			c.stats.ByClass[isa.ClassJump] += m
			if c.prof != nil {
				// m executions of the ALU body plus m zero-cycle back-edge
				// jals (this batch only runs when jumpCycles == 0, where
				// precise stepping records the jal as time-free too).
				c.prof.BulkRange(li.head, li.end, m)
				c.prof.Insts(li.end, m)
			}
			progress = true
		}
	}

iterations:
	for c.at <= limit {
		if c.stats.Instructions+li.bodyLen > c.maxInsts {
			break
		}
		for _, sn := range li.ins {
			if sys.Streams.In[sn.slot].BulkAvail(c.at) < sn.need {
				break iterations
			}
		}
		for _, sn := range li.outs {
			st := sys.Streams.Out[sn.slot]
			if int64(st.WindowBytes()-st.Buffered()) < sn.need {
				break iterations
			}
		}
		vpc := li.head
		for {
			if c.at > limit {
				c.pc = vpc
				return loopProgress
			}
			if body != nil {
				// nv is where execution stopped: past the chain on a clean
				// fall-through, at the blocked instruction on a block.
				nv, s := body[vpc-li.head](c, vpc, limit)
				switch s {
				case ctlNext:
				case ctlBlockedStream:
					c.blockKind = StallStreamWait
					c.pc = nv
					return loopBlockedExit
				case ctlBlockedOut:
					c.blockKind = StallOutFull
					c.pc = nv
					return loopBlockedExit
				default: // ctlHalted: pc and halt state set by the closure
					return loopHaltedExit
				}
				vpc = nv
				progress = true
				if vpc == li.head {
					continue iterations
				}
				if vpc < li.head || vpc > li.end {
					c.pc = vpc // a forward branch left the body
					return loopProgress
				}
				continue
			}
			in := &dec[vpc]
			t0 := c.at
			pc0 := vpc
			switch in.class {
			case isa.ClassALU:
				if n := aluRun[vpc]; n > 1 {
					vpc = c.runALUBlock(vpc, int(n), limit)
					progress = true
					continue
				}
				c.setReg(in.rd, c.alu(in))
				vpc++
				c.retireCycles(pc0, t0, 1)

			case isa.ClassMul:
				c.setReg(in.rd, c.mul(in))
				vpc++
				c.retireCycles(pc0, t0, c.cfg.MulCycles)

			case isa.ClassDiv:
				c.setReg(in.rd, c.div(in))
				vpc++
				c.retireCycles(pc0, t0, c.cfg.DivCycles)

			case isa.ClassLoad:
				addr := c.regs[in.rs1] + in.uimm
				size := int(in.size)
				r, err := sys.Load(t0, addr, size, uint32(vpc))
				if err != nil {
					c.pc = vpc
					c.fail(err)
					return loopHaltedExit
				}
				if r.Status == memhier.LoadBlocked {
					c.blockKind = StallStreamWait
					c.pc = vpc
					return loopBlockedExit
				}
				v := r.Value
				if in.signed {
					v = signExtendVal(v, size)
				}
				c.setReg(in.rd, v)
				c.stats.LoadBytes += int64(size)
				vpc++
				c.retire(pc0, t0, r.Done, c.loadStallKind(addr))

			case isa.ClassStore:
				addr := c.regs[in.rs1] + in.uimm
				size := int(in.size)
				r, err := sys.Store(t0, addr, size, c.regs[in.rs2], uint32(vpc))
				if err != nil {
					c.pc = vpc
					c.fail(err)
					return loopHaltedExit
				}
				if r.Status == memhier.LoadBlocked {
					c.blockKind = StallOutFull
					c.pc = vpc
					return loopBlockedExit
				}
				c.stats.StoreBytes += int64(size)
				vpc++
				c.retire(pc0, t0, r.Done, StallMem)

			case isa.ClassBranch:
				var cycles int
				if c.branch(in) {
					vpc += int(in.imm)
					cycles = c.takenCycles
				} else {
					vpc++
					cycles = c.notTakenCycles
				}
				if cycles > 0 {
					c.retireCycles(pc0, t0, cycles)
				} else if c.prof != nil {
					c.prof.Insts(pc0, 1)
				}

			case isa.ClassJump: // OpJal only (validated by buildLoop)
				link := uint32(vpc + 1)
				vpc += int(in.imm)
				c.setReg(in.rd, link)
				if c.jumpCycles > 0 {
					c.retireCycles(pc0, t0, c.jumpCycles)
				} else if c.prof != nil {
					c.prof.Insts(pc0, 1)
				}

			case isa.ClassStreamLoad:
				st := sys.Streams.In[in.stream]
				var v uint32
				if in.op == isa.OpStreamLoad {
					v = st.LoadDirect(int(in.width))
					c.stats.StreamInBytes += int64(in.width)
				} else {
					v = st.PeekDirect(int64(in.imm), int(in.width))
				}
				c.setReg(in.rd, v)
				vpc++
				c.stats.BusyTime += period
				if extra > 0 {
					c.stats.StallTime[StallStreamWait] += extra
				}
				if c.prof != nil {
					c.prof.Record(pc0, period, int(StallStreamWait), extra)
				}
				c.at = t0 + extra + period

			case isa.ClassStreamStore:
				st := sys.Streams.Out[in.stream]
				st.Append(c.regs[in.rs2], int(in.width))
				c.stats.StreamOutBytes += int64(in.width)
				vpc++
				c.stats.BusyTime += period
				if extra > 0 {
					c.stats.StallTime[StallOutFull] += extra
				}
				if c.prof != nil {
					c.prof.Record(pc0, period, int(StallOutFull), extra)
				}
				c.at = t0 + extra + period

			case isa.ClassStreamCtl:
				switch in.op {
				case isa.OpStreamAdv:
					st := sys.Streams.In[in.stream]
					if err := st.Adv(int64(in.imm) * int64(in.width)); err != nil {
						c.pc = vpc
						c.fail(err)
						return loopHaltedExit
					}
				case isa.OpStreamEnd:
					st := sys.Streams.In[in.stream]
					var v uint32
					if st.Exhausted() {
						v = 1
					}
					c.setReg(in.rd, v)
				default: // OpStreamCsrR, imm in {0,1} (validated)
					st := sys.Streams.In[in.stream]
					if in.imm == 0 {
						c.setReg(in.rd, uint32(st.Head()))
					} else {
						c.setReg(in.rd, uint32(st.Tail()))
					}
				}
				vpc++
				c.retireCycles(pc0, t0, 1)

			case isa.ClassHalt:
				c.halted = true
				c.at = t0 + period
				c.stats.BusyTime += period
				c.stats.Instructions++
				c.stats.ByClass[isa.ClassHalt]++
				if c.prof != nil {
					c.prof.Record(pc0, period, int(StallExec), 0)
				}
				c.pc = vpc
				return loopHaltedExit
			}
			c.stats.Instructions++
			c.stats.ByClass[in.class]++
			progress = true
			if vpc == li.head {
				continue iterations
			}
			if vpc < li.head || vpc > li.end {
				c.pc = vpc // a forward branch left the body
				return loopProgress
			}
		}
	}
	c.pc = li.head
	if progress {
		return loopProgress
	}
	return loopNoProgress
}
