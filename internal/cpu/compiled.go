package cpu

// Ahead-of-time translation (ExecCompiled): the default interpreter
// strategy. At program-load time — after the fused engine's basic-block
// partition (fused.go) — the decoded instruction stream is translated to
// threaded code: one specialized Go closure per instruction form with
// registers, immediates, stream slots and cycle counts pre-resolved.
// Straight ALU runs become a single pre-composed closure executed with one
// time/stats accumulation; pure-ALU loop bodies become a closed-form
// multi-iteration kernel; every other recognized loop body becomes a chain
// of bodyFn closures driven by runLoop in place of its decode switch.
//
// The timing-equivalence contract of the fused engine carries over
// unchanged: every translated path reproduces exactly the c.at advance,
// Stats deltas, and blocking/halting behavior of the equivalent sequence of
// step() calls, so Precise, Fused and Compiled runs are byte-identical
// (enforced by the three-way equivalence soak in internal/experiments and
// the differential fuzz harness in this package). Translation happens at
// load time — not lazily — so a core's execution is a pure function of the
// loaded program and its inputs, which keeps runs deterministic and
// resumable. See DESIGN.md, "Ahead-of-time translation".

import (
	"assasin/internal/isa"
	"assasin/internal/memhier"
	"assasin/internal/sim"
)

// regs is the architectural register file the translated closures act on.
type regs = [isa.NumRegs]uint32

// aluFn is one translated ALU instruction: a pure register-file effect with
// rd/rs1/rs2/immediate pre-resolved. Timing and stats are accumulated in
// bulk by the caller, exactly like execALUBlock.
type aluFn func(r *regs)

// loopKernel executes m identical iterations of a pure-ALU loop body — the
// closed-form replacement for re-dispatching the body per iteration.
type loopKernel func(r *regs, m int64)

// ctl reports how a translated loop-body step left the core.
type ctl uint8

const (
	// ctlNext: the instruction retired; continue at the returned pc.
	ctlNext ctl = iota
	// ctlBlockedStream / ctlBlockedOut: a load or store blocked; the core
	// must stall (stream-wait or out-full) and retry the same pc.
	ctlBlockedStream
	ctlBlockedOut
	// ctlHalted: the program halted (cleanly or by error); the closure has
	// already committed c.pc and the halt state.
	ctlHalted
)

// bodyFn is one translated loop-body instruction. It receives the virtual
// pc (for error reporting and link/branch arithmetic) and the dispatch
// limit (consumed only by ALU-run steps, which clamp at the quantum
// boundary), and returns the next pc plus the exit disposition.
type bodyFn func(c *Core, vpc int, limit sim.Time) (int, ctl)

// compiledProgram is the load-time translation of one decoded program, per
// pc: the specialized ALU closure, the pre-composed whole-run closure where
// a straight ALU run starts, the multi-iteration kernel for pure-ALU loop
// heads, and the threaded-code body for recognized loop heads.
type compiledProgram struct {
	alu     []aluFn
	blocks  []aluFn
	kernels []loopKernel
	bodies  [][]bodyFn
}

// compileProgram translates the decoded program. It requires the fused
// analysis (c.aluRun, c.loops) to be in place.
func (c *Core) compileProgram() *compiledProgram {
	dec := c.dec
	n := len(dec)
	cp := &compiledProgram{
		alu:     make([]aluFn, n),
		blocks:  make([]aluFn, n),
		kernels: make([]loopKernel, n),
		bodies:  make([][]bodyFn, n),
	}
	for i := range dec {
		if dec[i].class == isa.ClassALU {
			cp.alu[i] = compileALU(&dec[i])
		}
	}
	// Every pc with a straight run gets a whole-run closure: runs are
	// suffix-closed (a branch may enter mid-run), so this covers every
	// entry point runALUBlock can see.
	for i := 0; i < n; i++ {
		if r := int(c.aluRun[i]); r > 1 {
			cp.blocks[i] = seqALU(cp.alu[i : i+r])
		}
	}
	for h, li := range c.loops {
		if li == nil {
			continue
		}
		if li.pureALU {
			cp.kernels[h] = loopKernelOf(cp.alu[li.head:li.end])
		}
		cp.bodies[h] = c.compileBody(li)
	}
	return cp
}

// compileBody translates a recognized loop body to threaded code; nil means
// an untranslatable instruction was found and runLoop keeps its decode
// switch for this loop (cannot happen for bodies buildLoop accepted, kept
// as a defensive fallback).
//
// Beyond per-instruction closures, straight-line elements are composed into
// suffix chains: bodies[i] executes from i through the next control-flow
// instruction in one call, so a typical iteration (ALU run, stream ops,
// back edge) costs one driver dispatch instead of one per instruction. A
// chain hands off to its successor only on a clean fall-through
// (ctlNext, the statically expected next pc, and local time still within
// the quantum), so blocking, faults, clamped ALU runs and the per-
// instruction issue rule all behave exactly as in per-step dispatch.
func (c *Core) compileBody(li *loopInfo) []bodyFn {
	n := li.end - li.head + 1
	elems := make([]bodyFn, n)
	sizes := make([]int, n)
	ctrl := make([]bool, n)
	for i := li.head; i <= li.end; i++ {
		f, size, isCtrl := c.compileBodyInst(i)
		if f == nil {
			return nil
		}
		elems[i-li.head] = f
		sizes[i-li.head] = size
		ctrl[i-li.head] = isCtrl
	}
	chains := make([]bodyFn, n)
	for i := n - 1; i >= 0; i-- {
		if ctrl[i] || i+sizes[i] >= n {
			chains[i] = elems[i]
			continue
		}
		chains[i] = chainBody(elems[i], chains[i+sizes[i]], sizes[i])
	}
	return chains
}

// chainBody composes a straight-line element (static advance of size) with
// the chain at its fall-through successor.
func chainBody(f, g bodyFn, size int) bodyFn {
	return func(c *Core, vpc int, limit sim.Time) (int, ctl) {
		nv, s := f(c, vpc, limit)
		if s != ctlNext || nv != vpc+size || c.at > limit {
			return nv, s
		}
		return g(c, nv, limit)
	}
}

// countInst accrues the per-instruction counters shared by every retired
// instruction.
func (c *Core) countInst(cl isa.Class) {
	c.stats.Instructions++
	c.stats.ByClass[cl]++
}

// streamRetire advances time for the pre-validated stream access at pc
// exactly like the fused loop path: busy one cycle, plus StreamExtraCycles
// charged to kind.
func (c *Core) streamRetire(pc int, t0 sim.Time, kind StallKind) {
	var extra sim.Time
	if c.sys.StreamExtraCycles > 0 {
		extra = c.sys.Clock.Cycles(int64(c.sys.StreamExtraCycles))
		c.stats.StallTime[kind] += extra
	}
	period := c.cfg.Clock.Period
	c.stats.BusyTime += period
	if c.prof != nil {
		c.prof.Record(pc, period, int(kind), extra)
	}
	c.at = t0 + extra + period
}

// branchStep commits a resolved branch: pc arithmetic, taken/not-taken
// cycles, and instruction accounting. Shared by the six specialized branch
// closures.
func (c *Core) branchStep(vpc int, taken bool, delta int) int {
	t0 := c.at
	var cycles, nv int
	if taken {
		nv = vpc + delta
		cycles = c.takenCycles
	} else {
		nv = vpc + 1
		cycles = c.notTakenCycles
	}
	if cycles > 0 {
		c.retireCycles(vpc, t0, cycles)
	} else if c.prof != nil {
		c.prof.Insts(vpc, 1)
	}
	c.countInst(isa.ClassBranch)
	return nv
}

// compileBodyInst translates the instruction at pc into its loop-body
// closure plus its chaining metadata: the static pc advance of a clean
// fall-through (the run length for ALU runs, 1 otherwise) and whether the
// element is control flow (branch/jump/halt — chain terminators).
func (c *Core) compileBodyInst(pc int) (bodyFn, int, bool) {
	in := &c.dec[pc]
	size, ctrl := 1, false
	switch in.class {
	case isa.ClassBranch, isa.ClassJump, isa.ClassHalt:
		ctrl = true
	case isa.ClassALU:
		if n := int(c.aluRun[pc]); n > 1 {
			size = n
		}
	}
	return c.compileBodyElem(pc), size, ctrl
}

// compileBodyElem builds the closure itself. The arms mirror runLoop's
// decode switch one-for-one; any timing or accounting drift between the two
// is caught by the equivalence soak and the differential fuzz harness.
func (c *Core) compileBodyElem(pc int) bodyFn {
	in := &c.dec[pc]
	switch in.class {
	case isa.ClassALU:
		if n := int(c.aluRun[pc]); n > 1 {
			return func(c *Core, vpc int, limit sim.Time) (int, ctl) {
				return c.runALUBlock(vpc, n, limit), ctlNext
			}
		}
		f := compileALU(in)
		return func(c *Core, vpc int, _ sim.Time) (int, ctl) {
			t0 := c.at
			f(&c.regs)
			c.retireCycles(vpc, t0, 1)
			c.countInst(isa.ClassALU)
			return vpc + 1, ctlNext
		}

	case isa.ClassMul:
		inv := *in
		cycles := c.cfg.MulCycles
		return func(c *Core, vpc int, _ sim.Time) (int, ctl) {
			t0 := c.at
			c.setReg(inv.rd, c.mul(&inv))
			c.retireCycles(vpc, t0, cycles)
			c.countInst(isa.ClassMul)
			return vpc + 1, ctlNext
		}

	case isa.ClassDiv:
		inv := *in
		cycles := c.cfg.DivCycles
		return func(c *Core, vpc int, _ sim.Time) (int, ctl) {
			t0 := c.at
			c.setReg(inv.rd, c.div(&inv))
			c.retireCycles(vpc, t0, cycles)
			c.countInst(isa.ClassDiv)
			return vpc + 1, ctlNext
		}

	case isa.ClassLoad:
		rd, rs1 := in.rd, in.rs1
		uimm := in.uimm
		size := int(in.size)
		signed := in.signed
		return func(c *Core, vpc int, _ sim.Time) (int, ctl) {
			t0 := c.at
			addr := c.regs[rs1] + uimm
			r, err := c.sys.Load(t0, addr, size, uint32(vpc))
			if err != nil {
				c.pc = vpc
				c.fail(err)
				return vpc, ctlHalted
			}
			if r.Status == memhier.LoadBlocked {
				return vpc, ctlBlockedStream
			}
			v := r.Value
			if signed {
				v = signExtendVal(v, size)
			}
			c.setReg(rd, v)
			c.stats.LoadBytes += int64(size)
			c.retire(vpc, t0, r.Done, c.loadStallKind(addr))
			c.countInst(isa.ClassLoad)
			return vpc + 1, ctlNext
		}

	case isa.ClassStore:
		rs1, rs2 := in.rs1, in.rs2
		uimm := in.uimm
		size := int(in.size)
		return func(c *Core, vpc int, _ sim.Time) (int, ctl) {
			t0 := c.at
			addr := c.regs[rs1] + uimm
			r, err := c.sys.Store(t0, addr, size, c.regs[rs2], uint32(vpc))
			if err != nil {
				c.pc = vpc
				c.fail(err)
				return vpc, ctlHalted
			}
			if r.Status == memhier.LoadBlocked {
				return vpc, ctlBlockedOut
			}
			c.stats.StoreBytes += int64(size)
			c.retire(vpc, t0, r.Done, StallMem)
			c.countInst(isa.ClassStore)
			return vpc + 1, ctlNext
		}

	case isa.ClassBranch:
		rs1, rs2 := in.rs1, in.rs2
		delta := int(in.imm)
		switch in.op {
		case isa.OpBeq:
			return func(c *Core, vpc int, _ sim.Time) (int, ctl) {
				return c.branchStep(vpc, c.regs[rs1] == c.regs[rs2], delta), ctlNext
			}
		case isa.OpBne:
			return func(c *Core, vpc int, _ sim.Time) (int, ctl) {
				return c.branchStep(vpc, c.regs[rs1] != c.regs[rs2], delta), ctlNext
			}
		case isa.OpBlt:
			return func(c *Core, vpc int, _ sim.Time) (int, ctl) {
				return c.branchStep(vpc, int32(c.regs[rs1]) < int32(c.regs[rs2]), delta), ctlNext
			}
		case isa.OpBge:
			return func(c *Core, vpc int, _ sim.Time) (int, ctl) {
				return c.branchStep(vpc, int32(c.regs[rs1]) >= int32(c.regs[rs2]), delta), ctlNext
			}
		case isa.OpBltu:
			return func(c *Core, vpc int, _ sim.Time) (int, ctl) {
				return c.branchStep(vpc, c.regs[rs1] < c.regs[rs2], delta), ctlNext
			}
		case isa.OpBgeu:
			return func(c *Core, vpc int, _ sim.Time) (int, ctl) {
				return c.branchStep(vpc, c.regs[rs1] >= c.regs[rs2], delta), ctlNext
			}
		default: // mirror Core.branch: unknown branch ops fall through
			return func(c *Core, vpc int, _ sim.Time) (int, ctl) {
				return c.branchStep(vpc, false, delta), ctlNext
			}
		}

	case isa.ClassJump: // OpJal only (validated by buildLoop)
		rd := in.rd
		delta := int(in.imm)
		if rd == 0 {
			return func(c *Core, vpc int, _ sim.Time) (int, ctl) {
				if c.jumpCycles > 0 {
					c.retireCycles(vpc, c.at, c.jumpCycles)
				} else if c.prof != nil {
					c.prof.Insts(vpc, 1)
				}
				c.countInst(isa.ClassJump)
				return vpc + delta, ctlNext
			}
		}
		return func(c *Core, vpc int, _ sim.Time) (int, ctl) {
			c.regs[rd] = uint32(vpc + 1)
			if c.jumpCycles > 0 {
				c.retireCycles(vpc, c.at, c.jumpCycles)
			} else if c.prof != nil {
				c.prof.Insts(vpc, 1)
			}
			c.countInst(isa.ClassJump)
			return vpc + delta, ctlNext
		}

	case isa.ClassStreamLoad:
		slot := int(in.stream)
		width := int(in.width)
		rd := in.rd
		if in.op == isa.OpStreamLoad {
			w64 := int64(in.width)
			return func(c *Core, vpc int, _ sim.Time) (int, ctl) {
				t0 := c.at
				v := c.sys.Streams.In[slot].LoadDirect(width)
				c.setReg(rd, v)
				c.stats.StreamInBytes += w64
				c.streamRetire(vpc, t0, StallStreamWait)
				c.countInst(isa.ClassStreamLoad)
				return vpc + 1, ctlNext
			}
		}
		off := int64(in.imm)
		return func(c *Core, vpc int, _ sim.Time) (int, ctl) {
			t0 := c.at
			v := c.sys.Streams.In[slot].PeekDirect(off, width)
			c.setReg(rd, v)
			c.streamRetire(vpc, t0, StallStreamWait)
			c.countInst(isa.ClassStreamLoad)
			return vpc + 1, ctlNext
		}

	case isa.ClassStreamStore:
		slot := int(in.stream)
		width := int(in.width)
		rs2 := in.rs2
		w64 := int64(in.width)
		return func(c *Core, vpc int, _ sim.Time) (int, ctl) {
			t0 := c.at
			c.sys.Streams.Out[slot].Append(c.regs[rs2], width)
			c.stats.StreamOutBytes += w64
			c.streamRetire(vpc, t0, StallOutFull)
			c.countInst(isa.ClassStreamStore)
			return vpc + 1, ctlNext
		}

	case isa.ClassStreamCtl:
		slot := int(in.stream)
		switch in.op {
		case isa.OpStreamAdv:
			amount := int64(in.imm) * int64(in.width)
			return func(c *Core, vpc int, _ sim.Time) (int, ctl) {
				t0 := c.at
				if err := c.sys.Streams.In[slot].Adv(amount); err != nil {
					c.pc = vpc
					c.fail(err)
					return vpc, ctlHalted
				}
				c.retireCycles(vpc, t0, 1)
				c.countInst(isa.ClassStreamCtl)
				return vpc + 1, ctlNext
			}
		case isa.OpStreamEnd:
			rd := in.rd
			return func(c *Core, vpc int, _ sim.Time) (int, ctl) {
				t0 := c.at
				var v uint32
				if c.sys.Streams.In[slot].Exhausted() {
					v = 1
				}
				c.setReg(rd, v)
				c.retireCycles(vpc, t0, 1)
				c.countInst(isa.ClassStreamCtl)
				return vpc + 1, ctlNext
			}
		default: // OpStreamCsrR, imm in {0,1} (validated by buildLoop)
			rd := in.rd
			if in.imm == 0 {
				return func(c *Core, vpc int, _ sim.Time) (int, ctl) {
					t0 := c.at
					c.setReg(rd, uint32(c.sys.Streams.In[slot].Head()))
					c.retireCycles(vpc, t0, 1)
					c.countInst(isa.ClassStreamCtl)
					return vpc + 1, ctlNext
				}
			}
			return func(c *Core, vpc int, _ sim.Time) (int, ctl) {
				t0 := c.at
				c.setReg(rd, uint32(c.sys.Streams.In[slot].Tail()))
				c.retireCycles(vpc, t0, 1)
				c.countInst(isa.ClassStreamCtl)
				return vpc + 1, ctlNext
			}
		}

	case isa.ClassHalt:
		return func(c *Core, vpc int, _ sim.Time) (int, ctl) {
			period := c.cfg.Clock.Period
			c.halted = true
			c.at += period
			c.stats.BusyTime += period
			if c.prof != nil {
				c.prof.Record(vpc, period, int(StallExec), 0)
			}
			c.countInst(isa.ClassHalt)
			c.pc = vpc
			return vpc, ctlHalted
		}
	}
	return nil
}

// compileALU specializes one ALU instruction to a register-file effect. The
// op semantics mirror Core.alu / execALUBlock (kept in sync); rd == x0
// writes are dropped at translation time since ALU ops have no other
// architectural effect.
func compileALU(in *decoded) aluFn {
	rd, rs1, rs2 := in.rd, in.rs1, in.rs2
	imm := in.imm
	uimm := in.uimm
	if rd == 0 {
		return func(*regs) {}
	}
	switch in.op {
	case isa.OpAdd:
		return func(r *regs) { r[rd] = r[rs1] + r[rs2] }
	case isa.OpSub:
		return func(r *regs) { r[rd] = r[rs1] - r[rs2] }
	case isa.OpAnd:
		return func(r *regs) { r[rd] = r[rs1] & r[rs2] }
	case isa.OpOr:
		return func(r *regs) { r[rd] = r[rs1] | r[rs2] }
	case isa.OpXor:
		return func(r *regs) { r[rd] = r[rs1] ^ r[rs2] }
	case isa.OpSll:
		return func(r *regs) { r[rd] = r[rs1] << (r[rs2] & 31) }
	case isa.OpSrl:
		return func(r *regs) { r[rd] = r[rs1] >> (r[rs2] & 31) }
	case isa.OpSra:
		return func(r *regs) { r[rd] = uint32(int32(r[rs1]) >> (r[rs2] & 31)) }
	case isa.OpSlt:
		return func(r *regs) {
			if int32(r[rs1]) < int32(r[rs2]) {
				r[rd] = 1
			} else {
				r[rd] = 0
			}
		}
	case isa.OpSltu:
		return func(r *regs) {
			if r[rs1] < r[rs2] {
				r[rd] = 1
			} else {
				r[rd] = 0
			}
		}
	case isa.OpAddi:
		return func(r *regs) { r[rd] = r[rs1] + uimm }
	case isa.OpAndi:
		return func(r *regs) { r[rd] = r[rs1] & uimm }
	case isa.OpOri:
		return func(r *regs) { r[rd] = r[rs1] | uimm }
	case isa.OpXori:
		return func(r *regs) { r[rd] = r[rs1] ^ uimm }
	case isa.OpSlli:
		sh := uimm & 31
		return func(r *regs) { r[rd] = r[rs1] << sh }
	case isa.OpSrli:
		sh := uimm & 31
		return func(r *regs) { r[rd] = r[rs1] >> sh }
	case isa.OpSrai:
		sh := uimm & 31
		return func(r *regs) { r[rd] = uint32(int32(r[rs1]) >> sh) }
	case isa.OpSlti:
		return func(r *regs) {
			if int32(r[rs1]) < imm {
				r[rd] = 1
			} else {
				r[rd] = 0
			}
		}
	case isa.OpSltiu:
		return func(r *regs) {
			if r[rs1] < uimm {
				r[rd] = 1
			} else {
				r[rd] = 0
			}
		}
	case isa.OpLui:
		v := uimm << 12
		return func(r *regs) { r[rd] = v }
	default: // mirror Core.alu: unknown ALU-class ops write zero
		return func(r *regs) { r[rd] = 0 }
	}
}

// seqALU composes a straight ALU run into one closure. Small runs are
// unrolled so the sweep costs one call per instruction with no loop
// overhead; longer runs split recursively into a balanced call tree.
func seqALU(fns []aluFn) aluFn {
	switch len(fns) {
	case 0:
		return func(*regs) {}
	case 1:
		return fns[0]
	case 2:
		f0, f1 := fns[0], fns[1]
		return func(r *regs) { f0(r); f1(r) }
	case 3:
		f0, f1, f2 := fns[0], fns[1], fns[2]
		return func(r *regs) { f0(r); f1(r); f2(r) }
	case 4:
		f0, f1, f2, f3 := fns[0], fns[1], fns[2], fns[3]
		return func(r *regs) { f0(r); f1(r); f2(r); f3(r) }
	case 5:
		f0, f1, f2, f3, f4 := fns[0], fns[1], fns[2], fns[3], fns[4]
		return func(r *regs) { f0(r); f1(r); f2(r); f3(r); f4(r) }
	case 6:
		f0, f1, f2, f3, f4, f5 := fns[0], fns[1], fns[2], fns[3], fns[4], fns[5]
		return func(r *regs) {
			f0(r)
			f1(r)
			f2(r)
			f3(r)
			f4(r)
			f5(r)
		}
	default:
		mid := (len(fns) + 1) / 2
		a, b := seqALU(fns[:mid]), seqALU(fns[mid:])
		return func(r *regs) { a(r); b(r) }
	}
}

// loopKernelOf builds the closed-form multi-iteration kernel for a pure-ALU
// loop body: the iteration loop lives inside the closure, so executing m
// iterations costs one indirect call per body instruction and nothing else.
func loopKernelOf(fns []aluFn) loopKernel {
	switch len(fns) {
	case 0:
		return func(*regs, int64) {}
	case 1:
		f0 := fns[0]
		return func(r *regs, m int64) {
			for ; m > 0; m-- {
				f0(r)
			}
		}
	case 2:
		f0, f1 := fns[0], fns[1]
		return func(r *regs, m int64) {
			for ; m > 0; m-- {
				f0(r)
				f1(r)
			}
		}
	case 3:
		f0, f1, f2 := fns[0], fns[1], fns[2]
		return func(r *regs, m int64) {
			for ; m > 0; m-- {
				f0(r)
				f1(r)
				f2(r)
			}
		}
	case 4:
		f0, f1, f2, f3 := fns[0], fns[1], fns[2], fns[3]
		return func(r *regs, m int64) {
			for ; m > 0; m-- {
				f0(r)
				f1(r)
				f2(r)
				f3(r)
			}
		}
	default:
		body := seqALU(fns)
		return func(r *regs, m int64) {
			for ; m > 0; m-- {
				body(r)
			}
		}
	}
}
