package cpu

import (
	"reflect"
	"testing"

	"assasin/internal/asm"
	"assasin/internal/sim"
)

// execModes lists every interpreter strategy, reference first.
var execModes = []ExecMode{ExecPrecise, ExecFused, ExecCompiled}

// TestCoreZeroAllocPerStep proves the per-step hot path allocates nothing in
// any execution mode with telemetry disabled — the compiled engine's
// closures are all built at load time, so steady-state dispatch must stay
// allocation-free like the switch interpreters.
func TestCoreZeroAllocPerStep(t *testing.T) {
	bb := asm.New()
	loop := bb.Here()
	bb.Addi(asm.T0, asm.T0, 1)
	bb.Xor(asm.T2, asm.T2, asm.T0)
	bb.Slli(asm.T3, asm.T0, 3)
	bb.Add(asm.T2, asm.T2, asm.T3)
	bb.J(loop)
	prog := bb.MustBuild()
	for _, mode := range execModes {
		cfg := DefaultConfig("alloc-" + mode.String())
		cfg.BranchFree = true
		cfg.MaxInstructions = 1 << 62
		cfg.Exec = mode
		c := New(cfg, newTestSystem())
		c.LoadProgram(prog)
		c.Run(c.LocalTime() + 10*sim.Microsecond) // warm up
		allocs := testing.AllocsPerRun(100, func() {
			c.Run(c.LocalTime() + 10*sim.Microsecond)
		})
		if allocs != 0 {
			t.Errorf("%v: %v allocs per Run slice, want 0", mode, allocs)
		}
		if c.Err() != nil {
			t.Fatalf("%v: %v", mode, c.Err())
		}
	}
}

// TestCompiledMatchesPreciseStreamLoop runs a blocking stream loop — data
// arriving in small pushes, output drained late, small dispatch quanta — in
// all three modes and requires identical final registers, Stats, local time
// and output bytes. This covers the block/retry paths (stream-wait and
// out-full) that the whole-experiment soak only reaches through the
// firmware.
func TestCompiledMatchesPreciseStreamLoop(t *testing.T) {
	bb := asm.New()
	loop := bb.Here()
	bb.StreamLoad(asm.A0, 0, 4)
	bb.Add(asm.S0, asm.S0, asm.A0)
	bb.Andi(asm.T0, asm.A0, 0xff)
	bb.StreamStore(1, 4, asm.T0)
	bb.J(loop)
	prog := bb.MustBuild()

	type outcome struct {
		regs   [32]uint32
		stats  Stats
		at     sim.Time
		halted bool
		out    []byte
	}
	results := make(map[ExecMode]outcome)
	for _, mode := range execModes {
		cfg := DefaultConfig("equiv-" + mode.String())
		cfg.Exec = mode
		sys := newTestSystem()
		c := New(cfg, sys)
		c.LoadProgram(prog)
		in := sys.Streams.In[0]
		out := sys.Streams.Out[1]
		var collected []byte
		// Feed 3 small pushes with gaps, draining the output window between
		// dispatch slices so the core alternates between running, stream-wait
		// and out-full blocking.
		pushes := [][]byte{make([]byte, 64), make([]byte, 128), make([]byte, 52)}
		for i := range pushes {
			for j := range pushes[i] {
				pushes[i][j] = byte(i*31 + j*7)
			}
		}
		now := sim.Time(0)
		for i, p := range pushes {
			if err := in.Push(p, now+sim.Time(i)*sim.Microsecond); err != nil {
				t.Fatal(err)
			}
			for k := 0; k < 8; k++ {
				local, _, _ := c.Run(now + sim.Time(k+1)*200*sim.Nanosecond)
				now = local
				if b := out.Buffered(); b > 128 {
					collected = append(collected, out.Drain(b, now)...)
				}
			}
		}
		in.Close()
		for !c.Halted() {
			local, state, _ := c.Run(now + sim.Microsecond)
			now = local
			if b := out.Buffered(); b > 0 {
				collected = append(collected, out.Drain(b, now)...)
			}
			if state == sim.StateDone {
				break
			}
		}
		if c.Err() != nil {
			t.Fatalf("%v: %v", mode, c.Err())
		}
		results[mode] = outcome{
			regs:   c.regs,
			stats:  c.Stats(),
			at:     c.LocalTime(),
			halted: c.Halted(),
			out:    collected,
		}
	}
	ref := results[ExecPrecise]
	for _, mode := range []ExecMode{ExecFused, ExecCompiled} {
		if !reflect.DeepEqual(results[mode], ref) {
			t.Errorf("%v diverges from precise:\nprecise: %+v\n%v: %+v", mode, ref, mode, results[mode])
		}
	}
}
