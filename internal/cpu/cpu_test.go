package cpu

import (
	"bytes"
	"testing"

	"assasin/internal/asm"
	"assasin/internal/memhier"
	"assasin/internal/sim"
)

func newTestSystem() *memhier.System {
	dram := memhier.NewDRAM(memhier.DefaultDRAMConfig())
	return &memhier.System{
		Clock:      sim.NewClock(1e9),
		Scratchpad: memhier.NewScratchpad(64 << 10),
		DRAM:       dram,
		Backing:    memhier.NewSparseMem(),
		Streams:    memhier.NewStreamBuffer(4, 4, 256),
		ViewPath:   memhier.ViewScratchpad,
		Client:     "test",
	}
}

// runToHalt drives a standalone core to completion.
func runToHalt(t *testing.T, c *Core) {
	t.Helper()
	for i := 0; i < 1_000_000; i++ {
		_, state, _ := c.Run(sim.MaxTime)
		switch state {
		case sim.StateDone:
			if c.Err() != nil {
				t.Fatalf("core error: %v", c.Err())
			}
			return
		case sim.StateWaiting:
			t.Fatalf("core blocked unexpectedly at pc and no producer")
		}
	}
	t.Fatal("core did not halt")
}

func TestArithmeticProgram(t *testing.T) {
	b := asm.New()
	// sum = 1 + 2 + ... + 10
	b.Li(asm.A0, 0)
	b.Li(asm.T0, 1)
	b.Li(asm.T1, 11)
	loop := b.Here()
	b.Add(asm.A0, asm.A0, asm.T0)
	b.Addi(asm.T0, asm.T0, 1)
	b.Blt(asm.T0, asm.T1, loop)
	b.Halt()
	c := New(DefaultConfig("t"), newTestSystem())
	c.LoadProgram(b.MustBuild())
	runToHalt(t, c)
	if got := c.Reg(asm.A0); got != 55 {
		t.Fatalf("sum = %d, want 55", got)
	}
	st := c.Stats()
	if st.Instructions == 0 || st.BusyTime == 0 {
		t.Error("stats not accumulated")
	}
}

func TestALUOperations(t *testing.T) {
	b := asm.New()
	b.Li(asm.T0, -7)
	b.Li(asm.T1, 3)
	b.Mul(asm.A0, asm.T0, asm.T1)  // -21
	b.Div(asm.A1, asm.T0, asm.T1)  // -2
	b.Rem(asm.A2, asm.T0, asm.T1)  // -1
	b.Sra(asm.A3, asm.T0, asm.T1)  // -7>>3 = -1
	b.Srl(asm.A4, asm.T0, asm.T1)  // logical
	b.Sltu(asm.A5, asm.T1, asm.T0) // 3 < 0xFFFFFFF9 unsigned: 1
	b.Slt(asm.A6, asm.T0, asm.T1)  // -7 < 3: 1
	b.Xori(asm.A7, asm.T1, 5)      // 6
	b.Halt()
	c := New(DefaultConfig("t"), newTestSystem())
	c.LoadProgram(b.MustBuild())
	runToHalt(t, c)
	neg := func(v int64) uint32 { return uint32(int32(v)) }
	checks := map[asm.Reg]uint32{
		asm.A0: neg(-21),
		asm.A1: neg(-2),
		asm.A2: neg(-1),
		asm.A3: neg(-1),
		asm.A4: uint32(0xFFFFFFF9) >> 3,
		asm.A5: 1,
		asm.A6: 1,
		asm.A7: 6,
	}
	for r, want := range checks {
		if got := c.Reg(r); got != want {
			t.Errorf("reg x%d = %#x, want %#x", r, got, want)
		}
	}
}

func TestDivByZeroSemantics(t *testing.T) {
	b := asm.New()
	b.Li(asm.T0, 42)
	b.Li(asm.T1, 0)
	b.Div(asm.A0, asm.T0, asm.T1)  // -1
	b.Divu(asm.A1, asm.T0, asm.T1) // all ones
	b.Rem(asm.A2, asm.T0, asm.T1)  // dividend
	b.Halt()
	c := New(DefaultConfig("t"), newTestSystem())
	c.LoadProgram(b.MustBuild())
	runToHalt(t, c)
	if c.Reg(asm.A0) != ^uint32(0) || c.Reg(asm.A1) != ^uint32(0) || c.Reg(asm.A2) != 42 {
		t.Fatalf("div-by-zero: %#x %#x %d", c.Reg(asm.A0), c.Reg(asm.A1), c.Reg(asm.A2))
	}
}

func TestScratchpadLoadStore(t *testing.T) {
	b := asm.New()
	b.Li(asm.T0, memhier.ScratchpadBase+0x100)
	b.Li(asm.T1, -2)
	b.Sw(asm.T1, asm.T0, 0)
	b.Lhu(asm.A0, asm.T0, 0) // 0xFFFE
	b.Lh(asm.A1, asm.T0, 0)  // sign-extended -2
	b.Lbu(asm.A2, asm.T0, 3) // 0xFF
	b.Lb(asm.A3, asm.T0, 3)  // -1
	b.Halt()
	c := New(DefaultConfig("t"), newTestSystem())
	c.LoadProgram(b.MustBuild())
	runToHalt(t, c)
	minus2 := int32(-2)
	if c.Reg(asm.A0) != 0xFFFE || c.Reg(asm.A1) != uint32(minus2) ||
		c.Reg(asm.A2) != 0xFF || c.Reg(asm.A3) != ^uint32(0) {
		t.Fatalf("loads: %#x %#x %#x %#x", c.Reg(asm.A0), c.Reg(asm.A1), c.Reg(asm.A2), c.Reg(asm.A3))
	}
}

func TestJalJalrSubroutine(t *testing.T) {
	b := asm.New()
	sub := b.NewLabel()
	b.Li(asm.A0, 5)
	b.Jal(asm.RA, sub) // call
	b.Addi(asm.A0, asm.A0, 100)
	b.Halt()
	b.Bind(sub)
	b.Addi(asm.A0, asm.A0, 1)
	b.Ret()
	c := New(DefaultConfig("t"), newTestSystem())
	c.LoadProgram(b.MustBuild())
	runToHalt(t, c)
	if got := c.Reg(asm.A0); got != 106 {
		t.Fatalf("a0 = %d, want 106", got)
	}
}

func TestX0IsHardwiredZero(t *testing.T) {
	b := asm.New()
	b.Li(asm.T0, 99)
	b.Add(asm.Zero, asm.T0, asm.T0)
	b.Mv(asm.A0, asm.Zero)
	b.Halt()
	c := New(DefaultConfig("t"), newTestSystem())
	c.LoadProgram(b.MustBuild())
	runToHalt(t, c)
	if c.Reg(asm.A0) != 0 {
		t.Fatal("x0 written")
	}
}

// TestStreamCopyKernel runs the paper's Listing-1 style loop: stream bytes
// from input 0 to output 0 until end of stream (StreamLoad at EOS halts the
// core, modelling the firmware reset).
func TestStreamCopyKernel(t *testing.T) {
	b := asm.New()
	loop := b.Here()
	b.StreamLoad(asm.A0, 0, 1)
	b.StreamStore(0, 1, asm.A0)
	b.J(loop)
	prog := b.MustBuild()

	sys := newTestSystem()
	data := []byte("hello, assasin stream world")
	sys.Streams.In[0].Push(append([]byte(nil), data...), 0)
	sys.Streams.In[0].Close()

	c := New(DefaultConfig("t"), sys)
	c.LoadProgram(prog)
	runToHalt(t, c)

	got := sys.Streams.Out[0].Drain(1<<20, 0)
	if !bytes.Equal(got, data) {
		t.Fatalf("copied %q, want %q", got, data)
	}
	st := c.Stats()
	if st.StreamInBytes != int64(len(data)) || st.StreamOutBytes != int64(len(data)) {
		t.Fatalf("stream byte counts: in=%d out=%d", st.StreamInBytes, st.StreamOutBytes)
	}
}

// TestBlockedCoreWakesOnPush co-simulates a core with a producer event.
func TestBlockedCoreWakesOnPush(t *testing.T) {
	b := asm.New()
	loop := b.Here()
	b.StreamLoad(asm.A0, 0, 4)
	b.Add(asm.S0, asm.S0, asm.A0)
	b.J(loop)
	prog := b.MustBuild()

	sys := newTestSystem()
	c := New(DefaultConfig("core"), sys)
	c.LoadProgram(prog)

	sched := sim.NewScheduler()
	sched.Add(c)
	in := sys.Streams.In[0]
	in.OnPush = func(at sim.Time) {
		c.Wake(at)
		sched.Wake(c, at)
	}
	// Producer: two pages arriving late, then EOS.
	sched.Events.Schedule(10*sim.Microsecond, func(now sim.Time) {
		in.Push([]byte{1, 0, 0, 0, 2, 0, 0, 0}, now)
	})
	sched.Events.Schedule(30*sim.Microsecond, func(now sim.Time) {
		in.Push([]byte{3, 0, 0, 0}, now)
		in.Close()
		c.Wake(now)
		sched.Wake(c, now)
	})
	end, err := sched.Run(sim.MaxTime)
	if err != nil {
		t.Fatal(err)
	}
	if c.Err() != nil {
		t.Fatal(c.Err())
	}
	if got := c.Reg(asm.S0); got != 6 {
		t.Fatalf("sum = %d, want 6", got)
	}
	if end < 30*sim.Microsecond {
		t.Fatalf("finished at %v, before last page", end)
	}
	st := c.Stats()
	if st.StallTime[StallStreamWait] < 25*sim.Microsecond {
		t.Errorf("stream wait stall = %v, want ~30us", st.StallTime[StallStreamWait])
	}
}

func TestTimingALUOneCyclePerInstruction(t *testing.T) {
	b := asm.New()
	for i := 0; i < 100; i++ {
		b.Addi(asm.T0, asm.T0, 1)
	}
	b.Halt()
	c := New(DefaultConfig("t"), newTestSystem())
	c.LoadProgram(b.MustBuild())
	runToHalt(t, c)
	// 100 addi + halt = 101 cycles at 1 GHz.
	if got := c.LocalTime(); got != 101*sim.Nanosecond {
		t.Fatalf("local time = %v, want 101ns", got)
	}
}

func TestTimingBranchPenalty(t *testing.T) {
	// Loop of 10 taken branches: each iteration = addi (1) + bne taken (2).
	b := asm.New()
	b.Li(asm.T1, 10)
	loop := b.Here()
	b.Addi(asm.T0, asm.T0, 1)
	b.Bne(asm.T0, asm.T1, loop)
	b.Halt()
	c := New(DefaultConfig("t"), newTestSystem())
	c.LoadProgram(b.MustBuild())
	runToHalt(t, c)
	// li(1) + 10*(addi+bne) where 9 taken (2c) + 1 not-taken (1c) + halt
	want := sim.Time(1+10*1+9*2+1*1+1) * sim.Nanosecond
	if got := c.LocalTime(); got != want {
		t.Fatalf("local time = %v, want %v", got, want)
	}
}

func TestBranchFreeUDPTiming(t *testing.T) {
	build := func() *asm.Program {
		b := asm.New()
		b.Li(asm.T1, 50)
		loop := b.Here()
		b.Addi(asm.T0, asm.T0, 1)
		b.Bne(asm.T0, asm.T1, loop)
		b.Halt()
		return b.MustBuild()
	}
	normal := New(DefaultConfig("n"), newTestSystem())
	normal.LoadProgram(build())
	runToHalt(t, normal)

	cfg := DefaultConfig("udp")
	cfg.BranchFree = true
	udp := New(cfg, newTestSystem())
	udp.LoadProgram(build())
	runToHalt(t, udp)

	if udp.LocalTime() >= normal.LocalTime() {
		t.Fatalf("branch-free not faster: %v vs %v", udp.LocalTime(), normal.LocalTime())
	}
	if udp.Stats().Instructions != normal.Stats().Instructions {
		t.Fatalf("instruction counts differ: %d vs %d", udp.Stats().Instructions, normal.Stats().Instructions)
	}
}

func TestCachedLoadStallAccounting(t *testing.T) {
	dram := memhier.NewDRAM(memhier.DefaultDRAMConfig())
	sys := &memhier.System{
		Clock:   sim.NewClock(1e9),
		L1:      memhier.NewCache(memhier.CacheConfig{Name: "l1", Size: 1024, Ways: 2, LineSize: 64}, memhier.DRAMLevel{DRAM: dram}),
		DRAM:    dram,
		Backing: memhier.NewSparseMem(),
		Client:  "c",
	}
	sys.Backing.Write(memhier.DRAMBase, 4, 7)
	b := asm.New()
	b.Li(asm.T0, 0)
	b.Lui(asm.T0, 0x80000)
	b.Lw(asm.A0, asm.T0, 0)
	b.Halt()
	c := New(DefaultConfig("t"), sys)
	c.LoadProgram(b.MustBuild())
	runToHalt(t, c)
	if c.Reg(asm.A0) != 7 {
		t.Fatalf("loaded %d", c.Reg(asm.A0))
	}
	if c.Stats().StallTime[StallMem] < 50*sim.Nanosecond {
		t.Fatalf("DRAM miss stall = %v, want >= 50ns", c.Stats().StallTime[StallMem])
	}
}

func TestInstructionBudgetGuard(t *testing.T) {
	b := asm.New()
	loop := b.Here()
	b.J(loop) // infinite
	cfg := DefaultConfig("t")
	cfg.MaxInstructions = 1000
	c := New(cfg, newTestSystem())
	c.LoadProgram(b.MustBuild())
	_, state, _ := c.Run(sim.MaxTime)
	if state != sim.StateDone || c.Err() == nil {
		t.Fatal("runaway program not aborted")
	}
}

func TestStreamEndAndCsr(t *testing.T) {
	b := asm.New()
	b.StreamEnd(asm.A0, 0)
	b.StreamCsrR(asm.A1, 0, 1) // tail
	b.Halt()
	sys := newTestSystem()
	sys.Streams.In[0].Push(make([]byte, 16), 0)
	sys.Streams.In[0].Close()
	c := New(DefaultConfig("t"), sys)
	c.LoadProgram(b.MustBuild())
	runToHalt(t, c)
	if c.Reg(asm.A0) != 0 {
		t.Error("EOS with buffered data")
	}
	if c.Reg(asm.A1) != 16 {
		t.Errorf("tail CSR = %d", c.Reg(asm.A1))
	}
}

func TestHaltOnStreamEOS(t *testing.T) {
	b := asm.New()
	loop := b.Here()
	b.StreamLoad(asm.A0, 0, 4)
	b.Addi(asm.S0, asm.S0, 1)
	b.J(loop)
	sys := newTestSystem()
	sys.Streams.In[0].Push(make([]byte, 8), 0)
	sys.Streams.In[0].Close()
	c := New(DefaultConfig("t"), sys)
	c.LoadProgram(b.MustBuild())
	runToHalt(t, c)
	if !c.Halted() {
		t.Fatal("not halted")
	}
	if c.Reg(asm.S0) != 2 {
		t.Fatalf("iterations = %d, want 2", c.Reg(asm.S0))
	}
}

func TestOnHaltCallback(t *testing.T) {
	b := asm.New()
	b.Halt()
	c := New(DefaultConfig("t"), newTestSystem())
	c.LoadProgram(b.MustBuild())
	fired := sim.Time(-1)
	c.OnHalt(func(at sim.Time) { fired = at })
	runToHalt(t, c)
	if fired < 0 {
		t.Fatal("OnHalt not fired")
	}
}
