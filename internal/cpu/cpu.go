// Package cpu models the in-order scalar compute engines embedded in the
// simulated computational SSDs: an ISA-level interpreter (functional) with a
// cycle-accounting timing model (performance), in the spirit of a Gem5
// in-order core. One Core executes one assembled kernel program against a
// memhier.System; it implements sim.Process so the SSD scheduler can
// co-simulate many cores with the flash and DRAM world.
package cpu

import (
	"fmt"

	"assasin/internal/asm"
	"assasin/internal/isa"
	"assasin/internal/memhier"
	"assasin/internal/sim"
	"assasin/internal/telemetry"
	"assasin/internal/telemetry/kprof"
)

// Config sets a core's timing parameters.
type Config struct {
	Name  string
	Clock sim.Clock
	// MulCycles and DivCycles are the occupancy of M-extension ops (the
	// ibex fast multiplier takes 3 cycles; division is iterative).
	MulCycles int
	DivCycles int
	// BranchTakenPenalty is the pipeline-flush cost of a taken branch or
	// jump, in cycles beyond the issue cycle.
	BranchTakenPenalty int
	// BranchFree models the UDP accelerator's multiway dispatch and fused
	// compare-branch operations: control-flow instructions retire in zero
	// cycles with no taken penalty.
	BranchFree bool
	// MaxInstructions aborts runaway programs (0 = default guard).
	MaxInstructions int64
	// Exec selects the interpreter strategy: ExecCompiled (default)
	// translates the program to threaded code at load time, ExecFused runs
	// basic blocks and recognized stream loops as macro-steps through the
	// decode switch, ExecPrecise forces per-instruction stepping. All three
	// produce byte-identical timing and results.
	Exec ExecMode
}

// DefaultConfig returns 1 GHz ibex-like timing.
func DefaultConfig(name string) Config {
	return Config{
		Name:               name,
		Clock:              sim.NewClock(1e9),
		MulCycles:          3,
		DivCycles:          20,
		BranchTakenPenalty: 1,
	}
}

// StallKind categorizes where a core's non-busy cycles went (Fig. 5's cycle
// decomposition).
type StallKind int

// Stall categories.
const (
	// StallMem: waiting on the cache/DRAM hierarchy (loads and stores).
	StallMem StallKind = iota
	// StallStreamWait: waiting for stream data to arrive from the flash
	// array (or for availability of staged pages).
	StallStreamWait
	// StallOutFull: waiting for the firmware to drain a full output window.
	StallOutFull
	// StallExec: multi-cycle execution (mul/div) and branch penalties.
	StallExec
	numStallKinds
)

// String implements fmt.Stringer.
func (k StallKind) String() string {
	switch k {
	case StallMem:
		return "mem"
	case StallStreamWait:
		return "stream-wait"
	case StallOutFull:
		return "out-full"
	case StallExec:
		return "exec"
	default:
		return fmt.Sprintf("stall%d", int(k))
	}
}

// Stats accumulates a core's execution profile.
type Stats struct {
	Instructions int64
	ByClass      [16]int64
	// BusyTime is issue time: one cycle per retired instruction.
	BusyTime sim.Time
	// StallTime is non-issue time by category.
	StallTime [numStallKinds]sim.Time
	// LoadBytes / StoreBytes / StreamInBytes / StreamOutBytes count data
	// moved by the program.
	LoadBytes, StoreBytes, StreamInBytes, StreamOutBytes int64
	// Retries counts blocked accesses that had to be re-attempted.
	Retries int64
	// Dispatches counts scheduler run slices entered before the program
	// halted. The count is taken inside the shared interpreter entry, so it
	// is identical across Exec modes and data planes (the equivalence soaks
	// compare it); request tracing uses deltas to report per-request
	// dispatch slices.
	Dispatches int64
}

// TotalTime returns busy plus all stall time.
func (s *Stats) TotalTime() sim.Time {
	t := s.BusyTime
	for _, st := range s.StallTime {
		t += st
	}
	return t
}

// decoded is the load-time unpacked form of one instruction. Dispatch
// metadata the interpreter would otherwise recompute on every step — the
// timing class, load/store width and sign extension, the immediate in its
// unsigned reinterpretation — is resolved once per program load, keeping the
// per-instruction hot path to a class switch over flat fields.
type decoded struct {
	op     isa.Op
	class  isa.Class
	rd     uint8
	rs1    uint8
	rs2    uint8
	stream uint8
	width  uint8
	size   uint8 // load/store access bytes
	signed bool  // sign-extending load
	imm    int32
	uimm   uint32 // imm reinterpreted as uint32 (ALU immediates)
}

// Core is one simulated compute engine.
type Core struct {
	cfg     Config
	sys     *memhier.System
	dec     []decoded
	decFrom *asm.Program // program the decode cache was built from

	// Fused-execution metadata, rebuilt with the decode cache (fused.go):
	// aluRun[i] is the length of the straight ALU run starting at i, and
	// loops[i] non-nil marks i as the head of a recognized stream loop.
	aluRun []int32
	loops  []*loopInfo
	// comp is the load-time threaded-code translation (compiled.go);
	// non-nil only under ExecCompiled.
	comp *compiledProgram

	regs   [isa.NumRegs]uint32
	pc     int
	at     sim.Time
	halted bool
	err    error

	// Branch/jump cycle counts resolved from the config once.
	takenCycles    int
	notTakenCycles int
	jumpCycles     int

	blocked      bool
	blockKind    StallKind
	wakeAt       sim.Time
	maxInsts     int64
	stats        Stats
	haltCallback func(at sim.Time)

	// tel, when non-nil, is the core's trace track; Run emits one "exec"
	// span per dispatch slice on it (see AttachTelemetry).
	tel *telemetry.Track

	// kprofiler, when non-nil, is the attached guest-kernel profiler;
	// prof is the per-program recording sink bound at LoadProgram. Every
	// hook sits behind an `if c.prof != nil` guard so a detached core pays
	// only nil-pointer branches (the zero-cost contract, like tel).
	kprofiler *kprof.Profiler
	prof      *kprof.CoreProfile
}

// New returns a core ready to Load a program.
func New(cfg Config, sys *memhier.System) *Core {
	if cfg.Clock.Period <= 0 {
		cfg.Clock = sim.NewClock(1e9)
	}
	if cfg.MulCycles <= 0 {
		cfg.MulCycles = 3
	}
	if cfg.DivCycles <= 0 {
		cfg.DivCycles = 20
	}
	max := cfg.MaxInstructions
	if max <= 0 {
		max = 20_000_000_000
	}
	c := &Core{cfg: cfg, sys: sys, maxInsts: max}
	if cfg.BranchFree {
		// UDP multiway dispatch folds taken control flow into the preceding
		// operation; fall-through still occupies the dispatch slot.
		c.takenCycles = 0
		c.notTakenCycles = 1
		c.jumpCycles = 0
	} else {
		c.takenCycles = 1 + cfg.BranchTakenPenalty
		c.notTakenCycles = 1
		c.jumpCycles = 1 + cfg.BranchTakenPenalty
	}
	return c
}

// decode unpacks one instruction into its flat dispatch form.
func decode(in isa.Inst) decoded {
	d := decoded{
		op:     in.Op,
		class:  in.Op.Class(),
		rd:     in.Rd,
		rs1:    in.Rs1,
		rs2:    in.Rs2,
		stream: in.Stream,
		width:  in.Width,
		imm:    in.Imm,
		uimm:   uint32(in.Imm),
	}
	switch d.class {
	case isa.ClassLoad:
		size, signed := loadSize(in.Op)
		d.size = uint8(size)
		d.signed = signed
	case isa.ClassStore:
		d.size = uint8(storeSize(in.Op))
	}
	return d
}

// LoadProgram installs the kernel and resets architectural state. The local
// clock is preserved (the firmware resets PC and pipeline between requests,
// not time). Reloading the same program reuses the decoded form.
func (c *Core) LoadProgram(p *asm.Program) {
	if c.decFrom != p {
		c.dec = make([]decoded, len(p.Insts))
		for i, in := range p.Insts {
			c.dec[i] = decode(in)
		}
		c.aluRun, c.loops, c.comp = nil, nil, nil
		if c.cfg.Exec != ExecPrecise {
			c.aluRun, c.loops = analyzeProgram(c.dec)
			if c.cfg.Exec == ExecCompiled {
				c.comp = c.compileProgram()
			}
		}
		c.decFrom = p
	}
	if c.kprofiler != nil {
		c.prof = c.kprofiler.ForProgram(p, c.cfg.Clock.Period)
	}
	c.pc = 0
	c.halted = false
	c.err = nil
	c.blocked = false
	c.regs = [isa.NumRegs]uint32{}
}

// SetReg sets an argument register before the program starts.
func (c *Core) SetReg(r asm.Reg, v uint32) { c.regs[r] = v; c.regs[0] = 0 }

// Reg reads a register (for result extraction and tests).
func (c *Core) Reg(r asm.Reg) uint32 { return c.regs[r] }

// Sys returns the core's memory system.
func (c *Core) Sys() *memhier.System { return c.sys }

// Stats returns a copy of the execution profile.
func (c *Core) Stats() Stats { return c.stats }

// Err returns the simulation error that halted the core, if any.
func (c *Core) Err() error { return c.err }

// Halted reports whether the program has finished (halt, end-of-stream
// reset, or error).
func (c *Core) Halted() bool { return c.halted }

// LocalTime returns the core's local clock.
func (c *Core) LocalTime() sim.Time { return c.at }

// OnHalt registers a callback fired when the program halts (used by the
// offload engine to close output streams).
func (c *Core) OnHalt(fn func(at sim.Time)) { c.haltCallback = fn }

// Name implements sim.Process.
func (c *Core) Name() string { return c.cfg.Name }

// Wake notifies the core that stream state changed at time t; the scheduler
// wrapper uses wakeAt as the retry hint.
func (c *Core) Wake(t sim.Time) {
	if c.blocked && (c.wakeAt == sim.MaxTime || t < c.wakeAt) {
		c.wakeAt = t
	}
}

// AttachTelemetry gives the core a trace track on sink (nil sink detaches).
// With a track attached, Run emits one "exec" span per dispatch slice
// [entry local time, exit local time) annotated with the instructions
// retired in the slice, plus a "halt" instant when the program finishes.
// Both execution engines share this instrumentation point, and the fused
// engine's invariant — every Run call returns at the same local-time
// boundary as precise stepping — makes Fused and Precise traces identical
// at this (block-aligned) granularity.
func (c *Core) AttachTelemetry(sink *telemetry.Sink) {
	if sink == nil {
		c.tel = nil
		return
	}
	c.tel = sink.Track("cpu/" + c.cfg.Name)
}

// AttachKProf gives the core a guest-kernel profiler (nil detaches). The
// per-program recording sink is (re)bound at every LoadProgram, so the
// profiler sees all requests a core serves; value-sharing of cpu.StallKind
// and kprof's stall indices lets the hooks pass kinds through unchanged.
func (c *Core) AttachKProf(p *kprof.Profiler) {
	c.kprofiler = p
	if p == nil {
		c.prof = nil
		return
	}
	if c.decFrom != nil {
		c.prof = p.ForProgram(c.decFrom, c.cfg.Clock.Period)
	}
}

// Run implements sim.Process; the telemetry wrapper around the interpreter
// proper (run) compiles to a nil-pointer branch when disabled.
func (c *Core) Run(limit sim.Time) (sim.Time, sim.RunState, sim.Time) {
	if c.tel == nil {
		return c.run(limit)
	}
	start := c.at
	startInsts := c.stats.Instructions
	haltedBefore := c.halted
	local, state, wake := c.run(limit)
	if local > start {
		c.tel.Span("exec", int64(start), int64(local),
			telemetry.Arg{Key: "insts", Val: c.stats.Instructions - startInsts})
	}
	if state == sim.StateDone && !haltedBefore {
		c.tel.Instant("halt", int64(local))
	}
	return local, state, wake
}

// run interprets instructions until the local clock passes limit, the core
// blocks, or the program halts.
func (c *Core) run(limit sim.Time) (sim.Time, sim.RunState, sim.Time) {
	if c.halted {
		return c.at, sim.StateDone, 0
	}
	c.stats.Dispatches++
	period := c.cfg.Clock.Period
	if c.blocked && c.wakeAt != sim.MaxTime {
		// An external wake told us when the blocking condition cleared;
		// the waited time is stall of the blocking kind.
		if c.wakeAt > c.at {
			c.stats.StallTime[c.blockKind] += c.wakeAt - c.at
			if c.prof != nil {
				// Blocked-wait: charged to the pc that will retry, with no
				// instruction retired. All engines block at the same pc.
				c.prof.Stall(c.pc, int(c.blockKind), c.wakeAt-c.at)
			}
			c.at = c.wakeAt
		}
		c.wakeAt = sim.MaxTime
	}
	fused := c.cfg.Exec != ExecPrecise
	for c.at <= limit {
		if c.pc < 0 || c.pc >= len(c.dec) {
			c.fail(fmt.Errorf("cpu %s: pc %d out of program (len %d)", c.cfg.Name, c.pc, len(c.dec)))
			return c.at, sim.StateDone, 0
		}
		if c.stats.Instructions >= c.maxInsts {
			c.fail(fmt.Errorf("cpu %s: instruction budget %d exceeded", c.cfg.Name, c.maxInsts))
			return c.at, sim.StateDone, 0
		}
		if fused {
			if li := c.loops[c.pc]; li != nil {
				switch c.runLoop(li, limit) {
				case loopProgress:
					c.blocked = false
					continue
				case loopBlockedExit:
					if !c.blocked {
						c.blocked = true
						c.wakeAt = sim.MaxTime
					}
					c.stats.Retries++
					return c.at, sim.StateWaiting, c.wakeAt
				case loopHaltedExit:
					c.blocked = false
					if c.haltCallback != nil {
						c.haltCallback(c.at)
					}
					return c.at, sim.StateDone, 0
				}
				// loopNoProgress: fall through to the per-instruction path,
				// which is guaranteed to advance, block, or halt.
			} else if n := c.aluRun[c.pc]; n > 1 {
				c.pc = c.runALUBlock(c.pc, int(n), limit)
				c.blocked = false
				continue
			}
		}
		in := &c.dec[c.pc]
		blocked := c.step(in, period)
		if blocked {
			if !c.blocked {
				c.blocked = true
				c.wakeAt = sim.MaxTime
			}
			c.stats.Retries++
			return c.at, sim.StateWaiting, c.wakeAt
		}
		c.blocked = false
		if c.halted {
			if c.haltCallback != nil {
				c.haltCallback(c.at)
			}
			return c.at, sim.StateDone, 0
		}
	}
	return c.at, sim.StateReady, 0
}

// fail halts the core with an error.
func (c *Core) fail(err error) {
	c.err = err
	c.halted = true
	if c.haltCallback != nil {
		c.haltCallback(c.at)
	}
}

// retire advances time for the instruction at pc that issued at t0 and
// completed its data at done, charging any slack to kind.
func (c *Core) retire(pc int, t0, done sim.Time, kind StallKind) {
	period := c.cfg.Clock.Period
	end := t0 + period
	c.stats.BusyTime += period
	var stall sim.Time
	if done > t0 && done+period > end {
		stall = done + period - end
		c.stats.StallTime[kind] += stall
		end = done + period
	}
	if c.prof != nil {
		c.prof.Record(pc, period, int(kind), stall)
	}
	c.at = end
}

// retireCycles advances time for the instruction at pc by 1 issue cycle +
// (cycles-1) execution cycles.
func (c *Core) retireCycles(pc int, t0 sim.Time, cycles int) {
	period := c.cfg.Clock.Period
	c.stats.BusyTime += period
	var stall sim.Time
	if cycles > 1 {
		stall = sim.Time(cycles-1) * period
		c.stats.StallTime[StallExec] += stall
	}
	if c.prof != nil {
		c.prof.Record(pc, period, int(StallExec), stall)
	}
	c.at = t0 + sim.Time(cycles)*period
}

func (c *Core) setReg(r uint8, v uint32) {
	if r != 0 {
		c.regs[r] = v
	}
}

// step executes one instruction. It returns true when the instruction
// cannot complete yet (stream empty / output full); the core retries it
// after a wake.
func (c *Core) step(in *decoded, period sim.Time) (blocked bool) {
	t0 := c.at
	pc0 := c.pc
	cl := in.class
	switch cl {
	case isa.ClassALU:
		c.setReg(in.rd, c.alu(in))
		c.pc++
		c.retireCycles(pc0, t0, 1)

	case isa.ClassMul:
		c.setReg(in.rd, c.mul(in))
		c.pc++
		c.retireCycles(pc0, t0, c.cfg.MulCycles)

	case isa.ClassDiv:
		c.setReg(in.rd, c.div(in))
		c.pc++
		c.retireCycles(pc0, t0, c.cfg.DivCycles)

	case isa.ClassLoad:
		addr := c.regs[in.rs1] + in.uimm
		size := int(in.size)
		r, err := c.sys.Load(t0, addr, size, uint32(c.pc))
		if err != nil {
			c.fail(err)
			return false
		}
		if r.Status == memhier.LoadBlocked {
			c.blockKind = StallStreamWait
			return true
		}
		v := r.Value
		if in.signed {
			v = signExtendVal(v, size)
		}
		c.setReg(in.rd, v)
		c.stats.LoadBytes += int64(size)
		c.pc++
		c.retire(pc0, t0, r.Done, c.loadStallKind(addr))

	case isa.ClassStore:
		addr := c.regs[in.rs1] + in.uimm
		size := int(in.size)
		r, err := c.sys.Store(t0, addr, size, c.regs[in.rs2], uint32(c.pc))
		if err != nil {
			c.fail(err)
			return false
		}
		if r.Status == memhier.LoadBlocked {
			c.blockKind = StallOutFull
			return true
		}
		c.stats.StoreBytes += int64(size)
		c.pc++
		c.retire(pc0, t0, r.Done, StallMem)

	case isa.ClassBranch:
		taken := c.branch(in)
		var cycles int
		if taken {
			c.pc += int(in.imm)
			cycles = c.takenCycles
		} else {
			c.pc++
			cycles = c.notTakenCycles
		}
		if cycles > 0 {
			c.retireCycles(pc0, t0, cycles)
		} else if c.prof != nil {
			// Zero-cycle taken branch (BranchFree): retired, no time.
			c.prof.Insts(pc0, 1)
		}

	case isa.ClassJump:
		link := uint32(c.pc + 1)
		if in.op == isa.OpJal {
			c.pc += int(in.imm)
		} else { // jalr: absolute instruction index
			c.pc = int(c.regs[in.rs1] + in.uimm)
		}
		c.setReg(in.rd, link)
		if c.jumpCycles > 0 {
			c.retireCycles(pc0, t0, c.jumpCycles)
		} else if c.prof != nil {
			c.prof.Insts(pc0, 1)
		}

	case isa.ClassStreamLoad:
		var r memhier.AccessResult
		var err error
		if in.op == isa.OpStreamLoad {
			r, err = c.sys.StreamLoad(t0, int(in.stream), int(in.width))
		} else {
			r, err = c.sys.StreamPeek(t0, int(in.stream), int(in.width), int64(in.imm))
		}
		if err != nil {
			c.fail(err)
			return false
		}
		switch r.Status {
		case memhier.LoadBlocked:
			c.blockKind = StallStreamWait
			return true
		case memhier.LoadEOS:
			// Listing 1: the loop ends when StreamLoad hangs at end of
			// stream and the firmware resets the core.
			c.halted = true
			c.at = t0 + period
			return false
		}
		c.setReg(in.rd, r.Value)
		if in.op == isa.OpStreamLoad {
			c.stats.StreamInBytes += int64(in.width)
		}
		c.pc++
		c.retire(pc0, t0, r.Done, StallStreamWait)

	case isa.ClassStreamStore:
		r, err := c.sys.StreamStore(t0, int(in.stream), int(in.width), c.regs[in.rs2])
		if err != nil {
			c.fail(err)
			return false
		}
		if r.Status == memhier.LoadBlocked {
			c.blockKind = StallOutFull
			return true
		}
		c.stats.StreamOutBytes += int64(in.width)
		c.pc++
		c.retire(pc0, t0, r.Done, StallOutFull)

	case isa.ClassStreamCtl:
		switch in.op {
		case isa.OpStreamAdv:
			amount := int64(in.imm) * int64(in.width)
			r, err := c.sys.StreamAdv(t0, int(in.stream), amount)
			if err != nil {
				c.fail(err)
				return false
			}
			if r.Status == memhier.LoadBlocked {
				c.blockKind = StallStreamWait
				return true
			}
		case isa.OpStreamEnd:
			v, err := c.sys.StreamEnd(int(in.stream))
			if err != nil {
				c.fail(err)
				return false
			}
			c.setReg(in.rd, v)
		case isa.OpStreamCsrR:
			v, err := c.sys.StreamCsr(int(in.stream), in.imm)
			if err != nil {
				c.fail(err)
				return false
			}
			c.setReg(in.rd, v)
		}
		c.pc++
		c.retireCycles(pc0, t0, 1)

	case isa.ClassHalt:
		c.halted = true
		c.at = t0 + period
		c.stats.BusyTime += period
		if c.prof != nil {
			c.prof.Record(pc0, period, int(StallExec), 0)
		}

	default:
		c.fail(fmt.Errorf("cpu %s: unknown class for %v", c.cfg.Name, in.op))
		return false
	}
	c.stats.Instructions++
	c.stats.ByClass[cl]++
	return false
}

// loadStallKind attributes load stalls: stream-view addresses stall on flash
// data, everything else on the memory hierarchy.
func (c *Core) loadStallKind(addr uint32) StallKind {
	if addr >= memhier.StreamInViewBase && addr < memhier.DRAMBase {
		if c.sys.ViewPath == memhier.ViewScratchpad {
			return StallStreamWait
		}
		// Cached view stalls are dominated by the cache/DRAM path.
		return StallMem
	}
	return StallMem
}

func (c *Core) alu(in *decoded) uint32 {
	a := c.regs[in.rs1]
	b := c.regs[in.rs2]
	imm := in.uimm
	switch in.op {
	case isa.OpAdd:
		return a + b
	case isa.OpSub:
		return a - b
	case isa.OpAnd:
		return a & b
	case isa.OpOr:
		return a | b
	case isa.OpXor:
		return a ^ b
	case isa.OpSll:
		return a << (b & 31)
	case isa.OpSrl:
		return a >> (b & 31)
	case isa.OpSra:
		return uint32(int32(a) >> (b & 31))
	case isa.OpSlt:
		if int32(a) < int32(b) {
			return 1
		}
		return 0
	case isa.OpSltu:
		if a < b {
			return 1
		}
		return 0
	case isa.OpAddi:
		return a + imm
	case isa.OpAndi:
		return a & imm
	case isa.OpOri:
		return a | imm
	case isa.OpXori:
		return a ^ imm
	case isa.OpSlli:
		return a << (imm & 31)
	case isa.OpSrli:
		return a >> (imm & 31)
	case isa.OpSrai:
		return uint32(int32(a) >> (imm & 31))
	case isa.OpSlti:
		if int32(a) < in.imm {
			return 1
		}
		return 0
	case isa.OpSltiu:
		if a < imm {
			return 1
		}
		return 0
	case isa.OpLui:
		return imm << 12
	default:
		return 0
	}
}

func (c *Core) mul(in *decoded) uint32 {
	a := c.regs[in.rs1]
	b := c.regs[in.rs2]
	switch in.op {
	case isa.OpMul:
		return a * b
	case isa.OpMulh:
		return uint32(uint64(int64(int32(a))*int64(int32(b))) >> 32)
	case isa.OpMulhu:
		return uint32(uint64(a) * uint64(b) >> 32)
	default:
		return 0
	}
}

func (c *Core) div(in *decoded) uint32 {
	a := c.regs[in.rs1]
	b := c.regs[in.rs2]
	switch in.op {
	case isa.OpDiv:
		if b == 0 {
			return ^uint32(0) // RISC-V: div by zero = -1
		}
		if int32(a) == -1<<31 && int32(b) == -1 {
			return a // overflow: return dividend
		}
		return uint32(int32(a) / int32(b))
	case isa.OpDivu:
		if b == 0 {
			return ^uint32(0)
		}
		return a / b
	case isa.OpRem:
		if b == 0 {
			return a
		}
		if int32(a) == -1<<31 && int32(b) == -1 {
			return 0
		}
		return uint32(int32(a) % int32(b))
	case isa.OpRemu:
		if b == 0 {
			return a
		}
		return a % b
	default:
		return 0
	}
}

func (c *Core) branch(in *decoded) bool {
	a := c.regs[in.rs1]
	b := c.regs[in.rs2]
	switch in.op {
	case isa.OpBeq:
		return a == b
	case isa.OpBne:
		return a != b
	case isa.OpBlt:
		return int32(a) < int32(b)
	case isa.OpBge:
		return int32(a) >= int32(b)
	case isa.OpBltu:
		return a < b
	case isa.OpBgeu:
		return a >= b
	default:
		return false
	}
}

func loadSize(op isa.Op) (size int, signed bool) {
	switch op {
	case isa.OpLb:
		return 1, true
	case isa.OpLbu:
		return 1, false
	case isa.OpLh:
		return 2, true
	case isa.OpLhu:
		return 2, false
	default:
		return 4, false
	}
}

func storeSize(op isa.Op) int {
	switch op {
	case isa.OpSb:
		return 1
	case isa.OpSh:
		return 2
	default:
		return 4
	}
}

func signExtendVal(v uint32, size int) uint32 {
	switch size {
	case 1:
		return uint32(int32(int8(v)))
	case 2:
		return uint32(int32(int16(v)))
	default:
		return v
	}
}
