package cpu

import (
	"testing"

	"assasin/internal/asm"
	"assasin/internal/memhier"
	"assasin/internal/sim"
)

// BenchmarkInterpreterALU measures raw interpretation speed — the quantity
// that bounds how much simulated work the experiments can afford.
func BenchmarkInterpreterALU(b *testing.B) {
	bb := asm.New()
	bb.Li(asm.T1, 1<<30)
	loop := bb.Here()
	bb.Addi(asm.T0, asm.T0, 1)
	bb.Xor(asm.T2, asm.T2, asm.T0)
	bb.Slli(asm.T3, asm.T0, 3)
	bb.Add(asm.T2, asm.T2, asm.T3)
	bb.Bltu(asm.T0, asm.T1, loop)
	bb.Halt()
	prog := bb.MustBuild()
	c := New(DefaultConfig("bench"), newTestSystem())
	c.LoadProgram(prog)
	b.ResetTimer()
	total := int64(0)
	for total < int64(b.N) {
		c.Run(c.LocalTime() + 100*sim.Microsecond)
		total += 100_000
	}
	b.ReportMetric(float64(c.Stats().Instructions)/float64(b.Elapsed().Seconds())/1e6, "Minstr/s")
}

// BenchmarkCoreStepALU measures the per-instruction dispatch cost of the
// interpreter's hot loop (one op per iteration, allocation-free) in each
// execution mode.
func BenchmarkCoreStepALU(b *testing.B) {
	bb := asm.New()
	loop := bb.Here()
	bb.Addi(asm.T0, asm.T0, 1)
	bb.Xor(asm.T2, asm.T2, asm.T0)
	bb.Slli(asm.T3, asm.T0, 3)
	bb.Add(asm.T2, asm.T2, asm.T3)
	bb.J(loop)
	prog := bb.MustBuild()
	for _, mode := range []ExecMode{ExecCompiled, ExecFused, ExecPrecise} {
		b.Run(mode.String(), func(b *testing.B) {
			cfg := DefaultConfig("bench")
			cfg.BranchFree = true // keep the loop pure dispatch: no flush cycles
			cfg.MaxInstructions = 1 << 62
			cfg.Exec = mode
			c := New(cfg, newTestSystem())
			c.LoadProgram(prog)
			b.ReportAllocs()
			b.ResetTimer()
			for c.Stats().Instructions < int64(b.N) {
				c.Run(c.LocalTime() + 100*sim.Microsecond)
			}
			if c.Err() != nil {
				b.Fatal(c.Err())
			}
		})
	}
}

// BenchmarkCoreFusedBlock compares the fused basic-block engine against
// precise per-instruction stepping on the same straight-line ALU loop — the
// speedup the fused default buys (the Stats the two modes produce are
// byte-identical; see internal/experiments' equivalence soak).
func BenchmarkCoreFusedBlock(b *testing.B) {
	build := func() *asm.Program {
		bb := asm.New()
		loop := bb.Here()
		bb.Addi(asm.T0, asm.T0, 1)
		bb.Xor(asm.T2, asm.T2, asm.T0)
		bb.Slli(asm.T3, asm.T0, 3)
		bb.Add(asm.T2, asm.T2, asm.T3)
		bb.Addi(asm.T4, asm.T2, 7)
		bb.And(asm.T5, asm.T4, asm.T0)
		bb.Or(asm.T6, asm.T5, asm.T2)
		bb.Sub(asm.S0, asm.T6, asm.T0)
		bb.J(loop)
		return bb.MustBuild()
	}
	for _, mode := range []ExecMode{ExecCompiled, ExecFused, ExecPrecise} {
		b.Run(mode.String(), func(b *testing.B) {
			cfg := DefaultConfig("bench")
			cfg.BranchFree = true
			cfg.MaxInstructions = 1 << 62
			cfg.Exec = mode
			c := New(cfg, newTestSystem())
			c.LoadProgram(build())
			b.ReportAllocs()
			b.ResetTimer()
			for c.Stats().Instructions < int64(b.N) {
				c.Run(c.LocalTime() + 100*sim.Microsecond)
			}
			if c.Err() != nil {
				b.Fatal(c.Err())
			}
		})
	}
}

// BenchmarkCoreCompiledBlock exercises the threaded-code loop-body driver on
// a recognized loop that is NOT pure-ALU (its back edge is a conditional
// branch), so every iteration runs the per-instruction closure chain rather
// than the closed-form batch kernel — the cost profile of real stream-kernel
// bodies with data-dependent control flow.
func BenchmarkCoreCompiledBlock(b *testing.B) {
	bb := asm.New()
	bb.Li(asm.T1, 1<<30)
	loop := bb.Here()
	bb.Addi(asm.T0, asm.T0, 1)
	bb.Xor(asm.T2, asm.T2, asm.T0)
	bb.Slli(asm.T3, asm.T0, 3)
	bb.Add(asm.T2, asm.T2, asm.T3)
	bb.Bltu(asm.T0, asm.T1, loop)
	bb.Halt()
	prog := bb.MustBuild()
	for _, mode := range []ExecMode{ExecCompiled, ExecFused, ExecPrecise} {
		b.Run(mode.String(), func(b *testing.B) {
			cfg := DefaultConfig("bench")
			cfg.BranchFree = true
			cfg.MaxInstructions = 1 << 62
			cfg.Exec = mode
			c := New(cfg, newTestSystem())
			c.LoadProgram(prog)
			b.ReportAllocs()
			b.ResetTimer()
			for c.Stats().Instructions < int64(b.N) {
				c.Run(c.LocalTime() + 100*sim.Microsecond)
			}
			if c.Err() != nil {
				b.Fatal(c.Err())
			}
		})
	}
}

// BenchmarkStreamLoadPath measures the stream-ISA fast path end to end in
// each execution mode (the bulk-ingest analog of memhier's
// BenchmarkStreamBulkCopy, with the core in the loop).
func BenchmarkStreamLoadPath(b *testing.B) {
	bb := asm.New()
	loop := bb.Here()
	bb.StreamLoad(asm.A0, 0, 4)
	bb.Add(asm.S0, asm.S0, asm.A0)
	bb.J(loop)
	prog := bb.MustBuild()
	for _, mode := range []ExecMode{ExecCompiled, ExecFused, ExecPrecise} {
		b.Run(mode.String(), func(b *testing.B) {
			cfg := DefaultConfig("bench")
			cfg.Exec = mode
			sys := newTestSystem()
			c := New(cfg, sys)
			c.LoadProgram(prog)
			in := sys.Streams.In[0]
			page := make([]byte, 1024)
			b.SetBytes(1024)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for !in.CanPush(len(page)) {
					c.Run(c.LocalTime() + sim.Microsecond)
				}
				in.Push(page, 0)
				c.Run(c.LocalTime() + 10*sim.Microsecond)
			}
		})
	}
}

// BenchmarkCachedLoadPath measures the cache-hierarchy load path.
func BenchmarkCachedLoadPath(b *testing.B) {
	dram := memhier.NewDRAM(memhier.DefaultDRAMConfig())
	l2 := memhier.NewCache(memhier.CacheConfig{Name: "l2", Size: 256 << 10, Ways: 16, LineSize: 64, HitLatency: 10 * sim.Nanosecond}, memhier.DRAMLevel{DRAM: dram})
	l1 := memhier.NewCache(memhier.CacheConfig{Name: "l1", Size: 32 << 10, Ways: 8, LineSize: 64}, l2)
	sys := &memhier.System{
		Clock:   sim.NewClock(1e9),
		L1:      l1,
		DRAM:    dram,
		Backing: memhier.NewSparseMem(),
		Client:  "bench",
	}
	bb := asm.New()
	bb.Lui(asm.S1, 0x80000)
	bb.Li(asm.T1, 1<<30)
	loop := bb.Here()
	bb.Lw(asm.A0, asm.S1, 0)
	bb.Addi(asm.S1, asm.S1, 4)
	bb.Addi(asm.T0, asm.T0, 1)
	bb.Bltu(asm.T0, asm.T1, loop)
	bb.Halt()
	c := New(DefaultConfig("bench"), sys)
	c.LoadProgram(bb.MustBuild())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Run(c.LocalTime() + 10*sim.Microsecond)
	}
	if c.Err() != nil {
		b.Fatal(c.Err())
	}
}
