package cpu

import (
	"bytes"
	"encoding/json"
	"testing"

	"assasin/internal/asm"
	"assasin/internal/sim"
	"assasin/internal/telemetry/kprof"
)

// TestKProfStallKindOrder pins the value identity between cpu.StallKind and
// kprof's stall-class indices that the recording hooks rely on.
func TestKProfStallKindOrder(t *testing.T) {
	pairs := [][2]int{
		{int(StallMem), kprof.StallMem},
		{int(StallStreamWait), kprof.StallStreamWait},
		{int(StallOutFull), kprof.StallOutFull},
		{int(StallExec), kprof.StallExec},
		{int(numStallKinds), kprof.NumStallKinds},
	}
	for _, p := range pairs {
		if p[0] != p[1] {
			t.Fatalf("cpu.StallKind %d != kprof index %d", p[0], p[1])
		}
	}
}

// TestKProfDisabledZeroAlloc proves the profiler hooks cost nothing when no
// profiler is attached: all three engines stay allocation-free per Run
// slice (the disabled-kprof half of the zero-cost contract; alloc-gate.sh
// runs this alongside the firmware and reqtrace guards).
func TestKProfDisabledZeroAlloc(t *testing.T) {
	bb := asm.New()
	loop := bb.Here()
	bb.Addi(asm.T0, asm.T0, 1)
	bb.Xor(asm.T2, asm.T2, asm.T0)
	bb.Slli(asm.T3, asm.T0, 3)
	bb.Add(asm.T2, asm.T2, asm.T3)
	bb.J(loop)
	prog := bb.MustBuild()
	for _, mode := range execModes {
		cfg := DefaultConfig("kprof-off-" + mode.String())
		cfg.BranchFree = true
		cfg.MaxInstructions = 1 << 62
		cfg.Exec = mode
		c := New(cfg, newTestSystem())
		// Attach then detach: the detached state must be as cheap as
		// never-attached.
		c.AttachKProf(kprof.New())
		c.AttachKProf(nil)
		c.LoadProgram(prog)
		c.Run(c.LocalTime() + 10*sim.Microsecond) // warm up
		allocs := testing.AllocsPerRun(100, func() {
			c.Run(c.LocalTime() + 10*sim.Microsecond)
		})
		if allocs != 0 {
			t.Errorf("%v: %v allocs per Run slice with kprof detached, want 0", mode, allocs)
		}
		if c.Err() != nil {
			t.Fatalf("%v: %v", mode, c.Err())
		}
	}
}

// TestKProfReconcilesAcrossModes drives the blocking stream loop of
// TestCompiledMatchesPreciseStreamLoop with a profiler attached in every
// mode and demands (a) byte-identical exports (JSON and pprof) across
// Precise/Fused/Compiled, and (b) exact reconciliation of the profile's
// totals with the core's Stats: instructions, busy time, and each stall
// class.
func TestKProfReconcilesAcrossModes(t *testing.T) {
	bb := asm.New()
	loop := bb.Here()
	bb.StreamLoad(asm.A0, 0, 4)
	bb.Add(asm.S0, asm.S0, asm.A0)
	bb.Andi(asm.T0, asm.A0, 0xff)
	bb.Mul(asm.T1, asm.T0, asm.A0)
	bb.StreamStore(1, 4, asm.T0)
	bb.J(loop)
	prog := bb.MustBuild()
	prog.Name = "streamsum"

	type outcome struct {
		stats Stats
		js    []byte
		pb    []byte
	}
	results := make(map[ExecMode]outcome)
	for _, mode := range execModes {
		cfg := DefaultConfig("kprof-" + mode.String())
		cfg.Exec = mode
		sys := newTestSystem()
		c := New(cfg, sys)
		profiler := kprof.New()
		c.AttachKProf(profiler)
		c.LoadProgram(prog)
		in := sys.Streams.In[0]
		out := sys.Streams.Out[1]
		pushes := [][]byte{make([]byte, 64), make([]byte, 128), make([]byte, 52)}
		for i := range pushes {
			for j := range pushes[i] {
				pushes[i][j] = byte(i*31 + j*7)
			}
		}
		now := sim.Time(0)
		for i, p := range pushes {
			if err := in.Push(p, now+sim.Time(i)*sim.Microsecond); err != nil {
				t.Fatal(err)
			}
			for k := 0; k < 8; k++ {
				local, _, _ := c.Run(now + sim.Time(k+1)*200*sim.Nanosecond)
				now = local
				if b := out.Buffered(); b > 128 {
					out.Drain(b, now)
				}
			}
		}
		in.Close()
		for !c.Halted() {
			local, state, _ := c.Run(now + sim.Microsecond)
			now = local
			if b := out.Buffered(); b > 0 {
				out.Drain(b, now)
			}
			if state == sim.StateDone {
				break
			}
		}
		if c.Err() != nil {
			t.Fatalf("%v: %v", mode, c.Err())
		}
		prof := profiler.Snapshot()
		insts, busy, exec, stream, outFull, mem := prof.Totals()
		st := c.Stats()
		if insts != st.Instructions {
			t.Errorf("%v: profile insts %d != stats %d", mode, insts, st.Instructions)
		}
		if busy != int64(st.BusyTime) {
			t.Errorf("%v: profile busy %d != stats %d", mode, busy, int64(st.BusyTime))
		}
		wantStalls := [numStallKinds]int64{
			StallMem:        mem,
			StallStreamWait: stream,
			StallOutFull:    outFull,
			StallExec:       exec,
		}
		for k := StallKind(0); k < numStallKinds; k++ {
			if wantStalls[k] != int64(st.StallTime[k]) {
				t.Errorf("%v: profile stall[%v] %d != stats %d",
					mode, k, wantStalls[k], int64(st.StallTime[k]))
			}
		}
		js, err := json.Marshal(prof)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := prof.Pprof()
		if err != nil {
			t.Fatal(err)
		}
		results[mode] = outcome{stats: st, js: js, pb: pb}
	}
	ref := results[ExecPrecise]
	for _, mode := range []ExecMode{ExecFused, ExecCompiled} {
		got := results[mode]
		if !bytes.Equal(got.js, ref.js) {
			t.Errorf("%v profile JSON diverges from precise:\nprecise: %s\n%v: %s",
				mode, ref.js, mode, got.js)
		}
		if !bytes.Equal(got.pb, ref.pb) {
			t.Errorf("%v pprof bytes diverge from precise", mode)
		}
	}
}
