package crossbar

import (
	"testing"

	"assasin/internal/sim"
)

// BenchmarkCrossbarArbitration measures the per-transfer cost of the port
// arbitration hot path under a mixed load: transfers rotate across four
// ports at a pace that makes roughly half of them find their port still
// busy (the contended branch) and half cut through clean. The path must be
// alloc-free — every feeder page delivery crosses it.
func BenchmarkCrossbarArbitration(b *testing.B) {
	x := New(DefaultConfig(4))
	const page = 4096
	b.ReportAllocs()
	b.ResetTimer()
	var at sim.Time
	for i := 0; i < b.N; i++ {
		// Advancing by half a page's transfer time keeps each port's next
		// arrival landing inside the previous transfer's occupancy.
		if _, err := x.Transfer(at, i&3, page); err != nil {
			b.Fatal(err)
		}
		at += sim.Time(page * 1e12 / 4e9 / 2)
	}
}
