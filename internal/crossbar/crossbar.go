// Package crossbar models the all-to-all interconnect between flash
// controllers and ASSASIN cores (Section V-A). Any controller can deliver
// pages to any core's input stream buffer, which is what lets ASSASIN pool
// compute across channels and stay robust to flash layout skew while the
// FTL places pages wherever it likes.
//
// The model is a set of core-side ingress ports, each a bandwidth server
// provisioned above the per-channel flash bandwidth so the crossbar itself
// is never the bottleneck in balanced operation (the paper reports >98%
// core utilization; Fig. 16-18). Channel-side egress contention is already
// captured by the flash channel bus servers.
package crossbar

import (
	"fmt"

	"assasin/internal/sim"
	"assasin/internal/telemetry"
)

// Config sizes the crossbar.
type Config struct {
	// Ports is the number of core-side ports.
	Ports int
	// PortBandwidth is each port's bandwidth in bytes/second.
	PortBandwidth float64
	// Latency is the fixed traversal latency per transfer.
	Latency sim.Time
}

// DefaultConfig provisions 4 GB/s ports (4x one flash channel, so a port
// can absorb multi-channel catch-up bursts after array-read jitter) with a
// small traversal latency.
func DefaultConfig(ports int) Config {
	return Config{Ports: ports, PortBandwidth: 4e9, Latency: 200 * sim.Nanosecond}
}

// Tel is the crossbar telemetry bundle. A grant is any accepted transfer;
// a conflict is a transfer that found its target port still busy with
// earlier traffic (i.e. arbitration made it queue).
type Tel struct {
	Grants    *telemetry.Counter
	Conflicts *telemetry.Counter
	Bytes     *telemetry.Counter
}

// NewTel registers the crossbar metrics on sink (nil sink -> nil Tel).
func NewTel(sink *telemetry.Sink) *Tel {
	if sink == nil {
		return nil
	}
	return &Tel{
		Grants:    sink.Counter("xbar", "grants"),
		Conflicts: sink.Counter("xbar", "conflicts"),
		Bytes:     sink.Counter("xbar", "bytes"),
	}
}

// Crossbar is the interconnect instance.
type Crossbar struct {
	cfg   Config
	ports []*sim.BandwidthServer

	// Tel, when non-nil, counts grants/conflicts/bytes per Transfer.
	Tel *Tel
}

// New returns a crossbar with cfg.Ports ingress ports.
func New(cfg Config) *Crossbar {
	if cfg.Ports <= 0 {
		panic("crossbar: no ports")
	}
	x := &Crossbar{cfg: cfg}
	for i := 0; i < cfg.Ports; i++ {
		x.ports = append(x.ports, sim.NewBandwidthServer(fmt.Sprintf("xbar-port%d", i), cfg.PortBandwidth, cfg.Latency))
	}
	return x
}

// Config returns the crossbar configuration.
func (x *Crossbar) Config() Config { return x.cfg }

// Transfer moves size bytes to core-side port at time at, returning the
// delivery completion time. The crossbar cuts through: a page flowing off a
// flash channel streams into the target buffer as it arrives, so an
// uncontended transfer adds only the traversal latency. Port bandwidth
// still bounds aggregate delivery (contended transfers queue).
func (x *Crossbar) Transfer(at sim.Time, port, size int) (sim.Time, error) {
	if port < 0 || port >= len(x.ports) {
		return 0, fmt.Errorf("crossbar: port %d out of range", port)
	}
	srv := x.ports[port]
	if t := x.Tel; t != nil {
		t.Grants.Inc()
		t.Bytes.Add(int64(size))
		if srv.NextFree() > at {
			t.Conflicts.Inc()
		}
	}
	occupied := srv.TransferTime(size)
	// Charge occupancy as if the transfer started streaming one transfer
	// time ago — cut-through: completion is gated by port backlog, not by
	// an extra store-and-forward hop.
	done := srv.Access(at-occupied, size)
	if done < at+x.cfg.Latency {
		done = at + x.cfg.Latency
	}
	return done, nil
}

// PortBytes returns the bytes delivered through one port.
func (x *Crossbar) PortBytes(port int) int64 { return x.ports[port].Bytes() }

// PortBusy returns one port's cumulative busy time.
func (x *Crossbar) PortBusy(port int) sim.Time { return x.ports[port].BusyTime() }

// PortUtilization returns one port's busy fraction over [0, now].
func (x *Crossbar) PortUtilization(port int, now sim.Time) float64 {
	return x.ports[port].Utilization(now)
}
