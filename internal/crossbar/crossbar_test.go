package crossbar

import (
	"testing"

	"assasin/internal/sim"
)

func TestCutThroughLatencyOnly(t *testing.T) {
	x := New(Config{Ports: 2, PortBandwidth: 4e9, Latency: 200 * sim.Nanosecond})
	// An uncontended transfer completes at arrival + latency (cut-through).
	done, err := x.Transfer(10*sim.Microsecond, 0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if done != 10*sim.Microsecond+200*sim.Nanosecond {
		t.Fatalf("done = %v, want arrival+latency", done)
	}
}

func TestPortBandwidthBoundsBursts(t *testing.T) {
	x := New(Config{Ports: 1, PortBandwidth: 4e9, Latency: 0})
	// A burst of transfers arriving together drains at port bandwidth:
	// 10 × 4 KiB at 4 GB/s ≈ 10.24 µs.
	var last sim.Time
	for i := 0; i < 10; i++ {
		d, err := x.Transfer(0, 0, 4096)
		if err != nil {
			t.Fatal(err)
		}
		last = d
	}
	if last < 8*sim.Microsecond {
		t.Fatalf("burst drained by %v; port bandwidth not enforced", last)
	}
	if x.PortBytes(0) != 40960 {
		t.Fatalf("port bytes = %d", x.PortBytes(0))
	}
}

func TestPortsIndependent(t *testing.T) {
	x := New(DefaultConfig(4))
	d0, _ := x.Transfer(0, 0, 4096)
	d1, _ := x.Transfer(0, 1, 4096)
	if d0 != d1 {
		t.Fatal("idle ports interfere")
	}
}

func TestInvalidPort(t *testing.T) {
	x := New(DefaultConfig(2))
	if _, err := x.Transfer(0, 5, 64); err == nil {
		t.Fatal("invalid port accepted")
	}
	if _, err := x.Transfer(0, -1, 64); err == nil {
		t.Fatal("negative port accepted")
	}
}

func TestUtilizationAccounting(t *testing.T) {
	x := New(Config{Ports: 1, PortBandwidth: 1e9, Latency: 0})
	x.Transfer(0, 0, 1000) // 1 µs of occupancy
	u := x.PortUtilization(0, 10*sim.Microsecond)
	if u < 0.09 || u > 0.11 {
		t.Fatalf("utilization = %.3f, want ~0.1", u)
	}
}

func TestZeroPortsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(Config{})
}
