// Package slo evaluates declarative service-level objectives over the
// request stream of a running simulation: per-tenant (and per-class)
// latency-threshold and availability targets, cumulative error-budget
// accounting, and multi-window burn-rate alert rules in the SRE-workbook
// style — a fast-burn rule that pages when the short-term burn rate is
// catastrophic, and a slow-burn rule that tickets on sustained budget
// consumption.
//
// The engine is fed from reqtrace completion events (ObserveRequest) and
// driven by the simulated clock: windows rotate and rules evaluate lazily
// at bucket boundaries of the underlying window.Windows, so alert
// transitions are a pure function of the request schedule — byte-identical
// for any worker count or wall-clock interleaving.
//
// Zero-cost contract: the nil *Engine is a valid disabled engine
// (Tick/ObserveRequest are nil-receiver no-ops), and the enabled
// request-completion path — match objectives, bump good/bad rates, observe
// the latency histogram — allocates nothing in steady state. Snapshots
// (Status) allocate and are meant for publication at evaluation
// boundaries, not per request.
package slo

import (
	"fmt"
	"strconv"
	"strings"

	"assasin/internal/telemetry/window"
)

// Objective is one declarative SLO: over requests matched by (Tenant,
// Class), the fraction of good events must stay >= Target, where good
// means "completed, and within LatencyPs when a threshold is set".
type Objective struct {
	// Name identifies the objective in reports and alert series.
	Name string `json:"name"`
	// Tenant restricts matching to one tenant label ("" matches all).
	Tenant string `json:"tenant,omitempty"`
	// Class restricts matching to one request kind, e.g. "offload",
	// "io-read", "io-write" ("" matches all).
	Class string `json:"class,omitempty"`
	// Target is the objective as a good-fraction in (0, 1), e.g. 0.999.
	Target float64 `json:"target"`
	// LatencyPs, when > 0, is the good/bad latency threshold; 0 declares a
	// pure availability objective (only failed requests are bad).
	LatencyPs int64 `json:"latency_ps,omitempty"`
}

// budgetFrac is the allowed bad fraction (1 - Target).
func (o Objective) budgetFrac() float64 { return 1 - o.Target }

// Rule is one multi-window burn-rate alert rule: it fires when the burn
// rate — observed bad fraction divided by the budget fraction — exceeds
// Factor over BOTH the long and the short window. The long window makes
// the alert meaningful (sustained burn), the short window makes it reset
// quickly once the burn stops.
type Rule struct {
	// Name identifies the rule ("fast-burn", "slow-burn").
	Name string `json:"name"`
	// Severity is the routing hint: "page" or "ticket".
	Severity string `json:"severity"`
	// LongPs and ShortPs are the two evaluation windows (clamped to the
	// engine's window geometry: at least one bucket, at most the window).
	LongPs  int64 `json:"long_ps"`
	ShortPs int64 `json:"short_ps"`
	// Factor is the burn-rate threshold (e.g. 14.4: the budget of the full
	// window would be gone in 1/14.4 of it).
	Factor float64 `json:"factor"`
}

// DefaultRules returns the SRE-workbook-style pair scaled to a window
// span: a fast-burn page over (window/4, window/16) at factor 14.4 and a
// slow-burn ticket over (window, window/8) at factor 2.
func DefaultRules(windowPs int64) []Rule {
	return []Rule{
		{Name: "fast-burn", Severity: "page", LongPs: windowPs / 4, ShortPs: windowPs / 16, Factor: 14.4},
		{Name: "slow-burn", Severity: "ticket", LongPs: windowPs, ShortPs: windowPs / 8, Factor: 2},
	}
}

// Config parameterizes an Engine.
type Config struct {
	// Objectives are evaluated independently; order is preserved in Status.
	Objectives []Objective
	// Rules are the burn-rate alert rules applied to every objective (nil
	// selects DefaultRules over the window span).
	Rules []Rule
	// Window is the rolling-window geometry shared by every objective's
	// good/bad rates and latency histogram.
	Window window.Config
}

// alertState tracks one (objective, rule) pair across evaluations.
type alertState struct {
	rule        Rule
	firing      bool
	sincePs     int64
	transitions int64
	burnLong    float64
	burnShort   float64
}

// objState is one objective's live accounting.
type objState struct {
	obj    Objective
	good   *window.Rate
	bad    *window.Rate
	lat    *window.Hist
	alerts []alertState
}

// Engine evaluates a set of objectives over the request stream. The nil
// *Engine is valid and disabled. An Engine belongs to one simulation
// goroutine; concurrent readers get immutable Status snapshots.
type Engine struct {
	win    *window.Windows
	states []*objState
	evals  int64

	// OnEval, when non-nil, is called on the simulation goroutine after
	// each bucket-boundary evaluation with the boundary's simulated time —
	// the publication hook live serving uses (build a Status/Snapshot and
	// hand it to the obs collector).
	OnEval func(boundaryPs int64)
}

// New builds an engine. Objectives must carry a Target in (0, 1); invalid
// objectives are rejected.
func New(cfg Config) (*Engine, error) {
	if len(cfg.Objectives) == 0 {
		return nil, fmt.Errorf("slo: no objectives")
	}
	e := &Engine{win: window.New(cfg.Window)}
	rules := cfg.Rules
	if rules == nil {
		rules = DefaultRules(e.win.WindowPs())
	}
	for i := range rules {
		if rules[i].LongPs < e.win.BucketPs() {
			rules[i].LongPs = e.win.BucketPs()
		}
		if rules[i].ShortPs < e.win.BucketPs() {
			rules[i].ShortPs = e.win.BucketPs()
		}
		if rules[i].Factor <= 0 {
			return nil, fmt.Errorf("slo: rule %q needs a positive factor", rules[i].Name)
		}
	}
	for i, o := range cfg.Objectives {
		if o.Target <= 0 || o.Target >= 1 {
			return nil, fmt.Errorf("slo: objective %q target %v outside (0, 1)", o.Name, o.Target)
		}
		if o.Name == "" {
			return nil, fmt.Errorf("slo: objective %d has no name", i)
		}
		st := &objState{
			obj:  o,
			good: e.win.Rate(o.Name + "/good"),
			bad:  e.win.Rate(o.Name + "/bad"),
			lat:  e.win.Hist(o.Name + "/latency"),
		}
		for _, r := range rules {
			st.alerts = append(st.alerts, alertState{rule: r})
		}
		e.states = append(e.states, st)
	}
	e.win.OnRotate = e.evaluate
	return e, nil
}

// Tick advances the engine's simulated clock — rotating windows and
// evaluating rules at crossed bucket boundaries. It is
// sim.Scheduler.OnAdvance-compatible and nil-safe.
func (e *Engine) Tick(nowPs int64) {
	if e == nil {
		return
	}
	e.win.Advance(nowPs)
}

// ObserveRequest records one finished request at nowPs: every matching
// objective classifies it good or bad and feeds its rolling latency
// histogram. failed marks requests that never completed (aborts); they are
// bad under every matching objective. Allocation-free and nil-safe.
func (e *Engine) ObserveRequest(nowPs int64, tenant, class string, latencyPs int64, failed bool) {
	if e == nil {
		return
	}
	for _, st := range e.states {
		o := &st.obj
		if o.Tenant != "" && o.Tenant != tenant {
			continue
		}
		if o.Class != "" && o.Class != class {
			continue
		}
		if !failed {
			st.lat.Observe(nowPs, latencyPs)
		}
		if !failed && (o.LatencyPs == 0 || latencyPs <= o.LatencyPs) {
			st.good.Inc(nowPs)
		} else {
			st.bad.Inc(nowPs)
		}
	}
}

// burn computes the burn rate over the trailing closed buckets of the
// span: observed bad fraction divided by the objective's budget fraction.
// No traffic means no burn.
func (st *objState) burn(spanPs int64) float64 {
	g, b := st.good.LastClosed(spanPs), st.bad.LastClosed(spanPs)
	total := g + b
	if total == 0 {
		return 0
	}
	return (float64(b) / float64(total)) / st.obj.budgetFrac()
}

// evaluate runs every (objective, rule) pair at a bucket boundary.
// Transitions are recorded with the boundary time, so alert history is
// deterministic sim-time data.
func (e *Engine) evaluate(boundaryPs int64) {
	for _, st := range e.states {
		for i := range st.alerts {
			a := &st.alerts[i]
			a.burnLong = st.burn(a.rule.LongPs)
			a.burnShort = st.burn(a.rule.ShortPs)
			firing := a.burnLong >= a.rule.Factor && a.burnShort >= a.rule.Factor
			if firing && !a.firing {
				a.firing = true
				a.sincePs = boundaryPs
				a.transitions++
			} else if !firing && a.firing {
				a.firing = false
				a.sincePs = 0
			}
		}
	}
	e.evals++
	if e.OnEval != nil {
		e.OnEval(boundaryPs)
	}
}

// Evaluations returns how many bucket-boundary evaluations have run.
func (e *Engine) Evaluations() int64 {
	if e == nil {
		return 0
	}
	return e.evals
}

// Windows exposes the engine's window domain (for /live snapshots of the
// same rings the rules read). Nil on a nil engine.
func (e *Engine) Windows() *window.Windows {
	if e == nil {
		return nil
	}
	return e.win
}

// AlertStatus is one (objective, rule) pair in a Status.
type AlertStatus struct {
	Rule        string  `json:"rule"`
	Severity    string  `json:"severity"`
	LongPs      int64   `json:"long_ps"`
	ShortPs     int64   `json:"short_ps"`
	Factor      float64 `json:"factor"`
	BurnLong    float64 `json:"burn_long"`
	BurnShort   float64 `json:"burn_short"`
	Firing      bool    `json:"firing"`
	SincePs     int64   `json:"since_ps,omitempty"`
	Transitions int64   `json:"transitions"`
}

// ObjectiveStatus is one objective's full state in a Status.
type ObjectiveStatus struct {
	Objective
	// Cumulative accounting since the run started.
	Good            int64   `json:"good"`
	Bad             int64   `json:"bad"`
	BadFrac         float64 `json:"bad_frac"`
	BudgetConsumed  float64 `json:"budget_consumed"`
	BudgetRemaining float64 `json:"budget_remaining"`
	// Rolling-window view.
	WindowGood int64         `json:"window_good"`
	WindowBad  int64         `json:"window_bad"`
	P50Ps      float64       `json:"p50_ps"`
	P95Ps      float64       `json:"p95_ps"`
	P99Ps      float64       `json:"p99_ps"`
	Alerts     []AlertStatus `json:"alerts"`
}

// Status is an immutable, JSON-serializable snapshot of the engine
// (served at /slo).
type Status struct {
	NowPs      int64             `json:"now_ps"`
	WindowPs   int64             `json:"window_ps"`
	BucketPs   int64             `json:"bucket_ps"`
	Objectives []ObjectiveStatus `json:"objectives"`
}

// Status advances to nowPs and snapshots every objective, in configuration
// order. Call from the simulation goroutine; hand the result to concurrent
// readers. Returns nil on a nil engine.
func (e *Engine) Status(nowPs int64) *Status {
	if e == nil {
		return nil
	}
	e.win.Advance(nowPs)
	out := &Status{NowPs: nowPs, WindowPs: e.win.WindowPs(), BucketPs: e.win.BucketPs()}
	for _, st := range e.states {
		good, bad := st.good.Total(), st.bad.Total()
		os := ObjectiveStatus{
			Objective:  st.obj,
			Good:       good,
			Bad:        bad,
			WindowGood: st.good.WindowCount(),
			WindowBad:  st.bad.WindowCount(),
		}
		if total := good + bad; total > 0 {
			os.BadFrac = float64(bad) / float64(total)
			os.BudgetConsumed = os.BadFrac / st.obj.budgetFrac()
		}
		os.BudgetRemaining = 1 - os.BudgetConsumed
		win := st.lat.Window()
		os.P50Ps = win.Percentile(0.50)
		os.P95Ps = win.Percentile(0.95)
		os.P99Ps = win.Percentile(0.99)
		for i := range st.alerts {
			a := &st.alerts[i]
			os.Alerts = append(os.Alerts, AlertStatus{
				Rule:        a.rule.Name,
				Severity:    a.rule.Severity,
				LongPs:      a.rule.LongPs,
				ShortPs:     a.rule.ShortPs,
				Factor:      a.rule.Factor,
				BurnLong:    a.burnLong,
				BurnShort:   a.burnShort,
				Firing:      a.firing,
				SincePs:     a.sincePs,
				Transitions: a.transitions,
			})
		}
		out.Objectives = append(out.Objectives, os)
	}
	return out
}

// Firing counts the currently-firing alerts in a status (any severity).
func (s *Status) Firing() int {
	if s == nil {
		return 0
	}
	n := 0
	for _, o := range s.Objectives {
		for _, a := range o.Alerts {
			if a.Firing {
				n++
			}
		}
	}
	return n
}

// ParseSpec parses a -slo flag value into objectives. Entries are
// comma-separated "tenant:target[:latency]" triples: tenant is a tenant
// label or "all"/"*" for every tenant; target is a percentage like 99.9;
// latency is an optional good/bad threshold with a unit suffix (ps, ns,
// us, ms, s), omitted for availability-only objectives. Examples:
//
//	gold:99.9:200us          gold requests complete within 200 µs 99.9% of the time
//	all:99:1ms,silver:99.5   one aggregate latency SLO plus a silver availability SLO
func ParseSpec(spec string) ([]Objective, error) {
	var out []Objective
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, ":")
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("slo: entry %q is not tenant:target[:latency]", entry)
		}
		tenant := strings.TrimSpace(parts[0])
		if tenant == "all" || tenant == "*" {
			tenant = ""
		}
		pct, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimSpace(parts[1]), "%"), 64)
		if err != nil || pct <= 0 || pct >= 100 {
			return nil, fmt.Errorf("slo: entry %q needs a target percentage in (0, 100)", entry)
		}
		o := Objective{Tenant: tenant, Target: pct / 100}
		if len(parts) == 3 {
			lat, err := ParseDuration(strings.TrimSpace(parts[2]))
			if err != nil {
				return nil, fmt.Errorf("slo: entry %q: %w", entry, err)
			}
			o.LatencyPs = lat
		}
		name := tenant
		if name == "" {
			name = "all"
		}
		o.Name = fmt.Sprintf("%s-p%s", name, strings.TrimSuffix(strings.TrimSpace(parts[1]), "%"))
		out = append(out, o)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("slo: empty spec")
	}
	return out, nil
}

// ParseDuration parses a simulated duration with a unit suffix (ps, ns,
// us, ms, s) into picoseconds.
func ParseDuration(s string) (int64, error) {
	units := []struct {
		suffix string
		mult   float64
	}{
		{"ps", 1}, {"ns", 1e3}, {"us", 1e6}, {"ms", 1e9}, {"s", 1e12},
	}
	for _, u := range units {
		if strings.HasSuffix(s, u.suffix) {
			// "ms" also ends in "s": try longest suffixes first by checking
			// that what remains parses as a number.
			v, err := strconv.ParseFloat(strings.TrimSuffix(s, u.suffix), 64)
			if err != nil {
				continue
			}
			if v < 0 {
				return 0, fmt.Errorf("negative duration %q", s)
			}
			return int64(v * u.mult), nil
		}
	}
	return 0, fmt.Errorf("duration %q needs a unit suffix (ps, ns, us, ms, s)", s)
}
