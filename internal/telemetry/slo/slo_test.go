package slo

import (
	"encoding/json"
	"math"
	"testing"

	"assasin/internal/telemetry/window"
)

const (
	ms = int64(1_000_000_000)
	us = int64(1_000_000)
)

// tightEngine builds an engine with one objective over a 10 ms / 10-bucket
// window and the default rule pair.
func tightEngine(t *testing.T, obj Objective) *Engine {
	t.Helper()
	e, err := New(Config{
		Objectives: []Objective{obj},
		Window:     window.Config{WindowPs: 10 * ms, Buckets: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestFastBurnFiresDeterministically(t *testing.T) {
	run := func() *Status {
		// 1 ns threshold: every request is bad -> burn = 1/(1-0.999) = 1000,
		// far above the fast-burn factor.
		e := tightEngine(t, Objective{Name: "tight", Target: 0.999, LatencyPs: 1000})
		for i := int64(0); i < 50; i++ {
			e.ObserveRequest(i*100*us, "gold", "io-read", 30*us, false)
		}
		e.Tick(5 * ms) // last closed bucket still carries bad traffic
		return e.Status(5 * ms)
	}
	s := run()
	if got := s.Firing(); got != 2 {
		b, _ := json.Marshal(s)
		t.Fatalf("firing alerts = %d, want 2 (fast and slow burn)\n%s", got, b)
	}
	fast := s.Objectives[0].Alerts[0]
	if fast.Rule != "fast-burn" || !fast.Firing {
		t.Fatalf("fast-burn not firing: %+v", fast)
	}
	if fast.BurnLong < 999 || fast.BurnShort < 999 {
		t.Fatalf("burn rates = %v/%v, want ~1000", fast.BurnLong, fast.BurnShort)
	}
	// SincePs is the first evaluated boundary after traffic appeared.
	if fast.SincePs != 1*ms {
		t.Fatalf("fast-burn since = %d, want %d", fast.SincePs, 1*ms)
	}
	// Byte-identical across runs: alert history is pure sim-time data.
	a, _ := json.Marshal(run())
	b, _ := json.Marshal(run())
	if string(a) != string(b) {
		t.Fatalf("status JSON differs between identical runs:\n%s\n%s", a, b)
	}
}

func TestAlertClearsWhenBurnStops(t *testing.T) {
	e := tightEngine(t, Objective{Name: "o", Target: 0.99, LatencyPs: 50 * us})
	// First 2 ms: all bad.
	for i := int64(0); i < 20; i++ {
		e.ObserveRequest(i*100*us, "t", "io-read", 80*us, false)
	}
	e.Tick(2 * ms)
	if s := e.Status(2 * ms); s.Firing() == 0 {
		t.Fatal("expected alerts to fire during the bad phase")
	}
	// Then sustained good traffic; the short window resets fast-burn once
	// the bad buckets leave it.
	for i := int64(30); i < 200; i++ {
		e.ObserveRequest(i*100*us, "t", "io-read", 10*us, false)
	}
	e.Tick(20 * ms)
	s := e.Status(20 * ms)
	for _, a := range s.Objectives[0].Alerts {
		if a.Firing {
			t.Fatalf("alert %s still firing after recovery: %+v", a.Rule, a)
		}
		if a.Transitions == 0 {
			t.Fatalf("alert %s recorded no transitions", a.Rule)
		}
	}
	// Error budget is cumulative: the bad phase stays on the books.
	if o := s.Objectives[0]; o.Bad != 20 || o.BudgetConsumed <= 0 {
		t.Fatalf("budget accounting lost the bad phase: %+v", o)
	}
}

func TestTenantAndClassMatching(t *testing.T) {
	e, err := New(Config{
		Objectives: []Objective{
			{Name: "gold", Tenant: "gold", Target: 0.99, LatencyPs: 50 * us},
			{Name: "silver-io", Tenant: "silver", Class: "io-read", Target: 0.9, LatencyPs: 50 * us},
			{Name: "all", Target: 0.999},
		},
		Window: window.Config{WindowPs: 10 * ms, Buckets: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	e.ObserveRequest(0, "gold", "io-read", 10*us, false)
	e.ObserveRequest(0, "gold", "offload", 80*us, false)    // bad for gold (latency)
	e.ObserveRequest(0, "silver", "io-write", 10*us, false) // class-filtered out of silver-io
	e.ObserveRequest(0, "silver", "io-read", 99*us, false)
	e.ObserveRequest(0, "bronze", "io-read", 0, true) // abort: bad for "all" only
	s := e.Status(0)
	byName := map[string]ObjectiveStatus{}
	for _, o := range s.Objectives {
		byName[o.Name] = o
	}
	if g := byName["gold"]; g.Good != 1 || g.Bad != 1 {
		t.Fatalf("gold good/bad = %d/%d, want 1/1", g.Good, g.Bad)
	}
	if sv := byName["silver-io"]; sv.Good+sv.Bad != 1 || sv.Bad != 1 {
		t.Fatalf("silver-io good/bad = %d/%d, want 0/1", sv.Good, sv.Bad)
	}
	if a := byName["all"]; a.Good != 4 || a.Bad != 1 {
		t.Fatalf("all good/bad = %d/%d, want 4/1 (abort is bad)", a.Good, a.Bad)
	}
}

func TestObserveRequestZeroAlloc(t *testing.T) {
	e := tightEngine(t, Objective{Name: "o", Tenant: "gold", Target: 0.999, LatencyPs: 50 * us})
	now := int64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		now += 37 * us
		e.Tick(now)
		e.ObserveRequest(now, "gold", "io-read", 20*us, false)
		e.ObserveRequest(now, "silver", "io-read", 20*us, false) // non-matching
	})
	if allocs != 0 {
		t.Fatalf("request-completion path allocates %v allocs/op, want 0", allocs)
	}
	var nilE *Engine
	allocs = testing.AllocsPerRun(100, func() {
		nilE.Tick(1)
		nilE.ObserveRequest(1, "t", "c", 1, false)
		_ = nilE.Status(1)
		_ = nilE.Evaluations()
	})
	if allocs != 0 {
		t.Fatalf("nil engine allocates %v allocs/op, want 0", allocs)
	}
}

func TestOnEvalPublicationHook(t *testing.T) {
	e := tightEngine(t, Objective{Name: "o", Target: 0.99})
	var boundaries []int64
	e.OnEval = func(b int64) { boundaries = append(boundaries, b) }
	e.ObserveRequest(0, "t", "c", 1, false)
	e.Tick(3 * ms)
	if len(boundaries) != 3 || boundaries[2] != 3*ms {
		t.Fatalf("OnEval boundaries = %v, want [1ms 2ms 3ms]", boundaries)
	}
	if e.Evaluations() != 3 {
		t.Fatalf("evaluations = %d, want 3", e.Evaluations())
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("no objectives must be rejected")
	}
	if _, err := New(Config{Objectives: []Objective{{Name: "x", Target: 1}}}); err == nil {
		t.Fatal("target 1.0 must be rejected (zero error budget)")
	}
	if _, err := New(Config{Objectives: []Objective{{Target: 0.9}}}); err == nil {
		t.Fatal("unnamed objective must be rejected")
	}
}

func TestParseSpec(t *testing.T) {
	objs, err := ParseSpec("gold:99.9:200us,all:99:1ms,silver:99.5")
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 3 {
		t.Fatalf("parsed %d objectives, want 3", len(objs))
	}
	if o := objs[0]; o.Tenant != "gold" || math.Abs(o.Target-0.999) > 1e-12 || o.LatencyPs != 200*us {
		t.Fatalf("gold objective = %+v", o)
	}
	if o := objs[1]; o.Tenant != "" || o.LatencyPs != 1*ms {
		t.Fatalf("all objective = %+v", o)
	}
	if o := objs[2]; o.Tenant != "silver" || o.LatencyPs != 0 {
		t.Fatalf("silver availability objective = %+v", o)
	}
	for _, bad := range []string{"", "gold", "gold:0:1us", "gold:100:1us", "gold:99:20", "gold:99:1us:extra"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("spec %q must be rejected", bad)
		}
	}
}

func TestParseDuration(t *testing.T) {
	cases := map[string]int64{
		"200us": 200 * us, "1ms": ms, "2.5ms": 2*ms + 500*us,
		"1s": 1_000_000_000_000, "500ns": 500_000, "42ps": 42,
	}
	for in, want := range cases {
		got, err := ParseDuration(in)
		if err != nil || got != want {
			t.Fatalf("ParseDuration(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "20", "-1us", "xus"} {
		if _, err := ParseDuration(bad); err == nil {
			t.Fatalf("duration %q must be rejected", bad)
		}
	}
}
