package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestCounterRegistrationGetOrCreate(t *testing.T) {
	s := NewSink()
	a := s.Counter("xbar", "grants")
	b := s.Counter("xbar", "grants")
	if a != b {
		t.Fatalf("same (component,name) returned distinct counters")
	}
	a.Inc()
	a.Add(4)
	if got := b.Value(); got != 5 {
		t.Fatalf("counter value = %d, want 5", got)
	}
	// Distinct names and components are distinct metrics.
	if s.Counter("xbar", "conflicts") == a {
		t.Fatalf("different name returned same counter")
	}
	if s.Counter("flash", "grants") == a {
		t.Fatalf("different component returned same counter")
	}
}

func TestKindCollisionPanics(t *testing.T) {
	s := NewSink()
	s.Counter("sched", "dispatches")
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("re-registering counter as gauge did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "sched/dispatches") {
			t.Fatalf("panic message %v does not name the colliding metric", r)
		}
	}()
	s.Gauge("sched", "dispatches")
}

// TestNilSinkNoOp is the zero-cost contract: every operation on a nil sink
// and on the nil metrics/tracks it hands out must be a safe no-op.
func TestNilSinkNoOp(t *testing.T) {
	var s *Sink
	c := s.Counter("x", "c")
	g := s.Gauge("x", "g")
	h := s.Histogram("x", "h")
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil sink returned non-nil metrics")
	}
	c.Inc()
	c.Add(10)
	g.Set(3)
	h.Observe(7)
	if c.Value() != 0 || g.Value() != 0 || g.Max() != 0 || h.Count() != 0 || h.Sum() != 0 || h.MaxValue() != 0 {
		t.Fatalf("nil metrics reported nonzero values")
	}
	if h.Percentile(0.99) != 0 {
		t.Fatalf("nil histogram percentile not 0")
	}
	s.StartRun("r")
	tr := s.Track("lane")
	if tr != nil {
		t.Fatalf("nil sink returned non-nil track")
	}
	tr.Span("s", 0, 10)
	tr.Instant("i", 5)
	if s.EventCount() != 0 || s.Dropped() != 0 || s.Events() != nil {
		t.Fatalf("nil sink buffered events")
	}
	if s.CounterValue("x", "c") != 0 || s.MetricNames() != nil {
		t.Fatalf("nil sink reported metrics")
	}
	m := s.Metrics()
	if m.Counters != nil || m.TraceEvents != 0 {
		t.Fatalf("nil sink metrics snapshot not empty: %+v", m)
	}
	var buf bytes.Buffer
	if err := s.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil sink WriteChromeTrace: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil sink trace is not valid JSON: %v", err)
	}
}

func TestNilSinkZeroAllocs(t *testing.T) {
	var s *Sink
	c := s.Counter("x", "c")
	h := s.Histogram("x", "h")
	tr := s.Track("lane")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		h.Observe(3)
		_ = h.Percentile(0.5)
		tr.Instant("i", 1)
	})
	if allocs != 0 {
		t.Fatalf("nil-sink ops allocated %.1f/op, want 0", allocs)
	}
}

func TestGaugeAndHistogram(t *testing.T) {
	s := NewSink()
	g := s.Gauge("q", "depth")
	g.Set(5)
	g.Set(2)
	if g.Value() != 2 || g.Max() != 5 {
		t.Fatalf("gauge value/max = %d/%d, want 2/5", g.Value(), g.Max())
	}
	h := s.Histogram("q", "occ")
	for _, v := range []int64{0, 1, 3, 8} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 12 || h.MaxValue() != 8 {
		t.Fatalf("histogram count/sum/max = %d/%d/%d, want 4/12/8", h.Count(), h.Sum(), h.MaxValue())
	}
	m := s.Metrics()
	hs := m.Histograms["q/occ"]
	if hs.Mean != 3 {
		t.Fatalf("histogram mean = %v, want 3", hs.Mean)
	}
	gs := m.Gauges["q/depth"]
	if gs.Value != 2 || gs.Max != 5 {
		t.Fatalf("gauge snapshot = %+v", gs)
	}
}

func TestTraceRunsTracksAndCap(t *testing.T) {
	s := NewSink()
	s.StartRun("first")
	a := s.Track("core0")
	a.Span("exec", 1000, 3000, Arg{"insts", 42})
	a.Instant("halt", 3000)
	s.StartRun("second")
	b := s.Track("core0") // same name, new run: distinct track
	b.Span("exec", 0, 500)

	evs := s.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	if evs[0].Run != "first" || evs[0].Track != "core0" || evs[0].Phase != "X" ||
		evs[0].TsPs != 1000 || evs[0].DurPs != 2000 || evs[0].Args["insts"] != 42 {
		t.Fatalf("span event mismatch: %+v", evs[0])
	}
	if evs[1].Phase != "i" || evs[1].Name != "halt" {
		t.Fatalf("instant event mismatch: %+v", evs[1])
	}
	if evs[2].Run != "second" {
		t.Fatalf("second-run event mismatch: %+v", evs[2])
	}

	// Cap: further events are counted, not appended.
	s.MaxEvents = s.EventCount()
	b.Instant("x", 1)
	b.Instant("y", 2)
	if s.EventCount() != 3 || s.Dropped() != 2 {
		t.Fatalf("cap not enforced: %d events, %d dropped", s.EventCount(), s.Dropped())
	}
	if s.Metrics().TraceDropped != 2 {
		t.Fatalf("dropped count missing from metrics snapshot")
	}
}

func TestChromeTraceExportShape(t *testing.T) {
	s := NewSink()
	s.StartRun("stat/AssasinSb")
	tr := s.Track("sched")
	tr.Span("dispatch", 2_000_000, 5_000_000, Arg{"pid", 7}) // 2..5 µs
	tr.Instant("wake", 5_000_000)

	var buf bytes.Buffer
	if err := s.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	// process_name + thread_name metadata, then the two events.
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("got %d traceEvents, want 4", len(doc.TraceEvents))
	}
	meta := doc.TraceEvents[0]
	if meta["ph"] != "M" || meta["name"] != "process_name" {
		t.Fatalf("first event is not process_name metadata: %v", meta)
	}
	span := doc.TraceEvents[2]
	if span["ph"] != "X" || span["ts"].(float64) != 2 || span["dur"].(float64) != 3 {
		t.Fatalf("span ts/dur not converted ps->µs: %v", span)
	}
	inst := doc.TraceEvents[3]
	if inst["ph"] != "i" || inst["s"] != "t" {
		t.Fatalf("instant shape wrong: %v", inst)
	}
}

func TestMetricsJSONDeterministic(t *testing.T) {
	build := func() *Sink {
		s := NewSink()
		s.Counter("b", "two").Add(2)
		s.Counter("a", "one").Inc()
		s.Gauge("z", "g").Set(9)
		s.Histogram("m", "h").Observe(4)
		return s
	}
	var x, y bytes.Buffer
	if err := build().WriteMetricsJSON(&x); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteMetricsJSON(&y); err != nil {
		t.Fatal(err)
	}
	if x.String() != y.String() {
		t.Fatalf("metrics JSON not deterministic:\n%s\nvs\n%s", x.String(), y.String())
	}
	if !strings.Contains(x.String(), `"a/one": 1`) {
		t.Fatalf("flat key missing: %s", x.String())
	}
}
