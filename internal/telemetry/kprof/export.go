// Text exports: folded flamegraph lines and the deterministic top-N
// hot-block table surfaced by -kprof on assasin-sim / assasin-bench.
package kprof

import (
	"fmt"
	"sort"
	"strings"
)

// Folded renders the profile as collapsed flamegraph stacks
// ("kernel;kernel: pc: disasm totalPs"), one line per pc with nonzero
// time, in kernel/pc order.
func (p *Profile) Folded() string {
	var sb strings.Builder
	for _, k := range p.Kernels {
		for _, b := range k.Blocks {
			for _, s := range b.PCs {
				if t := s.TotalPs(); t > 0 {
					fmt.Fprintf(&sb, "%s;%s: %s %d\n", k.Kernel, k.Kernel, s.Sym, t)
				}
			}
		}
	}
	return sb.String()
}

// HotBlock is one ranked entry of the hot-block table.
type HotBlock struct {
	Kernel string
	BlockProfile
}

// HotBlocks ranks all blocks by total attributed time, descending, with a
// deterministic (kernel, start) tiebreak, returning at most n (n <= 0
// means all).
func (p *Profile) HotBlocks(n int) []HotBlock {
	var all []HotBlock
	for _, k := range p.Kernels {
		for _, b := range k.Blocks {
			all = append(all, HotBlock{Kernel: k.Kernel, BlockProfile: b})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		ti, tj := all[i].TotalPs(), all[j].TotalPs()
		if ti != tj {
			return ti > tj
		}
		if all[i].Kernel != all[j].Kernel {
			return all[i].Kernel < all[j].Kernel
		}
		return all[i].Start < all[j].Start
	})
	if n > 0 && len(all) > n {
		all = all[:n]
	}
	return all
}

// FormatHotBlocks renders the top-n table. Each row is one basic block
// with its class split and the disassembly of its hottest pc; the section
// ends with a blank line so scripts can extract it with a range match.
func (p *Profile) FormatHotBlocks(n int) string {
	blocks := p.HotBlocks(n)
	var sb strings.Builder
	fmt.Fprintf(&sb, "GUEST HOT BLOCKS (top %d)\n", len(blocks))
	if len(blocks) == 0 {
		sb.WriteString("  (no samples)\n\n")
		return sb.String()
	}
	_, busy, exec, stream, out, mem := p.Totals()
	grand := busy + exec + stream + out + mem
	fmt.Fprintf(&sb, "  %3s %6s %9s %9s %9s %9s %9s %9s %10s  %s\n",
		"#", "share", "total", "busy", "exec", "stream", "out-full", "mem", "insts", "kernel block")
	for i, b := range blocks {
		share := 0.0
		if grand > 0 {
			share = 100 * float64(b.TotalPs()) / float64(grand)
		}
		fmt.Fprintf(&sb, "  %3d %5.1f%% %9s %9s %9s %9s %9s %9s %10d  %s [%d,%d)\n",
			i+1, share, fmtPs(b.TotalPs()), fmtPs(b.BusyPs), fmtPs(b.ExecStallPs),
			fmtPs(b.StreamWaitPs), fmtPs(b.OutFullPs), fmtPs(b.MemWaitPs),
			b.Insts, b.Kernel, b.Start, b.End)
		if hot := b.hottest(); hot != nil {
			fmt.Fprintf(&sb, "      hot pc %s\n", hot.Sym)
		}
	}
	sb.WriteString("\n")
	return sb.String()
}

// hottest returns the block's most expensive pc (ties to the lowest pc).
func (b BlockProfile) hottest() *PCSample {
	var best *PCSample
	for i := range b.PCs {
		if best == nil || b.PCs[i].TotalPs() > best.TotalPs() {
			best = &b.PCs[i]
		}
	}
	return best
}

// fmtPs renders picoseconds with an adaptive unit, mirroring the diff
// package's scale.
func fmtPs(ps int64) string {
	v, neg := ps, false
	if v < 0 {
		v, neg = -v, true
	}
	f := float64(v)
	var s string
	switch {
	case v >= 1e12:
		s = fmt.Sprintf("%.3gs", f/1e12)
	case v >= 1e9:
		s = fmt.Sprintf("%.3gms", f/1e9)
	case v >= 1e6:
		s = fmt.Sprintf("%.3gus", f/1e6)
	case v >= 1e3:
		s = fmt.Sprintf("%.3gns", f/1e3)
	default:
		s = fmt.Sprintf("%dps", v)
	}
	if neg {
		return "-" + s
	}
	return s
}
