package kprof

import (
	"bytes"
	"compress/gzip"
	"io"
	"strings"
	"testing"

	"assasin/internal/asm"
	"assasin/internal/sim"
)

// testProgram is a tiny two-block kernel: an ALU run ending in a backward
// branch, then a halt.
func testProgram() *asm.Program {
	b := asm.New()
	loop := b.Here()
	b.Addi(asm.T0, asm.T0, 1)
	b.Add(asm.T1, asm.T1, asm.T0)
	b.Blt(asm.T0, asm.A0, loop)
	b.Halt()
	p := b.MustBuild()
	p.Name = "tiny"
	return p
}

const period = sim.Time(1000) // 1 ns in ps

// record simulates three loop iterations the way the precise engine would.
func record(cp *CoreProfile) {
	for it := 0; it < 3; it++ {
		cp.Record(0, period, StallExec, 0)
		cp.Record(1, period, StallExec, 0)
		cp.Record(2, period, StallExec, period) // taken branch, 1 penalty cycle
	}
	cp.Record(3, period, StallExec, 0) // halt
}

func TestSnapshotBlocksAndTotals(t *testing.T) {
	p := New()
	cp := p.ForProgram(testProgram(), period)
	record(cp)
	prof := p.Snapshot()
	if len(prof.Kernels) != 1 || prof.Kernels[0].Kernel != "tiny" {
		t.Fatalf("kernels: %+v", prof.Kernels)
	}
	// Leaders: 0 (entry and branch target), 3 (after branch). The branch
	// splits [0,3) from [3,4).
	blocks := prof.Kernels[0].Blocks
	if len(blocks) != 2 || blocks[0].Start != 0 || blocks[0].End != 3 || blocks[1].Start != 3 {
		t.Fatalf("blocks: %+v", blocks)
	}
	insts, busy, exec, stream, out, mem := prof.Totals()
	if insts != 10 || busy != 10*int64(period) || exec != 3*int64(period) {
		t.Errorf("totals: insts %d busy %d exec %d", insts, busy, exec)
	}
	if stream != 0 || out != 0 || mem != 0 {
		t.Errorf("unexpected stall totals: %d %d %d", stream, out, mem)
	}
	if sym := blocks[0].PCs[2].Sym; !strings.Contains(sym, "blt") || !strings.HasPrefix(sym, "2:") {
		t.Errorf("pc 2 sym = %q", sym)
	}
}

// TestBulkMatchesPerStep pins the spread rule: a difference-array bulk
// recording must snapshot identically to per-pc Records.
func TestBulkMatchesPerStep(t *testing.T) {
	prog := testProgram()
	perStep := New()
	cp := perStep.ForProgram(prog, period)
	for it := 0; it < 5; it++ {
		cp.Record(0, period, StallExec, 0)
		cp.Record(1, period, StallExec, 0)
	}
	bulk := New()
	cb := bulk.ForProgram(prog, period)
	cb.BulkRange(0, 2, 3)
	cb.BulkALU(0, 2)
	cb.BulkALU(0, 2)
	a, b := perStep.Snapshot(), bulk.Snapshot()
	aj, _ := a.Pprof()
	bj, _ := b.Pprof()
	if !bytes.Equal(aj, bj) {
		t.Errorf("bulk snapshot diverges from per-step")
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	p := New()
	record(p.ForProgram(testProgram(), period))
	a, err := p.Snapshot().Pprof()
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Snapshot().Pprof()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("pprof bytes differ between identical snapshots")
	}
}

func TestFoldedAndHotBlocks(t *testing.T) {
	p := New()
	record(p.ForProgram(testProgram(), period))
	prof := p.Snapshot()
	folded := prof.Folded()
	if !strings.Contains(folded, "tiny;tiny: 2: blt t0, a0, -2 6000") {
		t.Errorf("folded output:\n%s", folded)
	}
	table := prof.FormatHotBlocks(10)
	if !strings.HasPrefix(table, "GUEST HOT BLOCKS (top 2)") {
		t.Errorf("table header:\n%s", table)
	}
	if !strings.HasSuffix(table, "\n\n") {
		t.Errorf("table must end with a blank line for script extraction")
	}
	hot := prof.HotBlocks(1)
	if len(hot) != 1 || hot[0].Start != 0 {
		t.Errorf("hot block: %+v", hot)
	}
}

func TestMergeLabeled(t *testing.T) {
	mk := func(label string) Labeled {
		p := New()
		record(p.ForProgram(testProgram(), period))
		s := p.Snapshot()
		return Labeled{Label: label, Profile: s}
	}
	m := MergeLabeled([]Labeled{mk("Stat/AssasinSb"), mk("Stat/Baseline")})
	if len(m.Kernels) != 2 {
		t.Fatalf("kernels: %+v", m.Kernels)
	}
	// Single-kernel runs take the run label outright; sorted by name.
	if m.Kernels[0].Kernel != "Stat/AssasinSb" || m.Kernels[1].Kernel != "Stat/Baseline" {
		t.Errorf("kernel names: %q, %q", m.Kernels[0].Kernel, m.Kernels[1].Kernel)
	}
}

// TestPprofWire decodes the gzipped profile.proto with a minimal wire
// walker and checks the structural invariants go tool pprof relies on:
// six sample types, a string table containing the kernel symbols, and one
// two-frame sample per nonzero pc.
func TestPprofWire(t *testing.T) {
	p := New()
	record(p.ForProgram(testProgram(), period))
	raw, err := p.Snapshot().Pprof()
	if err != nil {
		t.Fatal(err)
	}
	zr, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}

	var sampleTypes, samples, mappings, locations, functions int
	var strs []string
	for off := 0; off < len(data); {
		tag, n := uvarint(data[off:])
		off += n
		field, wire := int(tag>>3), int(tag&7)
		switch wire {
		case 0:
			_, n := uvarint(data[off:])
			off += n
		case 2:
			ln, n := uvarint(data[off:])
			off += n
			body := data[off : off+int(ln)]
			off += int(ln)
			switch field {
			case 1:
				sampleTypes++
			case 2:
				samples++
			case 3:
				mappings++
			case 4:
				locations++
			case 5:
				functions++
			case 6:
				strs = append(strs, string(body))
			}
		default:
			t.Fatalf("unexpected wire type %d", wire)
		}
	}
	if sampleTypes != len(sampleColumns) {
		t.Errorf("sample types: %d", sampleTypes)
	}
	if samples != 4 { // four nonzero pcs
		t.Errorf("samples: %d", samples)
	}
	if mappings != 1 {
		t.Errorf("mappings: %d", mappings)
	}
	// One location and function per pc plus one per kernel.
	if locations != 5 || functions != 5 {
		t.Errorf("locations %d functions %d", locations, functions)
	}
	if len(strs) == 0 || strs[0] != "" {
		t.Fatalf("string table must start with the empty string: %q", strs)
	}
	joined := strings.Join(strs, "\n")
	for _, want := range []string{"tiny", "tiny: 3: halt", "busy", "picoseconds", "instructions"} {
		if !strings.Contains(joined, want) {
			t.Errorf("string table missing %q", want)
		}
	}
}

func uvarint(b []byte) (uint64, int) {
	var v uint64
	for i := 0; ; i++ {
		v |= uint64(b[i]&0x7f) << (7 * i)
		if b[i] < 0x80 {
			return v, i + 1
		}
	}
}
