// Package kprof is the guest-kernel profiler: it attributes every core
// cycle and retired instruction of the simulated RV32IM offload kernels to
// a (kernel, basic block, pc) triple. The cpu package's three interpreter
// strategies all record through the same per-program sink — Precise once
// per retired instruction inside the retire primitives, Fused/Compiled with
// one O(1) range update per bulk ALU dispatch (difference arrays resolved
// at snapshot time) — so a compiled-mode profile reconciles exactly, byte
// for byte after export, with a precise-mode profile of the same run.
//
// Per pc the profiler splits time into the issue cycle (busy) plus the
// four stall classes of cpu.StallKind; the per-pc totals sum exactly to
// the attribution engine's per-class core times (test-enforced in
// internal/experiments). Snapshots group pcs into basic blocks computed
// from the program's control flow and export three ways: pprof
// profile.proto (pprof.go), folded flamegraph text, and a deterministic
// top-N hot-block table (export.go).
package kprof

import (
	"sort"
	"strings"
	"sync"

	"assasin/internal/asm"
	"assasin/internal/isa"
	"assasin/internal/sim"
)

// Stall-class indices, value-identical to cpu.StallKind (the cpu package
// imports kprof, so the shared ordering is pinned here and asserted by a
// test on the cpu side).
const (
	StallMem = iota
	StallStreamWait
	StallOutFull
	StallExec
	NumStallKinds
)

// CoreProfile is the per-(program, clock) recording sink the cores write
// through. All methods are O(1) with no allocation; they are called only
// behind the cpu package's `if c.prof != nil` guards, preserving the
// zero-cost contract when profiling is disabled.
type CoreProfile struct {
	prog   *asm.Program
	period sim.Time
	insts  []int64                // per-pc retired instructions
	busy   []int64                // per-pc issue time, ps
	stall  [NumStallKinds][]int64 // per-class per-pc stall time, ps
	// bulk is a difference array over pcs: the fused/compiled engines
	// record a straight ALU run of n instructions at pc as bulk[pc]++ /
	// bulk[pc+n]--, and a pure-ALU loop batch of m iterations as a single
	// range update. The prefix sum at snapshot time yields per-pc
	// execution counts; each counted execution is exactly one retired
	// instruction and one issue cycle, matching precise stepping.
	bulk []int64
}

// Record attributes one retired instruction at pc: its issue cycle (busy)
// plus any stall of the given class.
func (p *CoreProfile) Record(pc int, busy sim.Time, kind int, stall sim.Time) {
	p.insts[pc]++
	p.busy[pc] += int64(busy)
	if stall > 0 {
		p.stall[kind][pc] += int64(stall)
	}
}

// Stall attributes blocked-wait time at pc without retiring an instruction
// (the core re-dispatching after an external wake).
func (p *CoreProfile) Stall(pc, kind int, d sim.Time) {
	p.stall[kind][pc] += int64(d)
}

// Insts attributes n retired instructions with no cycle cost (zero-cycle
// control flow: branch-free taken branches and free jumps).
func (p *CoreProfile) Insts(pc int, n int64) {
	p.insts[pc] += n
}

// BulkALU records one execution of the straight ALU run [pc, pc+n).
func (p *CoreProfile) BulkALU(pc, n int) {
	p.bulk[pc]++
	p.bulk[pc+n]--
}

// BulkRange records m executions of the ALU range [head, end).
func (p *CoreProfile) BulkRange(head, end int, m int64) {
	p.bulk[head] += m
	p.bulk[end] -= m
}

// Profiler collects the CoreProfiles of one run. ForProgram and Snapshot
// are cold paths (per program load / per run) and goroutine-safe; the
// recording methods above belong to the simulation goroutine that owns the
// returned CoreProfile.
type Profiler struct {
	mu    sync.Mutex
	cores []*CoreProfile
}

// New returns an empty profiler.
func New() *Profiler { return &Profiler{} }

// ForProgram returns the recording sink for a loaded program, creating it
// on first sight. Cores sharing a program (the usual per-request fan-out)
// share one sink, so per-pc totals sum over the whole run.
func (p *Profiler) ForProgram(prog *asm.Program, period sim.Time) *CoreProfile {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, cp := range p.cores {
		if cp.prog == prog && cp.period == period {
			return cp
		}
	}
	n := len(prog.Insts)
	cp := &CoreProfile{
		prog:   prog,
		period: period,
		insts:  make([]int64, n),
		busy:   make([]int64, n),
		bulk:   make([]int64, n+1),
	}
	for k := range cp.stall {
		cp.stall[k] = make([]int64, n)
	}
	p.cores = append(p.cores, cp)
	return cp
}

// PCSample is one program counter's attribution.
type PCSample struct {
	PC  int    `json:"pc"`
	Sym string `json:"sym"` // shared with asm.Program.Disassemble via Line
	// Insts counts retired instructions; the time columns are picoseconds.
	Insts        int64 `json:"insts"`
	BusyPs       int64 `json:"busy_ps"`
	ExecStallPs  int64 `json:"exec_stall_ps,omitempty"`
	StreamWaitPs int64 `json:"stream_wait_ps,omitempty"`
	OutFullPs    int64 `json:"out_full_ps,omitempty"`
	MemWaitPs    int64 `json:"mem_wait_ps,omitempty"`
}

// TotalPs is busy plus all stall time attributed to the pc.
func (s PCSample) TotalPs() int64 {
	return s.BusyPs + s.ExecStallPs + s.StreamWaitPs + s.OutFullPs + s.MemWaitPs
}

// BlockProfile aggregates the samples of one basic block [Start, End).
type BlockProfile struct {
	Start        int        `json:"start"`
	End          int        `json:"end"`
	Insts        int64      `json:"insts"`
	BusyPs       int64      `json:"busy_ps"`
	ExecStallPs  int64      `json:"exec_stall_ps,omitempty"`
	StreamWaitPs int64      `json:"stream_wait_ps,omitempty"`
	OutFullPs    int64      `json:"out_full_ps,omitempty"`
	MemWaitPs    int64      `json:"mem_wait_ps,omitempty"`
	PCs          []PCSample `json:"pcs"`
}

// TotalPs is busy plus all stall time attributed to the block.
func (b BlockProfile) TotalPs() int64 {
	return b.BusyPs + b.ExecStallPs + b.StreamWaitPs + b.OutFullPs + b.MemWaitPs
}

// KernelProfile is one kernel program's attribution, partitioned into
// basic blocks. Empty blocks (never executed) are omitted.
type KernelProfile struct {
	Kernel string         `json:"kernel"`
	Blocks []BlockProfile `json:"blocks"`
}

// Profile is a finished snapshot: everything needed to render the pprof,
// folded, table, and JSON exports without the live program. The "kernels"
// key doubles as the diff loader's format marker.
type Profile struct {
	Label    string          `json:"label,omitempty"`
	PeriodPs int64           `json:"period_ps,omitempty"`
	Kernels  []KernelProfile `json:"kernels"`
}

// Totals sums the per-pc columns over the whole profile (the reconciliation
// invariant checks these against the attribution engine's class times).
func (p *Profile) Totals() (insts, busyPs, execPs, streamPs, outPs, memPs int64) {
	for _, k := range p.Kernels {
		for _, b := range k.Blocks {
			for _, s := range b.PCs {
				insts += s.Insts
				busyPs += s.BusyPs
				execPs += s.ExecStallPs
				streamPs += s.StreamWaitPs
				outPs += s.OutFullPs
				memPs += s.MemWaitPs
			}
		}
	}
	return
}

// Snapshot merges the run's CoreProfiles (difference arrays resolved,
// same-program sinks summed by kernel name) into a deterministic Profile:
// kernels sorted by name, blocks and pcs ascending, all-zero pcs omitted.
func (p *Profiler) Snapshot() *Profile {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := &Profile{}
	type key struct {
		name string
		n    int
	}
	merged := make(map[key]*CoreProfile)
	var order []key
	for _, cp := range p.cores {
		if out.PeriodPs == 0 {
			out.PeriodPs = int64(cp.period)
		}
		name := cp.prog.Name
		if name == "" {
			name = "kernel"
		}
		k := key{name, len(cp.prog.Insts)}
		dst := merged[k]
		if dst == nil {
			n := len(cp.prog.Insts)
			dst = &CoreProfile{
				prog:  cp.prog,
				insts: make([]int64, n),
				busy:  make([]int64, n),
			}
			for s := range dst.stall {
				dst.stall[s] = make([]int64, n)
			}
			merged[k] = dst
			order = append(order, k)
		}
		var run int64
		for pc := range cp.insts {
			run += cp.bulk[pc]
			dst.insts[pc] += cp.insts[pc] + run
			dst.busy[pc] += cp.busy[pc] + run*int64(cp.period)
			for s := range cp.stall {
				dst.stall[s][pc] += cp.stall[s][pc]
			}
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].name != order[j].name {
			return order[i].name < order[j].name
		}
		return order[i].n < order[j].n
	})
	for _, k := range order {
		out.Kernels = append(out.Kernels, kernelProfile(k.name, merged[k]))
	}
	return out
}

// kernelProfile assembles one kernel's block-structured profile.
func kernelProfile(name string, cp *CoreProfile) KernelProfile {
	kp := KernelProfile{Kernel: name}
	starts := blockStarts(cp.prog.Insts)
	for i, start := range starts {
		end := len(cp.prog.Insts)
		if i+1 < len(starts) {
			end = starts[i+1]
		}
		b := BlockProfile{Start: start, End: end}
		for pc := start; pc < end; pc++ {
			s := PCSample{
				PC:           pc,
				Insts:        cp.insts[pc],
				BusyPs:       cp.busy[pc],
				MemWaitPs:    cp.stall[StallMem][pc],
				StreamWaitPs: cp.stall[StallStreamWait][pc],
				OutFullPs:    cp.stall[StallOutFull][pc],
				ExecStallPs:  cp.stall[StallExec][pc],
			}
			if s.Insts == 0 && s.TotalPs() == 0 {
				continue
			}
			s.Sym = strings.TrimSpace(cp.prog.Line(pc))
			b.Insts += s.Insts
			b.BusyPs += s.BusyPs
			b.ExecStallPs += s.ExecStallPs
			b.StreamWaitPs += s.StreamWaitPs
			b.OutFullPs += s.OutFullPs
			b.MemWaitPs += s.MemWaitPs
			b.PCs = append(b.PCs, s)
		}
		if len(b.PCs) > 0 {
			kp.Blocks = append(kp.Blocks, b)
		}
	}
	return kp
}

// blockStarts computes basic-block leaders: pc 0, every branch/jump
// target, and every pc following a control-flow instruction.
func blockStarts(insts []isa.Inst) []int {
	if len(insts) == 0 {
		return nil
	}
	lead := make([]bool, len(insts))
	lead[0] = true
	for i, in := range insts {
		var target, split bool
		switch in.Op.Class() {
		case isa.ClassBranch:
			target, split = true, true
		case isa.ClassJump:
			target, split = in.Op == isa.OpJal, true
		case isa.ClassHalt:
			split = true
		}
		if target {
			if t := i + int(in.Imm); t >= 0 && t < len(insts) {
				lead[t] = true
			}
		}
		if split && i+1 < len(insts) {
			lead[i+1] = true
		}
	}
	var starts []int
	for pc, l := range lead {
		if l {
			starts = append(starts, pc)
		}
	}
	return starts
}

// Labeled pairs one run's label with its snapshot for merging.
type Labeled struct {
	Label   string
	Profile *Profile
}

// MergeLabeled combines per-run profiles into one, qualifying kernel names
// with the run labels (a single-kernel run's kernel takes the label
// outright) so a bench fan-out's profile distinguishes kernel×arch runs.
func MergeLabeled(runs []Labeled) *Profile {
	out := &Profile{}
	for _, r := range runs {
		if r.Profile == nil {
			continue
		}
		if out.PeriodPs == 0 {
			out.PeriodPs = r.Profile.PeriodPs
		}
		for _, k := range r.Profile.Kernels {
			kk := k
			switch {
			case r.Label == "":
			case len(r.Profile.Kernels) == 1:
				kk.Kernel = r.Label
			default:
				kk.Kernel = r.Label + "/" + k.Kernel
			}
			out.Kernels = append(out.Kernels, kk)
		}
	}
	sort.SliceStable(out.Kernels, func(i, j int) bool {
		return out.Kernels[i].Kernel < out.Kernels[j].Kernel
	})
	return out
}
