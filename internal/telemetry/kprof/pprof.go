// pprof export: a hand-rolled encoder for the subset of pprof's
// profile.proto the guest profiler needs (the repo carries no third-party
// dependencies). Only two wire types appear — varint and length-delimited —
// and the output is gzip-compressed with a zeroed header so identical
// profiles encode to identical bytes.
//
// Field numbers follow github.com/google/pprof/proto/profile.proto:
//
//	Profile:  1 sample_type, 2 sample, 3 mapping, 4 location, 5 function,
//	          6 string_table, 9 time_nanos, 11 period_type, 12 period,
//	          14 default_sample_type
//	ValueType: 1 type, 2 unit            Sample: 1 location_id, 2 value
//	Mapping:  1 id, 2 memory_start, 3 memory_limit, 5 filename,
//	          7 has_functions
//	Location: 1 id, 2 mapping_id, 3 address, 4 line
//	Line:     1 function_id, 2 line
//	Function: 1 id, 2 name, 3 system_name, 4 filename, 5 start_line
package kprof

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
)

type protoBuf struct{ bytes.Buffer }

func (b *protoBuf) varint(v uint64) {
	for v >= 0x80 {
		b.WriteByte(byte(v) | 0x80)
		v >>= 7
	}
	b.WriteByte(byte(v))
}

// intField emits a varint field, omitted when zero (proto3 default).
func (b *protoBuf) intField(field int, v int64) {
	if v != 0 {
		b.varint(uint64(field<<3 | 0))
		b.varint(uint64(v))
	}
}

func (b *protoBuf) bytesField(field int, p []byte) {
	b.varint(uint64(field<<3 | 2))
	b.varint(uint64(len(p)))
	b.Write(p)
}

func (b *protoBuf) packedField(field int, vs []int64) {
	var tmp protoBuf
	for _, v := range vs {
		tmp.varint(uint64(v))
	}
	b.bytesField(field, tmp.Bytes())
}

// sampleColumns names the per-pc value columns, busy first after the
// instruction count; the busy column is the default sample type.
var sampleColumns = [...][2]string{
	{"instructions", "count"},
	{"busy", "picoseconds"},
	{"exec-stall", "picoseconds"},
	{"stream-refill-wait", "picoseconds"},
	{"out-full-wait", "picoseconds"},
	{"cache-dram-wait", "picoseconds"},
}

// Pprof encodes the profile as gzipped profile.proto bytes. Every sample
// is a two-frame stack — leaf "kernel: pc: disasm", parent the kernel
// name — so `go tool pprof -top` ranks pcs and `-cum` ranks kernels.
func (p *Profile) Pprof() ([]byte, error) {
	var buf bytes.Buffer
	if err := p.WritePprof(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// WritePprof writes the gzipped profile.proto encoding of the profile.
func (p *Profile) WritePprof(w io.Writer) error {
	var out protoBuf

	// String table: index 0 must be "". Strings are interned in first-use
	// order, which is deterministic because kernels and pcs are sorted.
	strIdx := map[string]int64{"": 0}
	strTab := []string{""}
	intern := func(s string) int64 {
		if i, ok := strIdx[s]; ok {
			return i
		}
		i := int64(len(strTab))
		strIdx[s] = i
		strTab = append(strTab, s)
		return i
	}

	for _, c := range sampleColumns {
		var vt protoBuf
		vt.intField(1, intern(c[0]))
		vt.intField(2, intern(c[1]))
		out.bytesField(1, vt.Bytes())
	}

	// One synthetic mapping covering the flat guest address space; pc
	// addresses are base + kernelIndex<<16 + pc.
	const mapBase = 0x1000
	funcID, locID := int64(0), int64(0)
	var locs, funcs, samples protoBuf
	for ki, k := range p.Kernels {
		funcID++
		kernelFn := funcID
		var fn protoBuf
		fn.intField(1, kernelFn)
		fn.intField(2, intern(k.Kernel))
		fn.intField(3, intern(k.Kernel))
		fn.intField(4, intern(k.Kernel+".kasm"))
		funcs.bytesField(5, fn.Bytes())

		locID++
		kernelLoc := locID
		var kl protoBuf
		kl.intField(1, kernelLoc)
		kl.intField(2, 1)
		kl.intField(3, mapBase+int64(ki)<<16)
		var kline protoBuf
		kline.intField(1, kernelFn)
		kl.bytesField(4, kline.Bytes())
		locs.bytesField(4, kl.Bytes())

		for _, b := range k.Blocks {
			for _, s := range b.PCs {
				funcID++
				var pf protoBuf
				pf.intField(1, funcID)
				name := intern(fmt.Sprintf("%s: %s", k.Kernel, s.Sym))
				pf.intField(2, name)
				pf.intField(3, name)
				pf.intField(4, intern(k.Kernel+".kasm"))
				pf.intField(5, int64(s.PC))
				funcs.bytesField(5, pf.Bytes())

				locID++
				var loc protoBuf
				loc.intField(1, locID)
				loc.intField(2, 1)
				loc.intField(3, mapBase+int64(ki)<<16+int64(s.PC))
				var line protoBuf
				line.intField(1, funcID)
				line.intField(2, int64(s.PC))
				loc.bytesField(4, line.Bytes())
				locs.bytesField(4, loc.Bytes())

				var smp protoBuf
				smp.packedField(1, []int64{locID, kernelLoc})
				smp.packedField(2, []int64{
					s.Insts, s.BusyPs, s.ExecStallPs,
					s.StreamWaitPs, s.OutFullPs, s.MemWaitPs,
				})
				samples.bytesField(2, smp.Bytes())
			}
		}
	}
	out.Write(samples.Bytes())

	var mp protoBuf
	mp.intField(1, 1)
	mp.intField(2, mapBase)
	mp.intField(3, mapBase+int64(len(p.Kernels)+1)<<16)
	mp.intField(5, intern("assasin-guest"))
	mp.intField(7, 1)
	out.bytesField(3, mp.Bytes())

	out.Write(locs.Bytes())
	out.Write(funcs.Bytes())
	for _, s := range strTab {
		out.bytesField(6, []byte(s))
	}
	// time_nanos stays 0: snapshots are deterministic artifacts of the
	// simulated run, not wall-clock events.
	var pt protoBuf
	pt.intField(1, intern("busy"))
	pt.intField(2, intern("picoseconds"))
	out.bytesField(11, pt.Bytes())
	out.intField(12, p.PeriodPs)
	out.intField(14, strIdx["busy"])

	// gzip with a zeroed header (no name, no mtime) for byte determinism.
	gz := gzip.NewWriter(w)
	if _, err := gz.Write(out.Bytes()); err != nil {
		return err
	}
	return gz.Close()
}
