package telemetry

// Event trace: begin/end ("complete") spans and instants on named tracks,
// grouped into runs. In the Chrome trace-event export each run becomes a
// process (pid) and each track a thread (tid), so Perfetto renders one
// swim-lane per component/task and one process group per experiment run.

// Phase bytes follow the Chrome trace-event format.
const (
	phComplete  = 'X'
	phInstant   = 'i'
	phCounter   = 'C'
	phFlowStart = 's'
	phFlowStep  = 't'
	phFlowEnd   = 'f'
)

// maxArgs bounds per-event args so event records stay flat (no per-event
// map/slice allocation beyond the variadic call).
const maxArgs = 2

// Arg is one key/value annotation attached to a span or instant.
type Arg struct {
	Key string
	Val int64
}

// traceRun groups tracks under one pid (one experiment/workload run).
type traceRun struct {
	pid    int
	label  string
	tracks map[string]*Track
	order  []*Track
}

// Track is a named swim-lane within the current run. A nil *Track is a
// valid disabled track: Span and Instant are no-ops.
type Track struct {
	sink *Sink
	pid  int
	tid  int
	name string
}

// event is one recorded trace event; ts/dur are simulated picoseconds.
// id carries the flow-binding identifier for flow phases ('s'/'t'/'f').
type event struct {
	pid   int
	tid   int
	ph    byte
	name  string
	ts    int64
	dur   int64
	id    int64
	args  [maxArgs]Arg
	nargs int
}

// StartRun begins a new trace process group; subsequent Track calls attach
// to it. Safe to call on a nil sink.
func (s *Sink) StartRun(label string) {
	if s == nil {
		return
	}
	r := &traceRun{
		pid:    len(s.runs) + 1,
		label:  label,
		tracks: make(map[string]*Track),
	}
	s.runs = append(s.runs, r)
	s.cur = r
}

// Track returns the track named name in the current run, creating it (and,
// if StartRun was never called, an implicit first run) on first use.
// Returns nil on a nil sink.
func (s *Sink) Track(name string) *Track {
	if s == nil {
		return nil
	}
	if s.cur == nil {
		s.StartRun("")
	}
	r := s.cur
	if t, ok := r.tracks[name]; ok {
		return t
	}
	t := &Track{sink: s, pid: r.pid, tid: len(r.order) + 1, name: name}
	r.tracks[name] = t
	r.order = append(r.order, t)
	return t
}

func (s *Sink) record(e event) {
	if s.MaxEvents < 0 {
		return
	}
	if s.MaxEvents > 0 && len(s.events) >= s.MaxEvents {
		if s.dropped == 0 && s.Log != nil {
			s.Log.Warn("telemetry: trace event cap reached, dropping further events",
				"cap", s.MaxEvents)
		}
		s.dropped++
		return
	}
	s.events = append(s.events, e)
}

// Span records a complete span [startPs, endPs) on the track. Zero-length
// spans are kept (dur 0) so boundaries remain visible. At most two args are
// recorded; extras are dropped.
func (t *Track) Span(name string, startPs, endPs int64, args ...Arg) {
	if t == nil {
		return
	}
	e := event{pid: t.pid, tid: t.tid, ph: phComplete, name: name, ts: startPs, dur: endPs - startPs}
	e.nargs = copy(e.args[:], args)
	t.sink.record(e)
}

// Instant records a point event at tsPs on the track.
func (t *Track) Instant(name string, tsPs int64, args ...Arg) {
	if t == nil {
		return
	}
	e := event{pid: t.pid, tid: t.tid, ph: phInstant, name: name, ts: tsPs}
	e.nargs = copy(e.args[:], args)
	t.sink.record(e)
}

// Counter records one counter-track sample at tsPs. The Chrome export
// renders these as "ph":"C" events, which Perfetto graphs as a stacked
// counter lane named after the event, so a sampler can mirror its series
// into the trace timeline.
func (t *Track) Counter(name string, tsPs, value int64) {
	if t == nil {
		return
	}
	e := event{pid: t.pid, tid: t.tid, ph: phCounter, name: name, ts: tsPs}
	e.args[0] = Arg{Key: "value", Val: value}
	e.nargs = 1
	t.sink.record(e)
}

// FlowStart opens a flow arrow (Chrome phase 's') named name at tsPs,
// bound to later FlowStep/FlowEnd events sharing id within the same run.
// The request tracer uses flows to link one request's spans across the
// firmware, flash-feeder and core tracks.
func (t *Track) FlowStart(name string, tsPs, id int64) { t.flow(phFlowStart, name, tsPs, id) }

// FlowStep continues a flow (phase 't') on this track at tsPs.
func (t *Track) FlowStep(name string, tsPs, id int64) { t.flow(phFlowStep, name, tsPs, id) }

// FlowEnd terminates a flow (phase 'f') on this track at tsPs.
func (t *Track) FlowEnd(name string, tsPs, id int64) { t.flow(phFlowEnd, name, tsPs, id) }

func (t *Track) flow(ph byte, name string, tsPs, id int64) {
	if t == nil {
		return
	}
	t.sink.record(event{pid: t.pid, tid: t.tid, ph: ph, name: name, ts: tsPs, id: id})
}

// TraceEvent is the read-side view of one recorded event, for tests and
// programmatic consumers.
type TraceEvent struct {
	Run   string // run label (process name)
	Track string // track name (thread name)
	Name  string
	Phase string // "X" (span), "i" (instant), "C" (counter), "s"/"t"/"f" (flow)
	TsPs  int64
	DurPs int64 // 0 for instants
	// FlowID is the flow-binding identifier for flow events (0 otherwise).
	FlowID int64
	Args   map[string]int64
}

// Events returns every recorded event in emission order.
func (s *Sink) Events() []TraceEvent {
	if s == nil {
		return nil
	}
	// Index (pid, tid) -> names for labeling.
	runLabel := make(map[int]string, len(s.runs))
	trackName := make(map[[2]int]string)
	for _, r := range s.runs {
		runLabel[r.pid] = r.label
		for _, t := range r.order {
			trackName[[2]int{r.pid, t.tid}] = t.name
		}
	}
	out := make([]TraceEvent, 0, len(s.events))
	for _, e := range s.events {
		te := TraceEvent{
			Run:    runLabel[e.pid],
			Track:  trackName[[2]int{e.pid, e.tid}],
			Name:   e.name,
			Phase:  string(e.ph),
			TsPs:   e.ts,
			DurPs:  e.dur,
			FlowID: e.id,
		}
		if e.nargs > 0 {
			te.Args = make(map[string]int64, e.nargs)
			for i := 0; i < e.nargs; i++ {
				te.Args[e.args[i].Key] = e.args[i].Val
			}
		}
		out = append(out, te)
	}
	return out
}

// EventCount returns the number of buffered trace events.
func (s *Sink) EventCount() int {
	if s == nil {
		return 0
	}
	return len(s.events)
}

// Dropped returns how many events were discarded after MaxEvents was hit.
func (s *Sink) Dropped() int64 {
	if s == nil {
		return 0
	}
	return s.dropped
}
