package reqtrace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"assasin/internal/telemetry"
	"assasin/internal/telemetry/analyze"
)

// complete runs one synthetic request through tr with the given shape and
// returns it (still owned by the tracer).
func synthetic(tr *Tracer, submit, start, halt, complete int64, busy, refill int64) *Request {
	r := tr.Begin("offload", "k/arch", submit)
	r.TaskSetup(0, 3)
	r.AddPage(0, 4096, 10, 20, 5, start)
	r.NoteEOS(0, halt-1)
	r.NoteHalt(0, halt)
	r.SetCoreDelta(0, start, busy, 0, refill, 0, 0, 100, 2)
	tr.Complete(r, complete)
	return r
}

func sumSegments(segs []Segment) int64 {
	var total int64
	for _, sg := range segs {
		total += sg.DurPs
	}
	return total
}

func TestCriticalPathExactness(t *testing.T) {
	cases := []struct {
		name                          string
		submit, start, halt, complete int64
		busy, refill                  int64
	}{
		{"plain", 100, 200, 1200, 1500, 600, 400},
		{"no drain", 0, 0, 1000, 1000, 700, 300},
		{"window overflow", 0, 0, 500, 500, 600, 400},
		{"core clock behind submit", 1000, 400, 1600, 1700, 300, 300},
		{"zero latency", 50, 50, 50, 50, 0, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tr := New(nil, Config{TopK: 4})
			r := synthetic(tr, c.submit, c.start, c.halt, c.complete, c.busy, c.refill)
			wantLat := c.complete - c.submit
			if wantLat < 0 {
				wantLat = 0
			}
			if r.LatencyPs != wantLat {
				t.Fatalf("latency = %d, want %d", r.LatencyPs, wantLat)
			}
			if got := sumSegments(r.Critical); got != r.LatencyPs {
				t.Fatalf("segments sum to %d, latency is %d (%v)", got, r.LatencyPs, r.Critical)
			}
			for _, sg := range r.Critical {
				if sg.DurPs <= 0 {
					t.Fatalf("non-positive segment %v", sg)
				}
			}
		})
	}
}

// TestCriticalPathClasses pins the segment layout of a well-formed request:
// queueing absorbs the pre-dispatch gap, the exec-window classes appear in
// attribution order, drain covers halt to completion, and nothing is
// unattributed.
func TestCriticalPathClasses(t *testing.T) {
	tr := New(nil, Config{TopK: 4})
	r := synthetic(tr, 100, 200, 1300, 1500, 600, 400)
	// Window = [halt-sum, halt] = [300, 1300]; queueing = 300-100.
	want := []Segment{
		{ClassQueueing, 200},
		{analyze.ClassCoreBusy, 600},
		{analyze.ClassStreamRefillWait, 400},
		{ClassDrain, 200},
	}
	if len(r.Critical) != len(want) {
		t.Fatalf("critical = %v, want %v", r.Critical, want)
	}
	for i := range want {
		if r.Critical[i] != want[i] {
			t.Fatalf("segment %d = %v, want %v", i, r.Critical[i], want[i])
		}
	}
}

// TestIOPathNormalization checks the staged-chain path (conventional IO):
// stages survive verbatim when they sum to the latency, get truncated when
// they overshoot, and pad as unattributed when they undershoot.
func TestIOPathNormalization(t *testing.T) {
	mk := func(latency int64, stages ...int64) []Segment {
		tr := New(nil, Config{TopK: 2})
		r := tr.Begin("io-read", "", 0)
		for _, d := range stages {
			r.AddPathStage(ClassFlashWait, d)
		}
		tr.Complete(r, latency)
		return r.Critical
	}
	if got := mk(100, 60, 40); sumSegments(got) != 100 || len(got) != 2 {
		t.Fatalf("exact chain normalized to %v", got)
	}
	if got := mk(80, 60, 40); sumSegments(got) != 80 || len(got) != 2 || got[1].DurPs != 20 {
		t.Fatalf("overshooting chain normalized to %v", got)
	}
	got := mk(120, 60, 40)
	if sumSegments(got) != 120 || got[len(got)-1].Class != ClassUnattributed {
		t.Fatalf("undershooting chain normalized to %v", got)
	}
}

// TestTopKRetention checks ordering and eviction: (latency desc, id asc),
// independent of completion order.
func TestTopKRetention(t *testing.T) {
	tr := New(nil, Config{TopK: 3})
	lats := []int64{50, 900, 200, 900, 10, 700}
	for _, lat := range lats {
		r := tr.Begin("offload", "", 0)
		tr.Complete(r, lat)
	}
	sum := tr.Summary("x")
	if sum.Count != int64(len(lats)) {
		t.Fatalf("count = %d", sum.Count)
	}
	if len(sum.Slowest) != 3 {
		t.Fatalf("retained %d, want 3", len(sum.Slowest))
	}
	// IDs are 1-based in Begin order: latencies 900(id2), 900(id4), 700(id6).
	wantIDs := []uint64{2, 4, 6}
	for i, want := range wantIDs {
		if sum.Slowest[i].ID != want {
			t.Fatalf("slowest[%d].ID = %d, want %d (slowest=%+v)", i, sum.Slowest[i].ID, want, sum.Slowest)
		}
	}
	if sum.Find(4) == nil || sum.Find(5) != nil {
		t.Fatal("Find does not match retention")
	}
}

// TestPooling checks that evicted and aborted records are reused rather
// than reallocated.
func TestPooling(t *testing.T) {
	tr := New(nil, Config{TopK: 1})
	a := tr.Begin("offload", "", 0)
	tr.Complete(a, 100)
	b := tr.Begin("offload", "", 0)
	tr.Complete(b, 50) // evicted immediately (slower request retained)
	c := tr.Begin("offload", "", 0)
	if c != b {
		t.Fatal("evicted record was not pooled")
	}
	tr.Abort(c)
	d := tr.Begin("offload", "", 0)
	if d != c {
		t.Fatal("aborted record was not pooled")
	}
	if d.ID != 4 {
		t.Fatalf("ID = %d, want monotonic 4", d.ID)
	}
}

// TestSteadyStateZeroAlloc pins the pooled steady state: once the top-K set
// is saturated and record capacity is warm, tracing a request allocates
// nothing.
func TestSteadyStateZeroAlloc(t *testing.T) {
	tr := New(nil, Config{TopK: 2})
	for i := 0; i < 8; i++ {
		r := tr.Begin("offload", "", 0)
		r.TaskSetup(0, 0)
		r.AddPage(0, 4096, 1, 2, 3, 10)
		r.NoteHalt(0, 90)
		r.SetCoreDelta(0, 10, 50, 10, 10, 5, 5, 10, 1)
		tr.Complete(r, 100)
	}
	allocs := testing.AllocsPerRun(100, func() {
		r := tr.Begin("offload", "", 0)
		r.TaskSetup(0, 0)
		r.AddPage(0, 4096, 1, 2, 3, 10)
		r.NoteHalt(0, 90)
		r.SetCoreDelta(0, 10, 50, 10, 10, 5, 5, 10, 1)
		tr.Complete(r, 100)
	})
	if allocs != 0 {
		t.Fatalf("steady-state tracing allocates %.1f per request, want 0", allocs)
	}
}

// TestNilZeroCost pins the disabled contract: every method on a nil tracer
// and nil request is a safe no-op and allocates nothing.
func TestNilZeroCost(t *testing.T) {
	var tr *Tracer
	var r *Request
	allocs := testing.AllocsPerRun(100, func() {
		r2 := tr.Begin("offload", "x", 10)
		r2.TaskSetup(0, 1)
		r2.AddPage(0, 4096, 1, 2, 3, 4)
		r2.NoteEOS(0, 5)
		r2.AddDrain(0, 4096, 6, 7)
		r2.NoteHalt(0, 8)
		r2.SetCoreDelta(0, 0, 1, 2, 3, 4, 5, 6, 7)
		r2.AddPathStage(ClassFlashWait, 9)
		tr.Complete(r2, 10)
		tr.Abort(r)
	})
	if allocs != 0 {
		t.Fatalf("nil tracer allocates %.1f per op, want 0", allocs)
	}
	if tr.Count() != 0 || tr.Summary("x") != nil {
		t.Fatal("nil tracer is not inert")
	}
}

// TestSummaryDeterminism checks that two tracers fed identical request
// streams produce byte-identical JSON and text.
func TestSummaryDeterminism(t *testing.T) {
	build := func() *Summary {
		tr := New(telemetry.NewSink(), Config{TopK: 4})
		synthetic(tr, 100, 200, 1300, 1500, 600, 400)
		synthetic(tr, 0, 50, 950, 1000, 500, 400)
		return tr.Summary("k/arch")
	}
	var a, b bytes.Buffer
	if err := WriteSummariesJSON(&a, []*Summary{build()}); err != nil {
		t.Fatal(err)
	}
	if err := WriteSummariesJSON(&b, []*Summary{build()}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("summary JSON is not deterministic")
	}
	var decoded []Summary
	if err := json.Unmarshal(a.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 1 || decoded[0].Count != 2 {
		t.Fatalf("decoded = %+v", decoded)
	}
	var txt bytes.Buffer
	if err := build().WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "requests k/arch: 2 completed") {
		t.Fatalf("text = %q", txt.String())
	}
}

// TestHistogramsOnSink checks that completion feeds the "req" component
// histograms (latency plus one per critical class).
func TestHistogramsOnSink(t *testing.T) {
	sink := telemetry.NewSink()
	tr := New(sink, Config{TopK: 2})
	synthetic(tr, 100, 200, 1300, 1500, 600, 400)
	snap := sink.Metrics()
	lat, ok := snap.Histograms["req/latency_ps"]
	if !ok || lat.Count != 1 {
		t.Fatalf("latency histogram = %+v", snap.Histograms)
	}
	if _, ok := snap.Histograms["req/crit_"+ClassQueueing+"_ps"]; !ok {
		t.Fatalf("missing queueing class histogram: %v", snap.Histograms)
	}
}
