// Package reqtrace is the request-scoped tracing layer: every offload (and
// conventional NVMe command) is assigned a RequestID at submission and
// accumulates one compact causal record across its lifecycle — firmware task
// setup, per-feeder flash sense/transfer waits, crossbar grant waits,
// stream-buffer refill and out-full stalls, per-dispatch core exec slices,
// and drain/completion. From each record the tracer derives a deterministic
// critical path: a chain of segments whose durations sum exactly to the
// submit→complete latency, classified into the attribution engine's five
// stall classes plus queueing and drain.
//
// Zero-cost contract: a nil *Tracer and a nil *Request are valid disabled
// instances — every method is a nil-receiver no-op, so call sites in the
// data plane compile to a branch on a nil pointer. Records are fixed-shape
// and pooled: task slots and segment slices are reused across requests, and
// the per-page accounting is plain integer accumulation (coalesced delivery
// trains attribute whole trains through the same adds), so steady-state
// tracing allocates nothing per page.
//
// Like package telemetry, a Tracer belongs to one simulation goroutine.
// Parallel fan-outs give every run a private tracer (the per-run-sink
// pattern); summaries are merged by the caller keyed on run labels, so
// reports are byte-identical for any -parallel setting.
package reqtrace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"assasin/internal/telemetry"
	"assasin/internal/telemetry/analyze"
)

// Critical-path segment classes beyond the five attribution classes
// (analyze.ClassCoreBusy etc.) that cover the core-execution window.
const (
	// ClassQueueing covers submit → first core dispatch of the critical task.
	ClassQueueing = "queueing"
	// ClassDrain covers critical-task halt → request completion (output
	// drain and end-of-stream tails).
	ClassDrain = "drain"
	// ClassUnattributed absorbs any residue the per-class cycle accounting
	// could not cover; the exactness test pins it to zero for every
	// Table II workload.
	ClassUnattributed = "unattributed"

	// Conventional-IO chain classes (nvme read/write commands).
	ClassFlashWait = "flash-wait"
	ClassDRAMWait  = "dram-wait"
	ClassHostLink  = "host-link-wait"
)

// execClasses is the fixed layout order of the core-execution window's
// attribution segments.
var execClasses = [5]string{
	analyze.ClassCoreBusy,
	analyze.ClassCacheDRAMWait,
	analyze.ClassStreamRefillWait,
	analyze.ClassOutFullWait,
	analyze.ClassExecStall,
}

// Segment is one critical-path link. Segments are an exact decomposition of
// the request latency — their durations sum to complete-submit — laid out
// in lifecycle order (queueing, execution-window classes, drain); the
// execution-window classes are an attribution of that window, not a
// temporal ordering within it.
type Segment struct {
	Class string `json:"class"`
	DurPs int64  `json:"dur_ps"`
}

// TaskTrace is the per-task accumulator inside a request record: firmware
// data-plane waits on one side, the core's cycle-accounting deltas on the
// other. All times are simulated picoseconds.
type TaskTrace struct {
	Task   int `json:"task"`
	CoreID int `json:"core"`

	// Core-side deltas over the request (filled at completion).
	StartPs      int64 `json:"start_ps"`
	HaltPs       int64 `json:"halt_ps"`
	BusyPs       int64 `json:"busy_ps"`
	MemPs        int64 `json:"cache_dram_wait_ps"`
	RefillPs     int64 `json:"stream_refill_wait_ps"`
	OutFullPs    int64 `json:"out_full_wait_ps"`
	ExecPs       int64 `json:"exec_stall_ps"`
	Instructions int64 `json:"instructions"`
	Dispatches   int64 `json:"dispatches"`

	// Feeder-side accumulators (per page, attributed in bulk by trains).
	PagesFed     int64 `json:"pages_fed"`
	BytesFed     int64 `json:"bytes_fed"`
	SensePs      int64 `json:"sense_ps"`
	TransferPs   int64 `json:"transfer_ps"`
	DeliverPs    int64 `json:"deliver_ps"`
	FirstAvailPs int64 `json:"first_avail_ps"`
	EOSPs        int64 `json:"eos_ps"`

	// Drainer-side accumulators.
	PagesDrained int64 `json:"pages_drained"`
	BytesDrained int64 `json:"bytes_drained"`
	DrainPs      int64 `json:"drain_ps"`
	LastDrainPs  int64 `json:"last_drain_ps"`
}

// finish is the task's last observed progress instant.
func (t *TaskTrace) finish() int64 {
	f := t.HaltPs
	if t.EOSPs > f {
		f = t.EOSPs
	}
	if t.LastDrainPs > f {
		f = t.LastDrainPs
	}
	return f
}

// Request is one in-flight (or retained) request record. The zero receiver
// (nil) is a valid disabled record: every method is a no-op.
type Request struct {
	ID        uint64      `json:"id"`
	Kind      string      `json:"kind"`
	Label     string      `json:"label,omitempty"`
	Tenant    string      `json:"tenant,omitempty"`
	SubmitPs  int64       `json:"submit_ps"`
	LatencyPs int64       `json:"latency_ps"`
	Critical  []Segment   `json:"critical"`
	Tasks     []TaskTrace `json:"tasks,omitempty"`

	completePs int64
	// path is a staged pre-classified chain (conventional IO commands);
	// when non-empty it replaces the task-derived critical path.
	path []Segment
}

// reset prepares a pooled record for reuse, keeping slice capacity.
func (r *Request) reset() {
	r.Tasks = r.Tasks[:0]
	r.Critical = r.Critical[:0]
	r.path = r.path[:0]
	r.Label, r.Tenant = "", ""
	r.SubmitPs, r.completePs, r.LatencyPs = 0, 0, 0
}

// SetTenant tags the request with a tenant label for SLO accounting. Safe on
// a nil request.
func (r *Request) SetTenant(tenant string) {
	if r == nil {
		return
	}
	r.Tenant = tenant
}

// TaskSetup declares task index task running on coreID; grows the task
// table as needed. Safe on a nil request.
func (r *Request) TaskSetup(task, coreID int) {
	if r == nil {
		return
	}
	for len(r.Tasks) <= task {
		r.Tasks = append(r.Tasks, TaskTrace{Task: len(r.Tasks), FirstAvailPs: -1, EOSPs: -1})
	}
	r.Tasks[task].CoreID = coreID
}

// AddPage accounts one delivered page (or one train member) on task's
// feeder side: the sense, bus-transfer, and delivery (crossbar grant / DRAM
// stage) wait components plus the availability instant.
func (r *Request) AddPage(task int, bytes, sensePs, transferPs, deliverPs, availPs int64) {
	if r == nil || task >= len(r.Tasks) {
		return
	}
	t := &r.Tasks[task]
	t.PagesFed++
	t.BytesFed += bytes
	t.SensePs += sensePs
	t.TransferPs += transferPs
	t.DeliverPs += deliverPs
	if t.FirstAvailPs < 0 || availPs < t.FirstAvailPs {
		t.FirstAvailPs = availPs
	}
}

// NoteEOS records the instant task's last input page was pushed.
func (r *Request) NoteEOS(task int, at int64) {
	if r == nil || task >= len(r.Tasks) {
		return
	}
	if t := &r.Tasks[task]; at > t.EOSPs {
		t.EOSPs = at
	}
}

// AddDrain accounts one drained output page on task.
func (r *Request) AddDrain(task int, bytes, startPs, freedPs int64) {
	if r == nil || task >= len(r.Tasks) {
		return
	}
	t := &r.Tasks[task]
	t.PagesDrained++
	t.BytesDrained += bytes
	t.DrainPs += freedPs - startPs
	if freedPs > t.LastDrainPs {
		t.LastDrainPs = freedPs
	}
}

// NoteHalt records the instant task's core halted.
func (r *Request) NoteHalt(task int, at int64) {
	if r == nil || task >= len(r.Tasks) {
		return
	}
	r.Tasks[task].HaltPs = at
}

// SetCoreDelta installs task's core-side accounting for the request: the
// local-clock value at submission and the cycle/stat deltas accumulated
// between submission and halt. Exactness invariant (pinned by test):
// busy+mem+refill+outFull+exec == halt-start for every task, because the
// core's local clock only advances through accounted paths.
func (r *Request) SetCoreDelta(task int, startPs, busy, mem, refill, outFull, exec, insts, dispatches int64) {
	if r == nil || task >= len(r.Tasks) {
		return
	}
	t := &r.Tasks[task]
	t.StartPs = startPs
	t.BusyPs, t.MemPs, t.RefillPs, t.OutFullPs, t.ExecPs = busy, mem, refill, outFull, exec
	t.Instructions = insts
	t.Dispatches = dispatches
}

// AddPathStage appends one pre-classified chain stage (conventional IO:
// flash/DRAM/host-link legs of the command's slowest page). Stages are
// normalized against the submit→complete span at completion.
func (r *Request) AddPathStage(class string, durPs int64) {
	if r == nil {
		return
	}
	r.path = append(r.path, Segment{Class: class, DurPs: durPs})
}

func clamp(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// appendNormalized lays segs over the [0, span] window in order, truncating
// at the window edge and padding any residue as unattributed, so the
// appended durations sum exactly to span.
func appendNormalized(dst []Segment, segs []Segment, span int64) []Segment {
	rem := span
	for _, sg := range segs {
		if rem <= 0 {
			break
		}
		d := sg.DurPs
		if d > rem {
			d = rem
		}
		if d > 0 {
			dst = append(dst, Segment{Class: sg.Class, DurPs: d})
			rem -= d
		}
	}
	if rem > 0 {
		dst = append(dst, Segment{Class: ClassUnattributed, DurPs: rem})
	}
	return dst
}

// buildCritical derives the request's critical path. The construction
// telescopes clamped anchors (submit ≤ start ≤ halt ≤ complete), so the
// segment durations always sum exactly to complete-submit; the exactness
// test additionally pins the unattributed residue to zero.
func (r *Request) buildCritical() {
	r.Critical = r.Critical[:0]
	submit := r.SubmitPs
	complete := r.completePs
	if complete < submit {
		complete = submit
		r.completePs = complete
	}
	r.LatencyPs = complete - submit
	if len(r.path) > 0 {
		r.Critical = appendNormalized(r.Critical, r.path, complete-submit)
		return
	}
	if len(r.Tasks) == 0 {
		if complete > submit {
			r.Critical = append(r.Critical, Segment{Class: ClassUnattributed, DurPs: complete - submit})
		}
		return
	}
	// The critical task is the one whose progress instant is last; ties
	// break toward the lowest task index.
	crit := 0
	best := r.Tasks[0].finish()
	for i := 1; i < len(r.Tasks); i++ {
		if f := r.Tasks[i].finish(); f > best {
			best, crit = f, i
		}
	}
	ct := &r.Tasks[crit]
	// The execution window is anchored at its end (the core's halt instant,
	// on the core's own clock) and sized by the cycle accounting: the core's
	// local clock only advances through accounted paths once dispatched, so
	// halt minus the class sum is the first accounted cycle. Everything
	// before it — scheduler admission, the dispatch-start clock jump — is
	// queueing by definition, which keeps the decomposition exact without
	// trusting the submission-time clock snapshot.
	sum := ct.BusyPs + ct.MemPs + ct.RefillPs + ct.OutFullPs + ct.ExecPs
	s2 := clamp(ct.HaltPs, submit, complete)
	s1 := clamp(s2-sum, submit, s2)
	if q := s1 - submit; q > 0 {
		r.Critical = append(r.Critical, Segment{Class: ClassQueueing, DurPs: q})
	}
	window := [5]Segment{
		{execClasses[0], ct.BusyPs},
		{execClasses[1], ct.MemPs},
		{execClasses[2], ct.RefillPs},
		{execClasses[3], ct.OutFullPs},
		{execClasses[4], ct.ExecPs},
	}
	r.Critical = appendNormalized(r.Critical, window[:], s2-s1)
	if d := complete - s2; d > 0 {
		r.Critical = append(r.Critical, Segment{Class: ClassDrain, DurPs: d})
	}
}

// Config parameterizes a Tracer.
type Config struct {
	// TopK is how many slowest requests are retained with full segment and
	// task detail (<= 0 selects the default of 8).
	TopK int
}

// Tracer assigns RequestIDs, pools records, accumulates per-class latency
// histograms on its sink (component "req"), and retains the K slowest
// requests. The nil *Tracer is valid and disabled.
type Tracer struct {
	cfg  Config
	sink *telemetry.Sink
	lat  *telemetry.Histogram

	seq         uint64
	count       int64
	latencySum  int64
	latencyMax  int64
	classTotals [5]int64         // exec-window stats deltas over all tasks
	critTotals  map[string]int64 // summed critical segments by class
	// critHists caches the per-class histograms so the steady state never
	// rebuilds the "crit_<class>_ps" metric name (zero-alloc contract).
	critHists map[string]*telemetry.Histogram

	free []*Request
	top  []*Request // latency desc, id asc

	// OnComplete, when non-nil, observes every completed record after its
	// critical path and latency are final but before the record is pooled or
	// retained — the SLO engine's feed point. The callback must not hold on
	// to r (records are pooled).
	OnComplete func(r *Request)
	// OnAbort, when non-nil, observes aborted records (failed requests) so
	// availability objectives can count them as bad events.
	OnAbort func(r *Request)
}

// New returns a tracer registering its histograms on sink (a nil sink just
// disables the histogram side; tracing still works).
func New(sink *telemetry.Sink, cfg Config) *Tracer {
	if cfg.TopK <= 0 {
		cfg.TopK = 8
	}
	return &Tracer{
		cfg:        cfg,
		sink:       sink,
		lat:        sink.Histogram("req", "latency_ps"),
		critTotals: make(map[string]int64),
		critHists:  make(map[string]*telemetry.Histogram),
	}
}

// Begin opens a request record at submitPs and assigns the next RequestID.
// Returns nil on a nil tracer.
func (t *Tracer) Begin(kind, label string, submitPs int64) *Request {
	if t == nil {
		return nil
	}
	var r *Request
	if n := len(t.free); n > 0 {
		r = t.free[n-1]
		t.free[n-1] = nil
		t.free = t.free[:n-1]
		r.reset()
	} else {
		r = &Request{}
	}
	t.seq++
	r.ID = t.seq
	r.Kind = kind
	r.Label = label
	r.SubmitPs = submitPs
	return r
}

// Abort discards an open record (failed request) without recording it.
func (t *Tracer) Abort(r *Request) {
	if t == nil || r == nil {
		return
	}
	if t.OnAbort != nil {
		t.OnAbort(r)
	}
	t.free = append(t.free, r)
}

// Complete closes the record at completePs: derives the critical path,
// feeds the latency histograms, accumulates class totals, and retains the
// record if it ranks among the K slowest.
func (t *Tracer) Complete(r *Request, completePs int64) {
	if t == nil || r == nil {
		return
	}
	r.completePs = completePs
	r.buildCritical()
	lat := r.LatencyPs
	t.count++
	t.latencySum += lat
	if lat > t.latencyMax {
		t.latencyMax = lat
	}
	for i := range r.Tasks {
		tt := &r.Tasks[i]
		t.classTotals[0] += tt.BusyPs
		t.classTotals[1] += tt.MemPs
		t.classTotals[2] += tt.RefillPs
		t.classTotals[3] += tt.OutFullPs
		t.classTotals[4] += tt.ExecPs
	}
	t.lat.Observe(lat)
	for _, sg := range r.Critical {
		t.critTotals[sg.Class] += sg.DurPs
		h, ok := t.critHists[sg.Class]
		if !ok {
			h = t.sink.Histogram("req", "crit_"+sg.Class+"_ps")
			t.critHists[sg.Class] = h
		}
		h.Observe(sg.DurPs)
	}
	if t.OnComplete != nil {
		t.OnComplete(r)
	}
	t.retain(r)
}

// retain keeps r if it is among the K slowest, otherwise pools it.
// Ordering is (latency desc, id asc): among equal latencies the earliest
// request wins, so retention is independent of completion interleaving.
func (t *Tracer) retain(r *Request) {
	k := t.cfg.TopK
	pos := sort.Search(len(t.top), func(i int) bool {
		o := t.top[i]
		if o.LatencyPs != r.LatencyPs {
			return o.LatencyPs < r.LatencyPs
		}
		return o.ID > r.ID
	})
	if pos >= k {
		t.free = append(t.free, r)
		return
	}
	t.top = append(t.top, nil)
	copy(t.top[pos+1:], t.top[pos:])
	t.top[pos] = r
	if len(t.top) > k {
		evict := t.top[len(t.top)-1]
		t.top[len(t.top)-1] = nil
		t.top = t.top[:len(t.top)-1]
		t.free = append(t.free, evict)
	}
}

// Count returns how many requests completed (0 on a nil tracer).
func (t *Tracer) Count() int64 {
	if t == nil {
		return 0
	}
	return t.count
}

// Summary is the deterministic, serializable digest of a tracer: totals,
// per-class aggregates, and the K slowest requests with full detail.
type Summary struct {
	Label        string `json:"label,omitempty"`
	Count        int64  `json:"count"`
	LatencySumPs int64  `json:"latency_sum_ps"`
	LatencyMaxPs int64  `json:"latency_max_ps"`
	// ClassTotalsPs sums the exec-window stats deltas over every task of
	// every request — the same five classes the attribution engine reports,
	// and (for a fresh SSD) exactly its numbers.
	ClassTotalsPs map[string]int64 `json:"class_totals_ps,omitempty"`
	// CriticalTotalsPs sums critical-path segment durations by class; it
	// adds queueing/drain and totals exactly Count requests' latencies.
	CriticalTotalsPs map[string]int64 `json:"critical_totals_ps,omitempty"`
	Slowest          []Request        `json:"slowest,omitempty"`
}

// Summary snapshots the tracer (nil tracer -> nil).
func (t *Tracer) Summary(label string) *Summary {
	if t == nil {
		return nil
	}
	s := &Summary{
		Label:        label,
		Count:        t.count,
		LatencySumPs: t.latencySum,
		LatencyMaxPs: t.latencyMax,
	}
	if t.count > 0 {
		s.ClassTotalsPs = make(map[string]int64, len(execClasses))
		for i, c := range execClasses {
			s.ClassTotalsPs[c] = t.classTotals[i]
		}
		s.CriticalTotalsPs = make(map[string]int64, len(t.critTotals))
		for c, v := range t.critTotals {
			s.CriticalTotalsPs[c] = v
		}
	}
	for _, r := range t.top {
		cp := *r
		cp.Critical = append([]Segment(nil), r.Critical...)
		cp.Tasks = append([]TaskTrace(nil), r.Tasks...)
		cp.path = nil
		s.Slowest = append(s.Slowest, cp)
	}
	return s
}

// Find returns the retained request with the given id, or nil.
func (s *Summary) Find(id uint64) *Request {
	if s == nil {
		return nil
	}
	for i := range s.Slowest {
		if s.Slowest[i].ID == id {
			return &s.Slowest[i]
		}
	}
	return nil
}

// fmtPs renders picoseconds human-readably (simulated time).
func fmtPs(ps int64) string {
	switch {
	case ps >= 1_000_000_000_000:
		return fmt.Sprintf("%.3fs", float64(ps)/1e12)
	case ps >= 1_000_000_000:
		return fmt.Sprintf("%.3fms", float64(ps)/1e9)
	case ps >= 1_000_000:
		return fmt.Sprintf("%.3fus", float64(ps)/1e6)
	case ps >= 1_000:
		return fmt.Sprintf("%.3fns", float64(ps)/1e3)
	default:
		return fmt.Sprintf("%dps", ps)
	}
}

// criticalString renders a request's critical path as "class dur · ...".
func (r *Request) criticalString() string {
	out := ""
	for i, sg := range r.Critical {
		if i > 0 {
			out += " · "
		}
		out += sg.Class + " " + fmtPs(sg.DurPs)
	}
	return out
}

// WriteText renders the summary as an aligned, deterministic text report.
func (s *Summary) WriteText(w io.Writer) error {
	if s == nil {
		return nil
	}
	head := "requests"
	if s.Label != "" {
		head = "requests " + s.Label
	}
	mean := int64(0)
	if s.Count > 0 {
		mean = s.LatencySumPs / s.Count
	}
	if _, err := fmt.Fprintf(w, "%s: %d completed, mean %s, max %s\n",
		head, s.Count, fmtPs(mean), fmtPs(s.LatencyMaxPs)); err != nil {
		return err
	}
	if len(s.CriticalTotalsPs) > 0 {
		classes := make([]string, 0, len(s.CriticalTotalsPs))
		for c := range s.CriticalTotalsPs {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		if _, err := fmt.Fprintf(w, "  critical-path totals:"); err != nil {
			return err
		}
		for _, c := range classes {
			share := 0.0
			if s.LatencySumPs > 0 {
				share = 100 * float64(s.CriticalTotalsPs[c]) / float64(s.LatencySumPs)
			}
			if _, err := fmt.Fprintf(w, " %s %.1f%%", c, share); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	for i := range s.Slowest {
		r := &s.Slowest[i]
		if _, err := fmt.Fprintf(w, "  #%-3d %-8s %10s  %s\n",
			r.ID, r.Kind, fmtPs(r.LatencyPs), r.criticalString()); err != nil {
			return err
		}
	}
	return nil
}

// WriteSummariesJSON writes summaries (already ordered by the caller) as
// deterministic indented JSON.
func WriteSummariesJSON(w io.Writer, sums []*Summary) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sums)
}
