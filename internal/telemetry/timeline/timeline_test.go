package timeline

import (
	"bytes"
	"testing"

	"assasin/internal/telemetry"
)

func TestNilSamplerIsDisabled(t *testing.T) {
	var s *Sampler
	s.Tick(12345)
	s.AddProbe(func(emit func(string, int64)) { t.Fatal("probe on nil sampler") })
	if tl := s.Finish("x", 100); tl != nil {
		t.Fatalf("nil sampler Finish = %+v, want nil", tl)
	}
}

func TestTickFastPathsAllocateNothing(t *testing.T) {
	var nilSampler *Sampler
	if n := testing.AllocsPerRun(1000, func() { nilSampler.Tick(1 << 40) }); n != 0 {
		t.Errorf("nil sampler Tick allocates %v/op", n)
	}
	s := New(nil, Config{IntervalPs: 1 << 40})
	if n := testing.AllocsPerRun(1000, func() { s.Tick(1) }); n != 0 {
		t.Errorf("pre-boundary Tick allocates %v/op", n)
	}
}

func TestCounterRatesAndGaugeValues(t *testing.T) {
	sink := telemetry.NewSink()
	c := sink.Counter("fw", "pages")
	c.Add(7) // pre-sampler increments must not leak into the first interval
	g := sink.Gauge("isb", "occ")
	g.Set(3)

	s := New(sink, Config{IntervalPs: 100})
	c.Add(10)
	g.Set(5)
	s.Tick(100)
	c.Add(4)
	g.Set(2)
	s.Tick(250) // crosses 200 only; sample covers (100, 200]
	tl := s.Finish("run", 250)

	if got := tl.TimesPs; len(got) != 3 || got[0] != 100 || got[1] != 200 || got[2] != 250 {
		t.Fatalf("TimesPs = %v, want [100 200 250]", got)
	}
	pages := tl.SeriesByKey("fw/pages")
	if pages == nil || pages.Kind != "rate" {
		t.Fatalf("fw/pages series = %+v", pages)
	}
	if pages.Values[0] != 10 || pages.Values[1] != 4 || pages.Values[2] != 0 {
		t.Errorf("fw/pages values = %v, want [10 4 0]", pages.Values)
	}
	occ := tl.SeriesByKey("isb/occ")
	if occ == nil || occ.Kind != "value" {
		t.Fatalf("isb/occ series = %+v", occ)
	}
	if occ.Values[0] != 5 || occ.Values[1] != 2 || occ.Values[2] != 2 {
		t.Errorf("isb/occ values = %v, want [5 2 2]", occ.Values)
	}
}

func TestLateRegisteredMetricIsBackfilled(t *testing.T) {
	sink := telemetry.NewSink()
	sink.Counter("a", "x").Add(1)
	s := New(sink, Config{IntervalPs: 10})
	s.Tick(20)
	sink.Counter("b", "y").Add(5) // predates discovery: dropped by priming
	s.Tick(30)
	sink.Counter("b", "y").Add(7)
	s.Tick(40)
	tl := s.Finish("run", 40)

	y := tl.SeriesByKey("b/y")
	if y == nil {
		t.Fatal("late counter has no series")
	}
	// Discovered (and primed) at the third sample: backfilled zeros before
	// it, then deltas of post-discovery increments only.
	if len(y.Values) != 4 || y.Values[0] != 0 || y.Values[1] != 0 || y.Values[2] != 0 || y.Values[3] != 7 {
		t.Errorf("b/y values = %v, want [0 0 0 7]", y.Values)
	}
}

func TestDecimationPreservesRateIntegrals(t *testing.T) {
	sink := telemetry.NewSink()
	c := sink.Counter("fw", "bytes")
	s := New(sink, Config{IntervalPs: 10, Capacity: 8})

	var total int64
	for i := 1; i <= 40; i++ {
		c.Add(int64(i))
		total += int64(i)
		s.Tick(int64(10 * i))
	}
	tl := s.Finish("run", 400)

	if tl.Decimations == 0 || tl.IntervalPs <= tl.BaseIntervalPs {
		t.Fatalf("expected decimation: %d decims, interval %d (base %d)",
			tl.Decimations, tl.IntervalPs, tl.BaseIntervalPs)
	}
	if len(tl.TimesPs) > 8 {
		t.Errorf("capacity exceeded: %d samples", len(tl.TimesPs))
	}
	var sum int64
	for _, v := range tl.SeriesByKey("fw/bytes").Values {
		sum += v
	}
	if sum != total {
		t.Errorf("rate integral = %d, want %d (decimation must preserve sums)", sum, total)
	}
	if last := tl.TimesPs[len(tl.TimesPs)-1]; last != 400 {
		t.Errorf("last timestamp = %d, want 400", last)
	}
}

// classProbe builds a probe from a schedule of cumulative values per tick.
func classProbe(vals map[string][]int64, tick *int) Probe {
	return func(emit func(string, int64)) {
		for key, vs := range vals {
			i := *tick
			if i >= len(vs) {
				i = len(vs) - 1
			}
			emit(key, vs[i])
		}
	}
}

func TestPhaseSegmentation(t *testing.T) {
	// Four samples dominated by class/a, then four by class/b.
	s := New(nil, Config{IntervalPs: 10})
	tick := 0
	s.AddProbe(classProbe(map[string][]int64{
		"class/a": {9, 18, 27, 36, 37, 38, 39, 40},
		"class/b": {1, 2, 3, 4, 13, 22, 31, 40},
	}, &tick))
	for i := 1; i <= 8; i++ {
		tick = i - 1
		s.Tick(int64(10 * i))
	}
	tl := s.Finish("run", 80)

	if len(tl.Phases) != 2 {
		t.Fatalf("phases = %+v, want 2", tl.Phases)
	}
	a, b := tl.Phases[0], tl.Phases[1]
	if a.Class != "a" || a.StartPs != 0 || a.EndPs != 40 || a.Samples != 4 {
		t.Errorf("phase a = %+v", a)
	}
	if b.Class != "b" || b.StartPs != 40 || b.EndPs != 80 || b.Samples != 4 {
		t.Errorf("phase b = %+v", b)
	}
	if a.ClassPs["a"] != 36 || a.ClassPs["b"] != 4 {
		t.Errorf("phase a class_ps = %v", a.ClassPs)
	}
	if b.ClassPs["a"] != 4 || b.ClassPs["b"] != 36 {
		t.Errorf("phase b class_ps = %v", b.ClassPs)
	}
}

func TestPhaseSmoothingMergesFlickers(t *testing.T) {
	s := New(nil, Config{IntervalPs: 10, MinPhaseSamples: 2})
	tick := 0
	// One-sample class/b flicker inside a class/a run merges away.
	s.AddProbe(classProbe(map[string][]int64{
		"class/a": {5, 10, 10, 15, 20, 25},
		"class/b": {1, 2, 8, 9, 10, 11},
	}, &tick))
	for i := 1; i <= 6; i++ {
		tick = i - 1
		s.Tick(int64(10 * i))
	}
	tl := s.Finish("run", 60)

	if len(tl.Phases) != 1 {
		t.Fatalf("phases = %+v, want one smoothed phase", tl.Phases)
	}
	p := tl.Phases[0]
	if p.Class != "a" || p.Samples != 6 || p.StartPs != 0 || p.EndPs != 60 {
		t.Errorf("smoothed phase = %+v", p)
	}
}

func TestLeadingIdlePhase(t *testing.T) {
	s := New(nil, Config{IntervalPs: 10})
	tick := 0
	s.AddProbe(classProbe(map[string][]int64{
		"class/a": {0, 0, 0, 10, 20, 30},
	}, &tick))
	for i := 1; i <= 6; i++ {
		tick = i - 1
		s.Tick(int64(10 * i))
	}
	tl := s.Finish("run", 60)

	if len(tl.Phases) != 2 || tl.Phases[0].Class != "idle" || tl.Phases[1].Class != "a" {
		t.Fatalf("phases = %+v, want [idle a]", tl.Phases)
	}
	if tl.Phases[0].EndPs != 30 || tl.Phases[1].StartPs != 30 {
		t.Errorf("idle boundary wrong: %+v", tl.Phases)
	}
}

func TestTimelineJSONIsDeterministic(t *testing.T) {
	build := func() *Timeline {
		sink := telemetry.NewSink()
		c := sink.Counter("fw", "pages")
		g := sink.Gauge("isb", "occ")
		s := New(sink, Config{IntervalPs: 10, Capacity: 8})
		tick := 0
		s.AddProbe(classProbe(map[string][]int64{
			"class/x": {3, 6, 9, 12, 15, 18, 21, 24, 27, 30},
		}, &tick))
		for i := 1; i <= 10; i++ {
			tick = i - 1
			c.Add(int64(i))
			g.Set(int64(i % 3))
			s.Tick(int64(10 * i))
		}
		return s.Finish("run", 100)
	}
	var a, b bytes.Buffer
	if err := build().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("timeline JSON not byte-identical:\n%s\nvs\n%s", a.String(), b.String())
	}
}
