// Package timeline turns the end-of-run aggregates of internal/telemetry
// into time-resolved data: a sim-clock-driven Sampler snapshots every
// registered gauge and the per-interval delta of every counter into compact
// columnar series, bounded in memory by automatic 2× decimation, and a
// deterministic phase segmenter splits the run into contiguous phases by
// dominant stall class.
//
// The sampler is driven by the simulation itself (sim.Scheduler.OnAdvance
// calls Tick with the committed horizon before each dispatch), so sampling
// happens in simulated time, not wall time, and two runs of the same
// workload produce byte-identical timelines regardless of host scheduling
// or -parallel settings.
//
// Zero-cost contract: a nil *Sampler is a valid disabled sampler — Tick,
// AddProbe and Finish are nil-receiver no-ops, so the scheduler's hot loop
// pays one nil-pointer branch when timelines are off.
//
// The package deliberately depends only on internal/telemetry: stall-class
// series are ordinary series under the "class/" key prefix, registered by
// the SSD layer through probes, so timeline needs no knowledge of the
// analyze package's taxonomy (analyze consumes timelines, not vice versa).
package timeline

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"sort"

	"assasin/internal/telemetry"
)

// DefaultIntervalPs is the default base sampling interval: 10 µs of
// simulated time, an order of magnitude above the scheduler's 1 µs dispatch
// quantum (which bounds sampling skew, see Tick) and fine enough to resolve
// flash-page-granularity behavior (a 4 KiB page transfer takes ~4 µs on a
// 1 GB/s channel).
const DefaultIntervalPs = 10_000_000

// DefaultCapacity bounds each series to 2048 samples before decimation; a
// full timeline of 60 series then holds well under 2 MB.
const DefaultCapacity = 2048

// ClassPrefix marks the series the phase segmenter consumes. The SSD layer
// registers one cumulative probe per stall class under "class/<name>".
const ClassPrefix = "class/"

// Config parameterizes a Sampler.
type Config struct {
	// IntervalPs is the base sampling interval in simulated picoseconds
	// (default DefaultIntervalPs). Decimation doubles the effective
	// interval; the base interval is preserved in the output for reference.
	IntervalPs int64
	// Capacity bounds the number of retained samples (default
	// DefaultCapacity, minimum 8, rounded up to even). When a sample would
	// exceed it, every series is decimated 2×: adjacent sample pairs merge
	// — rate series sum (preserving integrals), value series keep the later
	// sample — and the effective interval doubles, so memory stays bounded
	// for arbitrarily long runs.
	Capacity int
	// MinPhaseSamples is the phase segmenter's smoothing floor: a candidate
	// phase shorter than this many samples merges into its predecessor
	// (default 2).
	MinPhaseSamples int
	// TraceClasses mirrors the class series into the sink's event trace as
	// Chrome "ph":"C" counter samples on a "timeline" track, so Perfetto
	// renders stall-class lanes alongside the span swim-lanes. Only class
	// series are mirrored: full-registry mirroring would dwarf the span
	// events the trace exists for.
	TraceClasses bool
}

// withDefaults resolves zero fields.
func (c Config) withDefaults() Config {
	if c.IntervalPs <= 0 {
		c.IntervalPs = DefaultIntervalPs
	}
	if c.Capacity <= 0 {
		c.Capacity = DefaultCapacity
	}
	if c.Capacity < 8 {
		c.Capacity = 8
	}
	c.Capacity += c.Capacity % 2 // decimation pairs samples
	if c.MinPhaseSamples <= 0 {
		c.MinPhaseSamples = 2
	}
	return c
}

// Probe contributes sampler-pulled values that live outside the metric
// registry (e.g. per-core cycle accounting summed on demand). At each
// sample the probe calls emit once per key with the value accumulated since
// the start of the run; the sampler differentiates consecutive samples into
// a per-interval rate series. Keys first emitted mid-run are backfilled
// with zeros for the samples they missed.
type Probe func(emit func(key string, cumulative int64))

// series is one metric's column. Rate series hold per-interval deltas of a
// cumulative source (counters, probes); value series hold sampled gauge
// values.
type series struct {
	key  string
	rate bool
	vals []int64
	prev int64 // last cumulative value seen (rate series only)
}

// Sampler accumulates columnar samples as the simulation advances. Not
// goroutine-safe: it belongs to the run's simulation goroutine, like the
// sink it reads.
type Sampler struct {
	cfg  Config
	sink *telemetry.Sink

	ivalPs int64 // effective interval (doubles on decimation)
	nextPs int64 // next sample boundary
	decims int

	times  []int64
	byKey  map[string]*series
	order  []*series // registration order, for deterministic iteration
	probes []Probe

	counters []counterHandle
	gauges   []gaugeHandle
	known    int // sink registry size at last refresh

	track *telemetry.Track // class counter mirror; nil unless TraceClasses
}

type counterHandle struct {
	c  *telemetry.Counter
	se *series
}

type gaugeHandle struct {
	g  *telemetry.Gauge
	se *series
}

// New builds a sampler over sink (which may be nil: then only probe-fed
// series are collected). Metrics already registered on the sink are primed
// at their current values, so on a sink shared across runs the first
// interval's counter deltas cover only this run.
func New(sink *telemetry.Sink, cfg Config) *Sampler {
	s := &Sampler{
		cfg:   cfg.withDefaults(),
		sink:  sink,
		byKey: make(map[string]*series),
	}
	s.ivalPs = s.cfg.IntervalPs
	s.nextPs = s.ivalPs
	s.refresh()
	if s.cfg.TraceClasses && sink != nil {
		s.track = sink.Track("timeline")
	}
	return s
}

// AddProbe registers a probe; nil-safe.
func (s *Sampler) AddProbe(p Probe) {
	if s == nil || p == nil {
		return
	}
	s.probes = append(s.probes, p)
}

// Tick advances the sampler to the committed simulation time nowPs, taking
// a sample at every interval boundary crossed. The scheduler calls it
// before each dispatch, so a boundary is sampled when the first process
// crosses it; conservative interleaving bounds the skew of other processes'
// state by the scheduler quantum (1 µs by default, a tenth of the default
// interval). Calls with an earlier time than a previous call are no-ops,
// which also makes the disabled/idle fast path a single comparison.
func (s *Sampler) Tick(nowPs int64) {
	if s == nil || nowPs < s.nextPs {
		return
	}
	for s.nextPs <= nowPs {
		s.sampleAt(s.nextPs)
		s.nextPs += s.ivalPs
	}
}

// refresh discovers metrics registered on the sink since the last sample
// and attaches handles. Series appearing at sample n are backfilled with n
// zeros; increments that predate discovery are dropped from the series (the
// registry is scanned every sample, so at most one interval's worth).
func (s *Sampler) refresh() {
	if s.sink == nil || s.sink.RegisteredCount() == s.known {
		return
	}
	for _, mi := range s.sink.Registered() {
		key := mi.Component + "/" + mi.Name
		if _, ok := s.byKey[key]; ok {
			continue
		}
		switch mi.Kind {
		case telemetry.KindCounter:
			c := s.sink.Counter(mi.Component, mi.Name)
			se := s.addSeries(key, true)
			se.prev = c.Value()
			s.counters = append(s.counters, counterHandle{c: c, se: se})
		case telemetry.KindGauge:
			g := s.sink.Gauge(mi.Component, mi.Name)
			s.gauges = append(s.gauges, gaugeHandle{g: g, se: s.addSeries(key, false)})
		}
		// Histograms are not sampled: they are already cumulative
		// distribution summaries, and their end-of-run percentiles are what
		// the attribution report consumes.
	}
	s.known = s.sink.RegisteredCount()
}

// addSeries registers a new column, zero-backfilled to the current length.
func (s *Sampler) addSeries(key string, rate bool) *series {
	capHint := s.cfg.Capacity
	if len(s.times) > capHint {
		capHint = len(s.times)
	}
	se := &series{key: key, rate: rate, vals: make([]int64, len(s.times), capHint)}
	s.byKey[key] = se
	s.order = append(s.order, se)
	return se
}

// emitProbe receives one probe key's cumulative value during sampleAt.
func (s *Sampler) emitProbe(key string, cumulative int64) {
	se := s.byKey[key]
	if se == nil {
		se = s.addSeries(key, true)
	}
	d := cumulative - se.prev
	se.prev = cumulative
	if len(se.vals) < len(s.times) {
		se.vals = append(se.vals, d)
	} else if n := len(se.vals); n > 0 {
		se.vals[n-1] += d // repeated emit within one sample accumulates
	}
}

// sampleAt appends one sample at timestamp ts to every series.
func (s *Sampler) sampleAt(ts int64) {
	s.refresh()
	s.times = append(s.times, ts)
	for _, h := range s.counters {
		v := h.c.Value()
		h.se.vals = append(h.se.vals, v-h.se.prev)
		h.se.prev = v
	}
	for _, h := range s.gauges {
		h.se.vals = append(h.se.vals, h.g.Value())
	}
	for _, p := range s.probes {
		p(s.emitProbe)
	}
	// Probes may skip keys on some samples; pad their columns so every
	// series stays aligned with times (a skipped cumulative key gained 0).
	n := len(s.times)
	for _, se := range s.order {
		for len(se.vals) < n {
			se.vals = append(se.vals, 0)
		}
	}
	if s.track != nil {
		for _, se := range s.order {
			if len(se.key) > len(ClassPrefix) && se.key[:len(ClassPrefix)] == ClassPrefix {
				s.track.Counter(se.key, ts, se.vals[n-1])
			}
		}
	}
	if n >= s.cfg.Capacity {
		s.decimate()
	}
}

// decimate halves every column: sample pairs (2k, 2k+1) merge into sample
// k, keeping the later timestamp; rate columns sum the pair (the series
// integral is preserved exactly), value columns keep the later value. The
// effective interval doubles.
func (s *Sampler) decimate() {
	n := len(s.times)
	half := n / 2
	for k := 0; k < half; k++ {
		s.times[k] = s.times[2*k+1]
	}
	s.times = s.times[:half]
	for _, se := range s.order {
		for k := 0; k < half; k++ {
			if se.rate {
				se.vals[k] = se.vals[2*k] + se.vals[2*k+1]
			} else {
				se.vals[k] = se.vals[2*k+1]
			}
		}
		se.vals = se.vals[:half]
	}
	s.ivalPs *= 2
	s.decims++
}

// Series is one exported metric column, aligned with Timeline.TimesPs.
type Series struct {
	Key string `json:"key"`
	// Kind is "rate" (per-interval delta of a cumulative source) or
	// "value" (sampled gauge).
	Kind   string  `json:"kind"`
	Values []int64 `json:"values"`
}

// Timeline is the frozen, exportable result of one run's sampling:
// columnar — one shared timestamp column plus one value column per metric —
// so consumers index sample i across all series at once. Sample i covers
// the half-open sim-time window (TimesPs[i-1], TimesPs[i]] (from 0 for
// i = 0).
type Timeline struct {
	// Run labels the run (e.g. "Stat/AssasinSb").
	Run string `json:"run,omitempty"`
	// IntervalPs is the effective sampling interval after decimation;
	// BaseIntervalPs is the configured interval, with Decimations doublings
	// between them. The final sample may close early at the run's end.
	IntervalPs     int64 `json:"interval_ps"`
	BaseIntervalPs int64 `json:"base_interval_ps"`
	Decimations    int   `json:"decimations"`
	// TimesPs is the shared timestamp column (end of each sample window).
	TimesPs []int64 `json:"times_ps"`
	// Series holds one column per metric, sorted by key.
	Series []Series `json:"series"`
	// Phases is the dominant-stall-class segmentation (see Phase).
	Phases []Phase `json:"phases,omitempty"`
}

// Finish takes a final sample at endPs when the run ended past the last
// boundary, then freezes the sampler into a Timeline labeled run. Returns
// nil on a nil sampler. The sampler should not be ticked after Finish.
func (s *Sampler) Finish(run string, endPs int64) *Timeline {
	if s == nil {
		return nil
	}
	if endPs > 0 && (len(s.times) == 0 || endPs > s.times[len(s.times)-1]) {
		s.sampleAt(endPs)
	}
	tl := &Timeline{
		Run:            run,
		IntervalPs:     s.ivalPs,
		BaseIntervalPs: s.cfg.IntervalPs,
		Decimations:    s.decims,
		TimesPs:        append([]int64(nil), s.times...),
	}
	tl.Series = make([]Series, 0, len(s.order))
	for _, se := range s.order {
		kind := "value"
		if se.rate {
			kind = "rate"
		}
		tl.Series = append(tl.Series, Series{
			Key: se.key, Kind: kind, Values: append([]int64(nil), se.vals...),
		})
	}
	sort.Slice(tl.Series, func(i, j int) bool { return tl.Series[i].Key < tl.Series[j].Key })
	tl.Phases = segmentPhases(tl, s.cfg.MinPhaseSamples)
	return tl
}

// SeriesByKey returns the column stored under key, or nil.
func (t *Timeline) SeriesByKey(key string) *Series {
	if t == nil {
		return nil
	}
	i := sort.Search(len(t.Series), func(i int) bool { return t.Series[i].Key >= key })
	if i < len(t.Series) && t.Series[i].Key == key {
		return &t.Series[i]
	}
	return nil
}

// WriteJSON writes the timeline as indented JSON. Field order is fixed and
// every slice is deterministically ordered, so output is byte-stable for
// identical runs.
func (t *Timeline) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.SetIndent("", "  ")
	if err := enc.Encode(t); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteFile writes the timeline JSON to path, creating parent directories
// as needed.
func (t *Timeline) WriteFile(path string) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
