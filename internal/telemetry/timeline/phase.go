package timeline

// Phase segmentation: the run splits into contiguous phases by dominant
// stall class, computed from the "class/" rate series (picoseconds of core
// time per sample window, summed across cores). The rules are deliberately
// simple and fully deterministic:
//
//  1. Each sample's dominant class is the class series with the largest
//     value; ties break to the lexicographically smaller key.
//  2. Samples whose class values are all zero (cores idle, e.g. trailing
//     output drains) extend the current phase; a leading all-zero stretch
//     becomes an "idle" phase.
//  3. Contiguous samples with the same dominant class form a phase.
//  4. Smoothing: a phase shorter than Config.MinPhaseSamples merges into
//     its predecessor (the first phase instead merges into its successor),
//     so one-sample flickers at phase boundaries don't fragment the
//     segmentation. The survivor keeps its class; the absorbed samples'
//     class times are added to its totals.

// Phase is one contiguous dominant-class segment of a run.
type Phase struct {
	// Class is the dominant stall class, without the "class/" prefix
	// (e.g. "cache-dram-wait"), or "idle" for a leading all-zero stretch.
	Class string `json:"class"`
	// StartPs/EndPs bound the phase's sim-time window (start exclusive,
	// end inclusive, matching the sample-window convention).
	StartPs int64 `json:"start_ps"`
	EndPs   int64 `json:"end_ps"`
	// Samples is how many timeline samples the phase spans.
	Samples int `json:"samples"`
	// ClassPs sums each class's core time inside the phase.
	ClassPs map[string]int64 `json:"class_ps,omitempty"`
}

// DurationPs returns the phase's sim-time length.
func (p Phase) DurationPs() int64 { return p.EndPs - p.StartPs }

// segmentPhases implements the rules above over a frozen timeline.
func segmentPhases(tl *Timeline, minSamples int) []Phase {
	var classes []Series
	for _, se := range tl.Series {
		if len(se.Key) > len(ClassPrefix) && se.Key[:len(ClassPrefix)] == ClassPrefix {
			classes = append(classes, se)
		}
	}
	if len(classes) == 0 || len(tl.TimesPs) == 0 {
		return nil
	}

	// Dominant class per sample (rule 1-2). tl.Series is sorted by key, so
	// scanning in order and requiring a strict improvement implements the
	// lexicographic tiebreak.
	dominant := make([]string, len(tl.TimesPs))
	for i := range tl.TimesPs {
		best := ""
		var bestV int64
		for _, se := range classes {
			if v := se.Values[i]; v > bestV {
				bestV, best = v, se.Key[len(ClassPrefix):]
			}
		}
		dominant[i] = best // "" when all zero
	}

	// Raw phases (rule 3), with all-zero samples extending the current one.
	var phases []Phase
	addSample := func(p *Phase, i int) {
		p.EndPs = tl.TimesPs[i]
		p.Samples++
		for _, se := range classes {
			if v := se.Values[i]; v != 0 {
				if p.ClassPs == nil {
					p.ClassPs = make(map[string]int64, len(classes))
				}
				p.ClassPs[se.Key[len(ClassPrefix):]] += v
			}
		}
	}
	for i := range tl.TimesPs {
		class := dominant[i]
		if class == "" && len(phases) > 0 {
			addSample(&phases[len(phases)-1], i)
			continue
		}
		if class == "" {
			class = "idle"
		}
		if len(phases) == 0 || phases[len(phases)-1].Class != class {
			start := int64(0)
			if i > 0 {
				start = tl.TimesPs[i-1]
			}
			phases = append(phases, Phase{Class: class, StartPs: start, EndPs: start})
		}
		addSample(&phases[len(phases)-1], i)
	}

	// Smoothing (rule 4): repeatedly merge the first too-short phase until
	// none remain (or one phase is left).
	for len(phases) > 1 {
		merged := false
		for i := range phases {
			if phases[i].Samples >= minSamples {
				continue
			}
			dst := i - 1
			if i == 0 {
				dst = 1
			}
			phases[dst] = mergePhases(phases[dst], phases[i], dst > i)
			phases = append(phases[:i], phases[i+1:]...)
			merged = true
			break
		}
		if !merged {
			break
		}
	}

	// Absorbing a short phase can leave its two neighbors — which share a
	// class — adjacent; coalesce them so phases are maximal.
	out := phases[:1]
	for _, p := range phases[1:] {
		last := &out[len(out)-1]
		if last.Class == p.Class {
			*last = mergePhases(*last, p, false)
		} else {
			out = append(out, p)
		}
	}
	return out
}

// mergePhases absorbs short into keep; keepIsLater tells which side's
// boundary survives on each end.
func mergePhases(keep, short Phase, keepIsLater bool) Phase {
	if keepIsLater {
		keep.StartPs = short.StartPs
	} else {
		keep.EndPs = short.EndPs
	}
	keep.Samples += short.Samples
	for class, ps := range short.ClassPs {
		if keep.ClassPs == nil {
			keep.ClassPs = make(map[string]int64, len(short.ClassPs))
		}
		keep.ClassPs[class] += ps
	}
	return keep
}
