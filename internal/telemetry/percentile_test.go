package telemetry

import (
	"math"
	"testing"
)

func TestPercentileEmptyAndNil(t *testing.T) {
	var nilH *Histogram
	if got := nilH.Percentile(0.5); got != 0 {
		t.Fatalf("nil histogram P50 = %v, want 0", got)
	}
	h := &Histogram{}
	if got := h.Percentile(0.99); got != 0 {
		t.Fatalf("empty histogram P99 = %v, want 0", got)
	}
}

func TestPercentileSingleValue(t *testing.T) {
	// All samples identical: every quantile must report that value exactly
	// (the in-bucket interpolation is clamped to the observed maximum).
	h := &Histogram{}
	for i := 0; i < 10; i++ {
		h.Observe(4) // bucket [4, 8)
	}
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if got := h.Percentile(q); got != 4 {
			t.Fatalf("P%v = %v, want 4", q*100, got)
		}
	}
}

func TestPercentileBucketBoundaries(t *testing.T) {
	// One sample per power of two: 1, 2, 4, 8 land in buckets 1..4
	// ([1,2), [2,4), [4,8), [8,16)).
	h := &Histogram{}
	for _, v := range []int64{1, 2, 4, 8} {
		h.Observe(v)
	}
	// q = 0 pins the low edge of the first non-empty bucket.
	if got := h.Percentile(0); got != 1 {
		t.Fatalf("P0 = %v, want 1", got)
	}
	// q = 1 pins the observed maximum, not the bucket's upper bound (16).
	if got := h.Percentile(1); got != 8 {
		t.Fatalf("P100 = %v, want 8", got)
	}
	// Rank 2 of 4 exhausts bucket [2,4) exactly: interpolation reaches the
	// bucket's upper boundary.
	if got := h.Percentile(0.5); got != 4 {
		t.Fatalf("P50 = %v, want 4 (upper boundary of [2,4))", got)
	}
	// Rank 3.8 of 4 sits 80% into bucket [8,16): 8 + 0.8*8 = 14.4, then
	// clamped to the max 8.
	if got := h.Percentile(0.95); got != 8 {
		t.Fatalf("P95 = %v, want 8 (clamped to max)", got)
	}
}

func TestPercentileInterpolatesWithinBucket(t *testing.T) {
	// 100 samples of 1000 and 100 of 3000: buckets [512,1024) and
	// [2048,4096). P25 is halfway through the first bucket's count:
	// 512 + 0.5*512 = 768, clamped up to the observed minimum 1000 (no
	// sample is smaller, so no quantile may report smaller).
	h := &Histogram{}
	for i := 0; i < 100; i++ {
		h.Observe(1000)
		h.Observe(3000)
	}
	if got := h.Percentile(0.25); got != 1000 {
		t.Fatalf("P25 = %v, want 1000 (clamped to min)", got)
	}
	// P60 lands 20% into the second bucket: 2048 + 0.2*2048 = 2457.6 —
	// inside [min, max], so interpolation is untouched.
	if got := h.Percentile(0.60); math.Abs(got-2457.6) > 0.01 {
		t.Fatalf("P60 = %v, want 2457.6", got)
	}
	// P75 is halfway through the second bucket: 2048 + 0.5*2048 = 3072,
	// clamped to the max 3000.
	if got := h.Percentile(0.75); got != 3000 {
		t.Fatalf("P75 = %v, want 3000", got)
	}
	// Out-of-range q values clamp to [0, 1].
	if got := h.Percentile(-3); got != h.Percentile(0) {
		t.Fatalf("q<0 = %v, want %v", got, h.Percentile(0))
	}
	if got := h.Percentile(7); got != h.Percentile(1) {
		t.Fatalf("q>1 = %v, want %v", got, h.Percentile(1))
	}
}

func TestPercentileZeroBucket(t *testing.T) {
	// Bucket 0 (v <= 0) collapses to the single value 0.
	h := &Histogram{}
	h.Observe(0)
	h.Observe(0)
	h.Observe(-5)
	if got := h.Percentile(0.5); got != 0 {
		t.Fatalf("P50 of zero bucket = %v, want 0", got)
	}
	h.Observe(16)
	if got := h.Percentile(0.5); got != 0 {
		t.Fatalf("P50 = %v, want 0 (3 of 4 samples are <= 0)", got)
	}
	if got := h.Percentile(1); got != 16 {
		t.Fatalf("P100 = %v, want 16", got)
	}
}

func TestPercentileTopBucketNoOverflow(t *testing.T) {
	// The topmost bucket's bounds exceed int64; float bucket math must not
	// overflow or go negative.
	h := &Histogram{}
	h.Observe(math.MaxInt64)
	got := h.Percentile(0.5)
	lo := math.Ldexp(1, 62) // MaxInt64 lands in bucket [2^62, 2^63)
	if math.IsNaN(got) || math.IsInf(got, 0) || got < lo || got > float64(math.MaxInt64) {
		t.Fatalf("P50 of MaxInt64 sample = %v, want within [%v, %v]", got, lo, float64(math.MaxInt64))
	}
	if h.Percentile(1) != float64(math.MaxInt64) {
		t.Fatalf("P100 = %v, want observed max", h.Percentile(1))
	}
}

func TestPercentileBoundaryQuantiles(t *testing.T) {
	// q=0 and q=1 must pin the observed extremes exactly, even when the
	// extremes sit mid-bucket.
	h := &Histogram{}
	for _, v := range []int64{100, 500, 900} { // buckets [64,128), [256,512), [512,1024)
		h.Observe(v)
	}
	if got := h.Percentile(0); got != 100 {
		t.Fatalf("P0 = %v, want observed min 100", got)
	}
	if got := h.Percentile(1); got != 900 {
		t.Fatalf("P100 = %v, want observed max 900", got)
	}
}

func TestHistogramResetAndAbsorb(t *testing.T) {
	var nilH *Histogram
	nilH.Reset()     // nil-safe no-ops
	nilH.Absorb(nil) //
	(&Histogram{}).Absorb(nilH)

	a, b := &Histogram{}, &Histogram{}
	for i := 0; i < 10; i++ {
		a.Observe(1000)
		b.Observe(3000)
	}
	merged := &Histogram{}
	merged.Absorb(a)
	merged.Absorb(b)
	if merged.Count() != 20 || merged.Sum() != a.Sum()+b.Sum() {
		t.Fatalf("merged count/sum = %d/%d, want 20/%d", merged.Count(), merged.Sum(), a.Sum()+b.Sum())
	}
	if merged.MinValue() != 1000 || merged.MaxValue() != 3000 {
		t.Fatalf("merged min/max = %d/%d, want 1000/3000", merged.MinValue(), merged.MaxValue())
	}
	if merged.Percentile(0) != 1000 || merged.Percentile(1) != 3000 {
		t.Fatalf("merged P0/P100 = %v/%v, want 1000/3000", merged.Percentile(0), merged.Percentile(1))
	}
	// Absorbing an empty histogram must not disturb min.
	merged.Absorb(&Histogram{})
	if merged.MinValue() != 1000 {
		t.Fatalf("min after empty absorb = %d, want 1000", merged.MinValue())
	}
	a.Reset()
	if a.Count() != 0 || a.Sum() != 0 || a.MinValue() != 0 || a.MaxValue() != 0 || a.Percentile(0.5) != 0 {
		t.Fatalf("reset histogram not empty: %+v", a)
	}
	if got := len(a.Buckets()); got != 0 {
		t.Fatalf("reset histogram has %d bucket snapshots, want 0", got)
	}
}

func TestSnapshotCarriesPercentiles(t *testing.T) {
	s := NewSink()
	h := s.Histogram("q", "lat")
	for i := 0; i < 100; i++ {
		h.Observe(1000)
	}
	hs := s.Metrics().Histograms["q/lat"]
	if hs.P50 != h.Percentile(0.50) || hs.P95 != h.Percentile(0.95) || hs.P99 != h.Percentile(0.99) {
		t.Fatalf("snapshot percentiles %+v disagree with Histogram.Percentile", hs)
	}
	if hs.P50 == 0 {
		t.Fatalf("snapshot P50 = 0 for a non-empty histogram")
	}
}
