// Package analyze is the bottleneck-attribution engine: it consumes the
// raw telemetry a run left behind — per-core cycle accounting, the
// counter/gauge registry, and the power-of-two histograms — and produces
// the paper's explanation of the result: where every simulated core cycle
// went (the "in-SSD memory wall" of Fig. 5: cache/DRAM waits dominating
// the baseline CSSD while ASSASIN's stream buffers keep cores fed), how
// busy each shared component was, and the latency-distribution percentiles.
//
// Reports render two ways, both deterministic: indented JSON (served by
// assasin-serve at /runs/<id>/report, printed by -report -json flows) and
// an aligned text table (assasin-bench -report / assasin-sim -report).
// The package deliberately depends only on internal/telemetry so every
// layer — cmds, the observability server, experiments — can consume it.
package analyze

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"assasin/internal/telemetry"
	"assasin/internal/telemetry/timeline"
)

// Stall-attribution classes: every simulated core cycle of a run belongs
// to exactly one. ClassCoreBusy is issue time; the others are the stall
// taxonomy (cpu.StallKind plus the paper's naming).
const (
	// ClassCoreBusy: the core issued an instruction this cycle.
	ClassCoreBusy = "core-busy"
	// ClassCacheDRAMWait: loads/stores waiting on the cache hierarchy and
	// SSD DRAM — the paper's in-SSD memory wall.
	ClassCacheDRAMWait = "cache-dram-wait"
	// ClassStreamRefillWait: stream reads that outran the flash-to-buffer
	// refill path (ASSASIN's stream buffers exist to drive this to zero
	// whenever flash bandwidth allows).
	ClassStreamRefillWait = "stream-refill-wait"
	// ClassOutFullWait: appends blocked on a full output window awaiting a
	// firmware drain.
	ClassOutFullWait = "out-full-wait"
	// ClassExecStall: multi-cycle execution (mul/div) and branch penalties.
	ClassExecStall = "exec-stall"
)

// classOrder is the canonical rendering order (and the tiebreak when two
// classes hold equal time).
var classOrder = []string{
	ClassCoreBusy, ClassCacheDRAMWait, ClassStreamRefillWait, ClassOutFullWait, ClassExecStall,
}

// Classes returns the five attribution classes in canonical order (a copy;
// consumers like the diff engine iterate it for deterministic ranking).
func Classes() []string {
	return append([]string(nil), classOrder...)
}

// Run is the raw material of one attribution report. Cycle accounting is
// summed across the run's cores, in picoseconds of simulated time.
type Run struct {
	// Label identifies the run (e.g. "Stat/AssasinSb").
	Label string
	// Kernel and Arch split the label for grouping and sorting.
	Kernel string
	Arch   string
	Cores  int
	// DurationPs is the request completion time.
	DurationPs int64
	// InputBytes is the total stream bytes delivered to cores.
	InputBytes int64

	// Per-class core time, summed over cores.
	BusyPs             int64
	CacheDRAMWaitPs    int64
	StreamRefillWaitPs int64
	OutFullWaitPs      int64
	ExecStallPs        int64

	// Metrics, when non-nil, is the sink snapshot taken right after the
	// run published its component stats: gauges carry this run's component
	// busy time (each run uses a fresh SSD, so publish overwrites are
	// per-run values), histograms carry cumulative distributions.
	Metrics *telemetry.MetricsSnapshot
	// Prev, when non-nil, is the snapshot from before the run started;
	// counter deltas against it isolate this run's counts on a sink shared
	// across a fan-out.
	Prev *telemetry.MetricsSnapshot
}

// ClassShare is one class's slice of a run's total core time.
type ClassShare struct {
	Class string  `json:"class"`
	Ps    int64   `json:"ps"`
	Frac  float64 `json:"frac"`
}

// ComponentUtil is one shared component's busy fraction of the run.
type ComponentUtil struct {
	Component string  `json:"component"`
	BusyPs    int64   `json:"busy_ps"`
	Util      float64 `json:"util"`
}

// HistQuantiles is the percentile view of one histogram.
type HistQuantiles struct {
	Metric string  `json:"metric"`
	Count  int64   `json:"count"`
	P50    float64 `json:"p50"`
	P95    float64 `json:"p95"`
	P99    float64 `json:"p99"`
	Max    int64   `json:"max"`
}

// RunReport is the attribution of one run: the answer to "where did the
// cycles go, and which resource was the bottleneck".
type RunReport struct {
	ID         string `json:"id,omitempty"`
	Label      string `json:"label"`
	Kernel     string `json:"kernel"`
	Arch       string `json:"arch"`
	Cores      int    `json:"cores"`
	DurationPs int64  `json:"duration_ps"`
	InputBytes int64  `json:"input_bytes"`
	// ThroughputBps is input bytes per simulated second.
	ThroughputBps float64 `json:"throughput_bps"`
	// Classes holds every stall class, largest first, as fractions of the
	// run's total core time (busy + all stalls across all cores).
	Classes []ClassShare `json:"classes"`
	// LargestClass is Classes[0]; LargestStall excludes core-busy — the
	// headline "what held this architecture back".
	LargestClass string `json:"largest_class"`
	LargestStall string `json:"largest_stall"`
	// Components lists shared-resource busy fractions (flash channels,
	// crossbar ports) when the run carried a metrics snapshot.
	Components []ComponentUtil `json:"components,omitempty"`
	// Counters holds this run's counter deltas when snapshots were taken.
	Counters map[string]int64 `json:"counters,omitempty"`
	// Histograms holds percentile summaries of every registered histogram
	// (cumulative over the sink's lifetime, exact for single-run sinks).
	Histograms []HistQuantiles `json:"histograms,omitempty"`
	// Phases is the dominant-class segmentation of the run, present when a
	// timeline was sampled (see AttachPhases).
	Phases []PhaseRow `json:"phases,omitempty"`
}

// PhaseRow is one dominant-class phase of a run, as rendered in reports.
type PhaseRow struct {
	Class   string `json:"class"`
	StartPs int64  `json:"start_ps"`
	EndPs   int64  `json:"end_ps"`
	// Frac is the phase's share of the run duration.
	Frac float64 `json:"frac"`
	// Classes is the per-class core time inside the phase, largest first
	// (classOrder breaks ties), with fractions of the phase's core time.
	Classes []ClassShare `json:"classes,omitempty"`
}

// PhasesFromTimeline converts a sampled timeline's segmentation into report
// rows. durationPs scales the per-phase Frac (0 disables it).
func PhasesFromTimeline(tl *timeline.Timeline, durationPs int64) []PhaseRow {
	if tl == nil {
		return nil
	}
	rows := make([]PhaseRow, 0, len(tl.Phases))
	for _, p := range tl.Phases {
		row := PhaseRow{Class: p.Class, StartPs: p.StartPs, EndPs: p.EndPs}
		if durationPs > 0 {
			row.Frac = float64(p.DurationPs()) / float64(durationPs)
		}
		var total int64
		for _, ps := range p.ClassPs {
			total += ps
		}
		for _, class := range classOrder {
			ps, ok := p.ClassPs[class]
			if !ok {
				continue
			}
			share := ClassShare{Class: class, Ps: ps}
			if total > 0 {
				share.Frac = float64(ps) / float64(total)
			}
			row.Classes = append(row.Classes, share)
		}
		sort.SliceStable(row.Classes, func(i, j int) bool {
			return row.Classes[i].Ps > row.Classes[j].Ps
		})
		rows = append(rows, row)
	}
	return rows
}

// AttachPhases adds the timeline's phase segmentation to an existing
// report. Safe no-op when either side is nil.
func AttachPhases(rep *RunReport, tl *timeline.Timeline) {
	if rep == nil || tl == nil {
		return
	}
	rep.Phases = PhasesFromTimeline(tl, rep.DurationPs)
}

// Attribute computes the report for one run.
func Attribute(r Run) *RunReport {
	rep := &RunReport{
		Label:      r.Label,
		Kernel:     r.Kernel,
		Arch:       r.Arch,
		Cores:      r.Cores,
		DurationPs: r.DurationPs,
		InputBytes: r.InputBytes,
	}
	if r.DurationPs > 0 {
		rep.ThroughputBps = float64(r.InputBytes) / (float64(r.DurationPs) * 1e-12)
	}

	byClass := map[string]int64{
		ClassCoreBusy:         r.BusyPs,
		ClassCacheDRAMWait:    r.CacheDRAMWaitPs,
		ClassStreamRefillWait: r.StreamRefillWaitPs,
		ClassOutFullWait:      r.OutFullWaitPs,
		ClassExecStall:        r.ExecStallPs,
	}
	var total int64
	for _, ps := range byClass {
		total += ps
	}
	for _, class := range classOrder {
		share := ClassShare{Class: class, Ps: byClass[class]}
		if total > 0 {
			share.Frac = float64(share.Ps) / float64(total)
		}
		rep.Classes = append(rep.Classes, share)
	}
	// Largest first; classOrder position breaks ties so output is stable.
	sort.SliceStable(rep.Classes, func(i, j int) bool {
		return rep.Classes[i].Ps > rep.Classes[j].Ps
	})
	rep.LargestClass = rep.Classes[0].Class
	for _, s := range rep.Classes {
		if s.Class != ClassCoreBusy {
			rep.LargestStall = s.Class
			break
		}
	}

	if r.Metrics != nil {
		rep.Components = componentUtilization(*r.Metrics, r.DurationPs)
		rep.Counters = counterDeltas(*r.Metrics, r.Prev)
		rep.Histograms = histQuantiles(*r.Metrics)
	}
	return rep
}

// componentUtilization reads the per-channel/per-port busy-time gauges the
// SSD publishes after a run and converts them into busy fractions of the
// run, appending "flash" / "xbar" aggregates (mean across lanes).
func componentUtilization(snap telemetry.MetricsSnapshot, durationPs int64) []ComponentUtil {
	var out []ComponentUtil
	var agg = map[string]*ComponentUtil{}
	var lanes = map[string]int64{}
	for key, g := range snap.Gauges {
		if !strings.HasSuffix(key, "_busy_ps") {
			continue
		}
		comp := strings.TrimSuffix(key, "_busy_ps") // e.g. "flash/ch0", "xbar/port3"
		u := ComponentUtil{Component: comp, BusyPs: g.Value}
		if durationPs > 0 {
			u.Util = float64(g.Value) / float64(durationPs)
		}
		out = append(out, u)
		family := comp[:strings.IndexByte(comp, '/')]
		if agg[family] == nil {
			agg[family] = &ComponentUtil{Component: family}
		}
		agg[family].BusyPs += g.Value
		lanes[family]++
	}
	for family, a := range agg {
		if durationPs > 0 && lanes[family] > 0 {
			a.Util = float64(a.BusyPs) / (float64(durationPs) * float64(lanes[family]))
		}
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Component < out[j].Component })
	return out
}

// counterDeltas subtracts prev's counters from cur's, isolating one run's
// counts on a shared sink. A nil prev returns cur's counters as-is.
func counterDeltas(cur telemetry.MetricsSnapshot, prev *telemetry.MetricsSnapshot) map[string]int64 {
	if len(cur.Counters) == 0 {
		return nil
	}
	out := make(map[string]int64, len(cur.Counters))
	for key, v := range cur.Counters {
		if prev != nil {
			v -= prev.Counters[key]
		}
		out[key] = v
	}
	return out
}

// histQuantiles lifts the snapshot's histogram percentiles into the
// report's sorted summary rows.
func histQuantiles(snap telemetry.MetricsSnapshot) []HistQuantiles {
	var out []HistQuantiles
	for key, h := range snap.Histograms {
		out = append(out, HistQuantiles{
			Metric: key, Count: h.Count, P50: h.P50, P95: h.P95, P99: h.P99, Max: h.Max,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Metric < out[j].Metric })
	return out
}

// SortReports orders reports for deterministic rendering: by kernel, then
// architecture, then label. Fan-outs complete runs in nondeterministic
// order when parallel; sorting makes -report output stable regardless.
func SortReports(reports []*RunReport) {
	sort.SliceStable(reports, func(i, j int) bool {
		a, b := reports[i], reports[j]
		if a.Kernel != b.Kernel {
			return a.Kernel < b.Kernel
		}
		if a.Arch != b.Arch {
			return a.Arch < b.Arch
		}
		return a.Label < b.Label
	})
}

// classPs returns the class's recorded time in the report.
func (r *RunReport) classPs(class string) int64 {
	for _, s := range r.Classes {
		if s.Class == class {
			return s.Ps
		}
	}
	return 0
}

// ClassFrac returns the class's fraction of the run's total core time.
func (r *RunReport) ClassFrac(class string) float64 {
	for _, s := range r.Classes {
		if s.Class == class {
			return s.Frac
		}
	}
	return 0
}

// FormatReports renders the cross-run "where did the cycles go" table: one
// row per run, one column per stall class, plus the headline bottleneck
// and throughput. Rows compare architectures directly when the input spans
// one kernel across configs (the Fig. 13/14 reading of the table).
func FormatReports(reports []*RunReport) string {
	var b strings.Builder
	b.WriteString("Attribution — where did the cycles go (fractions of total core time)\n")
	fmt.Fprintf(&b, "%-26s%10s%12s%15s%10s%7s%20s%9s\n",
		"Run", "busy", "cache-dram", "stream-refill", "out-full", "exec", "largest-stall", "GB/s")
	for _, r := range reports {
		fmt.Fprintf(&b, "%-26s%9.1f%%%11.1f%%%14.1f%%%9.1f%%%6.1f%%%20s%9.2f\n",
			r.Label,
			100*r.ClassFrac(ClassCoreBusy),
			100*r.ClassFrac(ClassCacheDRAMWait),
			100*r.ClassFrac(ClassStreamRefillWait),
			100*r.ClassFrac(ClassOutFullWait),
			100*r.ClassFrac(ClassExecStall),
			r.LargestStall,
			r.ThroughputBps/1e9)
	}
	return b.String()
}

// FormatReport renders one run's full report: the class table, component
// utilization, and histogram percentiles when present.
func FormatReport(r *RunReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Attribution — %s (%d cores, %.3f ms, %.2f GB/s)\n",
		r.Label, r.Cores, float64(r.DurationPs)/1e9, r.ThroughputBps/1e9)
	fmt.Fprintf(&b, "  %-20s%12s%9s\n", "class", "time", "frac")
	for _, s := range r.Classes {
		fmt.Fprintf(&b, "  %-20s%12s%8.1f%%\n", s.Class, fmtPs(s.Ps), 100*s.Frac)
	}
	fmt.Fprintf(&b, "  largest class: %s; largest stall: %s\n", r.LargestClass, r.LargestStall)
	if len(r.Components) > 0 {
		fmt.Fprintf(&b, "  component utilization (busy fraction of run):\n")
		for _, c := range r.Components {
			fmt.Fprintf(&b, "    %-16s%7.1f%%\n", c.Component, 100*c.Util)
		}
	}
	if len(r.Phases) > 0 {
		fmt.Fprintf(&b, "  phases (dominant stall class over time):\n")
		fmt.Fprintf(&b, "    %-20s%14s%14s%8s\n", "class", "start", "end", "share")
		for _, p := range r.Phases {
			fmt.Fprintf(&b, "    %-20s%14s%14s%7.1f%%\n",
				p.Class, fmtPs(p.StartPs), fmtPs(p.EndPs), 100*p.Frac)
		}
	}
	if len(r.Histograms) > 0 {
		fmt.Fprintf(&b, "  histogram percentiles:\n")
		fmt.Fprintf(&b, "    %-28s%10s%12s%12s%12s\n", "metric", "count", "p50", "p95", "p99")
		for _, h := range r.Histograms {
			fmt.Fprintf(&b, "    %-28s%10d%12s%12s%12s\n",
				h.Metric, h.Count, fmtF(h.P50), fmtF(h.P95), fmtF(h.P99))
		}
	}
	return b.String()
}

// fmtPs renders picoseconds with a readable unit.
func fmtPs(ps int64) string {
	switch {
	case ps >= 1e9:
		return fmt.Sprintf("%.3f ms", float64(ps)/1e9)
	case ps >= 1e6:
		return fmt.Sprintf("%.3f µs", float64(ps)/1e6)
	default:
		return fmt.Sprintf("%d ps", ps)
	}
}

// fmtF renders an estimator float compactly.
func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// WriteJSON writes the reports as deterministic indented JSON (struct
// field order is fixed; map keys are sorted by encoding/json).
func WriteJSON(w io.Writer, reports []*RunReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(reports)
}
