package analyze

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"assasin/internal/telemetry"
)

// memoryWallRun models a baseline CSSD run: cache/DRAM waits dominate.
func memoryWallRun() Run {
	return Run{
		Label: "Stat/Baseline", Kernel: "Stat", Arch: "Baseline", Cores: 2,
		DurationPs: 1_000_000, InputBytes: 4096,
		BusyPs: 390_000, CacheDRAMWaitPs: 950_000, StreamRefillWaitPs: 80_000,
		OutFullWaitPs: 0, ExecStallPs: 160_000,
	}
}

func TestAttributeClassShares(t *testing.T) {
	rep := Attribute(memoryWallRun())
	if rep.LargestClass != ClassCacheDRAMWait || rep.LargestStall != ClassCacheDRAMWait {
		t.Fatalf("largest class/stall = %s/%s, want cache-dram-wait", rep.LargestClass, rep.LargestStall)
	}
	var total float64
	for _, s := range rep.Classes {
		total += s.Frac
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("class fractions sum to %v, want 1", total)
	}
	// Classes are sorted largest-first.
	for i := 1; i < len(rep.Classes); i++ {
		if rep.Classes[i].Ps > rep.Classes[i-1].Ps {
			t.Fatalf("classes not sorted: %+v", rep.Classes)
		}
	}
	if rep.ThroughputBps != 4096/(1e6*1e-12) {
		t.Fatalf("throughput = %v", rep.ThroughputBps)
	}
	if got := rep.ClassFrac(ClassOutFullWait); got != 0 {
		t.Fatalf("out-full frac = %v, want 0", got)
	}
}

func TestAttributeBusyDominant(t *testing.T) {
	r := Run{
		Label: "Stat/AssasinSb", Kernel: "Stat", Arch: "AssasinSb", Cores: 2,
		DurationPs: 1_000_000, InputBytes: 4096,
		BusyPs: 900_000, StreamRefillWaitPs: 90_000, ExecStallPs: 10_000,
	}
	rep := Attribute(r)
	if rep.LargestClass != ClassCoreBusy {
		t.Fatalf("largest class = %s, want core-busy", rep.LargestClass)
	}
	if rep.LargestStall != ClassStreamRefillWait {
		t.Fatalf("largest stall = %s, want stream-refill-wait", rep.LargestStall)
	}
}

func TestAttributeEmptyRun(t *testing.T) {
	rep := Attribute(Run{Label: "empty"})
	if rep.LargestClass != ClassCoreBusy { // tiebreak: canonical order
		t.Fatalf("largest class of empty run = %s", rep.LargestClass)
	}
	for _, s := range rep.Classes {
		if s.Frac != 0 {
			t.Fatalf("empty run has nonzero fraction: %+v", s)
		}
	}
	if rep.ThroughputBps != 0 {
		t.Fatalf("empty run throughput = %v", rep.ThroughputBps)
	}
}

func TestComponentUtilizationAndDeltas(t *testing.T) {
	sink := telemetry.NewSink()
	sink.Gauge("flash", "ch0_busy_ps").Set(500_000)
	sink.Gauge("flash", "ch1_busy_ps").Set(250_000)
	sink.Gauge("xbar", "port0_busy_ps").Set(100_000)
	sink.Gauge("flash", "ch0_bytes").Set(1 << 20) // not a busy gauge: excluded
	sink.Counter("stream", "refill_stalls").Add(30)
	sink.Histogram("sched", "quantum_used_ps").Observe(1000)
	cur := sink.Metrics()
	prev := telemetry.MetricsSnapshot{Counters: map[string]int64{"stream/refill_stalls": 10}}

	r := memoryWallRun()
	r.Metrics = &cur
	r.Prev = &prev
	rep := Attribute(r)

	byName := map[string]ComponentUtil{}
	for _, c := range rep.Components {
		byName[c.Component] = c
	}
	if got := byName["flash/ch0"].Util; got != 0.5 {
		t.Fatalf("flash/ch0 util = %v, want 0.5", got)
	}
	// Aggregate "flash" averages its two channels: (0.5 + 0.25) / 2.
	if got := byName["flash"].Util; got != 0.375 {
		t.Fatalf("flash aggregate util = %v, want 0.375", got)
	}
	if got := byName["xbar"].Util; got != 0.1 {
		t.Fatalf("xbar aggregate util = %v, want 0.1", got)
	}
	if _, ok := byName["flash/ch0_bytes"]; ok {
		t.Fatalf("bytes gauge leaked into component utilization")
	}
	if got := rep.Counters["stream/refill_stalls"]; got != 20 {
		t.Fatalf("counter delta = %d, want 20", got)
	}
	if len(rep.Histograms) != 1 || rep.Histograms[0].Metric != "sched/quantum_used_ps" {
		t.Fatalf("histograms = %+v", rep.Histograms)
	}
	if rep.Histograms[0].P50 == 0 {
		t.Fatalf("histogram P50 missing from report")
	}
}

func TestSortReportsDeterministic(t *testing.T) {
	a := Attribute(Run{Label: "Stat/Baseline", Kernel: "Stat", Arch: "Baseline"})
	b := Attribute(Run{Label: "AES/Baseline", Kernel: "AES", Arch: "Baseline"})
	c := Attribute(Run{Label: "Stat/AssasinSb", Kernel: "Stat", Arch: "AssasinSb"})
	got := []*RunReport{a, b, c}
	SortReports(got)
	want := []string{"AES/Baseline", "Stat/AssasinSb", "Stat/Baseline"}
	for i, r := range got {
		if r.Label != want[i] {
			t.Fatalf("sorted order %d = %s, want %s", i, r.Label, want[i])
		}
	}
}

func TestFormatAndJSONDeterministic(t *testing.T) {
	build := func() []*RunReport {
		return []*RunReport{Attribute(memoryWallRun())}
	}
	text := FormatReports(build())
	if !strings.Contains(text, "cache-dram-wait") || !strings.Contains(text, "Stat/Baseline") {
		t.Fatalf("table missing expected cells:\n%s", text)
	}
	if text != FormatReports(build()) {
		t.Fatalf("FormatReports not deterministic")
	}
	single := FormatReport(build()[0])
	if !strings.Contains(single, "largest stall: cache-dram-wait") {
		t.Fatalf("single-run report missing headline:\n%s", single)
	}

	var x, y bytes.Buffer
	if err := WriteJSON(&x, build()); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&y, build()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(x.Bytes(), y.Bytes()) {
		t.Fatalf("JSON not deterministic")
	}
	var back []RunReport
	if err := json.Unmarshal(x.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if back[0].LargestStall != ClassCacheDRAMWait {
		t.Fatalf("round-tripped report lost largest_stall")
	}
}
