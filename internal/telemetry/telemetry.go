// Package telemetry is the simulator-wide observability layer: typed
// counters, gauges and histograms registered per component, plus a
// sim-clock-driven event trace exportable as Chrome trace-event JSON
// (loadable in Perfetto / chrome://tracing) and as a flat metrics JSON.
//
// Zero-cost contract: instrumentation is enabled by handing components a
// *Sink (ssd.Options.Telemetry); when disabled every component holds nil
// metric/track pointers and every method on Counter, Gauge, Histogram and
// Track is nil-receiver safe, so a disabled call site compiles to a branch
// on a nil pointer with no allocation. Hot paths (the core interpreter's
// per-instruction loop, stream gather/append) are never instrumented
// per-event — counters are bumped at page/run-slice granularity on paths
// that already do real work.
//
// Timestamps are simulated time in integer picoseconds passed as int64.
// The package deliberately does not import internal/sim so that every
// simulator package — including sim itself — can depend on it.
//
// A Sink is not goroutine-safe: it belongs to one simulation goroutine.
// Parallel fan-outs give every run a private sink and merge the results at
// the run boundary with AbsorbMetrics (the only goroutine-safe method);
// only trace capture, which needs one shared event buffer, still requires
// sequential simulation.
package telemetry

import (
	"fmt"
	"log/slog"
	"math"
	"sort"
	"sync"
)

// Kind discriminates the metric types a (component, name) pair can hold.
type Kind int

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// metricKey identifies one registered metric.
type metricKey struct{ component, name string }

// Counter is a monotonically increasing count. The zero receiver (nil) is a
// valid disabled counter: all methods are no-ops.
type Counter struct{ v int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v++
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v += n
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a last-value metric that also tracks its maximum. Nil-safe.
type Gauge struct {
	v, max int64
	set    bool
}

// Set records v as the current value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	if !g.set || v > g.max {
		g.max = v
	}
	g.v = v
	g.set = true
}

// Value returns the last set value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Max returns the largest value ever set.
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max
}

// Histogram accumulates a distribution in power-of-two buckets: bucket i
// counts observations v with 2^(i-1) <= v < 2^i (bucket 0 counts v <= 0).
// Nil-safe.
type Histogram struct {
	buckets [65]int64
	count   int64
	sum     int64
	min     int64
	max     int64
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.buckets[bucketOf(v)]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Reset clears the histogram back to empty. Rolling-window aggregation
// reuses ring slots through it without reallocating.
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	*h = Histogram{}
}

// Absorb merges other's samples into h (bucket-wise sum, min of min, max of
// max). Both nil receiver and nil argument are no-ops; window aggregation
// folds ring slots into a scratch histogram with it so Percentile works
// unchanged on the merged distribution.
func (h *Histogram) Absorb(other *Histogram) {
	if h == nil || other == nil || other.count == 0 {
		return
	}
	for i, n := range other.buckets {
		h.buckets[i] += n
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	h.count += other.count
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := 1
	for v > 1 {
		v >>= 1
		b++
	}
	return b
}

// bucketBounds returns bucket i's half-open value range [lo, hi) as floats
// (float math sidesteps the 1<<64 overflow of the topmost bucket). Bucket 0
// collapses to the single value 0, matching bucketOf's v <= 0 rule.
func bucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		return 0, 0
	}
	return math.Ldexp(1, i-1), math.Ldexp(1, i)
}

// Percentile estimates the q-quantile (q in [0, 1]) of the recorded
// distribution: it walks the cumulative bucket counts to the bucket holding
// rank q*count and linearly interpolates inside that bucket's power-of-two
// value range. The estimate is clamped to the observed [min, max], so q=0
// returns the smallest observation, q=1 the largest, and a single-valued
// distribution reports that exact value at every quantile. Returns 0 for a
// nil or empty histogram.
func (h *Histogram) Percentile(q float64) float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.count)
	var cum int64
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		if float64(cum)+float64(n) >= target {
			lo, hi := bucketBounds(i)
			frac := (target - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			}
			v := lo + frac*(hi-lo)
			if min := float64(h.min); v < min {
				v = min
			}
			if max := float64(h.max); v > max {
				v = max
			}
			return v
		}
		cum += n
	}
	return float64(h.max)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// MinValue returns the smallest observation (0 when empty).
func (h *Histogram) MinValue() int64 {
	if h == nil {
		return 0
	}
	return h.min
}

// MaxValue returns the largest observation.
func (h *Histogram) MaxValue() int64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Buckets returns the non-empty buckets as cumulative counts with
// Prometheus-style upper bounds, ascending. Bucket i's half-open range
// [2^(i-1), 2^i) exports as le = 2^i (the smallest power-of-two bound not
// below any member value under integer observations); bucket 0 as le = 0.
// Returns nil for a nil or empty histogram.
func (h *Histogram) Buckets() []BucketSnapshot {
	if h == nil || h.count == 0 {
		return nil
	}
	var out []BucketSnapshot
	var cum int64
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		cum += n
		_, hi := bucketBounds(i)
		out = append(out, BucketSnapshot{LE: hi, Count: cum})
	}
	return out
}

// Sink is one telemetry collection domain: a metric registry plus a trace
// buffer. The nil *Sink is valid and disabled: registration methods return
// nil metrics/tracks whose methods are no-ops.
type Sink struct {
	kinds    map[metricKey]Kind
	counters map[metricKey]*Counter
	gauges   map[metricKey]*Gauge
	hists    map[metricKey]*Histogram

	runs []*traceRun
	cur  *traceRun

	events []event
	// MaxEvents bounds the trace buffer; events past the cap are counted in
	// dropped (surfaced in the metrics export) rather than silently lost.
	// A negative value disables event recording entirely — per-run metric
	// sinks in parallel fan-outs use this so span/instant calls cost one
	// comparison and nothing accumulates.
	MaxEvents int
	dropped   int64

	// absorbMu serializes AbsorbMetrics calls from concurrent run
	// goroutines; every other method remains single-goroutine.
	absorbMu sync.Mutex

	// Log, when non-nil, receives one structured warning the first time the
	// trace buffer overflows MaxEvents (further drops are only counted).
	Log *slog.Logger
}

// NewSink returns an empty enabled sink.
func NewSink() *Sink {
	return &Sink{
		kinds:     make(map[metricKey]Kind),
		counters:  make(map[metricKey]*Counter),
		gauges:    make(map[metricKey]*Gauge),
		hists:     make(map[metricKey]*Histogram),
		MaxEvents: 4_000_000,
	}
}

// register checks the collision rule: a (component, name) pair may be
// registered any number of times with the same kind (get-or-create) but
// never with two different kinds.
func (s *Sink) register(component, name string, k Kind) metricKey {
	key := metricKey{component, name}
	if have, ok := s.kinds[key]; ok {
		if have != k {
			panic(fmt.Sprintf("telemetry: %s/%s already registered as %v, re-registered as %v",
				component, name, have, k))
		}
		return key
	}
	s.kinds[key] = k
	return key
}

// Counter returns the counter registered under (component, name), creating
// it on first use. Returns nil on a nil sink. Panics if the pair is already
// registered as a different metric kind.
func (s *Sink) Counter(component, name string) *Counter {
	if s == nil {
		return nil
	}
	key := s.register(component, name, KindCounter)
	c := s.counters[key]
	if c == nil {
		c = &Counter{}
		s.counters[key] = c
	}
	return c
}

// Gauge returns the gauge registered under (component, name), creating it
// on first use. Nil-sink and collision behavior match Counter.
func (s *Sink) Gauge(component, name string) *Gauge {
	if s == nil {
		return nil
	}
	key := s.register(component, name, KindGauge)
	g := s.gauges[key]
	if g == nil {
		g = &Gauge{}
		s.gauges[key] = g
	}
	return g
}

// Histogram returns the histogram registered under (component, name),
// creating it on first use. Nil-sink and collision behavior match Counter.
func (s *Sink) Histogram(component, name string) *Histogram {
	if s == nil {
		return nil
	}
	key := s.register(component, name, KindHistogram)
	h := s.hists[key]
	if h == nil {
		h = &Histogram{}
		s.hists[key] = h
	}
	return h
}

// MetricInfo identifies one registered metric for read-side iteration
// (timeline samplers discover the registry through it).
type MetricInfo struct {
	Component string
	Name      string
	Kind      Kind
}

// RegisteredCount returns how many metrics are registered. Samplers poll it
// to detect new registrations cheaply between full Registered() scans.
func (s *Sink) RegisteredCount() int {
	if s == nil {
		return 0
	}
	return len(s.kinds)
}

// Registered returns every registered metric, sorted by component then
// name, so consumers iterate the registry deterministically.
func (s *Sink) Registered() []MetricInfo {
	if s == nil {
		return nil
	}
	out := make([]MetricInfo, 0, len(s.kinds))
	for k, kind := range s.kinds {
		out = append(out, MetricInfo{Component: k.component, Name: k.name, Kind: kind})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Component != out[j].Component {
			return out[i].Component < out[j].Component
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// AbsorbMetrics merges child's metrics into s: counters and histograms sum,
// gauges take the maximum of value and max. Every merge operation is
// commutative, so absorbing a set of per-run sinks yields the same result
// in any completion order — the property that makes parallel fan-outs
// deterministic. Trace events are not merged (per-run sinks disable them).
//
// This is the Sink's only goroutine-safe method, and only with respect to
// other AbsorbMetrics calls: while runs are being absorbed concurrently the
// parent sink must not be used in any other way.
func (s *Sink) AbsorbMetrics(child *Sink) {
	if s == nil || child == nil || s == child {
		return
	}
	s.absorbMu.Lock()
	defer s.absorbMu.Unlock()
	for key, c := range child.counters {
		s.Counter(key.component, key.name).Add(c.Value())
	}
	for key, g := range child.gauges {
		if !g.set {
			continue
		}
		dst := s.Gauge(key.component, key.name)
		if !dst.set || g.v > dst.v {
			dst.v = g.v
		}
		if !dst.set || g.max > dst.max {
			dst.max = g.max
		}
		dst.set = true
	}
	for key, h := range child.hists {
		s.Histogram(key.component, key.name).Absorb(h)
	}
}
