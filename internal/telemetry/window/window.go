// Package window provides sim-clock sliding-window aggregation: each
// metric keeps a ring of time buckets (configurable window span and bucket
// count, e.g. a 1 s window split into 20 buckets of 50 ms simulated time)
// over which it reports rolling counter rates, gauge last-values, and
// rolling latency distributions whose percentiles come from the same
// bucket-interpolating telemetry.Histogram code the cumulative metrics use.
//
// Rotation is lazy and driven entirely by the simulated timestamps passed
// to Advance/Observe, so window contents are a pure function of the event
// sequence — byte-identical for any wall-clock interleaving or worker
// count. Advance is sim.Scheduler.OnAdvance-compatible: the steady-state
// fast path is a single comparison against the next bucket boundary.
//
// Zero-cost contract: the nil *Windows and nil *Rate/*Gauge/*Hist are valid
// disabled instances (every method is a nil-receiver no-op), and enabled
// steady-state operation — Advance ticks, Rate.Add, Hist.Observe — never
// allocates after construction (the alloc-gate pins this).
//
// Like telemetry.Sink, a Windows belongs to one simulation goroutine.
// Concurrent readers get immutable Snapshot values published at rotation
// boundaries (the obs publication pattern), never the live rings.
package window

import (
	"sort"

	"assasin/internal/telemetry"
)

// Config sets the window geometry.
type Config struct {
	// WindowPs is the total sliding-window span in simulated picoseconds
	// (<= 0 selects 1 s).
	WindowPs int64
	// Buckets is how many ring buckets the window is split into (<= 0
	// selects 20). The bucket span WindowPs/Buckets is the rotation — and
	// burn-rate evaluation — granularity.
	Buckets int
}

// withDefaults resolves zero fields and rounds WindowPs to a whole number
// of buckets.
func (c Config) withDefaults() Config {
	if c.WindowPs <= 0 {
		c.WindowPs = 1_000_000_000_000 // 1 s
	}
	if c.Buckets <= 0 {
		c.Buckets = 20
	}
	bucket := c.WindowPs / int64(c.Buckets)
	if bucket <= 0 {
		bucket = 1
	}
	c.WindowPs = bucket * int64(c.Buckets)
	return c
}

// Windows is one sliding-window aggregation domain: a shared rotation clock
// plus the metrics registered on it. The nil *Windows is valid and
// disabled.
type Windows struct {
	bucketPs int64
	n        int
	windowPs int64

	started bool
	epoch   int64 // absolute index of the current bucket (time/bucketPs)
	firstPs int64 // start of the first observed bucket
	nextPs  int64 // next rotation boundary (the Advance fast-path guard)

	names  map[string]bool
	rates  []*Rate
	gauges []*Gauge
	hists  []*Hist

	// OnRotate, when non-nil, is called once per crossed bucket boundary
	// (at most Buckets per Advance — older boundaries have left the
	// window) with the boundary's simulated time. The SLO engine hangs its
	// deterministic burn-rate evaluation here. Callbacks run on the
	// simulation goroutine and must not re-enter Observe/Add.
	OnRotate func(boundaryPs int64)
}

// New returns an empty enabled window domain.
func New(cfg Config) *Windows {
	cfg = cfg.withDefaults()
	return &Windows{
		bucketPs: cfg.WindowPs / int64(cfg.Buckets),
		n:        cfg.Buckets,
		windowPs: cfg.WindowPs,
		names:    make(map[string]bool),
	}
}

// WindowPs returns the configured window span (0 on a nil receiver).
func (w *Windows) WindowPs() int64 {
	if w == nil {
		return 0
	}
	return w.windowPs
}

// BucketPs returns the bucket span (0 on a nil receiver).
func (w *Windows) BucketPs() int64 {
	if w == nil {
		return 0
	}
	return w.bucketPs
}

// Advance rotates the rings up to nowPs, clearing buckets that fell out of
// the window and firing OnRotate per crossed boundary. It is
// sim.Scheduler.OnAdvance-compatible; the steady-state path (same bucket)
// is one comparison.
func (w *Windows) Advance(nowPs int64) {
	if w == nil || (w.started && nowPs < w.nextPs) {
		return
	}
	w.advanceSlow(nowPs)
}

func (w *Windows) advanceSlow(nowPs int64) {
	if nowPs < 0 {
		nowPs = 0
	}
	newEpoch := nowPs / w.bucketPs
	if !w.started {
		w.started = true
		w.epoch = newEpoch
		w.firstPs = newEpoch * w.bucketPs
		w.nextPs = (newEpoch + 1) * w.bucketPs
		return
	}
	from := w.epoch + 1
	if newEpoch-w.epoch > int64(w.n) {
		// The whole ring is stale: clear each slot exactly once, entering
		// at the oldest epoch still inside the new window.
		from = newEpoch - int64(w.n) + 1
	}
	for e := from; e <= newEpoch; e++ {
		slot := int(e % int64(w.n))
		for _, r := range w.rates {
			r.slots[slot] = 0
		}
		for _, h := range w.hists {
			h.slots[slot].Reset()
		}
		w.epoch = e
		w.nextPs = (e + 1) * w.bucketPs
		if w.OnRotate != nil {
			w.OnRotate(e * w.bucketPs)
		}
	}
}

// slot returns the ring index of the current bucket.
func (w *Windows) slot() int { return int(w.epoch % int64(w.n)) }

// register enforces unique metric names within the domain.
func (w *Windows) register(name string) {
	if w.names[name] {
		panic("window: metric " + name + " registered twice")
	}
	w.names[name] = true
}

// Rate registers a windowed counter under name. Returns nil on a nil
// domain. Names must be unique within the domain.
func (w *Windows) Rate(name string) *Rate {
	if w == nil {
		return nil
	}
	w.register(name)
	r := &Rate{w: w, name: name, slots: make([]int64, w.n)}
	w.rates = append(w.rates, r)
	return r
}

// Gauge registers a last-value metric under name. Returns nil on a nil
// domain.
func (w *Windows) Gauge(name string) *Gauge {
	if w == nil {
		return nil
	}
	w.register(name)
	g := &Gauge{w: w, name: name}
	w.gauges = append(w.gauges, g)
	return g
}

// Hist registers a windowed histogram under name. Returns nil on a nil
// domain.
func (w *Windows) Hist(name string) *Hist {
	if w == nil {
		return nil
	}
	w.register(name)
	h := &Hist{w: w, name: name, slots: make([]telemetry.Histogram, w.n)}
	w.hists = append(w.hists, h)
	return h
}

// spanBuckets converts a span to a whole bucket count clamped to [1, n].
func (w *Windows) spanBuckets(spanPs int64) int {
	k := int(spanPs / w.bucketPs)
	if k < 1 {
		k = 1
	}
	if k > w.n {
		k = w.n
	}
	return k
}

// Rate is a windowed counter: per-bucket counts over the ring plus a
// cumulative total. Nil-safe.
type Rate struct {
	w     *Windows
	name  string
	slots []int64
	total int64
}

// Add records n events at nowPs.
func (r *Rate) Add(nowPs, n int64) {
	if r == nil {
		return
	}
	r.w.Advance(nowPs)
	r.slots[r.w.slot()] += n
	r.total += n
}

// Inc records one event at nowPs.
func (r *Rate) Inc(nowPs int64) { r.Add(nowPs, 1) }

// WindowCount sums the events currently inside the window.
func (r *Rate) WindowCount() int64 {
	if r == nil {
		return 0
	}
	var sum int64
	for _, v := range r.slots {
		sum += v
	}
	return sum
}

// Last sums the events in the trailing spanPs of the window (rounded up to
// whole buckets, clamped to the window). Burn-rate rules read their long
// and short windows through it.
func (r *Rate) Last(spanPs int64) int64 {
	if r == nil {
		return 0
	}
	w := r.w
	k := w.spanBuckets(spanPs)
	var sum int64
	for e := w.epoch - int64(k) + 1; e <= w.epoch; e++ {
		if e < 0 {
			continue
		}
		sum += r.slots[int(e%int64(w.n))]
	}
	return sum
}

// LastClosed sums the events in the trailing spanPs of *closed* buckets —
// excluding the current, still-filling bucket. Boundary evaluations (burn
// rates) use it so a freshly opened empty bucket never dilutes the short
// window.
func (r *Rate) LastClosed(spanPs int64) int64 {
	if r == nil {
		return 0
	}
	w := r.w
	k := w.spanBuckets(spanPs)
	if k > w.n-1 {
		// Only n-1 closed buckets exist distinctly from the current slot.
		k = w.n - 1
	}
	var sum int64
	for e := w.epoch - int64(k); e <= w.epoch-1; e++ {
		if e < 0 {
			continue
		}
		sum += r.slots[int(e%int64(w.n))]
	}
	return sum
}

// Total returns the cumulative count since construction.
func (r *Rate) Total() int64 {
	if r == nil {
		return 0
	}
	return r.total
}

// Gauge is a last-value metric on the window clock. Nil-safe.
type Gauge struct {
	w    *Windows
	name string
	v    int64
	set  bool
}

// Set records v as the current value at nowPs (which also advances the
// domain's rotation clock).
func (g *Gauge) Set(nowPs, v int64) {
	if g == nil {
		return
	}
	g.w.Advance(nowPs)
	g.v = v
	g.set = true
}

// Value returns the last set value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Hist is a windowed histogram: one telemetry.Histogram per ring bucket
// plus a cumulative histogram over the whole run. Nil-safe.
type Hist struct {
	w       *Windows
	name    string
	slots   []telemetry.Histogram
	cum     telemetry.Histogram
	scratch telemetry.Histogram
}

// Observe records one sample at nowPs into the current bucket and the
// cumulative histogram.
func (h *Hist) Observe(nowPs, v int64) {
	if h == nil {
		return
	}
	h.w.Advance(nowPs)
	h.slots[h.w.slot()].Observe(v)
	h.cum.Observe(v)
}

// Window folds the ring into the reused scratch histogram and returns it:
// the rolling distribution over the full window, with Percentile available
// unchanged. The pointer is invalidated by the next Window/Last call.
// Returns nil on a nil receiver.
func (h *Hist) Window() *telemetry.Histogram {
	if h == nil {
		return nil
	}
	return h.Last(h.w.windowPs)
}

// Last folds the trailing spanPs of the ring (whole buckets, clamped to
// the window) into the scratch histogram and returns it.
func (h *Hist) Last(spanPs int64) *telemetry.Histogram {
	if h == nil {
		return nil
	}
	w := h.w
	h.scratch.Reset()
	k := w.spanBuckets(spanPs)
	for e := w.epoch - int64(k) + 1; e <= w.epoch; e++ {
		if e < 0 {
			continue
		}
		h.scratch.Absorb(&h.slots[int(e%int64(w.n))])
	}
	return &h.scratch
}

// Cumulative returns the run-cumulative histogram (nil on a nil receiver).
func (h *Hist) Cumulative() *telemetry.Histogram {
	if h == nil {
		return nil
	}
	return &h.cum
}

// RateSnapshot is one Rate in a Snapshot.
type RateSnapshot struct {
	Name        string  `json:"name"`
	WindowCount int64   `json:"window_count"`
	PerSecond   float64 `json:"per_second"`
	Total       int64   `json:"total"`
}

// GaugeSnapshot is one Gauge in a Snapshot.
type GaugeSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistSnapshot is one Hist in a Snapshot: rolling window percentiles plus
// the cumulative view for reconciliation.
type HistSnapshot struct {
	Name        string  `json:"name"`
	WindowCount int64   `json:"window_count"`
	P50Ps       float64 `json:"p50_ps"`
	P95Ps       float64 `json:"p95_ps"`
	P99Ps       float64 `json:"p99_ps"`
	MaxPs       int64   `json:"max_ps"`
	TotalCount  int64   `json:"total_count"`
	TotalP99Ps  float64 `json:"total_p99_ps"`
}

// Snapshot is an immutable, JSON-serializable view of a Windows domain at
// one instant, suitable for publication to concurrent readers (/live).
type Snapshot struct {
	NowPs    int64           `json:"now_ps"`
	WindowPs int64           `json:"window_ps"`
	BucketPs int64           `json:"bucket_ps"`
	Rates    []RateSnapshot  `json:"rates,omitempty"`
	Gauges   []GaugeSnapshot `json:"gauges,omitempty"`
	Hists    []HistSnapshot  `json:"hists,omitempty"`
}

// Snapshot advances to nowPs and captures every registered metric, sorted
// by name. Call it from the simulation goroutine (typically at rotation or
// run boundaries) and hand the result to concurrent readers. Returns nil
// on a nil domain.
func (w *Windows) Snapshot(nowPs int64) *Snapshot {
	if w == nil {
		return nil
	}
	w.Advance(nowPs)
	snap := &Snapshot{NowPs: nowPs, WindowPs: w.windowPs, BucketPs: w.bucketPs}
	// Effective span: the window may not be full yet at run start.
	span := w.windowPs
	if elapsed := nowPs - w.firstPs; w.started && elapsed >= 0 && elapsed+w.bucketPs < span {
		span = elapsed + w.bucketPs // partial window: count the current bucket
	}
	for _, r := range w.rates {
		c := r.WindowCount()
		snap.Rates = append(snap.Rates, RateSnapshot{
			Name:        r.name,
			WindowCount: c,
			PerSecond:   float64(c) * 1e12 / float64(span),
			Total:       r.total,
		})
	}
	for _, g := range w.gauges {
		snap.Gauges = append(snap.Gauges, GaugeSnapshot{Name: g.name, Value: g.v})
	}
	for _, h := range w.hists {
		win := h.Window()
		snap.Hists = append(snap.Hists, HistSnapshot{
			Name:        h.name,
			WindowCount: win.Count(),
			P50Ps:       win.Percentile(0.50),
			P95Ps:       win.Percentile(0.95),
			P99Ps:       win.Percentile(0.99),
			MaxPs:       win.MaxValue(),
			TotalCount:  h.cum.Count(),
			TotalP99Ps:  h.cum.Percentile(0.99),
		})
	}
	sort.Slice(snap.Rates, func(i, j int) bool { return snap.Rates[i].Name < snap.Rates[j].Name })
	sort.Slice(snap.Gauges, func(i, j int) bool { return snap.Gauges[i].Name < snap.Gauges[j].Name })
	sort.Slice(snap.Hists, func(i, j int) bool { return snap.Hists[i].Name < snap.Hists[j].Name })
	return snap
}
