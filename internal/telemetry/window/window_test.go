package window

import (
	"testing"
)

const (
	ms = int64(1_000_000_000)
	us = int64(1_000_000)
)

func TestRotationEvictsOldBuckets(t *testing.T) {
	w := New(Config{WindowPs: 10 * ms, Buckets: 10}) // 1 ms buckets
	r := w.Rate("req")
	for i := int64(0); i < 10; i++ {
		r.Add(i*ms, 1) // one event per bucket
	}
	if got := r.WindowCount(); got != 10 {
		t.Fatalf("full window count = %d, want 10", got)
	}
	// Advancing 3 buckets evicts the 3 oldest.
	w.Advance(12*ms + 1)
	if got := r.WindowCount(); got != 7 {
		t.Fatalf("count after 3 rotations = %d, want 7", got)
	}
	if got := r.Total(); got != 10 {
		t.Fatalf("total = %d, want 10 (cumulative never resets)", got)
	}
	// A gap longer than the window clears everything.
	w.Advance(100 * ms)
	if got := r.WindowCount(); got != 0 {
		t.Fatalf("count after long gap = %d, want 0", got)
	}
}

func TestRateLastSpans(t *testing.T) {
	w := New(Config{WindowPs: 10 * ms, Buckets: 10})
	r := w.Rate("req")
	for i := int64(0); i < 10; i++ {
		r.Add(i*ms, i+1) // bucket i holds i+1 events
	}
	// Trailing 3 ms = buckets 7, 8, 9 -> 8+9+10.
	if got := r.Last(3 * ms); got != 27 {
		t.Fatalf("Last(3ms) = %d, want 27", got)
	}
	// Sub-bucket spans round up to one bucket.
	if got := r.Last(1); got != 10 {
		t.Fatalf("Last(1ps) = %d, want 10 (current bucket)", got)
	}
	// Oversized spans clamp to the window.
	if got := r.Last(100 * ms); got != r.WindowCount() {
		t.Fatalf("Last(100ms) = %d, want %d", got, r.WindowCount())
	}
}

func TestHistWindowPercentiles(t *testing.T) {
	w := New(Config{WindowPs: 10 * ms, Buckets: 10})
	h := w.Hist("lat")
	// Old bucket: slow samples that must leave the window.
	for i := 0; i < 100; i++ {
		h.Observe(0, 80*us)
	}
	// Recent buckets: fast samples.
	for i := 0; i < 100; i++ {
		h.Observe(9*ms, 10*us)
	}
	win := h.Window()
	if win.Count() != 200 {
		t.Fatalf("window count = %d, want 200", win.Count())
	}
	if p := win.Percentile(0.99); p != float64(80*us) {
		t.Fatalf("P99 with slow bucket in window = %v, want %v", p, 80*us)
	}
	// Rotate the slow bucket out: the rolling P99 drops, the cumulative
	// P99 does not.
	w.Advance(10 * ms)
	win = h.Window()
	if win.Count() != 100 {
		t.Fatalf("window count after eviction = %d, want 100", win.Count())
	}
	if p := win.Percentile(0.99); p != float64(10*us) {
		t.Fatalf("rolling P99 after eviction = %v, want %v", p, 10*us)
	}
	if c := h.Cumulative(); c.Count() != 200 || c.Percentile(0.99) != float64(80*us) {
		t.Fatalf("cumulative count/P99 = %d/%v, want 200/%v", c.Count(), c.Percentile(0.99), 80*us)
	}
}

func TestOnRotateBoundaries(t *testing.T) {
	w := New(Config{WindowPs: 10 * ms, Buckets: 10})
	var fired []int64
	w.OnRotate = func(b int64) { fired = append(fired, b) }
	w.Advance(0) // first tick establishes the clock, no rotation
	if len(fired) != 0 {
		t.Fatalf("rotation fired on first tick: %v", fired)
	}
	w.Advance(3*ms + 500*us)
	if len(fired) != 3 || fired[0] != ms || fired[1] != 2*ms || fired[2] != 3*ms {
		t.Fatalf("boundaries = %v, want [1ms 2ms 3ms]", fired)
	}
	// A gap far beyond the window fires at most Buckets callbacks (the
	// boundaries still inside the new window).
	fired = nil
	w.Advance(1000 * ms)
	if len(fired) != 10 {
		t.Fatalf("rotations after long gap = %d, want 10", len(fired))
	}
	if fired[len(fired)-1] != 1000*ms {
		t.Fatalf("last boundary = %d, want %d", fired[len(fired)-1], 1000*ms)
	}
}

func TestGaugeLastValue(t *testing.T) {
	w := New(Config{WindowPs: 10 * ms, Buckets: 10})
	g := w.Gauge("depth")
	g.Set(ms, 7)
	g.Set(2*ms, 3)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge value = %d, want 3", got)
	}
}

func TestSnapshotDeterministicAndSorted(t *testing.T) {
	build := func() *Snapshot {
		w := New(Config{WindowPs: 10 * ms, Buckets: 10})
		rb := w.Rate("b")
		ra := w.Rate("a")
		h := w.Hist("lat")
		for i := int64(0); i < 100; i++ {
			ra.Inc(i * 100 * us)
			rb.Add(i*100*us, 2)
			h.Observe(i*100*us, 25*us)
		}
		return w.Snapshot(10 * ms)
	}
	a, b := build(), build()
	if a.Rates[0].Name != "a" || a.Rates[1].Name != "b" {
		t.Fatalf("rates not sorted: %+v", a.Rates)
	}
	if a.Rates[0].PerSecond <= 0 {
		t.Fatalf("per-second rate = %v, want > 0", a.Rates[0].PerSecond)
	}
	if len(a.Hists) != 1 || a.Hists[0].P99Ps != float64(25*us) {
		t.Fatalf("hist snapshot = %+v", a.Hists)
	}
	if a.Rates[0] != b.Rates[0] || a.Hists[0] != b.Hists[0] {
		t.Fatalf("snapshots differ between identical runs:\n%+v\n%+v", a, b)
	}
}

func TestNilWindowsZeroCost(t *testing.T) {
	var w *Windows
	r := w.Rate("x")
	g := w.Gauge("y")
	h := w.Hist("z")
	if r != nil || g != nil || h != nil {
		t.Fatal("nil domain must return nil metrics")
	}
	allocs := testing.AllocsPerRun(100, func() {
		w.Advance(123)
		r.Add(123, 1)
		r.Inc(456)
		g.Set(123, 9)
		h.Observe(123, 55)
		_ = r.WindowCount()
		_ = r.Last(10)
		_ = r.Total()
		_ = g.Value()
		_ = h.Window()
		_ = h.Cumulative()
		_ = w.Snapshot(123)
	})
	if allocs != 0 {
		t.Fatalf("nil-domain ops allocate %v allocs/op, want 0", allocs)
	}
}

// TestWindowTickZeroAlloc pins the enabled steady-state contract driven by
// the alloc-gate: rotation ticks, counter adds, and histogram observes on a
// live window domain allocate nothing once constructed.
func TestWindowTickZeroAlloc(t *testing.T) {
	w := New(Config{WindowPs: 10 * ms, Buckets: 20})
	r := w.Rate("req")
	h := w.Hist("lat")
	w.OnRotate = func(int64) {
		_ = r.Last(2 * ms) // a burn-rate-style read at every rotation
	}
	now := int64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		now += 137 * us // crosses bucket boundaries regularly
		w.Advance(now)
		r.Inc(now)
		h.Observe(now, 42*us)
	})
	if allocs != 0 {
		t.Fatalf("window steady state allocates %v allocs/op, want 0", allocs)
	}
}
