package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Exporters. Two formats:
//
//   - Chrome trace-event JSON ({"traceEvents":[...]}): loadable in Perfetto
//     (ui.perfetto.dev) or chrome://tracing. Runs map to processes, tracks
//     to threads; ts/dur are microseconds of simulated time (the format's
//     unit), derived from the picosecond timestamps.
//
//   - Flat metrics JSON: counters/gauges/histograms keyed "component/name",
//     shaped to merge into the existing BENCH_<exp>.json envelope (the
//     bench cmd embeds MetricsSnapshot under a "telemetry" key).
//
// Both writers emit deterministically ordered output (sorted keys, stable
// event order) so golden-file tests and diffs are meaningful.

// chromeEvent is the JSON shape of one trace-event entry. Cat/ID/BP are
// only set on flow events ('s'/'t'/'f'): flows bind globally by (cat, id),
// so the exporter scopes IDs per run by prefixing the pid, and "bp":"e"
// binds step/end arrows to the enclosing slice at their timestamp.
type chromeEvent struct {
	Name string           `json:"name"`
	Cat  string           `json:"cat,omitempty"`
	Ph   string           `json:"ph"`
	Ts   float64          `json:"ts"`
	Dur  *float64         `json:"dur,omitempty"`
	Pid  int              `json:"pid"`
	Tid  int              `json:"tid"`
	S    string           `json:"s,omitempty"`
	ID   string           `json:"id,omitempty"`
	BP   string           `json:"bp,omitempty"`
	Args map[string]int64 `json:"args,omitempty"`
}

const psPerMicro = 1e6

// WriteChromeTrace writes the buffered trace as Chrome trace-event JSON.
func (s *Sink) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(v any) error {
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err = bw.Write(b)
		return err
	}
	// metaEvent is the process/thread-name metadata shape.
	type metaEvent struct {
		Name string            `json:"name"`
		Ph   string            `json:"ph"`
		Pid  int               `json:"pid"`
		Tid  int               `json:"tid"`
		Args map[string]string `json:"args"`
	}
	if s != nil {
		for _, r := range s.runs {
			label := r.label
			if label == "" {
				label = fmt.Sprintf("run %d", r.pid)
			}
			if err := emit(metaEvent{Name: "process_name", Ph: "M", Pid: r.pid,
				Args: map[string]string{"name": label}}); err != nil {
				return err
			}
			for _, t := range r.order {
				if err := emit(metaEvent{Name: "thread_name", Ph: "M", Pid: r.pid, Tid: t.tid,
					Args: map[string]string{"name": t.name}}); err != nil {
					return err
				}
			}
		}
		for i := range s.events {
			e := &s.events[i]
			ce := chromeEvent{
				Name: e.name,
				Ph:   string(e.ph),
				Ts:   float64(e.ts) / psPerMicro,
				Pid:  e.pid,
				Tid:  e.tid,
			}
			if e.ph == phComplete {
				d := float64(e.dur) / psPerMicro
				ce.Dur = &d
			}
			if e.ph == phInstant {
				ce.S = "t" // thread-scoped instant
			}
			if e.ph == phFlowStart || e.ph == phFlowStep || e.ph == phFlowEnd {
				ce.Cat = "req"
				ce.ID = fmt.Sprintf("%d:%d", e.pid, e.id)
				if e.ph != phFlowStart {
					ce.BP = "e"
				}
			}
			if e.nargs > 0 {
				ce.Args = make(map[string]int64, e.nargs)
				for i := 0; i < e.nargs; i++ {
					ce.Args[e.args[i].Key] = e.args[i].Val
				}
			}
			if err := emit(ce); err != nil {
				return err
			}
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// GaugeSnapshot is the exported view of a gauge.
type GaugeSnapshot struct {
	Value int64 `json:"value"`
	Max   int64 `json:"max"`
}

// BucketSnapshot is one cumulative histogram bucket: Count observations
// had values <= LE (Prometheus "le" semantics; the in-memory power-of-two
// buckets are half-open [lo, hi), so LE is hi-1 exclusive rounded to the
// bucket's upper bound).
type BucketSnapshot struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// HistogramSnapshot is the exported view of a histogram. The percentiles
// are bucket-interpolated estimates (see Histogram.Percentile); Buckets
// carry the non-empty power-of-two buckets cumulatively for native
// Prometheus histogram exposition.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	Sum     int64            `json:"sum"`
	Max     int64            `json:"max"`
	Mean    float64          `json:"mean"`
	P50     float64          `json:"p50"`
	P95     float64          `json:"p95"`
	P99     float64          `json:"p99"`
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// MetricsSnapshot is the flat metrics export, keyed "component/name".
type MetricsSnapshot struct {
	Counters     map[string]int64             `json:"counters,omitempty"`
	Gauges       map[string]GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms   map[string]HistogramSnapshot `json:"histograms,omitempty"`
	TraceEvents  int                          `json:"trace_events,omitempty"`
	TraceDropped int64                        `json:"trace_dropped,omitempty"`
}

// Metrics snapshots every registered metric. Returns an empty snapshot for
// a nil sink.
func (s *Sink) Metrics() MetricsSnapshot {
	var m MetricsSnapshot
	if s == nil {
		return m
	}
	if len(s.counters) > 0 {
		m.Counters = make(map[string]int64, len(s.counters))
		for k, c := range s.counters {
			m.Counters[k.component+"/"+k.name] = c.Value()
		}
	}
	if len(s.gauges) > 0 {
		m.Gauges = make(map[string]GaugeSnapshot, len(s.gauges))
		for k, g := range s.gauges {
			m.Gauges[k.component+"/"+k.name] = GaugeSnapshot{Value: g.Value(), Max: g.Max()}
		}
	}
	if len(s.hists) > 0 {
		m.Histograms = make(map[string]HistogramSnapshot, len(s.hists))
		for k, h := range s.hists {
			snap := HistogramSnapshot{Count: h.Count(), Sum: h.Sum(), Max: h.MaxValue()}
			if snap.Count > 0 {
				snap.Mean = float64(snap.Sum) / float64(snap.Count)
				snap.P50 = h.Percentile(0.50)
				snap.P95 = h.Percentile(0.95)
				snap.P99 = h.Percentile(0.99)
				snap.Buckets = h.Buckets()
			}
			m.Histograms[k.component+"/"+k.name] = snap
		}
	}
	m.TraceEvents = len(s.events)
	m.TraceDropped = s.dropped
	return m
}

// CounterValue returns the value of the counter registered under
// (component, name), or 0 if absent. Read-only: does not register.
func (s *Sink) CounterValue(component, name string) int64 {
	if s == nil {
		return 0
	}
	return s.counters[metricKey{component, name}].Value()
}

// MetricNames returns every registered "component/name" key, sorted.
func (s *Sink) MetricNames() []string {
	if s == nil {
		return nil
	}
	out := make([]string, 0, len(s.kinds))
	for k := range s.kinds {
		out = append(out, k.component+"/"+k.name)
	}
	sort.Strings(out)
	return out
}

// WriteMetricsJSON writes the metrics snapshot as indented JSON
// (encoding/json sorts map keys, so output order is deterministic).
func (s *Sink) WriteMetricsJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.Metrics())
}

// createFile creates path's parent directories then the file itself.
func createFile(path string) (*os.File, error) {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	return os.Create(path)
}

// WriteChromeTraceFile writes the Chrome trace to path, creating parent
// directories as needed.
func (s *Sink) WriteChromeTraceFile(path string) error {
	f, err := createFile(path)
	if err != nil {
		return err
	}
	if err := s.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteMetricsFile writes the metrics JSON to path, creating parent
// directories as needed.
func (s *Sink) WriteMetricsFile(path string) error {
	f, err := createFile(path)
	if err != nil {
		return err
	}
	if err := s.WriteMetricsJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
