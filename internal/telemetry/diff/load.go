package diff

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"assasin/internal/telemetry"
	"assasin/internal/telemetry/analyze"
	"assasin/internal/telemetry/kprof"
	"assasin/internal/telemetry/timeline"
)

// LoadFile reads one comparison side from a JSON file, auto-detecting the
// format by its top-level keys:
//
//   - a flat metrics snapshot (assasin-sim/-bench -metrics): "counters" /
//     "gauges" / "histograms"
//   - a timeline (-timeline): "times_ps"
//   - a BENCH_<exp>.json envelope (-json): "experiment" — uses the
//     embedded "telemetry" snapshot, which must be present
//   - a single attribution report, or a BENCH_report.json array holding
//     exactly one: "classes" + "label"
//   - a guest kernel profile (-kprof-dir profile.json or the serve
//     /runs/{id}/profile payload): "kernels" — compares per-block times
//
// The label defaults to the file's base name when the payload carries none.
func LoadFile(path string) (RunData, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return RunData{}, err
	}
	d, err := decode(b)
	if err != nil {
		return RunData{}, fmt.Errorf("%s: %w", path, err)
	}
	if d.Label == "" {
		d.Label = strings.TrimSuffix(filepath.Base(path), ".json")
	}
	return d, nil
}

// benchEnvelope mirrors the keys cmd/assasin-bench writes that the diff
// engine consumes.
type benchEnvelope struct {
	Experiment string                     `json:"experiment"`
	Telemetry  *telemetry.MetricsSnapshot `json:"telemetry"`
}

func decode(b []byte) (RunData, error) {
	trimmed := strings.TrimSpace(string(b))
	if strings.HasPrefix(trimmed, "[") {
		var reports []*analyze.RunReport
		if err := json.Unmarshal(b, &reports); err != nil {
			return RunData{}, err
		}
		if len(reports) != 1 {
			var labels []string
			for _, r := range reports {
				labels = append(labels, r.Label)
			}
			return RunData{}, fmt.Errorf("report array holds %d runs (%s); pass a single-run file",
				len(reports), strings.Join(labels, ", "))
		}
		return RunData{Label: reports[0].Label, Report: reports[0]}, nil
	}

	var probe map[string]json.RawMessage
	if err := json.Unmarshal(b, &probe); err != nil {
		return RunData{}, err
	}
	switch {
	case probe["experiment"] != nil:
		var env benchEnvelope
		if err := json.Unmarshal(b, &env); err != nil {
			return RunData{}, err
		}
		if env.Telemetry == nil {
			return RunData{}, fmt.Errorf("BENCH envelope %q has no telemetry snapshot; re-run assasin-bench with -metrics or -timeline", env.Experiment)
		}
		return RunData{Label: env.Experiment, Metrics: env.Telemetry}, nil
	case probe["times_ps"] != nil:
		var tl timeline.Timeline
		if err := json.Unmarshal(b, &tl); err != nil {
			return RunData{}, err
		}
		return RunData{Label: tl.Run, Timeline: &tl}, nil
	case probe["kernels"] != nil:
		var prof kprof.Profile
		if err := json.Unmarshal(b, &prof); err != nil {
			return RunData{}, err
		}
		return RunData{Label: prof.Label, Profile: &prof}, nil
	case probe["classes"] != nil && probe["label"] != nil:
		var rep analyze.RunReport
		if err := json.Unmarshal(b, &rep); err != nil {
			return RunData{}, err
		}
		return RunData{Label: rep.Label, Report: &rep}, nil
	case probe["counters"] != nil || probe["gauges"] != nil || probe["histograms"] != nil:
		var snap telemetry.MetricsSnapshot
		if err := json.Unmarshal(b, &snap); err != nil {
			return RunData{}, err
		}
		return RunData{Metrics: &snap}, nil
	default:
		return RunData{}, fmt.Errorf("unrecognized JSON shape (expected a metrics snapshot, timeline, BENCH envelope, attribution report, or kernel profile)")
	}
}
