package diff_test

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"assasin/internal/firmware"
	"assasin/internal/kernels"
	"assasin/internal/ssd"
	"assasin/internal/telemetry"
	"assasin/internal/telemetry/analyze"
	"assasin/internal/telemetry/diff"
	"assasin/internal/telemetry/kprof"
	"assasin/internal/telemetry/timeline"
)

func report(label string, classes map[string]int64) *analyze.RunReport {
	rep := &analyze.RunReport{Label: label}
	for class, ps := range classes {
		rep.Classes = append(rep.Classes, analyze.ClassShare{Class: class, Ps: ps})
	}
	return rep
}

func TestCompareRanksClassDeltas(t *testing.T) {
	a := diff.RunData{Report: report("a", map[string]int64{
		analyze.ClassCoreBusy:      100,
		analyze.ClassCacheDRAMWait: 500,
		analyze.ClassExecStall:     50,
	})}
	b := diff.RunData{Report: report("b", map[string]int64{
		analyze.ClassCoreBusy:      90,
		analyze.ClassCacheDRAMWait: 20,
		analyze.ClassExecStall:     55,
	})}
	rep := diff.Compare(a, b)

	if rep.TopClass != analyze.ClassCacheDRAMWait {
		t.Fatalf("TopClass = %q, want %q", rep.TopClass, analyze.ClassCacheDRAMWait)
	}
	if rep.Classes[0].DeltaPs != -480 {
		t.Errorf("top delta = %d, want -480", rep.Classes[0].DeltaPs)
	}
	if !strings.Contains(rep.Headline, analyze.ClassCacheDRAMWait) {
		t.Errorf("headline %q does not name the top class", rep.Headline)
	}
	// All five classes present, magnitudes non-increasing.
	if len(rep.Classes) != len(analyze.Classes()) {
		t.Fatalf("got %d class rows, want %d", len(rep.Classes), len(analyze.Classes()))
	}
	for i := 1; i < len(rep.Classes); i++ {
		prev, cur := rep.Classes[i-1].DeltaPs, rep.Classes[i].DeltaPs
		if abs(cur) > abs(prev) {
			t.Errorf("class ranking not sorted: |%d| after |%d|", cur, prev)
		}
	}
}

func abs(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestCompareCounterRanking(t *testing.T) {
	a := diff.RunData{Metrics: &telemetry.MetricsSnapshot{Counters: map[string]int64{
		"fw/pages": 1000, "xbar/bytes": 0, "dram/reads": 500, "same/count": 7,
	}}}
	b := diff.RunData{Metrics: &telemetry.MetricsSnapshot{Counters: map[string]int64{
		"fw/pages": 1010, "xbar/bytes": 800, "dram/reads": 0, "same/count": 7,
	}}}
	rep := diff.Compare(a, b)

	if rep.TopClass != "" {
		t.Errorf("TopClass = %q, want empty without class data", rep.TopClass)
	}
	// xbar/bytes (0 -> 800) outranks fw/pages (+10, ~1x) despite dram/reads
	// having a comparable |delta|: relative change weights the score.
	if rep.Counters[0].Key != "xbar/bytes" {
		t.Errorf("top counter = %q, want xbar/bytes (rows: %+v)", rep.Counters[0].Key, rep.Counters)
	}
	for _, d := range rep.Counters {
		if d.Key == "same/count" {
			t.Errorf("unchanged counter made the table: %+v", d)
		}
	}
	if !strings.Contains(rep.Headline, "xbar/bytes") {
		t.Errorf("headline %q should name the top counter", rep.Headline)
	}
}

// buildTimeline makes a tiny timeline with one dominant class.
func buildTimeline(run, class string, perSample int64) *timeline.Timeline {
	s := timeline.New(nil, timeline.Config{IntervalPs: 10})
	var cum int64
	s.AddProbe(func(emit func(string, int64)) {
		emit("class/"+class, cum)
	})
	for i := 1; i <= 4; i++ {
		cum += perSample
		s.Tick(int64(10 * i))
	}
	return s.Finish(run, 40)
}

func TestComparePhases(t *testing.T) {
	a := diff.RunData{Timeline: buildTimeline("a", "cache-dram-wait", 8)}
	b := diff.RunData{Timeline: buildTimeline("b", "core-busy", 8)}
	rep := diff.Compare(a, b)

	if rep.Phases == nil {
		t.Fatal("no phase comparison despite both timelines present")
	}
	if len(rep.Phases.A) != 1 || rep.Phases.A[0].Class != "cache-dram-wait" {
		t.Errorf("side a phases = %+v", rep.Phases.A)
	}
	if len(rep.Phases.B) != 1 || rep.Phases.B[0].Class != "core-busy" {
		t.Errorf("side b phases = %+v", rep.Phases.B)
	}
	cd := rep.Phases.ClassDurations
	if len(cd) != 2 || abs(cd[0].DeltaPs) != 40 {
		t.Errorf("class durations = %+v", cd)
	}
}

// statWords builds the tiny Table II Stat workload input.
func statWords(n int, seed uint32) []byte {
	b := make([]byte, n)
	x := seed
	for i := 0; i+4 <= n; i += 4 {
		x = x*1664525 + 1013904223
		binary.LittleEndian.PutUint32(b[i:], x)
	}
	return b
}

// runStat runs the tiny Stat workload on arch with full instrumentation and
// returns one comparison side.
func runStat(t *testing.T, arch ssd.Arch) diff.RunData {
	t.Helper()
	tel := telemetry.NewSink()
	tel.MaxEvents = -1
	sampler := timeline.New(tel, timeline.Config{IntervalPs: 1_000_000})
	s := ssd.New(ssd.Options{Arch: arch, Cores: 2, Telemetry: tel, Timeline: sampler})
	data := statWords(16<<10, 7)
	lpas, err := s.InstallBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunKernel(ssd.KernelRun{
		Kernel:     kernels.Stat{},
		Inputs:     [][]int{lpas},
		InputBytes: []int64{int64(len(data))},
		RecordSize: 4,
		Cores:      2,
		OutKind:    firmware.OutDiscard,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.PublishStats()
	label := "Stat/" + arch.String()
	snap := tel.Metrics()
	return diff.RunData{
		Label:    label,
		Metrics:  &snap,
		Timeline: sampler.Finish(label, int64(res.Duration)),
	}
}

// TestStatBaselineVsAssasinSb pins the paper's memory-wall narrative: on
// the Stat workload, the top-ranked delta between Baseline and AssasinSb is
// the collapse of cache/DRAM wait — the stream buffers eliminate it.
func TestStatBaselineVsAssasinSb(t *testing.T) {
	rep := diff.Compare(runStat(t, ssd.Baseline), runStat(t, ssd.AssasinSb))

	if rep.TopClass != analyze.ClassCacheDRAMWait {
		t.Fatalf("top-ranked class = %q, want %q (classes: %+v)",
			rep.TopClass, analyze.ClassCacheDRAMWait, rep.Classes)
	}
	top := rep.Classes[0]
	if top.DeltaPs >= 0 {
		t.Errorf("cache-dram-wait delta = %+d ps, want a collapse (negative)", top.DeltaPs)
	}
	if top.BPs != 0 {
		t.Errorf("AssasinSb cache-dram-wait = %d ps, want 0 (stream buffers bypass the cache)", top.BPs)
	}
	if rep.Phases == nil {
		t.Error("both sides carried timelines but no phase comparison was built")
	}
	if !strings.Contains(rep.Format(), "cache-dram-wait") {
		t.Error("formatted report does not mention cache-dram-wait")
	}
}

func TestLoadFileAutodetects(t *testing.T) {
	dir := t.TempDir()
	side := runStat(t, ssd.Baseline)

	metrics := filepath.Join(dir, "metrics.json")
	if err := side.Timeline.WriteFile(filepath.Join(dir, "tl.json")); err != nil {
		t.Fatal(err)
	}
	mb, err := json.Marshal(side.Metrics)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(metrics, mb, 0o644); err != nil {
		t.Fatal(err)
	}

	m, err := diff.LoadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	if m.Metrics == nil || m.Label != "metrics" {
		t.Errorf("metrics load: label %q, metrics nil=%v", m.Label, m.Metrics == nil)
	}
	tl, err := diff.LoadFile(filepath.Join(dir, "tl.json"))
	if err != nil {
		t.Fatal(err)
	}
	if tl.Timeline == nil || tl.Label != "Stat/Baseline" {
		t.Errorf("timeline load: label %q, timeline nil=%v", tl.Label, tl.Timeline == nil)
	}

	if err := os.WriteFile(filepath.Join(dir, "junk.json"), []byte(`{"foo": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := diff.LoadFile(filepath.Join(dir, "junk.json")); err == nil {
		t.Error("unrecognized JSON shape should fail to load")
	}
}

// statProfile runs Stat with a guest profiler attached and snapshots it.
func statProfile(t *testing.T, arch ssd.Arch) *kprof.Profile {
	t.Helper()
	kp := kprof.New()
	s := ssd.New(ssd.Options{Arch: arch, Cores: 2, KProf: kp})
	data := statWords(16<<10, 7)
	lpas, err := s.InstallBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunKernel(ssd.KernelRun{
		Kernel:     kernels.Stat{},
		Inputs:     [][]int{lpas},
		InputBytes: []int64{int64(len(data))},
		RecordSize: 4,
		Cores:      2,
		OutKind:    firmware.OutDiscard,
	}); err != nil {
		t.Fatal(err)
	}
	prof := kp.Snapshot()
	prof.Label = "Stat/" + arch.String()
	return prof
}

// TestCompareGuestBlocks pins the pc-granularity retelling of the class
// story: comparing profiled Baseline and AssasinSb Stat runs must yield a
// ranked per-block table, and a profile JSON written to disk must load back
// as a comparison side.
func TestCompareGuestBlocks(t *testing.T) {
	a := statProfile(t, ssd.Baseline)
	b := statProfile(t, ssd.AssasinSb)
	rep := diff.Compare(
		diff.RunData{Label: a.Label, Profile: a},
		diff.RunData{Label: b.Label, Profile: b},
	)
	if len(rep.Blocks) == 0 {
		t.Fatal("profiled sides produced no block deltas")
	}
	top := rep.Blocks[0]
	if !strings.HasPrefix(top.Key, "stat [") {
		t.Errorf("top block key = %q, want a stat block", top.Key)
	}
	if top.DeltaPs == 0 {
		t.Errorf("top block delta is zero: %+v", top)
	}
	for i := 1; i < len(rep.Blocks); i++ {
		if abs(rep.Blocks[i].DeltaPs) > abs(rep.Blocks[i-1].DeltaPs) {
			t.Errorf("blocks not ranked by |delta|: %+v", rep.Blocks)
		}
	}
	if !strings.Contains(rep.Format(), "guest hot blocks") {
		t.Error("formatted report lacks the guest hot blocks section")
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "profile.json")
	jb, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, jb, 0o644); err != nil {
		t.Fatal(err)
	}
	side, err := diff.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if side.Profile == nil || side.Label != a.Label {
		t.Errorf("profile load: label %q, profile nil=%v", side.Label, side.Profile == nil)
	}
}

func TestCompareDeterministicJSON(t *testing.T) {
	build := func() []byte {
		rep := diff.Compare(runStat(t, ssd.Baseline), runStat(t, ssd.AssasinSb))
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(build(), build()) {
		t.Error("differential JSON not byte-identical across identical runs")
	}
}
