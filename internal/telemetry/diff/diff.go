// Package diff is the run-vs-run differential engine: it aligns two runs'
// attribution reports, metrics snapshots and timelines (any subset) and
// emits ranked "what changed" tables — per-class core-time deltas, per-
// counter deltas, and per-phase comparisons. Comparing Baseline against
// AssasinSb on the same workload quantifies the paper's memory-wall
// narrative: the top-ranked delta is the cache/DRAM-wait collapse that the
// stream buffers buy.
//
// Everything is deterministic: rankings sort by magnitude with key-order
// tiebreaks, so identical inputs render byte-identical output.
package diff

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"assasin/internal/telemetry"
	"assasin/internal/telemetry/analyze"
	"assasin/internal/telemetry/kprof"
	"assasin/internal/telemetry/timeline"
)

// RunData is one side of a comparison. Any field may be nil; the engine
// uses whatever is present — class times come from Report when available,
// falling back to the "class/<name>_ps" gauges of Metrics (published by
// ssd.PublishStats); counters come from Report deltas or raw Metrics;
// phases need Timeline.
type RunData struct {
	Label    string
	Report   *analyze.RunReport
	Metrics  *telemetry.MetricsSnapshot
	Timeline *timeline.Timeline
	// Profile is the guest kernel profile (kprof); when either side has
	// one, the report gains per-basic-block time deltas — the class story
	// retold at pc granularity.
	Profile *kprof.Profile
}

// ClassDelta is one stall class's change in summed core time.
type ClassDelta struct {
	Class string `json:"class"`
	APs   int64  `json:"a_ps"`
	BPs   int64  `json:"b_ps"`
	// AFrac/BFrac are each side's share of its run's total core time.
	AFrac float64 `json:"a_frac"`
	BFrac float64 `json:"b_frac"`
	// DeltaPs is BPs - APs; rankings sort by its magnitude.
	DeltaPs int64 `json:"delta_ps"`
}

// CounterDelta is one counter's change.
type CounterDelta struct {
	Key   string `json:"key"`
	A     int64  `json:"a"`
	B     int64  `json:"b"`
	Delta int64  `json:"delta"`
	// Ratio is B/A, or 0 when A is 0 (JSON cannot carry infinities; the
	// text renderer shows such rows as "inf").
	Ratio float64 `json:"ratio"`
	// score ranks counters by |delta| weighted by relative change, so a
	// counter that doubled outranks one that moved 1% by the same absolute
	// amount.
	score float64
}

// BlockDelta is one guest basic block's change in attributed core time.
// Key is "kernel [start,end)"; blocks present on only one side compare
// against zero.
type BlockDelta struct {
	Key     string `json:"key"`
	APs     int64  `json:"a_ps"`
	BPs     int64  `json:"b_ps"`
	DeltaPs int64  `json:"delta_ps"`
	AInsts  int64  `json:"a_insts"`
	BInsts  int64  `json:"b_insts"`
}

// PhaseSummary is one side's phase in the comparison.
type PhaseSummary struct {
	Class      string  `json:"class"`
	StartPs    int64   `json:"start_ps"`
	EndPs      int64   `json:"end_ps"`
	DurationPs int64   `json:"duration_ps"`
	Frac       float64 `json:"frac"` // share of that run's duration
}

// PhaseComparison lines the two segmentations up.
type PhaseComparison struct {
	A []PhaseSummary `json:"a"`
	B []PhaseSummary `json:"b"`
	// ClassDurations ranks per-class phase-time changes: for each class,
	// the total duration of phases dominated by it on each side.
	ClassDurations []ClassDelta `json:"class_durations,omitempty"`
}

// Report is the differential between two runs (A → B).
type Report struct {
	A string `json:"a"`
	B string `json:"b"`
	// Headline is the one-line answer to "what changed": the top-ranked
	// class delta (or counter delta when no class data is present).
	Headline string `json:"headline"`
	// TopClass is the class behind the headline ("" when class data was
	// unavailable) — the machine-readable pin for tests.
	TopClass string `json:"top_class,omitempty"`

	ADurationPs    int64   `json:"a_duration_ps,omitempty"`
	BDurationPs    int64   `json:"b_duration_ps,omitempty"`
	AThroughputBps float64 `json:"a_throughput_bps,omitempty"`
	BThroughputBps float64 `json:"b_throughput_bps,omitempty"`

	// Classes ranks every stall class by |DeltaPs|, largest first.
	Classes []ClassDelta `json:"classes,omitempty"`
	// Counters ranks counter deltas (top MaxCounters survive).
	Counters []CounterDelta `json:"counters,omitempty"`
	// Phases compares the two timelines' segmentations when both exist.
	Phases *PhaseComparison `json:"phases,omitempty"`
	// Blocks ranks guest basic-block time deltas when either side carried
	// a kprof profile (top MaxBlocks survive).
	Blocks []BlockDelta `json:"blocks,omitempty"`
}

// MaxCounters bounds the ranked counter table; everything below the cut is
// omitted from the report (the full snapshots remain in the input files).
const MaxCounters = 20

// MaxBlocks bounds the ranked guest-block table.
const MaxBlocks = 12

// classTimes extracts per-class core time for one side, preferring the
// report's exact accounting over the published gauges.
func classTimes(d RunData) map[string]int64 {
	if d.Report != nil && len(d.Report.Classes) > 0 {
		out := make(map[string]int64, len(d.Report.Classes))
		for _, s := range d.Report.Classes {
			out[s.Class] = s.Ps
		}
		return out
	}
	if d.Metrics != nil {
		out := make(map[string]int64)
		for _, class := range analyze.Classes() {
			if g, ok := d.Metrics.Gauges["class/"+class+"_ps"]; ok {
				out[class] = g.Value
			}
		}
		if len(out) > 0 {
			return out
		}
	}
	if d.Timeline != nil {
		// Rate series integrate exactly (decimation preserves sums), so the
		// timeline alone reconstructs the per-class totals.
		out := make(map[string]int64)
		for _, class := range analyze.Classes() {
			if se := d.Timeline.SeriesByKey(timeline.ClassPrefix + class); se != nil {
				var sum int64
				for _, v := range se.Values {
					sum += v
				}
				out[class] = sum
			}
		}
		if len(out) > 0 {
			return out
		}
	}
	return nil
}

// counters extracts one side's counter map: report deltas when present
// (isolated to the run), else the raw snapshot.
func counters(d RunData) map[string]int64 {
	if d.Report != nil && len(d.Report.Counters) > 0 {
		return d.Report.Counters
	}
	if d.Metrics != nil {
		return d.Metrics.Counters
	}
	return nil
}

// Compare builds the differential report A → B.
func Compare(a, b RunData) *Report {
	rep := &Report{A: sideLabel(a, "A"), B: sideLabel(b, "B")}
	if a.Report != nil {
		rep.ADurationPs = a.Report.DurationPs
		rep.AThroughputBps = a.Report.ThroughputBps
	}
	if b.Report != nil {
		rep.BDurationPs = b.Report.DurationPs
		rep.BThroughputBps = b.Report.ThroughputBps
	}

	rep.Classes = classDeltas(classTimes(a), classTimes(b))
	rep.Counters = counterDeltas(counters(a), counters(b))
	if a.Timeline != nil && b.Timeline != nil {
		rep.Phases = comparePhases(a.Timeline, b.Timeline)
	}
	if a.Profile != nil || b.Profile != nil {
		rep.Blocks = blockDeltas(a.Profile, b.Profile)
	}

	switch {
	case len(rep.Classes) > 0:
		top := rep.Classes[0]
		rep.TopClass = top.Class
		rep.Headline = fmt.Sprintf("%s: %s -> %s (%s of core time %.1f%% -> %.1f%%)",
			top.Class, fmtPs(top.APs), fmtPs(top.BPs), signedPs(top.DeltaPs),
			100*top.AFrac, 100*top.BFrac)
	case len(rep.Counters) > 0:
		top := rep.Counters[0]
		rep.Headline = fmt.Sprintf("%s: %d -> %d (%+d)", top.Key, top.A, top.B, top.Delta)
	default:
		rep.Headline = "no comparable data"
	}
	return rep
}

// sideLabel resolves a display label for one side.
func sideLabel(d RunData, fallback string) string {
	switch {
	case d.Label != "":
		return d.Label
	case d.Report != nil && d.Report.Label != "":
		return d.Report.Label
	case d.Timeline != nil && d.Timeline.Run != "":
		return d.Timeline.Run
	default:
		return fallback
	}
}

// classDeltas ranks the five classes by |delta|, canonical order breaking
// ties. Returns nil when neither side had class data.
func classDeltas(a, b map[string]int64) []ClassDelta {
	if a == nil && b == nil {
		return nil
	}
	var aTotal, bTotal int64
	for _, ps := range a {
		aTotal += ps
	}
	for _, ps := range b {
		bTotal += ps
	}
	var out []ClassDelta
	for _, class := range analyze.Classes() {
		d := ClassDelta{Class: class, APs: a[class], BPs: b[class]}
		d.DeltaPs = d.BPs - d.APs
		if aTotal > 0 {
			d.AFrac = float64(d.APs) / float64(aTotal)
		}
		if bTotal > 0 {
			d.BFrac = float64(d.BPs) / float64(bTotal)
		}
		out = append(out, d)
	}
	sort.SliceStable(out, func(i, j int) bool { return abs64(out[i].DeltaPs) > abs64(out[j].DeltaPs) })
	return out
}

// counterDeltas ranks changed counters; the score weights absolute movement
// by log-relative change so both "huge but proportional" and "small but
// ratio-shattering" changes surface, deterministically tie-broken by key.
func counterDeltas(a, b map[string]int64) []CounterDelta {
	if a == nil && b == nil {
		return nil
	}
	keys := make(map[string]bool, len(a)+len(b))
	for k := range a {
		keys[k] = true
	}
	for k := range b {
		keys[k] = true
	}
	var out []CounterDelta
	for k := range keys {
		d := CounterDelta{Key: k, A: a[k], B: b[k]}
		d.Delta = d.B - d.A
		if d.Delta == 0 {
			continue
		}
		if d.A > 0 {
			d.Ratio = float64(d.B) / float64(d.A)
		}
		rel := math.Abs(math.Log2((float64(d.B) + 1) / (float64(d.A) + 1)))
		d.score = float64(abs64(d.Delta)) * (1 + rel)
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].score != out[j].score {
			return out[i].score > out[j].score
		}
		return out[i].Key < out[j].Key
	})
	if len(out) > MaxCounters {
		out = out[:MaxCounters]
	}
	return out
}

// blockStats flattens one profile into a per-block map keyed by
// "kernel [start,end)".
func blockStats(p *kprof.Profile) map[string]BlockDelta {
	if p == nil {
		return nil
	}
	out := make(map[string]BlockDelta)
	for _, k := range p.Kernels {
		for _, blk := range k.Blocks {
			key := fmt.Sprintf("%s [%d,%d)", k.Kernel, blk.Start, blk.End)
			d := out[key]
			d.Key = key
			d.APs += blk.TotalPs()
			d.AInsts += blk.Insts
			out[key] = d
		}
	}
	return out
}

// blockDeltas ranks guest basic blocks by |delta| of attributed time,
// key-order breaking ties. One-sided blocks (a kernel only one run
// executed) compare against zero.
func blockDeltas(a, b *kprof.Profile) []BlockDelta {
	as, bs := blockStats(a), blockStats(b)
	keys := make(map[string]bool, len(as)+len(bs))
	for k := range as {
		keys[k] = true
	}
	for k := range bs {
		keys[k] = true
	}
	var out []BlockDelta
	for k := range keys {
		d := BlockDelta{Key: k, APs: as[k].APs, BPs: bs[k].APs, AInsts: as[k].AInsts, BInsts: bs[k].AInsts}
		d.DeltaPs = d.BPs - d.APs
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		di, dj := abs64(out[i].DeltaPs), abs64(out[j].DeltaPs)
		if di != dj {
			return di > dj
		}
		return out[i].Key < out[j].Key
	})
	if len(out) > MaxBlocks {
		out = out[:MaxBlocks]
	}
	return out
}

// comparePhases summarizes both segmentations and ranks per-class phase-
// duration changes.
func comparePhases(a, b *timeline.Timeline) *PhaseComparison {
	pc := &PhaseComparison{
		A: phaseSummaries(a),
		B: phaseSummaries(b),
	}
	durByClass := func(ps []PhaseSummary) map[string]int64 {
		out := make(map[string]int64)
		for _, p := range ps {
			out[p.Class] += p.DurationPs
		}
		return out
	}
	ad, bd := durByClass(pc.A), durByClass(pc.B)
	keys := make(map[string]bool, len(ad)+len(bd))
	for k := range ad {
		keys[k] = true
	}
	for k := range bd {
		keys[k] = true
	}
	for k := range keys {
		d := ClassDelta{Class: k, APs: ad[k], BPs: bd[k]}
		d.DeltaPs = d.BPs - d.APs
		pc.ClassDurations = append(pc.ClassDurations, d)
	}
	sort.Slice(pc.ClassDurations, func(i, j int) bool {
		di, dj := abs64(pc.ClassDurations[i].DeltaPs), abs64(pc.ClassDurations[j].DeltaPs)
		if di != dj {
			return di > dj
		}
		return pc.ClassDurations[i].Class < pc.ClassDurations[j].Class
	})
	return pc
}

// phaseSummaries flattens one timeline's phases.
func phaseSummaries(tl *timeline.Timeline) []PhaseSummary {
	var dur int64
	if n := len(tl.TimesPs); n > 0 {
		dur = tl.TimesPs[n-1]
	}
	out := make([]PhaseSummary, 0, len(tl.Phases))
	for _, p := range tl.Phases {
		s := PhaseSummary{
			Class: p.Class, StartPs: p.StartPs, EndPs: p.EndPs, DurationPs: p.DurationPs(),
		}
		if dur > 0 {
			s.Frac = float64(s.DurationPs) / float64(dur)
		}
		out = append(out, s)
	}
	return out
}

// Format renders the report as an aligned text table.
func (r *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Differential — %s vs %s\n", r.A, r.B)
	if r.ADurationPs > 0 || r.BDurationPs > 0 {
		fmt.Fprintf(&b, "  duration    %s -> %s (%s)\n",
			fmtPs(r.ADurationPs), fmtPs(r.BDurationPs), ratioStr(float64(r.BDurationPs), float64(r.ADurationPs)))
	}
	if r.AThroughputBps > 0 || r.BThroughputBps > 0 {
		fmt.Fprintf(&b, "  throughput  %.2f GB/s -> %.2f GB/s (%s)\n",
			r.AThroughputBps/1e9, r.BThroughputBps/1e9, ratioStr(r.BThroughputBps, r.AThroughputBps))
	}
	fmt.Fprintf(&b, "  what changed: %s\n", r.Headline)
	if len(r.Classes) > 0 {
		fmt.Fprintf(&b, "  core time by class (ranked by |delta|):\n")
		fmt.Fprintf(&b, "    %-20s%14s%14s%14s%10s%10s\n", "class", "a", "b", "delta", "a-frac", "b-frac")
		for _, d := range r.Classes {
			fmt.Fprintf(&b, "    %-20s%14s%14s%14s%9.1f%%%9.1f%%\n",
				d.Class, fmtPs(d.APs), fmtPs(d.BPs), signedPs(d.DeltaPs), 100*d.AFrac, 100*d.BFrac)
		}
	}
	if len(r.Counters) > 0 {
		fmt.Fprintf(&b, "  counters (top %d by weighted |delta|):\n", len(r.Counters))
		fmt.Fprintf(&b, "    %-32s%14s%14s%14s%9s\n", "counter", "a", "b", "delta", "ratio")
		for _, d := range r.Counters {
			fmt.Fprintf(&b, "    %-32s%14d%14d%+14d%9s\n", d.Key, d.A, d.B, d.Delta, ratioCell(d))
		}
	}
	if len(r.Blocks) > 0 {
		fmt.Fprintf(&b, "  guest hot blocks (top %d by |delta|):\n", len(r.Blocks))
		fmt.Fprintf(&b, "    %-36s%14s%14s%14s%12s%12s\n", "block", "a", "b", "delta", "a-insts", "b-insts")
		for _, d := range r.Blocks {
			fmt.Fprintf(&b, "    %-36s%14s%14s%14s%12d%12d\n",
				d.Key, fmtPs(d.APs), fmtPs(d.BPs), signedPs(d.DeltaPs), d.AInsts, d.BInsts)
		}
	}
	if r.Phases != nil {
		fmt.Fprintf(&b, "  phases:\n")
		writePhases := func(side string, ps []PhaseSummary) {
			for _, p := range ps {
				fmt.Fprintf(&b, "    %s  %-20s%14s ->%13s%8.1f%%\n",
					side, p.Class, fmtPs(p.StartPs), fmtPs(p.EndPs), 100*p.Frac)
			}
		}
		writePhases("a", r.Phases.A)
		writePhases("b", r.Phases.B)
		if len(r.Phases.ClassDurations) > 0 {
			fmt.Fprintf(&b, "  phase time by dominant class (ranked by |delta|):\n")
			for _, d := range r.Phases.ClassDurations {
				fmt.Fprintf(&b, "    %-20s%14s%14s%14s\n",
					d.Class, fmtPs(d.APs), fmtPs(d.BPs), signedPs(d.DeltaPs))
			}
		}
	}
	return b.String()
}

// WriteJSON writes the report as deterministic indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// fmtPs renders picoseconds with a readable unit.
func fmtPs(ps int64) string {
	switch {
	case ps >= 1e9 || ps <= -1e9:
		return fmt.Sprintf("%.3f ms", float64(ps)/1e9)
	case ps >= 1e6 || ps <= -1e6:
		return fmt.Sprintf("%.3f µs", float64(ps)/1e6)
	default:
		return fmt.Sprintf("%d ps", ps)
	}
}

// signedPs is fmtPs with an explicit sign.
func signedPs(ps int64) string {
	if ps > 0 {
		return "+" + fmtPs(ps)
	}
	return fmtPs(ps)
}

// ratioStr renders b/a as a multiplier.
func ratioStr(b, a float64) string {
	if a <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2fx", b/a)
}

// ratioCell renders one counter row's ratio; a counter appearing from zero
// has no finite ratio and shows as "inf".
func ratioCell(d CounterDelta) string {
	switch {
	case d.A == 0 && d.B != 0:
		return "inf"
	case d.Ratio == 0:
		return "0"
	default:
		return fmt.Sprintf("%.2fx", d.Ratio)
	}
}
