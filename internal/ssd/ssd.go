// Package ssd assembles complete computational SSDs: the flash array, FTL,
// SSD DRAM, crossbar, firmware engine, and compute engines with the
// per-configuration memory hierarchies of Table IV (Baseline, UDP,
// Prefetch, AssasinSp, AssasinSb, AssasinSb$), plus the channel-local
// alternative architecture of Fig. 7 used in the skew study.
package ssd

import (
	"fmt"
	"log/slog"

	"assasin/internal/asm"
	"assasin/internal/core"
	"assasin/internal/cpu"
	"assasin/internal/crossbar"
	"assasin/internal/firmware"
	"assasin/internal/flash"
	"assasin/internal/ftl"
	"assasin/internal/memhier"
	"assasin/internal/sim"
	"assasin/internal/telemetry"
	"assasin/internal/telemetry/analyze"
	"assasin/internal/telemetry/kprof"
	"assasin/internal/telemetry/reqtrace"
	"assasin/internal/telemetry/timeline"
)

// Arch identifies a Table IV configuration.
type Arch int

// Architectures.
const (
	// Baseline: in-order RV32IM cores with 32K L1D + 256K L2, data staged
	// in SSD DRAM — the state-of-the-art general-purpose computational SSD.
	Baseline Arch = iota
	// UDP: accelerator lanes with 256K private scratchpads, branch-free
	// dispatch, data copied from SSD DRAM into the scratchpads by firmware.
	UDP
	// Prefetch: Baseline plus a DCPT prefetcher at the L1.
	Prefetch
	// AssasinSp: ping-pong scratchpads fed from flash through the crossbar,
	// bypassing SSD DRAM; software-managed stream pointers.
	AssasinSp
	// AssasinSb: stream buffers with the stream ISA extension and a 64K
	// scratchpad for function state.
	AssasinSb
	// AssasinSbCache: AssasinSb plus a 32K L1D backed by DRAM for state
	// that overflows the scratchpad.
	AssasinSbCache
)

// String implements fmt.Stringer with the paper's configuration names.
func (a Arch) String() string {
	switch a {
	case Baseline:
		return "Baseline"
	case UDP:
		return "UDP"
	case Prefetch:
		return "Prefetch"
	case AssasinSp:
		return "AssasinSp"
	case AssasinSb:
		return "AssasinSb"
	case AssasinSbCache:
		return "AssasinSb$"
	default:
		return fmt.Sprintf("Arch(%d)", int(a))
	}
}

// MarshalText implements encoding.TextMarshaler so Arch-keyed maps and
// fields serialize with the paper's configuration names.
func (a Arch) MarshalText() ([]byte, error) { return []byte(a.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler (the inverse of
// MarshalText).
func (a *Arch) UnmarshalText(text []byte) error {
	s := string(text)
	for _, c := range AllArchs() {
		if c.String() == s {
			*a = c
			return nil
		}
	}
	return fmt.Errorf("ssd: unknown architecture %q", s)
}

// AllArchs lists the six evaluated configurations in Table IV order.
func AllArchs() []Arch {
	return []Arch{Baseline, UDP, Prefetch, AssasinSp, AssasinSb, AssasinSbCache}
}

// IsStream reports whether kernels for this architecture use the stream ISA
// extension (vs software-managed pointers over staged windows).
func (a Arch) IsStream() bool { return a == AssasinSb || a == AssasinSbCache }

// Options configures an SSD instance.
type Options struct {
	Arch  Arch
	Cores int
	// TimingAdjusted applies the Fig. 20/21 circuit results: AssasinSb
	// cores clock 11% faster; scratchpad accesses take 2 cycles.
	TimingAdjusted bool
	// ChannelLocal replaces the crossbar with fixed per-channel compute
	// (the Fig. 7 application-specific alternative).
	ChannelLocal bool
	// Layout is the FTL placement policy (nil = striped).
	Layout ftl.Policy
	// Flash overrides the flash geometry (zero value = DefaultFlashConfig).
	Flash flash.Config
	// DRAM overrides the DRAM model (zero value = paper's 8 GB/s LPDDR5).
	DRAM memhier.DRAMConfig
	// StreamSlots is S, input and output stream slots per core.
	StreamSlots int
	// WindowPages is P, the per-slot input window in flash pages.
	// Zero selects the architecture default (P=2 for ASSASIN variants,
	// a larger DRAM staging window for Baseline/Prefetch/UDP).
	WindowPages int
	// OutWindowPages sizes the per-slot output window.
	OutWindowPages int
	// Exec selects the core interpreter strategy: cpu.ExecCompiled
	// (default) translates programs to threaded code at load time,
	// cpu.ExecFused runs basic blocks and recognized stream loops as
	// macro-steps, cpu.ExecPrecise forces per-instruction stepping for
	// debugging. All three produce byte-identical results.
	Exec cpu.ExecMode
	// DataPlane selects the firmware delivery event structure:
	// firmware.PlaneCoalesced (default) batches consecutive unconstrained
	// page deliveries into single event dispatches, firmware.PlanePerPage
	// keeps one event per page as the equivalence oracle. Both produce
	// byte-identical results, timing, and telemetry.
	DataPlane firmware.PlaneMode
	// CoreQuantum, when > 0, gives compute cores a private scheduler run
	// quantum in place of the global default (1 µs). Larger quanta reduce
	// scheduler round-trips per stream window at the cost of coarser
	// event interleaving; results stay deterministic and are identical
	// across Exec modes for any fixed value.
	CoreQuantum sim.Time
	// Telemetry, when non-nil, enables instrumentation across every
	// component (scheduler, cores, stream buffers, crossbar, flash, FTL,
	// firmware): counters/gauges/histograms plus the sim-clock event trace.
	// Nil (the default) disables everything at nil-pointer-branch cost.
	// The sink is not goroutine-safe: do not share one sink between SSDs
	// simulated concurrently.
	Telemetry *telemetry.Sink
	// Timeline, when non-nil, attaches a sim-time sampler to the SSD's
	// scheduler: every dispatch ticks it, and a per-class cycle-accounting
	// probe feeds the "class/<name>" series the phase segmenter consumes.
	// Like Telemetry, the sampler belongs to this SSD's simulation
	// goroutine. Nil disables sampling at nil-pointer-branch cost.
	Timeline *timeline.Sampler
	// Requests, when non-nil, assigns every offload (and NVMe command, via
	// internal/nvme) a RequestID at submission and accumulates a causal
	// span record through the firmware data plane and the cores' cycle
	// accounting; completed records carry a critical path whose segments
	// sum exactly to the request latency. Like Telemetry, the tracer
	// belongs to this SSD's simulation goroutine. Nil disables request
	// tracing at nil-pointer-branch cost.
	Requests *reqtrace.Tracer
	// KProf, when non-nil, attaches the guest-kernel profiler to every
	// compute core: each retired instruction's issue cycle and every
	// stall is attributed to its (kernel, pc), with the compiled/fused
	// engines recording bulk ALU dispatches as O(1) range updates. Like
	// Telemetry, the profiler belongs to this SSD's simulation goroutine.
	// Nil disables profiling at nil-pointer-branch cost.
	KProf *kprof.Profiler
	// Log, when non-nil, receives offload lifecycle events: request
	// submission and completion at Debug level. Handlers must be
	// goroutine-safe when SSDs run concurrently.
	Log *slog.Logger
	// OnAdvance, when non-nil, is chained onto the scheduler's dispatch
	// hook (after the timeline tick, when both are set) with the committed
	// sim horizon in picoseconds. Sliding-window aggregators and the SLO
	// engine hook here; nil disables at nil-pointer-branch cost.
	OnAdvance func(nowPs int64)
}

// DefaultFlashConfig is the evaluation geometry: 8 channels × 1 GB/s,
// 4 KiB pages, enough chips per channel that the bus stays the bottleneck.
func DefaultFlashConfig() flash.Config {
	return flash.Config{
		Channels:         8,
		ChipsPerChannel:  16,
		BlocksPerChip:    256,
		PagesPerBlock:    64,
		PageSize:         4 << 10,
		ChannelBandwidth: 1e9,
		ReadLatency:      25 * sim.Microsecond,
		ProgramLatency:   200 * sim.Microsecond,
		EraseLatency:     2 * sim.Millisecond,
	}
}

// SSD is one assembled computational SSD.
type SSD struct {
	Opt     Options
	Sched   *sim.Scheduler
	DRAM    *memhier.DRAM
	Array   *flash.Array
	FTL     *ftl.FTL
	Xbar    *crossbar.Crossbar
	Cores   []*cpu.Core
	Systems []*memhier.System

	nextDataLPA int
	streamTel   *memhier.StreamTel // shared stream-buffer bundle; nil when disabled
	reqLabel    string             // label for the next traced offload request
	reqTenant   string             // tenant for the next traced offload request
}

// SetRequestLabel names the next offload request in the request trace
// (RunKernel sets the kernel name; nvme sets the opcode). Cleared after use.
func (s *SSD) SetRequestLabel(label string) { s.reqLabel = label }

// SetRequestTenant tags the next offload request's trace record with a
// tenant for per-tenant SLO accounting. Cleared after use.
func (s *SSD) SetRequestTenant(tenant string) { s.reqTenant = tenant }

// New assembles an SSD.
func New(opt Options) *SSD {
	if opt.Cores <= 0 {
		opt.Cores = 8
	}
	if opt.Flash.Channels == 0 {
		opt.Flash = DefaultFlashConfig()
	}
	if opt.DRAM.BandwidthBytesPerSec == 0 {
		opt.DRAM = memhier.DefaultDRAMConfig()
	}
	if opt.StreamSlots <= 0 {
		opt.StreamSlots = 8
	}
	if opt.WindowPages <= 0 {
		switch opt.Arch {
		case Baseline, Prefetch, UDP:
			// DRAM staging buffers: deep enough to decouple cores from
			// flash latency, shallow enough that fill traffic is paced by
			// consumption instead of racing the whole dataset into DRAM.
			opt.WindowPages = 8
		default:
			// The paper's P=2 with 16 KiB flash pages gives a 32 KiB window
			// per slot; at this model's 4 KiB pages that is 8 window pages.
			opt.WindowPages = 8
		}
	}
	if opt.OutWindowPages <= 0 {
		switch opt.Arch {
		case Baseline, Prefetch, UDP:
			opt.OutWindowPages = 64
		default:
			opt.OutWindowPages = 8
		}
	}

	s := &SSD{Opt: opt, Sched: sim.NewScheduler()}
	s.DRAM = memhier.NewDRAM(opt.DRAM)
	s.Array = flash.New(opt.Flash)
	s.FTL = ftl.New(s.Array, opt.Layout)
	if !opt.ChannelLocal {
		s.Xbar = crossbar.New(crossbar.DefaultConfig(opt.Cores))
	}
	if tel := opt.Telemetry; tel != nil {
		s.Sched.Tel = sim.NewSchedTel(tel)
		s.Array.Tel = flash.NewTel(tel)
		s.FTL.Tel = ftl.NewTel(tel)
		if s.Xbar != nil {
			s.Xbar.Tel = crossbar.NewTel(tel)
		}
		s.streamTel = memhier.NewStreamTel(tel)
	}
	if tl := opt.Timeline; tl != nil {
		tl.AddProbe(s.classProbe)
	}
	switch tl, oa := opt.Timeline, opt.OnAdvance; {
	case tl != nil && oa != nil:
		s.Sched.OnAdvance = func(nowPs int64) {
			tl.Tick(nowPs)
			oa(nowPs)
		}
	case tl != nil:
		s.Sched.OnAdvance = tl.Tick
	case oa != nil:
		s.Sched.OnAdvance = oa
	}

	coreClock := sim.NewClock(1e9)
	spCycles := 1
	if opt.TimingAdjusted {
		// Fig. 20: 64 KiB scratchpads need 2 cycles at 1 GHz; the
		// streambuffer's prefetched head FIFO lets the whole AssasinSb
		// pipeline clock 11% faster.
		spCycles = 2
		if opt.Arch.IsStream() {
			coreClock = sim.Clock{Period: 890 * sim.Picosecond}
			spCycles = 2
		}
	}

	for i := 0; i < opt.Cores; i++ {
		name := fmt.Sprintf("%s-core%d", opt.Arch, i)
		client := fmt.Sprintf("core%d", i)
		var sys *memhier.System
		var eng *cpu.Core

		switch opt.Arch {
		case AssasinSp, AssasinSb, AssasinSbCache:
			// The ASSASIN core composition (internal/core): stream windows
			// fed through the crossbar plus a state scratchpad. Stream data
			// hits the single-cycle head FIFO on Sb/Sb$; AssasinSp serves
			// every stream access from its ping-pong scratchpads and is the
			// configuration penalized by the Fig. 20 timing (2 cycles).
			ccfg := core.Config{
				Name:             name,
				Clock:            coreClock,
				StreamSlots:      opt.StreamSlots,
				WindowPages:      opt.WindowPages,
				PageSize:         opt.Flash.PageSize,
				ScratchpadBytes:  64 << 10,
				ScratchpadCycles: 1,
				WithCache:        opt.Arch == AssasinSbCache,
				Exec:             opt.Exec,
			}
			if opt.Arch == AssasinSp {
				ccfg.ScratchpadCycles = spCycles
			}
			built, err := core.Build(ccfg, s.DRAM, client)
			if err != nil {
				panic(err) // geometry is internally consistent
			}
			sys, eng = built.Sys, built.CPU

		default:
			sys = &memhier.System{
				Clock:   coreClock,
				DRAM:    s.DRAM,
				Backing: memhier.NewSparseMem(),
				Streams: memhier.NewStreamBuffer(opt.StreamSlots, opt.WindowPages, opt.Flash.PageSize),
				Client:  client,
			}
			switch opt.Arch {
			case Baseline, Prefetch:
				l2 := memhier.NewCache(memhier.CacheConfig{
					Name: "l2", Size: 256 << 10, Ways: 16, LineSize: 64,
					HitLatency: 10 * sim.Nanosecond,
				}, memhier.DRAMLevel{DRAM: s.DRAM})
				l1 := memhier.NewCache(memhier.CacheConfig{
					Name: "l1d", Size: 32 << 10, Ways: 8, LineSize: 64,
				}, l2)
				if opt.Arch == Prefetch {
					l1.AttachPrefetcher(memhier.NewPrefetcher(8))
				}
				sys.L1 = l1
				sys.ViewPath = memhier.ViewCached
			case UDP:
				sys.Scratchpad = memhier.NewScratchpad(256 << 10)
				// A 256 KiB scratchpad cannot be read in one 1 GHz cycle
				// (the Fig. 20 SRAM timing model gives ~1.3 ns): UDP lanes
				// pay 2-cycle accesses, one reason the paper finds the
				// general-purpose AssasinSb ahead of the UDP accelerator.
				sys.Scratchpad.AccessCycles = 2
				sys.ViewPath = memhier.ViewScratchpad
			}
			ccfg := cpu.DefaultConfig(name)
			ccfg.Clock = coreClock
			ccfg.BranchFree = opt.Arch == UDP
			ccfg.Exec = opt.Exec
			eng = cpu.New(ccfg, sys)
		}

		// Output windows may differ in depth from input windows.
		for j := range sys.Streams.Out {
			sys.Streams.Out[j] = memhier.NewOutStream(opt.OutWindowPages, opt.Flash.PageSize)
		}
		if opt.Telemetry != nil {
			eng.AttachTelemetry(opt.Telemetry)
			sys.Streams.AttachTel(s.streamTel)
		}
		if opt.KProf != nil {
			eng.AttachKProf(opt.KProf)
		}
		if opt.CoreQuantum > 0 {
			s.Sched.SetQuantum(eng, opt.CoreQuantum)
		}
		s.Cores = append(s.Cores, eng)
		s.Systems = append(s.Systems, sys)
	}
	return s
}

// classTimes sums the per-core cycle accounting into the five attribution
// classes, in picoseconds: issue time plus the four-way stall taxonomy
// (StallMem → cache-dram-wait, StallStreamWait → stream-refill-wait,
// StallOutFull → out-full-wait, StallExec → exec-stall).
func (s *SSD) classTimes() (busy, mem, refill, outFull, exec int64) {
	for _, c := range s.Cores {
		st := c.Stats()
		busy += int64(st.BusyTime)
		mem += int64(st.StallTime[cpu.StallMem])
		refill += int64(st.StallTime[cpu.StallStreamWait])
		outFull += int64(st.StallTime[cpu.StallOutFull])
		exec += int64(st.StallTime[cpu.StallExec])
	}
	return
}

// classProbe feeds the timeline sampler the live cumulative class times, as
// "class/<name>" series (the phase segmenter's input).
func (s *SSD) classProbe(emit func(key string, cumulative int64)) {
	busy, mem, refill, outFull, exec := s.classTimes()
	emit(timeline.ClassPrefix+analyze.ClassCoreBusy, busy)
	emit(timeline.ClassPrefix+analyze.ClassCacheDRAMWait, mem)
	emit(timeline.ClassPrefix+analyze.ClassStreamRefillWait, refill)
	emit(timeline.ClassPrefix+analyze.ClassOutFullWait, outFull)
	emit(timeline.ClassPrefix+analyze.ClassExecStall, exec)
}

// PublishStats snapshots cumulative component state — per-channel flash
// busy time and bytes, crossbar port busy/bytes, FTL write/GC totals, DRAM
// traffic, and the aggregated L1 cache hit/miss counters — into telemetry
// gauges. Inline-instrumented counters (stream pushes, crossbar grants,
// scheduler dispatches...) accumulate as the simulation runs and need no
// publish step; call this once after the runs of interest. No-op without a
// telemetry sink.
func (s *SSD) PublishStats() {
	tel := s.Opt.Telemetry
	if tel == nil {
		return
	}
	for c := 0; c < s.Opt.Flash.Channels; c++ {
		tel.Gauge("flash", fmt.Sprintf("ch%d_busy_ps", c)).Set(int64(s.Array.ChannelBusy(c)))
		tel.Gauge("flash", fmt.Sprintf("ch%d_bytes", c)).Set(s.Array.ChannelBytes(c))
	}
	if s.Xbar != nil {
		for p := 0; p < s.Xbar.Config().Ports; p++ {
			tel.Gauge("xbar", fmt.Sprintf("port%d_busy_ps", p)).Set(int64(s.Xbar.PortBusy(p)))
			tel.Gauge("xbar", fmt.Sprintf("port%d_bytes", p)).Set(s.Xbar.PortBytes(p))
		}
	}
	fs := s.FTL.Stats()
	tel.Gauge("ftl", "host_writes").Set(fs.HostWrites)
	tel.Gauge("ftl", "gc_writes").Set(fs.GCWrites)
	tel.Gauge("ftl", "erases").Set(fs.Erases)
	tel.Gauge("ftl", "gc_invocations").Set(fs.GCInvocations)
	tel.Gauge("dram", "total_bytes").Set(s.DRAM.TotalBytes())
	// Per-class core time aggregates: the same numbers the attribution
	// report derives from CoreStats, published as gauges so metrics-only
	// exports (-metrics files, BENCH envelopes) carry enough for the diff
	// engine to rank class deltas without a report.
	busy, mem, refill, outFull, exec := s.classTimes()
	tel.Gauge("class", analyze.ClassCoreBusy+"_ps").Set(busy)
	tel.Gauge("class", analyze.ClassCacheDRAMWait+"_ps").Set(mem)
	tel.Gauge("class", analyze.ClassStreamRefillWait+"_ps").Set(refill)
	tel.Gauge("class", analyze.ClassOutFullWait+"_ps").Set(outFull)
	tel.Gauge("class", analyze.ClassExecStall+"_ps").Set(exec)
	// Unify the existing per-cache hit/miss stats into the metrics export,
	// aggregated across cores (cached architectures only).
	var cs memhier.CacheStats
	withCache := 0
	for _, sys := range s.Systems {
		if sys.L1 == nil {
			continue
		}
		withCache++
		st := sys.L1.Stats()
		cs.Hits += st.Hits
		cs.Misses += st.Misses
		cs.Evictions += st.Evictions
		cs.Writebacks += st.Writebacks
		cs.PrefetchIssued += st.PrefetchIssued
		cs.PrefetchUseful += st.PrefetchUseful
	}
	if withCache > 0 {
		tel.Gauge("cache", "l1_hits").Set(cs.Hits)
		tel.Gauge("cache", "l1_misses").Set(cs.Misses)
		tel.Gauge("cache", "l1_evictions").Set(cs.Evictions)
		tel.Gauge("cache", "l1_writebacks").Set(cs.Writebacks)
		tel.Gauge("cache", "l1_prefetch_issued").Set(cs.PrefetchIssued)
		tel.Gauge("cache", "l1_prefetch_useful").Set(cs.PrefetchUseful)
	}
}

// DataPath returns the firmware data path for this architecture.
func (s *SSD) DataPath() firmware.DataPath {
	switch s.Opt.Arch {
	case Baseline, Prefetch:
		return firmware.PathDRAMStage
	case UDP:
		return firmware.PathDRAMCopy
	default:
		return firmware.PathCrossbar
	}
}

// InstallBytes writes data into the flash array as a fresh dataset (no
// simulated time) and returns the logical pages backing it.
func (s *SSD) InstallBytes(data []byte) ([]int, error) {
	ps := s.Opt.Flash.PageSize
	var lpas []int
	for off := 0; off < len(data); off += ps {
		end := off + ps
		if end > len(data) {
			end = len(data)
		}
		lpa := s.nextDataLPA
		s.nextDataLPA++
		if err := s.FTL.Install(lpa, data[off:end]); err != nil {
			return nil, err
		}
		lpas = append(lpas, lpa)
	}
	return lpas, nil
}

// ReserveLPAs reserves logical pages for output streams (OutToFlash).
func (s *SSD) ReserveLPAs(n int) int {
	start := s.nextDataLPA
	s.nextDataLPA += n
	return start
}

// TaskSpec describes one core's share of an offload.
type TaskSpec struct {
	Program *asm.Program
	Inputs  []firmware.StreamSpec
	Outputs []firmware.OutTarget
	// Regs are initial register values (argument passing).
	Regs map[asm.Reg]uint32
	// Scratch is preloaded into the scratchpad (function state) for
	// scratchpad architectures; for cached architectures it is placed in
	// DRAM at StateBase instead.
	Scratch []byte
	// StateBase is where Scratch was assumed to live when the program was
	// built (memhier.ScratchpadBase or a DRAM address).
	StateBase uint32
}

// Result summarizes one offload run.
type Result struct {
	// Duration is the request completion time (last page drained).
	Duration sim.Time
	// InputBytes is the total stream bytes delivered to cores.
	InputBytes int64
	// Outputs[i][j] holds collected output bytes of task i, slot j.
	Outputs [][][]byte
	// CoreStats per task.
	CoreStats []cpu.Stats
	// FinalRegs per task (for kernels returning results in registers).
	FinalRegs [][]uint32
}

// Throughput returns input bytes per second over the run.
func (r *Result) Throughput() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.InputBytes) / r.Duration.Seconds()
}

// RunOffload executes one computational-storage request across the SSD's
// cores. Each TaskSpec is assigned to the same-indexed core. Requests may
// be submitted back to back on the same SSD: the firmware resets core and
// stream-buffer state between requests (Listing 1's reset semantics) while
// the simulated clock, flash contents and FTL state carry forward.
func (s *SSD) RunOffload(tasks []TaskSpec, deadline sim.Time) (*Result, error) {
	if len(tasks) > len(s.Cores) {
		return nil, fmt.Errorf("ssd: %d tasks for %d cores", len(tasks), len(s.Cores))
	}
	if deadline <= 0 {
		deadline = 100 * sim.Second
	}

	engine := firmware.New(firmware.Config{
		PageSize: s.Opt.Flash.PageSize,
		Path:     s.DataPath(),
		Plane:    s.Opt.DataPlane,
	}, s.Sched, s.FTL, s.DRAM, s.Xbar)
	engine.Tel = firmware.NewTel(s.Opt.Telemetry)

	start := s.Sched.Now()
	req := s.Opt.Requests.Begin("offload", s.reqLabel, int64(start))
	req.SetTenant(s.reqTenant)
	s.reqLabel, s.reqTenant = "", ""
	engine.Req = req
	// Per-core baselines at submission: cumulative stats and local clocks,
	// so the request's core-side accounting is an exact delta.
	var baseStats []cpu.Stats
	var baseLocal []sim.Time
	if req != nil {
		for i := range tasks {
			baseStats = append(baseStats, s.Cores[i].Stats())
			baseLocal = append(baseLocal, s.Cores[i].LocalTime())
		}
	}
	reqDone := false
	defer func() {
		if req != nil && !reqDone {
			s.Opt.Requests.Abort(req) // failed request: recycle, don't record
		}
	}()
	var fwTasks []firmware.Task
	var totalIn int64
	for i, t := range tasks {
		core := s.Cores[i]
		// Fresh stream-buffer state per request (the firmware resets the
		// core's streams along with its PC and pipeline).
		s.Systems[i].Streams = memhier.NewStreamBuffer(s.Opt.StreamSlots, s.Opt.WindowPages, s.Opt.Flash.PageSize)
		for j := range s.Systems[i].Streams.Out {
			s.Systems[i].Streams.Out[j] = memhier.NewOutStream(s.Opt.OutWindowPages, s.Opt.Flash.PageSize)
		}
		// Fresh streams need the shared telemetry bundle re-attached.
		s.Systems[i].Streams.AttachTel(s.streamTel)
		core.LoadProgram(t.Program)
		for r, v := range t.Regs {
			core.SetReg(r, v)
		}
		if len(t.Scratch) > 0 {
			if t.StateBase >= memhier.DRAMBase || t.StateBase < memhier.ScratchpadBase {
				s.Systems[i].Backing.WriteRange(t.StateBase, t.Scratch)
			} else {
				if s.Systems[i].Scratchpad == nil {
					return nil, fmt.Errorf("ssd: task %d preloads scratchpad but %s has none", i, s.Opt.Arch)
				}
				if err := s.Systems[i].Scratchpad.LoadBytes(t.StateBase-memhier.ScratchpadBase, t.Scratch); err != nil {
					return nil, err
				}
			}
		}
		for _, in := range t.Inputs {
			totalIn += in.TotalBytes()
		}
		fwTasks = append(fwTasks, firmware.Task{
			Core:    core,
			CoreID:  i,
			Inputs:  t.Inputs,
			Outputs: t.Outputs,
		})
		s.Sched.Add(core)
	}
	if err := engine.Submit(fwTasks); err != nil {
		return nil, err
	}
	if s.Opt.Log != nil {
		s.Opt.Log.Debug("offload submitted",
			"arch", s.Opt.Arch.String(), "tasks", len(tasks), "input_bytes", totalIn)
	}
	if _, err := s.Sched.Run(deadline); err != nil {
		// A data-plane failure leaves cores waiting forever; surface the
		// root cause rather than the resulting scheduler deadlock.
		if ferr := engine.Err(); ferr != nil {
			return nil, fmt.Errorf("ssd: %s firmware: %w", s.Opt.Arch, ferr)
		}
		return nil, fmt.Errorf("ssd: %s: %w", s.Opt.Arch, err)
	}
	for i := range tasks {
		if err := s.Cores[i].Err(); err != nil {
			return nil, fmt.Errorf("ssd: %s core %d: %w", s.Opt.Arch, i, err)
		}
	}
	if err := engine.Err(); err != nil {
		return nil, fmt.Errorf("ssd: %s firmware: %w", s.Opt.Arch, err)
	}
	if !engine.Done() {
		return nil, fmt.Errorf("ssd: %s: request incomplete at deadline %v", s.Opt.Arch, deadline)
	}

	dur := engine.CompletionTime() - start
	if dur < 0 {
		dur = 0
	}
	if req != nil {
		for i := range tasks {
			st := s.Cores[i].Stats()
			base := baseStats[i]
			req.SetCoreDelta(i,
				int64(baseLocal[i]),
				int64(st.BusyTime-base.BusyTime),
				int64(st.StallTime[cpu.StallMem]-base.StallTime[cpu.StallMem]),
				int64(st.StallTime[cpu.StallStreamWait]-base.StallTime[cpu.StallStreamWait]),
				int64(st.StallTime[cpu.StallOutFull]-base.StallTime[cpu.StallOutFull]),
				int64(st.StallTime[cpu.StallExec]-base.StallTime[cpu.StallExec]),
				st.Instructions-base.Instructions,
				st.Dispatches-base.Dispatches)
		}
		complete := int64(sim.MaxT(engine.CompletionTime(), start))
		if tel := s.Opt.Telemetry; tel != nil {
			tel.Track("fw").FlowEnd("req", complete, int64(req.ID))
		}
		s.Opt.Requests.Complete(req, complete)
		reqDone = true
	}
	if s.Opt.Log != nil {
		s.Opt.Log.Debug("offload complete",
			"arch", s.Opt.Arch.String(), "duration_ps", int64(dur), "input_bytes", totalIn)
	}
	res := &Result{Duration: dur, InputBytes: totalIn}
	for i, t := range tasks {
		var outs [][]byte
		for j := range t.Outputs {
			outs = append(outs, engine.Collected(i, j))
		}
		res.Outputs = append(res.Outputs, outs)
		res.CoreStats = append(res.CoreStats, s.Cores[i].Stats())
		regs := make([]uint32, 32)
		for r := 0; r < 32; r++ {
			regs[r] = s.Cores[i].Reg(uint8(r))
		}
		res.FinalRegs = append(res.FinalRegs, regs)
	}
	return res, nil
}
