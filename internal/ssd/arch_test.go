package ssd

import (
	"encoding/json"
	"testing"
)

func TestArchTextRoundTrip(t *testing.T) {
	for _, a := range AllArchs() {
		txt, err := a.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back Arch
		if err := back.UnmarshalText(txt); err != nil {
			t.Fatalf("%s: %v", txt, err)
		}
		if back != a {
			t.Fatalf("round trip %v -> %s -> %v", a, txt, back)
		}
	}
	var bad Arch
	if err := bad.UnmarshalText([]byte("NotAnArch")); err == nil {
		t.Fatal("unknown architecture accepted")
	}
}

// Arch-keyed maps are what the -json output serializes; keys must be the
// configuration names, not integers.
func TestArchJSONMapKeys(t *testing.T) {
	b, err := json.Marshal(map[Arch]float64{AssasinSbCache: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `{"AssasinSb$":1.5}` {
		t.Fatalf("map marshals as %s", b)
	}
	var back map[Arch]float64
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back[AssasinSbCache] != 1.5 {
		t.Fatalf("unmarshal lost the key: %v", back)
	}
}
