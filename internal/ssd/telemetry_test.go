package ssd

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"assasin/internal/cpu"
	"assasin/internal/firmware"
	"assasin/internal/kernels"
	"assasin/internal/telemetry"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden telemetry trace under testdata/")

// runStatTelemetry offloads a tiny Table II Stat workload (the survey's
// first row) on a fresh AssasinSb drive with the given sink attached.
func runStatTelemetry(t *testing.T, tel *telemetry.Sink, mode cpu.ExecMode) *Result {
	t.Helper()
	data := makeWords(16<<10, 7)
	tel.StartRun("Stat/AssasinSb")
	s := New(Options{Arch: AssasinSb, Cores: 2, Exec: mode, Telemetry: tel})
	lpas, err := s.InstallBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunKernel(KernelRun{
		Kernel:     kernels.Stat{},
		Inputs:     [][]int{lpas},
		InputBytes: []int64{int64(len(data))},
		RecordSize: 4,
		Cores:      2,
		OutKind:    firmware.OutDiscard,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.PublishStats()
	return res
}

func TestTelemetryCountersNonzero(t *testing.T) {
	tel := telemetry.NewSink()
	runStatTelemetry(t, tel, cpu.ExecFused)

	for _, c := range [][2]string{
		{"flash", "senses"},
		{"flash", "transfers"},
		{"flash", "transfer_bytes"},
		{"xbar", "grants"},
		{"xbar", "bytes"},
		{"stream", "push_pages"},
		{"stream", "push_bytes"},
		{"ftl", "lookups"},
		{"sched", "dispatches"},
		{"fw", "pages_fed"},
		{"fw", "tasks_submitted"},
		{"fw", "tasks_completed"},
	} {
		if v := tel.CounterValue(c[0], c[1]); v <= 0 {
			t.Errorf("counter %s/%s = %d, want > 0", c[0], c[1], v)
		}
	}
	snap := tel.Metrics()
	if g, ok := snap.Gauges["flash/ch0_busy_ps"]; !ok || g.Value <= 0 {
		t.Errorf("flash/ch0_busy_ps gauge = %+v, want > 0", g)
	}
	if snap.TraceEvents == 0 {
		t.Error("no trace events recorded")
	}
	if snap.TraceDropped != 0 {
		t.Errorf("dropped %d events on a tiny workload", snap.TraceDropped)
	}
}

// TestTelemetryGoldenChromeTrace pins the exported Chrome trace for the
// tiny Stat workload. The simulation is deterministic, so the file is
// byte-stable; regenerate with go test ./internal/ssd -run Golden -update
// after an intentional timing or instrumentation change.
func TestTelemetryGoldenChromeTrace(t *testing.T) {
	tel := telemetry.NewSink()
	runStatTelemetry(t, tel, cpu.ExecFused)

	var buf bytes.Buffer
	if err := tel.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	// Structural validity regardless of golden contents.
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}
	var spans, instants, meta int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			spans++
			if e.Dur < 0 || e.Ts < 0 {
				t.Fatalf("negative span timing: %+v", e)
			}
		case "i":
			instants++
		case "M":
			meta++
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	if spans == 0 || instants == 0 || meta == 0 {
		t.Fatalf("trace missing event classes: %d spans, %d instants, %d metadata", spans, instants, meta)
	}

	golden := filepath.Join("testdata", "golden_trace.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace deviates from %s (%d vs %d bytes); run with -update if the change is intentional",
			golden, buf.Len(), len(want))
	}
}

// TestTelemetryFusedPreciseReconcile checks that the fused macro-execution
// engine, the compiled threaded-code engine and the precise interpreter all
// emit identical traces: the fast engines' invariant (every Run call
// returns at the same local-time boundary) means span boundaries, instants,
// and metrics all agree at dispatch-slice granularity.
func TestTelemetryFusedPreciseReconcile(t *testing.T) {
	telP := telemetry.NewSink()
	runStatTelemetry(t, telP, cpu.ExecPrecise)
	evP := telP.Events()
	var bufP bytes.Buffer
	if err := telP.WriteMetricsJSON(&bufP); err != nil {
		t.Fatal(err)
	}

	for _, mode := range []cpu.ExecMode{cpu.ExecFused, cpu.ExecCompiled} {
		telF := telemetry.NewSink()
		runStatTelemetry(t, telF, mode)

		evF := telF.Events()
		if len(evF) == 0 {
			t.Fatalf("%v run recorded no events", mode)
		}
		if len(evF) != len(evP) {
			t.Fatalf("event count mismatch: %v %d, precise %d", mode, len(evF), len(evP))
		}
		for i := range evF {
			f, err := json.Marshal(evF[i])
			if err != nil {
				t.Fatal(err)
			}
			p, err := json.Marshal(evP[i])
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(f, p) {
				t.Fatalf("event %d diverges:\n  %v: %s\n  precise: %s", i, mode, f, p)
			}
		}

		// The "exec" spans specifically must exist and reconcile — they are
		// the per-dispatch compute record every engine emits.
		var execSpans int
		for _, e := range evF {
			if e.Name == "exec" {
				execSpans++
			}
		}
		if execSpans == 0 {
			t.Fatalf("%v run recorded no exec spans", mode)
		}

		// Metrics agree too (instruction-level counters are mode-independent).
		var bufF bytes.Buffer
		if err := telF.WriteMetricsJSON(&bufF); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bufF.Bytes(), bufP.Bytes()) {
			t.Errorf("metrics snapshots diverge between %v and precise modes", mode)
		}
	}
}

// TestTelemetryCompiledMatchesGoldenTrace pins the compiled engine's Chrome
// trace to the same golden the fused engine produces: the translation
// changes how instructions execute, not when, so the exported trace must be
// byte-identical.
func TestTelemetryCompiledMatchesGoldenTrace(t *testing.T) {
	tel := telemetry.NewSink()
	runStatTelemetry(t, tel, cpu.ExecCompiled)

	var buf bytes.Buffer
	if err := tel.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "golden_trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("compiled trace deviates from the fused golden (%d vs %d bytes)", buf.Len(), len(want))
	}
}
