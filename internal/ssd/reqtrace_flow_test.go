package ssd

import (
	"bytes"
	"encoding/json"
	"testing"

	"assasin/internal/firmware"
	"assasin/internal/kernels"
	"assasin/internal/telemetry"
	"assasin/internal/telemetry/reqtrace"
)

// TestRequestFlowEvents checks the Perfetto flow-event side of request
// tracing: a traced offload emits one flow start at submission on the
// firmware track, steps at task halts on the core tracks, and a terminating
// flow end at completion — all in the "req" category and bound to the
// request's id, so Perfetto draws arrows from submission through every
// involved core to completion.
func TestRequestFlowEvents(t *testing.T) {
	tel := telemetry.NewSink()
	tracer := reqtrace.New(tel, reqtrace.Config{TopK: 2})
	data := makeWords(16<<10, 7)
	tel.StartRun("Stat/AssasinSb")
	s := New(Options{Arch: AssasinSb, Cores: 2, Telemetry: tel, Requests: tracer})
	lpas, err := s.InstallBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunKernel(KernelRun{
		Kernel:     kernels.Stat{},
		Inputs:     [][]int{lpas},
		InputBytes: []int64{int64(len(data))},
		RecordSize: 4,
		Cores:      2,
		OutKind:    firmware.OutDiscard,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tracer.Count() != 1 {
		t.Fatalf("traced %d requests, want 1", tracer.Count())
	}
	sum := tracer.Summary("Stat/AssasinSb")
	if len(sum.Slowest) != 1 || sum.Slowest[0].LatencyPs != int64(res.Duration) {
		t.Fatalf("summary = %+v, want one request with latency %d", sum.Slowest, int64(res.Duration))
	}
	task := sum.Slowest[0].Tasks[0]
	if task.PagesFed <= 0 || task.BytesFed <= 0 || task.SensePs <= 0 {
		t.Fatalf("feeder accounting empty: %+v", task)
	}

	var buf bytes.Buffer
	if err := tel.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string  `json:"ph"`
			Cat string  `json:"cat"`
			ID  string  `json:"id"`
			BP  string  `json:"bp"`
			Ts  float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var starts, steps, ends int
	ids := map[string]bool{}
	var startTs, endTs float64
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "s", "t", "f":
			if e.Cat != "req" {
				t.Fatalf("flow event without req category: %+v", e)
			}
			if e.ID == "" {
				t.Fatalf("flow event without id: %+v", e)
			}
			ids[e.ID] = true
			switch e.Ph {
			case "s":
				starts++
				startTs = e.Ts
				if e.BP != "" {
					t.Fatalf("flow start with binding point: %+v", e)
				}
			case "t":
				steps++
				if e.BP != "e" {
					t.Fatalf("flow step without enclosing binding: %+v", e)
				}
			case "f":
				ends++
				endTs = e.Ts
				if e.BP != "e" {
					t.Fatalf("flow end without enclosing binding: %+v", e)
				}
			}
		}
	}
	if starts != 1 || ends != 1 || steps < 1 {
		t.Fatalf("flow events: %d starts, %d steps, %d ends (want 1, >=1, 1)", starts, steps, ends)
	}
	if len(ids) != 1 {
		t.Fatalf("flow events bind %d distinct ids, want 1: %v", len(ids), ids)
	}
	if endTs < startTs {
		t.Fatalf("flow end at %f before start at %f", endTs, startTs)
	}
}
