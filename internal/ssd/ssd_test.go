package ssd

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"assasin/internal/firmware"
	"assasin/internal/kernels"
)

// makeWords returns n bytes of deterministic pseudo-random data.
func makeWords(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	data := make([]byte, n)
	rng.Read(data)
	return data
}

// runStat offloads the Stat kernel over data on a fresh SSD of arch a and
// returns the result plus the expected per-core sums.
func runStat(t *testing.T, a Arch, data []byte, cores int) (*Result, []uint32) {
	t.Helper()
	s := New(Options{Arch: a, Cores: cores})
	lpas, err := s.InstallBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunKernel(KernelRun{
		Kernel:     kernels.Stat{},
		Inputs:     [][]int{lpas},
		InputBytes: []int64{int64(len(data))},
		RecordSize: 4,
		Cores:      cores,
		OutKind:    firmware.OutDiscard,
	})
	if err != nil {
		t.Fatalf("%v: %v", a, err)
	}
	ranges := PartitionBytes(int64(len(data)), cores, 4)
	var want []uint32
	for _, r := range ranges {
		want = append(want, kernels.Stat{}.RefSum(data[r.Start:r.End]))
	}
	return res, want
}

func TestStatOffloadAllArchitectures(t *testing.T) {
	data := makeWords(128<<10, 1)
	for _, a := range AllArchs() {
		res, want := runStat(t, a, data, 4)
		for i, w := range want {
			if got := res.FinalRegs[i][8]; got != w { // S0 = x8
				t.Errorf("%v core %d sum = %#x, want %#x", a, i, got, w)
			}
		}
		if res.Duration <= 0 {
			t.Errorf("%v: zero duration", a)
		}
	}
}

func TestStatMemoryWallOrdering(t *testing.T) {
	data := makeWords(512<<10, 2)
	tp := map[Arch]float64{}
	for _, a := range AllArchs() {
		res, _ := runStat(t, a, data, 8)
		tp[a] = res.Throughput()
	}
	// The paper's Fig. 13 ordering for the memory-bound Stat kernel:
	// ASSASIN variants beat Prefetch which beats (or matches) Baseline;
	// stream buffers beat software-managed scratchpads.
	if !(tp[AssasinSb] > tp[Baseline]) {
		t.Errorf("AssasinSb (%.0f MB/s) not faster than Baseline (%.0f MB/s)", tp[AssasinSb]/1e6, tp[Baseline]/1e6)
	}
	if !(tp[AssasinSb] >= tp[AssasinSp]) {
		t.Errorf("AssasinSb (%.0f) < AssasinSp (%.0f)", tp[AssasinSb]/1e6, tp[AssasinSp]/1e6)
	}
	if !(tp[Prefetch] >= tp[Baseline]) {
		t.Errorf("Prefetch (%.0f) < Baseline (%.0f)", tp[Prefetch]/1e6, tp[Baseline]/1e6)
	}
	if sp := tp[AssasinSb] / tp[Baseline]; sp < 1.3 || sp > 4 {
		t.Errorf("Sb/Baseline speedup %.2f outside plausible range", sp)
	}
	// Sb$ == Sb when state fits the scratchpad.
	ratio := tp[AssasinSbCache] / tp[AssasinSb]
	if ratio < 0.97 || ratio > 1.03 {
		t.Errorf("Sb$ deviates from Sb: ratio %.3f", ratio)
	}
}

func TestFilterOffloadFunctional(t *testing.T) {
	const tupleSize = 32
	nTuples := 4096
	data := make([]byte, nTuples*tupleSize)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < nTuples; i++ {
		for f := 0; f < tupleSize/4; f++ {
			binary.LittleEndian.PutUint32(data[i*tupleSize+f*4:], uint32(rng.Intn(1000)))
		}
	}
	k := kernels.Filter{
		TupleSize: tupleSize,
		Preds: []kernels.FieldPred{
			{Offset: 0, Lo: 100, Hi: 600},
			{Offset: 16, Lo: 0, Hi: 800},
		},
	}
	for _, a := range []Arch{Baseline, AssasinSb, AssasinSp, UDP} {
		s := New(Options{Arch: a, Cores: 4})
		lpas, err := s.InstallBytes(data)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.RunKernel(KernelRun{
			Kernel:     k,
			Inputs:     [][]int{lpas},
			InputBytes: []int64{int64(len(data))},
			RecordSize: tupleSize,
			Cores:      4,
			OutKind:    firmware.OutToHost,
			Collect:    true,
		})
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		var got []byte
		for _, outs := range res.Outputs {
			got = append(got, outs[0]...)
		}
		ref, err := k.Reference([][]byte{data})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, ref[0]) {
			t.Fatalf("%v: filter output mismatch: got %d bytes, want %d", a, len(got), len(ref[0]))
		}
		if len(ref[0]) == 0 || len(ref[0]) == len(data) {
			t.Fatal("degenerate selectivity; fix test data")
		}
	}
}

func TestRAID4WritePathOffload(t *testing.T) {
	k := kernels.RAID4{K: 4}
	streamLen := 64 << 10
	var inputs [][]byte
	var lpaLists [][]int
	s := New(Options{Arch: AssasinSb, Cores: 2})
	for i := 0; i < 4; i++ {
		d := makeWords(streamLen, int64(10+i))
		inputs = append(inputs, d)
		lpas, err := s.InstallBytes(d)
		if err != nil {
			t.Fatal(err)
		}
		lpaLists = append(lpaLists, lpas)
	}
	res, err := s.RunKernel(KernelRun{
		Kernel:     k,
		Inputs:     lpaLists,
		InputBytes: []int64{int64(streamLen), int64(streamLen), int64(streamLen), int64(streamLen)},
		RecordSize: 4,
		Cores:      2,
		OutKind:    firmware.OutToFlash,
		Collect:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	for _, outs := range res.Outputs {
		got = append(got, outs[0]...)
	}
	ref, _ := k.Reference(inputs)
	if !bytes.Equal(got, ref[0]) {
		t.Fatalf("parity mismatch: got %d bytes want %d", len(got), len(ref[0]))
	}
	if st := s.FTL.Stats(); st.HostWrites == 0 {
		t.Error("parity never written to flash")
	}
}

func TestRAID6TwoOutputs(t *testing.T) {
	k := kernels.RAID6{K: 4}
	streamLen := 16 << 10
	var inputs [][]byte
	var lpaLists [][]int
	s := New(Options{Arch: AssasinSb, Cores: 2})
	for i := 0; i < 4; i++ {
		d := makeWords(streamLen, int64(20+i))
		inputs = append(inputs, d)
		lpas, err := s.InstallBytes(d)
		if err != nil {
			t.Fatal(err)
		}
		lpaLists = append(lpaLists, lpas)
	}
	res, err := s.RunKernel(KernelRun{
		Kernel:     k,
		Inputs:     lpaLists,
		InputBytes: []int64{int64(streamLen), int64(streamLen), int64(streamLen), int64(streamLen)},
		RecordSize: 4,
		Cores:      2,
		OutKind:    firmware.OutToHost,
		Collect:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var gotP, gotQ []byte
	for _, outs := range res.Outputs {
		gotP = append(gotP, outs[0]...)
		gotQ = append(gotQ, outs[1]...)
	}
	ref, _ := k.Reference(inputs)
	if !bytes.Equal(gotP, ref[0]) {
		t.Fatal("P parity mismatch")
	}
	if !bytes.Equal(gotQ, ref[1]) {
		t.Fatal("Q parity mismatch")
	}
}

func TestScanSaturatesFlash(t *testing.T) {
	data := makeWords(2<<20, 5)
	s := New(Options{Arch: AssasinSb, Cores: 8})
	lpas, err := s.InstallBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunKernel(KernelRun{
		Kernel:     kernels.Scan{},
		Inputs:     [][]int{lpas},
		InputBytes: []int64{int64(len(data))},
		RecordSize: 16,
		Cores:      8,
		OutKind:    firmware.OutDiscard,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 8 cores at ~0.94 GB/s against an 8 GB/s array: expect multi-GB/s.
	if tp := res.Throughput(); tp < 4e9 {
		t.Errorf("scan throughput %.2f GB/s, want > 4", tp/1e9)
	}
	// Every core consumed exactly its share.
	ranges := PartitionBytes(int64(len(data)), 8, 16)
	for i, r := range ranges {
		if got := res.CoreStats[i].StreamInBytes; got != r.Len() {
			t.Errorf("core %d consumed %d bytes, want %d", i, got, r.Len())
		}
	}
}

func TestPartitionBytes(t *testing.T) {
	rs := PartitionBytes(1000, 4, 100)
	if len(rs) != 4 {
		t.Fatalf("ranges = %v", rs)
	}
	var total int64
	prev := int64(0)
	for _, r := range rs {
		if r.Start != prev {
			t.Fatalf("gap in partition: %v", rs)
		}
		if r.Start%100 != 0 {
			t.Fatalf("range not record aligned: %v", r)
		}
		total += r.Len()
		prev = r.End
	}
	if total != 1000 {
		t.Fatalf("coverage %d", total)
	}
	// Fewer records than cores.
	rs = PartitionBytes(200, 8, 100)
	if len(rs) != 2 {
		t.Fatalf("small partition = %v", rs)
	}
	// Tail bytes go to the last range.
	rs = PartitionBytes(250, 2, 100)
	if rs[len(rs)-1].End != 250 {
		t.Fatalf("tail lost: %v", rs)
	}
}

func TestSpecForRange(t *testing.T) {
	s := New(Options{Arch: AssasinSb, Cores: 1})
	ps := int64(s.Opt.Flash.PageSize)
	lpas := make([]int, 10)
	for i := range lpas {
		lpas[i] = i
	}
	spec := s.SpecForRange(lpas, ByteRange{ps + 100, 3*ps - 50})
	if len(spec.LPAs) != 2 || spec.LPAs[0] != 1 {
		t.Fatalf("spec pages = %v", spec.LPAs)
	}
	if spec.Offset != 100 || spec.Length != 2*ps-150 {
		t.Fatalf("spec window = %+v", spec)
	}
}

func TestArchStrings(t *testing.T) {
	if Baseline.String() != "Baseline" || AssasinSbCache.String() != "AssasinSb$" {
		t.Error("arch names wrong")
	}
	if len(AllArchs()) != 6 {
		t.Error("want 6 architectures")
	}
}

func TestSequentialOffloads(t *testing.T) {
	s := New(Options{Arch: AssasinSb, Cores: 2})
	dataA := makeWords(64<<10, 9)
	dataB := makeWords(32<<10, 10)
	lpasA, _ := s.InstallBytes(dataA)
	lpasB, _ := s.InstallBytes(dataB)
	runFor := func(lpas []int, n int) *Result {
		t.Helper()
		res, err := s.RunKernel(KernelRun{
			Kernel: kernels.Stat{}, Inputs: [][]int{lpas},
			InputBytes: []int64{int64(n)}, RecordSize: 4, Cores: 2,
			OutKind: firmware.OutDiscard,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	resA := runFor(lpasA, len(dataA))
	resB := runFor(lpasB, len(dataB))
	for i, r := range PartitionBytes(int64(len(dataA)), 2, 4) {
		if got, want := resA.FinalRegs[i][8], (kernels.Stat{}).RefSum(dataA[r.Start:r.End]); got != want {
			t.Fatalf("request A core %d sum wrong", i)
		}
	}
	for i, r := range PartitionBytes(int64(len(dataB)), 2, 4) {
		if got, want := resB.FinalRegs[i][8], (kernels.Stat{}).RefSum(dataB[r.Start:r.End]); got != want {
			t.Fatalf("request B core %d sum wrong", i)
		}
	}
	if resA.Duration <= 0 || resB.Duration <= 0 {
		t.Fatal("durations not per-request")
	}
	// The second request's duration is for its own (smaller) work, not the
	// cumulative timeline.
	if resB.Duration > resA.Duration {
		t.Fatalf("second request duration %v exceeds first %v", resB.Duration, resA.Duration)
	}
}
