package ssd

import (
	"bytes"
	"math/rand"
	"testing"

	"assasin/internal/firmware"
	"assasin/internal/kernels"
)

// TestSoakAllKernelsAllArchitectures randomly sizes inputs and verifies
// every splittable kernel's output bit-for-bit on every architecture — the
// broad functional-equivalence sweep behind the performance claims.
func TestSoakAllKernelsAllArchitectures(t *testing.T) {
	if testing.Short() {
		t.Skip("soak is slow")
	}
	rng := rand.New(rand.NewSource(2022))
	type workload struct {
		name    string
		kernel  kernels.Kernel
		rec     int
		nIn     int
		makeIn  func(n int, seed int64) []byte
		outKind firmware.OutKind
	}
	mlp := kernels.MLP{In: 8, Hidden: 8}
	workloads := []workload{
		{"filter", kernels.Filter{TupleSize: 16, Preds: []kernels.FieldPred{{Offset: 0, Lo: 100, Hi: 1 << 30}}}, 16, 1, randSoak, firmware.OutToHost},
		{"select", kernels.Select{TupleSize: 16, FieldOffsets: []int{4, 12}}, 16, 1, randSoak, firmware.OutToHost},
		{"raid4", kernels.RAID4{K: 2}, 4, 2, randSoak, firmware.OutToFlash},
		{"dedup", kernels.Dedup{ChunkSize: 64, TableEntries: 256}, 64, 1, dupSoak, firmware.OutToHost},
		{"replicate", kernels.Replicate{}, 4, 1, randSoak, firmware.OutToHost},
		{"mlp", mlp, mlp.RecordSize(), 1, smallValSoak, firmware.OutToHost},
	}
	for _, w := range workloads {
		for _, arch := range AllArchs() {
			cores := 1 + rng.Intn(4)
			size := (1 + rng.Intn(4)) * 16 << 10
			size -= size % (w.rec * cores * 4)
			if size == 0 {
				size = w.rec * cores * 4
			}
			var inputs [][]byte
			var lpaLists [][]int
			var lengths []int64
			s := New(Options{Arch: arch, Cores: cores})
			for i := 0; i < w.nIn; i++ {
				in := w.makeIn(size, rng.Int63())
				inputs = append(inputs, in)
				lpas, err := s.InstallBytes(in)
				if err != nil {
					t.Fatal(err)
				}
				lpaLists = append(lpaLists, lpas)
				lengths = append(lengths, int64(len(in)))
			}
			res, err := s.RunKernel(KernelRun{
				Kernel:     w.kernel,
				Inputs:     lpaLists,
				InputBytes: lengths,
				RecordSize: w.rec,
				Cores:      cores,
				OutKind:    w.outKind,
				Collect:    true,
			})
			if err != nil {
				t.Fatalf("%s on %v (%d cores, %d B): %v", w.name, arch, cores, size, err)
			}
			ranges := PartitionBytes(int64(len(inputs[0])), cores, w.rec)
			for slot := 0; slot < w.kernel.Outputs(); slot++ {
				var got []byte
				for _, outs := range res.Outputs {
					got = append(got, outs[slot]...)
				}
				var want []byte
				for _, r := range ranges {
					var parts [][]byte
					for _, in := range inputs {
						parts = append(parts, in[r.Start:r.End])
					}
					ref, err := w.kernel.Reference(parts)
					if err != nil {
						t.Fatal(err)
					}
					want = append(want, ref[slot]...)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("%s on %v: output %d mismatch (%d vs %d bytes)", w.name, arch, slot, len(got), len(want))
				}
			}
		}
	}
}

func randSoak(n int, seed int64) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func dupSoak(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	chunk := make([]byte, 64)
	out := make([]byte, 0, n)
	for len(out)+64 <= n {
		if rng.Intn(2) == 0 {
			rng.Read(chunk)
		}
		out = append(out, chunk...)
	}
	for len(out) < n {
		out = append(out, 0)
	}
	return out[:n-n%64]
}

func smallValSoak(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, n)
	for i := 0; i+4 <= n; i += 4 {
		out[i] = byte(rng.Intn(128))
	}
	return out
}
