package ssd

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"assasin/internal/firmware"
	"assasin/internal/kernels"
	"assasin/internal/telemetry"
	"assasin/internal/telemetry/analyze"
	"assasin/internal/telemetry/timeline"
)

// runStatTimeline offloads the tiny Table II Stat workload with a sim-time
// sampler attached and returns the finished timeline plus the run result.
func runStatTimeline(t *testing.T, tel *telemetry.Sink, cfg timeline.Config) (*timeline.Timeline, *Result) {
	t.Helper()
	data := makeWords(16<<10, 7)
	if tel != nil {
		tel.StartRun("Stat/AssasinSb")
	}
	sampler := timeline.New(tel, cfg)
	s := New(Options{Arch: AssasinSb, Cores: 2, Telemetry: tel, Timeline: sampler})
	lpas, err := s.InstallBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunKernel(KernelRun{
		Kernel:     kernels.Stat{},
		Inputs:     [][]int{lpas},
		InputBytes: []int64{int64(len(data))},
		RecordSize: 4,
		Cores:      2,
		OutKind:    firmware.OutDiscard,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.PublishStats()
	return sampler.Finish("Stat/AssasinSb", int64(res.Duration)), res
}

// TestTimelineClassSeriesCoverRun checks the SSD-layer probe wiring: the
// five stall-class rate series integrate to exactly the per-core cycle
// decomposition the result reports, and segmentation found phases.
func TestTimelineClassSeriesCoverRun(t *testing.T) {
	tel := telemetry.NewSink()
	tl, res := runStatTimeline(t, tel, timeline.Config{IntervalPs: 1_000_000})

	if n := len(tl.TimesPs); n == 0 || tl.TimesPs[n-1] != int64(res.Duration) {
		t.Fatalf("timeline does not end at run duration: times %v, duration %d", tl.TimesPs, res.Duration)
	}
	var wantBusy int64
	for _, st := range res.CoreStats {
		wantBusy += int64(st.BusyTime)
	}
	se := tl.SeriesByKey(timeline.ClassPrefix + analyze.ClassCoreBusy)
	if se == nil {
		t.Fatalf("no %s series; series: %d", timeline.ClassPrefix+analyze.ClassCoreBusy, len(tl.Series))
	}
	var gotBusy int64
	for _, v := range se.Values {
		gotBusy += v
	}
	if gotBusy != wantBusy {
		t.Errorf("class/core-busy integrates to %d ps, core stats say %d ps", gotBusy, wantBusy)
	}
	if len(tl.Phases) == 0 {
		t.Error("no phases segmented")
	}
	// Sink metrics are sampled alongside the probes.
	if tl.SeriesByKey("fw/pages_fed") == nil {
		t.Error("sink counter fw/pages_fed has no timeline series")
	}
}

// TestTimelineClassGaugesPublished checks PublishStats exposes the class
// totals as gauges (the diff engine's metrics-only fallback).
func TestTimelineClassGaugesPublished(t *testing.T) {
	tel := telemetry.NewSink()
	_, res := runStatTimeline(t, tel, timeline.Config{IntervalPs: 1_000_000})

	snap := tel.Metrics()
	var wantBusy int64
	for _, st := range res.CoreStats {
		wantBusy += int64(st.BusyTime)
	}
	g, ok := snap.Gauges["class/"+analyze.ClassCoreBusy+"_ps"]
	if !ok || g.Value != wantBusy {
		t.Errorf("class/core-busy_ps gauge = %+v, want %d", g, wantBusy)
	}
	for _, class := range analyze.Classes() {
		if _, ok := snap.Gauges["class/"+class+"_ps"]; !ok {
			t.Errorf("class gauge %s_ps not published", class)
		}
	}
}

// TestTimelineTraceClassesMirrored checks that TraceClasses adds Chrome
// "ph":"C" counter samples to the sink's event trace.
func TestTimelineTraceClassesMirrored(t *testing.T) {
	tel := telemetry.NewSink()
	runStatTimeline(t, tel, timeline.Config{IntervalPs: 1_000_000, TraceClasses: true})

	counters := 0
	for _, e := range tel.Events() {
		if e.Phase == "C" {
			counters++
		}
	}
	if counters == 0 {
		t.Error("TraceClasses produced no counter events")
	}
	var buf bytes.Buffer
	if err := tel.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"ph":"C"`)) {
		t.Error("Chrome export carries no counter events")
	}
}

// TestTimelineGoldenJSON pins the sampled timeline for the tiny Stat
// workload. The sampler is driven by simulated time, so the file is
// byte-stable; regenerate with go test ./internal/ssd -run Golden -update
// after an intentional timing or instrumentation change.
func TestTimelineGoldenJSON(t *testing.T) {
	tel := telemetry.NewSink()
	tl, _ := runStatTimeline(t, tel, timeline.Config{IntervalPs: 1_000_000})

	var buf bytes.Buffer
	if err := tl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden_timeline.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("timeline deviates from %s (%d vs %d bytes); run with -update if the change is intentional",
			golden, buf.Len(), len(want))
	}
}
