package ssd

import (
	"fmt"

	"assasin/internal/firmware"
	"assasin/internal/kernels"
	"assasin/internal/memhier"
)

// StyleFor returns the kernel lowering for an architecture: the stream ISA
// for the stream-buffer ASSASIN variants, software-managed pointers for
// everything else.
func StyleFor(a Arch) kernels.Style {
	if a.IsStream() {
		return kernels.StyleStream
	}
	return kernels.StyleSoftware
}

// StateBaseFor returns where kernel function state lives: the scratchpad for
// scratchpad architectures, SSD DRAM (accessed through the cache) for the
// cache-hierarchy architectures.
func StateBaseFor(a Arch) uint32 {
	switch a {
	case Baseline, Prefetch:
		return memhier.DRAMBase
	default:
		return memhier.ScratchpadBase
	}
}

// BuildParamsFor assembles kernel build parameters for this SSD.
func (s *SSD) BuildParamsFor() kernels.BuildParams {
	return kernels.BuildParams{
		Style:     StyleFor(s.Opt.Arch),
		PageSize:  s.Opt.Flash.PageSize,
		StateBase: StateBaseFor(s.Opt.Arch),
	}
}

// ByteRange is a half-open [Start, End) byte interval of a dataset.
type ByteRange struct{ Start, End int64 }

// Len returns the range length.
func (r ByteRange) Len() int64 { return r.End - r.Start }

// PartitionBytes splits total bytes into up to n record-aligned contiguous
// ranges (the storage engine's task decomposition of Section V-D). Ranges
// are balanced to within one record; fewer than n ranges are returned when
// there are fewer records than cores.
func PartitionBytes(total int64, n int, recordSize int) []ByteRange {
	if recordSize <= 0 {
		recordSize = 1
	}
	records := total / int64(recordSize)
	if records == 0 || n <= 0 {
		if total == 0 {
			return nil
		}
		return []ByteRange{{0, total}}
	}
	if int64(n) > records {
		n = int(records)
	}
	var out []ByteRange
	var prev int64
	for i := 1; i <= n; i++ {
		endRec := records * int64(i) / int64(n)
		end := endRec * int64(recordSize)
		if i == n {
			end = total // tail bytes (partial record, if any) go to the last core
		}
		out = append(out, ByteRange{prev, end})
		prev = end
	}
	return out
}

// SpecForRange builds the StreamSpec delivering dataset bytes [r.Start,
// r.End) given the dataset's backing pages.
func (s *SSD) SpecForRange(lpas []int, r ByteRange) firmware.StreamSpec {
	ps := int64(s.Opt.Flash.PageSize)
	first := r.Start / ps
	last := (r.End + ps - 1) / ps
	if last > int64(len(lpas)) {
		last = int64(len(lpas))
	}
	return firmware.StreamSpec{
		LPAs:   lpas[first:last],
		Offset: r.Start - first*ps,
		Length: r.Len(),
	}
}

// KernelRun bundles everything needed to offload one kernel over datasets.
type KernelRun struct {
	Kernel kernels.Kernel
	// Inputs[i] is the page list of input dataset i (all the same byte
	// length for multi-input kernels).
	Inputs [][]int
	// InputBytes[i] is dataset i's byte length.
	InputBytes []int64
	// RecordSize aligns the per-core partitioning.
	RecordSize int
	// Cores is how many compute engines to use (0 = all).
	Cores int
	// OutKind selects the output destination for every output stream.
	OutKind firmware.OutKind
	// Collect retains output bytes for verification.
	Collect bool
	// ChannelLocalSplit partitions by physical channel instead of by byte
	// range (the Fig. 7 fixed channel-compute alternative). Requires
	// RecordSize == PageSize.
	ChannelLocalSplit bool
}

// BuildTasks constructs per-core TaskSpecs for a kernel run.
func (s *SSD) BuildTasks(run KernelRun) ([]TaskSpec, error) {
	k := run.Kernel
	if len(run.Inputs) != k.Inputs() {
		return nil, fmt.Errorf("ssd: kernel %s wants %d inputs, got %d", k.Name(), k.Inputs(), len(run.Inputs))
	}
	cores := run.Cores
	if cores <= 0 || cores > len(s.Cores) {
		cores = len(s.Cores)
	}
	params := s.BuildParamsFor()
	prog, err := k.Build(params)
	if err != nil {
		return nil, err
	}
	// Name the shared program so statistics and kprof symbolization can
	// label samples with the kernel.
	prog.Name = k.Name()
	state := k.State()

	// Partition dataset 0 and apply the same record split to all inputs
	// (multi-input kernels have equal-length streams).
	var parts [][]firmware.StreamSpec // per core, per input
	if run.ChannelLocalSplit {
		parts, err = s.channelLocalParts(run, cores)
		if err != nil {
			return nil, err
		}
	} else {
		ranges := PartitionBytes(run.InputBytes[0], cores, run.RecordSize)
		for _, r := range ranges {
			var ins []firmware.StreamSpec
			for i := range run.Inputs {
				ins = append(ins, s.SpecForRange(run.Inputs[i], r))
			}
			parts = append(parts, ins)
		}
	}

	var tasks []TaskSpec
	for _, ins := range parts {
		lengths := make([]int64, len(ins))
		var maxLen int64
		for i, in := range ins {
			lengths[i] = in.Length
			if in.Length > maxLen {
				maxLen = in.Length
			}
		}
		if maxLen >= memhier.StreamViewStride {
			return nil, fmt.Errorf("ssd: per-core stream of %d bytes exceeds the %d view stride", maxLen, memhier.StreamViewStride)
		}
		var outs []firmware.OutTarget
		for o := 0; o < k.Outputs(); o++ {
			t := firmware.OutTarget{Kind: run.OutKind, Collect: run.Collect}
			if run.OutKind == firmware.OutToFlash {
				pages := int(maxLen/int64(s.Opt.Flash.PageSize)) + 8
				t.StartLPA = s.ReserveLPAs(pages)
			}
			outs = append(outs, t)
		}
		tasks = append(tasks, TaskSpec{
			Program:   prog,
			Inputs:    ins,
			Outputs:   outs,
			Regs:      k.Args(lengths),
			Scratch:   state,
			StateBase: params.StateBase,
		})
	}
	return tasks, nil
}

// channelLocalParts assigns each core the pages of its own channel — the
// application-specific per-channel compute architecture of Fig. 7, which
// cannot rebalance when the FTL's layout is skewed.
func (s *SSD) channelLocalParts(run KernelRun, cores int) ([][]firmware.StreamSpec, error) {
	if len(run.Inputs) != 1 {
		return nil, fmt.Errorf("ssd: channel-local split supports single-input kernels")
	}
	ps := int64(s.Opt.Flash.PageSize)
	if int64(run.RecordSize) != ps {
		return nil, fmt.Errorf("ssd: channel-local split needs page-sized records")
	}
	channels := s.Opt.Flash.Channels
	if cores < channels {
		return nil, fmt.Errorf("ssd: channel-local split needs a core per channel (%d < %d)", cores, channels)
	}
	byChannel := make([][]int, channels)
	for _, lpa := range run.Inputs[0] {
		ppa, ok := s.FTL.Lookup(lpa)
		if !ok {
			return nil, fmt.Errorf("ssd: unmapped lpa %d", lpa)
		}
		byChannel[ppa.Channel] = append(byChannel[ppa.Channel], lpa)
	}
	var parts [][]firmware.StreamSpec
	for c := 0; c < channels; c++ {
		parts = append(parts, []firmware.StreamSpec{{
			LPAs:   byChannel[c],
			Offset: 0,
			Length: int64(len(byChannel[c])) * ps,
		}})
	}
	return parts, nil
}

// RunKernel is the one-call path: build tasks, execute, and return the
// result.
func (s *SSD) RunKernel(run KernelRun) (*Result, error) {
	tasks, err := s.BuildTasks(run)
	if err != nil {
		return nil, err
	}
	if s.reqLabel == "" {
		s.SetRequestLabel(run.Kernel.Name())
	}
	return s.RunOffload(tasks, 0)
}
