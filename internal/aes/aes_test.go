package aes

import (
	"bytes"
	stdaes "crypto/aes"
	"encoding/hex"
	"math/rand"
	"testing"
)

// FIPS-197 Appendix C.1 test vector.
func TestFIPS197Vector(t *testing.T) {
	key, _ := hex.DecodeString("000102030405060708090a0b0c0d0e0f")
	pt, _ := hex.DecodeString("00112233445566778899aabbccddeeff")
	want, _ := hex.DecodeString("69c4e0d86a7b0430d8cdb78070b4c55a")
	c, err := New(key)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16)
	c.Encrypt(got, pt)
	if !bytes.Equal(got, want) {
		t.Fatalf("Encrypt = %x, want %x", got, want)
	}
	back := make([]byte, 16)
	c.Decrypt(back, got)
	if !bytes.Equal(back, pt) {
		t.Fatalf("Decrypt = %x, want %x", back, pt)
	}
}

// Second published vector (AES-128 from the original Rijndael submission).
func TestRijndaelVector(t *testing.T) {
	key, _ := hex.DecodeString("2b7e151628aed2a6abf7158809cf4f3c")
	pt, _ := hex.DecodeString("3243f6a8885a308d313198a2e0370734")
	want, _ := hex.DecodeString("3925841d02dc09fbdc118597196a0b32")
	c, _ := New(key)
	got := make([]byte, 16)
	c.Encrypt(got, pt)
	if !bytes.Equal(got, want) {
		t.Fatalf("Encrypt = %x, want %x", got, want)
	}
}

// Cross-check against the standard library across random keys and blocks.
func TestAgainstStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		key := make([]byte, 16)
		pt := make([]byte, 16)
		rng.Read(key)
		rng.Read(pt)
		ours, err := New(key)
		if err != nil {
			t.Fatal(err)
		}
		std, err := stdaes.NewCipher(key)
		if err != nil {
			t.Fatal(err)
		}
		a := make([]byte, 16)
		b := make([]byte, 16)
		ours.Encrypt(a, pt)
		std.Encrypt(b, pt)
		if !bytes.Equal(a, b) {
			t.Fatalf("trial %d: ours %x != stdlib %x (key %x pt %x)", trial, a, b, key, pt)
		}
		back := make([]byte, 16)
		ours.Decrypt(back, a)
		if !bytes.Equal(back, pt) {
			t.Fatalf("trial %d: decrypt round trip failed", trial)
		}
	}
}

func TestEncryptDecryptRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	key := make([]byte, 16)
	rng.Read(key)
	c, _ := New(key)
	for trial := 0; trial < 500; trial++ {
		pt := make([]byte, 16)
		rng.Read(pt)
		ct := make([]byte, 16)
		c.Encrypt(ct, pt)
		if bytes.Equal(ct, pt) {
			t.Fatal("ciphertext equals plaintext (vanishingly unlikely)")
		}
		back := make([]byte, 16)
		c.Decrypt(back, ct)
		if !bytes.Equal(back, pt) {
			t.Fatalf("round trip failed at trial %d", trial)
		}
	}
}

func TestECB(t *testing.T) {
	key := make([]byte, 16)
	src := make([]byte, 256)
	for i := range src {
		src[i] = byte(i)
	}
	c, _ := New(key)
	dst := make([]byte, len(src))
	c.EncryptECB(dst, src)
	// Each block must equal a standalone encryption.
	blk := make([]byte, 16)
	for i := 0; i < len(src); i += 16 {
		c.Encrypt(blk, src[i:])
		if !bytes.Equal(blk, dst[i:i+16]) {
			t.Fatalf("ECB block %d mismatch", i/16)
		}
	}
}

func TestNewRejectsBadKeySizes(t *testing.T) {
	for _, n := range []int{0, 15, 17, 24, 32} {
		if _, err := New(make([]byte, n)); err == nil {
			t.Errorf("key size %d accepted", n)
		}
	}
}

func TestSboxProperties(t *testing.T) {
	// S-box must be a permutation with no fixed points and the standard
	// anchor values.
	if sbox[0x00] != 0x63 || sbox[0x01] != 0x7c || sbox[0x53] != 0xed {
		t.Fatalf("sbox anchors wrong: %#x %#x %#x", sbox[0], sbox[1], sbox[0x53])
	}
	seen := make(map[byte]bool)
	for i := 0; i < 256; i++ {
		if sbox[i] == byte(i) {
			t.Errorf("sbox fixed point at %#x", i)
		}
		seen[sbox[i]] = true
		if invSbox[sbox[i]] != byte(i) {
			t.Errorf("invSbox broken at %#x", i)
		}
	}
	if len(seen) != 256 {
		t.Errorf("sbox is not a permutation: %d distinct", len(seen))
	}
}

func TestTablesLayout(t *testing.T) {
	key := make([]byte, 16)
	c, _ := New(key)
	rk, tables, sb := c.Tables()
	if len(rk) != 44 {
		t.Fatalf("round keys = %d words, want 44", len(rk))
	}
	if rk[0] != 0 { // zero key: first words are zero
		t.Errorf("rk[0] = %#x, want 0", rk[0])
	}
	// te identity: tables[1] is tables[0] rotated right by 8.
	for i := 0; i < 256; i++ {
		if tables[1][i] != rotr32(tables[0][i], 8) {
			t.Fatalf("te rotation identity fails at %d", i)
		}
	}
	if sb != sbox {
		t.Error("Tables returned wrong sbox")
	}
}

func BenchmarkEncrypt(b *testing.B) {
	key := make([]byte, 16)
	c, _ := New(key)
	buf := make([]byte, 16)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		c.Encrypt(buf, buf)
	}
}
