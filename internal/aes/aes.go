// Package aes implements AES-128 from first principles (SubBytes/ShiftRows/
// MixColumns and an equivalent T-table formulation). It provides the
// functional reference for the simulated AES encryption offload kernel and
// the T-tables that kernel keeps in the ASSASIN scratchpad as function
// state.
//
// Only encryption is needed by the paper's workloads (in-storage AES
// encryption of flash streams); decryption is included for completeness and
// to round-trip in tests.
package aes

import "fmt"

// BlockSize is the AES block size in bytes.
const BlockSize = 16

// KeySize is the AES-128 key size in bytes.
const KeySize = 16

// rounds for AES-128.
const rounds = 10

var (
	sbox    [256]byte
	invSbox [256]byte
	// T-tables: te[j][b] is the contribution of byte b at row j of a column
	// to the next-round column, combining SubBytes, ShiftRows and
	// MixColumns. The classic fast software formulation — 16 table lookups
	// and 16 XORs per round — is exactly the memory-access pattern the
	// simulated kernel performs against its scratchpad.
	te [4][256]uint32
	td [4][256]uint32
	// rcon round constants.
	rcon [11]byte
)

// gmul multiplies in GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1 (0x1b).
func gmul(a, b byte) byte {
	var p byte
	for b != 0 {
		if b&1 != 0 {
			p ^= a
		}
		hi := a & 0x80
		a <<= 1
		if hi != 0 {
			a ^= 0x1b
		}
		b >>= 1
	}
	return p
}

func init() {
	// Build the S-box from the multiplicative inverse + affine transform.
	// Compute inverses by brute force; a 256^2 scan at init is trivial.
	var inv [256]byte
	for a := 1; a < 256; a++ {
		for b := 1; b < 256; b++ {
			if gmul(byte(a), byte(b)) == 1 {
				inv[a] = byte(b)
				break
			}
		}
	}
	for i := 0; i < 256; i++ {
		x := inv[i]
		// affine: s = x ^ rot(x,1) ^ rot(x,2) ^ rot(x,3) ^ rot(x,4) ^ 0x63
		s := x ^ rotl8(x, 1) ^ rotl8(x, 2) ^ rotl8(x, 3) ^ rotl8(x, 4) ^ 0x63
		sbox[i] = s
		invSbox[s] = byte(i)
	}
	// T-tables.
	for i := 0; i < 256; i++ {
		s := sbox[i]
		s2 := gmul(s, 2)
		s3 := gmul(s, 3)
		t := uint32(s2)<<24 | uint32(s)<<16 | uint32(s)<<8 | uint32(s3)
		te[0][i] = t
		te[1][i] = rotr32(t, 8)
		te[2][i] = rotr32(t, 16)
		te[3][i] = rotr32(t, 24)

		is := invSbox[i]
		_ = is
		u := byte(i)
		e := gmul(u, 0x0e)
		b9 := gmul(u, 0x09)
		d := gmul(u, 0x0d)
		b := gmul(u, 0x0b)
		// td tables operate on inv-sboxed bytes in InvMixColumns order.
		ti := uint32(e)<<24 | uint32(b9)<<16 | uint32(d)<<8 | uint32(b)
		td[0][i] = ti
		td[1][i] = rotr32(ti, 8)
		td[2][i] = rotr32(ti, 16)
		td[3][i] = rotr32(ti, 24)
	}
	// Round constants.
	c := byte(1)
	for i := 1; i <= 10; i++ {
		rcon[i] = c
		c = gmul(c, 2)
	}
}

func rotl8(x byte, n uint) byte      { return x<<n | x>>(8-n) }
func rotr32(x uint32, n uint) uint32 { return x>>n | x<<(32-n) }

// Cipher is an expanded AES-128 key.
type Cipher struct {
	enc [4 * (rounds + 1)]uint32
	dec [4 * (rounds + 1)]uint32
}

// New expands a 16-byte key.
func New(key []byte) (*Cipher, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("aes: invalid key size %d", len(key))
	}
	c := &Cipher{}
	// Encryption schedule.
	for i := 0; i < 4; i++ {
		c.enc[i] = be32(key[4*i:])
	}
	for i := 4; i < len(c.enc); i++ {
		t := c.enc[i-1]
		if i%4 == 0 {
			t = subWord(rotWord(t)) ^ uint32(rcon[i/4])<<24
		}
		c.enc[i] = c.enc[i-4] ^ t
	}
	// Decryption schedule: reversed rounds with InvMixColumns applied to
	// the middle round keys (equivalent inverse cipher).
	for i := 0; i < len(c.dec); i += 4 {
		src := len(c.enc) - 4 - i
		for j := 0; j < 4; j++ {
			w := c.enc[src+j]
			if i > 0 && i < len(c.dec)-4 {
				w = invMixColumnsWord(w)
			}
			c.dec[i+j] = w
		}
	}
	return c, nil
}

func be32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func putBE32(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}

func rotWord(w uint32) uint32 { return w<<8 | w>>24 }

func subWord(w uint32) uint32 {
	return uint32(sbox[w>>24])<<24 | uint32(sbox[w>>16&0xff])<<16 |
		uint32(sbox[w>>8&0xff])<<8 | uint32(sbox[w&0xff])
}

func invMixColumnsWord(w uint32) uint32 {
	a := byte(w >> 24)
	b := byte(w >> 16)
	c := byte(w >> 8)
	d := byte(w)
	return uint32(gmul(a, 0x0e)^gmul(b, 0x0b)^gmul(c, 0x0d)^gmul(d, 0x09))<<24 |
		uint32(gmul(a, 0x09)^gmul(b, 0x0e)^gmul(c, 0x0b)^gmul(d, 0x0d))<<16 |
		uint32(gmul(a, 0x0d)^gmul(b, 0x09)^gmul(c, 0x0e)^gmul(d, 0x0b))<<8 |
		uint32(gmul(a, 0x0b)^gmul(b, 0x0d)^gmul(c, 0x09)^gmul(d, 0x0e))
}

// Encrypt encrypts one 16-byte block (dst and src may overlap).
func (c *Cipher) Encrypt(dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("aes: short block")
	}
	s0 := be32(src[0:]) ^ c.enc[0]
	s1 := be32(src[4:]) ^ c.enc[1]
	s2 := be32(src[8:]) ^ c.enc[2]
	s3 := be32(src[12:]) ^ c.enc[3]
	k := 4
	for r := 1; r < rounds; r++ {
		t0 := te[0][s0>>24] ^ te[1][s1>>16&0xff] ^ te[2][s2>>8&0xff] ^ te[3][s3&0xff] ^ c.enc[k]
		t1 := te[0][s1>>24] ^ te[1][s2>>16&0xff] ^ te[2][s3>>8&0xff] ^ te[3][s0&0xff] ^ c.enc[k+1]
		t2 := te[0][s2>>24] ^ te[1][s3>>16&0xff] ^ te[2][s0>>8&0xff] ^ te[3][s1&0xff] ^ c.enc[k+2]
		t3 := te[0][s3>>24] ^ te[1][s0>>16&0xff] ^ te[2][s1>>8&0xff] ^ te[3][s2&0xff] ^ c.enc[k+3]
		s0, s1, s2, s3 = t0, t1, t2, t3
		k += 4
	}
	// Final round: SubBytes + ShiftRows, no MixColumns.
	o0 := uint32(sbox[s0>>24])<<24 | uint32(sbox[s1>>16&0xff])<<16 | uint32(sbox[s2>>8&0xff])<<8 | uint32(sbox[s3&0xff])
	o1 := uint32(sbox[s1>>24])<<24 | uint32(sbox[s2>>16&0xff])<<16 | uint32(sbox[s3>>8&0xff])<<8 | uint32(sbox[s0&0xff])
	o2 := uint32(sbox[s2>>24])<<24 | uint32(sbox[s3>>16&0xff])<<16 | uint32(sbox[s0>>8&0xff])<<8 | uint32(sbox[s1&0xff])
	o3 := uint32(sbox[s3>>24])<<24 | uint32(sbox[s0>>16&0xff])<<16 | uint32(sbox[s1>>8&0xff])<<8 | uint32(sbox[s2&0xff])
	putBE32(dst[0:], o0^c.enc[k])
	putBE32(dst[4:], o1^c.enc[k+1])
	putBE32(dst[8:], o2^c.enc[k+2])
	putBE32(dst[12:], o3^c.enc[k+3])
}

// Decrypt decrypts one 16-byte block.
func (c *Cipher) Decrypt(dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("aes: short block")
	}
	s0 := be32(src[0:]) ^ c.dec[0]
	s1 := be32(src[4:]) ^ c.dec[1]
	s2 := be32(src[8:]) ^ c.dec[2]
	s3 := be32(src[12:]) ^ c.dec[3]
	k := 4
	for r := 1; r < rounds; r++ {
		t0 := td[0][invSbox[s0>>24]] ^ td[1][invSbox[s3>>16&0xff]] ^ td[2][invSbox[s2>>8&0xff]] ^ td[3][invSbox[s1&0xff]] ^ c.dec[k]
		t1 := td[0][invSbox[s1>>24]] ^ td[1][invSbox[s0>>16&0xff]] ^ td[2][invSbox[s3>>8&0xff]] ^ td[3][invSbox[s2&0xff]] ^ c.dec[k+1]
		t2 := td[0][invSbox[s2>>24]] ^ td[1][invSbox[s1>>16&0xff]] ^ td[2][invSbox[s0>>8&0xff]] ^ td[3][invSbox[s3&0xff]] ^ c.dec[k+2]
		t3 := td[0][invSbox[s3>>24]] ^ td[1][invSbox[s2>>16&0xff]] ^ td[2][invSbox[s1>>8&0xff]] ^ td[3][invSbox[s0&0xff]] ^ c.dec[k+3]
		s0, s1, s2, s3 = t0, t1, t2, t3
		k += 4
	}
	o0 := uint32(invSbox[s0>>24])<<24 | uint32(invSbox[s3>>16&0xff])<<16 | uint32(invSbox[s2>>8&0xff])<<8 | uint32(invSbox[s1&0xff])
	o1 := uint32(invSbox[s1>>24])<<24 | uint32(invSbox[s0>>16&0xff])<<16 | uint32(invSbox[s3>>8&0xff])<<8 | uint32(invSbox[s2&0xff])
	o2 := uint32(invSbox[s2>>24])<<24 | uint32(invSbox[s1>>16&0xff])<<16 | uint32(invSbox[s0>>8&0xff])<<8 | uint32(invSbox[s3&0xff])
	o3 := uint32(invSbox[s3>>24])<<24 | uint32(invSbox[s2>>16&0xff])<<16 | uint32(invSbox[s1>>8&0xff])<<8 | uint32(invSbox[s0&0xff])
	putBE32(dst[0:], o0^c.dec[k])
	putBE32(dst[4:], o1^c.dec[k+1])
	putBE32(dst[8:], o2^c.dec[k+2])
	putBE32(dst[12:], o3^c.dec[k+3])
}

// EncryptECB encrypts len(src) bytes (a multiple of BlockSize) in ECB mode,
// matching the simulated streaming kernel's per-block behaviour.
func (c *Cipher) EncryptECB(dst, src []byte) {
	if len(src)%BlockSize != 0 || len(dst) < len(src) {
		panic("aes: EncryptECB size")
	}
	for i := 0; i < len(src); i += BlockSize {
		c.Encrypt(dst[i:], src[i:])
	}
}

// Tables exposes the expanded encryption key and T-tables in the flat layout
// the simulated kernel loads into its scratchpad: 44 round-key words, then
// te[0..3], each 256 words, all little-endian within the scratchpad.
func (c *Cipher) Tables() (roundKeys []uint32, tables [4][256]uint32, sboxOut [256]byte) {
	roundKeys = make([]uint32, len(c.enc))
	copy(roundKeys, c.enc[:])
	tables = te
	sboxOut = sbox
	return
}
