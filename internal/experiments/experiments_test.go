package experiments

import (
	"strings"
	"testing"

	"assasin/internal/ssd"
)

func TestFig5MemoryWallDecomposition(t *testing.T) {
	cfg := Quick()
	r, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The motivating example: memory stalls dominate the Baseline engine.
	if r.MemStallFrac < 0.3 {
		t.Errorf("memory stalls %.2f, want the dominant share", r.MemStallFrac)
	}
	if r.BusyFrac > 0.6 {
		t.Errorf("busy %.2f, want well under 1 (the memory wall)", r.BusyFrac)
	}
	// Single-engine Filter in the paper: 0.63 GB/s; accept the band.
	if r.Throughput < 0.2e9 || r.Throughput > 1.5e9 {
		t.Errorf("filter throughput %.2f GB/s outside plausible band", r.Throughput/1e9)
	}
	if s := FormatFig5(r); !strings.Contains(s, "memory stalls") {
		t.Error("format broken")
	}
}

func TestFig13Shapes(t *testing.T) {
	cfg := Quick()
	rows, err := Fig13(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("want 4 kernels, got %d", len(rows))
	}
	byName := map[string]Fig13Row{}
	for _, r := range rows {
		byName[r.Kernel] = r
	}
	// Memory-bound kernels: ASSASIN wins clearly.
	for _, k := range []string{"Stat", "RAID4"} {
		r := byName[k]
		sp := r.Throughput[ssd.AssasinSb] / r.Throughput[ssd.Baseline]
		if sp < 1.2 {
			t.Errorf("%s: Sb/Baseline = %.2f, want > 1.2", k, sp)
		}
		if r.Throughput[ssd.AssasinSb] < r.Throughput[ssd.AssasinSp]*0.98 {
			t.Errorf("%s: Sb below Sp", k)
		}
	}
	// Compute intensity ordering: Stat fastest, AES slowest everywhere.
	if byName["Stat"].Throughput[ssd.AssasinSb] <= byName["AES"].Throughput[ssd.AssasinSb] {
		t.Error("AES should be far slower than Stat")
	}
	// AES is compute-bound: ASSASIN benefit small.
	aes := byName["AES"]
	if sp := aes.Throughput[ssd.AssasinSb] / aes.Throughput[ssd.Baseline]; sp > 1.5 {
		t.Errorf("AES speedup %.2f implausibly high for a compute-bound kernel", sp)
	}
	// Sb$ tracks Sb when state fits the scratchpad.
	for _, r := range rows {
		ratio := r.Throughput[ssd.AssasinSbCache] / r.Throughput[ssd.AssasinSb]
		if ratio < 0.95 || ratio > 1.05 {
			t.Errorf("%s: Sb$/Sb = %.3f, want ~1", r.Kernel, ratio)
		}
	}
	if s := FormatFig13("Fig 13", rows); !strings.Contains(s, "Stat") {
		t.Error("format broken")
	}
}

func TestFig21AdjustedOrdering(t *testing.T) {
	cfg := Quick()
	plain, err := Fig13(cfg)
	if err != nil {
		t.Fatal(err)
	}
	adj, err := Fig21(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		k := plain[i].Kernel
		// The adjusted AssasinSb clock is 11% faster; unless flash-bound
		// its throughput must not drop.
		if adj[i].Throughput[ssd.AssasinSb] < plain[i].Throughput[ssd.AssasinSb]*0.95 {
			t.Errorf("%s: adjusted Sb slower than unadjusted", k)
		}
		// AssasinSp pays 2-cycle scratchpads: must not get faster.
		if adj[i].Throughput[ssd.AssasinSp] > plain[i].Throughput[ssd.AssasinSp]*1.02 {
			t.Errorf("%s: adjusted Sp got faster", k)
		}
	}
	// The paper's Fig 21 punchline: adjustment widens the Sb-Sp gap.
	spPlain := SpeedupSummary(plain)
	spAdj := SpeedupSummary(adj)
	gapPlain := spPlain[ssd.AssasinSb] / spPlain[ssd.AssasinSp]
	gapAdj := spAdj[ssd.AssasinSb] / spAdj[ssd.AssasinSp]
	if gapAdj <= gapPlain {
		t.Errorf("timing adjustment did not widen Sb/Sp gap: %.3f -> %.3f", gapPlain, gapAdj)
	}
}

func TestFig16ScalingAndUtilization(t *testing.T) {
	cfg := Quick()
	points, err := Fig16(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("points = %d", len(points))
	}
	// Monotone non-decreasing throughput, near-linear early.
	for i := 1; i < len(points); i++ {
		if points[i].Throughput < points[i-1].Throughput*0.95 {
			t.Errorf("throughput regressed at %d cores", points[i].Cores)
		}
	}
	if r := points[1].Throughput / points[0].Throughput; r < 1.7 {
		t.Errorf("1->2 cores scaling %.2f, want near 2x", r)
	}
	// Utilization stays high while under the flash bound.
	for _, p := range points {
		if p.Cores <= 8 && p.Utilization < 0.7 {
			t.Errorf("%d cores: utilization %.2f too low", p.Cores, p.Utilization)
		}
	}
	// Channel balance at 8 cores (Fig 18).
	for _, p := range points {
		if p.Cores != 8 {
			continue
		}
		var min, max int64 = 1 << 62, 0
		for _, bc := range p.ChannelBytes {
			if bc < min {
				min = bc
			}
			if bc > max {
				max = bc
			}
		}
		if max == 0 || float64(min)/float64(max) < 0.8 {
			t.Errorf("channel imbalance: min=%d max=%d", min, max)
		}
	}
	for _, f := range []string{FormatFig16(points), FormatFig17(points), FormatFig18(points)} {
		if f == "" {
			t.Error("empty format")
		}
	}
}

func TestFig19SkewSensitivity(t *testing.T) {
	cfg := Quick()
	points, err := Fig19(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := points[0]
	last := points[len(points)-1]
	// No skew: both architectures comparable.
	if r := first.Crossbar / first.ChannelLocal; r < 0.8 || r > 1.6 {
		t.Errorf("skew 0 ratio %.2f, want ~1", r)
	}
	// Extreme skew: the crossbar pools cores onto the hot channel; the
	// channel-local design is stuck with one core.
	if r := last.Crossbar / last.ChannelLocal; r < 1.3 {
		t.Errorf("skew 1 ratio %.2f, want crossbar clearly ahead", r)
	}
	// Channel-local degrades monotonically-ish with skew.
	if last.ChannelLocal > first.ChannelLocal*0.8 {
		t.Errorf("channel-local insensitive to skew: %.2e -> %.2e", first.ChannelLocal, last.ChannelLocal)
	}
	// The crossbar degrades strictly less than channel-local.
	xbarDrop := first.Crossbar / last.Crossbar
	localDrop := first.ChannelLocal / last.ChannelLocal
	if xbarDrop >= localDrop {
		t.Errorf("crossbar dropped %.2fx vs channel-local %.2fx", xbarDrop, localDrop)
	}
	if s := FormatFig19(points); !strings.Contains(s, "Skew") {
		t.Error("format broken")
	}
}

func TestFig20TimingConclusions(t *testing.T) {
	rows := Fig20()
	if len(rows) < 6 {
		t.Fatal("too few rows")
	}
	var fifo64, sp64k float64
	for _, r := range rows {
		if r.Structure == "streambuffer head FIFO" && r.WidthB == 64 {
			fifo64 = r.TimeNS
		}
		if strings.HasPrefix(r.Structure, "scratchpad") && r.Bytes == 64<<10 && r.WidthB == 8 {
			sp64k = r.TimeNS
		}
	}
	if fifo64 == 0 || sp64k == 0 {
		t.Fatal("anchor rows missing")
	}
	if fifo64 > 0.6 {
		t.Errorf("FIFO 64B = %.2fns, want ~0.5", fifo64)
	}
	if sp64k <= 1.0 {
		t.Errorf("64K scratchpad = %.2fns, want > 1", sp64k)
	}
	if s := FormatFig20(rows); !strings.Contains(s, "11%") {
		t.Error("clock conclusion missing")
	}
}

func TestTable5AndFig22(t *testing.T) {
	costs := Table5Costs(8)
	byArch := map[ssd.Arch]float64{}
	for _, c := range costs {
		byArch[c.Arch] = c.Cost.AreaMM2
	}
	// AssasinSb's memory hierarchy is much leaner than Baseline's.
	if byArch[ssd.AssasinSb] >= byArch[ssd.Baseline] {
		t.Error("AssasinSb should be smaller than Baseline")
	}
	ratio := byArch[ssd.Baseline] / byArch[ssd.AssasinSb]
	if ratio < 1.3 || ratio > 3 {
		t.Errorf("Baseline/Sb area ratio %.2f outside plausible band", ratio)
	}
	// Fig 22 with the paper's headline speedups.
	rows := Fig22(map[ssd.Arch]float64{
		ssd.Baseline: 1.0, ssd.UDP: 1.3, ssd.Prefetch: 1.15,
		ssd.AssasinSp: 1.3, ssd.AssasinSb: 1.9, ssd.AssasinSbCache: 1.9,
	}, 8)
	var sb Fig22Row
	for _, r := range rows {
		if r.Arch == ssd.AssasinSb {
			sb = r
		}
	}
	if sb.AreaEff < 2.2 || sb.AreaEff > 4.5 {
		t.Errorf("AssasinSb area efficiency %.2f, paper reports ~3.2x", sb.AreaEff)
	}
	if sb.PowerEff < 1.5 || sb.PowerEff > 3.5 {
		t.Errorf("AssasinSb power efficiency %.2f, paper reports ~2.0x", sb.PowerEff)
	}
	if s := FormatTable5(8); !strings.Contains(s, "AssasinSb") {
		t.Error("table format broken")
	}
	if s := FormatFig22(rows); !strings.Contains(s, "Power-eff") {
		t.Error("fig22 format broken")
	}
}

func TestTable4Format(t *testing.T) {
	s := Table4(Quick())
	for _, want := range []string{"Baseline", "UDP", "Prefetch", "AssasinSp", "AssasinSb", "AssasinSb$", "stream ISA"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table IV missing %q", want)
		}
	}
}

func TestGeoMean(t *testing.T) {
	if g := geoMean([]float64{2, 8}); g < 3.99 || g > 4.01 {
		t.Errorf("geoMean = %g", g)
	}
	if geoMean(nil) != 0 {
		t.Error("empty geomean")
	}
}
