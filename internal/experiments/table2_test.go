package experiments

import (
	"strings"
	"testing"
)

func TestTable2WorkloadStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	cfg := Quick()
	rows, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("functions = %d, want 12", len(rows))
	}
	for _, r := range rows {
		if r.Baseline <= 0 || r.AssasinSb <= 0 {
			t.Errorf("%s produced no throughput", r.Function)
		}
		// Stream architectures never lose on these workloads.
		if r.AssasinSb < r.Baseline*0.9 {
			t.Errorf("%s: AssasinSb (%.2e) below Baseline (%.2e)", r.Function, r.AssasinSb, r.Baseline)
		}
	}
	if s := FormatTable2(rows); !strings.Contains(s, "Deduplicate") {
		t.Error("format broken")
	}
}
