package experiments

import (
	"bytes"
	"fmt"
	"log/slog"
	"strings"

	"assasin/internal/cpu"
	"assasin/internal/firmware"
	"assasin/internal/host"
	"assasin/internal/runpool"
	"assasin/internal/sim"
	"assasin/internal/ssd"
	"assasin/internal/telemetry"
	"assasin/internal/tpch"
)

// Fig14Row is one query's PSF-pipeline throughput across configurations.
type Fig14Row struct {
	Query       int
	Table       string
	InputBytes  int64
	Selectivity float64 // output rows / input rows
	Throughput  map[ssd.Arch]float64
}

// psfDataset caches per-table CSVs and row offsets for a dataset.
type psfDataset struct {
	ds      *tpch.Dataset
	csv     map[string][]byte
	offsets map[string][]int64
	// Run options threaded from Config by the experiment entry points.
	exec  cpu.ExecMode
	plane firmware.PlaneMode
	tel  *telemetry.Sink
	log  *slog.Logger
}

func newPSFDataset(sf float64) *psfDataset {
	ds := tpch.Generate(sf)
	p := &psfDataset{ds: ds, csv: map[string][]byte{}, offsets: map[string][]int64{}}
	for name, rel := range ds.Tables() {
		c := tpch.CSVBytes(rel)
		p.csv[name] = c
		p.offsets[name] = tpch.RowOffsets(c)
	}
	return p
}

// runQueryPSF offloads one query's Parse/Select/Filter pipeline on one
// architecture and returns the run plus the concatenated output bytes.
func (p *psfDataset) runQueryPSF(q *tpch.QuerySpec, arch ssd.Arch, cores int, adjusted, collect bool) (*ssd.Result, []byte, error) {
	csv := p.csv[q.Table]
	offs := p.offsets[q.Table]
	if p.tel != nil {
		p.tel.StartRun(fmt.Sprintf("Q%d/%v", q.ID, arch))
	}
	s := ssd.New(ssd.Options{Arch: arch, Cores: cores, TimingAdjusted: adjusted,
		Exec: p.exec, DataPlane: p.plane, Telemetry: p.tel, Log: p.log})
	lpas, err := s.InstallBytes(csv)
	if err != nil {
		return nil, nil, err
	}
	// Row-aligned task decomposition: split at line boundaries closest to
	// equal byte shares.
	nRows := len(offs) - 1
	if cores > nRows {
		cores = nRows
	}
	var tasks []ssd.TaskSpec
	params := s.BuildParamsFor()
	prog, err := q.PSF.Build(params)
	if err != nil {
		return nil, nil, err
	}
	for c := 0; c < cores; c++ {
		startRow := nRows * c / cores
		endRow := nRows * (c + 1) / cores
		r := ssd.ByteRange{Start: offs[startRow], End: offs[endRow]}
		if r.Len() == 0 {
			continue
		}
		spec := s.SpecForRange(lpas, r)
		tasks = append(tasks, ssd.TaskSpec{
			Program: prog,
			Inputs:  []firmware.StreamSpec{spec},
			Outputs: []firmware.OutTarget{{Kind: firmware.OutToHost, Collect: collect}},
			Regs:    q.PSF.Args([]int64{spec.Length}),
		})
	}
	res, err := s.RunOffload(tasks, 0)
	if err != nil {
		return nil, nil, fmt.Errorf("Q%d on %v: %w", q.ID, arch, err)
	}
	s.PublishStats()
	var out []byte
	if collect {
		for _, outs := range res.Outputs {
			out = append(out, outs[0]...)
		}
	}
	return res, out, nil
}

// Fig14 measures the offloaded PSF database pipeline per TPC-H query across
// all configurations (the per-query bars of the paper's Fig. 14).
func Fig14(cfg Config) ([]Fig14Row, error) {
	return fig14Sweep(cfg, false, ssd.AllArchs())
}

// Fig21PSF is the timing-adjusted PSF sweep feeding Fig. 21's TPC-H bar.
func Fig21PSF(cfg Config) ([]Fig14Row, error) {
	return fig14Sweep(cfg, true, ssd.AllArchs())
}

func fig14Sweep(cfg Config, adjusted bool, archs []ssd.Arch) ([]Fig14Row, error) {
	p := newPSFDataset(cfg.TPCHScale)
	p.exec, p.plane, p.tel, p.log = cfg.Exec, cfg.DataPlane, cfg.Telemetry, cfg.Log
	queries := tpch.Queries()
	// Per-query reference outputs are computed up front (host-side, cheap)
	// so the fan-out jobs only read them.
	rows := make([]Fig14Row, len(queries))
	refs := make([][]byte, len(queries))
	for i, q := range queries {
		csv := p.csv[q.Table]
		rows[i] = Fig14Row{
			Query:      q.ID,
			Table:      q.Table,
			InputBytes: int64(len(csv)),
			Throughput: map[ssd.Arch]float64{},
		}
		if cfg.Verify {
			refOut, err := q.PSF.Reference([][]byte{csv})
			if err != nil {
				return nil, err
			}
			refs[i] = refOut[0]
			rowsIn := len(p.offsets[q.Table]) - 1
			if rowsIn > 0 {
				rows[i].Selectivity = float64(len(refs[i])/(4*len(q.PSF.Project))) / float64(rowsIn)
			}
		}
	}
	// One job per (query, configuration); the dataset is read-only here on.
	tputs, err := runpool.Map(cfg.workers(), len(queries)*len(archs), func(j int) (float64, error) {
		q, arch := queries[j/len(archs)], archs[j%len(archs)]
		res, out, err := p.runQueryPSF(q, arch, cfg.Cores, adjusted, cfg.Verify)
		if err != nil {
			return 0, err
		}
		if cfg.Verify && !bytes.Equal(out, refs[j/len(archs)]) {
			return 0, fmt.Errorf("Q%d on %v: PSF output mismatch (%d vs %d bytes)", q.ID, arch, len(out), len(refs[j/len(archs)]))
		}
		return res.Throughput(), nil
	})
	if err != nil {
		return nil, err
	}
	for i := range rows {
		for a, arch := range archs {
			rows[i].Throughput[arch] = tputs[i*len(archs)+a]
		}
	}
	return rows, nil
}

// FormatFig14 renders per-query throughput plus the geomean speedups the
// paper quotes (UDP ≈1.3×, AssasinSb 1.5-1.8×).
func FormatFig14(title string, rows []Fig14Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — offloaded Parse/Select/Filter pipeline throughput (GB/s)\n", title)
	fmt.Fprintf(&b, "%-6s%-10s", "Query", "Table")
	for _, a := range ssd.AllArchs() {
		fmt.Fprintf(&b, "%12s", a)
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "Q%-5d%-10s", r.Query, r.Table)
		for _, a := range ssd.AllArchs() {
			fmt.Fprintf(&b, "%12s", gbps(r.Throughput[a]))
		}
		b.WriteString("\n")
	}
	sp := SpeedupSummaryFig14(rows)
	b.WriteString("GeoMean speedup over Baseline:")
	for _, a := range ssd.AllArchs() {
		fmt.Fprintf(&b, "  %s=%.2fx", a, sp[a])
	}
	b.WriteString("\n")
	return b.String()
}

// SpeedupSummaryFig14 returns geomean speedups over Baseline.
func SpeedupSummaryFig14(rows []Fig14Row) map[ssd.Arch]float64 {
	out := map[ssd.Arch]float64{}
	for _, a := range ssd.AllArchs() {
		var ratios []float64
		for _, r := range rows {
			if b := r.Throughput[ssd.Baseline]; b > 0 && r.Throughput[a] > 0 {
				ratios = append(ratios, r.Throughput[a]/b)
			}
		}
		out[a] = geoMean(ratios)
	}
	return out
}

// Fig15Row is one query's end-to-end latency decomposition.
type Fig15Row struct {
	Query    int
	PureCPU  host.QueryLatency
	Baseline host.QueryLatency
	Assasin  host.QueryLatency
}

// Fig15 stacks SSD, interface, and host time for all 22 queries, comparing
// the no-offload pure-host path (disaggregated storage), the Baseline
// computational SSD, and AssasinSb — the paper's end-to-end Fig. 15.
func Fig15(cfg Config) ([]Fig15Row, error) {
	p := newPSFDataset(cfg.TPCHScale)
	p.exec, p.plane, p.tel, p.log = cfg.Exec, cfg.DataPlane, cfg.Telemetry, cfg.Log
	hm := host.New(host.DefaultConfig())
	// The end-to-end comparison always uses the paper's full 8-engine SSDs.
	cores := cfg.Cores
	if cores < 8 {
		cores = 8
	}
	queries := tpch.Queries()
	// One job per query; each runs its own pair of SSDs and a local Exec.
	return runpool.Map(cfg.workers(), len(queries), func(i int) (Fig15Row, error) {
		q := queries[i]
		csv := p.csv[q.Table]
		scan := q.ScanRelation(p.ds)

		// Host body work is the same in all modes (measured once).
		body := tpch.NewExec(p.ds)
		q.Body(body, scan)
		resultBytes := int64(scan.NumRows() * 4 * len(q.PSF.Project))

		// PureCPU: full table over the interface, host parses + scans.
		pureWork := body.Work
		pure := tpch.NewExec(p.ds)
		pure.ChargeParse(int64(len(csv)))
		pureWork.Add(pure.Work)
		// Host-side predicate evaluation over all rows (the Filter stage).
		pureWork.ScanUnits += 4 * float64(len(p.offsets[q.Table])-1)

		// Offloaded paths: PSF runs in-SSD; only results cross the bus.
		resBase, _, err := p.runQueryPSF(q, ssd.Baseline, cores, true, false)
		if err != nil {
			return Fig15Row{}, err
		}
		resSb, _, err := p.runQueryPSF(q, ssd.AssasinSb, cores, true, false)
		if err != nil {
			return Fig15Row{}, err
		}

		return Fig15Row{
			Query:    q.ID,
			PureCPU:  hm.PureCPU(int64(len(csv)), pureWork),
			Baseline: hm.Offloaded(resBase.Duration, resultBytes, body.Work),
			Assasin:  hm.Offloaded(resSb.Duration, resultBytes, body.Work),
		}, nil
	})
}

// FormatFig15 renders latencies and the headline geomean ratios (paper:
// Baseline ≈1.9× over PureCPU; AssasinSb a further 1.1-1.5×, geomean 1.3×).
func FormatFig15(rows []Fig15Row) string {
	var b strings.Builder
	b.WriteString("Fig 15 — end-to-end TPC-H latency (ms): SSD + interface + host\n")
	fmt.Fprintf(&b, "%-6s%12s%12s%12s%14s%12s\n", "Query", "PureCPU", "Baseline", "AssasinSb", "Base/Pure", "Sb/Base")
	var basePure, sbBase []float64
	for _, r := range rows {
		bp := float64(r.PureCPU.Total()) / float64(r.Baseline.Total())
		sb := float64(r.Baseline.Total()) / float64(r.Assasin.Total())
		basePure = append(basePure, bp)
		sbBase = append(sbBase, sb)
		fmt.Fprintf(&b, "Q%-5d%12s%12s%12s%13.2fx%11.2fx\n",
			r.Query, msOf(r.PureCPU.Total()), msOf(r.Baseline.Total()), msOf(r.Assasin.Total()), bp, sb)
	}
	fmt.Fprintf(&b, "GeoMean: Baseline over PureCPU %.2fx; AssasinSb over Baseline %.2fx\n",
		geoMean(basePure), geoMean(sbBase))
	return b.String()
}

var _ = sim.Time(0)
