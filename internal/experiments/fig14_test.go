package experiments

import (
	"strings"
	"testing"

	"assasin/internal/ssd"
	"assasin/internal/tpch"
)

func TestFig14PSFPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("tpch sweep is slow")
	}
	cfg := Quick()
	rows, err := Fig14(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 22 {
		t.Fatalf("queries = %d, want 22", len(rows))
	}
	sp := SpeedupSummaryFig14(rows)
	// The paper's Fig 14 shape: UDP ≈ 1.3x, AssasinSp ≈ UDP, AssasinSb
	// 1.5-1.8x, Prefetch a modest ~1.15x.
	if sp[ssd.AssasinSb] < 1.25 {
		t.Errorf("AssasinSb PSF speedup %.2f, want > 1.25", sp[ssd.AssasinSb])
	}
	if sp[ssd.AssasinSb] < sp[ssd.AssasinSp] {
		t.Errorf("Sb (%.2f) below Sp (%.2f)", sp[ssd.AssasinSb], sp[ssd.AssasinSp])
	}
	if sp[ssd.UDP] < 1.05 {
		t.Errorf("UDP speedup %.2f, want > 1.05 (branch-free parse)", sp[ssd.UDP])
	}
	if sp[ssd.Prefetch] < 1.0 {
		t.Errorf("Prefetch slower than Baseline: %.2f", sp[ssd.Prefetch])
	}
	if s := FormatFig14("Fig 14", rows); !strings.Contains(s, "GeoMean") {
		t.Error("format broken")
	}
}

func TestFig15EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("tpch sweep is slow")
	}
	cfg := Quick()
	rows, err := Fig15(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 22 {
		t.Fatalf("queries = %d", len(rows))
	}
	var basePure, sbBase []float64
	for _, r := range rows {
		basePure = append(basePure, float64(r.PureCPU.Total())/float64(r.Baseline.Total()))
		sbBase = append(sbBase, float64(r.Baseline.Total())/float64(r.Assasin.Total()))
	}
	gmBase := geoMean(basePure)
	gmSb := geoMean(sbBase)
	// Paper: offload ≈1.9x over pure CPU; AssasinSb ≈1.3x further (1.1-1.5).
	// At test scale, fixed flash latencies penalize queries over tiny
	// dimension tables, so the bands are looser than at bench scale.
	if gmBase < 1.1 || gmBase > 3.5 {
		t.Errorf("Baseline/PureCPU geomean %.2f outside band", gmBase)
	}
	if gmSb < 1.02 || gmSb > 1.8 {
		t.Errorf("Sb/Baseline end-to-end geomean %.2f outside band", gmSb)
	}
	// On the big (lineitem) scans, offload wins end-to-end even at test
	// scale.
	qs := tpchQueriesByID(t)
	for _, r := range rows {
		if qs[r.Query] != "lineitem" {
			continue
		}
		if r.Assasin.Total() > r.PureCPU.Total() {
			t.Errorf("Q%d: offloaded slower than pure CPU", r.Query)
		}
	}
	if s := FormatFig15(rows); !strings.Contains(s, "GeoMean") {
		t.Error("format broken")
	}
}

// tpchQueriesByID maps query id -> primary table.
func tpchQueriesByID(t *testing.T) map[int]string {
	t.Helper()
	out := map[int]string{}
	for _, q := range tpch.Queries() {
		out[q.ID] = q.Table
	}
	return out
}
