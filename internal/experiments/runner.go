package experiments

import "fmt"

// Runner executes experiments by id and caches cross-experiment results
// (fig16 feeds fig17/fig18; fig21 feeds fig22). It is the shared dispatch
// used by cmd/assasin-bench and cmd/assasin-serve; it is not goroutine-safe
// — drive it from one goroutine.
type Runner struct {
	fig16Cache []Fig16Point
	fig21Cache []Fig13Row
}

func (rn *Runner) fig16Points(cfg Config) ([]Fig16Point, error) {
	if rn.fig16Cache != nil {
		return rn.fig16Cache, nil
	}
	p, err := Fig16(cfg)
	if err == nil {
		rn.fig16Cache = p
	}
	return p, err
}

func (rn *Runner) fig21Rows(cfg Config) ([]Fig13Row, error) {
	if rn.fig21Cache != nil {
		return rn.fig21Cache, nil
	}
	r, err := Fig21(cfg)
	if err == nil {
		rn.fig21Cache = r
	}
	return r, err
}

// Run executes one experiment and returns its structured rows (for JSON
// output) and rendered text.
func (rn *Runner) Run(name string, cfg Config) (any, string, error) {
	switch name {
	case "table2":
		rows, err := Table2(cfg)
		if err != nil {
			return nil, "", err
		}
		return rows, FormatTable2(rows), nil
	case "ablation":
		wrows, err := AblationWindow(cfg)
		if err != nil {
			return nil, "", err
		}
		drows, err := AblationDRAM(cfg)
		if err != nil {
			return nil, "", err
		}
		m, err := MixedIO(cfg)
		if err != nil {
			return nil, "", err
		}
		rows := struct {
			Window []AblationWindowRow `json:"window"`
			DRAM   []AblationDRAMRow   `json:"dram"`
			Mixed  *MixedIOResult      `json:"mixed_io"`
		}{wrows, drows, m}
		text := FormatAblationWindow(wrows) +
			FormatAblationDRAM(drows) +
			FormatMixedIO(m)
		return rows, text, nil
	case "table4":
		t := Table4(cfg)
		return t, t, nil
	case "fig5":
		r, err := Fig5(cfg)
		if err != nil {
			return nil, "", err
		}
		return r, FormatFig5(r), nil
	case "fig13":
		rows, err := Fig13(cfg)
		if err != nil {
			return nil, "", err
		}
		return rows, FormatFig13("Fig 13", rows), nil
	case "fig14":
		rows, err := Fig14(cfg)
		if err != nil {
			return nil, "", err
		}
		return rows, FormatFig14("Fig 14", rows), nil
	case "fig15":
		rows, err := Fig15(cfg)
		if err != nil {
			return nil, "", err
		}
		return rows, FormatFig15(rows), nil
	case "fig16":
		p, err := rn.fig16Points(cfg)
		if err != nil {
			return nil, "", err
		}
		return p, FormatFig16(p), nil
	case "fig17":
		p, err := rn.fig16Points(cfg)
		if err != nil {
			return nil, "", err
		}
		return p, FormatFig17(p), nil
	case "fig18":
		p, err := rn.fig16Points(cfg)
		if err != nil {
			return nil, "", err
		}
		return p, FormatFig18(p), nil
	case "fig19":
		p, err := Fig19(cfg)
		if err != nil {
			return nil, "", err
		}
		return p, FormatFig19(p), nil
	case "fig20":
		r := Fig20()
		return r, FormatFig20(r), nil
	case "fig21":
		rows, err := rn.fig21Rows(cfg)
		if err != nil {
			return nil, "", err
		}
		return rows, FormatFig13("Fig 21 (timing-adjusted)", rows), nil
	case "load":
		lc := DefaultLoad()
		if cfg.Load != nil {
			lc = *cfg.Load
		}
		r, err := RunLoad(cfg, lc)
		if err != nil {
			return nil, "", err
		}
		return r, FormatLoad(r), nil
	case "table5":
		t := FormatTable5(cfg.Cores)
		return t, t, nil
	case "fig22":
		rows, err := rn.fig21Rows(cfg)
		if err != nil {
			return nil, "", err
		}
		speedups := SpeedupSummary(rows)
		r := Fig22(speedups, cfg.Cores)
		return r, FormatFig22(r), nil
	default:
		return nil, "", fmt.Errorf("unknown experiment %q", name)
	}
}
