package experiments

import (
	"encoding/json"
	"testing"

	"assasin/internal/sim"
	"assasin/internal/telemetry/slo"
	"assasin/internal/telemetry/window"
)

// loadQuickFor builds a small load run for worker-count comparisons.
func loadQuickFor(workers int) (Config, LoadConfig) {
	cfg := Quick()
	cfg.Cores = 4
	cfg.Workers = workers
	lc := QuickLoad()
	lc.Drives = 4
	lc.Requests = 800
	return cfg, lc
}

// TestLoadParallelDeterminism pins the per-run-sink contract for the load
// experiment: every drive owns a private PRNG, tracer, and SLO engine, so
// the full result — SLO statuses, alert history, live snapshots, tenant
// tables — is byte-identical for any -parallel setting.
func TestLoadParallelDeterminism(t *testing.T) {
	run := func(workers int) []byte {
		cfg, lc := loadQuickFor(workers)
		r, err := RunLoad(cfg, lc)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.MarshalIndent(r, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	seq := run(1)
	par := run(4)
	if string(seq) != string(par) {
		t.Fatalf("load result differs between -parallel 1 and 4:\nseq %d bytes, par %d bytes", len(seq), len(par))
	}
}

// TestLoadRollingReconcilesWithCumulative pins the window/reqtrace
// reconciliation: with a window wider than the whole run, the rolling
// latency view of the catch-all objective is the same distribution the
// tracer accumulated — identical counts and P99.
func TestLoadRollingReconcilesWithCumulative(t *testing.T) {
	cfg := Quick()
	cfg.Cores = 4
	lc := QuickLoad()
	lc.Drives = 1
	lc.Requests = 2000
	// One window bucket outlives the run, so nothing rotates out.
	lc.Window = window.Config{WindowPs: int64(sim.Second), Buckets: 10}
	r, err := RunLoad(cfg, lc)
	if err != nil {
		t.Fatal(err)
	}
	d := r.Drives[0]
	var all *slo.ObjectiveStatus
	for i := range d.Status.Objectives {
		if d.Status.Objectives[i].Name == "all" {
			all = &d.Status.Objectives[i]
		}
	}
	if all == nil {
		t.Fatal("no catch-all objective in status")
	}
	// The catch-all matches every completed request the tracer saw (the IO
	// stream plus the offload).
	if got := all.Good + all.Bad; got != d.TracerCount {
		t.Fatalf("objective saw %d requests, tracer %d", got, d.TracerCount)
	}
	if d.TracerCount < int64(lc.Requests) {
		t.Fatalf("tracer count %d < %d submitted requests", d.TracerCount, lc.Requests)
	}
	// Same samples through the same histogram code: the rolling P99 over the
	// run-spanning window IS the cumulative P99.
	if all.P99Ps != d.TracerP99Ps {
		t.Fatalf("rolling P99 %v != reqtrace cumulative P99 %v", all.P99Ps, d.TracerP99Ps)
	}
	// The live snapshot's catch-all latency series reconciles the same way.
	for _, h := range d.Live.Hists {
		if h.Name == "all/latency" {
			if h.P99Ps != h.TotalP99Ps || h.P99Ps != d.TracerP99Ps {
				t.Fatalf("live hist P99 %v / total %v disagree with tracer %v",
					h.P99Ps, h.TotalP99Ps, d.TracerP99Ps)
			}
		}
	}
}

// TestLoadTightObjectiveFiresFastBurn pins deterministic alerting under
// load: a 1 ns latency objective makes every request bad, so the fast-burn
// page fires — identically on every run.
func TestLoadTightObjectiveFiresFastBurn(t *testing.T) {
	run := func() *LoadResult {
		cfg := Quick()
		cfg.Cores = 4
		lc := QuickLoad()
		lc.Drives = 1
		lc.Requests = 1500
		lc.Objectives = []slo.Objective{
			{Name: "tight", Target: 0.999, LatencyPs: 1000},
		}
		r, err := RunLoad(cfg, lc)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r := run()
	if r.Firing == 0 {
		b, _ := json.Marshal(r.Drives[0].Status)
		t.Fatalf("tight objective fired no alerts\n%s", b)
	}
	st := r.Drives[0].Status.Objectives[0]
	fast := st.Alerts[0]
	if fast.Rule != "fast-burn" || !fast.Firing || fast.SincePs == 0 {
		t.Fatalf("fast-burn not firing: %+v", fast)
	}
	if fast.BurnLong < 999 || fast.BurnShort < 999 {
		t.Fatalf("burn rates %v/%v, want ~1000 (every request bad)", fast.BurnLong, fast.BurnShort)
	}
	a, _ := json.Marshal(r)
	b, _ := json.Marshal(run())
	if string(a) != string(b) {
		t.Fatal("alert history differs between identical runs")
	}
}

// TestParseLoadSpec pins the -load flag grammar: overlay semantics over a
// base config, comma-separated tenants inside a semicolon-separated pair
// list, durations for the window, and fail-fast on unknown keys.
func TestParseLoadSpec(t *testing.T) {
	base := DefaultLoad()
	lc, err := ParseLoadSpec("requests=5000; rate=3e5;tenants=a,b,c;read=0.9;window=20ms;buckets=40;seed=7", base)
	if err != nil {
		t.Fatal(err)
	}
	if lc.Requests != 5000 || lc.RatePerSec != 3e5 || lc.ReadFraction != 0.9 || lc.Seed != 7 {
		t.Fatalf("parsed %+v", lc)
	}
	if len(lc.Tenants) != 3 || lc.Tenants[0] != "a" || lc.Tenants[2] != "c" {
		t.Fatalf("tenants %v", lc.Tenants)
	}
	if lc.Window.WindowPs != 20*int64(sim.Millisecond) || lc.Window.Buckets != 40 {
		t.Fatalf("window %+v", lc.Window)
	}
	// Untouched keys keep the base values.
	if lc.Drives != base.Drives || lc.OffloadMB != base.OffloadMB {
		t.Fatalf("overlay clobbered base: %+v", lc)
	}
	if _, err := ParseLoadSpec("requets=5", base); err == nil {
		t.Fatal("typo key accepted")
	}
	if _, err := ParseLoadSpec("requests", base); err == nil {
		t.Fatal("missing value accepted")
	}
	if _, err := ParseLoadSpec("requests=abc", base); err == nil {
		t.Fatal("bad int accepted")
	}
	if got, err := ParseLoadSpec("", base); err != nil || got.Requests != base.Requests {
		t.Fatalf("empty spec changed base: %+v err %v", got, err)
	}
}

// TestLoadOnEvalPublishes pins the live-serving hook: burn evaluations
// deliver coherent snapshots at bucket boundaries, in sim-time order.
func TestLoadOnEvalPublishes(t *testing.T) {
	cfg := Quick()
	cfg.Cores = 4
	lc := QuickLoad()
	lc.Drives = 1
	lc.Requests = 1000
	var boundaries []int64
	lc.OnEval = func(drive int, st *slo.Status, live *window.Snapshot) {
		if drive != 0 || st == nil || live == nil {
			t.Fatalf("bad publication: drive=%d st=%v live=%v", drive, st, live)
		}
		if st.NowPs != live.NowPs {
			t.Fatalf("status at %d, live at %d", st.NowPs, live.NowPs)
		}
		boundaries = append(boundaries, st.NowPs)
	}
	if _, err := RunLoad(cfg, lc); err != nil {
		t.Fatal(err)
	}
	if len(boundaries) == 0 {
		t.Fatal("no evaluation boundaries published")
	}
	for i := 1; i < len(boundaries); i++ {
		if boundaries[i] <= boundaries[i-1] {
			t.Fatalf("boundaries not increasing: %v", boundaries)
		}
	}
}
