package experiments

import (
	"runtime"
	"testing"
)

// quickFor returns the test-scale config at a given pool width. Functional
// verification is off — the sequential tests cover it — and inputs are
// shrunk further so the sequential-vs-parallel double run stays cheap.
func quickFor(workers int) Config {
	cfg := Quick()
	cfg.Workers = workers
	cfg.Verify = false
	cfg.KernelMB = 0.125
	cfg.AESKB = 16
	return cfg
}

// TestFig13ParallelDeterminism checks the harness guarantee end to end:
// the standalone sweep fanned across 4 workers renders byte-identically to
// the sequential sweep.
func TestFig13ParallelDeterminism(t *testing.T) {
	seq, err := Fig13(quickFor(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Fig13(quickFor(4))
	if err != nil {
		t.Fatal(err)
	}
	a, b := FormatFig13("Fig 13", seq), FormatFig13("Fig 13", par)
	if a != b {
		t.Fatalf("parallel Fig13 differs from sequential:\n--- workers=1\n%s\n--- workers=4\n%s", a, b)
	}
}

// TestFig14ParallelDeterminism does the same for the TPC-H PSF sweep,
// which also exercises the shared read-only dataset across workers.
func TestFig14ParallelDeterminism(t *testing.T) {
	seq, err := Fig14(quickFor(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Fig14(quickFor(4))
	if err != nil {
		t.Fatal(err)
	}
	a, b := FormatFig14("Fig 14", seq), FormatFig14("Fig 14", par)
	if a != b {
		t.Fatalf("parallel Fig14 differs from sequential:\n--- workers=1\n%s\n--- workers=4\n%s", a, b)
	}
}

// TestParallelSoak repeatedly fans whole-SSD runs across an oversubscribed
// pool — the experiments-level companion to runpool's own soak, meant to
// run under -race to catch shared state the audit missed.
func TestParallelSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}
	cfg := Quick()
	cfg.Workers = runtime.GOMAXPROCS(0) * 2
	cfg.KernelMB = 0.0625
	cfg.AESKB = 8
	for round := 0; round < 3; round++ {
		if _, err := Fig13(cfg); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}
