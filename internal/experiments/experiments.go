// Package experiments regenerates every table and figure of the paper's
// evaluation (Section VI). Each experiment builds fresh SSD instances,
// runs the relevant offloads, verifies functional outputs against the
// kernels' reference implementations, and returns structured rows that
// cmd/assasin-bench formats like the paper's artifacts.
//
// Workload sizes are laptop-scale (documented substitution in DESIGN.md):
// streaming kernels are steady-state, so throughput — and every ratio the
// paper reports — is size-invariant past warm-up.
package experiments

import (
	"bytes"
	"fmt"
	"log/slog"
	"math"
	"math/rand"

	"assasin/internal/cpu"
	"assasin/internal/firmware"
	"assasin/internal/kernels"
	"assasin/internal/sim"
	"assasin/internal/ssd"
	"assasin/internal/telemetry"
	"assasin/internal/telemetry/kprof"
	"assasin/internal/telemetry/reqtrace"
	"assasin/internal/telemetry/timeline"
)

// Config scales the experiments.
type Config struct {
	// KernelMB is the per-stream input size for standalone kernels (Fig 13).
	KernelMB float64
	// AESKB bounds the AES input (the kernel runs ~65 simulated
	// instructions per byte, so it gets a smaller input).
	AESKB float64
	// ScanMB is the total input for the scalability study (Figs 16-18).
	ScanMB float64
	// TPCHScale is the dataset scale factor for Figs 14-15.
	TPCHScale float64
	// Cores is the engine count (Table IV uses 8).
	Cores int
	// Verify cross-checks offload outputs against reference
	// implementations where the experiment collects them.
	Verify bool
	// Workers bounds how many independent simulation runs execute
	// concurrently. 0 or 1 runs everything sequentially; results are
	// identical either way (see internal/runpool).
	Workers int
	// Exec selects the core interpreter strategy for every run (default
	// cpu.ExecCompiled; results are identical across modes).
	Exec cpu.ExecMode `json:"exec,omitempty"`
	// DataPlane selects the firmware delivery event structure for every
	// run (default firmware.PlaneCoalesced; results are identical across
	// modes — the soak in dataplane_equiv_test.go enforces it).
	DataPlane firmware.PlaneMode `json:"dataplane,omitempty"`
	// Telemetry, when non-nil, is handed to every SSD an experiment
	// builds. The sink is not goroutine-safe, so callers must keep
	// Workers <= 1 when setting it — unless PerRunTelemetry is also set,
	// which makes the metrics path parallel-safe (cmd/assasin-bench wires
	// this; only trace capture still forces sequential runs).
	Telemetry *telemetry.Sink `json:"-"`
	// PerRunTelemetry gives every standalone run a private sink (with
	// event recording disabled) in place of the shared Telemetry sink,
	// absorbed into Telemetry at the run boundary via the goroutine-safe
	// telemetry.AbsorbMetrics. Absorption is commutative — counters and
	// histograms sum, gauges take maxima — so the merged snapshot is
	// identical for any Workers setting or completion order. RunRecord
	// snapshots then cover exactly one run. Trace events cannot be
	// captured this way: -trace still needs the shared sink and
	// sequential execution.
	PerRunTelemetry bool `json:"-"`
	// Timeline, when non-nil, attaches a sim-time sampler with this
	// configuration to every standalone run; the finished per-run
	// timeline is delivered on RunRecord.Timeline. Samplers are per-run
	// and driven by simulated time, so timelines are byte-identical
	// across Workers settings.
	Timeline *timeline.Config `json:"-"`
	// Requests, when > 0, attaches a per-run request tracer to every
	// standalone run, retaining the Requests slowest requests with full
	// critical-path detail; the finished summary is delivered on
	// RunRecord.Requests. Tracers are per-run (the per-run-sink pattern),
	// so summaries are byte-identical across Workers settings.
	Requests int
	// KProf, when true, attaches a per-run guest-kernel profiler to every
	// standalone run; the finished per-(kernel, basic block, pc)
	// attribution is delivered on RunRecord.Profile. Profilers are
	// per-run (the per-run-sink pattern), so profiles are byte-identical
	// across Workers settings and Exec modes.
	KProf bool
	// OnRunDone, when non-nil, receives a record of every completed
	// standalone run: label, per-core cycle decomposition, and (when
	// Telemetry is set) the post-run metrics snapshot. It is invoked on
	// the run's simulation goroutine: with Workers > 1 (PerRunTelemetry)
	// invocations are concurrent, so handlers must be goroutine-safe.
	OnRunDone func(RunRecord) `json:"-"`
	// Log, when non-nil, receives run lifecycle events (start/finish at
	// Debug/Info). Handlers must be goroutine-safe when Workers > 1.
	Log *slog.Logger `json:"-"`
	// Load overrides the open-loop load experiment's workload (nil selects
	// DefaultLoad). cmd flags (-load, -slo) land here.
	Load *LoadConfig `json:"-"`
}

// workers returns the effective pool width for fan-out sites.
func (c Config) workers() int {
	if c.Workers > 1 {
		return c.Workers
	}
	return 1
}

// Default returns the benchmark-scale configuration.
func Default() Config {
	return Config{
		KernelMB:  2,
		AESKB:     256,
		ScanMB:    8,
		TPCHScale: 0.004,
		Cores:     8,
		Verify:    false,
	}
}

// Quick returns a configuration small enough for unit tests.
func Quick() Config {
	return Config{
		KernelMB:  0.25,
		AESKB:     32,
		ScanMB:    1,
		TPCHScale: 0.001,
		Cores:     4,
		Verify:    true,
	}
}

func randData(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	rng.Read(b)
	// Round to a 64-byte multiple so every kernel's record size divides it.
	return b[:len(b)&^63]
}

// runOpts parameterize one standalone offload run.
type runOpts struct {
	arch       ssd.Arch
	adjusted   bool
	cores      int
	kernel     kernels.Kernel
	inputs     [][]byte
	recordSize int
	outKind    firmware.OutKind
	collect    bool
	// windowPages overrides the per-slot input window depth (0 = arch
	// default). Single-stream workloads may use the whole ISB capacity.
	windowPages int
	// exec selects the interpreter strategy (default cpu.ExecCompiled);
	// the equivalence soak runs every mode and demands identical results.
	exec cpu.ExecMode
	// plane selects the firmware delivery event structure (default
	// coalesced); the data-plane soak runs both and demands identical
	// results.
	plane firmware.PlaneMode
	// coreQuantum overrides the per-core scheduler quantum (0 = default).
	coreQuantum sim.Time
	// telemetry, when non-nil, instruments the run's SSD; runStandalone
	// opens a trace run labeled "<kernel>/<arch>" and publishes the
	// component snapshot gauges after the run.
	telemetry *telemetry.Sink
	// perRunTel swaps telemetry for a private per-run sink absorbed at the
	// run boundary (see Config.PerRunTelemetry).
	perRunTel bool
	// timeline, when non-nil, attaches a per-run sim-time sampler.
	timeline *timeline.Config
	// requests, when > 0, attaches a per-run request tracer (top-K depth).
	requests int
	// kprof, when true, attaches a per-run guest-kernel profiler.
	kprof bool
	// onRunDone, when non-nil, receives the completed run's RunRecord
	// (with a metrics snapshot when telemetry is set).
	onRunDone func(RunRecord)
	// log, when non-nil, receives run lifecycle events.
	log *slog.Logger
}

// instrument copies the Config-level observability hooks into the run
// options so every runStandalone call site stays a one-liner.
func (c Config) instrument(o runOpts) runOpts {
	o.plane = c.DataPlane
	o.telemetry = c.Telemetry
	o.perRunTel = c.PerRunTelemetry
	o.timeline = c.Timeline
	o.requests = c.Requests
	o.kprof = c.KProf
	o.onRunDone = c.OnRunDone
	o.log = c.Log
	return o
}

// runResult is one run's measurements.
type runResult struct {
	res      *ssd.Result
	instance *ssd.SSD
}

// throughput returns input bytes/second.
func (r *runResult) throughput() float64 { return r.res.Throughput() }

// runStandalone builds a fresh SSD, installs the inputs, and runs the
// kernel across the cores.
func runStandalone(o runOpts) (*runResult, error) {
	label := fmt.Sprintf("%s/%v", o.kernel.Name(), o.arch)
	tel := o.telemetry
	var root *telemetry.Sink
	if o.perRunTel && tel != nil {
		// Parallel-safe metrics: this run gets a private sink (no event
		// recording) and the shared sink only sees the commutative absorb
		// at the end, so concurrent runs never touch shared mutable state.
		root = tel
		tel = telemetry.NewSink()
		tel.MaxEvents = -1
		tel.Log = o.log
	}
	if tel != nil {
		tel.StartRun(label)
	}
	var sampler *timeline.Sampler
	if o.timeline != nil {
		sampler = timeline.New(tel, *o.timeline)
	}
	var tracer *reqtrace.Tracer
	if o.requests > 0 {
		tracer = reqtrace.New(tel, reqtrace.Config{TopK: o.requests})
	}
	var kp *kprof.Profiler
	if o.kprof {
		kp = kprof.New()
	}
	if o.log != nil {
		o.log.Debug("run start", "run", label, "cores", o.cores, "arch", o.arch.String())
	}
	s := ssd.New(ssd.Options{
		Arch:           o.arch,
		Cores:          o.cores,
		TimingAdjusted: o.adjusted,
		WindowPages:    o.windowPages,
		Exec:           o.exec,
		DataPlane:      o.plane,
		CoreQuantum:    o.coreQuantum,
		Telemetry:      tel,
		Timeline:       sampler,
		Requests:       tracer,
		KProf:          kp,
		Log:            o.log,
	})
	var lpaLists [][]int
	var lengths []int64
	for _, in := range o.inputs {
		lpas, err := s.InstallBytes(in)
		if err != nil {
			return nil, err
		}
		lpaLists = append(lpaLists, lpas)
		lengths = append(lengths, int64(len(in)))
	}
	res, err := s.RunKernel(ssd.KernelRun{
		Kernel:     o.kernel,
		Inputs:     lpaLists,
		InputBytes: lengths,
		RecordSize: o.recordSize,
		Cores:      o.cores,
		OutKind:    o.outKind,
		Collect:    o.collect,
	})
	if err != nil {
		return nil, err
	}
	s.PublishStats()
	if o.log != nil {
		o.log.Info("run finished", "run", label,
			"duration_ps", int64(res.Duration), "throughput_bps", res.Throughput())
	}
	if o.onRunDone != nil {
		rec := RunRecord{
			Label:      label,
			Kernel:     o.kernel.Name(),
			Arch:       o.arch,
			Cores:      o.cores,
			Duration:   res.Duration,
			InputBytes: res.InputBytes,
			CoreStats:  res.CoreStats,
			Timeline:   sampler.Finish(label, int64(res.Duration)),
			Requests:   tracer.Summary(label),
		}
		if kp != nil {
			rec.Profile = kp.Snapshot()
			rec.Profile.Label = label
		}
		if tel != nil {
			snap := tel.Metrics()
			rec.Metrics = &snap
		}
		o.onRunDone(rec)
	}
	if root != nil {
		root.AbsorbMetrics(tel)
	}
	return &runResult{res: res, instance: s}, nil
}

// verifyOutputs concatenates collected per-core outputs and compares them
// with the kernel reference over the same per-core partitions.
func verifyOutputs(o runOpts, r *runResult) error {
	if !o.collect {
		return nil
	}
	ranges := ssd.PartitionBytes(int64(len(o.inputs[0])), o.cores, o.recordSize)
	for slot := 0; slot < o.kernel.Outputs(); slot++ {
		var got []byte
		for _, outs := range r.res.Outputs {
			got = append(got, outs[slot]...)
		}
		var want []byte
		for _, rg := range ranges {
			var parts [][]byte
			for _, in := range o.inputs {
				parts = append(parts, in[rg.Start:rg.End])
			}
			ref, err := o.kernel.Reference(parts)
			if err != nil {
				return err
			}
			want = append(want, ref[slot]...)
		}
		if !bytes.Equal(got, want) {
			return fmt.Errorf("experiments: %s on %v: output %d mismatch (%d vs %d bytes)",
				o.kernel.Name(), o.arch, slot, len(got), len(want))
		}
	}
	return nil
}

// geoMean returns the geometric mean of positive values.
func geoMean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vs {
		if v <= 0 {
			return 0
		}
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(vs)))
}

// gbps formats bytes/second as GB/s.
func gbps(v float64) string { return fmt.Sprintf("%.2f", v/1e9) }

// msOf formats simulated time as milliseconds.
func msOf(t sim.Time) string { return fmt.Sprintf("%.3f", float64(t)/float64(sim.Millisecond)) }
