package experiments

import (
	"strings"
	"testing"
)

func TestAblationWindowDepth(t *testing.T) {
	cfg := Quick()
	rows, err := AblationWindow(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Deeper windows never hurt, and P=1 is clearly worse than P=8.
	if rows[0].Throughput >= rows[3].Throughput {
		t.Errorf("P=1 (%.2e) not worse than P=8 (%.2e)", rows[0].Throughput, rows[3].Throughput)
	}
	// Diminishing returns: the last doubling gains little.
	gainLast := rows[4].Throughput / rows[3].Throughput
	if gainLast > 1.25 {
		t.Errorf("P=16 over P=8 gains %.2fx; window model suspicious", gainLast)
	}
	if s := FormatAblationWindow(rows); !strings.Contains(s, "P") {
		t.Error("format broken")
	}
}

func TestAblationDRAMSensitivity(t *testing.T) {
	cfg := Quick()
	rows, err := AblationDRAM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first, last := rows[0], rows[len(rows)-1]
	// Baseline scales with DRAM bandwidth (memory-wall signature).
	if last.Baseline <= first.Baseline*1.2 {
		t.Errorf("Baseline insensitive to DRAM bandwidth: %.2e -> %.2e", first.Baseline, last.Baseline)
	}
	// AssasinSb is DRAM-independent for stream data.
	ratio := last.AssasinSb / first.AssasinSb
	if ratio < 0.95 || ratio > 1.05 {
		t.Errorf("AssasinSb varies with DRAM bandwidth: %.3f", ratio)
	}
	// At starved DRAM the gap is enormous.
	if first.AssasinSb/first.Baseline < 2 {
		t.Errorf("at 2GB/s DRAM, Sb/Baseline = %.2f, want > 2", first.AssasinSb/first.Baseline)
	}
	if s := FormatAblationDRAM(rows); !strings.Contains(s, "DRAM") {
		t.Error("format broken")
	}
}

func TestMixedIOGenerality(t *testing.T) {
	cfg := Quick()
	r, err := MixedIO(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.OffloadThroughput <= 0 {
		t.Fatal("offload made no progress under I/O")
	}
	if r.BusyReadMean < r.IdleReadMean {
		t.Error("reads faster under load")
	}
	if r.BusyReadMean > 50*r.IdleReadMean {
		t.Errorf("reads starved: %v vs %v", r.BusyReadMean, r.IdleReadMean)
	}
	if s := FormatMixedIO(r); !strings.Contains(s, "generality") {
		t.Error("format broken")
	}
}
