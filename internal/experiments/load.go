package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"assasin/internal/firmware"
	"assasin/internal/kernels"
	"assasin/internal/nvme"
	"assasin/internal/runpool"
	"assasin/internal/sim"
	"assasin/internal/ssd"
	"assasin/internal/telemetry"
	"assasin/internal/telemetry/reqtrace"
	"assasin/internal/telemetry/slo"
	"assasin/internal/telemetry/window"
)

// LoadConfig parameterizes the open-loop load experiment: a Poisson arrival
// process with Zipf key skew drives conventional reads and writes through
// the unmodified nvme path (optionally alongside a scan offload) while the
// SLO engine aggregates per-tenant latency objectives over sliding windows.
type LoadConfig struct {
	// Requests is the conventional-command count per drive.
	Requests int `json:"requests"`
	// RatePerSec is the mean Poisson arrival rate in simulated requests per
	// second. Keep it below the flash array's page service rate — the
	// generator is open-loop, so overload grows queues without bound.
	RatePerSec float64 `json:"rate_per_sec"`
	// Tenants are the IO tenant labels; arrivals are assigned uniformly at
	// random (deterministically, from the drive's seed).
	Tenants []string `json:"tenants"`
	// ReadFraction is the probability an arrival is a read (the rest are
	// single-page writes).
	ReadFraction float64 `json:"read_fraction"`
	// PagesPerIO is the page count per read command.
	PagesPerIO int `json:"pages_per_io"`
	// Keys is the distinct-LPA key-space size; ZipfS/ZipfV shape the skew
	// (rand.Zipf: s > 1, v >= 1).
	Keys  int     `json:"keys"`
	ZipfS float64 `json:"zipf_s"`
	ZipfV float64 `json:"zipf_v"`
	// Drives is how many independent drives run the workload (fanned out
	// over Config.Workers; results are byte-identical for any worker count).
	Drives int `json:"drives"`
	// Seed derives each drive's private PRNG stream.
	Seed int64 `json:"seed"`
	// OffloadMB, when > 0, runs a concurrent scan offload of this input size
	// on every drive, traced under OffloadTenant — the Section V-A mixed
	// workload under sustained IO.
	OffloadMB     float64 `json:"offload_mb"`
	OffloadTenant string  `json:"offload_tenant"`
	// Window is the sliding-window geometry shared by the SLO engine and
	// the per-tenant live metrics.
	Window window.Config `json:"window"`
	// Objectives (nil selects defaultLoadObjectives over Tenants) and Rules
	// (nil selects slo.DefaultRules) configure the engine.
	Objectives []slo.Objective `json:"objectives,omitempty"`
	Rules      []slo.Rule      `json:"rules,omitempty"`
	// OnEval, when non-nil, receives a fresh SLO status and live window
	// snapshot at every burn-evaluation boundary — the live-serving
	// publication hook. It runs on the drive's simulation goroutine: with
	// Drives > 1 and Workers > 1 it must be goroutine-safe.
	OnEval func(drive int, st *slo.Status, live *window.Snapshot) `json:"-"`
}

// DefaultLoad is the benchmark-scale open-loop workload: 2 drives × 60k
// requests (120k total) over two tenants at 250k req/s simulated, one scan
// offload per drive, 10 ms window split into 20 buckets.
func DefaultLoad() LoadConfig {
	return LoadConfig{
		Requests:      60_000,
		RatePerSec:    2.5e5,
		Tenants:       []string{"gold", "silver"},
		ReadFraction:  0.99,
		PagesPerIO:    1,
		Keys:          1024,
		ZipfS:         1.2,
		ZipfV:         8,
		Drives:        2,
		Seed:          1,
		OffloadMB:     1,
		OffloadTenant: "batch",
		Window:        window.Config{WindowPs: 10 * int64(sim.Millisecond), Buckets: 20},
	}
}

// QuickLoad is small enough for unit tests.
func QuickLoad() LoadConfig {
	lc := DefaultLoad()
	lc.Requests = 2_000
	lc.Drives = 2
	lc.OffloadMB = 0.125
	lc.Window = window.Config{WindowPs: 5 * int64(sim.Millisecond), Buckets: 10}
	return lc
}

// withDefaults resolves zero fields.
func (lc LoadConfig) withDefaults() LoadConfig {
	d := DefaultLoad()
	if lc.Requests <= 0 {
		lc.Requests = d.Requests
	}
	if lc.RatePerSec <= 0 {
		lc.RatePerSec = d.RatePerSec
	}
	if len(lc.Tenants) == 0 {
		lc.Tenants = d.Tenants
	}
	if lc.ReadFraction <= 0 || lc.ReadFraction > 1 {
		lc.ReadFraction = d.ReadFraction
	}
	if lc.PagesPerIO <= 0 {
		lc.PagesPerIO = d.PagesPerIO
	}
	if lc.Keys <= lc.PagesPerIO {
		lc.Keys = d.Keys
	}
	if lc.ZipfS <= 1 {
		lc.ZipfS = d.ZipfS
	}
	if lc.ZipfV < 1 {
		lc.ZipfV = d.ZipfV
	}
	if lc.Drives <= 0 {
		lc.Drives = 1
	}
	if lc.Seed == 0 {
		lc.Seed = d.Seed
	}
	if lc.OffloadTenant == "" {
		lc.OffloadTenant = d.OffloadTenant
	}
	return lc
}

// ParseLoadSpec overlays semicolon-separated key=value pairs from a -load
// flag onto a base configuration:
//
//	requests=100000;rate=3e5;tenants=gold,silver,bronze;read=0.95
//
// Keys: requests, rate (req/s), tenants (comma-separated), read (fraction),
// pages, keys, zipfs, zipfv, drives, seed, offloadmb, offloadtenant,
// window (duration: 10ms, 1s, ...), buckets. Unknown keys are errors so
// typos fail fast.
func ParseLoadSpec(spec string, base LoadConfig) (LoadConfig, error) {
	lc := base
	for _, pair := range strings.Split(spec, ";") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		key, val, ok := strings.Cut(pair, "=")
		if !ok {
			return lc, fmt.Errorf("load spec %q: want key=value", pair)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		var err error
		switch key {
		case "requests":
			lc.Requests, err = strconv.Atoi(val)
		case "rate":
			lc.RatePerSec, err = strconv.ParseFloat(val, 64)
		case "tenants":
			lc.Tenants = nil
			for _, t := range strings.Split(val, ",") {
				if t = strings.TrimSpace(t); t != "" {
					lc.Tenants = append(lc.Tenants, t)
				}
			}
		case "read":
			lc.ReadFraction, err = strconv.ParseFloat(val, 64)
		case "pages":
			lc.PagesPerIO, err = strconv.Atoi(val)
		case "keys":
			lc.Keys, err = strconv.Atoi(val)
		case "zipfs":
			lc.ZipfS, err = strconv.ParseFloat(val, 64)
		case "zipfv":
			lc.ZipfV, err = strconv.ParseFloat(val, 64)
		case "drives":
			lc.Drives, err = strconv.Atoi(val)
		case "seed":
			lc.Seed, err = strconv.ParseInt(val, 10, 64)
		case "offloadmb":
			lc.OffloadMB, err = strconv.ParseFloat(val, 64)
		case "offloadtenant":
			lc.OffloadTenant = val
		case "window":
			lc.Window.WindowPs, err = slo.ParseDuration(val)
		case "buckets":
			lc.Window.Buckets, err = strconv.Atoi(val)
		default:
			return lc, fmt.Errorf("load spec: unknown key %q", key)
		}
		if err != nil {
			return lc, fmt.Errorf("load spec %q: %v", pair, err)
		}
	}
	return lc, nil
}

// defaultLoadObjectives builds one latency SLO per tenant plus an aggregate
// availability-and-latency SLO over everything.
func defaultLoadObjectives(tenants []string) []slo.Objective {
	var objs []slo.Objective
	for _, t := range tenants {
		objs = append(objs, slo.Objective{
			Name: t, Tenant: t, Target: 0.999, LatencyPs: 400 * int64(sim.Microsecond),
		})
	}
	objs = append(objs, slo.Objective{
		Name: "all", Target: 0.99, LatencyPs: 800 * int64(sim.Microsecond),
	})
	return objs
}

// LoadTenantRow is one tenant's sustained-rate and latency digest on one
// drive at the end of the run.
type LoadTenantRow struct {
	Drive       int     `json:"drive"`
	Tenant      string  `json:"tenant"`
	Requests    int64   `json:"requests"`
	PerSecond   float64 `json:"per_second"`
	WindowP50Ps float64 `json:"window_p50_ps"`
	WindowP95Ps float64 `json:"window_p95_ps"`
	WindowP99Ps float64 `json:"window_p99_ps"`
	TotalP99Ps  float64 `json:"total_p99_ps"`
	MaxPs       int64   `json:"max_ps"`
}

// LoadDrive is one drive's end-of-run state.
type LoadDrive struct {
	Drive      int              `json:"drive"`
	DurationPs int64            `json:"duration_ps"`
	Completed  int64            `json:"completed"`
	Status     *slo.Status      `json:"slo"`
	Live       *window.Snapshot `json:"live"`
	// TracerCount/TracerP99Ps are the reqtrace cumulative view ("req/
	// latency_ps" on the drive's sink) — the reconciliation reference for
	// the rolling histograms.
	TracerCount int64   `json:"tracer_count"`
	TracerP99Ps float64 `json:"tracer_p99_ps"`
}

// LoadResult is the full experiment artifact (SLO_load.json).
type LoadResult struct {
	Config  LoadConfig      `json:"config"`
	Drives  []LoadDrive     `json:"drives"`
	Tenants []LoadTenantRow `json:"tenants"`
	Firing  int             `json:"firing_alerts"`
}

// tenantAcc is the per-tenant live accounting registered on the engine's
// window domain (visible in /live snapshots as tenant/<name>/...).
type tenantAcc struct {
	tenant string
	rate   *window.Rate
	hist   *window.Hist
}

// RunLoad drives the open-loop workload over lc.Drives independent drives
// (fanned out over cfg.Workers) and returns the merged result. Every drive
// owns a private sink, tracer, PRNG, and SLO engine, so the result is
// byte-identical for any Workers setting.
func RunLoad(cfg Config, lc LoadConfig) (*LoadResult, error) {
	lc = lc.withDefaults()
	objectives := lc.Objectives
	if objectives == nil {
		objectives = defaultLoadObjectives(lc.Tenants)
	}
	type driveOut struct {
		drive   LoadDrive
		tenants []LoadTenantRow
	}
	outs, err := runpool.Map(cfg.workers(), lc.Drives, func(di int) (driveOut, error) {
		eng, err := slo.New(slo.Config{Objectives: objectives, Rules: lc.Rules, Window: lc.Window})
		if err != nil {
			return driveOut{}, err
		}
		tel := telemetry.NewSink()
		tel.MaxEvents = -1
		tel.StartRun(fmt.Sprintf("load/drive%d", di))
		tracer := reqtrace.New(tel, reqtrace.Config{TopK: 8})
		s := ssd.New(ssd.Options{
			Arch:      ssd.AssasinSb,
			Cores:     cfg.Cores,
			Exec:      cfg.Exec,
			DataPlane: cfg.DataPlane,
			Telemetry: tel,
			Requests:  tracer,
			OnAdvance: eng.Tick,
			Log:       cfg.Log,
		})

		// Per-tenant live metrics share the engine's window domain so /live
		// serves them alongside the objective series.
		accs := make(map[string]*tenantAcc, len(lc.Tenants)+1)
		addAcc := func(t string) {
			if _, ok := accs[t]; ok {
				return
			}
			accs[t] = &tenantAcc{
				tenant: t,
				rate:   eng.Windows().Rate("tenant/" + t + "/req"),
				hist:   eng.Windows().Hist("tenant/" + t + "/latency"),
			}
		}
		for _, t := range lc.Tenants {
			addAcc(t)
		}
		if lc.OffloadMB > 0 {
			addAcc(lc.OffloadTenant)
		}
		tracer.OnComplete = func(r *reqtrace.Request) {
			done := r.SubmitPs + r.LatencyPs
			eng.ObserveRequest(done, r.Tenant, r.Kind, r.LatencyPs, false)
			if acc := accs[r.Tenant]; acc != nil {
				acc.rate.Inc(done)
				acc.hist.Observe(done, r.LatencyPs)
			}
		}
		tracer.OnAbort = func(r *reqtrace.Request) {
			eng.ObserveRequest(r.SubmitPs, r.Tenant, r.Kind, 0, true)
		}
		if lc.OnEval != nil {
			eng.OnEval = func(boundaryPs int64) {
				lc.OnEval(di, eng.Status(boundaryPs), eng.Windows().Snapshot(boundaryPs))
			}
		}

		// Key space: an installed region the Zipf keys index into.
		ps := s.Opt.Flash.PageSize
		keyData := randData(lc.Keys*ps, lc.Seed+int64(di)*7919)
		keyLPAs, err := s.InstallBytes(keyData)
		if err != nil {
			return driveOut{}, err
		}
		pageBuf := randData(ps+64, lc.Seed+int64(di)*7919+1)[:ps] // shared write payload

		ctl := nvme.New(s, nvme.DefaultConfig())
		rng := rand.New(rand.NewSource(lc.Seed + int64(di)*7919))
		zipf := rand.NewZipf(rng, lc.ZipfS, lc.ZipfV, uint64(lc.Keys-lc.PagesPerIO))
		interarrival := func() sim.Time {
			dt := -math.Log(1-rng.Float64()) * 1e12 / lc.RatePerSec
			if dt < 1 {
				dt = 1
			}
			return sim.Time(dt)
		}

		var maxDone sim.Time
		var completed int64
		var ioErr error
		onDone := func(c nvme.IOCompletion) {
			if c.Err != nil {
				if ioErr == nil {
					ioErr = c.Err
				}
				return
			}
			completed++
			if c.Done > maxDone {
				maxDone = c.Done
			}
		}
		// Self-perpetuating arrival chain: each arrival event submits one
		// command and schedules the next arrival, keeping the event heap
		// O(1) in the request count. All PRNG draws happen in arrival order,
		// so the schedule is a pure function of the seed.
		var arrive func(at sim.Time, left int)
		arrive = func(at sim.Time, left int) {
			s.Sched.Events.Schedule(at, func(now sim.Time) {
				eng.Tick(int64(now))
				req := nvme.IORequest{
					LPA:      keyLPAs[int(zipf.Uint64())],
					SubmitAt: now,
					Tenant:   lc.Tenants[rng.Intn(len(lc.Tenants))],
				}
				if rng.Float64() < lc.ReadFraction {
					req.Op, req.Pages, req.Discard = nvme.OpRead, lc.PagesPerIO, true
				} else {
					req.Op, req.Pages, req.Data = nvme.OpWrite, 1, pageBuf
				}
				ctl.Submit(req, onDone)
				if left > 1 {
					arrive(now+interarrival(), left-1)
				}
			})
		}
		if lc.Requests > 0 {
			arrive(interarrival(), lc.Requests)
		}

		// Optional concurrent offload: RunOffload drives the shared event
		// queue, so arrivals interleave with the scan exactly as in MixedIO.
		if lc.OffloadMB > 0 {
			data := randData(int(lc.OffloadMB*(1<<20)), lc.Seed+int64(di)*7919+2)
			lpas, err := s.InstallBytes(data)
			if err != nil {
				return driveOut{}, err
			}
			tasks, err := s.BuildTasks(ssd.KernelRun{
				Kernel:     kernels.Scan{},
				Inputs:     [][]int{lpas},
				InputBytes: []int64{int64(len(data))},
				RecordSize: 16,
				Cores:      cfg.Cores,
				OutKind:    firmware.OutDiscard,
			})
			if err != nil {
				return driveOut{}, err
			}
			s.SetRequestLabel(nvme.OpSComp.String())
			s.SetRequestTenant(lc.OffloadTenant)
			if _, err := s.RunOffload(tasks, 0); err != nil {
				return driveOut{}, err
			}
		}
		// Drain the arrivals beyond the offload's end (or the whole run when
		// there is no offload).
		s.Sched.Events.Drain(0)
		if ioErr != nil {
			return driveOut{}, fmt.Errorf("load: drive %d: %w", di, ioErr)
		}
		if completed < int64(lc.Requests) {
			return driveOut{}, fmt.Errorf("load: drive %d completed %d of %d requests", di, completed, lc.Requests)
		}

		endPs := int64(maxDone)
		eng.Tick(endPs)
		out := driveOut{drive: LoadDrive{
			Drive:       di,
			DurationPs:  endPs,
			Completed:   completed,
			Status:      eng.Status(endPs),
			Live:        eng.Windows().Snapshot(endPs),
			TracerCount: tracer.Count(),
			TracerP99Ps: tel.Histogram("req", "latency_ps").Percentile(0.99),
		}}
		rowTenants := append([]string(nil), lc.Tenants...)
		if lc.OffloadMB > 0 && accs[lc.OffloadTenant] != nil && !contains(rowTenants, lc.OffloadTenant) {
			rowTenants = append(rowTenants, lc.OffloadTenant)
		}
		for _, t := range rowTenants {
			acc := accs[t]
			if acc == nil || acc.rate.Total() == 0 {
				continue
			}
			win := acc.hist.Window()
			row := LoadTenantRow{
				Drive:       di,
				Tenant:      t,
				Requests:    acc.rate.Total(),
				WindowP50Ps: win.Percentile(0.50),
				WindowP95Ps: win.Percentile(0.95),
				WindowP99Ps: win.Percentile(0.99),
				TotalP99Ps:  acc.hist.Cumulative().Percentile(0.99),
				MaxPs:       acc.hist.Cumulative().MaxValue(),
			}
			if endPs > 0 {
				row.PerSecond = float64(row.Requests) * 1e12 / float64(endPs)
			}
			out.tenants = append(out.tenants, row)
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	res := &LoadResult{Config: lc}
	for _, o := range outs {
		res.Drives = append(res.Drives, o.drive)
		res.Tenants = append(res.Tenants, o.tenants...)
		res.Firing += o.drive.Status.Firing()
	}
	return res, nil
}

// contains reports whether list holds s.
func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// fmtLoadPs renders picosecond latencies as microseconds for the table.
func fmtLoadPs(ps float64) string { return fmt.Sprintf("%.1f", ps/1e6) }

// FormatLoad renders the per-tenant sustained-rate and rolling-latency
// table plus the firing-alert summary.
func FormatLoad(r *LoadResult) string {
	var b strings.Builder
	b.WriteString("Load — open-loop Poisson arrivals, Zipf keys, per-tenant SLOs\n")
	fmt.Fprintf(&b, "%-6s %-10s %10s %12s %10s %10s %10s %10s\n",
		"drive", "tenant", "requests", "req/s", "winP50us", "winP95us", "winP99us", "cumP99us")
	for _, t := range r.Tenants {
		fmt.Fprintf(&b, "%-6d %-10s %10d %12.0f %10s %10s %10s %10s\n",
			t.Drive, t.Tenant, t.Requests, t.PerSecond,
			fmtLoadPs(t.WindowP50Ps), fmtLoadPs(t.WindowP95Ps),
			fmtLoadPs(t.WindowP99Ps), fmtLoadPs(t.TotalP99Ps))
	}
	for _, d := range r.Drives {
		fmt.Fprintf(&b, "drive %d: %d requests over %.3f ms simulated", d.Drive, d.Completed,
			float64(d.DurationPs)/1e9)
		if f := d.Status.Firing(); f > 0 {
			fmt.Fprintf(&b, ", %d alert(s) firing", f)
		}
		b.WriteString("\n")
	}
	return b.String()
}
