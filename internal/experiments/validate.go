package experiments

import (
	"fmt"
	"strings"
)

// ExperimentIDs lists the assasin-bench experiment names in the order
// `-exp all` runs them.
func ExperimentIDs() []string {
	return []string{
		"table2", "table4", "fig5", "fig13", "fig14", "fig15", "fig16",
		"fig17", "fig18", "fig19", "fig20", "fig21", "table5", "fig22",
		"ablation", "load",
	}
}

// ValidateNames checks a list of experiment names against ExperimentIDs.
func ValidateNames(names []string) error {
	valid := map[string]bool{}
	for _, id := range ExperimentIDs() {
		valid[id] = true
	}
	for _, n := range names {
		if !valid[n] {
			return fmt.Errorf("unknown experiment %q (valid: all, %s)",
				n, strings.Join(ExperimentIDs(), ", "))
		}
	}
	return nil
}

// ValidateOverrides rejects nonsensical CLI overrides before any
// simulation starts. Zero means "no override" for every parameter, so only
// negatives are errors.
func ValidateOverrides(cores, parallel int, sf, mb float64) error {
	if cores < 0 {
		return fmt.Errorf("-cores must be >= 0, got %d", cores)
	}
	if parallel < 0 {
		return fmt.Errorf("-parallel must be >= 0, got %d", parallel)
	}
	if sf < 0 {
		return fmt.Errorf("-sf must be >= 0, got %g", sf)
	}
	if mb < 0 {
		return fmt.Errorf("-mb must be >= 0, got %g", mb)
	}
	return nil
}
