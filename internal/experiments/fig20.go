package experiments

import (
	"fmt"
	"strings"

	"assasin/internal/power"
	"assasin/internal/ssd"
)

// Table4 renders the configuration table (Table IV).
func Table4(cfg Config) string {
	var b strings.Builder
	b.WriteString("Table IV — configurations of in-SSD compute engines\n")
	rows := []struct{ name, source, isa, mem string }{
		{"Baseline", "DRAM (8GB/s)", "RV32IM", "L1D 32K/8w + L2 256K/16w"},
		{"UDP", "DRAM (8GB/s)", "UDP lane (branch-free dispatch)", "256K scratchpad (fw copy-in)"},
		{"Prefetch", "DRAM (8GB/s)", "RV32IM", "L1D+L2 + DCPT prefetcher"},
		{"AssasinSp", "Flash via crossbar", "RV32IM", "64K scratchpad + ping-pong I/O scratchpads"},
		{"AssasinSb", "Flash via crossbar", "RV32IM + stream ISA", "64K scratchpad + 64K I + 64K O streambuffer (S=8)"},
		{"AssasinSb$", "Flash via crossbar", "RV32IM + stream ISA", "AssasinSb + 32K L1D"},
	}
	fmt.Fprintf(&b, "%-12s%-22s%-34s%s\n", "Config", "Data source", "ISA", "MemArch per core (32K L1I omitted)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s%-22s%-34s%s\n", r.name, r.source, r.isa, r.mem)
	}
	fmt.Fprintf(&b, "All: %d cores @1GHz, 8×1GB/s flash channels, 8GB/s LPDDR5, PCIe Gen4 x4 host\n", cfg.Cores)
	return b.String()
}

// Fig20Row is one memory structure's access timing.
type Fig20Row struct {
	Structure string
	Bytes     int
	WidthB    int
	TimeNS    float64
	Cycles1G  int // cycles at 1 GHz
}

// Fig20 evaluates access timing of the candidate memory structures, the
// circuit study behind the clock adjustments: the streambuffer's prefetched
// head FIFO reaches 0.5 ns even 64 B wide, while scratchpads need 2 cycles
// at useful sizes.
func Fig20() []Fig20Row {
	var rows []Fig20Row
	add := func(name string, bytes, width int, ns float64) {
		cycles := 1
		for float64(cycles) < ns {
			cycles++
		}
		rows = append(rows, Fig20Row{name, bytes, width, ns, cycles})
	}
	for _, size := range []int{8 << 10, 16 << 10, 32 << 10, 64 << 10} {
		add("scratchpad (8B port)", size, 8, power.AccessTimeNS(size, 8))
	}
	for _, size := range []int{16 << 10, 64 << 10} {
		add("scratchpad (64B SIMD port)", size, 64, power.AccessTimeNS(size, 64))
	}
	add("streambuffer head FIFO", 128<<10, 1, power.FIFOAccessTimeNS(1))
	add("streambuffer head FIFO", 128<<10, 64, power.FIFOAccessTimeNS(64))
	return rows
}

// FormatFig20 renders the timing study plus the clock conclusion.
func FormatFig20(rows []Fig20Row) string {
	var b strings.Builder
	b.WriteString("Fig 20 — memory structure access timing (SAED14-class model)\n")
	fmt.Fprintf(&b, "%-28s%10s%8s%10s%10s\n", "Structure", "Size", "Width", "ns", "cyc@1GHz")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s%9dK%7dB%10.2f%10d\n", r.Structure, r.Bytes>>10, r.WidthB, r.TimeNS, r.Cycles1G)
	}
	fifo := power.FIFOAccessTimeNS(64)
	b.WriteString(fmt.Sprintf(
		"=> streambuffer MEM stage at %.2f ns shifts the critical path to IF: clock period 1.00 -> 0.89 ns (11%% faster)\n", fifo))
	b.WriteString("=> 64K scratchpad cannot close 1 GHz single-cycle: AssasinSp pays 2-cycle accesses\n")
	return b.String()
}

// Table5Config is the silicon cost of one configuration's compute complex.
type Table5Config struct {
	Arch ssd.Arch
	Cost power.Cost
}

// Table5Costs returns per-configuration compute-complex costs (8 engines).
func Table5Costs(cores int) []Table5Config {
	perCore := map[ssd.Arch]power.Cost{
		ssd.Baseline: power.CoreLogic().
			Add(power.Cache(32 << 10)). // L1I
			Add(power.Cache(32 << 10)). // L1D
			Add(power.Cache(256 << 10)),
		ssd.Prefetch: power.CoreLogic().
			Add(power.Cache(32 << 10)).
			Add(power.Cache(32 << 10)).
			Add(power.Cache(256 << 10)).
			Add(power.Cost{AreaMM2: 0.004, PowerMW: 1.0}), // DCPT tables
		ssd.UDP: power.UDPLane().
			Add(power.SRAM(256 << 10)),
		ssd.AssasinSp: power.CoreLogic().
			Add(power.Cache(32 << 10)). // L1I
			Add(power.SRAM(64 << 10)).  // state scratchpad
			Add(power.SRAM(128 << 10)), // ping-pong I/O scratchpads
		ssd.AssasinSb: power.CoreLogic().
			Add(power.Cache(32 << 10)).
			Add(power.SRAM(64 << 10)).
			Add(power.StreamBufferCost(128 << 10)), // 64K I + 64K O
		ssd.AssasinSbCache: power.CoreLogic().
			Add(power.Cache(32 << 10)).
			Add(power.SRAM(64 << 10)).
			Add(power.StreamBufferCost(128 << 10)).
			Add(power.Cache(32 << 10)),
	}
	var out []Table5Config
	for _, a := range ssd.AllArchs() {
		out = append(out, Table5Config{Arch: a, Cost: perCore[a].Scale(float64(cores))})
	}
	return out
}

// FormatTable5 renders component and per-config costs.
func FormatTable5(cores int) string {
	var b strings.Builder
	b.WriteString("Table V — power and area (14nm-class analytical model)\n")
	b.WriteString("Components:\n")
	for _, c := range power.ComponentTable() {
		fmt.Fprintf(&b, "  %s\n", c)
	}
	fmt.Fprintf(&b, "Configurations (%d engines):\n", cores)
	for _, c := range Table5Costs(cores) {
		fmt.Fprintf(&b, "  %-12s %8.3f mm² %9.1f mW\n", c.Arch, c.Cost.AreaMM2, c.Cost.PowerMW)
	}
	return b.String()
}

// Fig22Row is speedup and efficiency relative to Baseline.
type Fig22Row struct {
	Arch     ssd.Arch
	Speedup  float64
	PowerEff float64 // speedup ÷ relative power
	AreaEff  float64 // speedup ÷ relative area
}

// Fig22 combines the timing-adjusted speedups with Table V costs into the
// power- and area-efficiency comparison (the paper: AssasinSb reaches 2.0×
// power efficiency and 3.2× area efficiency over Baseline).
func Fig22(speedups map[ssd.Arch]float64, cores int) []Fig22Row {
	costs := map[ssd.Arch]power.Cost{}
	for _, c := range Table5Costs(cores) {
		costs[c.Arch] = c.Cost
	}
	base := costs[ssd.Baseline]
	var rows []Fig22Row
	for _, a := range ssd.AllArchs() {
		sp := speedups[a]
		relPower := costs[a].PowerMW / base.PowerMW
		relArea := costs[a].AreaMM2 / base.AreaMM2
		rows = append(rows, Fig22Row{
			Arch:     a,
			Speedup:  sp,
			PowerEff: sp / relPower,
			AreaEff:  sp / relArea,
		})
	}
	return rows
}

// FormatFig22 renders the efficiency comparison.
func FormatFig22(rows []Fig22Row) string {
	var b strings.Builder
	b.WriteString("Fig 22 — speedup and efficiency over Baseline (timing-adjusted)\n")
	fmt.Fprintf(&b, "%-12s%10s%12s%12s\n", "Config", "Speedup", "Power-eff", "Area-eff")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s%9.2fx%11.2fx%11.2fx\n", r.Arch, r.Speedup, r.PowerEff, r.AreaEff)
	}
	return b.String()
}
