package experiments

import (
	"bytes"
	"sync"
	"testing"

	"assasin/internal/telemetry"
	"assasin/internal/telemetry/analyze"
	"assasin/internal/telemetry/reqtrace"
)

// captureTable2Requests runs the Table II survey with per-run request
// tracing at the given pool width, returning each run's summary JSON keyed
// by label.
func captureTable2Requests(t *testing.T, workers int) map[string]string {
	t.Helper()
	cfg := quickFor(workers)
	cfg.Telemetry = telemetry.NewSink()
	cfg.PerRunTelemetry = true
	cfg.Requests = 4
	var mu sync.Mutex
	sums := make(map[string]string)
	cfg.OnRunDone = func(rec RunRecord) {
		if rec.Requests == nil {
			t.Errorf("%s: no request summary on record", rec.Label)
			return
		}
		var buf bytes.Buffer
		if err := reqtrace.WriteSummariesJSON(&buf, []*reqtrace.Summary{rec.Requests}); err != nil {
			t.Error(err)
			return
		}
		mu.Lock()
		sums[rec.Label] = buf.String()
		mu.Unlock()
	}
	if _, err := Table2(cfg); err != nil {
		t.Fatal(err)
	}
	return sums
}

// TestRequestsParallelDeterminism checks that per-run request tracing is
// parallel-safe end to end: every run's summary JSON — IDs, latencies,
// critical paths, top-K ordering — is byte-identical between sequential and
// 4-way parallel execution.
func TestRequestsParallelDeterminism(t *testing.T) {
	seq := captureTable2Requests(t, 1)
	par := captureTable2Requests(t, 4)
	if len(seq) == 0 || len(seq) != len(par) {
		t.Fatalf("summary counts differ: %d vs %d", len(seq), len(par))
	}
	for label, s := range seq {
		if p, ok := par[label]; !ok {
			t.Errorf("parallel run missing request summary for %s", label)
		} else if s != p {
			t.Errorf("%s: request summary JSON differs between workers=1 and workers=4:\n--- seq\n%s\n--- par\n%s", label, s, p)
		}
	}
}

// TestCriticalPathInvariant is the exactness contract over every Table II
// workload on both architectures: for every traced request the critical-path
// segments sum EXACTLY to the submit→complete latency, contain no
// unattributed residue, and the summary's per-class totals reconcile with
// the attribution engine's numbers for the same run.
func TestCriticalPathInvariant(t *testing.T) {
	cfg := quickFor(1)
	cfg.Requests = 4
	checked := 0
	cfg.OnRunDone = func(rec RunRecord) {
		sum := rec.Requests
		if sum == nil || sum.Count == 0 || len(sum.Slowest) == 0 {
			t.Errorf("%s: no traced requests", rec.Label)
			return
		}
		for _, req := range sum.Slowest {
			var total int64
			for _, sg := range req.Critical {
				total += sg.DurPs
				if sg.Class == reqtrace.ClassUnattributed {
					t.Errorf("%s request %d: unattributed segment of %dps\n%+v",
						rec.Label, req.ID, sg.DurPs, req.Critical)
				}
				if sg.DurPs <= 0 {
					t.Errorf("%s request %d: non-positive segment %+v", rec.Label, req.ID, sg)
				}
			}
			if total != req.LatencyPs {
				t.Errorf("%s request %d: segments sum to %dps, latency is %dps\n%+v",
					rec.Label, req.ID, total, req.LatencyPs, req.Critical)
			}
			checked++
		}
		// The tracer's per-task stat deltas must agree with the attribution
		// engine, which reads the same counters from the run's CoreStats:
		// fresh SSD, one offload, so deltas equal absolutes.
		run := rec.AttributionRun()
		want := map[string]int64{
			analyze.ClassCoreBusy:         run.BusyPs,
			analyze.ClassCacheDRAMWait:    run.CacheDRAMWaitPs,
			analyze.ClassStreamRefillWait: run.StreamRefillWaitPs,
			analyze.ClassOutFullWait:      run.OutFullWaitPs,
			analyze.ClassExecStall:        run.ExecStallPs,
		}
		for class, w := range want {
			if got := sum.ClassTotalsPs[class]; got != w {
				t.Errorf("%s: tracer %s total = %dps, attribution says %dps", rec.Label, class, got, w)
			}
		}
	}
	if _, err := Table2(cfg); err != nil {
		t.Fatal(err)
	}
	if checked == 0 {
		t.Fatal("no requests checked")
	}
}
