package experiments

import (
	"fmt"
	"strings"

	"assasin/internal/cpu"
	"assasin/internal/firmware"
	"assasin/internal/kernels"
	"assasin/internal/runpool"
	"assasin/internal/sim"
	"assasin/internal/ssd"
)

// standaloneKernels returns the Fig. 13 workloads in the paper's order of
// increasing compute intensity, with their run parameters.
func standaloneKernels(cfg Config) []runSpec {
	kb := int(cfg.KernelMB * (1 << 20))
	aes := int(cfg.AESKB * 1024)
	return []runSpec{
		{
			name: "Stat", kernel: kernels.Stat{}, recordSize: 4,
			inputs: 1, bytesPer: kb, outKind: firmware.OutDiscard,
		},
		{
			name: "RAID4", kernel: kernels.RAID4{K: 4}, recordSize: 4,
			inputs: 4, bytesPer: kb / 4, outKind: firmware.OutToFlash,
		},
		{
			name: "RAID6", kernel: kernels.RAID6{K: 4}, recordSize: 4,
			inputs: 4, bytesPer: kb / 8, outKind: firmware.OutToFlash,
		},
		{
			name: "AES", kernel: kernels.AES{}, recordSize: 16,
			inputs: 1, bytesPer: aes, outKind: firmware.OutToFlash,
		},
	}
}

// runSpec describes one standalone workload.
type runSpec struct {
	name       string
	kernel     kernels.Kernel
	recordSize int
	inputs     int
	bytesPer   int
	outKind    firmware.OutKind
}

func (s runSpec) buildInputs() [][]byte {
	var ins [][]byte
	for i := 0; i < s.inputs; i++ {
		ins = append(ins, randData(s.bytesPer, int64(1000+i)))
	}
	return ins
}

// Fig13Row is one kernel's throughput across the Table IV configurations.
type Fig13Row struct {
	Kernel     string
	Throughput map[ssd.Arch]float64 // bytes/second of input stream
}

// Fig13 measures standalone function-offload throughput on all six
// configurations (pre-timing-adjustment clocks, as in the paper's Fig. 13).
func Fig13(cfg Config) ([]Fig13Row, error) {
	return standaloneSweep(cfg, false)
}

// Fig21 is Fig. 13 re-run with the circuit-derived clock adjustments of
// Fig. 20 (AssasinSb at 1.124 GHz, 2-cycle scratchpads).
func Fig21(cfg Config) ([]Fig13Row, error) {
	return standaloneSweep(cfg, true)
}

func standaloneSweep(cfg Config, adjusted bool) ([]Fig13Row, error) {
	specs := standaloneKernels(cfg)
	archs := ssd.AllArchs()
	// Inputs are built once per kernel and shared read-only by every
	// configuration's run.
	inputs := make([][][]byte, len(specs))
	for i, spec := range specs {
		inputs[i] = spec.buildInputs()
	}
	// One job per (kernel, configuration); each run builds its own SSD.
	tputs, err := runpool.Map(cfg.workers(), len(specs)*len(archs), func(j int) (float64, error) {
		spec, arch := specs[j/len(archs)], archs[j%len(archs)]
		o := cfg.instrument(runOpts{
			arch:       arch,
			adjusted:   adjusted,
			cores:      cfg.Cores,
			kernel:     spec.kernel,
			inputs:     inputs[j/len(archs)],
			recordSize: spec.recordSize,
			outKind:    spec.outKind,
			collect:    cfg.Verify && spec.outKind != firmware.OutDiscard,
			exec:       cfg.Exec,
		})
		r, err := runStandalone(o)
		if err != nil {
			return 0, fmt.Errorf("%s on %v: %w", spec.name, arch, err)
		}
		if cfg.Verify {
			if err := verifyOutputs(o, r); err != nil {
				return 0, err
			}
		}
		return r.throughput(), nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]Fig13Row, len(specs))
	for i, spec := range specs {
		rows[i] = Fig13Row{Kernel: spec.name, Throughput: map[ssd.Arch]float64{}}
		for a, arch := range archs {
			rows[i].Throughput[arch] = tputs[i*len(archs)+a]
		}
	}
	return rows, nil
}

// FormatFig13 renders the rows as the figure's bar-chart data.
func FormatFig13(title string, rows []Fig13Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — offloaded standalone function throughput (GB/s)\n", title)
	fmt.Fprintf(&b, "%-8s", "Kernel")
	for _, a := range ssd.AllArchs() {
		fmt.Fprintf(&b, "%12s", a)
	}
	fmt.Fprintf(&b, "%14s\n", "Sb/Baseline")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s", r.Kernel)
		for _, a := range ssd.AllArchs() {
			fmt.Fprintf(&b, "%12s", gbps(r.Throughput[a]))
		}
		sp := r.Throughput[ssd.AssasinSb] / r.Throughput[ssd.Baseline]
		fmt.Fprintf(&b, "%13.2fx\n", sp)
	}
	return b.String()
}

// Fig5Result is the Baseline cycle decomposition of the motivating Filter
// example (Section III-A).
type Fig5Result struct {
	Throughput    float64 // per-engine B/s
	BusyFrac      float64
	MemStallFrac  float64
	WaitStallFrac float64
	ExecStallFrac float64
}

// Fig5 reproduces the motivating example: the Filter function on one
// Baseline compute engine, with its cycle decomposition showing the memory
// wall (the paper reports 0.63 GB/s with memory stalls dominating).
func Fig5(cfg Config) (*Fig5Result, error) {
	data := lineitemTuples(int(cfg.KernelMB * (1 << 20)))
	k := filterKernel()
	o := cfg.instrument(runOpts{
		arch:       ssd.Baseline,
		cores:      1,
		kernel:     k,
		inputs:     [][]byte{data},
		recordSize: filterTupleSize,
		outKind:    firmware.OutToHost,
		collect:    cfg.Verify,
		exec:       cfg.Exec,
	})
	r, err := runStandalone(o)
	if err != nil {
		return nil, err
	}
	if cfg.Verify {
		if err := verifyOutputs(o, r); err != nil {
			return nil, err
		}
	}
	st := r.res.CoreStats[0]
	total := float64(st.TotalTime())
	return &Fig5Result{
		Throughput:    float64(len(data)) / r.res.Duration.Seconds(),
		BusyFrac:      float64(st.BusyTime) / total,
		MemStallFrac:  float64(st.StallTime[cpu.StallMem]) / total,
		WaitStallFrac: float64(st.StallTime[cpu.StallStreamWait]) / total,
		ExecStallFrac: float64(st.StallTime[cpu.StallExec]) / total,
	}, nil
}

// FormatFig5 renders the decomposition.
func FormatFig5(r *Fig5Result) string {
	return fmt.Sprintf(`Fig 5 — Filter on one Baseline engine (cycle decomposition)
  throughput        %s GB/s
  busy              %5.1f%%
  memory stalls     %5.1f%%
  data-wait stalls  %5.1f%%
  exec stalls       %5.1f%%
`, gbps(r.Throughput), 100*r.BusyFrac, 100*r.MemStallFrac, 100*r.WaitStallFrac, 100*r.ExecStallFrac)
}

// filterTupleSize is the binary lineitem tuple size of the motivating
// example (quantity, price, discount, tax, shipdate + padding).
const filterTupleSize = 32

// filterKernel is the Q6-like predicate of the motivating example.
func filterKernel() kernels.Filter {
	return kernels.Filter{
		TupleSize: filterTupleSize,
		Preds: []kernels.FieldPred{
			{Offset: 16, Lo: 19940101, Hi: 19941231}, // shipdate window
			{Offset: 0, Lo: 0, Hi: 23},               // quantity < 24
		},
	}
}

// lineitemTuples serializes a binary lineitem-like array: 32-byte tuples
// with quantity@0, price@4, discount@8, tax@12, shipdate@16.
func lineitemTuples(totalBytes int) []byte {
	n := totalBytes / filterTupleSize
	data := make([]byte, n*filterTupleSize)
	rng := newSplitMix(42)
	for i := 0; i < n; i++ {
		base := i * filterTupleSize
		putU32(data[base+0:], uint32(1+rng.next()%50))
		putU32(data[base+4:], uint32(90000+rng.next()%100000))
		putU32(data[base+8:], uint32(rng.next()%11)*100)
		putU32(data[base+12:], uint32(rng.next()%9)*100)
		y := 1992 + rng.next()%7
		m := 1 + rng.next()%12
		d := 1 + rng.next()%28
		putU32(data[base+16:], uint32(y*10000+m*100+d))
		putU32(data[base+20:], uint32(i))
	}
	return data
}

type splitMix struct{ s uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{s: seed} }

func (r *splitMix) next() int {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int((z ^ (z >> 31)) & 0x7FFFFFFF)
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

// SpeedupSummary condenses a sweep into per-arch geomean speedup over
// Baseline — the input to the Fig. 22 efficiency computation.
func SpeedupSummary(rows []Fig13Row) map[ssd.Arch]float64 {
	out := map[ssd.Arch]float64{}
	for _, a := range ssd.AllArchs() {
		var ratios []float64
		for _, r := range rows {
			base := r.Throughput[ssd.Baseline]
			if base > 0 && r.Throughput[a] > 0 {
				ratios = append(ratios, r.Throughput[a]/base)
			}
		}
		out[a] = geoMean(ratios)
	}
	return out
}

var _ = sim.Time(0)
