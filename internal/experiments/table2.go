package experiments

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"strings"

	"assasin/internal/firmware"
	"assasin/internal/kernels"
	"assasin/internal/runpool"
	"assasin/internal/ssd"
)

// Table2Row is one computational-storage function from the workload study
// (Table II), measured on Baseline vs AssasinSb.
type Table2Row struct {
	Function  string
	StateDesc string
	Baseline  float64
	AssasinSb float64
	Cores     int
}

// Table2 runs the full implemented slice of the paper's workload survey —
// every Table II function built in this repository — as offloads on the
// Baseline and AssasinSb configurations. It is the executable version of
// the paper's claim that computational-storage functions are feasible as
// stream computing with bounded random-access state.
func Table2(cfg Config) ([]Table2Row, error) {
	kb := int(cfg.KernelMB * (1 << 20) / 2)
	mlp := kernels.MLP{}
	train := kernels.LinearTrain{}
	lz := kernels.LZDecompress{}
	lzStream := lz.Compress(kernels.CompressibleData(kb, 21))

	type entry struct {
		name   string
		state  string
		kernel kernels.Kernel
		inputs [][]byte
		rec    int
		out    firmware.OutKind
		cores  int // 0 = cfg.Cores
	}
	entries := []entry{
		{"Statistics", "accumulators (regs)", kernels.Stat{}, [][]byte{randData(kb, 41)}, 4, firmware.OutDiscard, 0},
		{"Erasure coding (RAID6)", "GF tables (scratchpad)", kernels.RAID6{K: 4},
			[][]byte{randData(kb/4, 42), randData(kb/4, 43), randData(kb/4, 44), randData(kb/4, 45)}, 4, firmware.OutToFlash, 0},
		{"Cryptography (AES-128)", "round keys + T-tables", kernels.AES{}, [][]byte{randData(int(cfg.AESKB*1024), 46)}, 16, firmware.OutToFlash, 0},
		{"Filter", "flags/preds (regs)", filterKernel(), [][]byte{lineitemTuples(kb)}, filterTupleSize, firmware.OutToHost, 0},
		{"Select", "none", kernels.Select{TupleSize: 32, FieldOffsets: []int{0, 16}}, [][]byte{lineitemTuples(kb)}, 32, firmware.OutToHost, 0},
		{"Parse (PSF)", "state machine (code)", kernels.PSF{NumFields: 16, Project: []int{0, 4, 10}},
			[][]byte{psfCSV(kb, 47)}, 0, firmware.OutToHost, 1},
		{"Deduplicate", "signature table (scratchpad)", kernels.Dedup{}, [][]byte{dedupData(kb, 48)}, 512, firmware.OutToHost, 0},
		{"Decompress (LZ)", "history window (scratchpad)", lz, [][]byte{lzStream}, 0, firmware.OutToHost, 1},
		{"NN inference (MLP)", "weights (scratchpad)", mlp, [][]byte{mlpRecords(mlp, kb, 49)}, mlp.RecordSize(), firmware.OutToHost, 0},
		{"Graph (degree count)", "vertex stats (scratchpad)", kernels.Degree{}, [][]byte{edgeList(kb, 50)}, kernels.EdgeSize, firmware.OutDiscard, 0},
		{"Replicate", "flags (regs)", kernels.Replicate{}, [][]byte{randData(kb, 51)}, 4, firmware.OutToFlash, 0},
		{"NN training (SGD)", "weights (scratchpad)", train, [][]byte{trainRecords(train, kb, 52)}, train.RecordSize(), firmware.OutDiscard, 0},
	}

	// One job per (function, configuration); entry inputs were generated
	// above and are shared read-only.
	archs := []ssd.Arch{ssd.Baseline, ssd.AssasinSb}
	tputs, err := runpool.Map(cfg.workers(), len(entries)*len(archs), func(j int) (float64, error) {
		e, arch := entries[j/len(archs)], archs[j%len(archs)]
		cores := e.cores
		if cores == 0 {
			cores = cfg.Cores
		}
		rec := e.rec
		if rec == 0 {
			rec = len(e.inputs[0]) // unsplittable stream: one core
			cores = 1
		}
		o := cfg.instrument(runOpts{
			arch:       arch,
			cores:      cores,
			kernel:     e.kernel,
			inputs:     e.inputs,
			recordSize: rec,
			outKind:    e.out,
			collect:    cfg.Verify && e.out != firmware.OutDiscard,
			exec:       cfg.Exec,
		})
		r, err := runStandalone(o)
		if err != nil {
			return 0, fmt.Errorf("%s on %v: %w", e.name, arch, err)
		}
		if cfg.Verify {
			if err := verifyOutputs(o, r); err != nil {
				return 0, err
			}
		}
		return r.throughput(), nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]Table2Row, len(entries))
	for i, e := range entries {
		cores := e.cores
		if cores == 0 {
			cores = cfg.Cores
		}
		if e.rec == 0 {
			cores = 1
		}
		rows[i] = Table2Row{
			Function: e.name, StateDesc: e.state, Cores: cores,
			Baseline: tputs[i*len(archs)], AssasinSb: tputs[i*len(archs)+1],
		}
	}
	return rows, nil
}

// FormatTable2 renders the workload study.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table II (executable) — stream-computing implementations of storage functions (GB/s)\n")
	fmt.Fprintf(&b, "%-24s%-30s%7s%10s%11s%9s\n", "Function", "Function state", "Cores", "Baseline", "AssasinSb", "Speedup")
	for _, r := range rows {
		sp := 0.0
		if r.Baseline > 0 {
			sp = r.AssasinSb / r.Baseline
		}
		fmt.Fprintf(&b, "%-24s%-30s%7d%10s%11s%8.2fx\n", r.Function, r.StateDesc, r.Cores, gbps(r.Baseline), gbps(r.AssasinSb), sp)
	}
	return b.String()
}

// psfCSV builds parseable 16-field integer CSV of roughly n bytes.
func psfCSV(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	for b.Len() < n {
		for f := 0; f < 16; f++ {
			if f > 0 {
				b.WriteByte('|')
			}
			fmt.Fprintf(&b, "%d", rng.Intn(100000))
		}
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// dedupData builds chunked data with a controlled duplicate ratio.
func dedupData(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	const chunk = 512
	uniques := make([][]byte, 32)
	for i := range uniques {
		u := make([]byte, chunk)
		rng.Read(u)
		uniques[i] = u
	}
	out := make([]byte, 0, n)
	for len(out)+chunk <= n {
		out = append(out, uniques[rng.Intn(len(uniques))]...)
	}
	return out
}

// mlpRecords builds feature records with small non-negative values.
func mlpRecords(k kernels.MLP, n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	rec := k.RecordSize()
	n -= n % rec
	out := make([]byte, n)
	for i := 0; i+4 <= n; i += 4 {
		binary.LittleEndian.PutUint32(out[i:], uint32(rng.Intn(256)))
	}
	return out
}

// edgeList builds a random edge list over the default vertex range.
func edgeList(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	n -= n % kernels.EdgeSize
	out := make([]byte, n)
	for i := 0; i+kernels.EdgeSize <= n; i += kernels.EdgeSize {
		binary.LittleEndian.PutUint32(out[i:], uint32(rng.Intn(4096)))
		binary.LittleEndian.PutUint32(out[i+4:], uint32(rng.Intn(4096)))
	}
	return out
}

// trainRecords builds labelled training records with small values.
func trainRecords(k kernels.LinearTrain, n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	rec := k.RecordSize()
	n -= n % rec
	out := make([]byte, n)
	for i := 0; i+4 <= n; i += 4 {
		binary.LittleEndian.PutUint32(out[i:], uint32(rng.Intn(64)))
	}
	return out
}
