package experiments

import (
	"assasin/internal/cpu"
	"assasin/internal/sim"
	"assasin/internal/ssd"
	"assasin/internal/telemetry"
	"assasin/internal/telemetry/analyze"
	"assasin/internal/telemetry/kprof"
	"assasin/internal/telemetry/reqtrace"
	"assasin/internal/telemetry/timeline"
)

// RunRecord is the observable summary of one completed standalone run,
// delivered to Config.OnRunDone. It carries everything the attribution
// engine needs: the per-core cycle decomposition plus (when the run was
// instrumented) the telemetry snapshot taken right after PublishStats.
type RunRecord struct {
	// Label is "<kernel>/<arch>", the same label the trace run uses.
	Label      string
	Kernel     string
	Arch       ssd.Arch
	Cores      int
	Duration   sim.Time
	InputBytes int64
	CoreStats  []cpu.Stats
	// Metrics is the post-run telemetry snapshot, nil when the run was not
	// instrumented. Under Config.PerRunTelemetry it covers exactly this
	// run; on a shared sink it is cumulative across the fan-out so far.
	Metrics *telemetry.MetricsSnapshot
	// Timeline is the run's sampled timeline, nil unless Config.Timeline
	// was set.
	Timeline *timeline.Timeline
	// Requests is the run's request-trace summary (per-request critical
	// paths, top-K slowest), nil unless Config.Requests was set.
	Requests *reqtrace.Summary
	// Profile is the run's guest-kernel profile (per-pc cycle/stall
	// attribution), nil unless Config.KProf was set. Its per-class totals
	// sum exactly to AttributionRun's busy and stall times.
	Profile *kprof.Profile
}

// AttributionRun converts the record into the analyze package's input,
// mapping the simulator's stall taxonomy onto attribution classes:
// StallMem → cache-dram-wait, StallStreamWait → stream-refill-wait,
// StallOutFull → out-full-wait, StallExec → exec-stall.
func (r RunRecord) AttributionRun() analyze.Run {
	run := analyze.Run{
		Label:      r.Label,
		Kernel:     r.Kernel,
		Arch:       r.Arch.String(),
		Cores:      r.Cores,
		DurationPs: int64(r.Duration),
		InputBytes: r.InputBytes,
		Metrics:    r.Metrics,
	}
	for _, st := range r.CoreStats {
		run.BusyPs += int64(st.BusyTime)
		run.CacheDRAMWaitPs += int64(st.StallTime[cpu.StallMem])
		run.StreamRefillWaitPs += int64(st.StallTime[cpu.StallStreamWait])
		run.OutFullWaitPs += int64(st.StallTime[cpu.StallOutFull])
		run.ExecStallPs += int64(st.StallTime[cpu.StallExec])
	}
	return run
}
