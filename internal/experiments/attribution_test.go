package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"assasin/internal/firmware"
	"assasin/internal/kernels"
	"assasin/internal/ssd"
	"assasin/internal/telemetry"
	"assasin/internal/telemetry/analyze"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden attribution report under testdata/")

// attributionRun executes one Table II workload with OnRunDone wired and
// returns the captured record.
func attributionRun(t *testing.T, arch ssd.Arch, k kernels.Kernel, recordSize int, data []byte, tel *telemetry.Sink) RunRecord {
	t.Helper()
	var rec RunRecord
	_, err := runStandalone(runOpts{
		arch:       arch,
		cores:      2,
		kernel:     k,
		inputs:     [][]byte{data},
		recordSize: recordSize,
		outKind:    firmware.OutDiscard,
		telemetry:  tel,
		onRunDone:  func(r RunRecord) { rec = r },
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Label == "" {
		t.Fatal("OnRunDone was not invoked")
	}
	return rec
}

// TestMemoryWallAttribution is the paper's in-SSD memory-wall narrative as
// an assertion: on the Table II Stat workload the Baseline CSSD's largest
// stall class is the cache/DRAM wait, while AssasinSb's stream buffers keep
// the cores fed so core-busy becomes the largest class outright.
func TestMemoryWallAttribution(t *testing.T) {
	data := randData(256<<10, 7)

	base := analyze.Attribute(attributionRun(t, ssd.Baseline, kernels.Stat{}, 4, data, nil).AttributionRun())
	if base.LargestStall != analyze.ClassCacheDRAMWait {
		t.Errorf("Baseline largest stall = %s, want %s\n%s",
			base.LargestStall, analyze.ClassCacheDRAMWait, analyze.FormatReport(base))
	}
	if f := base.ClassFrac(analyze.ClassCacheDRAMWait); f < 0.25 {
		t.Errorf("Baseline cache/DRAM wait fraction = %.3f, want >= 0.25", f)
	}

	sb := analyze.Attribute(attributionRun(t, ssd.AssasinSb, kernels.Stat{}, 4, data, nil).AttributionRun())
	if sb.LargestClass != analyze.ClassCoreBusy {
		t.Errorf("AssasinSb largest class = %s, want %s\n%s",
			sb.LargestClass, analyze.ClassCoreBusy, analyze.FormatReport(sb))
	}
	if got, want := sb.ClassFrac(analyze.ClassCacheDRAMWait), 0.01; got > want {
		t.Errorf("AssasinSb cache/DRAM wait fraction = %.3f, want <= %.2f", got, want)
	}
	if sb.ThroughputBps <= base.ThroughputBps {
		t.Errorf("AssasinSb throughput %.0f <= Baseline %.0f", sb.ThroughputBps, base.ThroughputBps)
	}
}

// TestStreamRefillNearZero checks the flip side on a compute-bound Table II
// workload (AES): ASSASIN's stream buffers eliminate refill waits almost
// entirely, while the Baseline still pays its largest stall to cache/DRAM.
func TestStreamRefillNearZero(t *testing.T) {
	data := randData(64<<10, 9)

	sb := analyze.Attribute(attributionRun(t, ssd.AssasinSb, kernels.AES{}, 16, data, nil).AttributionRun())
	if f := sb.ClassFrac(analyze.ClassStreamRefillWait); f > 0.05 {
		t.Errorf("AssasinSb stream-refill fraction = %.3f, want <= 0.05", f)
	}
	if sb.LargestClass != analyze.ClassCoreBusy {
		t.Errorf("AssasinSb largest class = %s, want %s", sb.LargestClass, analyze.ClassCoreBusy)
	}

	base := analyze.Attribute(attributionRun(t, ssd.Baseline, kernels.AES{}, 16, data, nil).AttributionRun())
	if base.LargestStall != analyze.ClassCacheDRAMWait {
		t.Errorf("Baseline largest stall = %s, want %s\n%s",
			base.LargestStall, analyze.ClassCacheDRAMWait, analyze.FormatReport(base))
	}
}

// TestGoldenAttributionReport pins the full attribution JSON for the Stat
// memory-wall pair, telemetry attached (so component utilization and
// counter deltas are covered too). The simulation is deterministic, so the
// report is byte-stable; regenerate with
// go test ./internal/experiments -run GoldenAttribution -update
// after an intentional timing or instrumentation change.
func TestGoldenAttributionReport(t *testing.T) {
	data := randData(256<<10, 7)
	tel := telemetry.NewSink()

	var reports []*analyze.RunReport
	var prev *telemetry.MetricsSnapshot
	for _, arch := range []ssd.Arch{ssd.Baseline, ssd.AssasinSb} {
		rec := attributionRun(t, arch, kernels.Stat{}, 4, data, tel)
		run := rec.AttributionRun()
		run.Prev = prev
		reports = append(reports, analyze.Attribute(run))
		prev = rec.Metrics
	}
	analyze.SortReports(reports)

	var buf bytes.Buffer
	if err := analyze.WriteJSON(&buf, reports); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden_attribution.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("attribution report deviates from %s (%d vs %d bytes); run with -update if the change is intentional",
			golden, buf.Len(), len(want))
	}
}
