package experiments

import (
	"strings"
	"testing"
)

func TestValidateNames(t *testing.T) {
	if err := ValidateNames(ExperimentIDs()); err != nil {
		t.Fatalf("all known ids rejected: %v", err)
	}
	err := ValidateNames([]string{"fig13", "fig99"})
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if !strings.Contains(err.Error(), "fig99") || !strings.Contains(err.Error(), "fig13") {
		t.Fatalf("error should name the bad id and list valid ones: %v", err)
	}
}

func TestValidateOverrides(t *testing.T) {
	if err := ValidateOverrides(0, 0, 0, 0); err != nil {
		t.Fatalf("zero overrides rejected: %v", err)
	}
	if err := ValidateOverrides(8, 4, 0.01, 2); err != nil {
		t.Fatalf("valid overrides rejected: %v", err)
	}
	cases := []struct {
		cores, parallel int
		sf, mb          float64
		want            string
	}{
		{cores: -1, want: "-cores"},
		{parallel: -2, want: "-parallel"},
		{sf: -0.5, want: "-sf"},
		{mb: -1, want: "-mb"},
	}
	for _, c := range cases {
		err := ValidateOverrides(c.cores, c.parallel, c.sf, c.mb)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("ValidateOverrides(%d,%d,%g,%g) = %v, want error naming %s",
				c.cores, c.parallel, c.sf, c.mb, err, c.want)
		}
	}
}
