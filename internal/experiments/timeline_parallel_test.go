package experiments

import (
	"bytes"
	"sync"
	"testing"

	"assasin/internal/telemetry"
	"assasin/internal/telemetry/timeline"
)

// captureTable2 runs the Table II survey with per-run telemetry and
// timelines at the given pool width, returning the absorbed root-sink
// metrics JSON and each run's timeline JSON keyed by label.
func captureTable2(t *testing.T, workers int) (string, map[string]string) {
	t.Helper()
	cfg := quickFor(workers)
	root := telemetry.NewSink()
	cfg.Telemetry = root
	cfg.PerRunTelemetry = true
	cfg.Timeline = &timeline.Config{IntervalPs: 1_000_000}
	var mu sync.Mutex
	timelines := make(map[string]string)
	cfg.OnRunDone = func(rec RunRecord) {
		if rec.Timeline == nil {
			t.Errorf("%s: no timeline on record", rec.Label)
			return
		}
		if rec.Metrics == nil || rec.Metrics.Counters["fw/pages_fed"] <= 0 {
			t.Errorf("%s: per-run metrics snapshot missing or empty", rec.Label)
		}
		var buf bytes.Buffer
		if err := rec.Timeline.WriteJSON(&buf); err != nil {
			t.Error(err)
			return
		}
		mu.Lock()
		timelines[rec.Label] = buf.String()
		mu.Unlock()
	}
	if _, err := Table2(cfg); err != nil {
		t.Fatal(err)
	}
	var mbuf bytes.Buffer
	if err := root.WriteMetricsJSON(&mbuf); err != nil {
		t.Fatal(err)
	}
	return mbuf.String(), timelines
}

// TestTimelineParallelDeterminism checks the parallel-safe metrics path end
// to end: with per-run sinks absorbed at run boundaries, both the merged
// root snapshot and every per-run timeline are byte-identical between
// sequential and 4-way parallel execution.
func TestTimelineParallelDeterminism(t *testing.T) {
	seqMetrics, seqTLs := captureTable2(t, 1)
	parMetrics, parTLs := captureTable2(t, 4)

	if seqMetrics != parMetrics {
		t.Errorf("absorbed metrics snapshots differ between workers=1 and workers=4:\n--- seq\n%s\n--- par\n%s",
			seqMetrics, parMetrics)
	}
	if len(seqTLs) == 0 || len(seqTLs) != len(parTLs) {
		t.Fatalf("timeline counts differ: %d vs %d", len(seqTLs), len(parTLs))
	}
	for label, seq := range seqTLs {
		if par, ok := parTLs[label]; !ok {
			t.Errorf("parallel run missing timeline for %s", label)
		} else if seq != par {
			t.Errorf("%s: timeline JSON differs between workers=1 and workers=4", label)
		}
	}
}
