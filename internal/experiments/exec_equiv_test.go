package experiments

import (
	"fmt"
	"reflect"
	"testing"

	"assasin/internal/cpu"
	"assasin/internal/firmware"
	"assasin/internal/kernels"
	"assasin/internal/runpool"
	"assasin/internal/sim"
	"assasin/internal/ssd"
)

// equivEntry is one Table II workload at soak scale.
type equivEntry struct {
	name   string
	kernel kernels.Kernel
	inputs [][]byte
	rec    int
	out    firmware.OutKind
	cores  int
}

// equivEntries builds all Table II workloads at a reduced size.
func equivEntries() []equivEntry {
	const kb = 48 << 10
	mlp := kernels.MLP{}
	train := kernels.LinearTrain{}
	lz := kernels.LZDecompress{}
	return []equivEntry{
		{"Statistics", kernels.Stat{}, [][]byte{randData(kb, 41)}, 4, firmware.OutDiscard, 2},
		{"RAID6", kernels.RAID6{K: 4},
			[][]byte{randData(kb/4, 42), randData(kb/4, 43), randData(kb/4, 44), randData(kb/4, 45)}, 4, firmware.OutToFlash, 2},
		{"AES-128", kernels.AES{}, [][]byte{randData(16 << 10, 46)}, 16, firmware.OutToFlash, 2},
		{"Filter", filterKernel(), [][]byte{lineitemTuples(kb)}, filterTupleSize, firmware.OutToHost, 2},
		{"Select", kernels.Select{TupleSize: 32, FieldOffsets: []int{0, 16}}, [][]byte{lineitemTuples(kb)}, 32, firmware.OutToHost, 2},
		{"PSF", kernels.PSF{NumFields: 16, Project: []int{0, 4, 10}}, [][]byte{psfCSV(kb, 47)}, 0, firmware.OutToHost, 1},
		{"Dedup", kernels.Dedup{}, [][]byte{dedupData(kb, 48)}, 512, firmware.OutToHost, 2},
		{"LZ", lz, [][]byte{lz.Compress(kernels.CompressibleData(kb, 21))}, 0, firmware.OutToHost, 1},
		{"MLP", kernels.MLP{}, [][]byte{mlpRecords(mlp, kb, 49)}, mlp.RecordSize(), firmware.OutToHost, 2},
		{"Degree", kernels.Degree{}, [][]byte{edgeList(kb, 50)}, kernels.EdgeSize, firmware.OutDiscard, 2},
		{"Replicate", kernels.Replicate{}, [][]byte{randData(kb, 51)}, 4, firmware.OutToFlash, 2},
		{"SGD", train, [][]byte{trainRecords(train, kb, 52)}, train.RecordSize(), firmware.OutDiscard, 2},
	}
}

// TestExecFusedMatchesPrecise is the three-way equivalence soak for the
// fast execution engines: for every Table II workload on every
// architecture, offload runs with ExecMode=Fused and ExecMode=Compiled must
// both produce a byte-identical ssd.Result (duration, stall decomposition,
// collected output bytes, final registers) to ExecMode=Precise. Any timing
// or ordering divergence in the fused fast paths or the threaded-code
// translation shows up here as a Duration or CoreStats mismatch.
func TestExecFusedMatchesPrecise(t *testing.T) {
	entries := equivEntries()
	archs := ssd.AllArchs()

	type job struct {
		entry equivEntry
		arch  ssd.Arch
	}
	var jobs []job
	for _, e := range entries {
		for _, a := range archs {
			jobs = append(jobs, job{e, a})
		}
	}
	_, err := runpool.Map(runpool.DefaultWorkers(), len(jobs), func(i int) (struct{}, error) {
		j := jobs[i]
		if err := compareExecModes(j.entry, j.arch, 0); err != nil {
			return struct{}{}, err
		}
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestExecEquivalenceWithCoreQuantum repeats the check for a run quantum
// above the scheduler default: per-process quanta coarsen the interleaving
// identically in both modes, so results must still match exactly.
func TestExecEquivalenceWithCoreQuantum(t *testing.T) {
	entries := equivEntries()
	for _, e := range []equivEntry{entries[0], entries[3]} { // Statistics, Filter
		for _, arch := range []ssd.Arch{ssd.Baseline, ssd.AssasinSb} {
			if err := compareExecModes(e, arch, 4*sim.Microsecond); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func compareExecModes(e equivEntry, arch ssd.Arch, quantum sim.Time) error {
	run := func(mode cpu.ExecMode) (*ssd.Result, error) {
		rec := e.rec
		cores := e.cores
		if rec == 0 {
			rec = len(e.inputs[0]) // unsplittable stream: one core
			cores = 1
		}
		r, err := runStandalone(runOpts{
			arch:        arch,
			cores:       cores,
			kernel:      e.kernel,
			inputs:      e.inputs,
			recordSize:  rec,
			outKind:     e.out,
			collect:     e.out != firmware.OutDiscard,
			exec:        mode,
			coreQuantum: quantum,
		})
		if err != nil {
			return nil, fmt.Errorf("%s on %v (%v): %w", e.name, arch, mode, err)
		}
		return r.res, nil
	}
	precise, err := run(cpu.ExecPrecise)
	if err != nil {
		return err
	}
	for _, mode := range []cpu.ExecMode{cpu.ExecFused, cpu.ExecCompiled} {
		got, err := run(mode)
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(precise, got) {
			return fmt.Errorf("%s on %v (quantum %v): %v result diverges from precise:\nprecise: duration %v stats %+v\n%v: duration %v stats %+v",
				e.name, arch, quantum, mode, precise.Duration, precise.CoreStats, mode, got.Duration, got.CoreStats)
		}
	}
	return nil
}
