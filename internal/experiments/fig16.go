package experiments

import (
	"fmt"
	"strings"

	"assasin/internal/sim"

	"assasin/internal/firmware"
	"assasin/internal/ftl"
	"assasin/internal/kernels"
	"assasin/internal/runpool"
	"assasin/internal/ssd"
)

// Fig16Point is one core-count sample of the scalability study.
type Fig16Point struct {
	Cores int
	// Throughput is aggregate scan throughput in B/s (Fig. 16).
	Throughput float64
	// Utilization is mean core busy fraction normalized by the ideal
	// (nominal core rate bounded by a fair flash share) — Fig. 17.
	Utilization float64
	// ChannelBytes is per-channel delivered bytes (Fig. 18, at this point's
	// core count).
	ChannelBytes []int64
	// ChannelThroughput is per-channel B/s over the run (Fig. 18).
	ChannelThroughput []float64
}

// scanCoreRate is the nominal per-core scan rate: the unrolled byte-scan
// retires u loads + 1 jump (2 cycles) per u bytes at 1 GHz.
func scanCoreRate(unroll int) float64 {
	return float64(unroll) / float64(unroll+2) * 1e9
}

// Fig16 runs the byte-scan scalability study over core counts (the paper's
// 1..16 sweep): linear compute scaling until the 8 GB/s flash array bound,
// with high core utilization and balanced channels (Figs. 16-18).
func Fig16(cfg Config) ([]Fig16Point, error) {
	scan := kernels.Scan{}
	coreCounts := []int{1, 2, 4, 8, 12, 16}
	// One job per core count; each builds its own input and SSD.
	return runpool.Map(cfg.workers(), len(coreCounts), func(i int) (Fig16Point, error) {
		cores := coreCounts[i]
		// Keep at least ~1 MB per core so the measurement is steady-state
		// dominated rather than fill-latency dominated.
		sizeMB := cfg.ScanMB
		if min := float64(cores); sizeMB < min {
			sizeMB = min
		}
		data := randData(int(sizeMB*(1<<20)), 77)
		r, err := runStandalone(cfg.instrument(runOpts{
			arch:       ssd.AssasinSb,
			cores:      cores,
			kernel:     scan,
			inputs:     [][]byte{data},
			recordSize: 16,
			outKind:    firmware.OutDiscard,
			// The single scan stream gets the whole 64 KiB ISB (the
			// firmware allocates slot capacity to active streams).
			windowPages: 16,
			exec:        cfg.Exec,
		}))
		if err != nil {
			return Fig16Point{}, fmt.Errorf("scan at %d cores: %w", cores, err)
		}
		tput := r.throughput()

		// Ideal per-core rate: nominal compute rate bounded by the fair
		// flash share (the paper's "derived by considering nominal
		// bandwidth relationships between cores and channels").
		flashBW := r.instance.Array.TotalBandwidth()
		ideal := scanCoreRate(scan.Unroll)
		if ideal == 0 {
			ideal = scanCoreRate(16)
		}
		fair := flashBW / float64(cores)
		if fair < ideal {
			ideal = fair
		}
		// Exclude the initial fill latency (sense + first transfers) from
		// the utilization window: the paper measures steady-state scans.
		startup := 30 * sim.Microsecond
		steady := r.res.Duration - startup
		if steady <= 0 {
			steady = r.res.Duration
		}
		util := float64(len(data)) / steady.Seconds() / float64(cores) / ideal

		p := Fig16Point{Cores: cores, Throughput: tput, Utilization: util}
		for c := 0; c < r.instance.Opt.Flash.Channels; c++ {
			bytesC := r.instance.Array.ChannelBytes(c)
			p.ChannelBytes = append(p.ChannelBytes, bytesC)
			p.ChannelThroughput = append(p.ChannelThroughput, float64(bytesC)/r.res.Duration.Seconds())
		}
		return p, nil
	})
}

// FormatFig16 renders throughput scaling.
func FormatFig16(points []Fig16Point) string {
	var b strings.Builder
	b.WriteString("Fig 16 — compute throughput vs ASSASIN core count (GB/s)\n")
	fmt.Fprintf(&b, "%-8s%14s%14s\n", "Cores", "Throughput", "Per-core")
	for _, p := range points {
		fmt.Fprintf(&b, "%-8d%14s%14s\n", p.Cores, gbps(p.Throughput), gbps(p.Throughput/float64(p.Cores)))
	}
	return b.String()
}

// FormatFig17 renders normalized utilization.
func FormatFig17(points []Fig16Point) string {
	var b strings.Builder
	b.WriteString("Fig 17 — core utilization normalized to ideal\n")
	fmt.Fprintf(&b, "%-8s%14s\n", "Cores", "Utilization")
	for _, p := range points {
		fmt.Fprintf(&b, "%-8d%13.1f%%\n", p.Cores, 100*p.Utilization)
	}
	return b.String()
}

// FormatFig18 renders the per-channel balance of the 8-core point.
func FormatFig18(points []Fig16Point) string {
	var pick *Fig16Point
	for i := range points {
		if points[i].Cores == 8 {
			pick = &points[i]
		}
	}
	if pick == nil && len(points) > 0 {
		pick = &points[len(points)-1]
	}
	var b strings.Builder
	b.WriteString("Fig 18 — per-flash-channel throughput (8 cores, GB/s)\n")
	if pick == nil {
		return b.String()
	}
	var min, max float64
	for c, t := range pick.ChannelThroughput {
		fmt.Fprintf(&b, "  channel %d: %s\n", c, gbps(t))
		if c == 0 || t < min {
			min = t
		}
		if t > max {
			max = t
		}
	}
	if max > 0 {
		fmt.Fprintf(&b, "  balance (min/max): %.3f\n", min/max)
	}
	return b.String()
}

// Fig19Point is one skew sample comparing the crossbar architecture with
// the channel-local alternative (Fig. 7).
type Fig19Point struct {
	Skew         float64 // configured layout skew
	MeasuredSkew float64 // the metric over the installed pages
	Crossbar     float64 // B/s
	ChannelLocal float64 // B/s
}

// Fig19 measures sensitivity to flash layout skew: ASSASIN's crossbar keeps
// pooled cores fed from however few channels hold the data, while
// channel-local compute degrades toward a single channel's core.
func Fig19(cfg Config) ([]Fig19Point, error) {
	size := int(cfg.ScanMB * (1 << 20) / 2)
	data := randData(size, 99)
	// A PSF-like moderate-intensity kernel (~2 cycles/byte): compute, not
	// the channel bus, is the per-core limit, so core pooling shows through.
	scan := kernels.Scan{Unroll: 2}
	// The channel-local alternative needs a core per channel.
	cores := cfg.Cores
	if min := ssd.DefaultFlashConfig().Channels; cores < min {
		cores = min
	}
	skews := []float64{0, 0.25, 0.5, 0.75, 1.0}
	// One job per skew point; the crossbar/channel-local pair stays inside
	// the job (both runs share the measured-skew computation).
	return runpool.Map(cfg.workers(), len(skews), func(i int) (Fig19Point, error) {
		skew := skews[i]
		var measured float64
		run := func(channelLocal bool) (float64, error) {
			if cfg.Telemetry != nil {
				mode := "xbar"
				if channelLocal {
					mode = "chlocal"
				}
				cfg.Telemetry.StartRun(fmt.Sprintf("skew%.2f/%s", skew, mode))
			}
			s := ssd.New(ssd.Options{
				Arch:         ssd.AssasinSb,
				Cores:        cores,
				ChannelLocal: channelLocal,
				Layout:       ftl.SkewedPolicy{Skew: skew},
				Exec:         cfg.Exec,
				DataPlane:    cfg.DataPlane,
				Telemetry:    cfg.Telemetry,
				Log:          cfg.Log,
			})
			lpas, err := s.InstallBytes(data)
			if err != nil {
				return 0, err
			}
			measured = s.FTL.Skew(lpas)
			ps := s.Opt.Flash.PageSize
			res, err := s.RunKernel(ssd.KernelRun{
				Kernel:            scan,
				Inputs:            [][]int{lpas},
				InputBytes:        []int64{int64(len(data))},
				RecordSize:        ps,
				Cores:             cores,
				OutKind:           firmware.OutDiscard,
				ChannelLocalSplit: channelLocal,
			})
			if err != nil {
				return 0, err
			}
			s.PublishStats()
			return res.Throughput(), nil
		}
		xbar, err := run(false)
		if err != nil {
			return Fig19Point{}, fmt.Errorf("skew %.2f crossbar: %w", skew, err)
		}
		local, err := run(true)
		if err != nil {
			return Fig19Point{}, fmt.Errorf("skew %.2f channel-local: %w", skew, err)
		}
		return Fig19Point{Skew: skew, MeasuredSkew: measured, Crossbar: xbar, ChannelLocal: local}, nil
	})
}

// FormatFig19 renders the sensitivity study.
func FormatFig19(points []Fig19Point) string {
	var b strings.Builder
	b.WriteString("Fig 19 — layout-skew sensitivity (GB/s)\n")
	fmt.Fprintf(&b, "%-8s%10s%12s%15s%10s\n", "Skew", "Measured", "Crossbar", "ChannelLocal", "Ratio")
	for _, p := range points {
		ratio := 0.0
		if p.ChannelLocal > 0 {
			ratio = p.Crossbar / p.ChannelLocal
		}
		fmt.Fprintf(&b, "%-8.2f%10.2f%12s%15s%9.2fx\n", p.Skew, p.MeasuredSkew, gbps(p.Crossbar), gbps(p.ChannelLocal), ratio)
	}
	return b.String()
}
