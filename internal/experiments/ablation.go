package experiments

import (
	"fmt"
	"strings"

	"assasin/internal/firmware"
	"assasin/internal/kernels"
	"assasin/internal/memhier"
	"assasin/internal/nvme"
	"assasin/internal/runpool"
	"assasin/internal/sim"
	"assasin/internal/ssd"
)

// Ablation experiments: design-choice sensitivity studies beyond the
// paper's figures (supplemental; indexed in DESIGN.md). Each isolates one
// parameter of the ASSASIN design and shows why the paper's choice sits
// where it does.

// AblationWindowRow is one stream-window depth sample.
type AblationWindowRow struct {
	WindowPages int
	Throughput  float64
}

// AblationWindow sweeps the per-slot stream window depth P for the scan
// workload: too shallow and cores stall on array-read jitter; beyond a few
// pages the returns vanish — the capacity argument behind the paper's
// small stream buffers.
func AblationWindow(cfg Config) ([]AblationWindowRow, error) {
	data := randData(int(cfg.ScanMB*(1<<20)), 31)
	depths := []int{1, 2, 4, 8, 16}
	return runpool.Map(cfg.workers(), len(depths), func(i int) (AblationWindowRow, error) {
		p := depths[i]
		r, err := runStandalone(cfg.instrument(runOpts{
			arch:        ssd.AssasinSb,
			cores:       cfg.Cores,
			kernel:      kernels.Scan{},
			inputs:      [][]byte{data},
			recordSize:  16,
			outKind:     firmware.OutDiscard,
			windowPages: p,
			exec:        cfg.Exec,
		}))
		if err != nil {
			return AblationWindowRow{}, fmt.Errorf("window %d: %w", p, err)
		}
		return AblationWindowRow{WindowPages: p, Throughput: r.throughput()}, nil
	})
}

// FormatAblationWindow renders the sweep.
func FormatAblationWindow(rows []AblationWindowRow) string {
	var b strings.Builder
	b.WriteString("Ablation A1 — stream window depth P (scan, GB/s)\n")
	fmt.Fprintf(&b, "%-8s%14s\n", "P", "Throughput")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8d%14s\n", r.WindowPages, gbps(r.Throughput))
	}
	return b.String()
}

// AblationDRAMRow is one DRAM-bandwidth sample for Baseline vs AssasinSb.
type AblationDRAMRow struct {
	BandwidthGBs float64
	Baseline     float64
	AssasinSb    float64
}

// AblationDRAM sweeps SSD DRAM bandwidth for the Stat kernel. Baseline
// throughput tracks DRAM bandwidth (the memory wall); AssasinSb is flat —
// the paper's "little to none memory bandwidth requirement".
func AblationDRAM(cfg Config) ([]AblationDRAMRow, error) {
	data := randData(int(cfg.KernelMB*(1<<20)), 32)
	bws := []float64{2e9, 4e9, 8e9, 16e9}
	archs := []ssd.Arch{ssd.Baseline, ssd.AssasinSb}
	// One job per (bandwidth, configuration).
	tputs, err := runpool.Map(cfg.workers(), len(bws)*len(archs), func(j int) (float64, error) {
		bw, arch := bws[j/len(archs)], archs[j%len(archs)]
		if cfg.Telemetry != nil {
			cfg.Telemetry.StartRun(fmt.Sprintf("dram%.0fGBps/%v", bw/1e9, arch))
		}
		s := ssd.New(ssd.Options{
			Arch:      arch,
			Cores:     cfg.Cores,
			DRAM:      memhier.DRAMConfig{BandwidthBytesPerSec: bw, Latency: 60 * sim.Nanosecond},
			Exec:      cfg.Exec,
			DataPlane: cfg.DataPlane,
			Telemetry: cfg.Telemetry,
			Log:       cfg.Log,
		})
		lpas, err := s.InstallBytes(data)
		if err != nil {
			return 0, err
		}
		res, err := s.RunKernel(ssd.KernelRun{
			Kernel:     kernels.Stat{},
			Inputs:     [][]int{lpas},
			InputBytes: []int64{int64(len(data))},
			RecordSize: 4,
			Cores:      cfg.Cores,
			OutKind:    firmware.OutDiscard,
		})
		if err != nil {
			return 0, fmt.Errorf("dram %g on %v: %w", bw, arch, err)
		}
		s.PublishStats()
		return res.Throughput(), nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]AblationDRAMRow, len(bws))
	for i, bw := range bws {
		rows[i] = AblationDRAMRow{
			BandwidthGBs: bw / 1e9,
			Baseline:     tputs[i*len(archs)],
			AssasinSb:    tputs[i*len(archs)+1],
		}
	}
	return rows, nil
}

// FormatAblationDRAM renders the sweep.
func FormatAblationDRAM(rows []AblationDRAMRow) string {
	var b strings.Builder
	b.WriteString("Ablation A2 — SSD DRAM bandwidth sensitivity (Stat, GB/s)\n")
	fmt.Fprintf(&b, "%-12s%12s%12s\n", "DRAM GB/s", "Baseline", "AssasinSb")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12.0f%12s%12s\n", r.BandwidthGBs, gbps(r.Baseline), gbps(r.AssasinSb))
	}
	return b.String()
}

// MixedIOResult reports the Section V-A generality check: conventional
// reads serviced during an offload.
type MixedIOResult struct {
	OffloadThroughput float64
	IdleReadMean      sim.Time
	BusyReadMean      sim.Time
}

// MixedIO runs conventional 4-page reads against an idle drive and against
// a drive running a full-rate scan offload, demonstrating that the ASSASIN
// architecture interleaves normal I/O with computational storage (no
// custom FTL, shared flash array).
func MixedIO(cfg Config) (*MixedIOResult, error) {
	run := func(withOffload bool) (float64, sim.Time, error) {
		if cfg.Telemetry != nil {
			label := "mixed-io/idle"
			if withOffload {
				label = "mixed-io/offload"
			}
			cfg.Telemetry.StartRun(label)
		}
		s := ssd.New(ssd.Options{Arch: ssd.AssasinSb, Cores: cfg.Cores,
			Exec: cfg.Exec, DataPlane: cfg.DataPlane, Telemetry: cfg.Telemetry, Log: cfg.Log})
		data := randData(int(cfg.ScanMB*(1<<20)), 33)
		lpas, err := s.InstallBytes(data)
		if err != nil {
			return 0, 0, err
		}
		ioData := randData(64*s.Opt.Flash.PageSize, 34)
		ioLpas, err := s.InstallBytes(ioData)
		if err != nil {
			return 0, 0, err
		}
		var tasks []ssd.TaskSpec
		if withOffload {
			tasks, err = s.BuildTasks(ssd.KernelRun{
				Kernel:     kernels.Scan{},
				Inputs:     [][]int{lpas},
				InputBytes: []int64{int64(len(data))},
				RecordSize: 16,
				Cores:      cfg.Cores,
				OutKind:    firmware.OutDiscard,
			})
			if err != nil {
				return 0, 0, err
			}
		}
		ctl := nvme.New(s, nvme.DefaultConfig())
		var reqs []nvme.IORequest
		for i := 0; i < 32; i++ {
			reqs = append(reqs, nvme.IORequest{
				Op: nvme.OpRead, LPA: ioLpas[(i*4)%60], Pages: 4,
				SubmitAt: 50*sim.Microsecond + sim.Time(i)*15*sim.Microsecond,
			})
		}
		res, comps, err := ctl.RunMixed(tasks, reqs, 0)
		if err != nil {
			return 0, 0, err
		}
		tput := 0.0
		if res != nil {
			tput = res.Throughput()
		}
		s.PublishStats()
		return tput, nvme.Latencies(comps).Mean, nil
	}
	// Two independent drives: job 0 idle, job 1 running the offload.
	type mixedRun struct {
		tput float64
		read sim.Time
	}
	outs, err := runpool.Map(cfg.workers(), 2, func(i int) (mixedRun, error) {
		tput, read, err := run(i == 1)
		return mixedRun{tput: tput, read: read}, err
	})
	if err != nil {
		return nil, err
	}
	return &MixedIOResult{
		OffloadThroughput: outs[1].tput,
		IdleReadMean:      outs[0].read,
		BusyReadMean:      outs[1].read,
	}, nil
}

// FormatMixedIO renders the generality check.
func FormatMixedIO(r *MixedIOResult) string {
	return fmt.Sprintf(`Ablation A3 — conventional reads interleaved with an offload (Section V-A generality)
  offload throughput while serving reads: %s GB/s
  4-page read latency, idle drive:        %v
  4-page read latency, offload running:   %v (%.2fx)
`, gbps(r.OffloadThroughput), r.IdleReadMean, r.BusyReadMean,
		float64(r.BusyReadMean)/float64(r.IdleReadMean))
}
