package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"assasin/internal/cpu"
	"assasin/internal/runpool"
	"assasin/internal/ssd"
	"assasin/internal/telemetry/kprof"
)

// TestKProfReconciliationSoak is the guest-profiler exactness pin: for
// every Table II workload on every architecture, a kprof-instrumented run
// must satisfy
//
//  1. the profile's per-pc totals sum exactly to the attribution engine's
//     class times (core-busy, exec-stall, stream-refill-wait,
//     out-full-wait, cache-dram-wait) and instruction count, and
//  2. the compiled and fused engines' profiles are byte-identical to the
//     precise engine's after export (JSON and pprof both), proving the
//     bulk-dispatch difference arrays spread exactly like per-instruction
//     stepping.
func TestKProfReconciliationSoak(t *testing.T) {
	entries := equivEntries()
	archs := ssd.AllArchs()

	type job struct {
		entry equivEntry
		arch  ssd.Arch
	}
	var jobs []job
	for _, e := range entries {
		for _, a := range archs {
			jobs = append(jobs, job{e, a})
		}
	}
	_, err := runpool.Map(runpool.DefaultWorkers(), len(jobs), func(i int) (struct{}, error) {
		j := jobs[i]
		return struct{}{}, compareKProf(j.entry, j.arch)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func compareKProf(e equivEntry, arch ssd.Arch) error {
	run := func(mode cpu.ExecMode) (RunRecord, error) {
		rec := e.rec
		cores := e.cores
		if rec == 0 {
			rec = len(e.inputs[0])
			cores = 1
		}
		var out RunRecord
		_, err := runStandalone(runOpts{
			arch:       arch,
			cores:      cores,
			kernel:     e.kernel,
			inputs:     e.inputs,
			recordSize: rec,
			outKind:    e.out,
			exec:       mode,
			kprof:      true,
			onRunDone:  func(r RunRecord) { out = r },
		})
		if err != nil {
			return out, fmt.Errorf("%s on %v (%v): %w", e.name, arch, mode, err)
		}
		if out.Profile == nil {
			return out, fmt.Errorf("%s on %v (%v): no profile delivered", e.name, arch, mode)
		}
		return out, nil
	}

	precise, err := run(cpu.ExecPrecise)
	if err != nil {
		return err
	}
	if err := checkProfileTotals(e.name, arch, precise); err != nil {
		return err
	}
	refJS, refPB, err := exportProfile(precise.Profile)
	if err != nil {
		return err
	}
	for _, mode := range []cpu.ExecMode{cpu.ExecFused, cpu.ExecCompiled} {
		got, err := run(mode)
		if err != nil {
			return err
		}
		if err := checkProfileTotals(e.name, arch, got); err != nil {
			return fmt.Errorf("%v: %w", mode, err)
		}
		js, pb, err := exportProfile(got.Profile)
		if err != nil {
			return err
		}
		if !bytes.Equal(js, refJS) {
			return fmt.Errorf("%s on %v: %v profile JSON diverges from precise:\nprecise: %s\n%v: %s",
				e.name, arch, mode, refJS, mode, js)
		}
		if !bytes.Equal(pb, refPB) {
			return fmt.Errorf("%s on %v: %v pprof bytes diverge from precise", e.name, arch, mode)
		}
	}
	return nil
}

// checkProfileTotals demands exact agreement between the profile's summed
// columns and the record's attribution-class times.
func checkProfileTotals(name string, arch ssd.Arch, rec RunRecord) error {
	insts, busy, exec, stream, outFull, mem := rec.Profile.Totals()
	attr := rec.AttributionRun()
	var wantInsts int64
	for _, st := range rec.CoreStats {
		wantInsts += st.Instructions
	}
	checks := []struct {
		what      string
		got, want int64
	}{
		{"instructions", insts, wantInsts},
		{"busy", busy, attr.BusyPs},
		{"exec-stall", exec, attr.ExecStallPs},
		{"stream-refill-wait", stream, attr.StreamRefillWaitPs},
		{"out-full-wait", outFull, attr.OutFullWaitPs},
		{"cache-dram-wait", mem, attr.CacheDRAMWaitPs},
	}
	for _, c := range checks {
		if c.got != c.want {
			return fmt.Errorf("%s on %v: profile %s %d != attribution %d",
				name, arch, c.what, c.got, c.want)
		}
	}
	return nil
}

func exportProfile(p *kprof.Profile) ([]byte, []byte, error) {
	js, err := json.Marshal(p)
	if err != nil {
		return nil, nil, err
	}
	pb, err := p.Pprof()
	if err != nil {
		return nil, nil, err
	}
	return js, pb, nil
}
