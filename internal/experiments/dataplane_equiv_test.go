package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"assasin/internal/firmware"
	"assasin/internal/runpool"
	"assasin/internal/sim"
	"assasin/internal/ssd"
	"assasin/internal/telemetry"
)

// TestDataPlaneCoalescedMatchesPerPage is the data-plane equivalence soak:
// for every Table II workload on every architecture, an offload run with the
// coalesced delivery train (the default) must produce an ssd.Result that is
// byte-identical — duration, stall decomposition, collected output bytes,
// final registers — to the per-page oracle, where every page delivery is its
// own scheduler event. Any drift in the coalescing conditions (train
// inlining past a contention boundary, a suppressed pump that was not
// provably dead, a clock not advanced through AdvanceTo) shows up here as a
// Duration or CoreStats mismatch.
func TestDataPlaneCoalescedMatchesPerPage(t *testing.T) {
	entries := equivEntries()
	archs := ssd.AllArchs()

	type job struct {
		entry equivEntry
		arch  ssd.Arch
	}
	var jobs []job
	for _, e := range entries {
		for _, a := range archs {
			jobs = append(jobs, job{e, a})
		}
	}
	_, err := runpool.Map(runpool.DefaultWorkers(), len(jobs), func(i int) (struct{}, error) {
		j := jobs[i]
		if err := compareDataPlanes(j.entry, j.arch, 0); err != nil {
			return struct{}{}, err
		}
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDataPlaneEquivalenceWithCoreQuantum repeats the check for a run
// quantum above the scheduler default: coarser core interleaving shifts
// which deliveries land inside a single dispatch round, so the train's
// Horizon guard gets exercised at different boundaries. Results must still
// match exactly.
func TestDataPlaneEquivalenceWithCoreQuantum(t *testing.T) {
	entries := equivEntries()
	for _, e := range []equivEntry{entries[0], entries[3]} { // Statistics, Filter
		for _, arch := range []ssd.Arch{ssd.Baseline, ssd.AssasinSb} {
			if err := compareDataPlanes(e, arch, 4*sim.Microsecond); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func compareDataPlanes(e equivEntry, arch ssd.Arch, quantum sim.Time) error {
	run := func(plane firmware.PlaneMode) (*ssd.Result, error) {
		rec := e.rec
		cores := e.cores
		if rec == 0 {
			rec = len(e.inputs[0]) // unsplittable stream: one core
			cores = 1
		}
		r, err := runStandalone(runOpts{
			arch:        arch,
			cores:       cores,
			kernel:      e.kernel,
			inputs:      e.inputs,
			recordSize:  rec,
			outKind:     e.out,
			collect:     e.out != firmware.OutDiscard,
			plane:       plane,
			coreQuantum: quantum,
		})
		if err != nil {
			return nil, fmt.Errorf("%s on %v (%v): %w", e.name, arch, plane, err)
		}
		return r.res, nil
	}
	perPage, err := run(firmware.PlanePerPage)
	if err != nil {
		return err
	}
	coalesced, err := run(firmware.PlaneCoalesced)
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(perPage, coalesced) {
		return fmt.Errorf("%s on %v (quantum %v): coalesced result diverges from per-page oracle:\nper-page:  duration %v stats %+v\ncoalesced: duration %v stats %+v",
			e.name, arch, quantum, perPage.Duration, perPage.CoreStats, coalesced.Duration, coalesced.CoreStats)
	}
	return nil
}

// TestDataPlaneTelemetryIdentical runs one instrumented workload under both
// plane modes and demands byte-identical telemetry: the same trace events in
// the same order with the same payloads, and identical metrics JSON. The
// coalesced train replays per-page telemetry from inside the bulk callback,
// so this pins the emission order and the sim-time stamps, not just the
// aggregate result.
func TestDataPlaneTelemetryIdentical(t *testing.T) {
	e := equivEntries()[0] // Statistics: exercises flash, crossbar, and stream buffers
	run := func(plane firmware.PlaneMode) *telemetry.Sink {
		tel := telemetry.NewSink()
		tel.StartRun("DataPlane") // same label both modes: trace bytes must match
		_, err := runStandalone(runOpts{
			arch:       ssd.AssasinSb,
			cores:      e.cores,
			kernel:     e.kernel,
			inputs:     e.inputs,
			recordSize: e.rec,
			outKind:    e.out,
			plane:      plane,
			telemetry:  tel,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tel
	}
	per := run(firmware.PlanePerPage)
	coa := run(firmware.PlaneCoalesced)

	pe, ce := per.Events(), coa.Events()
	if len(pe) != len(ce) {
		t.Fatalf("event count diverges: per-page %d, coalesced %d", len(pe), len(ce))
	}
	for i := range pe {
		pj, err := json.Marshal(pe[i])
		if err != nil {
			t.Fatal(err)
		}
		cj, err := json.Marshal(ce[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pj, cj) {
			t.Fatalf("event %d diverges:\nper-page:  %s\ncoalesced: %s", i, pj, cj)
		}
	}

	var pm, cm bytes.Buffer
	if err := per.WriteMetricsJSON(&pm); err != nil {
		t.Fatal(err)
	}
	if err := coa.WriteMetricsJSON(&cm); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pm.Bytes(), cm.Bytes()) {
		t.Fatalf("metrics JSON diverges between plane modes")
	}
}
