// Package ftl implements the flash translation layer: page-level
// logical-to-physical mapping, write allocation with pluggable placement
// policies, garbage collection, and erase-count-aware (wear-leveling) block
// selection.
//
// A key architectural point of the paper is that ASSASIN's crossbar leaves
// the FTL completely independent — no computational-storage-aware placement
// is needed. This FTL is therefore a conventional one: the default policy
// stripes logical pages across channels for storage performance, exactly
// what MQSim's FTL does in the paper's scalability experiment (Fig. 18).
// A skewed policy exists to *construct* the uneven layouts of the Fig. 19
// sensitivity study.
package ftl

import (
	"fmt"

	"assasin/internal/flash"
	"assasin/internal/sim"
	"assasin/internal/telemetry"
)

// Policy chooses the target channel for a logical page write.
type Policy interface {
	// Channel returns the channel for lpa given n channels.
	Channel(lpa, n int) int
	// Name labels the policy.
	Name() string
}

// StripedPolicy round-robins logical pages across channels — the
// conventional bandwidth-maximizing layout.
type StripedPolicy struct{}

// Channel implements Policy.
func (StripedPolicy) Channel(lpa, n int) int { return lpa % n }

// Name implements Policy.
func (StripedPolicy) Name() string { return "striped" }

// SkewedPolicy concentrates a fraction Skew of logical pages on channel 0
// and stripes the remainder, giving channel 0 the share
// Skew + (1-Skew)/n — the layout-skew knob of the paper's Fig. 19
// (Skew 0 = balanced, 1 = everything on one channel).
type SkewedPolicy struct {
	Skew float64
}

// Channel implements Policy. The skewed subset is selected by a hash so hot
// pages interleave with striped ones along the logical address space.
func (p SkewedPolicy) Channel(lpa, n int) int {
	// Fibonacci hash to [0,1).
	h := uint32(lpa) * 2654435761
	if float64(h)/float64(1<<32) < p.Skew {
		return 0
	}
	return lpa % n
}

// Name implements Policy.
func (p SkewedPolicy) Name() string { return fmt.Sprintf("skewed(%.2f)", p.Skew) }

// blockID identifies an erase block within the array.
type blockID struct {
	channel, chip, block int
}

type blockState struct {
	valid  int  // valid pages
	open   bool // currently receiving writes
	filled int  // pages programmed (write pointer)
}

// pageChunk is the lazy-allocation unit of the L2P/P2L tables. Devices are
// sized in the hundreds of thousands of pages while most runs map a few
// thousand, so flat pre-initialized tables dominated SSD construction cost
// (and GC pressure) in whole-experiment sweeps; chunks materialize only for
// touched regions of the address spaces.
const pageChunk = 1 << 12

// freeBlocks is the free set of one (channel, chip) pair: a dense
// bool-per-block slice with a count, cheaper to build and scan than the
// map it replaces (chips have only a few hundred blocks).
type freeBlocks struct {
	isFree []bool
	n      int
}

// FTL is the flash translation layer over one flash.Array.
type FTL struct {
	arr    *flash.Array
	cfg    flash.Config
	policy Policy

	total int           // device pages (logical and physical spaces)
	l2p   [][]flash.PPA // chunked logical -> physical; nil chunk or Page == -1 means unmapped
	p2l   [][]int       // chunked physical page index -> lpa; nil chunk or -1 invalid

	blocks map[blockID]*blockState
	// free blocks per (channel, chip)
	free [][]freeBlocks
	// openBlock per (channel, chip): the block receiving writes
	open [][]int

	// GCThreshold triggers collection when a (channel, chip) pair's free
	// block count drops to it.
	GCThreshold int

	// Tel, when non-nil, counts L2P translations; the cumulative Stats
	// (host/GC writes, erases, invocations) are published at snapshot time.
	Tel *Tel

	stats Stats
}

// Tel is the FTL telemetry bundle.
type Tel struct {
	Lookups *telemetry.Counter // successful L2P translations
}

// NewTel registers the FTL metrics on sink (nil sink -> nil Tel).
func NewTel(sink *telemetry.Sink) *Tel {
	if sink == nil {
		return nil
	}
	return &Tel{Lookups: sink.Counter("ftl", "lookups")}
}

// Stats counts FTL activity.
type Stats struct {
	HostWrites    int64 // pages written by the host/firmware
	GCWrites      int64 // pages migrated by garbage collection
	Erases        int64
	GCInvocations int64
}

// WriteAmplification returns (host+gc)/host writes.
func (s Stats) WriteAmplification() float64 {
	if s.HostWrites == 0 {
		return 1
	}
	return float64(s.HostWrites+s.GCWrites) / float64(s.HostWrites)
}

// New returns an FTL over arr with the given placement policy.
func New(arr *flash.Array, policy Policy) *FTL {
	cfg := arr.Config()
	if policy == nil {
		policy = StripedPolicy{}
	}
	total := arr.TotalPages()
	chunks := (total + pageChunk - 1) / pageChunk
	f := &FTL{
		arr:         arr,
		cfg:         cfg,
		policy:      policy,
		total:       total,
		l2p:         make([][]flash.PPA, chunks),
		p2l:         make([][]int, chunks),
		blocks:      make(map[blockID]*blockState),
		GCThreshold: 2,
	}
	f.free = make([][]freeBlocks, cfg.Channels)
	f.open = make([][]int, cfg.Channels)
	for c := 0; c < cfg.Channels; c++ {
		f.free[c] = make([]freeBlocks, cfg.ChipsPerChannel)
		f.open[c] = make([]int, cfg.ChipsPerChannel)
		for d := 0; d < cfg.ChipsPerChannel; d++ {
			fb := &f.free[c][d]
			fb.isFree = make([]bool, cfg.BlocksPerChip)
			for b := range fb.isFree {
				fb.isFree[b] = true
			}
			fb.n = cfg.BlocksPerChip
			f.open[c][d] = -1
		}
	}
	return f
}

// l2pAt returns the mapping of lpa (Page < 0 when unmapped).
func (f *FTL) l2pAt(lpa int) flash.PPA {
	if c := f.l2p[lpa/pageChunk]; c != nil {
		return c[lpa%pageChunk]
	}
	return flash.PPA{Page: -1}
}

// l2pSet stores the mapping of lpa, materializing its chunk.
func (f *FTL) l2pSet(lpa int, ppa flash.PPA) {
	ci := lpa / pageChunk
	c := f.l2p[ci]
	if c == nil {
		c = make([]flash.PPA, pageChunk)
		for i := range c {
			c[i].Page = -1
		}
		f.l2p[ci] = c
	}
	c[lpa%pageChunk] = ppa
}

// p2lAt returns the lpa mapped to physical page index idx (-1 when none).
func (f *FTL) p2lAt(idx int) int {
	if c := f.p2l[idx/pageChunk]; c != nil {
		return c[idx%pageChunk]
	}
	return -1
}

// p2lSet stores the reverse mapping of physical page index idx.
func (f *FTL) p2lSet(idx, lpa int) {
	ci := idx / pageChunk
	c := f.p2l[ci]
	if c == nil {
		c = make([]int, pageChunk)
		for i := range c {
			c[i] = -1
		}
		f.p2l[ci] = c
	}
	c[idx%pageChunk] = lpa
}

// Array returns the underlying flash array.
func (f *FTL) Array() *flash.Array { return f.arr }

// Stats returns a copy of the counters.
func (f *FTL) Stats() Stats { return f.stats }

// UserPages returns the logical capacity in pages (with ~12.5%
// over-provisioning reserved for GC headroom).
func (f *FTL) UserPages() int { return f.arr.TotalPages() * 7 / 8 }

// Lookup returns the physical address of lpa.
func (f *FTL) Lookup(lpa int) (flash.PPA, bool) {
	if lpa < 0 || lpa >= f.total {
		return flash.PPA{}, false
	}
	if ppa := f.l2pAt(lpa); ppa.Page >= 0 {
		if f.Tel != nil {
			f.Tel.Lookups.Inc()
		}
		return ppa, true
	}
	return flash.PPA{}, false
}

func (f *FTL) ppaIndex(p flash.PPA) int {
	perChip := f.cfg.BlocksPerChip * f.cfg.PagesPerBlock
	perChannel := perChip * f.cfg.ChipsPerChannel
	return p.Channel*perChannel + p.Chip*perChip + p.Block*f.cfg.PagesPerBlock + p.Page
}

// pickFreeBlock selects the free block with the lowest erase count on
// (channel, chip) — the wear-leveling decision.
func (f *FTL) pickFreeBlock(channel, chip int) (int, error) {
	best := -1
	var bestWear int64
	fb := &f.free[channel][chip]
	for b, free := range fb.isFree {
		if !free {
			continue
		}
		w := f.arr.EraseCount(channel, chip, b)
		if best == -1 || w < bestWear {
			best = b
			bestWear = w
		}
	}
	if best == -1 {
		return 0, fmt.Errorf("ftl: no free block on ch%d/chip%d", channel, chip)
	}
	fb.isFree[best] = false
	fb.n--
	return best, nil
}

// nextSlot returns the PPA to program next on (channel, chip), opening a new
// block if needed.
func (f *FTL) nextSlot(channel, chip int) (flash.PPA, error) {
	ob := f.open[channel][chip]
	var st *blockState
	if ob >= 0 {
		st = f.blocks[blockID{channel, chip, ob}]
		if st.filled >= f.cfg.PagesPerBlock {
			st.open = false
			ob = -1
		}
	}
	if ob < 0 {
		b, err := f.pickFreeBlock(channel, chip)
		if err != nil {
			return flash.PPA{}, err
		}
		ob = b
		f.open[channel][chip] = b
		st = &blockState{open: true}
		f.blocks[blockID{channel, chip, b}] = st
	}
	return flash.PPA{Channel: channel, Chip: chip, Block: ob, Page: st.filled}, nil
}

// chipForWrite spreads logical pages across a channel's chips by hash.
// A plain (lpa/channels)%chips round-robin leaves equal-sized sequential
// readers marching over the same chip row in lockstep, convoying on the
// 25 µs array-read time; hashing decorrelates concurrent streams, as
// arrival-order die striping does in a real FTL.
func (f *FTL) chipForWrite(channel, lpa int) int {
	h := uint32(lpa/f.cfg.Channels) * 2654435761
	return int(h>>16) % f.cfg.ChipsPerChannel
}

// Write programs a logical page at time at. It returns the bus-transfer
// completion (when the source buffer is reusable) and the program completion
// (when the data is durable). Old mappings are invalidated; GC runs when the
// target (channel, chip) runs low on free blocks.
func (f *FTL) Write(at sim.Time, lpa int, data []byte) (busDone, progDone sim.Time, err error) {
	return f.write(at, lpa, data, false)
}

func (f *FTL) write(at sim.Time, lpa int, data []byte, gc bool) (busDone, progDone sim.Time, err error) {
	if lpa < 0 || lpa >= f.UserPages() {
		return 0, 0, fmt.Errorf("ftl: lpa %d out of capacity %d", lpa, f.UserPages())
	}
	channel := f.policy.Channel(lpa, f.cfg.Channels)
	chip := f.chipForWrite(channel, lpa)
	ppa, err := f.nextSlot(channel, chip)
	if err != nil {
		return 0, 0, err
	}
	busDone, progDone, err = f.arr.Write(at, ppa, data)
	if err != nil {
		return 0, 0, err
	}
	f.commitMapping(lpa, ppa)
	if gc {
		f.stats.GCWrites++
	} else {
		f.stats.HostWrites++
	}
	if f.free[channel][chip].n <= f.GCThreshold {
		if err := f.collect(at, channel, chip); err != nil {
			return 0, 0, err
		}
	}
	return busDone, progDone, nil
}

// Install maps and stores a logical page without consuming simulated time
// (dataset setup).
func (f *FTL) Install(lpa int, data []byte) error {
	if lpa < 0 || lpa >= f.UserPages() {
		return fmt.Errorf("ftl: lpa %d out of capacity %d", lpa, f.UserPages())
	}
	channel := f.policy.Channel(lpa, f.cfg.Channels)
	chip := f.chipForWrite(channel, lpa)
	ppa, err := f.nextSlot(channel, chip)
	if err != nil {
		return err
	}
	if err := f.arr.InstallPage(ppa, data); err != nil {
		return err
	}
	f.commitMapping(lpa, ppa)
	f.stats.HostWrites++
	return nil
}

func (f *FTL) commitMapping(lpa int, ppa flash.PPA) {
	// Invalidate the old physical page.
	if old := f.l2pAt(lpa); old.Page >= 0 {
		if st := f.blocks[blockID{old.Channel, old.Chip, old.Block}]; st != nil {
			st.valid--
		}
		f.p2lSet(f.ppaIndex(old), -1)
	}
	f.l2pSet(lpa, ppa)
	f.p2lSet(f.ppaIndex(ppa), lpa)
	st := f.blocks[blockID{ppa.Channel, ppa.Chip, ppa.Block}]
	st.valid++
	st.filled++
}

// Read returns the contents and completion time of a logical page read.
func (f *FTL) Read(at sim.Time, lpa int) ([]byte, sim.Time, error) {
	ppa, ok := f.Lookup(lpa)
	if !ok {
		return nil, 0, fmt.Errorf("ftl: read of unmapped lpa %d", lpa)
	}
	return f.arr.Read(at, ppa)
}

// collect performs greedy garbage collection on (channel, chip): it picks
// the closed block with the fewest valid pages, migrates them, and erases.
func (f *FTL) collect(at sim.Time, channel, chip int) error {
	f.stats.GCInvocations++
	victim := -1
	var victimState *blockState
	var victimWear int64
	for b := 0; b < f.cfg.BlocksPerChip; b++ {
		id := blockID{channel, chip, b}
		st := f.blocks[id]
		if st == nil || st.open || st.filled < f.cfg.PagesPerBlock {
			continue
		}
		wear := f.arr.EraseCount(channel, chip, b)
		// Greedy min-valid victim; equal-valid ties prefer the least-worn
		// block so erase cycles rotate across the whole chip.
		if victimState == nil || st.valid < victimState.valid ||
			(st.valid == victimState.valid && wear < victimWear) {
			victim = b
			victimState = st
			victimWear = wear
		}
	}
	if victim < 0 {
		return nil // nothing collectable yet
	}
	// Migrate valid pages.
	base := f.ppaIndex(flash.PPA{Channel: channel, Chip: chip, Block: victim})
	for pg := 0; pg < f.cfg.PagesPerBlock; pg++ {
		lpa := f.p2lAt(base + pg)
		if lpa < 0 {
			continue
		}
		data, _, err := f.arr.Read(at, flash.PPA{Channel: channel, Chip: chip, Block: victim, Page: pg})
		if err != nil {
			return fmt.Errorf("ftl: gc read: %w", err)
		}
		if _, _, err := f.write(at, lpa, data, true); err != nil {
			return fmt.Errorf("ftl: gc migrate: %w", err)
		}
	}
	if _, err := f.arr.Erase(at, channel, chip, victim); err != nil {
		return fmt.Errorf("ftl: gc erase: %w", err)
	}
	f.stats.Erases++
	delete(f.blocks, blockID{channel, chip, victim})
	fb := &f.free[channel][chip]
	fb.isFree[victim] = true
	fb.n++
	return nil
}

// FreeBlocks returns the free-block count on (channel, chip).
func (f *FTL) FreeBlocks(channel, chip int) int { return f.free[channel][chip].n }

// ChannelPageCounts returns, for a set of logical pages, how many map to
// each channel — the D_i distribution of the skew study.
func (f *FTL) ChannelPageCounts(lpas []int) []int {
	counts := make([]int, f.cfg.Channels)
	for _, lpa := range lpas {
		if ppa, ok := f.Lookup(lpa); ok {
			counts[ppa.Channel]++
		}
	}
	return counts
}

// Skew computes the paper's layout-skew metric for a set of logical pages:
// Skew = (n/(n-1)) · (max_i(D_i)/ΣD_i − 1/n), which is 0 for a perfectly
// even layout and 1 when all data sits on one channel.
func (f *FTL) Skew(lpas []int) float64 {
	counts := f.ChannelPageCounts(lpas)
	n := float64(len(counts))
	total := 0
	max := 0
	for _, c := range counts {
		total += c
		if c > max {
			max = c
		}
	}
	if total == 0 || n <= 1 {
		return 0
	}
	return (n / (n - 1)) * (float64(max)/float64(total) - 1/n)
}
