package ftl

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"assasin/internal/flash"
)

func smallArray() *flash.Array {
	cfg := flash.DefaultConfig()
	cfg.Channels = 4
	cfg.ChipsPerChannel = 2
	cfg.BlocksPerChip = 8
	cfg.PagesPerBlock = 8
	cfg.PageSize = 256
	return flash.New(cfg)
}

func pageData(lpa int) []byte {
	d := make([]byte, 256)
	for i := range d {
		d[i] = byte(lpa + i)
	}
	return d
}

func TestWriteReadRoundTrip(t *testing.T) {
	f := New(smallArray(), nil)
	for lpa := 0; lpa < 20; lpa++ {
		if _, _, err := f.Write(0, lpa, pageData(lpa)); err != nil {
			t.Fatal(err)
		}
	}
	for lpa := 0; lpa < 20; lpa++ {
		got, _, err := f.Read(0, lpa)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, pageData(lpa)) {
			t.Fatalf("lpa %d data mismatch", lpa)
		}
	}
}

func TestOverwriteInvalidatesOld(t *testing.T) {
	f := New(smallArray(), nil)
	f.Write(0, 5, pageData(1))
	old, _ := f.Lookup(5)
	f.Write(0, 5, pageData(2))
	now, _ := f.Lookup(5)
	if old == now {
		t.Fatal("overwrite did not remap")
	}
	got, _, _ := f.Read(0, 5)
	if !bytes.Equal(got, pageData(2)) {
		t.Fatal("read returned stale data")
	}
}

func TestUnmappedRead(t *testing.T) {
	f := New(smallArray(), nil)
	if _, _, err := f.Read(0, 3); err == nil {
		t.Fatal("unmapped read succeeded")
	}
	if _, ok := f.Lookup(3); ok {
		t.Fatal("unmapped lookup ok")
	}
}

func TestStripedPolicyBalances(t *testing.T) {
	f := New(smallArray(), StripedPolicy{})
	n := 64
	lpas := make([]int, n)
	for i := 0; i < n; i++ {
		lpas[i] = i
		if err := f.Install(i, pageData(i)); err != nil {
			t.Fatal(err)
		}
	}
	counts := f.ChannelPageCounts(lpas)
	for ch, c := range counts {
		if c != n/4 {
			t.Fatalf("channel %d has %d pages, want %d", ch, c, n/4)
		}
	}
	if s := f.Skew(lpas); s != 0 {
		t.Fatalf("striped skew = %g, want 0", s)
	}
}

func TestSkewedPolicyExtremes(t *testing.T) {
	// Skew=1: everything on channel 0.
	f := New(smallArray(), SkewedPolicy{Skew: 1})
	lpas := make([]int, 40)
	for i := range lpas {
		lpas[i] = i
		if err := f.Install(i, pageData(i)); err != nil {
			t.Fatal(err)
		}
	}
	counts := f.ChannelPageCounts(lpas)
	if counts[0] != 40 {
		t.Fatalf("skew=1 counts = %v", counts)
	}
	if s := f.Skew(lpas); s < 0.99 {
		t.Fatalf("skew metric = %g, want 1", s)
	}
}

func TestSkewedPolicyIntermediate(t *testing.T) {
	arr := flash.DefaultConfig()
	arr.Channels = 8
	arr.BlocksPerChip = 64
	arr.PagesPerBlock = 16
	arr.PageSize = 64
	f := New(flash.New(arr), SkewedPolicy{Skew: 0.5})
	n := 4000
	lpas := make([]int, n)
	for i := range lpas {
		lpas[i] = i
		if err := f.Install(i, nil); err != nil {
			t.Fatal(err)
		}
	}
	s := f.Skew(lpas)
	if s < 0.4 || s > 0.6 {
		t.Fatalf("skew metric = %g, want ~0.5", s)
	}
}

func TestGarbageCollectionReclaims(t *testing.T) {
	f := New(smallArray(), nil)
	// Hammer a small LPA range so most pages invalidate quickly, forcing GC.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		lpa := rng.Intn(16)
		if _, _, err := f.Write(0, lpa, pageData(lpa)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	st := f.Stats()
	if st.GCInvocations == 0 || st.Erases == 0 {
		t.Fatalf("GC never ran: %+v", st)
	}
	if wa := st.WriteAmplification(); wa < 1 || wa > 3 {
		t.Fatalf("write amplification %g out of sane range", wa)
	}
	// Data integrity after heavy GC.
	for lpa := 0; lpa < 16; lpa++ {
		if _, ok := f.Lookup(lpa); !ok {
			continue
		}
		got, _, err := f.Read(0, lpa)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, pageData(lpa)) {
			t.Fatalf("lpa %d corrupted after GC", lpa)
		}
	}
}

// TestMappingInvariants property-checks that after random traffic the
// mapping is a partial injection: no two LPAs share a physical page.
func TestMappingInvariants(t *testing.T) {
	f := New(smallArray(), nil)
	rng := rand.New(rand.NewSource(2))
	live := map[int][]byte{}
	for i := 0; i < 1500; i++ {
		lpa := rng.Intn(32)
		d := pageData(rng.Intn(1000))
		if _, _, err := f.Write(0, lpa, d); err != nil {
			t.Fatal(err)
		}
		live[lpa] = d
	}
	seen := map[string]int{}
	for lpa := range live {
		ppa, ok := f.Lookup(lpa)
		if !ok {
			t.Fatalf("live lpa %d unmapped", lpa)
		}
		key := ppa.String()
		if prev, dup := seen[key]; dup {
			t.Fatalf("ppa %v mapped from both %d and %d", ppa, prev, lpa)
		}
		seen[key] = lpa
		got, _, err := f.Read(0, lpa)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, live[lpa]) {
			t.Fatalf("lpa %d returned wrong data", lpa)
		}
	}
}

func TestWearLeveling(t *testing.T) {
	f := New(smallArray(), nil)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 4000; i++ {
		if _, _, err := f.Write(0, rng.Intn(16), pageData(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Erase counts within each chip should be within a moderate band.
	arr := f.Array()
	cfg := arr.Config()
	for c := 0; c < cfg.Channels; c++ {
		for d := 0; d < cfg.ChipsPerChannel; d++ {
			var min, max int64 = 1 << 60, 0
			for b := 0; b < cfg.BlocksPerChip; b++ {
				e := arr.EraseCount(c, d, b)
				if e < min {
					min = e
				}
				if e > max {
					max = e
				}
			}
			if max > 0 && max-min > max/2+4 {
				t.Fatalf("wear imbalance on ch%d/chip%d: min=%d max=%d", c, d, min, max)
			}
		}
	}
}

func TestCapacityBound(t *testing.T) {
	f := New(smallArray(), nil)
	if _, _, err := f.Write(0, f.UserPages(), nil); err == nil {
		t.Fatal("write beyond capacity accepted")
	}
	if _, _, err := f.Write(0, -1, nil); err == nil {
		t.Fatal("negative lpa accepted")
	}
}

func TestInstallMatchesWriteSemantics(t *testing.T) {
	f := New(smallArray(), nil)
	if err := f.Install(7, pageData(7)); err != nil {
		t.Fatal(err)
	}
	got, _, err := f.Read(0, 7)
	if err != nil || !bytes.Equal(got, pageData(7)) {
		t.Fatal("installed page not readable")
	}
	// Install must not consume simulated channel time.
	if f.Array().ChannelBusy(0) != 0 && f.Array().ChannelBusy(1) != 0 &&
		f.Array().ChannelBusy(2) != 0 && f.Array().ChannelBusy(3) != 0 {
		t.Fatal("install consumed bus time")
	}
}

func TestFillDriveSequential(t *testing.T) {
	f := New(smallArray(), nil)
	n := f.UserPages()
	for lpa := 0; lpa < n; lpa++ {
		if err := f.Install(lpa, nil); err != nil {
			t.Fatalf("install %d/%d: %v", lpa, n, err)
		}
	}
	// Everything mapped.
	for lpa := 0; lpa < n; lpa++ {
		if _, ok := f.Lookup(lpa); !ok {
			t.Fatalf("lpa %d unmapped after fill", lpa)
		}
	}
}

func TestSkewMetricFormula(t *testing.T) {
	f := New(smallArray(), nil)
	_ = f
	cases := []struct {
		counts []int
		want   float64
	}{
		{[]int{10, 10, 10, 10}, 0},
		{[]int{40, 0, 0, 0}, 1},
		{[]int{25, 5, 5, 5}, (4.0 / 3.0) * (25.0/40.0 - 0.25)},
	}
	for _, c := range cases {
		got := skewOf(c.counts)
		if diff := got - c.want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("skew(%v) = %g, want %g", c.counts, got, c.want)
		}
	}
}

// skewOf mirrors FTL.Skew for direct formula testing.
func skewOf(counts []int) float64 {
	n := float64(len(counts))
	total, max := 0, 0
	for _, c := range counts {
		total += c
		if c > max {
			max = c
		}
	}
	if total == 0 {
		return 0
	}
	return (n / (n - 1)) * (float64(max)/float64(total) - 1/n)
}

func ExampleFTL_Skew() {
	arr := flash.DefaultConfig()
	arr.Channels = 4
	arr.BlocksPerChip = 8
	arr.PagesPerBlock = 8
	arr.PageSize = 64
	f := New(flash.New(arr), SkewedPolicy{Skew: 1})
	lpas := []int{0, 1, 2, 3}
	for _, lpa := range lpas {
		f.Install(lpa, nil)
	}
	fmt.Printf("skew=%.1f\n", f.Skew(lpas))
	// Output: skew=1.0
}
