package runpool

import (
	"bytes"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderingMatchesSequential(t *testing.T) {
	n := 100
	fn := func(i int) (int, error) {
		// Finish out of submission order to stress result placement.
		time.Sleep(time.Duration((i*7)%5) * time.Millisecond)
		return i * i, nil
	}
	seq, err := Map(1, n, fn)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Map(8, n, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("index %d: sequential %d vs parallel %d", i, seq[i], par[i])
		}
	}
}

func TestRunExecutesEveryJobOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		n := 200
		counts := make([]atomic.Int32, n)
		if err := Run(workers, n, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestRunReturnsLowestIndexError(t *testing.T) {
	errAt := func(bad map[int]bool) func(int) error {
		return func(i int) error {
			if bad[i] {
				return fmt.Errorf("job %d failed", i)
			}
			return nil
		}
	}
	// Every job fails: the reported error must be job 0's regardless of
	// scheduling.
	for _, workers := range []int{1, 4} {
		err := Run(workers, 50, errAt(map[int]bool{0: true, 1: true, 2: true}))
		if err == nil || err.Error() != "job 0 failed" {
			t.Fatalf("workers=%d: err = %v, want job 0 failed", workers, err)
		}
	}
}

func TestRunSequentialStopsAtFirstError(t *testing.T) {
	ran := 0
	sentinel := errors.New("boom")
	err := Run(1, 10, func(i int) error {
		ran++
		if i == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if ran != 4 {
		t.Fatalf("sequential run executed %d jobs after error, want 4", ran)
	}
}

func TestRunZeroJobs(t *testing.T) {
	if err := Run(4, 0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

func TestSeedDeterministicAndSpread(t *testing.T) {
	seen := map[int64]bool{}
	for i := int64(0); i < 1000; i++ {
		s := Seed(42, i)
		if s != Seed(42, i) {
			t.Fatal("Seed not deterministic")
		}
		if seen[s] {
			t.Fatalf("seed collision at index %d", i)
		}
		seen[s] = true
	}
	if Seed(1, 0) == Seed(2, 0) {
		t.Error("base seed ignored")
	}
}

// TestPoolSoak is the -race soak of the harness: many short jobs hammering
// the claim cursor and the shared result slice from every worker.
func TestPoolSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}
	workers := runtime.GOMAXPROCS(0) * 2
	for round := 0; round < 20; round++ {
		n := 500
		out, err := Map(workers, n, func(i int) (int64, error) {
			return Seed(int64(round), int64(i)) & 0xffff, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if want := Seed(int64(round), int64(i)) & 0xffff; v != want {
				t.Fatalf("round %d index %d: %d != %d", round, i, v, want)
			}
		}
	}
}

func TestSequentialOverride(t *testing.T) {
	cases := []struct {
		requested   int
		forcedBy    []string
		wantWorkers int
		wantWarn    bool
	}{
		{8, []string{"-trace"}, 1, true},
		{8, []string{"-trace", "-metrics"}, 1, true},
		{1, []string{"-trace"}, 1, false},
		{8, nil, 8, false},
	}
	for _, c := range cases {
		got, warn := SequentialOverride(c.requested, c.forcedBy...)
		if got != c.wantWorkers || (warn != "") != c.wantWarn {
			t.Errorf("SequentialOverride(%d, %v) = (%d, %q)", c.requested, c.forcedBy, got, warn)
		}
		for _, f := range c.forcedBy {
			if c.wantWarn && !strings.Contains(warn, f) {
				t.Errorf("warning %q does not name forcing flag %s", warn, f)
			}
		}
		if c.wantWarn && !strings.Contains(warn, "-parallel 8") {
			t.Errorf("warning %q does not name the overridden -parallel value", warn)
		}
	}
}

// TestSetLoggerRace drives a parallel pool with a live debug logger under
// -race: worker-claim logging must be safe from every goroutine.
func TestSetLoggerRace(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	h := slog.NewTextHandler(lockedWriter{&mu, &buf}, &slog.HandlerOptions{Level: slog.LevelDebug})
	SetLogger(slog.New(h))
	defer SetLogger(nil)
	if err := Run(4, 64, func(i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if !strings.Contains(buf.String(), "runpool: job claimed") {
		t.Error("no claim events logged")
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (l lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}
