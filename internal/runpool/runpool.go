// Package runpool fans independent simulation runs across a bounded pool of
// worker goroutines. The evaluation (Section VI) is dominated by embarrassingly
// parallel sweeps — kernels × configurations, queries × configurations, core
// counts, skew points — where every run builds its own SSD instance and shares
// nothing mutable with its siblings. The pool exploits that: jobs are indexed,
// results land in index order, and a pool of one worker degenerates to exactly
// the sequential loop, so parallel output is byte-identical to sequential
// output as long as each job derives its randomness from its own index (see
// Seed) rather than from shared RNG state.
//
// What is safe to fan out through this package is a whole simulation run (an
// ssd.SSD with its scheduler, flash array, DRAM and cores). What is not safe
// is anything inside one sim.Scheduler: processes co-simulated by a scheduler
// share an event queue and must stay on one goroutine.
package runpool

import (
	"fmt"
	"log/slog"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
)

// logger, when set, receives worker-claim events at Debug level. It is an
// atomic pointer so parallel workers can read it without a lock.
var logger atomic.Pointer[slog.Logger]

// SetLogger installs a logger for pool diagnostics (nil disables). Handlers
// must be goroutine-safe; slog's built-in handlers are.
func SetLogger(l *slog.Logger) { logger.Store(l) }

// DefaultWorkers returns the default pool width: one worker per schedulable
// CPU, the widest fan-out that does not oversubscribe the host.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// clampWorkers bounds the pool width to [1, n].
func clampWorkers(workers, n int) int {
	if workers <= 1 {
		return 1
	}
	if workers > n {
		return n
	}
	return workers
}

// Run executes jobs 0..n-1 on up to workers goroutines. With workers <= 1 it
// is exactly the sequential loop: jobs run in index order and the first error
// stops the remainder. With more workers, jobs are claimed in index order by
// an atomic cursor; after a failure, unstarted jobs are skipped, and the
// lowest-index error among the jobs that ran is returned, so a run that fails
// deterministically under the sequential path reports the same error in
// parallel.
func Run(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = clampWorkers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if l := logger.Load(); l != nil {
					l.Debug("runpool: job claimed", "worker", w, "job", i, "jobs", n)
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map runs fn over 0..n-1 like Run and returns the results in index order —
// the parallel result is the same slice the sequential loop would build.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := Run(workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SequentialOverride resolves the effective pool width when one or more
// enabled features require sequential simulation (the telemetry sink is
// single-goroutine). It returns the width to use and, when the request had
// to be overridden, a warning naming both the forcing flags and the flag
// being overridden. requested <= 1 needs no override and yields no warning.
func SequentialOverride(requested int, forcedBy ...string) (workers int, warning string) {
	if len(forcedBy) == 0 || requested <= 1 {
		return requested, ""
	}
	return 1, fmt.Sprintf("%s forces sequential simulation: overriding -parallel %d to -parallel 1",
		strings.Join(forcedBy, ", "), requested)
}

// Seed derives a per-run RNG seed from a base seed and a job index
// (splitmix64 of the pair). Jobs that need randomness must seed from their
// own index this way — never from a shared rand source, whose consumption
// order would depend on scheduling.
func Seed(base, i int64) int64 {
	z := uint64(base)*0x9E3779B97F4A7C15 + uint64(i) + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}
