// Package buildinfo resolves the binary's build identity: a link-time
// version string plus whatever VCS metadata the Go toolchain stamped into
// the binary. Every cmd exposes it behind -version, and assasin-serve
// exports it as the conventional assasin_build_info Prometheus gauge, so a
// scrape (or a bug report) always names the exact build it came from.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Version is the release version, overridable at link time:
//
//	go build -ldflags "-X assasin/internal/buildinfo.Version=v1.2.3" ./cmd/...
//
// It stays "dev" for plain go build / go test binaries.
var Version = "dev"

// Info is the resolved build identity of the running binary.
type Info struct {
	// Version is the link-time Version string.
	Version string
	// GoVersion is the toolchain that built the binary.
	GoVersion string
	// Revision is the VCS commit hash, "" when built outside a checkout
	// (or from a test binary, which carries no VCS stamps).
	Revision string
	// Time is the commit timestamp (RFC 3339), "" when unknown.
	Time string
	// Modified reports a dirty working tree at build time.
	Modified bool
}

// Get resolves the current binary's Info. The VCS fields degrade to empty
// rather than failing: test binaries and toolchains without VCS stamping
// still yield a usable Version/GoVersion pair.
func Get() Info {
	info := Info{Version: Version, GoVersion: runtime.Version()}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				info.Revision = s.Value
			case "vcs.time":
				info.Time = s.Value
			case "vcs.modified":
				info.Modified = s.Value == "true"
			}
		}
	}
	return info
}

// Line renders the one-line -version output for a command.
func (i Info) Line(cmd string) string {
	rev := i.Revision
	if rev == "" {
		rev = "unknown"
	} else {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if i.Modified {
			rev += "-dirty"
		}
	}
	out := fmt.Sprintf("%s %s (%s, commit %s", cmd, i.Version, i.GoVersion, rev)
	if i.Time != "" {
		out += ", " + i.Time
	}
	return out + ")"
}

// PromLabels returns the Info as alternating key, value pairs for
// obs.(*Collector).SetBuildInfo.
func (i Info) PromLabels() []string {
	rev := i.Revision
	if i.Modified {
		rev += "-dirty"
	}
	return []string{
		"version", i.Version,
		"go_version", i.GoVersion,
		"vcs_revision", rev,
	}
}
