package buildinfo

import (
	"strings"
	"testing"
)

func TestGetDefaults(t *testing.T) {
	i := Get()
	if i.Version != "dev" {
		t.Errorf("Version = %q, want dev (test binaries carry no ldflags)", i.Version)
	}
	if !strings.HasPrefix(i.GoVersion, "go") {
		t.Errorf("GoVersion = %q, want go prefix", i.GoVersion)
	}
}

func TestLine(t *testing.T) {
	i := Info{Version: "v1.2.3", GoVersion: "go1.99", Revision: "0123456789abcdef", Time: "2026-01-02T03:04:05Z", Modified: true}
	got := i.Line("assasin-sim")
	want := "assasin-sim v1.2.3 (go1.99, commit 0123456789ab-dirty, 2026-01-02T03:04:05Z)"
	if got != want {
		t.Errorf("Line = %q, want %q", got, want)
	}
	bare := Info{Version: "dev", GoVersion: "go1.99"}
	if got := bare.Line("x"); got != "x dev (go1.99, commit unknown)" {
		t.Errorf("bare Line = %q", got)
	}
}

func TestPromLabels(t *testing.T) {
	i := Info{Version: "dev", GoVersion: "go1.99", Revision: "abc"}
	got := i.PromLabels()
	want := []string{"version", "dev", "go_version", "go1.99", "vcs_revision", "abc"}
	if len(got) != len(want) {
		t.Fatalf("PromLabels = %v", got)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("PromLabels = %v, want %v", got, want)
		}
	}
}
