// Package flash models the SSD's NAND flash array: channels with shared
// buses (ONFI-style word-serial page transfer), chips with array read /
// program / erase latencies, and the functional page store. Timing follows
// the paper's evaluation configuration — 8 channels of 1 GB/s each, with
// chip-level interleaving hiding the array read time so the channel bus is
// the per-channel bound.
package flash

import (
	"fmt"

	"assasin/internal/sim"
	"assasin/internal/telemetry"
)

// Config is the array geometry and timing.
type Config struct {
	Channels        int
	ChipsPerChannel int
	BlocksPerChip   int
	PagesPerBlock   int
	PageSize        int
	// ChannelBandwidth is the page-transfer bandwidth of one channel bus in
	// bytes/second.
	ChannelBandwidth float64
	// ReadLatency (tR) is the array-to-page-register sense time.
	ReadLatency sim.Time
	// ProgramLatency (tProg) is the page program time.
	ProgramLatency sim.Time
	// EraseLatency (tBERS) is the block erase time.
	EraseLatency sim.Time
}

// DefaultConfig matches the paper's 8-channel, 1 GB/s-per-channel SSD with
// 16 KiB pages and typical TLC NAND latencies.
func DefaultConfig() Config {
	return Config{
		Channels:         8,
		ChipsPerChannel:  4,
		BlocksPerChip:    256,
		PagesPerBlock:    64,
		PageSize:         16 << 10,
		ChannelBandwidth: 1e9,
		ReadLatency:      40 * sim.Microsecond,
		ProgramLatency:   200 * sim.Microsecond,
		EraseLatency:     2 * sim.Millisecond,
	}
}

// PPA is a physical page address.
type PPA struct {
	Channel, Chip, Block, Page int
}

// String implements fmt.Stringer.
func (p PPA) String() string {
	return fmt.Sprintf("ch%d/chip%d/blk%d/pg%d", p.Channel, p.Chip, p.Block, p.Page)
}

// pageState tracks NAND programming constraints.
type pageState uint8

const (
	pageErased pageState = iota
	pageWritten
)

// blockStore holds one erase block's page contents and programming state.
// Blocks materialize independently, so the per-run footprint of a chip is
// proportional to the blocks it actually touches, not its geometry.
type blockStore struct {
	// nextPage is the next programmable page index (NAND requires in-order
	// programming within an erase block).
	nextPage int
	erases   int64
	states   []pageState // pagesPerBlock entries
	data     [][]byte    // pagesPerBlock entries
}

type chip struct {
	nextFree sim.Time
	// blocks[block] is nil until that block is first programmed or erased:
	// a nil entry reads as "everything erased, counts zero", so building an
	// Array — or streaming a dataset over a few blocks of a few chips —
	// touches no per-page state outside those blocks.
	blocks []*blockStore
	reads  int64
	writes int64
}

// block reads a block's store through the lazy array (nil = untouched).
func (ch *chip) block(b int) *blockStore {
	if ch.blocks == nil {
		return nil
	}
	return ch.blocks[b]
}

// state reads a page's programming state through the lazy arrays.
func (ch *chip) state(block, page int) pageState {
	if bs := ch.block(block); bs != nil {
		return bs.states[page]
	}
	return pageErased
}

// nextProgPage reads a block's next programmable page through the lazy
// arrays.
func (ch *chip) nextProgPage(block int) int {
	if bs := ch.block(block); bs != nil {
		return bs.nextPage
	}
	return 0
}

// Array is the flash array: timing and functional content.
// Tel is the flash-array telemetry bundle: operation counts plus the bytes
// moved over channel buses. Per-channel busy time lives in the channel
// bandwidth servers and is published at snapshot time (ssd.PublishStats),
// not per access.
type Tel struct {
	Senses        *telemetry.Counter
	Transfers     *telemetry.Counter
	Programs      *telemetry.Counter
	Erases        *telemetry.Counter
	TransferBytes *telemetry.Counter
}

// NewTel registers the flash metrics on sink (nil sink -> nil Tel).
func NewTel(sink *telemetry.Sink) *Tel {
	if sink == nil {
		return nil
	}
	return &Tel{
		Senses:        sink.Counter("flash", "senses"),
		Transfers:     sink.Counter("flash", "transfers"),
		Programs:      sink.Counter("flash", "programs"),
		Erases:        sink.Counter("flash", "erases"),
		TransferBytes: sink.Counter("flash", "transfer_bytes"),
	}
}

type Array struct {
	cfg      Config
	channels []*sim.BandwidthServer
	chips    [][]*chip

	// erased is the shared all-0xFF page returned by Sense for erased
	// pages; like written pages, it is handed out by reference and must not
	// be mutated by callers (see Sense).
	erased []byte
	// arena backs stored page copies (Write/InstallPage) in pointer-free
	// chunks so the GC never scans per-page allocations. Chunks grow
	// geometrically so small datasets never pay for a large chunk's zeroing.
	arena      []byte
	arenaOff   int
	arenaPages int

	// Tel, when non-nil, counts senses/transfers/programs/erases.
	Tel *Tel
}

// New returns an erased array. Construction is O(channels × chips): all
// per-page state is materialized lazily on first program/erase, so building
// a large array for a small experiment costs almost nothing.
func New(cfg Config) *Array {
	a := &Array{cfg: cfg}
	a.channels = make([]*sim.BandwidthServer, cfg.Channels)
	a.chips = make([][]*chip, cfg.Channels)
	for c := 0; c < cfg.Channels; c++ {
		a.channels[c] = sim.NewBandwidthServer(fmt.Sprintf("flash-ch%d", c), cfg.ChannelBandwidth, 0)
		a.chips[c] = make([]*chip, cfg.ChipsPerChannel)
		for d := 0; d < cfg.ChipsPerChannel; d++ {
			a.chips[c][d] = &chip{}
		}
	}
	return a
}

// erasedPage returns the shared all-0xFF page image.
func (a *Array) erasedPage() []byte {
	if a.erased == nil {
		a.erased = make([]byte, a.cfg.PageSize)
		for i := range a.erased {
			a.erased[i] = 0xFF
		}
	}
	return a.erased
}

// allocPage carves one page-sized buffer out of the arena.
func (a *Array) allocPage() []byte {
	ps := a.cfg.PageSize
	if a.arenaOff+ps > len(a.arena) {
		switch {
		case a.arenaPages == 0:
			a.arenaPages = 8
		case a.arenaPages < 128:
			a.arenaPages *= 2
		}
		a.arena = make([]byte, ps*a.arenaPages)
		a.arenaOff = 0
	}
	p := a.arena[a.arenaOff : a.arenaOff+ps : a.arenaOff+ps]
	a.arenaOff += ps
	return p
}

// materialize allocates one block's page arrays on first mutation and
// returns its store.
func (a *Array) materialize(ch *chip, block int) *blockStore {
	if ch.blocks == nil {
		ch.blocks = make([]*blockStore, a.cfg.BlocksPerChip)
	}
	bs := ch.blocks[block]
	if bs == nil {
		ppb := a.cfg.PagesPerBlock
		bs = &blockStore{states: make([]pageState, ppb), data: make([][]byte, ppb)}
		ch.blocks[block] = bs
	}
	return bs
}

// Config returns the geometry.
func (a *Array) Config() Config { return a.cfg }

// TotalPages returns the page count of the whole array.
func (a *Array) TotalPages() int {
	return a.cfg.Channels * a.cfg.ChipsPerChannel * a.cfg.BlocksPerChip * a.cfg.PagesPerBlock
}

// TotalBandwidth returns the aggregate channel bandwidth in bytes/second.
func (a *Array) TotalBandwidth() float64 {
	return float64(a.cfg.Channels) * a.cfg.ChannelBandwidth
}

func (a *Array) validate(p PPA) error {
	if p.Channel < 0 || p.Channel >= a.cfg.Channels ||
		p.Chip < 0 || p.Chip >= a.cfg.ChipsPerChannel ||
		p.Block < 0 || p.Block >= a.cfg.BlocksPerChip ||
		p.Page < 0 || p.Page >= a.cfg.PagesPerBlock {
		return fmt.Errorf("flash: invalid ppa %v", p)
	}
	return nil
}

func (a *Array) chipAt(p PPA) *chip { return a.chips[p.Channel][p.Chip] }

// Sense performs the array-to-page-register read of one page (the tR
// phase), occupying the chip. It returns the page contents and the sense
// completion time; the bus transfer is issued separately with Transfer so
// the flash controller can gate it on downstream buffer space. Reading an
// erased page returns all-0xFF data, as real NAND does.
//
// The returned slice aliases the array's stored page (or, for erased pages,
// a shared all-0xFF image) — callers must treat it as read-only. The page
// pipeline relies on this: page bytes flow flash→crossbar→stream buffer by
// reference and are only copied once, into the stream ring.
func (a *Array) Sense(at sim.Time, p PPA) ([]byte, sim.Time, error) {
	if err := a.validate(p); err != nil {
		return nil, 0, err
	}
	ch := a.chipAt(p)
	start := sim.MaxT(at, ch.nextFree)
	senseDone := start + a.cfg.ReadLatency
	ch.nextFree = senseDone
	ch.reads++
	if a.Tel != nil {
		a.Tel.Senses.Inc()
	}
	var data []byte
	if bs := ch.block(p.Block); bs != nil {
		data = bs.data[p.Page]
	}
	if data == nil {
		data = a.erasedPage()
	}
	return data, senseDone, nil
}

// Transfer moves size bytes (up to one page) over a channel bus at time at,
// returning the completion time.
func (a *Array) Transfer(at sim.Time, channel, size int) (sim.Time, error) {
	if channel < 0 || channel >= a.cfg.Channels {
		return 0, fmt.Errorf("flash: invalid channel %d", channel)
	}
	if size <= 0 || size > a.cfg.PageSize {
		return 0, fmt.Errorf("flash: invalid transfer size %d", size)
	}
	if a.Tel != nil {
		a.Tel.Transfers.Inc()
		a.Tel.TransferBytes.Add(int64(size))
	}
	return a.channels[channel].Access(at, size), nil
}

// Read senses and transfers one page — the convenience composition of Sense
// and Transfer used when buffer-space gating is not needed.
func (a *Array) Read(at sim.Time, p PPA) ([]byte, sim.Time, error) {
	data, senseDone, err := a.Sense(at, p)
	if err != nil {
		return nil, 0, err
	}
	done, err := a.Transfer(senseDone, p.Channel, a.cfg.PageSize)
	if err != nil {
		return nil, 0, err
	}
	return data, done, nil
}

// Write transfers and programs one page. It returns both the bus-transfer
// completion (when the source buffer can be reused) and the program
// completion (when the data is durable). NAND constraints are enforced: the
// target page must be erased and pages within a block must be programmed in
// order.
func (a *Array) Write(at sim.Time, p PPA, data []byte) (busDone, progDone sim.Time, err error) {
	if err := a.validate(p); err != nil {
		return 0, 0, err
	}
	if len(data) > a.cfg.PageSize {
		return 0, 0, fmt.Errorf("flash: write of %d bytes exceeds page size %d", len(data), a.cfg.PageSize)
	}
	ch := a.chipAt(p)
	if ch.state(p.Block, p.Page) != pageErased {
		return 0, 0, fmt.Errorf("flash: program of non-erased page %v", p)
	}
	if ch.nextProgPage(p.Block) != p.Page {
		return 0, 0, fmt.Errorf("flash: out-of-order program %v (next programmable page is %d)", p, ch.nextProgPage(p.Block))
	}
	busDone = a.channels[p.Channel].Access(at, a.cfg.PageSize)
	start := sim.MaxT(busDone, ch.nextFree)
	progDone = start + a.cfg.ProgramLatency
	ch.nextFree = progDone
	ch.writes++
	if a.Tel != nil {
		a.Tel.Programs.Inc()
		a.Tel.TransferBytes.Add(int64(a.cfg.PageSize))
	}
	bs := a.materialize(ch, p.Block)
	// Arena chunks are fresh zeroed memory and never recycled, so a short
	// write is zero-padded exactly like the old make+copy.
	stored := a.allocPage()
	copy(stored, data)
	bs.data[p.Page] = stored
	bs.states[p.Page] = pageWritten
	bs.nextPage = p.Page + 1
	return busDone, progDone, nil
}

// Erase erases one block.
func (a *Array) Erase(at sim.Time, channel, chipIdx, block int) (sim.Time, error) {
	p := PPA{Channel: channel, Chip: chipIdx, Block: block}
	if err := a.validate(p); err != nil {
		return 0, err
	}
	ch := a.chips[channel][chipIdx]
	start := sim.MaxT(at, ch.nextFree)
	done := start + a.cfg.EraseLatency
	ch.nextFree = done
	bs := a.materialize(ch, block)
	for i := 0; i < a.cfg.PagesPerBlock; i++ {
		bs.states[i] = pageErased
		bs.data[i] = nil
	}
	bs.nextPage = 0
	bs.erases++
	if a.Tel != nil {
		a.Tel.Erases.Inc()
	}
	return done, nil
}

// InstallPage stores page contents functionally without consuming simulated
// time — used to set up experiment datasets (the equivalent of the drive
// having been written in the past). NAND ordering constraints still apply.
func (a *Array) InstallPage(p PPA, data []byte) error {
	if err := a.validate(p); err != nil {
		return err
	}
	if len(data) > a.cfg.PageSize {
		return fmt.Errorf("flash: install of %d bytes exceeds page size %d", len(data), a.cfg.PageSize)
	}
	ch := a.chipAt(p)
	if ch.state(p.Block, p.Page) != pageErased {
		return fmt.Errorf("flash: install on non-erased page %v", p)
	}
	if ch.nextProgPage(p.Block) != p.Page {
		return fmt.Errorf("flash: out-of-order install %v (next is %d)", p, ch.nextProgPage(p.Block))
	}
	bs := a.materialize(ch, p.Block)
	stored := a.allocPage()
	copy(stored, data)
	bs.data[p.Page] = stored
	bs.states[p.Page] = pageWritten
	bs.nextPage = p.Page + 1
	return nil
}

// PeekPage returns the stored contents without timing (for verification).
func (a *Array) PeekPage(p PPA) ([]byte, error) {
	if err := a.validate(p); err != nil {
		return nil, err
	}
	bs := a.chipAt(p).block(p.Block)
	if bs == nil {
		return nil, nil
	}
	return bs.data[p.Page], nil
}

// IsErased reports whether the page is in the erased state.
func (a *Array) IsErased(p PPA) bool {
	if a.validate(p) != nil {
		return false
	}
	return a.chipAt(p).state(p.Block, p.Page) == pageErased
}

// EraseCount returns how many times a block has been erased.
func (a *Array) EraseCount(channel, chipIdx, block int) int64 {
	bs := a.chips[channel][chipIdx].block(block)
	if bs == nil {
		return 0
	}
	return bs.erases
}

// ChannelBytes returns the bytes transferred on one channel bus.
func (a *Array) ChannelBytes(channel int) int64 { return a.channels[channel].Bytes() }

// ChannelBusy returns one channel bus's total occupied time.
func (a *Array) ChannelBusy(channel int) sim.Time { return a.channels[channel].BusyTime() }

// ChannelNextFree returns when the channel bus frees up (for admission
// control in the firmware's read scheduler).
func (a *Array) ChannelNextFree(channel int) sim.Time { return a.channels[channel].NextFree() }

// ChipReads returns a chip's page read count.
func (a *Array) ChipReads(channel, chipIdx int) int64 { return a.chips[channel][chipIdx].reads }
