package flash

import (
	"bytes"
	"testing"

	"assasin/internal/sim"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Channels = 2
	cfg.ChipsPerChannel = 2
	cfg.BlocksPerChip = 4
	cfg.PagesPerBlock = 4
	cfg.PageSize = 512
	return cfg
}

func TestWriteReadRoundTrip(t *testing.T) {
	a := New(smallConfig())
	p := PPA{Channel: 0, Chip: 0, Block: 1, Page: 0}
	data := bytes.Repeat([]byte{0xAB}, 512)
	if _, _, err := a.Write(0, p, data); err != nil {
		t.Fatal(err)
	}
	got, done, err := a.Read(sim.Millisecond, p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data mismatch")
	}
	if done <= sim.Millisecond {
		t.Fatal("read has no latency")
	}
}

func TestErasedPageReadsFF(t *testing.T) {
	a := New(smallConfig())
	got, _, err := a.Read(0, PPA{})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0xFF {
			t.Fatal("erased page not 0xFF")
		}
	}
}

func TestProgramConstraints(t *testing.T) {
	a := New(smallConfig())
	p0 := PPA{Block: 2, Page: 0}
	p1 := PPA{Block: 2, Page: 1}
	// Out-of-order program rejected.
	if _, _, err := a.Write(0, p1, make([]byte, 16)); err == nil {
		t.Fatal("out-of-order program accepted")
	}
	if _, _, err := a.Write(0, p0, make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	// Overwrite rejected.
	if _, _, err := a.Write(0, p0, make([]byte, 16)); err == nil {
		t.Fatal("overwrite of programmed page accepted")
	}
	// After the in-order predecessor, page 1 works.
	if _, _, err := a.Write(0, p1, make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
}

func TestEraseResetsBlock(t *testing.T) {
	a := New(smallConfig())
	p := PPA{Block: 0, Page: 0}
	a.Write(0, p, []byte{1, 2, 3})
	if _, err := a.Erase(0, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if !a.IsErased(p) {
		t.Fatal("page not erased")
	}
	if a.EraseCount(0, 0, 0) != 1 {
		t.Fatal("erase count wrong")
	}
	// Programmable again from page 0.
	if _, _, err := a.Write(0, p, []byte{9}); err != nil {
		t.Fatal(err)
	}
}

func TestReadTimingChipAndBus(t *testing.T) {
	cfg := smallConfig()
	a := New(cfg)
	p := PPA{}
	a.Write(0, p, make([]byte, cfg.PageSize))
	at := 10 * sim.Millisecond // after program completes
	_, done, err := a.Read(at, p)
	if err != nil {
		t.Fatal(err)
	}
	transfer := sim.Time(float64(cfg.PageSize) / cfg.ChannelBandwidth * float64(sim.Second))
	want := at + cfg.ReadLatency + transfer
	if done != want {
		t.Fatalf("read done = %v, want %v", done, want)
	}
}

func TestChipInterleavingHidesTR(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Channels = 1
	a := New(cfg)
	// Write one block's worth on each of the 4 chips of channel 0.
	for chip := 0; chip < cfg.ChipsPerChannel; chip++ {
		for pg := 0; pg < cfg.PagesPerBlock; pg++ {
			if _, _, err := a.Write(0, PPA{Chip: chip, Block: 0, Page: pg}, make([]byte, cfg.PageSize)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Stream reads round-robin across chips: the channel bus should be the
	// bottleneck, i.e. aggregate throughput ≈ channel bandwidth.
	at := sim.Time(10 * sim.Second)
	start := at
	n := 0
	var done sim.Time
	for pg := 0; pg < cfg.PagesPerBlock; pg++ {
		for chip := 0; chip < cfg.ChipsPerChannel; chip++ {
			_, d, err := a.Read(at, PPA{Chip: chip, Block: 0, Page: pg})
			if err != nil {
				t.Fatal(err)
			}
			done = d
			n++
		}
	}
	elapsed := done - start
	bytesRead := float64(n * cfg.PageSize)
	throughput := bytesRead / elapsed.Seconds()
	if throughput < 0.9*cfg.ChannelBandwidth {
		t.Fatalf("interleaved throughput %.2e B/s, want ~%.2e", throughput, cfg.ChannelBandwidth)
	}
}

func TestSingleChipBoundByTR(t *testing.T) {
	cfg := DefaultConfig()
	a := New(cfg)
	for pg := 0; pg < cfg.PagesPerBlock; pg++ {
		a.Write(0, PPA{Block: 0, Page: pg}, make([]byte, cfg.PageSize))
	}
	at := sim.Time(100 * sim.Second)
	var done sim.Time
	for pg := 0; pg < 8; pg++ {
		_, d, _ := a.Read(at, PPA{Block: 0, Page: pg})
		done = d
	}
	elapsed := done - at
	// Back-to-back single-chip reads serialize on tR.
	if elapsed < 8*cfg.ReadLatency {
		t.Fatalf("single-chip reads too fast: %v", elapsed)
	}
}

func TestChannelIndependence(t *testing.T) {
	cfg := smallConfig()
	a := New(cfg)
	a.Write(0, PPA{Channel: 0}, make([]byte, cfg.PageSize))
	a.Write(0, PPA{Channel: 1}, make([]byte, cfg.PageSize))
	at := sim.Time(sim.Second)
	_, d0, _ := a.Read(at, PPA{Channel: 0})
	_, d1, _ := a.Read(at, PPA{Channel: 1})
	if d0 != d1 {
		t.Fatalf("parallel channels interfere: %v vs %v", d0, d1)
	}
	if a.ChannelBytes(0) == 0 || a.ChannelBytes(1) == 0 {
		t.Fatal("channel byte accounting missing")
	}
}

func TestValidation(t *testing.T) {
	a := New(smallConfig())
	bad := []PPA{
		{Channel: -1}, {Channel: 99}, {Chip: 99}, {Block: 99}, {Page: 99},
	}
	for _, p := range bad {
		if _, _, err := a.Read(0, p); err == nil {
			t.Errorf("Read(%v) accepted", p)
		}
	}
	if _, _, err := a.Write(0, PPA{}, make([]byte, 1<<20)); err == nil {
		t.Error("oversized write accepted")
	}
}

func TestTotals(t *testing.T) {
	cfg := smallConfig()
	a := New(cfg)
	if a.TotalPages() != 2*2*4*4 {
		t.Errorf("TotalPages = %d", a.TotalPages())
	}
	if a.TotalBandwidth() != 2*cfg.ChannelBandwidth {
		t.Errorf("TotalBandwidth = %g", a.TotalBandwidth())
	}
}
