package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestOpStrings(t *testing.T) {
	cases := map[Op]string{
		OpAdd:         "add",
		OpStreamLoad:  "streamload",
		OpStreamStore: "streamstore",
		OpHalt:        "halt",
		OpBgeu:        "bgeu",
	}
	for op, want := range cases {
		if op.String() != want {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), want)
		}
	}
}

func TestOpClasses(t *testing.T) {
	cases := map[Op]Class{
		OpAdd:         ClassALU,
		OpMul:         ClassMul,
		OpDivu:        ClassDiv,
		OpLw:          ClassLoad,
		OpSb:          ClassStore,
		OpBne:         ClassBranch,
		OpJal:         ClassJump,
		OpStreamLoad:  ClassStreamLoad,
		OpStreamPeek:  ClassStreamLoad,
		OpStreamStore: ClassStreamStore,
		OpStreamEnd:   ClassStreamCtl,
		OpHalt:        ClassHalt,
	}
	for op, want := range cases {
		if op.Class() != want {
			t.Errorf("%v.Class() = %v, want %v", op, op.Class(), want)
		}
	}
}

func TestIsStream(t *testing.T) {
	for op := OpInvalid + 1; op < opCount; op++ {
		want := op >= OpStreamLoad && op <= OpStreamCsrR
		if op.IsStream() != want {
			t.Errorf("%v.IsStream() = %v, want %v", op, op.IsStream(), want)
		}
	}
}

func TestRegNames(t *testing.T) {
	if RegName(0) != "zero" || RegName(2) != "sp" || RegName(10) != "a0" {
		t.Error("ABI register names wrong")
	}
	if RegName(40) != "x40" {
		t.Errorf("out-of-range RegName = %q", RegName(40))
	}
}

func TestDisassembly(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OpAdd, Rd: 10, Rs1: 11, Rs2: 12}, "add a0, a1, a2"},
		{Inst{Op: OpAddi, Rd: 10, Rs1: 10, Imm: -4}, "addi a0, a0, -4"},
		{Inst{Op: OpLw, Rd: 5, Rs1: 2, Imm: 16}, "lw t0, 16(sp)"},
		{Inst{Op: OpSw, Rs1: 2, Rs2: 5, Imm: -8}, "sw t0, -8(sp)"},
		{Inst{Op: OpBne, Rs1: 10, Rs2: 0, Imm: -3}, "bne a0, zero, -3"},
		{Inst{Op: OpJal, Rd: 1, Imm: 5}, "jal ra, +5"},
		{Inst{Op: OpStreamLoad, Rd: 10, Stream: 2, Width: 4}, "streamload a0, s2, w4"},
		{Inst{Op: OpStreamStore, Rs2: 10, Stream: 0, Width: 1}, "streamstore s0, w1, a0"},
		{Inst{Op: OpStreamEnd, Rd: 7, Stream: 3}, "streamend t2, s3"},
		{Inst{Op: OpHalt}, "halt"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Inst{
		{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpAddi, Rd: 31, Rs1: 30, Imm: -16384},
		{Op: OpAddi, Rd: 1, Rs1: 1, Imm: 16383},
		{Op: OpLui, Rd: 5, Imm: 0xabcde},
		{Op: OpJal, Rd: 1, Imm: -500000},
		{Op: OpLw, Rd: 9, Rs1: 8, Imm: 2047},
		{Op: OpSw, Rs1: 8, Rs2: 9, Imm: -2048},
		{Op: OpBeq, Rs1: 4, Rs2: 5, Imm: 1000},
		{Op: OpBgeu, Rs1: 4, Rs2: 5, Imm: -1000},
		{Op: OpStreamLoad, Rd: 12, Stream: 7, Width: 4},
		{Op: OpStreamPeek, Rd: 12, Stream: 15, Width: 2, Imm: 63},
		{Op: OpStreamStore, Rs2: 20, Stream: 1, Width: 1},
		{Op: OpStreamAdv, Stream: 3, Imm: 128, Width: 1},
		{Op: OpStreamEnd, Rd: 6, Stream: 0, Width: 1},
		{Op: OpStreamCsrR, Rd: 6, Stream: 9, Imm: CsrTail, Width: 1},
		{Op: OpHalt},
		{Op: OpMulhu, Rd: 17, Rs1: 18, Rs2: 19},
	}
	for _, in := range cases {
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode(%v): %v", in, err)
		}
		out, err := Decode(w)
		if err != nil {
			t.Fatalf("Decode(Encode(%v)): %v", in, err)
		}
		if out != in {
			t.Errorf("round trip %v -> %#x -> %v", in, w, out)
		}
	}
}

// TestEncodeDecodeQuick fuzzes the round trip across randomly generated but
// well-formed instructions.
func TestEncodeDecodeQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	gen := func() Inst {
		for {
			op := Op(1 + rng.Intn(int(opCount)-1))
			i := Inst{Op: op}
			switch op {
			case OpLui:
				i.Rd = uint8(rng.Intn(32))
				i.Imm = int32(rng.Intn(1 << 20))
			case OpJal:
				i.Rd = uint8(rng.Intn(32))
				i.Imm = int32(rng.Intn(1<<20)) - 1<<19
			case OpAddi, OpAndi, OpOri, OpXori, OpSlli, OpSrli, OpSrai, OpSlti, OpSltiu,
				OpLb, OpLbu, OpLh, OpLhu, OpLw, OpJalr:
				i.Rd = uint8(rng.Intn(32))
				i.Rs1 = uint8(rng.Intn(32))
				i.Imm = int32(rng.Intn(1<<15)) - 1<<14
			case OpSb, OpSh, OpSw, OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu:
				i.Rs1 = uint8(rng.Intn(32))
				i.Rs2 = uint8(rng.Intn(32))
				i.Imm = int32(rng.Intn(1<<15)) - 1<<14
			case OpStreamLoad, OpStreamPeek, OpStreamEnd, OpStreamCsrR, OpStreamAdv, OpStreamStore:
				i.Stream = uint8(rng.Intn(16))
				i.Width = []uint8{1, 2, 4}[rng.Intn(3)]
				i.Imm = int32(rng.Intn(1<<12)) - 1<<11
				if op == OpStreamStore {
					i.Rs2 = uint8(rng.Intn(32))
				} else {
					i.Rd = uint8(rng.Intn(32))
				}
				if op == OpStreamCsrR {
					i.Imm = int32(rng.Intn(2))
				}
			case OpHalt:
			default:
				i.Rd = uint8(rng.Intn(32))
				i.Rs1 = uint8(rng.Intn(32))
				i.Rs2 = uint8(rng.Intn(32))
			}
			return i
		}
	}
	for n := 0; n < 2000; n++ {
		in := gen()
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode(%+v): %v", in, err)
		}
		out, err := Decode(w)
		if err != nil {
			t.Fatalf("Decode(%#x): %v", w, err)
		}
		if out != in {
			t.Fatalf("round trip mismatch: %+v -> %#x -> %+v", in, w, out)
		}
	}
}

func TestEncodeRejectsOutOfRange(t *testing.T) {
	bad := []Inst{
		{Op: OpInvalid},
		{Op: OpAddi, Rd: 32},
		{Op: OpAddi, Imm: 1 << 20},
		{Op: OpSw, Imm: -(1 << 20)},
		{Op: OpStreamLoad, Stream: 16, Width: 4},
		{Op: OpStreamLoad, Stream: 0, Width: 3},
		{Op: OpLui, Imm: -1},
	}
	for _, b := range bad {
		if _, err := Encode(b); err == nil {
			t.Errorf("Encode(%+v) succeeded, want error", b)
		}
	}
}

func TestDecodeRejectsInvalidOpcode(t *testing.T) {
	if _, err := Decode(uint32(opCount) | 0x40); err == nil && Op(uint32(opCount)|0x40).Valid() {
		t.Error("expected invalid")
	}
	if _, err := Decode(0); err == nil {
		t.Error("Decode(0) should fail (OpInvalid)")
	}
}

func TestSignExtendProperty(t *testing.T) {
	prop := func(v int16) bool {
		// any 15-bit value survives the S-layout split
		imm := int32(v) / 2 // keep within 15 bits
		in := Inst{Op: OpSw, Rs1: 1, Rs2: 2, Imm: imm}
		w, err := Encode(in)
		if err != nil {
			return true // out of range immediates are rejected, fine
		}
		out, err := Decode(w)
		return err == nil && out.Imm == imm
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestDisassemblyMentionsStreamSlot(t *testing.T) {
	i := Inst{Op: OpStreamCsrR, Rd: 3, Stream: 5, Imm: CsrHead}
	if s := i.String(); !strings.Contains(s, "s5") {
		t.Errorf("disassembly %q lacks stream slot", s)
	}
}
