// Package isa defines the instruction set executed by the simulated in-SSD
// compute engines: a 32-bit scalar RISC ISA modelled on RV32IM (the ibex
// cores the paper evaluates) plus the ASSASIN stream extension of Table III
// (StreamLoad, StreamStore, StreamPeek, StreamAdvance, StreamEnd and stream
// CSR access).
//
// Instructions are represented structurally (Inst) for fast interpretation,
// with a 32-bit binary encoding (Encode/Decode) mirroring the fixed-width
// format sketched in the paper.
package isa

import "fmt"

// Op enumerates operations. The numeric values are part of the binary
// encoding (the 7-bit opcode field), so new ops must be appended.
type Op uint8

// Operations. Names follow RISC-V mnemonics where the semantics match.
const (
	OpInvalid Op = iota

	// Register-register integer ops.
	OpAdd
	OpSub
	OpAnd
	OpOr
	OpXor
	OpSll
	OpSrl
	OpSra
	OpSlt
	OpSltu

	// Register-immediate integer ops.
	OpAddi
	OpAndi
	OpOri
	OpXori
	OpSlli
	OpSrli
	OpSrai
	OpSlti
	OpSltiu
	OpLui

	// M extension.
	OpMul
	OpMulh
	OpMulhu
	OpDiv
	OpDivu
	OpRem
	OpRemu

	// Loads and stores (byte, half, word; loads sign- or zero-extend).
	OpLb
	OpLbu
	OpLh
	OpLhu
	OpLw
	OpSb
	OpSh
	OpSw

	// Control flow.
	OpBeq
	OpBne
	OpBlt
	OpBge
	OpBltu
	OpBgeu
	OpJal
	OpJalr

	// ASSASIN stream extension (Table III). Stream identifies an input or
	// output stream slot in the core's stream buffers; Width is the access
	// width in bytes (1, 2 or 4).
	OpStreamLoad  // rd ← next Width bytes of input stream; advances Head
	OpStreamPeek  // rd ← Width bytes at Head + Imm; Head unchanged
	OpStreamAdv   // Head of input stream += Imm*Width bytes
	OpStreamStore // append low Width bytes of rs2 to output stream
	OpStreamEnd   // rd ← 1 if the input stream is exhausted, else 0
	OpStreamCsrR  // rd ← stream CSR (Imm selects Head/Tail; Stream selects slot)

	// Environment.
	OpHalt // terminate the program

	opCount
)

// Class groups operations by their timing behaviour in the core model.
type Class uint8

// Instruction classes.
const (
	ClassALU Class = iota
	ClassMul
	ClassDiv
	ClassLoad
	ClassStore
	ClassBranch
	ClassJump
	ClassStreamLoad
	ClassStreamStore
	ClassStreamCtl
	ClassHalt
)

var opInfo = [opCount]struct {
	name  string
	class Class
}{
	OpInvalid:     {"invalid", ClassALU},
	OpAdd:         {"add", ClassALU},
	OpSub:         {"sub", ClassALU},
	OpAnd:         {"and", ClassALU},
	OpOr:          {"or", ClassALU},
	OpXor:         {"xor", ClassALU},
	OpSll:         {"sll", ClassALU},
	OpSrl:         {"srl", ClassALU},
	OpSra:         {"sra", ClassALU},
	OpSlt:         {"slt", ClassALU},
	OpSltu:        {"sltu", ClassALU},
	OpAddi:        {"addi", ClassALU},
	OpAndi:        {"andi", ClassALU},
	OpOri:         {"ori", ClassALU},
	OpXori:        {"xori", ClassALU},
	OpSlli:        {"slli", ClassALU},
	OpSrli:        {"srli", ClassALU},
	OpSrai:        {"srai", ClassALU},
	OpSlti:        {"slti", ClassALU},
	OpSltiu:       {"sltiu", ClassALU},
	OpLui:         {"lui", ClassALU},
	OpMul:         {"mul", ClassMul},
	OpMulh:        {"mulh", ClassMul},
	OpMulhu:       {"mulhu", ClassMul},
	OpDiv:         {"div", ClassDiv},
	OpDivu:        {"divu", ClassDiv},
	OpRem:         {"rem", ClassDiv},
	OpRemu:        {"remu", ClassDiv},
	OpLb:          {"lb", ClassLoad},
	OpLbu:         {"lbu", ClassLoad},
	OpLh:          {"lh", ClassLoad},
	OpLhu:         {"lhu", ClassLoad},
	OpLw:          {"lw", ClassLoad},
	OpSb:          {"sb", ClassStore},
	OpSh:          {"sh", ClassStore},
	OpSw:          {"sw", ClassStore},
	OpBeq:         {"beq", ClassBranch},
	OpBne:         {"bne", ClassBranch},
	OpBlt:         {"blt", ClassBranch},
	OpBge:         {"bge", ClassBranch},
	OpBltu:        {"bltu", ClassBranch},
	OpBgeu:        {"bgeu", ClassBranch},
	OpJal:         {"jal", ClassJump},
	OpJalr:        {"jalr", ClassJump},
	OpStreamLoad:  {"streamload", ClassStreamLoad},
	OpStreamPeek:  {"streampeek", ClassStreamLoad},
	OpStreamAdv:   {"streamadv", ClassStreamCtl},
	OpStreamStore: {"streamstore", ClassStreamStore},
	OpStreamEnd:   {"streamend", ClassStreamCtl},
	OpStreamCsrR:  {"streamcsrr", ClassStreamCtl},
	OpHalt:        {"halt", ClassHalt},
}

// String returns the mnemonic.
func (o Op) String() string {
	if int(o) < len(opInfo) {
		return opInfo[o].name
	}
	return fmt.Sprintf("op%d", uint8(o))
}

// Class returns the timing class.
func (o Op) Class() Class {
	if int(o) < len(opInfo) {
		return opInfo[o].class
	}
	return ClassALU
}

// Valid reports whether o is a defined operation.
func (o Op) Valid() bool { return o > OpInvalid && o < opCount }

// Ops returns every defined operation in encoding order — the domain for
// program generators (fuzzers, random testers) that need to draw valid ops.
func Ops() []Op {
	ops := make([]Op, 0, opCount-1)
	for o := OpInvalid + 1; o < opCount; o++ {
		ops = append(ops, o)
	}
	return ops
}

// IsStream reports whether o belongs to the ASSASIN stream extension.
func (o Op) IsStream() bool {
	switch o.Class() {
	case ClassStreamLoad, ClassStreamStore, ClassStreamCtl:
		return true
	}
	return false
}

// Stream CSR selectors for OpStreamCsrR (the Imm field).
const (
	CsrHead = 0 // current Head byte offset within the stream window
	CsrTail = 1 // current Tail byte offset (bytes delivered so far)
)

// Inst is one decoded instruction. Fields unused by an operation are zero.
type Inst struct {
	Op       Op
	Rd       uint8 // destination register (0-31; x0 discards writes)
	Rs1, Rs2 uint8 // source registers
	Imm      int32 // immediate / branch offset (instructions) / CSR selector
	Stream   uint8 // stream slot for stream ops (0-15)
	Width    uint8 // stream access width in bytes (1, 2 or 4)
}

// NumRegs is the architectural register count.
const NumRegs = 32

// regNames holds RISC-V ABI register names for disassembly.
var regNames = [NumRegs]string{
	"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
	"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
	"a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
	"s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
}

// RegName returns the ABI name of register r.
func RegName(r uint8) string {
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("x%d", r)
}

// String disassembles the instruction.
func (i Inst) String() string {
	switch i.Op.Class() {
	case ClassALU:
		switch i.Op {
		case OpLui:
			return fmt.Sprintf("%s %s, %#x", i.Op, RegName(i.Rd), uint32(i.Imm))
		case OpAddi, OpAndi, OpOri, OpXori, OpSlli, OpSrli, OpSrai, OpSlti, OpSltiu:
			return fmt.Sprintf("%s %s, %s, %d", i.Op, RegName(i.Rd), RegName(i.Rs1), i.Imm)
		default:
			return fmt.Sprintf("%s %s, %s, %s", i.Op, RegName(i.Rd), RegName(i.Rs1), RegName(i.Rs2))
		}
	case ClassMul, ClassDiv:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, RegName(i.Rd), RegName(i.Rs1), RegName(i.Rs2))
	case ClassLoad:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, RegName(i.Rd), i.Imm, RegName(i.Rs1))
	case ClassStore:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, RegName(i.Rs2), i.Imm, RegName(i.Rs1))
	case ClassBranch:
		return fmt.Sprintf("%s %s, %s, %+d", i.Op, RegName(i.Rs1), RegName(i.Rs2), i.Imm)
	case ClassJump:
		if i.Op == OpJal {
			return fmt.Sprintf("jal %s, %+d", RegName(i.Rd), i.Imm)
		}
		return fmt.Sprintf("jalr %s, %d(%s)", RegName(i.Rd), i.Imm, RegName(i.Rs1))
	case ClassStreamLoad:
		return fmt.Sprintf("%s %s, s%d, w%d", i.Op, RegName(i.Rd), i.Stream, i.Width)
	case ClassStreamStore:
		return fmt.Sprintf("%s s%d, w%d, %s", i.Op, i.Stream, i.Width, RegName(i.Rs2))
	case ClassStreamCtl:
		switch i.Op {
		case OpStreamAdv:
			return fmt.Sprintf("%s s%d, %d", i.Op, i.Stream, i.Imm)
		case OpStreamEnd:
			return fmt.Sprintf("%s %s, s%d", i.Op, RegName(i.Rd), i.Stream)
		default:
			return fmt.Sprintf("%s %s, s%d, csr%d", i.Op, RegName(i.Rd), i.Stream, i.Imm)
		}
	default:
		return i.Op.String()
	}
}
