package isa

import "fmt"

// Binary encoding. All instructions are 32 bits, in the spirit of the
// fixed-width "instruction format [31:0]" column of Table III:
//
//	[6:0]   opcode (the Op value)
//	[11:7]  rd
//	[16:12] rs1
//	[21:17] rs2
//	[31:22] reserved for the base format
//
// Immediates overlay the upper bits depending on the operation:
//
//	ALU-immediate / loads / stores / branches / jumps:
//	    [31:17] (stores/branches: rs2 moves to [11:7]'s slot? no —
//	    see below) 15-bit signed immediate for I-type,
//	    for S/B-types the immediate is split exactly like the structural
//	    fields allow.
//
// To keep the format honest but simple, the encoder uses three layouts:
//
//	I-layout (ALU-imm, loads, jalr):  imm[31:17] rs1[16:12] rd[11:7] op[6:0]
//	S-layout (stores, branches):      imm[31:22] rs2[21:17] rs1[16:12] imm[11:7] op[6:0]
//	                                  (15-bit immediate = [31:22]·32 + [11:7])
//	U-layout (lui, jal):              imm[31:12] rd[11:7] op[6:0]
//	R-layout (reg-reg):               rs2[21:17] rs1[16:12] rd[11:7] op[6:0]
//	Z-layout (stream ops):            imm[31:20] width[19:17] stream[16:13]
//	                                  rs2[12:8]? — stream ops carry one reg:
//	                                  reg[11:7] doubles as rd or rs2.
//
// Immediate ranges are validated at encode time; the asm package keeps
// kernel immediates comfortably inside them.
const (
	iImmBits = 15 // I-layout signed immediate
	sImmBits = 15 // S-layout signed immediate (split 10+5)
	uImmBits = 20 // U-layout immediate
	zImmBits = 12 // stream-op signed immediate
)

func fits(v int32, bits int) bool {
	min := -(int32(1) << (bits - 1))
	max := (int32(1) << (bits - 1)) - 1
	return v >= min && v <= max
}

func fitsU(v int32, bits int) bool {
	return v >= 0 && v < (int32(1)<<bits)
}

// Encode packs the instruction into its 32-bit binary form.
func Encode(i Inst) (uint32, error) {
	if !i.Op.Valid() {
		return 0, fmt.Errorf("isa: encode: invalid op %d", i.Op)
	}
	if i.Rd >= NumRegs || i.Rs1 >= NumRegs || i.Rs2 >= NumRegs {
		return 0, fmt.Errorf("isa: encode %s: register out of range", i.Op)
	}
	w := uint32(i.Op) & 0x7f
	switch i.Op {
	case OpLui, OpJal: // U-layout
		if i.Op == OpLui && !fitsU(i.Imm, uImmBits) || i.Op == OpJal && !fits(i.Imm, uImmBits) {
			return 0, fmt.Errorf("isa: encode %s: immediate %d out of range", i.Op, i.Imm)
		}
		w |= uint32(i.Rd) << 7
		w |= (uint32(i.Imm) & 0xfffff) << 12
	case OpAddi, OpAndi, OpOri, OpXori, OpSlli, OpSrli, OpSrai, OpSlti, OpSltiu,
		OpLb, OpLbu, OpLh, OpLhu, OpLw, OpJalr: // I-layout
		if !fits(i.Imm, iImmBits) {
			return 0, fmt.Errorf("isa: encode %s: immediate %d out of range", i.Op, i.Imm)
		}
		w |= uint32(i.Rd) << 7
		w |= uint32(i.Rs1) << 12
		w |= (uint32(i.Imm) & 0x7fff) << 17
	case OpSb, OpSh, OpSw, OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu: // S-layout
		if !fits(i.Imm, sImmBits) {
			return 0, fmt.Errorf("isa: encode %s: immediate %d out of range", i.Op, i.Imm)
		}
		imm := uint32(i.Imm) & 0x7fff
		w |= (imm & 0x1f) << 7 // imm[4:0]
		w |= uint32(i.Rs1) << 12
		w |= uint32(i.Rs2) << 17
		w |= (imm >> 5) << 22 // imm[14:5]
	case OpStreamLoad, OpStreamPeek, OpStreamAdv, OpStreamStore, OpStreamEnd, OpStreamCsrR: // Z-layout
		if !fits(i.Imm, zImmBits) {
			return 0, fmt.Errorf("isa: encode %s: immediate %d out of range", i.Op, i.Imm)
		}
		if i.Stream >= 16 {
			return 0, fmt.Errorf("isa: encode %s: stream %d out of range", i.Op, i.Stream)
		}
		var wenc uint32
		switch i.Width {
		case 0, 1:
			wenc = 0
		case 2:
			wenc = 1
		case 4:
			wenc = 2
		default:
			return 0, fmt.Errorf("isa: encode %s: width %d unsupported", i.Op, i.Width)
		}
		reg := i.Rd
		if i.Op == OpStreamStore {
			reg = i.Rs2
		}
		w |= uint32(reg) << 7
		w |= uint32(i.Stream) << 13
		w |= wenc << 17
		w |= (uint32(i.Imm) & 0xfff) << 20
	case OpHalt:
		// opcode only
	default: // R-layout
		w |= uint32(i.Rd) << 7
		w |= uint32(i.Rs1) << 12
		w |= uint32(i.Rs2) << 17
	}
	return w, nil
}

func signExtend(v uint32, bits int) int32 {
	shift := 32 - bits
	return int32(v<<shift) >> shift
}

// Decode unpacks a 32-bit word produced by Encode.
func Decode(w uint32) (Inst, error) {
	op := Op(w & 0x7f)
	if !op.Valid() {
		return Inst{}, fmt.Errorf("isa: decode: invalid opcode %d", w&0x7f)
	}
	i := Inst{Op: op}
	switch op {
	case OpLui:
		i.Rd = uint8((w >> 7) & 0x1f)
		i.Imm = int32((w >> 12) & 0xfffff)
	case OpJal:
		i.Rd = uint8((w >> 7) & 0x1f)
		i.Imm = signExtend((w>>12)&0xfffff, uImmBits)
	case OpAddi, OpAndi, OpOri, OpXori, OpSlli, OpSrli, OpSrai, OpSlti, OpSltiu,
		OpLb, OpLbu, OpLh, OpLhu, OpLw, OpJalr:
		i.Rd = uint8((w >> 7) & 0x1f)
		i.Rs1 = uint8((w >> 12) & 0x1f)
		i.Imm = signExtend((w>>17)&0x7fff, iImmBits)
	case OpSb, OpSh, OpSw, OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu:
		lo := (w >> 7) & 0x1f
		i.Rs1 = uint8((w >> 12) & 0x1f)
		i.Rs2 = uint8((w >> 17) & 0x1f)
		hi := (w >> 22) & 0x3ff
		i.Imm = signExtend(hi<<5|lo, sImmBits)
	case OpStreamLoad, OpStreamPeek, OpStreamAdv, OpStreamStore, OpStreamEnd, OpStreamCsrR:
		reg := uint8((w >> 7) & 0x1f)
		if op == OpStreamStore {
			i.Rs2 = reg
		} else {
			i.Rd = reg
		}
		i.Stream = uint8((w >> 13) & 0xf)
		switch (w >> 17) & 0x7 {
		case 0:
			i.Width = 1
		case 1:
			i.Width = 2
		case 2:
			i.Width = 4
		}
		i.Imm = signExtend((w>>20)&0xfff, zImmBits)
	case OpHalt:
		// nothing
	default:
		i.Rd = uint8((w >> 7) & 0x1f)
		i.Rs1 = uint8((w >> 12) & 0x1f)
		i.Rs2 = uint8((w >> 17) & 0x1f)
	}
	return i, nil
}
