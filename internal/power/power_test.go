package power

import (
	"testing"
)

func TestSRAMScalesLinearly(t *testing.T) {
	a := SRAM(32 << 10)
	b := SRAM(64 << 10)
	if b.AreaMM2 <= a.AreaMM2 || b.PowerMW <= a.PowerMW {
		t.Fatal("SRAM cost not monotone")
	}
	ratio := b.AreaMM2 / a.AreaMM2
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("64K/32K area ratio %.2f, want ~2", ratio)
	}
}

func TestCacheCostsMoreThanSRAM(t *testing.T) {
	if Cache(32<<10).AreaMM2 <= SRAM(32<<10).AreaMM2 {
		t.Error("cache overhead missing")
	}
	if StreamBufferCost(32<<10).AreaMM2 >= Cache(32<<10).AreaMM2 {
		t.Error("stream buffer should be cheaper than a cache")
	}
}

func TestL1SameOrderAsCoreLogic(t *testing.T) {
	// The paper: "a L1 cache or similar-size SRAM are at the same order of
	// magnitude with the compute logic of a core in area and power".
	l1 := Cache(32 << 10)
	core := CoreLogic()
	if r := l1.AreaMM2 / core.AreaMM2; r < 0.5 || r > 5 {
		t.Errorf("L1/core area ratio %.2f not same order", r)
	}
	if r := l1.PowerMW / core.PowerMW; r < 0.3 || r > 5 {
		t.Errorf("L1/core power ratio %.2f not same order", r)
	}
}

func TestAccessTimeFig20Anchors(t *testing.T) {
	// 64 KiB scratchpad with 8 B port: more than one 1 GHz cycle.
	if ns := AccessTimeNS(64<<10, 8); ns <= 1.0 {
		t.Errorf("64K/8B access = %.2fns, want > 1 (2 cycles at 1 GHz)", ns)
	}
	// Stream buffer head FIFO at 64 B width: ~0.5 ns.
	if ns := FIFOAccessTimeNS(64); ns < 0.4 || ns > 0.6 {
		t.Errorf("FIFO 64B access = %.2fns, want ~0.5", ns)
	}
	// FIFO beats any scratchpad of useful size at the same width.
	if FIFOAccessTimeNS(64) >= AccessTimeNS(64<<10, 64) {
		t.Error("FIFO not faster than 64K scratchpad")
	}
	// Monotone in size and width.
	if AccessTimeNS(128<<10, 8) <= AccessTimeNS(32<<10, 8) {
		t.Error("access time not monotone in size")
	}
	if AccessTimeNS(64<<10, 64) <= AccessTimeNS(64<<10, 8) {
		t.Error("access time not monotone in width")
	}
}

func TestClockPeriodImplication(t *testing.T) {
	// The AssasinSb pipeline's MEM stage uses the FIFO: its delay must
	// allow a ~0.89 ns cycle (the 11% reduction), while the scratchpad
	// cannot make 1 ns single-cycle at 64 KiB.
	if FIFOAccessTimeNS(64) > 0.89 {
		t.Error("FIFO too slow for the adjusted clock")
	}
	if AccessTimeNS(64<<10, 8) <= 1.0 {
		t.Error("scratchpad should require 2 cycles at 1 GHz")
	}
}

func TestComponentTable(t *testing.T) {
	rows := ComponentTable()
	if len(rows) < 6 {
		t.Fatal("Table V inventory too small")
	}
	for _, r := range rows {
		if r.Cost.AreaMM2 <= 0 || r.Cost.PowerMW <= 0 {
			t.Errorf("%s has non-positive cost", r.Name)
		}
		if r.String() == "" {
			t.Error("empty row string")
		}
	}
}

func TestCostArithmetic(t *testing.T) {
	a := Cost{1, 2}
	b := Cost{3, 4}
	s := a.Add(b)
	if s.AreaMM2 != 4 || s.PowerMW != 6 {
		t.Error("Add wrong")
	}
	if sc := a.Scale(8); sc.AreaMM2 != 8 || sc.PowerMW != 16 {
		t.Error("Scale wrong")
	}
}
