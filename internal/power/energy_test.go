package power

import (
	"testing"

	"assasin/internal/cpu"
	"assasin/internal/sim"
)

func TestEnergyComponents(t *testing.T) {
	in := RunInputs{
		CoreStats: []cpu.Stats{{
			Instructions:   1_000_000,
			StreamInBytes:  1 << 20,
			StreamOutBytes: 1 << 19,
			LoadBytes:      1 << 18,
		}},
		DRAMBytes:   1 << 20,
		FlashBytes:  1 << 20,
		ComplexArea: 2.25,
		Duration:    sim.Millisecond,
	}
	e := Energy(in)
	if e.CoreNJ <= 0 || e.SRAMNJ <= 0 || e.DRAMNJ <= 0 || e.FlashNJ <= 0 || e.LeakageNJ <= 0 {
		t.Fatalf("missing components: %+v", e)
	}
	if e.TotalNJ() <= e.DRAMNJ {
		t.Fatal("total not a sum")
	}
	// DRAM energy per byte dwarfs SRAM energy per byte — the memory wall's
	// energy statement.
	dramPerByte := e.DRAMNJ / float64(in.DRAMBytes)
	sramPerByte := e.SRAMNJ / float64(in.CoreStats[0].StreamInBytes+in.CoreStats[0].StreamOutBytes+in.CoreStats[0].LoadBytes)
	if dramPerByte < 20*sramPerByte {
		t.Fatalf("DRAM/SRAM per-byte energy ratio %.1f too small", dramPerByte/sramPerByte)
	}
}

func TestEnergyBaselineVsStream(t *testing.T) {
	// Same compute, but the baseline moves every byte through DRAM twice
	// (fill + refill) while the stream architecture bypasses it.
	work := cpu.Stats{Instructions: 10_000_000}
	streamWork := work
	streamWork.StreamInBytes = 8 << 20
	baseWork := work
	baseWork.LoadBytes = 8 << 20

	base := Energy(RunInputs{
		CoreStats:   []cpu.Stats{baseWork},
		DRAMBytes:   2 * (8 << 20),
		FlashBytes:  8 << 20,
		ComplexArea: 3.69,
		Duration:    10 * sim.Millisecond,
	})
	stream := Energy(RunInputs{
		CoreStats:   []cpu.Stats{streamWork},
		FlashBytes:  8 << 20,
		ComplexArea: 2.25,
		Duration:    5 * sim.Millisecond, // and it finishes faster
	})
	if stream.TotalNJ() >= base.TotalNJ() {
		t.Fatalf("stream energy %.0f nJ not below baseline %.0f nJ", stream.TotalNJ(), base.TotalNJ())
	}
	// Energy per byte favors the DRAM-bypassing design clearly.
	if r := EnergyPerByte(base, 8<<20) / EnergyPerByte(stream, 8<<20); r < 1.2 {
		t.Fatalf("energy-per-byte advantage %.2f too small", r)
	}
}

func TestEnergyPerByteDegenerate(t *testing.T) {
	if EnergyPerByte(EnergyBreakdown{CoreNJ: 5}, 0) != 0 {
		t.Fatal("zero bytes should yield 0")
	}
}
