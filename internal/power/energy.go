package power

import (
	"assasin/internal/cpu"
	"assasin/internal/sim"
)

// Per-event dynamic energy at 14 nm, in picojoules. These are the standard
// rule-of-thumb magnitudes (an SRAM access costs a few pJ and grows with
// capacity; a DRAM access costs two orders of magnitude more — the
// energy-side statement of the memory wall).
const (
	pjPerInstr      = 2.0  // issue + ALU + regfile
	pjPerSPByte     = 0.15 // scratchpad/streambuffer access, per byte
	pjPerCacheByte  = 0.30 // L1 access incl. tag match, per byte
	pjPerDRAMByte   = 15.0 // LPDDR5 access + PHY, per byte
	pjPerFlashByte  = 60.0 // NAND read + ONFI transfer, per byte
	leakageMWPerMM2 = 15.0 // static power per silicon area
)

// EnergyBreakdown is the dynamic + static energy of one offload run, in
// nanojoules.
type EnergyBreakdown struct {
	CoreNJ    float64 // instruction execution
	SRAMNJ    float64 // scratchpad + stream buffer + cache accesses
	DRAMNJ    float64 // SSD DRAM traffic
	FlashNJ   float64 // flash array traffic
	LeakageNJ float64 // area × leakage × duration
}

// TotalNJ sums the components.
func (e EnergyBreakdown) TotalNJ() float64 {
	return e.CoreNJ + e.SRAMNJ + e.DRAMNJ + e.FlashNJ + e.LeakageNJ
}

// RunInputs are the activity counters of one offload run, gathered from the
// simulator.
type RunInputs struct {
	CoreStats  []cpu.Stats
	DRAMBytes  int64
	FlashBytes int64
	// CacheBytes is traffic served by caches (hits × line/access width).
	CacheBytes int64
	// ComplexArea is the compute complex silicon (Table V).
	ComplexArea float64
	Duration    sim.Time
}

// Energy estimates a run's energy from its activity counters — the
// "measured" counterpart to Table V's capacity-based power figures. The
// point it makes is the paper's: for stream kernels, Baseline burns most of
// its energy moving bytes through DRAM, which ASSASIN simply does not do.
func Energy(in RunInputs) EnergyBreakdown {
	var e EnergyBreakdown
	for _, st := range in.CoreStats {
		e.CoreNJ += pjPerInstr * float64(st.Instructions) / 1e3
		spBytes := st.StreamInBytes + st.StreamOutBytes
		e.SRAMNJ += pjPerSPByte * float64(spBytes) / 1e3
		e.SRAMNJ += pjPerCacheByte * float64(st.LoadBytes+st.StoreBytes) / 1e3
	}
	e.SRAMNJ += pjPerCacheByte * float64(in.CacheBytes) / 1e3
	e.DRAMNJ = pjPerDRAMByte * float64(in.DRAMBytes) / 1e3
	e.FlashNJ = pjPerFlashByte * float64(in.FlashBytes) / 1e3
	e.LeakageNJ = leakageMWPerMM2 * in.ComplexArea * in.Duration.Seconds() * 1e6 // mW·s → nJ
	return e
}

// EnergyPerByte returns nJ per byte of input processed.
func EnergyPerByte(e EnergyBreakdown, inputBytes int64) float64 {
	if inputBytes <= 0 {
		return 0
	}
	return e.TotalNJ() / float64(inputBytes)
}
