// Package power provides the analytical silicon cost models behind the
// paper's circuit evaluation: SRAM/cache area, power and access-time
// estimates (standing in for Cacti + Synopsys DC on the SAED 14 nm
// library), per-configuration component inventories (Table V), the memory-
// structure timing study (Fig. 20), and the efficiency computation
// (Fig. 22: speedup per unit power / area).
//
// Absolute constants are anchored to the paper's qualitative statements —
// "a L1 cache or similar-size SRAM [is] at the same order of magnitude with
// the compute logic of a core in area and power" — and to public 14 nm SRAM
// density figures; the experiments consume only *ratios* between
// configurations.
package power

import (
	"fmt"
	"math"
)

// Silicon cost of one component.
type Cost struct {
	AreaMM2 float64 // silicon area in mm²
	PowerMW float64 // power at full activity, mW
}

// Add sums costs.
func (c Cost) Add(o Cost) Cost { return Cost{c.AreaMM2 + o.AreaMM2, c.PowerMW + o.PowerMW} }

// Scale multiplies a cost by n instances.
func (c Cost) Scale(n float64) Cost { return Cost{c.AreaMM2 * n, c.PowerMW * n} }

// Anchor constants (14 nm class).
const (
	// sramMM2PerKB: 14nm high-density SRAM ≈ 0.081 µm²/bit plus ~60%
	// periphery (decoders, sense amps, muxes).
	sramMM2PerKB = 0.081e-6 * 8 * 1024 * 1.6 // ≈ 0.00106 mm²/KB
	// sramMWPerKB: dynamic + leakage at streaming access rates.
	sramMWPerKB = 0.20
	// cacheOverhead multiplies SRAM cost for tag arrays, comparators and
	// replacement state.
	cacheOverhead = 1.30
	// fifoOverhead: stream buffers add head/tail pointer logic and the
	// prefetched head FIFO, but no tags.
	fifoOverhead = 1.10

	// coreLogicArea / Power: an ibex-class in-order RV32IM core at 14 nm.
	coreLogicAreaMM2 = 0.020
	coreLogicPowerMW = 5.0

	// udpLaneArea / Power: the UDP lane is a specialized multiway-dispatch
	// engine — more control logic than a scalar core.
	udpLaneAreaMM2 = 0.034
	udpLanePowerMW = 7.5
)

// SRAM returns the cost of a plain SRAM of the given capacity.
func SRAM(bytes int) Cost {
	kb := float64(bytes) / 1024
	return Cost{AreaMM2: sramMM2PerKB * kb, PowerMW: sramMWPerKB * kb}
}

// Cache returns the cost of a cache data+tag array of the given capacity.
func Cache(bytes int) Cost {
	return SRAM(bytes).Scale(cacheOverhead)
}

// StreamBufferCost returns the cost of a stream buffer of the given
// capacity.
func StreamBufferCost(bytes int) Cost {
	return SRAM(bytes).Scale(fifoOverhead)
}

// CoreLogic returns the scalar core cost (pipeline, regfile, ALU, mul/div).
func CoreLogic() Cost { return Cost{coreLogicAreaMM2, coreLogicPowerMW} }

// UDPLane returns the UDP accelerator lane cost.
func UDPLane() Cost { return Cost{udpLaneAreaMM2, udpLanePowerMW} }

// AccessTimeNS models random-access time of an SRAM/scratchpad of the given
// capacity and port width at 14 nm (the Fig. 20 study): wordline/bitline
// delay grows with the log of capacity, and wide ports add mux depth.
//
// Anchors: a 64 KiB scratchpad with an 8 B port needs > 1 ns (2 cycles at
// 1 GHz); 32 KiB is marginal at ~0.9 ns.
func AccessTimeNS(bytes int, widthBytes int) float64 {
	kb := float64(bytes) / 1024
	if kb < 0.125 {
		kb = 0.125
	}
	t := 0.25 + 0.13*math.Log2(kb)
	t += 0.0022 * float64(widthBytes)
	return t
}

// FIFOAccessTimeNS models the stream buffer's prefetched head FIFO: the
// core-facing access touches a small latch-based head buffer (two 128-byte
// entries), not the backing SRAM, so even a 64 B port stays at ~0.5 ns —
// the paper's Fig. 20 result that lets AssasinSb shorten its clock.
func FIFOAccessTimeNS(widthBytes int) float64 {
	return 0.36 + 0.0022*float64(widthBytes)
}

// Component is a named Table V row.
type Component struct {
	Name string
	Cost Cost
}

// String formats the row.
func (c Component) String() string {
	return fmt.Sprintf("%-28s %8.4f mm² %8.2f mW", c.Name, c.Cost.AreaMM2, c.Cost.PowerMW)
}

// ComponentTable returns the Table V component inventory.
func ComponentTable() []Component {
	return []Component{
		{"ibex core logic", CoreLogic()},
		{"UDP lane logic", UDPLane()},
		{"32KB L1 cache", Cache(32 << 10)},
		{"256KB L2 cache", Cache(256 << 10)},
		{"64KB scratchpad", SRAM(64 << 10)},
		{"256KB scratchpad", SRAM(256 << 10)},
		{"64KB+64KB streambuffer", StreamBufferCost(128 << 10)},
	}
}
