package kernels

import (
	"encoding/binary"
	"fmt"

	"assasin/internal/asm"
)

// FieldPred is an inclusive range predicate on a 32-bit tuple field
// (unsigned comparison): Lo <= value <= Hi.
type FieldPred struct {
	Offset int // byte offset of the field within the tuple
	Lo, Hi uint32
}

// Filter is the tuple-filtering offload of the motivating example (Section
// III-A, Fig. 5): it scans fixed-size binary tuples (TPC-H lineitem
// serialized flatly) and copies those satisfying all predicates to the
// output stream — early data reduction inside the SSD.
type Filter struct {
	// TupleSize is the record size in bytes (multiple of 4).
	TupleSize int
	// Preds are the conjunctive field predicates.
	Preds []FieldPred
}

// Name implements Kernel.
func (Filter) Name() string { return "filter" }

// Inputs implements Kernel.
func (Filter) Inputs() int { return 1 }

// Outputs implements Kernel.
func (Filter) Outputs() int { return 1 }

// State implements Kernel.
func (Filter) State() []byte { return nil }

// Args implements Kernel.
func (Filter) Args(inputLengths []int64) map[asm.Reg]uint32 { return defaultArgs(inputLengths) }

func (k Filter) check() error {
	if k.TupleSize <= 0 || k.TupleSize%4 != 0 {
		return fmt.Errorf("kernels: filter tuple size %d must be a positive multiple of 4", k.TupleSize)
	}
	if len(k.Preds) == 0 || len(k.Preds) > 3 {
		return fmt.Errorf("kernels: filter supports 1-3 predicates, got %d", len(k.Preds))
	}
	for _, p := range k.Preds {
		if p.Offset < 0 || p.Offset+4 > k.TupleSize {
			return fmt.Errorf("kernels: filter predicate offset %d out of tuple", p.Offset)
		}
	}
	return nil
}

// Build implements Kernel. Stream lowering reads fields with StreamPeek and
// advances the whole tuple with StreamAdvance; software lowering walks a
// pointer. Constants for predicate bounds are materialized once in A2-A7.
func (k Filter) Build(p BuildParams) (*asm.Program, error) {
	if err := k.check(); err != nil {
		return nil, err
	}
	b := asm.New()
	// Predicate constants: pred i bounds in consts[2i], consts[2i+1].
	consts := []asm.Reg{asm.A2, asm.A3, asm.A4, asm.A5, asm.A6, asm.A7}
	for i, pr := range k.Preds {
		b.Li(consts[2*i], int32(pr.Lo))
		b.Li(consts[2*i+1], int32(pr.Hi))
	}

	soft := p.Style != StyleStream
	var in softIn
	var out softOut
	if soft {
		in = softIn{b: b, slot: 0, ptr: asm.S10, thresh: asm.S11, pageSize: int32(p.PageSize)}
		in.init()
		in.endReg(asm.S5, asm.A0)
		out = softOut{b: b, slot: 0, ptr: asm.S0}
		out.init()
	}

	loop := b.Here()
	if soft {
		cont := b.NewLabel()
		b.Bltu(asm.S10, asm.S5, cont)
		b.Halt()
		b.Bind(cont)
	}
	reject := b.NewLabel()
	// Evaluate predicates on the in-place tuple.
	for i, pr := range k.Preds {
		if soft {
			b.Lw(asm.A1, asm.S10, int32(pr.Offset))
		} else {
			b.StreamPeek(asm.A1, 0, 4, int32(pr.Offset))
		}
		b.Bltu(asm.A1, consts[2*i], reject)
		b.Bltu(consts[2*i+1], asm.A1, reject)
	}
	// Passed: copy the tuple to the output stream.
	for off := 0; off < k.TupleSize; off += 4 {
		if soft {
			b.Lw(asm.A1, asm.S10, int32(off))
			b.Sw(asm.A1, asm.S0, int32(off))
		} else {
			b.StreamPeek(asm.A1, 0, 4, int32(off))
			b.StreamStore(0, 4, asm.A1)
		}
	}
	if soft {
		b.Addi(asm.S0, asm.S0, int32(k.TupleSize))
	}
	b.Bind(reject)
	if soft {
		in.advance(int32(k.TupleSize))
	} else {
		b.StreamAdv(0, int32(k.TupleSize))
	}
	b.J(loop)

	if !soft {
		// Stream lowering terminates when StreamPeek would pass the end;
		// peeks at EOS halt the core like StreamLoad. (Nothing to emit —
		// the halt is architectural.)
		_ = loop
	}
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	prog.Name = "filter/" + p.Style.String()
	return prog, nil
}

// Matches reports whether a tuple passes all predicates.
func (k Filter) Matches(tuple []byte) bool {
	for _, pr := range k.Preds {
		v := binary.LittleEndian.Uint32(tuple[pr.Offset:])
		if v < pr.Lo || v > pr.Hi {
			return false
		}
	}
	return true
}

// Reference implements Kernel.
func (k Filter) Reference(inputs [][]byte) ([][]byte, error) {
	if err := checkInputs(k.Name(), inputs, 1); err != nil {
		return nil, err
	}
	if err := k.check(); err != nil {
		return nil, err
	}
	in := inputs[0]
	var out []byte
	for off := 0; off+k.TupleSize <= len(in); off += k.TupleSize {
		tuple := in[off : off+k.TupleSize]
		if k.Matches(tuple) {
			out = append(out, tuple...)
		}
	}
	return [][]byte{out}, nil
}

// Select is the projection offload: it copies a subset of each tuple's
// 32-bit fields to the output stream, shrinking tuples before they cross
// the storage interface.
type Select struct {
	TupleSize int
	// FieldOffsets are the byte offsets of projected fields.
	FieldOffsets []int
}

// Name implements Kernel.
func (Select) Name() string { return "select" }

// Inputs implements Kernel.
func (Select) Inputs() int { return 1 }

// Outputs implements Kernel.
func (Select) Outputs() int { return 1 }

// State implements Kernel.
func (Select) State() []byte { return nil }

// Args implements Kernel.
func (Select) Args(inputLengths []int64) map[asm.Reg]uint32 { return defaultArgs(inputLengths) }

func (k Select) check() error {
	if k.TupleSize <= 0 || k.TupleSize%4 != 0 {
		return fmt.Errorf("kernels: select tuple size %d must be a positive multiple of 4", k.TupleSize)
	}
	if len(k.FieldOffsets) == 0 {
		return fmt.Errorf("kernels: select needs projected fields")
	}
	for _, off := range k.FieldOffsets {
		if off < 0 || off+4 > k.TupleSize {
			return fmt.Errorf("kernels: select field offset %d out of tuple", off)
		}
	}
	return nil
}

// Build implements Kernel.
func (k Select) Build(p BuildParams) (*asm.Program, error) {
	if err := k.check(); err != nil {
		return nil, err
	}
	b := asm.New()
	soft := p.Style != StyleStream
	var in softIn
	if soft {
		in = softIn{b: b, slot: 0, ptr: asm.S10, thresh: asm.S11, pageSize: int32(p.PageSize)}
		in.init()
		in.endReg(asm.S5, asm.A0)
		b.Li(asm.S0, outViewBase(0))
	}
	loop := b.Here()
	if soft {
		cont := b.NewLabel()
		b.Bltu(asm.S10, asm.S5, cont)
		b.Halt()
		b.Bind(cont)
	}
	for i, off := range k.FieldOffsets {
		if soft {
			b.Lw(asm.A1, asm.S10, int32(off))
			b.Sw(asm.A1, asm.S0, int32(4*i))
		} else {
			b.StreamPeek(asm.A1, 0, 4, int32(off))
			b.StreamStore(0, 4, asm.A1)
		}
	}
	if soft {
		b.Addi(asm.S0, asm.S0, int32(4*len(k.FieldOffsets)))
		in.advance(int32(k.TupleSize))
	} else {
		b.StreamAdv(0, int32(k.TupleSize))
	}
	b.J(loop)
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	prog.Name = "select/" + p.Style.String()
	return prog, nil
}

// Reference implements Kernel.
func (k Select) Reference(inputs [][]byte) ([][]byte, error) {
	if err := checkInputs(k.Name(), inputs, 1); err != nil {
		return nil, err
	}
	if err := k.check(); err != nil {
		return nil, err
	}
	in := inputs[0]
	var out []byte
	for off := 0; off+k.TupleSize <= len(in); off += k.TupleSize {
		for _, f := range k.FieldOffsets {
			out = append(out, in[off+f:off+f+4]...)
		}
	}
	return [][]byte{out}, nil
}
