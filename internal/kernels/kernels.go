// Package kernels implements the offloaded computational-storage functions
// the paper evaluates — Stat, RAID4/RAID6 erasure coding, AES encryption,
// the Parse/Select/Filter database pipeline, and the byte-scan scalability
// workload — each in two lowerings:
//
//   - StyleStream: the ASSASIN stream ISA (StreamLoad/StreamPeek/StreamAdv/
//     StreamStore; Section V-B), with automatic stream pointer management.
//   - StyleSoftware: conventional loads/stores walking pointers over staged
//     stream windows (DRAM staging buffers or ping-pong scratchpads), with
//     explicit pointer arithmetic, bounds checks and page-release
//     bookkeeping — the extra instructions the stream ISA eliminates.
//
// Every kernel also has a pure-Go reference implementation; tests check the
// simulated output bit-for-bit against it.
package kernels

import (
	"fmt"

	"assasin/internal/asm"
	"assasin/internal/memhier"
)

// Style selects the code lowering.
type Style int

// Styles.
const (
	StyleStream Style = iota
	StyleSoftware
)

// String implements fmt.Stringer.
func (s Style) String() string {
	if s == StyleStream {
		return "stream"
	}
	return "software"
}

// BuildParams parameterizes code generation.
type BuildParams struct {
	Style Style
	// PageSize is the stream window page granularity (release cadence for
	// software-managed windows).
	PageSize int
	// StateBase is the address where the kernel's function state (tables,
	// keys) is preloaded: memhier.ScratchpadBase for scratchpad
	// architectures, a DRAM address for cache-hierarchy architectures.
	StateBase uint32
}

// Kernel is one offloadable function.
type Kernel interface {
	// Name identifies the kernel.
	Name() string
	// Inputs and Outputs are the stream slot counts.
	Inputs() int
	Outputs() int
	// Build emits the program for the given lowering.
	Build(p BuildParams) (*asm.Program, error)
	// State returns the function-state image to preload at StateBase (nil
	// if the kernel is stateless).
	State() []byte
	// Args returns initial register values given the per-stream input byte
	// lengths (software lowerings need explicit lengths; stream lowerings
	// usually terminate on end-of-stream).
	Args(inputLengths []int64) map[asm.Reg]uint32
	// Reference computes the expected outputs from the input bytes.
	Reference(inputs [][]byte) ([][]byte, error)
}

// inViewBase returns the view address of input slot s, byte 0.
func inViewBase(s uint8) int32 {
	return int32(memhier.StreamInViewBase + uint32(s)*memhier.StreamViewStride)
}

// outViewBase returns the view address of output slot s, byte 0.
func outViewBase(s uint8) int32 {
	return int32(memhier.StreamOutViewBase + uint32(s)*memhier.StreamViewStride)
}

// softIn emits software-managed input stream access: a walking pointer with
// page-release bookkeeping. Per-record cost beyond the loads themselves is
// one pointer addi plus a (usually untaken) release-threshold branch —
// exactly the "address calculations and pointer management instructions"
// the paper's stream ISA removes.
type softIn struct {
	b        *asm.Builder
	slot     uint8
	ptr      asm.Reg // current view address
	thresh   asm.Reg // next page-release boundary
	pageSize int32
}

// init emits pointer setup. Streams are limited to 16 MiB per core (the
// view stride), which the experiment harness guarantees, so no wrap code is
// needed — matching real kernels that walk a large staging buffer.
func (s *softIn) init() {
	s.b.Li(s.ptr, inViewBase(s.slot))
	s.b.Li(s.thresh, inViewBase(s.slot)+s.pageSize)
}

// advance emits ptr += n and releases a window page when the pointer
// crosses the threshold.
func (s *softIn) advance(n int32) {
	s.b.Addi(s.ptr, s.ptr, n)
	skip := s.b.NewLabel()
	s.b.Bltu(s.ptr, s.thresh, skip)
	s.b.StreamAdv(s.slot, s.pageSize)
	s.b.Addi(s.thresh, s.thresh, s.pageSize)
	s.b.Bind(skip)
}

// endReg emits computation of the end address into rd given a length
// argument register.
func (s *softIn) endReg(rd, lenReg asm.Reg) {
	s.b.Li(rd, inViewBase(s.slot))
	s.b.Add(rd, rd, lenReg)
}

// softOut emits software-managed sequential output: a walking store pointer.
type softOut struct {
	b    *asm.Builder
	slot uint8
	ptr  asm.Reg
}

func (s *softOut) init() {
	s.b.Li(s.ptr, outViewBase(s.slot))
}

// defaultArgs builds the convention used by all software lowerings: input
// stream i's byte length in register A0+i.
func defaultArgs(inputLengths []int64) map[asm.Reg]uint32 {
	args := make(map[asm.Reg]uint32, len(inputLengths))
	for i, n := range inputLengths {
		args[asm.A0+asm.Reg(i)] = uint32(n)
	}
	return args
}

// checkInputs validates reference-implementation inputs.
func checkInputs(name string, inputs [][]byte, want int) error {
	if len(inputs) != want {
		return fmt.Errorf("kernels: %s expects %d inputs, got %d", name, want, len(inputs))
	}
	return nil
}
