package kernels

import (
	"encoding/binary"

	"assasin/internal/asm"
)

// Scan is the dummy scalability workload of Figs. 16-18: each core scans
// every byte of its input, producing no output stream. With the stream ISA
// the inner loop is one StreamLoad per byte (plus an amortized loop jump),
// so a 1 GHz core that always has data approaches 1 GB/s — which is what
// makes 8 cores exactly saturate the 8 GB/s flash array. Verification is by
// consumed byte count (cpu.Stats.StreamInBytes / the final pointer for the
// software lowering).
type Scan struct {
	// Unroll is the inner-loop unrolling factor (default 16).
	Unroll int
}

// Name implements Kernel.
func (Scan) Name() string { return "scan" }

// Inputs implements Kernel.
func (Scan) Inputs() int { return 1 }

// Outputs implements Kernel.
func (Scan) Outputs() int { return 0 }

// State implements Kernel (stateless).
func (Scan) State() []byte { return nil }

// Args implements Kernel.
func (Scan) Args(inputLengths []int64) map[asm.Reg]uint32 { return defaultArgs(inputLengths) }

func (k Scan) unroll() int {
	if k.Unroll > 0 {
		return k.Unroll
	}
	return 16
}

// Build implements Kernel.
func (k Scan) Build(p BuildParams) (*asm.Program, error) {
	b := asm.New()
	u := k.unroll()
	switch p.Style {
	case StyleStream:
		loop := b.Here()
		for i := 0; i < u; i++ {
			b.StreamLoad(asm.A1, 0, 1)
		}
		b.J(loop)
	default:
		in := softIn{b: b, slot: 0, ptr: asm.S10, thresh: asm.S11, pageSize: int32(p.PageSize)}
		in.init()
		in.endReg(asm.S5, asm.A0) // A0 = input length
		loop := b.Here()
		for i := 0; i < u; i++ {
			b.Lbu(asm.A1, asm.S10, int32(i))
		}
		in.advance(int32(u))
		b.Bltu(asm.S10, asm.S5, loop)
		b.Halt()
	}
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	prog.Name = "scan/" + p.Style.String()
	return prog, nil
}

// Reference implements Kernel: no outputs; verification is by byte count.
func (k Scan) Reference(inputs [][]byte) ([][]byte, error) {
	if err := checkInputs(k.Name(), inputs, 1); err != nil {
		return nil, err
	}
	return nil, nil
}

// Stat is the Statistics offload of Fig. 13: it sums a column of 32-bit
// little-endian integers streamed from flash, keeping the accumulator as
// function state in a register (the paper's Table II "Accumulators"). The
// per-core partial sum is returned in S0; the host reduces across cores.
type Stat struct{}

// Name implements Kernel.
func (Stat) Name() string { return "stat" }

// Inputs implements Kernel.
func (Stat) Inputs() int { return 1 }

// Outputs implements Kernel.
func (Stat) Outputs() int { return 0 }

// State implements Kernel.
func (Stat) State() []byte { return nil }

// Args implements Kernel.
func (Stat) Args(inputLengths []int64) map[asm.Reg]uint32 { return defaultArgs(inputLengths) }

// Build implements Kernel.
func (Stat) Build(p BuildParams) (*asm.Program, error) {
	b := asm.New()
	switch p.Style {
	case StyleStream:
		loop := b.Here()
		b.StreamLoad(asm.A1, 0, 4)
		b.Add(asm.S0, asm.S0, asm.A1)
		b.J(loop)
	default:
		in := softIn{b: b, slot: 0, ptr: asm.S10, thresh: asm.S11, pageSize: int32(p.PageSize)}
		in.init()
		in.endReg(asm.S5, asm.A0)
		loop := b.Here()
		b.Lw(asm.A1, asm.S10, 0)
		b.Add(asm.S0, asm.S0, asm.A1)
		in.advance(4)
		b.Bltu(asm.S10, asm.S5, loop)
		b.Halt()
	}
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	prog.Name = "stat/" + p.Style.String()
	return prog, nil
}

// Reference implements Kernel (no output streams).
func (k Stat) Reference(inputs [][]byte) ([][]byte, error) {
	if err := checkInputs(k.Name(), inputs, 1); err != nil {
		return nil, err
	}
	return nil, nil
}

// RefSum returns the expected S0 (32-bit wrapping sum of LE words).
func (Stat) RefSum(input []byte) uint32 {
	var s uint32
	for i := 0; i+4 <= len(input); i += 4 {
		s += binary.LittleEndian.Uint32(input[i:])
	}
	return s
}
