package kernels

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
)

func TestDedupFlagsDuplicates(t *testing.T) {
	k := Dedup{ChunkSize: 64, TableEntries: 64}
	// Three unique chunks with chunk 0 repeated twice more.
	base := randBytes(64*3, 11)
	input := append(append(append([]byte{}, base...), base[:64]...), base[:64]...)
	ref, err := k.Reference([][]byte{input})
	if err != nil {
		t.Fatal(err)
	}
	// Expect 5 chunks × 5 bytes; last two flagged duplicate.
	if len(ref[0]) != 25 {
		t.Fatalf("ref output %d bytes", len(ref[0]))
	}
	if ref[0][4] != 0 || ref[0][19] != 1 || ref[0][24] != 1 {
		t.Fatalf("dup flags wrong: % x", ref[0])
	}
	// Repeated chunk keeps the same signature.
	sig0 := binary.LittleEndian.Uint32(ref[0][0:])
	sig3 := binary.LittleEndian.Uint32(ref[0][15:])
	if sig0 != sig3 {
		t.Fatal("signatures differ for identical chunks")
	}
	checkAgainstReference(t, k, [][]byte{input})
}

func TestDedupCollisionProbing(t *testing.T) {
	// A tiny table forces collisions; the kernel and reference must agree
	// on linear-probe behaviour exactly.
	k := Dedup{ChunkSize: 16, TableEntries: 8}
	input := randBytes(16*64, 12) // 64 chunks into 8 slots
	checkAgainstReference(t, k, [][]byte{input})
}

func TestDedupValidation(t *testing.T) {
	if _, err := (Dedup{ChunkSize: 10}).Build(BuildParams{Style: StyleStream, PageSize: testPageSize}); err == nil {
		t.Error("chunk 10 accepted")
	}
	if _, err := (Dedup{TableEntries: 100}).Build(BuildParams{Style: StyleStream, PageSize: testPageSize}); err == nil {
		t.Error("non-power-of-two table accepted")
	}
}

func TestMLPMatchesReference(t *testing.T) {
	k := MLP{In: 8, Hidden: 8}
	rec := k.RecordSize()
	data := make([]byte, 40*rec)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i+4 <= len(data); i += 4 {
		binary.LittleEndian.PutUint32(data[i:], uint32(rng.Intn(256)))
	}
	checkAgainstReference(t, k, [][]byte{data})
}

func TestMLPInferDeterministic(t *testing.T) {
	k := MLP{}
	feats := make([]int32, 16)
	for i := range feats {
		feats[i] = int32(i)
	}
	a := k.Infer(feats)
	b := k.Infer(feats)
	if a != b {
		t.Fatal("inference nondeterministic")
	}
	// ReLU matters: a strongly negative input must differ from its clamp.
	neg := make([]int32, 16)
	for i := range neg {
		neg[i] = -1000
	}
	_ = k.Infer(neg) // must not panic/overflow
}

func TestMLPCustomWeights(t *testing.T) {
	// Identity-ish model: one input, one hidden unit, unit weights.
	k := MLP{In: 1, Hidden: 1, Weights: []int32{2, 1, 3, 5}}
	// score = b2 + relu(x*2 + 1) * 3, x=4 → 5 + 9*3 = 32.
	if got := k.Infer([]int32{4}); got != 32 {
		t.Fatalf("Infer = %d, want 32", got)
	}
	var rec [4]byte
	binary.LittleEndian.PutUint32(rec[:], 4)
	outs, _ := runKernel(t, k, StyleStream, [][]byte{rec[:]})
	if got := binary.LittleEndian.Uint32(outs[0]); got != 32 {
		t.Fatalf("kernel = %d, want 32", got)
	}
}

func TestMLPValidation(t *testing.T) {
	if _, err := (MLP{In: 64}).Build(BuildParams{}); err == nil {
		t.Error("oversized MLP accepted")
	}
	if _, err := (MLP{Weights: []int32{1}}).Build(BuildParams{}); err == nil {
		t.Error("wrong weight count accepted")
	}
}

func TestLZRoundTrip(t *testing.T) {
	k := LZDecompress{}
	original := CompressibleData(20000, 14)
	compressed := k.Compress(original)
	if len(compressed) >= len(original) {
		t.Fatalf("no compression: %d -> %d", len(original), len(compressed))
	}
	ref, err := k.Reference([][]byte{compressed})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ref[0], original) {
		t.Fatal("reference decompression wrong")
	}
	// Simulated kernel agrees, in both lowerings.
	for _, style := range []Style{StyleStream, StyleSoftware} {
		outs, _ := runKernel(t, k, style, [][]byte{compressed})
		if !bytes.Equal(outs[0], original) {
			t.Fatalf("lz/%v output mismatch (%d vs %d bytes)", style, len(outs[0]), len(original))
		}
	}
}

func TestLZIncompressibleLiterals(t *testing.T) {
	k := LZDecompress{}
	original := randBytes(512, 15)
	compressed := k.Compress(original)
	ref, err := k.Reference([][]byte{compressed})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ref[0], original) {
		t.Fatal("literal-only stream wrong")
	}
}

func TestLZOverlappingMatch(t *testing.T) {
	// RLE-style overlapping copy: dist 1, len 10 replicates a byte.
	k := LZDecompress{}
	stream := []byte{0, 'A', 1, 1, 0, 10}
	ref, err := k.Reference([][]byte{stream})
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{'A'}, 11)
	if !bytes.Equal(ref[0], want) {
		t.Fatalf("overlap copy = %q", ref[0])
	}
	outs, _ := runKernel(t, k, StyleStream, [][]byte{stream})
	if !bytes.Equal(outs[0], want) {
		t.Fatalf("kernel overlap copy = %q", outs[0])
	}
}

func TestLZRejectsCorruptStreams(t *testing.T) {
	k := LZDecompress{}
	bad := [][]byte{
		{2},          // unknown flag
		{0},          // truncated literal
		{1, 1, 0},    // truncated match
		{1, 5, 0, 3}, // dist beyond output
		{1, 0, 0, 3}, // zero dist
	}
	for i, s := range bad {
		if _, err := k.Reference([][]byte{s}); err == nil {
			t.Errorf("corrupt stream %d accepted", i)
		}
	}
}

func TestLZValidation(t *testing.T) {
	if _, err := (LZDecompress{WindowBytes: 100}).Build(BuildParams{}); err == nil {
		t.Error("non-power-of-two window accepted")
	}
}

func TestNewKernelsMetadata(t *testing.T) {
	for _, k := range []Kernel{Dedup{}, MLP{}, LZDecompress{}} {
		if k.Name() == "" || k.Inputs() != 1 || k.Outputs() != 1 {
			t.Errorf("%T metadata wrong", k)
		}
		for _, style := range []Style{StyleStream, StyleSoftware} {
			p, err := k.Build(BuildParams{Style: style, PageSize: testPageSize, StateBase: 0x1000_0000})
			if err != nil {
				t.Fatalf("%T/%v: %v", k, style, err)
			}
			if _, err := p.Encode(); err != nil {
				t.Errorf("%T/%v does not encode: %v", k, style, err)
			}
		}
	}
}
