package kernels

import (
	"encoding/binary"
	"fmt"

	"assasin/internal/aes"
	"assasin/internal/asm"
)

// AES is the AES-128-ECB encryption offload of Fig. 13: the classic
// T-table software implementation, with the expanded round keys, S-box and
// four T-tables (~17 KiB) held as function state in the scratchpad. At
// roughly a thousand instructions per 16-byte block it is the paper's most
// compute-intensive kernel — the case where ASSASIN's memory-system
// advantages matter least.
type AES struct {
	// Key is the 16-byte AES key (zero key if empty).
	Key []byte
}

// State image layout (offsets from StateBase).
const (
	aesRkOff   = 0     // 44 round-key words, little-endian
	aesSboxOff = 256   // 256-byte S-box
	aesTeOff   = 512   // 4 T-tables × 1024 words
	aesTeSize  = 4096  // bytes per T-table
	aesImgSize = 16896 // total state bytes
)

func (k AES) key() []byte {
	if len(k.Key) == aes.KeySize {
		return k.Key
	}
	return make([]byte, aes.KeySize)
}

// Name implements Kernel.
func (AES) Name() string { return "aes" }

// Inputs implements Kernel.
func (AES) Inputs() int { return 1 }

// Outputs implements Kernel.
func (AES) Outputs() int { return 1 }

// State implements Kernel.
func (k AES) State() []byte {
	c, err := aes.New(k.key())
	if err != nil {
		panic(err)
	}
	rk, te, sbox := c.Tables()
	img := make([]byte, aesImgSize)
	for i, w := range rk {
		binary.LittleEndian.PutUint32(img[aesRkOff+4*i:], w)
	}
	copy(img[aesSboxOff:], sbox[:])
	for t := 0; t < 4; t++ {
		base := aesTeOff + t*aesTeSize
		for i, w := range te[t] {
			binary.LittleEndian.PutUint32(img[base+4*i:], w)
		}
	}
	return img
}

// Args implements Kernel.
func (AES) Args(inputLengths []int64) map[asm.Reg]uint32 { return defaultArgs(inputLengths) }

// Build implements Kernel. Register allocation:
//
//	S1          state base
//	S2-S5       current state words s0-s3 (big-endian packed, as in FIPS-197)
//	S6-S9       next state words
//	T0, T1      index/scratch
//	A1          loaded byte
//	S10/S11/A7  input ptr / release threshold / end (software style)
//	S0          output ptr (software style)
func (k AES) Build(p BuildParams) (*asm.Program, error) {
	b := asm.New()
	b.Li(asm.S1, int32(p.StateBase))

	soft := p.Style != StyleStream
	var in softIn
	var out softOut
	if soft {
		in = softIn{b: b, slot: 0, ptr: asm.S10, thresh: asm.S11, pageSize: int32(p.PageSize)}
		in.init()
		in.endReg(asm.A7, asm.A0)
		out = softOut{b: b, slot: 0, ptr: asm.S0}
		out.init()
	}

	// loadByte emits A1 = next input byte.
	loadByte := func(i int32) {
		if soft {
			b.Lbu(asm.A1, asm.S10, i)
		} else {
			b.StreamLoad(asm.A1, 0, 1)
		}
	}
	// storeByte emits output of the low byte of reg.
	storeByte := func(reg asm.Reg, i int32) {
		if soft {
			b.Sb(reg, asm.S0, i)
		} else {
			b.StreamStore(0, 1, reg)
		}
	}
	// rkXor emits dest ^= roundKey[word].
	rkXor := func(dest asm.Reg, word int) {
		b.Lw(asm.T1, asm.S1, int32(aesRkOff+4*word))
		b.Xor(dest, dest, asm.T1)
	}

	blockStart := b.Here()
	if soft {
		done := b.NewLabel()
		cont := b.NewLabel()
		b.Bltu(asm.S10, asm.A7, cont)
		b.Bind(done)
		// (done label bound just to satisfy structure; fallthrough halt)
		b.Halt()
		b.Bind(cont)
	}

	// Load one 16-byte block into S2-S5, big-endian packed: word w =
	// b[4w]<<24 | b[4w+1]<<16 | b[4w+2]<<8 | b[4w+3].
	state := []asm.Reg{asm.S2, asm.S3, asm.S4, asm.S5}
	next := []asm.Reg{asm.S6, asm.S7, asm.S8, asm.S9}
	for w := 0; w < 4; w++ {
		for i := 0; i < 4; i++ {
			loadByte(int32(4*w + i))
			if i == 0 {
				b.Slli(state[w], asm.A1, 24)
			} else if i < 3 {
				b.Slli(asm.A1, asm.A1, int32(24-8*i))
				b.Or(state[w], state[w], asm.A1)
			} else {
				b.Or(state[w], state[w], asm.A1)
			}
		}
		rkXor(state[w], w) // AddRoundKey round 0
	}

	// Rounds 1..9: t[w] = te0[s(w)>>24] ^ te1[s(w+1)>>16&ff] ^
	// te2[s(w+2)>>8&ff] ^ te3[s(w+3)&ff] ^ rk.
	for r := 1; r <= 9; r++ {
		for w := 0; w < 4; w++ {
			dst := next[w]
			// te0 term.
			b.Srli(asm.T0, state[w], 24)
			b.Slli(asm.T0, asm.T0, 2)
			b.Add(asm.T0, asm.T0, asm.S1)
			b.Lw(dst, asm.T0, aesTeOff+0*aesTeSize)
			// te1 term.
			b.Srli(asm.T0, state[(w+1)%4], 16)
			b.Andi(asm.T0, asm.T0, 255)
			b.Slli(asm.T0, asm.T0, 2)
			b.Add(asm.T0, asm.T0, asm.S1)
			b.Lw(asm.T1, asm.T0, aesTeOff+1*aesTeSize)
			b.Xor(dst, dst, asm.T1)
			// te2 term.
			b.Srli(asm.T0, state[(w+2)%4], 8)
			b.Andi(asm.T0, asm.T0, 255)
			b.Slli(asm.T0, asm.T0, 2)
			b.Add(asm.T0, asm.T0, asm.S1)
			b.Lw(asm.T1, asm.T0, aesTeOff+2*aesTeSize)
			b.Xor(dst, dst, asm.T1)
			// te3 term.
			b.Andi(asm.T0, state[(w+3)%4], 255)
			b.Slli(asm.T0, asm.T0, 2)
			b.Add(asm.T0, asm.T0, asm.S1)
			b.Lw(asm.T1, asm.T0, aesTeOff+3*aesTeSize)
			b.Xor(dst, dst, asm.T1)
			rkXor(dst, 4*r+w)
		}
		state, next = next, state
	}

	// Final round: SubBytes + ShiftRows, no MixColumns.
	sbox := func(dst asm.Reg, src asm.Reg, shift int32, outShift int32, first bool) {
		if shift > 0 {
			b.Srli(asm.T0, src, shift)
			if shift < 24 {
				b.Andi(asm.T0, asm.T0, 255)
			}
		} else {
			b.Andi(asm.T0, src, 255)
		}
		b.Add(asm.T0, asm.T0, asm.S1)
		b.Lbu(asm.T1, asm.T0, aesSboxOff)
		if outShift > 0 {
			b.Slli(asm.T1, asm.T1, outShift)
		}
		if first {
			b.Mv(dst, asm.T1)
		} else {
			b.Or(dst, dst, asm.T1)
		}
	}
	for w := 0; w < 4; w++ {
		dst := next[w]
		sbox(dst, state[w], 24, 24, true)
		sbox(dst, state[(w+1)%4], 16, 16, false)
		sbox(dst, state[(w+2)%4], 8, 8, false)
		sbox(dst, state[(w+3)%4], 0, 0, false)
		rkXor(dst, 40+w)
	}
	state = next

	// Emit ciphertext bytes big-endian per word.
	for w := 0; w < 4; w++ {
		for i := 0; i < 4; i++ {
			shift := int32(24 - 8*i)
			if shift > 0 {
				b.Srli(asm.T0, state[w], shift)
				storeByte(asm.T0, int32(4*w+i))
			} else {
				storeByte(state[w], int32(4*w+i))
			}
		}
	}
	if soft {
		in.advance(16)
		b.Addi(asm.S0, asm.S0, 16)
	}
	b.J(blockStart)

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	prog.Name = "aes/" + p.Style.String()
	return prog, nil
}

// Reference implements Kernel.
func (k AES) Reference(inputs [][]byte) ([][]byte, error) {
	if err := checkInputs(k.Name(), inputs, 1); err != nil {
		return nil, err
	}
	if len(inputs[0])%aes.BlockSize != 0 {
		return nil, fmt.Errorf("kernels: aes input %d not block-aligned", len(inputs[0]))
	}
	c, err := aes.New(k.key())
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(inputs[0]))
	c.EncryptECB(out, inputs[0])
	return [][]byte{out}, nil
}
