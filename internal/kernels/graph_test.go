package kernels

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"assasin/internal/asm"
)

func makeEdges(n, vertices int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, n*EdgeSize)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(out[i*EdgeSize:], uint32(rng.Intn(vertices)))
		binary.LittleEndian.PutUint32(out[i*EdgeSize+4:], uint32(rng.Intn(vertices)))
	}
	return out
}

func TestDegreeTables(t *testing.T) {
	k := Degree{NumVertices: 256}
	edges := makeEdges(2000, 256, 1)
	wantOut, wantIn, wantCount := k.RefTables(edges)
	for _, style := range []Style{StyleStream, StyleSoftware} {
		_, core := runKernel(t, k, style, [][]byte{edges})
		if got := core.Reg(asm.S3); got != wantCount {
			t.Fatalf("%v: edge count %d, want %d", style, got, wantCount)
		}
		// Tables live in the scratchpad (function state the firmware reads
		// back after the core halts).
		img, err := core.Sys().Scratchpad.Bytes(0, 8*256)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < 256; v++ {
			gotOut := binary.LittleEndian.Uint32(img[4*v:])
			gotIn := binary.LittleEndian.Uint32(img[4*256+4*v:])
			if gotOut != wantOut[v] || gotIn != wantIn[v] {
				t.Fatalf("%v: vertex %d degrees (%d,%d), want (%d,%d)", style, v, gotOut, gotIn, wantOut[v], wantIn[v])
			}
		}
	}
}

func TestDegreeConservation(t *testing.T) {
	// Σ out-degree == Σ in-degree == edge count: a graph invariant.
	k := Degree{NumVertices: 128}
	edges := makeEdges(777, 128, 2)
	out, in, count := k.RefTables(edges)
	var so, si uint32
	for v := range out {
		so += out[v]
		si += in[v]
	}
	if so != count || si != count {
		t.Fatalf("degree sums %d/%d != edges %d", so, si, count)
	}
}

func TestDegreeValidation(t *testing.T) {
	if _, err := (Degree{NumVertices: 1 << 20}).Build(BuildParams{}); err == nil {
		t.Error("oversized vertex table accepted")
	}
}

func TestReplicateFanout(t *testing.T) {
	data := randBytes(4096, 3)
	k := Replicate{}
	checkAgainstReference(t, k, [][]byte{data})
	// Both outputs equal the input.
	outs, _ := runKernel(t, k, StyleStream, [][]byte{data})
	if !bytes.Equal(outs[0], data) || !bytes.Equal(outs[1], data) {
		t.Fatal("replica diverges from primary")
	}
}
