package kernels

import (
	"encoding/binary"
	"fmt"

	"assasin/internal/asm"
)

// MLP is the neural-network inference offload of Table II: a two-layer
// perceptron whose weights stay stationary in the scratchpad ("Model
// parameters" function state) while inference records stream in from
// flash. Each record is In 32-bit features; the kernel computes
// relu(x·W1+b1)·W2+b2 in 32-bit integer arithmetic and emits one 32-bit
// score — the keep-weights-close, stream-the-data pattern the paper calls
// out for NN workloads.
type MLP struct {
	// In is the input feature count (default 16).
	In int
	// Hidden is the hidden layer width (default 16).
	Hidden int
	// Weights flattens W1 (In×Hidden), b1 (Hidden), W2 (Hidden), b2 (1).
	// Nil selects a deterministic pseudo-random model.
	Weights []int32
}

func (k MLP) dims() (in, hidden int) {
	in, hidden = k.In, k.Hidden
	if in <= 0 {
		in = 16
	}
	if hidden <= 0 {
		hidden = 16
	}
	return
}

func (k MLP) check() error {
	in, hidden := k.dims()
	if in > 32 || hidden > 32 {
		return fmt.Errorf("kernels: mlp dims %dx%d too large for the scratchpad layout", in, hidden)
	}
	if k.Weights != nil && len(k.Weights) != k.weightCount() {
		return fmt.Errorf("kernels: mlp weights %d, want %d", len(k.Weights), k.weightCount())
	}
	return nil
}

func (k MLP) weightCount() int {
	in, hidden := k.dims()
	return in*hidden + hidden + hidden + 1
}

func (k MLP) weights() []int32 {
	if k.Weights != nil {
		return k.Weights
	}
	// Small deterministic weights so 32-bit accumulation cannot overflow
	// for byte-scaled features.
	w := make([]int32, k.weightCount())
	seed := uint32(0x9E3779B9)
	for i := range w {
		seed = seed*1664525 + 1013904223
		w[i] = int32(seed%7) - 3 // -3..3
	}
	return w
}

// RecordSize returns the input record size in bytes.
func (k MLP) RecordSize() int {
	in, _ := k.dims()
	return 4 * in
}

// Name implements Kernel.
func (MLP) Name() string { return "mlp" }

// Inputs implements Kernel.
func (MLP) Inputs() int { return 1 }

// Outputs implements Kernel.
func (MLP) Outputs() int { return 1 }

// State layout: W1 row-major (hidden rows × in cols), b1, W2, b2 as LE
// int32, followed by a Hidden-word activation spill area the kernel uses
// between layers.
func (k MLP) State() []byte {
	w := k.weights()
	_, hidden := k.dims()
	img := make([]byte, 4*(len(w)+hidden))
	for i, v := range w {
		binary.LittleEndian.PutUint32(img[4*i:], uint32(v))
	}
	return img
}

func (k MLP) actOffset() int32 { return int32(4 * k.weightCount()) }

// Args implements Kernel.
func (MLP) Args(inputLengths []int64) map[asm.Reg]uint32 { return defaultArgs(inputLengths) }

// Build implements Kernel. Layer 1 is computed one hidden unit at a time
// (features via StreamPeek / pointer loads, weights via static offsets from
// the state base); activations spill to the scratchpad; layer 2 reads them
// back. Register allocation:
//
//	S1 state base   A1 acc   T0/T1 temps   S2 feature cursor help
//	S10/S11/S5 soft ptr/thresh/end   S0 soft out ptr
func (k MLP) Build(p BuildParams) (*asm.Program, error) {
	if err := k.check(); err != nil {
		return nil, err
	}
	in, hidden := k.dims()
	b := asm.New()
	soft := p.Style != StyleStream
	b.Li(asm.S1, int32(p.StateBase))
	var inp softIn
	if soft {
		inp = softIn{b: b, slot: 0, ptr: asm.S10, thresh: asm.S11, pageSize: int32(p.PageSize)}
		inp.init()
		inp.endReg(asm.S5, asm.A0)
		b.Li(asm.S0, outViewBase(0))
	}
	loadFeature := func(j int) { // feature j of the current record into T0
		if soft {
			b.Lw(asm.T0, asm.S10, int32(4*j))
		} else {
			b.StreamPeek(asm.T0, 0, 4, int32(4*j))
		}
	}
	w1Off := func(h, j int) int32 { return int32(4 * (h*in + j)) }
	b1Off := func(h int) int32 { return int32(4 * (hidden*in + h)) }
	w2Off := func(h int) int32 { return int32(4 * (hidden*in + hidden + h)) }
	b2Off := int32(4 * (hidden*in + hidden + hidden))

	recStart := b.Here()
	if soft {
		cont := b.NewLabel()
		b.Bltu(asm.S10, asm.S5, cont)
		b.Halt()
		b.Bind(cont)
	} else {
		// StreamPeek halts at end of stream like StreamLoad; peeking the
		// first feature doubles as the termination check.
	}
	// Layer 1: per hidden unit h, acc = b1[h] + Σ_j x[j]*W1[h][j]; relu;
	// spill to the activation area.
	for h := 0; h < hidden; h++ {
		b.Lw(asm.A1, asm.S1, b1Off(h))
		for j := 0; j < in; j++ {
			loadFeature(j)
			b.Lw(asm.T1, asm.S1, w1Off(h, j))
			b.Mul(asm.T0, asm.T0, asm.T1)
			b.Add(asm.A1, asm.A1, asm.T0)
		}
		pos := b.NewLabel()
		b.Bge(asm.A1, asm.Zero, pos) // relu
		b.Li(asm.A1, 0)
		b.Bind(pos)
		b.Sw(asm.A1, asm.S1, k.actOffset()+int32(4*h))
	}
	// Layer 2: score = b2 + Σ_h act[h]*W2[h].
	b.Lw(asm.A1, asm.S1, b2Off)
	for h := 0; h < hidden; h++ {
		b.Lw(asm.T0, asm.S1, k.actOffset()+int32(4*h))
		b.Lw(asm.T1, asm.S1, w2Off(h))
		b.Mul(asm.T0, asm.T0, asm.T1)
		b.Add(asm.A1, asm.A1, asm.T0)
	}
	if soft {
		b.Sw(asm.A1, asm.S0, 0)
		b.Addi(asm.S0, asm.S0, 4)
		inp.advance(int32(k.RecordSize()))
	} else {
		b.StreamStore(0, 4, asm.A1)
		b.StreamAdv(0, int32(k.RecordSize()))
	}
	b.J(recStart)

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	prog.Name = "mlp/" + p.Style.String()
	return prog, nil
}

// Infer mirrors the kernel for one record.
func (k MLP) Infer(features []int32) int32 {
	in, hidden := k.dims()
	w := k.weights()
	w1 := w[:hidden*in]
	b1 := w[hidden*in : hidden*in+hidden]
	w2 := w[hidden*in+hidden : hidden*in+hidden+hidden]
	b2 := w[hidden*in+hidden+hidden]
	score := b2
	for h := 0; h < hidden; h++ {
		acc := b1[h]
		for j := 0; j < in; j++ {
			acc += features[j] * w1[h*in+j]
		}
		if acc < 0 {
			acc = 0
		}
		score += acc * w2[h]
	}
	return score
}

// Reference implements Kernel.
func (k MLP) Reference(inputs [][]byte) ([][]byte, error) {
	if err := checkInputs(k.Name(), inputs, 1); err != nil {
		return nil, err
	}
	if err := k.check(); err != nil {
		return nil, err
	}
	in, _ := k.dims()
	rec := k.RecordSize()
	data := inputs[0]
	var out []byte
	feats := make([]int32, in)
	for off := 0; off+rec <= len(data); off += rec {
		for j := 0; j < in; j++ {
			feats[j] = int32(binary.LittleEndian.Uint32(data[off+4*j:]))
		}
		var buf [4]byte
		binary.LittleEndian.PutUint32(buf[:], uint32(k.Infer(feats)))
		out = append(out, buf[:]...)
	}
	return [][]byte{out}, nil
}
