package kernels

import (
	"fmt"

	"assasin/internal/asm"
	"assasin/internal/gf"
)

// RAID4 is the XOR-parity erasure-coding offload of Fig. 13: K data streams
// in, one parity stream out. It is stateless and memory-intensive — the
// paper's second-lowest compute-intensity kernel.
type RAID4 struct {
	// K is the number of data streams (default 4).
	K int
}

func (k RAID4) width() int {
	if k.K > 0 {
		return k.K
	}
	return 4
}

// Name implements Kernel.
func (RAID4) Name() string { return "raid4" }

// Inputs implements Kernel.
func (k RAID4) Inputs() int { return k.width() }

// Outputs implements Kernel.
func (RAID4) Outputs() int { return 1 }

// State implements Kernel.
func (RAID4) State() []byte { return nil }

// Args implements Kernel.
func (RAID4) Args(inputLengths []int64) map[asm.Reg]uint32 { return defaultArgs(inputLengths) }

// Build implements Kernel.
func (k RAID4) Build(p BuildParams) (*asm.Program, error) {
	n := k.width()
	if n < 2 || n > 4 {
		return nil, fmt.Errorf("kernels: raid4 supports 2-4 data streams, got %d", n)
	}
	b := asm.New()
	dataRegs := []asm.Reg{asm.A1, asm.A2, asm.A3, asm.A4}
	switch p.Style {
	case StyleStream:
		loop := b.Here()
		for i := 0; i < n; i++ {
			b.StreamLoad(dataRegs[i], uint8(i), 4)
		}
		for i := 1; i < n; i++ {
			b.Xor(asm.A1, asm.A1, dataRegs[i])
		}
		b.StreamStore(0, 4, asm.A1)
		b.J(loop)
	default:
		// Blocked software loop: a page-sized inner loop without release
		// checks, then a per-page epilogue releasing every input window.
		ptrs := []asm.Reg{asm.S2, asm.S3, asm.S4, asm.S5}
		out := softOut{b: b, slot: 0, ptr: asm.S6}
		for i := 0; i < n; i++ {
			b.Li(ptrs[i], inViewBase(uint8(i)))
		}
		out.init()
		// A0 = per-stream length; S8 = page size; T3 = chunk; S7 = inner end.
		b.Li(asm.S8, int32(p.PageSize))
		outer := b.Here()
		done := b.NewLabel()
		b.Beq(asm.A0, asm.Zero, done)
		b.Mv(asm.T3, asm.S8)
		full := b.NewLabel()
		b.Bgeu(asm.A0, asm.S8, full)
		b.Mv(asm.T3, asm.A0)
		b.Bind(full)
		b.Add(asm.S7, ptrs[0], asm.T3)
		inner := b.Here()
		for i := 0; i < n; i++ {
			b.Lw(dataRegs[i], ptrs[i], 0)
		}
		for i := 1; i < n; i++ {
			b.Xor(asm.A1, asm.A1, dataRegs[i])
		}
		b.Sw(asm.A1, out.ptr, 0)
		for i := 0; i < n; i++ {
			b.Addi(ptrs[i], ptrs[i], 4)
		}
		b.Addi(out.ptr, out.ptr, 4)
		b.Bltu(ptrs[0], asm.S7, inner)
		// Release a full page on every input window.
		partial := b.NewLabel()
		b.Bne(asm.T3, asm.S8, partial)
		for i := 0; i < n; i++ {
			b.StreamAdv(uint8(i), int32(p.PageSize))
		}
		b.Bind(partial)
		b.Sub(asm.A0, asm.A0, asm.T3)
		b.J(outer)
		b.Bind(done)
		b.Halt()
	}
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	prog.Name = "raid4/" + p.Style.String()
	return prog, nil
}

// Reference implements Kernel.
func (k RAID4) Reference(inputs [][]byte) ([][]byte, error) {
	n := k.width()
	if err := checkInputs(k.Name(), inputs, n); err != nil {
		return nil, err
	}
	parity := make([]byte, len(inputs[0]))
	copy(parity, inputs[0])
	for i := 1; i < n; i++ {
		if len(inputs[i]) != len(parity) {
			return nil, fmt.Errorf("kernels: raid4 stream lengths differ")
		}
		for j, v := range inputs[i] {
			parity[j] ^= v
		}
	}
	return [][]byte{parity}, nil
}

// RAID6 computes P+Q parity over K data streams: P is XOR, Q is the
// Reed-Solomon syndrome Σ g^i·d_i over GF(2^8). The Galois-field log/exp
// tables are the kernel's function state, resident in the scratchpad
// (Table II "Galois Field (GF) table") — every input byte makes two table
// lookups, which is what the paper's Fig. 20 scratchpad-latency discussion
// is about.
type RAID6 struct {
	K int
}

func (k RAID6) width() int {
	if k.K > 0 {
		return k.K
	}
	return 4
}

// Name implements Kernel.
func (RAID6) Name() string { return "raid6" }

// Inputs implements Kernel.
func (k RAID6) Inputs() int { return k.width() }

// Outputs implements Kernel: P and Q.
func (RAID6) Outputs() int { return 2 }

// raid6StateSize: exp table doubled (512) + log table (256).
const raid6ExpOff = 0
const raid6LogOff = 512

// State implements Kernel: exp[512] then log[256]. The doubled exp table
// removes the mod-255 from the inner loop, the standard software trick.
func (RAID6) State() []byte {
	img := make([]byte, 768)
	exp, log := gf.Tables()
	copy(img[raid6ExpOff:], exp[:])
	copy(img[raid6ExpOff+255:], exp[:]) // second period: exp[i+255] = exp[i]
	copy(img[raid6LogOff:], log[:])
	return img
}

// Args implements Kernel.
func (RAID6) Args(inputLengths []int64) map[asm.Reg]uint32 { return defaultArgs(inputLengths) }

// Build implements Kernel.
func (k RAID6) Build(p BuildParams) (*asm.Program, error) {
	n := k.width()
	if n < 2 || n > 4 {
		return nil, fmt.Errorf("kernels: raid6 supports 2-4 data streams, got %d", n)
	}
	b := asm.New()
	// S1 = exp base, S9 = log base (function state pointers).
	b.Li(asm.S1, int32(p.StateBase)+raid6ExpOff)
	b.Li(asm.S9, int32(p.StateBase)+raid6LogOff)

	// emitQ folds data byte in reg d into q (A6) via the GF tables;
	// stream i>0 multiplies by g^i, stream 0 by 1 (plain XOR).
	emitQ := func(d asm.Reg, i int) {
		if i == 0 {
			b.Xor(asm.A6, asm.A6, d)
			return
		}
		skip := b.NewLabel()
		b.Beq(d, asm.Zero, skip)
		b.Add(asm.T0, asm.S9, d)         // &log[d]
		b.Lbu(asm.T0, asm.T0, 0)         // log[d]
		b.Addi(asm.T0, asm.T0, int32(i)) // + log(g^i) = i
		b.Add(asm.T0, asm.S1, asm.T0)
		b.Lbu(asm.T0, asm.T0, 0) // exp[...]
		b.Xor(asm.A6, asm.A6, asm.T0)
		b.Bind(skip)
	}

	switch p.Style {
	case StyleStream:
		loop := b.Here()
		b.Li(asm.A5, 0) // p
		b.Li(asm.A6, 0) // q
		for i := 0; i < n; i++ {
			b.StreamLoad(asm.A1, uint8(i), 1)
			b.Xor(asm.A5, asm.A5, asm.A1)
			emitQ(asm.A1, i)
		}
		b.StreamStore(0, 1, asm.A5)
		b.StreamStore(1, 1, asm.A6)
		b.J(loop)
	default:
		ptrs := []asm.Reg{asm.S2, asm.S3, asm.S4, asm.S5}
		for i := 0; i < n; i++ {
			b.Li(ptrs[i], inViewBase(uint8(i)))
		}
		b.Li(asm.S6, outViewBase(0)) // P out
		b.Li(asm.S7, outViewBase(1)) // Q out
		b.Li(asm.S8, int32(p.PageSize))
		// A0 = per-stream length; T3 = chunk; T4 = inner end.
		outer := b.Here()
		done := b.NewLabel()
		b.Beq(asm.A0, asm.Zero, done)
		b.Mv(asm.T3, asm.S8)
		full := b.NewLabel()
		b.Bgeu(asm.A0, asm.S8, full)
		b.Mv(asm.T3, asm.A0)
		b.Bind(full)
		b.Add(asm.T4, ptrs[0], asm.T3)
		inner := b.Here()
		b.Li(asm.A5, 0)
		b.Li(asm.A6, 0)
		for i := 0; i < n; i++ {
			b.Lbu(asm.A1, ptrs[i], 0)
			b.Xor(asm.A5, asm.A5, asm.A1)
			emitQ(asm.A1, i)
		}
		b.Sb(asm.A5, asm.S6, 0)
		b.Sb(asm.A6, asm.S7, 0)
		for i := 0; i < n; i++ {
			b.Addi(ptrs[i], ptrs[i], 1)
		}
		b.Addi(asm.S6, asm.S6, 1)
		b.Addi(asm.S7, asm.S7, 1)
		b.Bltu(ptrs[0], asm.T4, inner)
		partial := b.NewLabel()
		b.Bne(asm.T3, asm.S8, partial)
		for i := 0; i < n; i++ {
			b.StreamAdv(uint8(i), int32(p.PageSize))
		}
		b.Bind(partial)
		b.Sub(asm.A0, asm.A0, asm.T3)
		b.J(outer)
		b.Bind(done)
		b.Halt()
	}
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	prog.Name = "raid6/" + p.Style.String()
	return prog, nil
}

// Reference implements Kernel.
func (k RAID6) Reference(inputs [][]byte) ([][]byte, error) {
	n := k.width()
	if err := checkInputs(k.Name(), inputs, n); err != nil {
		return nil, err
	}
	length := len(inputs[0])
	pOut := make([]byte, length)
	qOut := make([]byte, length)
	for i := 0; i < n; i++ {
		if len(inputs[i]) != length {
			return nil, fmt.Errorf("kernels: raid6 stream lengths differ")
		}
		coef := gf.Exp(i)
		for j, v := range inputs[i] {
			pOut[j] ^= v
			qOut[j] ^= gf.Mul(coef, v)
		}
	}
	return [][]byte{pOut, qOut}, nil
}
